// bench_diff — A/B regression gate over two BENCH_*.json files.
//
// Usage:
//   bench_diff BASELINE.json CURRENT.json
//              [--time-threshold F] [--metric-threshold F]
//              [--min-seconds F]
//
// Compares the bench harness records phase-by-phase (timings keyed by
// phase@threads) and metric-by-metric (deterministic counters/gauges from
// the embedded obs report; `.bytes` gauges flag on growth only,
// `thread_pool.*` / `process.*` are skipped as scheduling-dependent).
//
// Exit status: 0 = within thresholds, 1 = regression(s) found, 2 = usage
// or parse error. Designed for CI: run the bench, then diff against the
// committed baseline.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_diff.h"

namespace {

using namespace autofeat;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: bench_diff BASELINE.json CURRENT.json\n"
      "                  [--time-threshold F] [--metric-threshold F]\n"
      "                  [--min-seconds F]\n"
      "  --time-threshold F    relative slowdown tolerated per phase\n"
      "                        (default 0.10 = +10%%)\n"
      "  --metric-threshold F  relative drift tolerated per metric\n"
      "                        (default 0.10; .bytes gauges flag on growth\n"
      "                        only)\n"
      "  --min-seconds F       absolute timing noise floor (default 0.01)\n"
      "exit: 0 = ok, 1 = regression, 2 = usage/parse error\n");
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path;
  obs::BenchDiffOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--time-threshold") {
      const char* v = next();
      if (!v) { PrintUsage(); return 2; }
      options.time_threshold = std::atof(v);
    } else if (arg == "--metric-threshold") {
      const char* v = next();
      if (!v) { PrintUsage(); return 2; }
      options.metric_threshold = std::atof(v);
    } else if (arg == "--min-seconds") {
      const char* v = next();
      if (!v) { PrintUsage(); return 2; }
      options.min_seconds = std::atof(v);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    PrintUsage();
    return 2;
  }

  std::string baseline_json, current_json;
  if (!ReadFile(baseline_path, &baseline_json)) {
    std::fprintf(stderr, "cannot read %s\n", baseline_path.c_str());
    return 2;
  }
  if (!ReadFile(current_path, &current_json)) {
    std::fprintf(stderr, "cannot read %s\n", current_path.c_str());
    return 2;
  }

  auto report = obs::DiffBenchReports(baseline_json, current_json, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", report->Summary().c_str());
  if (!report->ok()) {
    std::printf("FAIL: %zu regression(s) against %s\n",
                report->num_regressions(), baseline_path.c_str());
    return 1;
  }
  std::printf("OK: no regressions against %s\n", baseline_path.c_str());
  return 0;
}
