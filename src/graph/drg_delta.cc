#include "graph/drg_delta.h"

#include <algorithm>
#include <utility>

namespace autofeat {

std::string DrgMatchStore::PairKey(const std::string& a,
                                   const std::string& b) {
  // Order-insensitive key; '\0' cannot occur inside a table name loaded
  // from disk and keeps "ab"+"c" distinct from "a"+"bc".
  return a < b ? a + '\0' + b : b + '\0' + a;
}

void DrgMatchStore::SetMatches(const std::string& left,
                               const std::string& right,
                               std::vector<PairMatch> matches) {
  const std::string key = PairKey(left, right);
  if (matches.empty()) {
    pairs_.erase(key);
    return;
  }
  pairs_[key] = StoredPair{left, right, std::move(matches)};
}

void DrgMatchStore::PurgeTable(const std::string& table) {
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    if (it->second.left == table || it->second.right == table) {
      it = pairs_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<PairMatch> DrgMatchStore::MatchesFor(const std::string& a,
                                                 const std::string& b) const {
  auto it = pairs_.find(PairKey(a, b));
  if (it == pairs_.end()) return {};
  if (it->second.left == a) return it->second.matches;
  std::vector<PairMatch> flipped;
  flipped.reserve(it->second.matches.size());
  for (const PairMatch& m : it->second.matches) {
    flipped.push_back({m.right_column, m.left_column, m.score});
  }
  return flipped;
}

Result<DatasetRelationGraph> DrgMatchStore::BuildGraph(
    const std::vector<std::string>& lake_order) const {
  DatasetRelationGraph drg;
  for (const std::string& name : lake_order) drg.AddNode(name);
  for (size_t i = 0; i < lake_order.size(); ++i) {
    for (size_t j = i + 1; j < lake_order.size(); ++j) {
      for (const PairMatch& m : MatchesFor(lake_order[i], lake_order[j])) {
        AF_RETURN_NOT_OK(drg.AddEdge(lake_order[i], m.left_column,
                                     lake_order[j], m.right_column, m.score));
      }
    }
  }
  return drg;
}

}  // namespace autofeat
