#include "table/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_utils.h"

namespace autofeat {

namespace {

// Splits one CSV record, honouring double-quote escaping.
std::vector<std::string> SplitRecord(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool IsNullToken(const std::string& s, const CsvOptions& options) {
  if (options.treat_empty_as_null && s.empty()) return true;
  return s == "NA" || s == "N/A" || s == "null" || s == "NULL" || s == "nan" ||
         s == "NaN";
}

std::string NeedsQuoting(const std::string& s, char delim) {
  if (s.find(delim) == std::string::npos &&
      s.find('"') == std::string::npos && s.find('\n') == std::string::npos) {
    return s;
  }
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';  // Escape quotes by doubling.
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& csv, const std::string& name,
                            const CsvOptions& options) {
  std::istringstream stream(csv);
  std::string line;
  if (!std::getline(stream, line)) {
    return Status::IOError("empty CSV input for table " + name);
  }
  std::vector<std::string> header = SplitRecord(line, options.delimiter);
  for (auto& h : header) h = Trim(h);
  size_t ncols = header.size();

  // Collect raw cells column-wise; infer types afterwards.
  std::vector<std::vector<std::string>> cells(ncols);
  size_t nrows = 0;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    std::vector<std::string> record = SplitRecord(line, options.delimiter);
    if (record.size() != ncols) {
      return Status::IOError("row " + std::to_string(nrows + 1) + " has " +
                             std::to_string(record.size()) +
                             " fields, expected " + std::to_string(ncols));
    }
    for (size_t c = 0; c < ncols; ++c) cells[c].push_back(std::move(record[c]));
    ++nrows;
  }

  Table table(name);
  for (size_t c = 0; c < ncols; ++c) {
    bool all_int = true;
    bool all_double = true;
    for (const auto& cell : cells[c]) {
      if (IsNullToken(cell, options)) continue;
      int64_t iv;
      double dv;
      if (!ParseInt64(cell, &iv)) all_int = false;
      if (!ParseDouble(cell, &dv)) all_double = false;
      if (!all_int && !all_double) break;
    }
    Column col(all_int       ? DataType::kInt64
               : all_double  ? DataType::kDouble
                             : DataType::kString);
    col.Reserve(nrows);
    for (const auto& cell : cells[c]) {
      if (IsNullToken(cell, options)) {
        col.AppendNull();
      } else if (all_int) {
        int64_t iv = 0;
        ParseInt64(cell, &iv);
        col.AppendInt64(iv);
      } else if (all_double) {
        double dv = 0;
        ParseDouble(cell, &dv);
        col.AppendDouble(dv);
      } else {
        col.AppendString(cell);
      }
    }
    AF_RETURN_NOT_OK(table.AddColumn(header[c], std::move(col)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // Table name = file stem.
  size_t slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  return ReadCsvString(buffer.str(), stem, options);
}

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::string out;
  const auto names = table.ColumnNames();
  for (size_t c = 0; c < names.size(); ++c) {
    if (c > 0) out += options.delimiter;
    out += NeedsQuoting(names[c], options.delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      out += NeedsQuoting(table.column(c).ValueToString(r), options.delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open file for writing: " + path);
  out << WriteCsvString(table, options);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace autofeat
