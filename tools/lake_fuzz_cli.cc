// lake_fuzz_cli — property-based fuzzing of the AutoFeat pipeline.
//
// Generates adversarial data lakes from sequential seeds, checks the
// invariant registry (src/qa/invariants.h) over each, shrinks any
// violation to a minimal counterexample and writes a self-contained repro
// (CSV dir + MANIFEST.txt) under --out.
//
// Usage:
//   lake_fuzz_cli [--seeds N] [--seed-start N] [--threads N]
//                 [--out DIR] [--invariant NAME]... [--no-shrink]
//                 [--plant-bug] [--max-rows N] [--list] [--replay DIR]
//
// Exit status: 0 = all invariants hold, 1 = violations found, 2 = usage or
// setup error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/memory.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "qa/fuzz_runner.h"
#include "qa/invariants.h"

namespace {

using namespace autofeat;

struct CliOptions {
  qa::FuzzOptions fuzz;
  std::string replay_dir;
  std::string metrics_output;
  std::string trace_output;
  bool list = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: lake_fuzz_cli [--seeds N] [--seed-start N] [--threads N]\n"
      "                     [--out DIR] [--invariant NAME]... [--no-shrink]\n"
      "                     [--plant-bug] [--max-rows N] [--list]\n"
      "                     [--replay DIR] [--metrics-out FILE.json]\n"
      "                     [--trace-out FILE.json]\n"
      "  --seeds N       number of lakes to generate and check (default 50)\n"
      "  --seed-start N  first seed of the campaign (default 1)\n"
      "  --threads N     seed-sweep workers (0 = hardware, 1 = sequential;\n"
      "                  the report is identical at any thread count)\n"
      "  --out DIR       repro output directory (default fuzz-repros)\n"
      "  --invariant NAME\n"
      "                  check only this invariant (repeatable; see --list)\n"
      "  --no-shrink     report the original failing lake without shrinking\n"
      "  --plant-bug     include the deliberately wrong test-only invariant\n"
      "                  (self-test of the shrink/repro pipeline)\n"
      "  --max-rows N    largest generated table height (default 40)\n"
      "  --list          print the invariant registry and exit\n"
      "  --replay DIR    re-check a previously written repro directory\n"
      "  --metrics-out FILE.json\n"
      "                  write the campaign's observability report (qa.*\n"
      "                  counters, peak RSS); digest is thread-count\n"
      "                  independent\n"
      "  --trace-out FILE.json\n"
      "                  write a Chrome trace-event file of the campaign\n"
      "                  (per-seed worker spans); open at\n"
      "                  https://ui.perfetto.dev\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v) return false;
      options->fuzz.num_seeds = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--seed-start") {
      const char* v = next();
      if (!v) return false;
      options->fuzz.seed_start = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      options->fuzz.threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      options->fuzz.repro_dir = v;
    } else if (arg == "--invariant") {
      const char* v = next();
      if (!v) return false;
      options->fuzz.invariant_filter.push_back(v);
    } else if (arg == "--no-shrink") {
      options->fuzz.shrink = false;
    } else if (arg == "--plant-bug") {
      options->fuzz.include_planted = true;
    } else if (arg == "--max-rows") {
      const char* v = next();
      if (!v) return false;
      options->fuzz.fuzz.max_rows = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      options->metrics_output = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      options->trace_output = v;
    } else if (arg == "--list") {
      options->list = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return false;
      options->replay_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  options.fuzz.repro_dir = "fuzz-repros";
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }

  if (options.list) {
    for (const qa::Invariant& inv : qa::RegistryInvariants(true)) {
      std::printf("%-44s %s\n", inv.name.c_str(), inv.description.c_str());
    }
    return 0;
  }

  if (!options.replay_dir.empty()) {
    auto report = qa::ReplayRepro(options.replay_dir);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 2;
    }
    std::printf("%s", report->Summary().c_str());
    return report->ok() ? 0 : 1;
  }

  // Shared registry/tracer for the campaign, created only when requested —
  // with neither flag the fuzz runner sees null sinks and records nothing.
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Tracer> tracer;
  if (!options.metrics_output.empty() || !options.trace_output.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    tracer = std::make_unique<obs::Tracer>();
    options.fuzz.metrics = metrics.get();
    options.fuzz.tracer = tracer.get();
  }

  auto report = qa::RunFuzz(options.fuzz);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", report->Summary().c_str());

  if (metrics != nullptr) {
    obs::RecordProcessPeakRss(metrics.get());
  }
  if (!options.metrics_output.empty()) {
    std::ofstream report_file(options.metrics_output);
    if (!report_file) {
      std::fprintf(stderr, "cannot write metrics report to %s\n",
                   options.metrics_output.c_str());
      return 2;
    }
    report_file << obs::JsonReport(*metrics, tracer.get());
    std::printf("metrics report written to %s (digest %s)\n",
                options.metrics_output.c_str(),
                obs::DeterministicDigest(*metrics, tracer.get()).c_str());
  }
  if (!options.trace_output.empty()) {
    std::ofstream trace_file(options.trace_output);
    if (!trace_file) {
      std::fprintf(stderr, "cannot write trace to %s\n",
                   options.trace_output.c_str());
      return 2;
    }
    trace_file << obs::ChromeTraceJson(*tracer);
    std::printf("trace written to %s (open at https://ui.perfetto.dev)\n",
                options.trace_output.c_str());
  }

  if (!report->ok()) {
    std::printf("repros written under %s (replay with --replay DIR)\n",
                options.fuzz.repro_dir.c_str());
    return 1;
  }
  return 0;
}
