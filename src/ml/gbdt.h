// Histogram-based gradient-boosted decision trees for binary classification.
//
// LightGBM-style substrate: features are pre-binned into at most `max_bins`
// quantile buckets; regression trees are grown depth-wise on (gradient,
// hessian) statistics of the logistic loss with Newton leaf weights and L2
// regularisation — the same algorithmic core as LightGBM/XGBoost, which the
// paper uses as its downstream evaluators.

#ifndef AUTOFEAT_ML_GBDT_H_
#define AUTOFEAT_ML_GBDT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"

namespace autofeat::ml {

struct GbdtOptions {
  size_t num_rounds = 60;
  double learning_rate = 0.1;
  int max_depth = 5;
  int max_bins = 64;
  /// L2 regularisation on leaf weights.
  double lambda = 1.0;
  /// Minimum hessian sum per leaf.
  double min_child_weight = 1.0;
  /// Fraction of features considered per tree (LightGBM feature_fraction).
  double feature_fraction = 1.0;
  /// Fraction of rows sampled per tree (stochastic gradient boosting).
  double subsample = 1.0;
  uint64_t seed = 42;
};

/// \brief Quantile binner mapping raw feature values to bin codes.
class FeatureBinner {
 public:
  /// Learns per-feature bin edges (quantiles of the training column).
  void Fit(const Dataset& data, int max_bins);

  /// Bin code of `value` for feature f: index of first edge >= value.
  uint8_t Bin(size_t feature, double value) const;

  /// Pre-binned codes for a full dataset, column-major.
  std::vector<std::vector<uint8_t>> BinAll(const Dataset& data) const;

  size_t num_bins(size_t feature) const {
    return edges_[feature].size() + 1;
  }

 private:
  // edges_[f] = sorted upper-inclusive boundaries; value <= edges_[f][b]
  // falls into bin b, values above all edges into bin edges_.size().
  std::vector<std::vector<double>> edges_;
};

/// \brief Gradient-boosted tree ensemble.
class Gbdt final : public Classifier {
 public:
  explicit Gbdt(GbdtOptions options = {}, std::string name = "GBT")
      : options_(options), name_(std::move(name)) {}

  /// Preset approximating the paper's LightGBM configuration.
  static Gbdt LightGbmLike(uint64_t seed = 42) {
    GbdtOptions o;
    o.num_rounds = 80;
    o.learning_rate = 0.1;
    o.max_depth = 5;
    o.feature_fraction = 0.9;
    o.seed = seed;
    return Gbdt(o, "LightGBM-like");
  }

  /// Preset approximating an XGBoost configuration (deeper, stronger L2).
  static Gbdt XgBoostLike(uint64_t seed = 42) {
    GbdtOptions o;
    o.num_rounds = 80;
    o.learning_rate = 0.1;
    o.max_depth = 6;
    o.lambda = 2.0;
    o.subsample = 0.9;
    o.seed = seed;
    return Gbdt(o, "XGBoost-like");
  }

  Status Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, size_t row) const override;
  std::string name() const override { return name_; }
  std::vector<double> FeatureImportances() const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  struct Node {
    int feature = -1;       // -1 = leaf
    uint8_t bin = 0;        // go left if binned value <= bin
    int left = -1;
    int right = -1;
    double value = 0.0;     // leaf weight (already scaled by learning rate)
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  // Builds one tree on the current gradients; returns its index.
  void BuildTree(const std::vector<std::vector<uint8_t>>& binned,
                 const std::vector<double>& grad,
                 const std::vector<double>& hess,
                 const std::vector<size_t>& rows,
                 const std::vector<size_t>& features, Tree* tree);

  int BuildNode(const std::vector<std::vector<uint8_t>>& binned,
                const std::vector<double>& grad,
                const std::vector<double>& hess, std::vector<size_t>& rows,
                const std::vector<size_t>& features, int depth, Tree* tree);

  double PredictRaw(const Dataset& data, size_t row) const;

  GbdtOptions options_;
  std::string name_;
  FeatureBinner binner_;
  std::vector<Tree> trees_;
  std::vector<double> importances_;
  double base_score_ = 0.0;
  size_t num_features_ = 0;
};

}  // namespace autofeat::ml

#endif  // AUTOFEAT_ML_GBDT_H_
