// Morsel-driven work-stealing scheduler, and the SchedulerKind switch that
// selects between it and the fork-join chunk cursor in thread_pool.h.
//
// ParallelFor's shared atomic cursor is simple and fair, but every chunk
// claim bounces one cache line between all lanes, and a lane that hits a
// long-running chunk late keeps the whole call alive while the other lanes
// idle at the exit barrier. The morsel scheduler (Leis et al.,
// "Morsel-Driven Parallelism", SIGMOD 2014) instead pre-partitions the index
// range into fixed-size morsels, deals them out block-contiguously across
// per-lane Chase-Lev deques, and lets each lane run its own block LIFO
// (ascending index order, cache-friendly) with zero shared-state traffic.
// Only when a lane runs dry does it touch other lanes' deques, stealing
// from the top (the work the owner would reach last). Skewed workloads —
// one expensive candidate amid hundreds of cheap ones — rebalance
// automatically without any lane ever waiting at an intermediate barrier.
//
// Determinism: the scheduler only decides *where* an index runs, never what
// it computes or where the result lands. Callers fold results in index
// order (ParallelMapWith writes out[i]), stochastic bodies derive their RNG
// stream from the index via DeriveSeed, and the scheduler's own counters
// (`thread_pool.morsel.*`) register as non-deterministic — so observable
// output is byte-identical across thread counts and across both scheduler
// kinds.

#ifndef AUTOFEAT_UTIL_SCHEDULER_H_
#define AUTOFEAT_UTIL_SCHEDULER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace autofeat {

/// \brief Which data-parallel loop runtime a component uses.
enum class SchedulerKind {
  /// Shared atomic chunk cursor with an exit barrier (ParallelFor).
  kForkJoin,
  /// Per-lane work-stealing deques over fixed-size morsels.
  kMorsel,
};

/// "forkjoin" / "morsel" (stable CLI and log vocabulary).
const char* SchedulerKindName(SchedulerKind kind);

/// Parses the SchedulerKindName vocabulary; returns false (and leaves *out
/// untouched) on anything else.
bool ParseSchedulerKind(const std::string& text, SchedulerKind* out);

/// Case-insensitive parse that reports the valid vocabulary in the Status
/// on failure (the --scheduler CLI path).
Result<SchedulerKind> ParseScheduler(const std::string& text);

/// Runs `fn(i)` for every i in [begin, end) using morsel-driven work
/// stealing: the range is cut into morsels of `morsel_size` iterations
/// (0 behaves like 1), dealt block-contiguously across one deque per lane
/// (pool workers + the participating caller), and lanes steal across deques
/// once their own runs dry. Same contract as ParallelFor: inline with a
/// null/single-thread pool or a range of at most one morsel, iterations may
/// run concurrently in any order, and if any iteration throws, the
/// exception from the lowest-indexed morsel is rethrown on the caller after
/// all morsels finished.
void MorselParallelFor(ThreadPool* pool, size_t begin, size_t end,
                       size_t morsel_size,
                       const std::function<void(size_t)>& fn);

/// ParallelFor dispatching on `kind`; `grain` is the chunk size for
/// kForkJoin and the morsel size for kMorsel.
inline void ParallelForWith(SchedulerKind kind, ThreadPool* pool,
                            size_t begin, size_t end, size_t grain,
                            const std::function<void(size_t)>& fn) {
  if (kind == SchedulerKind::kMorsel) {
    MorselParallelFor(pool, begin, end, grain, fn);
  } else {
    ParallelFor(pool, begin, end, grain, fn);
  }
}

/// ParallelMap dispatching on `kind`: maps `fn` over [0, n) and returns the
/// results in index order regardless of which lane ran which index.
template <typename T, typename Fn>
std::vector<T> ParallelMapWith(SchedulerKind kind, ThreadPool* pool, size_t n,
                               size_t grain, Fn&& fn) {
  std::vector<T> out(n);
  ParallelForWith(kind, pool, 0, n, grain,
                  [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace autofeat

#endif  // AUTOFEAT_UTIL_SCHEDULER_H_
