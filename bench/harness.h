// Shared infrastructure for the figure/table harnesses.
//
// Every bench binary prints the rows/series its paper figure reports.
// AUTOFEAT_BENCH_MODE=full runs the registry at full (scaled) size with all
// four tree models; the default quick mode shrinks rows and uses two tree
// models so the whole suite completes on a single core in minutes. Either
// way the qualitative shapes (who wins, rough factors) are preserved.

#ifndef AUTOFEAT_BENCH_HARNESS_H_
#define AUTOFEAT_BENCH_HARNESS_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/arda.h"
#include "baselines/augmenter.h"
#include "baselines/autofeat_method.h"
#include "baselines/join_all.h"
#include "baselines/mab.h"
#include "datagen/registry.h"
#include "discovery/data_lake.h"
#include "ml/trainer.h"
#include "obs/chrome_trace.h"
#include "obs/event_log.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/string_utils.h"

namespace autofeat::benchx {

inline bool FullMode() {
  const char* mode = std::getenv("AUTOFEAT_BENCH_MODE");
  return mode != nullptr && std::string(mode) == "full";
}

/// Registry spec adjusted for the active mode.
inline datagen::DatasetSpec ScaledSpec(datagen::DatasetSpec spec) {
  if (!FullMode()) {
    spec.rows = std::min<size_t>(spec.rows, 2000);
    spec.total_features = std::min<size_t>(spec.total_features, 120);
  }
  return spec;
}

/// Tree models evaluated per augmented table (Figs. 4/6 average these).
inline std::vector<ml::ModelKind> BenchTreeModels() {
  if (FullMode()) return ml::TreeModelKinds();
  return {ml::ModelKind::kLightGbm, ml::ModelKind::kRandomForest};
}

enum class Setting { kBenchmark, kDataLake };

inline const char* SettingName(Setting s) {
  return s == Setting::kBenchmark ? "benchmark" : "data lake";
}

/// Builds the DRG for a setting (§VII-A): KFK edges vs discovered edges.
inline Result<DatasetRelationGraph> BuildSettingDrg(
    const datagen::BuiltLake& built, Setting setting) {
  if (setting == Setting::kBenchmark) return BuildDrgFromKfk(built.lake);
  MatchOptions options;
  options.threshold = 0.55;
  return BuildDrgByDiscovery(built.lake, options);
}

struct MethodRow {
  std::string method;
  double fs_seconds = 0.0;
  double total_seconds = 0.0;
  double accuracy = 0.0;       // mean over the evaluation models
  size_t tables_joined = 0;
  bool skipped = false;
  std::string skip_reason;
};

/// Runs one augmentation method and evaluates its output table with the
/// given models; accuracy is the mean test accuracy.
inline Result<MethodRow> RunMethod(baselines::Augmenter* method,
                                   const datagen::BuiltLake& built,
                                   const DatasetRelationGraph& drg,
                                   const std::vector<ml::ModelKind>& models) {
  MethodRow row;
  row.method = method->name();
  AF_ASSIGN_OR_RETURN(baselines::AugmenterResult result,
                      method->Augment(built.lake, drg, built.base_table,
                                      built.label_column));
  row.fs_seconds = result.feature_selection_seconds;
  row.total_seconds = result.total_seconds;
  row.tables_joined = result.tables_joined;
  AF_ASSIGN_OR_RETURN(row.accuracy,
                      ml::AverageAccuracy(result.augmented,
                                          built.label_column, models));
  return row;
}

/// The method lineup of §VII-B. JoinAll variants are optional because the
/// harness skips them where the paper does (school; the data-lake setting)
/// due to the Eq. 3 path explosion.
inline std::vector<std::unique_ptr<baselines::Augmenter>> MakeMethods(
    bool include_join_all, uint64_t seed = 42) {
  std::vector<std::unique_ptr<baselines::Augmenter>> methods;
  methods.push_back(std::make_unique<baselines::BaseMethod>());

  AutoFeatConfig config;
  config.seed = seed;
  config.sample_rows = FullMode() ? 2000 : 1000;
  // The novelty-first beam reaches every table early; quick mode caps the
  // long tail of re-combination paths on dense discovered graphs.
  config.max_paths = FullMode() ? 2000 : 600;
  methods.push_back(std::make_unique<baselines::AutoFeatMethod>(config));

  baselines::ArdaOptions arda;
  arda.seed = seed;
  methods.push_back(std::make_unique<baselines::Arda>(arda));

  baselines::MabOptions mab;
  mab.seed = seed;
  // The paper's MAB is the slowest method (model training in every
  // episode); give it a realistic episode budget.
  mab.episodes = FullMode() ? 30 : 20;
  methods.push_back(std::make_unique<baselines::Mab>(mab));

  if (include_join_all) {
    baselines::JoinAllOptions plain;
    plain.seed = seed;
    methods.push_back(std::make_unique<baselines::JoinAll>(plain));
    baselines::JoinAllOptions filtered;
    filtered.filter = true;
    filtered.seed = seed;
    methods.push_back(std::make_unique<baselines::JoinAll>(filtered));
  }
  return methods;
}

/// One machine-readable timing sample: wall seconds of one phase of one
/// bench at a given thread count.
struct BenchTiming {
  std::string phase;
  size_t threads = 1;
  double seconds = 0.0;
};

/// Where BENCH_/TRACE_ artifacts land: AUTOFEAT_BENCH_JSON_DIR when set,
/// else the source root captured at configure time (so benches launched
/// from the build tree still drop artifacts at the repo root, where CI and
/// bench_diff look for them), else the current directory.
inline std::string BenchJsonDir() {
  const char* dir = std::getenv("AUTOFEAT_BENCH_JSON_DIR");
  if (dir != nullptr && *dir != '\0') return dir;
#ifdef AUTOFEAT_SOURCE_ROOT
  return AUTOFEAT_SOURCE_ROOT;
#else
  return ".";
#endif
}

/// Writes `BENCH_<name>.json` so the perf trajectory is tracked across PRs
/// (one file per bench; later runs overwrite). Destination directory comes
/// from BenchJsonDir() above. Schema (`autofeat.bench.v1`):
/// {"schema": "autofeat.bench.v1", "bench": name, "mode": quick|full,
///  "timings": [{"phase": ..., "threads": N, "seconds": S}, ...],
///  "metrics": {...}}
/// The metrics block is the obs report of an (untimed) instrumented run —
/// `{}` when the bench did not attach a registry — so counter trajectories
/// (cache hits, candidates scored) ride along with the timings. All strings
/// are JSON-escaped; names with quotes/backslashes survive a round trip.
/// This is the format tools/bench_diff consumes as a CI regression gate.
inline bool WriteBenchJson(const std::string& name,
                           const std::vector<BenchTiming>& timings,
                           const obs::MetricsRegistry* metrics = nullptr) {
  std::string path = BenchJsonDir() + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"schema\": \"autofeat.bench.v1\",\n  \"bench\": \""
      << JsonEscape(name) << "\",\n  \"mode\": \""
      << (FullMode() ? "full" : "quick") << "\",\n  \"timings\": [";
  for (size_t i = 0; i < timings.size(); ++i) {
    if (i > 0) out << ",";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"threads\": %zu, \"seconds\": %.6f}",
                  timings[i].threads, timings[i].seconds);
    out << "\n    {\"phase\": \"" << JsonEscape(timings[i].phase) << "\", "
        << buf;
  }
  out << "\n  ],\n  \"metrics\": ";
  if (metrics != nullptr) {
    out << obs::JsonReport(*metrics, /*tracer=*/nullptr);
  } else {
    out << "{}";
  }
  out << "\n}\n";
  std::printf("timings written to %s\n", path.c_str());
  return true;
}

/// Writes `EVENTS_<name>.jsonl` — the structured serving event log of one
/// instrumented bench run (same destination rules as WriteBenchJson). CI
/// uploads it next to the trace so "what happened, in order" ships with
/// every run.
inline bool WriteBenchEvents(const std::string& name,
                             const obs::EventLog& events) {
  std::string path = BenchJsonDir() + "/EVENTS_" + name + ".jsonl";
  if (!events.WriteFile(path)) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("event log written to %s (%zu events)\n", path.c_str(),
              events.size());
  return true;
}

/// Writes `TRACE_<name>.json` — the Chrome trace-event view of one
/// instrumented bench run (same destination rules as WriteBenchJson).
/// Open at https://ui.perfetto.dev or chrome://tracing.
inline bool WriteBenchTrace(const std::string& name,
                            const obs::Tracer& tracer) {
  std::string path = BenchJsonDir() + "/TRACE_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << obs::ChromeTraceJson(tracer);
  std::printf("trace written to %s (open at https://ui.perfetto.dev)\n",
              path.c_str());
  return true;
}

inline void PrintRule(int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintModeBanner(const char* figure) {
  std::printf("%s | mode=%s (set AUTOFEAT_BENCH_MODE=full for the full-size "
              "run)\n",
              figure, FullMode() ? "full" : "quick");
}

inline void PrintMethodHeader() {
  std::printf("%-12s %10s %10s %8s %8s  %s\n", "method", "fs_time_s",
              "total_s", "acc", "#joined", "note");
  PrintRule(64);
}

inline void PrintMethodRow(const MethodRow& row) {
  if (row.skipped) {
    std::printf("%-12s %10s %10s %8s %8s  %s\n", row.method.c_str(), "-", "-",
                "-", "-", row.skip_reason.c_str());
    return;
  }
  std::printf("%-12s %10.3f %10.3f %8.3f %8zu\n", row.method.c_str(),
              row.fs_seconds, row.total_seconds, row.accuracy,
              row.tables_joined);
}

}  // namespace autofeat::benchx

#endif  // AUTOFEAT_BENCH_HARNESS_H_
