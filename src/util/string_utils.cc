#include "util/string_utils.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>

namespace autofeat {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> curr(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

size_t BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                  size_t max_dist) {
  size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
  // |len(a) - len(b)| lower-bounds the distance: insertions/deletions alone
  // must cover the length gap.
  if (diff > max_dist) return diff;
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> curr(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    size_t row_min = curr[0];
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost});
      row_min = std::min(row_min, curr[j]);
    }
    // Every entry of each later row is >= the minimum of this row (each DP
    // step takes a min over neighbours that are themselves >= row_min), so
    // the final distance is too: the cutoff can never be met again.
    if (row_min > max_dist) return row_min;
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(max_len);
}

double BoundedLevenshteinSimilarity(std::string_view a, std::string_view b,
                                    double floor_sim) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  // sim >= floor  <=>  dist <= (1 - floor) * max_len; distances are
  // integers, so flooring the budget preserves exactness at the boundary.
  double budget = (1.0 - std::clamp(floor_sim, 0.0, 1.0)) *
                  static_cast<double>(max_len);
  size_t max_dist = static_cast<size_t>(budget);
  size_t dist = BoundedLevenshteinDistance(a, b, max_dist);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(max_len);
}

std::vector<std::string> QGrams(std::string_view s, size_t q) {
  std::vector<std::string> grams;
  if (q == 0) return grams;
  std::string padded(q - 1, '#');
  padded += s;
  padded += std::string(q - 1, '#');
  if (padded.size() < q) return grams;
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, q));
  }
  std::sort(grams.begin(), grams.end());
  return grams;
}

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  std::vector<std::string> ga = QGrams(a, q);
  std::vector<std::string> gb = QGrams(b, q);
  if (ga.empty() && gb.empty()) return 1.0;
  std::set<std::string> sa(ga.begin(), ga.end());
  std::set<std::string> sb(gb.begin(), gb.end());
  size_t inter = 0;
  for (const auto& g : sa) inter += sb.count(g);
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace autofeat
