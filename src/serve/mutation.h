// Lake mutations: the serving layer's write vocabulary, shared with the qa
// mutation-trace fuzzer so a trace replays identically through the
// incremental LakeService and through a plain cold DataLake.

#ifndef AUTOFEAT_SERVE_MUTATION_H_
#define AUTOFEAT_SERVE_MUTATION_H_

#include <string>
#include <vector>

#include "discovery/data_lake.h"
#include "table/table.h"
#include "util/status.h"

namespace autofeat::serve {

/// \brief One write against the lake.
struct LakeMutation {
  enum class Kind {
    /// Adds `payload` as a new table named payload.name().
    kAddTable,
    /// Appends the rows of `payload` to existing table `table` (schemas
    /// must match exactly).
    kAppendRows,
    /// Removes table `table` (and any KFK constraints referencing it).
    kDropTable,
  };

  Kind kind = Kind::kAddTable;
  /// Target table name (kAppendRows / kDropTable; for kAddTable it is
  /// payload.name()).
  std::string table;
  /// The new table (kAddTable) or the appended rows (kAppendRows); unused
  /// for kDropTable.
  Table payload;

  /// The table the mutation touches.
  const std::string& TargetTable() const {
    return kind == Kind::kAddTable ? payload.name() : table;
  }
};

/// "add" / "append" / "drop" (stable CLI / repro-manifest vocabulary).
const char* MutationKindName(LakeMutation::Kind kind);

/// Case-insensitive inverse of MutationKindName; the Status reports the
/// valid values on failure.
Result<LakeMutation::Kind> ParseMutationKind(const std::string& text);

/// Applies one mutation to a plain lake: the cold half of the
/// incremental-vs-rebuild equivalence contract. The serving layer applies
/// exactly this to its snapshot's lake copy, so for any trace the two
/// final lake states are identical — including which mutations *fail*
/// (failed mutations change nothing on either side).
Status ApplyMutationToLake(DataLake* lake, const LakeMutation& mutation);

/// One-line human-readable description (CLI and driver logs).
std::string MutationSummary(const LakeMutation& mutation);

/// Structural equality (kind, target, payload contents) — fuzzer
/// determinism checks.
bool MutationsEqual(const LakeMutation& a, const LakeMutation& b);

}  // namespace autofeat::serve

#endif  // AUTOFEAT_SERVE_MUTATION_H_
