// Schema: ordered, uniquely named, typed fields of a Table.

#ifndef AUTOFEAT_TABLE_SCHEMA_H_
#define AUTOFEAT_TABLE_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "table/data_type.h"

namespace autofeat {

/// \brief A named, typed column slot.
struct Field {
  std::string name;
  DataType type = DataType::kDouble;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered collection of uniquely named fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) {
    for (auto& f : fields) AddField(std::move(f));
  }

  /// Appends a field; returns false (and ignores it) if the name exists.
  bool AddField(Field field) {
    if (index_.count(field.name) > 0) return false;
    index_[field.name] = fields_.size();
    fields_.push_back(std::move(field));
    return true;
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, if present.
  std::optional<size_t> FieldIndex(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  bool HasField(const std::string& name) const {
    return index_.count(name) > 0;
  }

  std::vector<std::string> FieldNames() const {
    std::vector<std::string> names;
    names.reserve(fields_.size());
    for (const auto& f : fields_) names.push_back(f.name);
    return names;
  }

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_TABLE_SCHEMA_H_
