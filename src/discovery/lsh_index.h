// MinHash-LSH candidate generation for sub-quadratic DRG construction.
//
// All-pairs discovery scores every table pair — O(n²) in the number of
// tables — which caps lake size long before memory does. This module is the
// cheap first stage of a two-stage pipeline (FREYJA-style): fixed-width
// MinHash signatures are computed per column from the same bottom-k value
// sketches the exact matcher scores with, banded into an LSH table, and
// every band-bucket collision between columns of two different tables makes
// that *table pair* a candidate. Exact scoring (MatchSchemas /
// MatchByValueOverlap) then runs only on candidates.
//
// Soundness: with the default MatchOptions weights, a reported edge needs
// value overlap — name similarity alone cannot reach the threshold — and
// value overlap is exactly what MinHash collisions witness. Two recall
// mechanisms cover the two overlap regimes:
//
//  * banding — b bands of r rows collide with probability 1-(1-s^r)^b for
//    Jaccard similarity s; the defaults (32 x 2) catch s >= 0.3 with
//    >95% coverage, which is the regime of genuine key↔key joins;
//  * small-column rescue — asymmetric containment (a tiny FK domain inside
//    a large PK range) has near-zero Jaccard, so columns with at most
//    `small_column_rescue` distinct values additionally index every sketch
//    value: any column pair (of rescued columns) whose sketches intersect
//    at all is guaranteed to collide.
//
// Determinism: signatures reuse the hash discipline of BuildColumnSketch —
// pure functions of the column's distinct-value set via FNV-1a + the
// DeriveSeed (splitmix64) finaliser, never std::hash — and the candidate
// pair list is sorted and deduplicated, so the output (and every counter
// derived from it) is byte-identical at any thread count and across
// platforms.

#ifndef AUTOFEAT_DISCOVERY_LSH_INDEX_H_
#define AUTOFEAT_DISCOVERY_LSH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "discovery/sketch_cache.h"

namespace autofeat {

class DataLake;
class ThreadPool;

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// \brief Tuning knobs of the candidate generator. Defaults are chosen for
/// recall (a missed candidate silently drops a DRG edge; a spurious one
/// only costs one exact scoring call).
struct LshOptions {
  /// Bands x rows-per-band = signature width. More bands raise recall at
  /// low Jaccard; more rows per band sharpen the threshold. 32 x 2 catches
  /// Jaccard >= 0.3 pairs with > 95% probability.
  size_t num_bands = 32;
  size_t rows_per_band = 2;
  /// Cheap-profile prefilter: columns with fewer distinct non-null values
  /// than this never enter the index (1 = index everything non-empty; the
  /// exact matcher already discounts low-cardinality evidence, so raising
  /// this trades recall for fewer candidates).
  size_t min_distinct = 1;
  /// Cheap-profile prefilter: when > 0, bucket collisions between columns
  /// whose distinct counts differ by more than this factor are ignored
  /// (FREYJA-style cardinality-ratio bound). 0 disables the bound.
  double max_cardinality_ratio = 0.0;
  /// Columns with at most this many distinct values index every sketch
  /// value hash in addition to their bands (containment rescue — see file
  /// comment). 0 disables the rescue.
  size_t small_column_rescue = 64;

  size_t num_hashes() const { return num_bands * rows_per_band; }
};

/// \brief Fixed-width MinHash signature of one column sketch. `mins[k]` is
/// the minimum of the k-th derived hash over the sketch's values; empty
/// when the column was not indexed (empty sketch or filtered out).
struct MinHashSignature {
  std::vector<uint64_t> mins;

  bool empty() const { return mins.empty(); }
  size_t ApproxBytes() const {
    return sizeof(MinHashSignature) + mins.size() * sizeof(uint64_t);
  }
};

/// Platform-stable 64-bit FNV-1a of a value string (the per-value base hash
/// every derived MinHash row mixes from).
uint64_t LshValueHash(const std::string& value);

/// Signature of one sketch: mins[k] = min over values of
/// DeriveSeed(LshValueHash(v), k). Pure function of the sketch's value set.
/// The derivation streams are batched through the SIMD MinHash kernel.
MinHashSignature ComputeMinHashSignature(const ColumnSketch& sketch,
                                         size_t num_hashes);

/// Scalar reference of ComputeMinHashSignature (per-stream DeriveSeed loop),
/// kept for differential testing — must be bit-exact with the batched form.
MinHashSignature ComputeMinHashSignatureReference(const ColumnSketch& sketch,
                                                  size_t num_hashes);

/// \brief Pairwise view of one column's LSH state: the exact set of bucket
/// keys LshCandidateIndex::Build would file the column under.
///
/// The serving layer's incremental matcher cannot afford to rebuild the
/// whole lake-wide index per mutation, but it must reproduce the cold
/// index's candidate decisions exactly (the incremental DRG is gated
/// byte-identical to a cold rebuild). Profiles make the bucket structure a
/// pure per-column function: two columns collide in the cold index iff
/// their profiles share a bucket key, so candidate generation for a touched
/// table is a pairwise check against every other table's cached profiles.
struct ColumnLshProfile {
  /// Sorted bucket keys (band streams + rescue streams, group-separated —
  /// see LshCandidateIndex::Build stage 2).
  std::vector<uint64_t> bucket_keys;
  uint64_t num_distinct = 0;
  /// False when the column enters no bucket (empty/filtered sketch).
  bool indexed = false;

  size_t ApproxBytes() const {
    return sizeof(ColumnLshProfile) + bucket_keys.size() * sizeof(uint64_t);
  }
};

/// The profile Build would index this column under. Pure function of
/// (sketch, column type, options).
ColumnLshProfile ComputeColumnLshProfile(const ColumnSketch& sketch,
                                         DataType type,
                                         const LshOptions& options);

/// Profiles for every column of `table` over its sketches.
std::vector<ColumnLshProfile> ComputeTableLshProfiles(
    const Table& table, const std::vector<ColumnSketch>& sketches,
    const LshOptions& options);

/// True iff the two columns would share a bucket in the cold index (sorted
/// key intersection), subject to the same cardinality-ratio bound Build
/// applies to collisions.
bool LshProfilesCollide(const ColumnLshProfile& a, const ColumnLshProfile& b,
                        const LshOptions& options);

/// True iff any column pair across the two tables collides — i.e. the cold
/// index would emit this table pair as a candidate.
bool LshTablesCollide(const std::vector<ColumnLshProfile>& a,
                      const std::vector<ColumnLshProfile>& b,
                      const LshOptions& options);

/// \brief Banded LSH index over every column of a lake, emitting candidate
/// table pairs for exact DRG scoring.
class LshCandidateIndex {
 public:
  /// Builds signatures for every column of `lake` (in parallel over tables
  /// when `pool` is given; results identical at any thread count) over the
  /// sketches in `cache`, bands them, and materialises the sorted,
  /// deduplicated candidate table-pair list.
  ///
  /// A non-null `metrics` records `lsh.bands` (configured band count),
  /// `lsh.signature_bytes` (total signature footprint), `lsh.columns_indexed`
  /// / `lsh.columns_skipped` (prefilter effect), `lsh.bucket_collisions`
  /// (cross-table column collisions before table-pair dedup) and maintains
  /// the `lsh_index.bytes` / `.bytes_peak` gauges from ApproxBytes().
  /// Signature building records `sketch.minhash` worker spans into the
  /// pool's tracer, when both exist. `cache` is non-const because sketches
  /// build (and, under a memory budget, rebuild) lazily on request; the
  /// index pins each table's entry only while signing it.
  static LshCandidateIndex Build(const DataLake& lake,
                                 LakeSketchCache& cache,
                                 const LshOptions& options,
                                 ThreadPool* pool = nullptr,
                                 obs::MetricsRegistry* metrics = nullptr);

  /// Candidate (i, j) table-index pairs, i < j, ascending — the subset of
  /// the upper triangle the exact matcher needs to score. Folding matches
  /// in this order preserves the all-pairs edge-insertion order on the
  /// surviving pairs.
  const std::vector<std::pair<size_t, size_t>>& candidate_table_pairs()
      const {
    return pairs_;
  }

  size_t num_indexed_columns() const { return columns_indexed_; }
  size_t num_skipped_columns() const { return columns_skipped_; }
  /// Total bytes of all column signatures (part of ApproxBytes()).
  size_t signature_bytes() const { return signature_bytes_; }
  /// Cross-table column-level bucket collisions (>= candidate pair count).
  size_t num_bucket_collisions() const { return bucket_collisions_; }

  /// Approximate heap footprint: signatures + bucket entries + the pair
  /// list. Size-based (entry counts, not container capacity), so equal
  /// content reports equal bytes and the derived gauges stay deterministic.
  size_t ApproxBytes() const;

 private:
  std::vector<std::pair<size_t, size_t>> pairs_;
  size_t columns_indexed_ = 0;
  size_t columns_skipped_ = 0;
  size_t signature_bytes_ = 0;
  size_t bucket_entries_ = 0;
  size_t bucket_collisions_ = 0;
};

}  // namespace autofeat

#endif  // AUTOFEAT_DISCOVERY_LSH_INDEX_H_
