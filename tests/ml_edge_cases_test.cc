// Edge cases of the ML substrate: zero features, single rows, extreme
// class imbalance, unfitted models.

#include <gtest/gtest.h>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "support/ml_fixtures.h"

namespace autofeat::ml {
namespace {

// Dataset with a label but zero feature columns.
Dataset FeaturelessDataset(size_t n) {
  Table t("featureless");
  Column label(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) label.AppendInt64(static_cast<int64_t>(i % 2));
  t.AddColumn("label", std::move(label)).Abort();
  return Dataset::FromTable(t, "label").MoveValue();
}

TEST(MlEdgeCaseTest, ZeroFeatureDatasetsTrainToPrior) {
  Dataset data = FeaturelessDataset(40);
  // Every model must cope with p = 0 and fall back to the class prior.
  {
    DecisionTree tree;
    ASSERT_TRUE(tree.Fit(data).ok());
    EXPECT_NEAR(tree.PredictProba(data, 0), 0.5, 1e-9);
  }
  {
    Forest forest = Forest::RandomForest(5, 1);
    ASSERT_TRUE(forest.Fit(data).ok());
    EXPECT_NEAR(forest.PredictProba(data, 0), 0.5, 0.2);
  }
  {
    Gbdt model;
    ASSERT_TRUE(model.Fit(data).ok());
    EXPECT_NEAR(model.PredictProba(data, 0), 0.5, 0.05);
  }
  {
    LogisticRegressionL1 model;
    ASSERT_TRUE(model.Fit(data).ok());
    EXPECT_NEAR(model.PredictProba(data, 0), 0.5, 0.05);
  }
  {
    Knn model;
    ASSERT_TRUE(model.Fit(data).ok());
    double p = model.PredictProba(data, 0);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MlEdgeCaseTest, UnfittedModelsReturnNeutralProbability) {
  Dataset data = MakeBlobs(10, 1.0, 1);
  DecisionTree tree;
  EXPECT_DOUBLE_EQ(tree.PredictProba(data, 0), 0.5);
  Forest forest = Forest::RandomForest(3, 1);
  EXPECT_DOUBLE_EQ(forest.PredictProba(data, 0), 0.5);
  Knn knn;
  EXPECT_DOUBLE_EQ(knn.PredictProba(data, 0), 0.5);
}

TEST(MlEdgeCaseTest, SingleRowTraining) {
  // A binary Dataset needs two classes; train on a single-row *subset*.
  Dataset two = MakeBlobs(2, 1.0, 2);
  DecisionTree tree;
  ASSERT_TRUE(tree.FitRows(two, {0}).ok());
  // The single row's label is the prediction everywhere.
  EXPECT_DOUBLE_EQ(tree.PredictProba(two, 1),
                   static_cast<double>(two.label(0)));
  Gbdt model;
  ASSERT_TRUE(model.Fit(two).ok());
  for (size_t r = 0; r < 2; ++r) {
    double p = model.PredictProba(two, r);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MlEdgeCaseTest, ExtremeImbalanceStaysCalibratedDirectionally) {
  // 2% positives with clear signal: every model should still rank the
  // positive cluster above the negative one (AUC > 0.8).
  Rng rng(5);
  Table t("imbalanced");
  Column x(DataType::kDouble), label(DataType::kInt64);
  for (size_t i = 0; i < 1000; ++i) {
    int y = i % 50 == 0 ? 1 : 0;
    x.AppendDouble(y == 1 ? rng.Normal(2.5, 1) : rng.Normal(-0.5, 1));
    label.AppendInt64(y);
  }
  t.AddColumn("x", std::move(x)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  Dataset data = Dataset::FromTable(t, "label").MoveValue();

  Gbdt gbdt = Gbdt::LightGbmLike(1);
  ASSERT_TRUE(gbdt.Fit(data).ok());
  EXPECT_GT(RocAuc(data.labels(), gbdt.PredictProbaAll(data)), 0.8);

  LogisticRegressionL1 logreg;
  ASSERT_TRUE(logreg.Fit(data).ok());
  EXPECT_GT(RocAuc(data.labels(), logreg.PredictProbaAll(data)), 0.8);
}

TEST(MlEdgeCaseTest, ConstantFeaturesDoNotBreakTraining) {
  Table t("constant");
  Column c1(DataType::kDouble), c2(DataType::kDouble),
      label(DataType::kInt64);
  for (size_t i = 0; i < 60; ++i) {
    c1.AppendDouble(7.0);
    c2.AppendDouble(-1.0);
    label.AppendInt64(static_cast<int64_t>(i % 2));
  }
  t.AddColumn("c1", std::move(c1)).Abort();
  t.AddColumn("c2", std::move(c2)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  Dataset data = Dataset::FromTable(t, "label").MoveValue();
  for (auto make : {+[]() -> std::unique_ptr<Classifier> {
                      return std::make_unique<DecisionTree>();
                    },
                    +[]() -> std::unique_ptr<Classifier> {
                      return std::make_unique<Gbdt>();
                    },
                    +[]() -> std::unique_ptr<Classifier> {
                      return std::make_unique<LogisticRegressionL1>();
                    }}) {
    auto model = make();
    ASSERT_TRUE(model->Fit(data).ok()) << model->name();
    double p = model->PredictProba(data, 0);
    EXPECT_NEAR(p, 0.5, 0.05) << model->name();
  }
}

TEST(MlEdgeCaseTest, PredictionOnWiderDatasetIgnoresExtraFeatures) {
  // Models trained on p features must tolerate prediction data with more
  // columns (extra ones ignored by index-based access).
  Dataset train = MakeBlobs(200, 2.0, 7);
  Gbdt model = Gbdt::LightGbmLike(3);
  ASSERT_TRUE(model.Fit(train).ok());
  Dataset wide = train;
  wide.AddFeature("extra", std::vector<double>(train.num_rows(), 42.0));
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_DOUBLE_EQ(model.PredictProba(train, r),
                     model.PredictProba(wide, r));
  }
}

}  // namespace
}  // namespace autofeat::ml
