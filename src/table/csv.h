// CSV reading/writing with simple type inference.
//
// The lake on disk is a directory of CSV files; these functions move tables
// between disk and the in-memory columnar representation.

#ifndef AUTOFEAT_TABLE_CSV_H_
#define AUTOFEAT_TABLE_CSV_H_

#include <string>

#include "table/table.h"
#include "util/status.h"

namespace autofeat {

struct CsvOptions {
  char delimiter = ',';
  /// Empty fields (and the literal strings below) are parsed as nulls.
  bool treat_empty_as_null = true;
};

/// Parses CSV text (first row = header) into a Table. Column types are
/// inferred: int64 if every non-null value is an integer, double if numeric,
/// string otherwise.
Result<Table> ReadCsvString(const std::string& csv, const std::string& name,
                            const CsvOptions& options = {});

/// Reads a CSV file; the table is named after the file stem.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serialises a table to CSV text (nulls become empty fields).
std::string WriteCsvString(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace autofeat

#endif  // AUTOFEAT_TABLE_CSV_H_
