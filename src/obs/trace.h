// Hierarchical phase tracing — orchestration spans plus per-thread worker
// spans.
//
// A Tracer records begin/end spans with parent links, so a run decomposes
// into a tree: augment -> discover -> {prewarm, stratified_sample,
// seed_base_features, bfs} -> ... Two span families share that tree:
//
//  * *Orchestration* spans (BeginSpan/EndSpan, ScopedSpan) are opened by
//    coordinating code; parentage is the calling thread's innermost open
//    span. Their names/ids/nesting are identical at any thread count and
//    are part of the report's deterministic digest.
//  * *Worker* spans (BeginWorkerSpan/EndWorkerSpan, ScopedWorkerSpan) are
//    recorded by ParallelFor lanes and other pool tasks into per-thread
//    buffers (no shared lock on the hot path) and merged into the span
//    tree at Snapshot time. How many of them exist depends on scheduling
//    (e.g. how many helper lanes actually ran), so they are *excluded*
//    from the deterministic digest and only appear in volatile reports
//    and Chrome trace exports (obs/chrome_trace.h).
//
// A TaskContext captured at an enqueue site (CaptureTaskContext) carries
// the enqueuing span id and a fresh flow id into the worker: the worker
// span parents under the orchestration span that submitted it, and the
// flow id links enqueue -> execute arrows across threads in Perfetto.
//
// Thread safety: all members may be called concurrently; a span begun on
// one thread must be ended on the same thread (the RAII wrappers
// guarantee this).

#ifndef AUTOFEAT_OBS_TRACE_H_
#define AUTOFEAT_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/timer.h"

namespace autofeat::obs {

class Tracer;

/// \brief One recorded phase span. Ids are 1-based begin order
/// (orchestration spans first, worker spans appended at Snapshot time);
/// parent 0 means root. Thread ids are dense (first-seen order), not OS
/// ids.
struct SpanRecord {
  size_t id = 0;
  size_t parent = 0;
  std::string name;
  size_t thread = 0;
  /// Seconds since the tracer was constructed; end < 0 while still open.
  double start_seconds = 0.0;
  double end_seconds = -1.0;
  /// Worker spans are scheduling-dependent: excluded from the
  /// deterministic digest, emitted only in volatile reports.
  bool worker = false;
  /// Nonzero links this worker span back to its enqueue site (FlowPoint).
  uint64_t flow_id = 0;
};

/// \brief The enqueue side of a flow arrow: where (span, thread) and when
/// a task was submitted. The matching worker span carries the same
/// flow_id.
struct FlowPoint {
  uint64_t flow_id = 0;
  size_t thread = 0;
  double time_seconds = 0.0;
  size_t parent = 0;
};

/// \brief Captured on the enqueuing thread, carried by value into pool
/// tasks. Top-level worker spans opened with it parent under `parent` and
/// inherit `flow_id`. Default-constructed (tracer == nullptr) it is a
/// no-op context.
struct TaskContext {
  Tracer* tracer = nullptr;
  size_t parent = 0;
  uint64_t flow_id = 0;
};

/// \brief Thread-safe hierarchical span recorder.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span under the calling thread's innermost open span (or the
  /// root). Returns the span id for EndSpan.
  size_t BeginSpan(std::string name);

  /// Closes the span; must be the calling thread's innermost open span.
  void EndSpan(size_t id);

  /// Captures the calling thread's enqueue context: the innermost open
  /// orchestration span becomes the worker spans' parent, and a fresh
  /// flow id links enqueue -> execute in the Chrome trace.
  TaskContext CaptureTask();

  /// Opens a span in the calling thread's worker buffer. With an empty
  /// local stack the span parents under `ctx` (enqueue-site parent + flow
  /// id) — or, when `ctx` is a no-op context, under the calling thread's
  /// innermost open orchestration span; nested worker spans parent under
  /// the enclosing worker span.
  void BeginWorkerSpan(std::string name, const TaskContext& ctx);

  /// Closes the calling thread's innermost open worker span.
  void EndWorkerSpan();

  /// Orchestration spans only (worker spans excluded).
  size_t num_spans() const;

  /// Worker spans across all per-thread buffers.
  size_t num_worker_spans() const;

  /// Copy of every span: orchestration spans in begin order, then worker
  /// spans grouped by dense thread id (so the merged layout depends only
  /// on thread discovery order, not map iteration).
  std::vector<SpanRecord> Snapshot() const;

  /// Copy of every captured enqueue point, in capture order.
  std::vector<FlowPoint> FlowSnapshot() const;

 private:
  struct WorkerSpan {
    std::string name;
    size_t orch_parent = 0;
    size_t local_parent = 0;  // 1-based index into the same buffer; 0 = none
    uint64_t flow_id = 0;
    double start_seconds = 0.0;
    double end_seconds = -1.0;
  };
  struct WorkerBuffer {
    std::mutex mutex;
    size_t thread = 0;
    std::vector<WorkerSpan> spans;
    std::vector<size_t> open;  // 1-based indices into spans
  };

  /// The calling thread's buffer, created on first use (global lock),
  /// then resolved through a thread-local cache keyed by tracer uid.
  WorkerBuffer* BufferForThisThread();

  const uint64_t uid_;
  mutable std::mutex mutex_;
  Timer clock_;
  std::vector<SpanRecord> spans_;
  std::unordered_map<std::thread::id, std::vector<size_t>> open_stacks_;
  std::unordered_map<std::thread::id, size_t> thread_ids_;
  std::unordered_map<std::thread::id, std::unique_ptr<WorkerBuffer>> buffers_;
  std::vector<FlowPoint> flows_;
  std::atomic<uint64_t> next_flow_{1};
};

/// \brief Null-safe enqueue-context capture.
inline TaskContext CaptureTaskContext(Tracer* tracer) {
  return tracer != nullptr ? tracer->CaptureTask() : TaskContext{};
}

/// \brief RAII span; null-safe (a null tracer records nothing).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name) : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(std::move(name));
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  size_t id_ = 0;
};

/// \brief RAII worker span; null-safe in both forms.
class ScopedWorkerSpan {
 public:
  /// Inside a pool task: parent + flow come from the enqueue-site
  /// context.
  ScopedWorkerSpan(const TaskContext& ctx, std::string name)
      : tracer_(ctx.tracer) {
    if (tracer_ != nullptr) tracer_->BeginWorkerSpan(std::move(name), ctx);
  }
  /// Context-free: parents under the calling thread's innermost open
  /// orchestration span, no flow arrow.
  ScopedWorkerSpan(Tracer* tracer, std::string name) : tracer_(tracer) {
    if (tracer_ != nullptr) {
      tracer_->BeginWorkerSpan(std::move(name), TaskContext{});
    }
  }
  ~ScopedWorkerSpan() {
    if (tracer_ != nullptr) tracer_->EndWorkerSpan();
  }
  ScopedWorkerSpan(const ScopedWorkerSpan&) = delete;
  ScopedWorkerSpan& operator=(const ScopedWorkerSpan&) = delete;

 private:
  Tracer* tracer_;
};

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_TRACE_H_
