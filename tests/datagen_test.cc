#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/lake_builder.h"
#include "datagen/registry.h"
#include "stats/correlation.h"

namespace autofeat::datagen {
namespace {

TEST(GeneratorTest, ShapeMatchesOptions) {
  GeneratorOptions options;
  options.rows = 100;
  options.informative_features = 3;
  options.redundant_features = 2;
  options.noise_features = 4;
  Table t = GenerateClassification(options, "gen");
  EXPECT_EQ(t.name(), "gen");
  EXPECT_EQ(t.num_rows(), 100u);
  // row_id + 3 + 2 + 4 + label.
  EXPECT_EQ(t.num_columns(), 11u);
  EXPECT_TRUE(t.HasColumn("row_id"));
  EXPECT_TRUE(t.HasColumn("inf_0"));
  EXPECT_TRUE(t.HasColumn("red_1"));
  EXPECT_TRUE(t.HasColumn("noise_3"));
  EXPECT_TRUE(t.HasColumn("label"));
}

TEST(GeneratorTest, LabelsAreBalancedBinary) {
  GeneratorOptions options;
  options.rows = 1000;
  options.label_noise = 0.0;
  Table t = GenerateClassification(options, "gen");
  auto label = *t.GetColumn("label");
  size_t positives = 0;
  for (size_t i = 0; i < label->size(); ++i) {
    int64_t v = label->GetInt64(i);
    ASSERT_TRUE(v == 0 || v == 1);
    positives += static_cast<size_t>(v);
  }
  EXPECT_EQ(positives, 500u);
}

TEST(GeneratorTest, InformativeCorrelatesNoiseDoesNot) {
  GeneratorOptions options;
  options.rows = 2000;
  options.class_separation = 1.5;
  Table t = GenerateClassification(options, "gen");
  auto label = (*t.GetColumn("label"))->ToNumeric();
  double inf_corr = std::abs(SpearmanCorrelation(
      (*t.GetColumn("inf_0"))->ToNumeric(), label));
  double noise_corr = std::abs(SpearmanCorrelation(
      (*t.GetColumn("noise_0"))->ToNumeric(), label));
  EXPECT_GT(inf_corr, 0.25);
  EXPECT_LT(noise_corr, 0.1);
}

TEST(GeneratorTest, MissingRateProducesNulls) {
  GeneratorOptions options;
  options.rows = 500;
  options.missing_rate = 0.2;
  Table t = GenerateClassification(options, "gen");
  double ratio = (*t.GetColumn("inf_0"))->null_ratio();
  EXPECT_NEAR(ratio, 0.2, 0.08);
  // Keys and labels are never masked.
  EXPECT_EQ((*t.GetColumn("row_id"))->null_count(), 0u);
  EXPECT_EQ((*t.GetColumn("label"))->null_count(), 0u);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  GeneratorOptions options;
  options.rows = 200;
  Table a = GenerateClassification(options, "a");
  Table b = GenerateClassification(options, "b");
  b.set_name("a");
  EXPECT_TRUE(a.Equals(b));
}

TEST(LakeBuilderTest, TableCountAndNames) {
  LakeSpec spec;
  spec.name = "lk";
  spec.rows = 300;
  spec.joinable_tables = 6;
  spec.total_features = 24;
  BuiltLake built = BuildLake(spec);
  EXPECT_EQ(built.lake.num_tables(), 7u);  // base + 6 satellites.
  EXPECT_EQ(built.base_table, "lk_base");
  EXPECT_TRUE(built.lake.HasTable("lk_t0"));
  EXPECT_TRUE(built.lake.HasTable("lk_t5"));
  EXPECT_EQ(built.truth.size(), 6u);
}

TEST(LakeBuilderTest, LabelOnlyInBaseTable) {
  LakeSpec spec;
  spec.rows = 200;
  spec.joinable_tables = 4;
  BuiltLake built = BuildLake(spec);
  for (const auto& t : built.lake.tables()) {
    if (t.name() == built.base_table) {
      EXPECT_TRUE(t.HasColumn(built.label_column));
    } else {
      EXPECT_FALSE(t.HasColumn(built.label_column));
    }
  }
}

TEST(LakeBuilderTest, KfkConstraintsValidAndConnected) {
  LakeSpec spec;
  spec.rows = 200;
  spec.joinable_tables = 8;
  BuiltLake built = BuildLake(spec);
  EXPECT_EQ(built.lake.kfk_constraints().size(), 8u);
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok()) << drg.status().ToString();
  EXPECT_EQ(drg->num_edges(), 8u);
  // Every satellite is reachable from the base (paths exist).
  auto paths =
      drg->EnumeratePaths(*drg->NodeId(built.base_table), 8);
  std::set<size_t> reached;
  for (const auto& p : paths) reached.insert(p.Terminal(0));
  EXPECT_EQ(reached.size(), 8u);
}

TEST(LakeBuilderTest, SnowflakePlantsStrongestSignalDeep) {
  LakeSpec spec;
  spec.rows = 300;
  spec.joinable_tables = 6;
  spec.star_schema = false;
  BuiltLake built = BuildLake(spec);
  EXPECT_GE(built.DeepestRelevantDepth(), 2u);
  double deepest_effect = 0;
  double depth1_max = 0;
  for (const auto& t : built.truth) {
    if (t.depth == built.DeepestRelevantDepth()) {
      deepest_effect = std::max(deepest_effect, t.effect);
    }
    if (t.depth == 1) depth1_max = std::max(depth1_max, t.effect);
  }
  EXPECT_GT(deepest_effect, depth1_max);
}

TEST(LakeBuilderTest, StarSchemaAllDepthOne) {
  LakeSpec spec;
  spec.rows = 200;
  spec.joinable_tables = 5;
  spec.star_schema = true;
  BuiltLake built = BuildLake(spec);
  for (const auto& t : built.truth) EXPECT_EQ(t.depth, 1u);
  EXPECT_FALSE(built.RelevantTables().empty());
}

TEST(LakeBuilderTest, KeyCoverageControlsSatelliteSize) {
  LakeSpec spec;
  spec.rows = 1000;
  spec.joinable_tables = 2;
  spec.star_schema = true;
  spec.key_coverage = 0.5;
  BuiltLake built = BuildLake(spec);
  auto t0 = built.lake.GetTable("synthetic_t0");
  ASSERT_TRUE(t0.ok());
  EXPECT_NEAR(static_cast<double>((*t0)->num_rows()), 500.0, 1.0);
}

TEST(LakeBuilderTest, DeterministicGivenSeed) {
  LakeSpec spec;
  spec.rows = 150;
  spec.joinable_tables = 4;
  BuiltLake a = BuildLake(spec);
  BuiltLake b = BuildLake(spec);
  for (const auto& t : a.lake.tables()) {
    auto other = b.lake.GetTable(t.name());
    ASSERT_TRUE(other.ok());
    EXPECT_TRUE(t.Equals(**other)) << t.name();
  }
}

TEST(RegistryTest, EightPaperDatasets) {
  auto specs = PaperDatasets();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].name, "credit");
  EXPECT_EQ(specs[0].paper_rows, 1001u);
  EXPECT_EQ(specs[0].joinable_tables, 5u);
  EXPECT_EQ(specs[7].name, "bioresponse");
  EXPECT_EQ(specs[7].joinable_tables, 40u);
  // `school` is the star schema with 16 tables and 731 features.
  auto school = FindDataset("school");
  ASSERT_TRUE(school.ok());
  EXPECT_TRUE(school->star_schema);
  EXPECT_EQ(school->total_features, 731u);
  EXPECT_FALSE(FindDataset("nope").ok());
}

TEST(RegistryTest, ScaledRowsNeverExceedPaperRows) {
  for (const auto& spec : PaperDatasets()) {
    EXPECT_LE(spec.rows, spec.paper_rows) << spec.name;
    EXPECT_GT(spec.rows, 0u) << spec.name;
  }
}

TEST(RegistryTest, BuildPaperLakeMatchesSpec) {
  auto spec = *FindDataset("credit");
  BuiltLake built = BuildPaperLake(spec, 7);
  EXPECT_EQ(built.lake.num_tables(), spec.joinable_tables + 1);
  auto base = built.lake.GetTable(built.base_table);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ((*base)->num_rows(), spec.rows);
}

}  // namespace
}  // namespace autofeat::datagen
