#include "stats/information.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/discretize.h"
#include "util/rng.h"

namespace autofeat {
namespace {

TEST(EntropyTest, UniformBinary) {
  std::vector<int> x{0, 1, 0, 1};
  EXPECT_NEAR(Entropy(x), std::log(2.0), 1e-12);
}

TEST(EntropyTest, ConstantIsZero) {
  EXPECT_DOUBLE_EQ(Entropy({3, 3, 3}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
}

TEST(EntropyTest, UniformKArySequence) {
  std::vector<int> x;
  for (int k = 0; k < 8; ++k) {
    for (int r = 0; r < 10; ++r) x.push_back(k);
  }
  EXPECT_NEAR(Entropy(x), std::log(8.0), 1e-12);
}

TEST(EntropyTest, MissingRowsExcluded) {
  std::vector<int> x{0, 1, kMissingBin, kMissingBin};
  EXPECT_NEAR(Entropy(x), std::log(2.0), 1e-12);
}

TEST(JointEntropyTest, IndependentUniform) {
  // All four combinations equally often -> H = log 4.
  std::vector<int> x{0, 0, 1, 1};
  std::vector<int> y{0, 1, 0, 1};
  EXPECT_NEAR(JointEntropy(x, y), std::log(4.0), 1e-12);
}

TEST(MutualInformationTest, PerfectDependence) {
  std::vector<int> x{0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(MutualInformation(x, x), std::log(2.0), 1e-12);
}

TEST(MutualInformationTest, IndependentIsZero) {
  std::vector<int> x{0, 0, 1, 1};
  std::vector<int> y{0, 1, 0, 1};
  EXPECT_NEAR(MutualInformation(x, y), 0.0, 1e-12);
}

TEST(MutualInformationTest, Symmetric) {
  Rng rng(1);
  std::vector<int> x(200), y(200);
  for (size_t i = 0; i < 200; ++i) {
    x[i] = static_cast<int>(rng.UniformInt(0, 4));
    y[i] = (x[i] + static_cast<int>(rng.UniformInt(0, 1))) % 5;
  }
  EXPECT_NEAR(MutualInformation(x, y), MutualInformation(y, x), 1e-12);
}

TEST(MutualInformationTest, NonNegative) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> x(50), y(50);
    for (size_t i = 0; i < 50; ++i) {
      x[i] = static_cast<int>(rng.UniformInt(0, 3));
      y[i] = static_cast<int>(rng.UniformInt(0, 3));
    }
    EXPECT_GE(MutualInformation(x, y), 0.0);
  }
}

TEST(MutualInformationTest, InformationGainAlias) {
  std::vector<int> x{0, 1, 1, 0};
  std::vector<int> y{0, 1, 1, 0};
  EXPECT_DOUBLE_EQ(InformationGain(x, y), MutualInformation(x, y));
}

TEST(MutualInformationTest, BoundedByMinEntropy) {
  Rng rng(3);
  std::vector<int> x(300), y(300);
  for (size_t i = 0; i < 300; ++i) {
    x[i] = static_cast<int>(rng.UniformInt(0, 7));
    y[i] = x[i] / 2;
  }
  double mi = MutualInformation(x, y);
  EXPECT_LE(mi, Entropy(x) + 1e-12);
  EXPECT_LE(mi, Entropy(y) + 1e-12);
}

TEST(ConditionalMiTest, ChainRuleSpecialCases) {
  // If Y = X, then I(X;Y|Z) = H(X|Z).
  std::vector<int> x{0, 1, 0, 1, 1, 0, 1, 0};
  std::vector<int> z{0, 0, 0, 0, 1, 1, 1, 1};
  double cmi = ConditionalMutualInformation(x, x, z);
  double h_given_z = JointEntropy(x, z) - Entropy(z);
  EXPECT_NEAR(cmi, h_given_z, 1e-12);
}

TEST(ConditionalMiTest, ZeroWhenZDeterminesBoth) {
  // X and Y are functions of Z -> I(X;Y|Z) = 0.
  std::vector<int> z{0, 1, 2, 0, 1, 2};
  std::vector<int> x{0, 1, 0, 0, 1, 0};
  std::vector<int> y{1, 0, 1, 1, 0, 1};
  EXPECT_NEAR(ConditionalMutualInformation(x, y, z), 0.0, 1e-12);
}

TEST(SymmetricalUncertaintyTest, Bounds) {
  std::vector<int> x{0, 1, 0, 1};
  EXPECT_NEAR(SymmetricalUncertainty(x, x), 1.0, 1e-12);
  std::vector<int> y{0, 0, 1, 1};
  EXPECT_NEAR(SymmetricalUncertainty(x, y), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(SymmetricalUncertainty({1, 1}, {2, 2}), 0.0);
}

TEST(SymmetricalUncertaintyTest, InUnitIntervalOnRandomData) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> x(80), y(80);
    for (size_t i = 0; i < 80; ++i) {
      x[i] = static_cast<int>(rng.UniformInt(0, 5));
      y[i] = rng.Bernoulli(0.3) ? x[i] : static_cast<int>(rng.UniformInt(0, 5));
    }
    double su = SymmetricalUncertainty(x, y);
    EXPECT_GE(su, 0.0);
    EXPECT_LE(su, 1.0 + 1e-12);
  }
}

TEST(CorrectedMiTest, IndependentFeaturesScoreNearZero) {
  // The Miller-Madow corrected estimate should stay near zero for
  // independent 10-bin features at n = 1000 (plug-in would be ~0.04 nats).
  Rng rng(5);
  double total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> x(1000), y(1000);
    for (size_t i = 0; i < 1000; ++i) {
      x[i] = static_cast<int>(rng.UniformInt(0, 9));
      y[i] = static_cast<int>(rng.UniformInt(0, 9));
    }
    total += MutualInformationCorrected(x, y);
  }
  EXPECT_LT(total / 10, 0.01);
}

TEST(CorrectedMiTest, PreservesStrongDependence) {
  std::vector<int> x(1000);
  for (size_t i = 0; i < 1000; ++i) x[i] = static_cast<int>(i % 4);
  double mi = MutualInformationCorrected(x, x);
  EXPECT_NEAR(mi, std::log(4.0), 0.02);
}

TEST(CorrectedMiTest, SharedMissingnessDoesNotInflate) {
  // Two independent features missing on the same 30% of rows (as after a
  // left join) must not look dependent.
  Rng rng(6);
  std::vector<int> x(1000), y(1000);
  for (size_t i = 0; i < 1000; ++i) {
    bool missing = i < 300;
    x[i] = missing ? kMissingBin : static_cast<int>(rng.UniformInt(0, 7));
    y[i] = missing ? kMissingBin : static_cast<int>(rng.UniformInt(0, 7));
  }
  EXPECT_LT(MutualInformationCorrected(x, y), 0.02);
  EXPECT_LT(MutualInformation(x, y), 0.06);  // Plug-in over complete pairs.
}

TEST(CorrectedCmiTest, NonNegativeAndZeroForIndependent) {
  Rng rng(7);
  std::vector<int> x(800), y(800), z(800);
  for (size_t i = 0; i < 800; ++i) {
    x[i] = static_cast<int>(rng.UniformInt(0, 3));
    y[i] = static_cast<int>(rng.UniformInt(0, 3));
    z[i] = static_cast<int>(rng.UniformInt(0, 1));
  }
  double cmi = ConditionalMutualInformationCorrected(x, y, z);
  EXPECT_GE(cmi, 0.0);
  EXPECT_LT(cmi, 0.03);
}

// Property sweep: MI of a noisy copy increases as noise decreases.
class MiMonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(MiMonotonicityTest, NoisierCopyHasLessInformation) {
  double noise = GetParam();
  Rng rng(42);
  std::vector<int> x(2000), y_low(2000), y_high(2000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<int>(rng.UniformInt(0, 4));
    y_low[i] = rng.Bernoulli(noise) ? static_cast<int>(rng.UniformInt(0, 4))
                                    : x[i];
    y_high[i] = rng.Bernoulli(std::min(1.0, noise + 0.3))
                    ? static_cast<int>(rng.UniformInt(0, 4))
                    : x[i];
  }
  EXPECT_GT(MutualInformation(x, y_low), MutualInformation(x, y_high));
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, MiMonotonicityTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5));

}  // namespace
}  // namespace autofeat
