// Shannon information measures over discretised features (paper §V).
//
// All quantities use natural logarithms; all inputs are discrete codes as
// produced by stats/discretize.h. Estimation is pairwise-complete: rows
// whose code is kMissingBin in any argument are excluded from every term of
// that estimate, so I(X;Y) and its entropies share one support.

#ifndef AUTOFEAT_STATS_INFORMATION_H_
#define AUTOFEAT_STATS_INFORMATION_H_

#include <vector>

namespace autofeat {

/// Shannon entropy H(X) in nats.
double Entropy(const std::vector<int>& x);

/// Joint entropy H(X, Y); x and y must be equal length.
double JointEntropy(const std::vector<int>& x, const std::vector<int>& y);

/// Mutual information I(X; Y) = H(X) + H(Y) - H(X, Y). Symmetric, >= 0
/// (up to floating-point noise, clamped at 0).
double MutualInformation(const std::vector<int>& x, const std::vector<int>& y);

/// Conditional mutual information I(X; Y | Z)
/// = H(X,Z) + H(Y,Z) - H(X,Y,Z) - H(Z). Clamped at 0.
double ConditionalMutualInformation(const std::vector<int>& x,
                                    const std::vector<int>& y,
                                    const std::vector<int>& z);

/// Information gain of feature X w.r.t. label Y; alias of I(X; Y) (§V-C).
inline double InformationGain(const std::vector<int>& x,
                              const std::vector<int>& y) {
  return MutualInformation(x, y);
}

/// Symmetrical uncertainty SU(X, Y) = 2*I(X;Y) / (H(X) + H(Y)), in [0, 1].
/// Returns 0 when both entropies are 0 (constant features share nothing).
double SymmetricalUncertainty(const std::vector<int>& x,
                              const std::vector<int>& y);

/// Miller-Madow bias-corrected mutual information. Plug-in MI estimates are
/// biased upward by ~(Kx-1)(Ky-1)/(2n), which at modest sample sizes swamps
/// the true dependence of weak features; the correction adds (K-1)/(2n) to
/// each plug-in entropy (K = occupied cells), cancelling the bias so that
/// independent features score ~0. Used by the redundancy criteria, whose
/// J > 0 acceptance test needs an (approximately) unbiased estimate.
double MutualInformationCorrected(const std::vector<int>& x,
                                  const std::vector<int>& y);

/// Miller-Madow bias-corrected conditional mutual information.
double ConditionalMutualInformationCorrected(const std::vector<int>& x,
                                             const std::vector<int>& y,
                                             const std::vector<int>& z);

/// Pre-SIMD scalar implementations of the pairwise measures, kept as the
/// differential oracle (tests/kernels_test.cc) and the before/after axis of
/// bench/kernels.cc. Same estimators with independent mechanics — results
/// agree with the optimised paths to within floating-point summation order.
namespace reference {

double Entropy(const std::vector<int>& x);
double JointEntropy(const std::vector<int>& x, const std::vector<int>& y);
double MutualInformation(const std::vector<int>& x, const std::vector<int>& y);
double MutualInformationCorrected(const std::vector<int>& x,
                                  const std::vector<int>& y);
double SymmetricalUncertainty(const std::vector<int>& x,
                              const std::vector<int>& y);

}  // namespace reference

}  // namespace autofeat

#endif  // AUTOFEAT_STATS_INFORMATION_H_
