// Registry of the paper's evaluation datasets (Table II), reproduced as
// synthetic lakes with matching structure (rows, #joinable tables,
// #features). Row counts of the largest datasets are scaled down to fit a
// single-core budget; both the full and the scaled counts are retained so
// the harness can report the scale factor (see EXPERIMENTS.md).

#ifndef AUTOFEAT_DATAGEN_REGISTRY_H_
#define AUTOFEAT_DATAGEN_REGISTRY_H_

#include <string>
#include <vector>

#include "datagen/lake_builder.h"

namespace autofeat::datagen {

/// One Table II row, plus build parameters for its synthetic stand-in.
struct DatasetSpec {
  std::string name;
  size_t paper_rows = 0;       // rows reported in Table II
  size_t rows = 0;             // rows built here (scaled for large sets)
  size_t joinable_tables = 0;  // Table II "# Joinable tables"
  size_t total_features = 0;   // Table II "Total # features"
  double reference_accuracy = 0.0;  // Table II "Best accuracy"
  bool star_schema = false;    // `school` follows a star schema (§VII-C1)
  double key_coverage = 0.9;
  double missing_rate = 0.03;
};

/// The eight datasets of Table II, in the paper's order.
std::vector<DatasetSpec> PaperDatasets();

/// Lookup by name.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Builds the synthetic lake for a registry entry.
BuiltLake BuildPaperLake(const DatasetSpec& spec, uint64_t seed = 42);

}  // namespace autofeat::datagen

#endif  // AUTOFEAT_DATAGEN_REGISTRY_H_
