// Encoded ML dataset: the bridge between relational Tables and the models.
//
// Tables are imputed (most-frequent, per the paper's methodology §V-B),
// string features ordinally encoded, and the label mapped to {0, 1}. The
// result is a dense column-major matrix the classifiers consume.

#ifndef AUTOFEAT_ML_DATASET_H_
#define AUTOFEAT_ML_DATASET_H_

#include <string>
#include <vector>

#include "table/table.h"
#include "util/status.h"

namespace autofeat::ml {

/// \brief Dense, fully numeric, null-free training data.
class Dataset {
 public:
  Dataset() = default;

  /// Builds a dataset from `table` using `label_column` as the binary label.
  /// All other columns become features. Nulls are imputed with the most
  /// frequent value; strings are ordinally encoded; the label's two distinct
  /// values map to 0/1 (fails if not exactly two classes).
  static Result<Dataset> FromTable(const Table& table,
                                   const std::string& label_column);

  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return columns_.size(); }

  const std::vector<std::string>& feature_names() const { return names_; }
  const std::vector<double>& column(size_t f) const { return columns_[f]; }
  const std::vector<int>& labels() const { return labels_; }

  double at(size_t row, size_t feature) const {
    return columns_[feature][row];
  }
  int label(size_t row) const { return labels_[row]; }

  /// Row-subset copy (for train/test splits and bagging).
  Dataset TakeRows(const std::vector<size_t>& rows) const;

  /// Adds a feature column (used by ARDA's random-injection selection).
  void AddFeature(std::string name, std::vector<double> values);

  /// Column-subset copy.
  Dataset SelectFeatures(const std::vector<size_t>& feature_indices) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;  // [feature][row]
  std::vector<int> labels_;
};

}  // namespace autofeat::ml

#endif  // AUTOFEAT_ML_DATASET_H_
