#include "discovery/schema_matcher.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

TEST(NameSimilarityTest, ExactMatchIsOne) {
  EXPECT_DOUBLE_EQ(NameSimilarity("customer_id", "customer_id"), 1.0);
  EXPECT_DOUBLE_EQ(NameSimilarity("ID", "id"), 1.0);  // Case-insensitive.
}

TEST(NameSimilarityTest, QualifiedNamesMatchOnColumnPart) {
  EXPECT_DOUBLE_EQ(NameSimilarity("orders.customer_id", "customer_id"), 1.0);
  EXPECT_DOUBLE_EQ(NameSimilarity("a.key", "b.key"), 1.0);
}

TEST(NameSimilarityTest, SimilarBeatsDissimilar) {
  EXPECT_GT(NameSimilarity("customer_id", "customer_key"),
            NameSimilarity("customer_id", "temperature"));
}

TEST(ValueOverlapTest, ContainmentSemantics) {
  Column small = Column::Int64s({1, 2, 3});
  Column large = Column::Int64s({1, 2, 3, 4, 5, 6});
  // The smaller set is fully contained -> 1.0.
  EXPECT_DOUBLE_EQ(ValueOverlap(small, large, 100), 1.0);
  Column disjoint = Column::Int64s({10, 11});
  EXPECT_DOUBLE_EQ(ValueOverlap(small, disjoint, 100), 0.0);
}

TEST(ValueOverlapTest, CrossTypeNumericKeys) {
  Column ints = Column::Int64s({1, 2, 3});
  Column doubles = Column::Doubles({1.0, 2.0, 9.0});
  EXPECT_NEAR(ValueOverlap(ints, doubles, 100), 2.0 / 3, 1e-12);
}

TEST(ValueOverlapTest, NullsIgnored) {
  Column a = Column::Int64s({1, 2, 3}, {1, 0, 1});
  Column b = Column::Int64s({1, 3});
  EXPECT_DOUBLE_EQ(ValueOverlap(a, b, 100), 1.0);
}

TEST(ValueOverlapTest, EmptyColumnsScoreZero) {
  Column empty(DataType::kInt64);
  Column b = Column::Int64s({1});
  EXPECT_DOUBLE_EQ(ValueOverlap(empty, b, 100), 0.0);
}

// Key columns carry >= 16 distinct values so their value overlap counts
// as full evidence (see MatchOptions::min_distinct_for_overlap).
std::vector<int64_t> KeyRange(int64_t n) {
  std::vector<int64_t> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i)] = i;
  return v;
}

Table MakeOrders() {
  Table t("orders");
  t.AddColumn("customer_id", Column::Int64s(KeyRange(24))).Abort();
  std::vector<double> amounts(24);
  for (size_t i = 0; i < 24; ++i) amounts[i] = static_cast<double>(i) * 1.5;
  t.AddColumn("amount", Column::Doubles(std::move(amounts))).Abort();
  return t;
}

Table MakeCustomers() {
  Table t("customers");
  t.AddColumn("customer_id", Column::Int64s(KeyRange(24))).Abort();
  std::vector<double> ages(24);
  for (size_t i = 0; i < 24; ++i) ages[i] = 30.0 + static_cast<double>(i);
  t.AddColumn("age", Column::Doubles(std::move(ages))).Abort();
  return t;
}

TEST(MatchSchemasTest, FindsKeyMatch) {
  auto matches = MatchSchemas(MakeOrders(), MakeCustomers());
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].left_column, "customer_id");
  EXPECT_EQ(matches[0].right_column, "customer_id");
  EXPECT_GT(matches[0].score, 0.9);
}

TEST(MatchSchemasTest, KeyLikeAndContinuousDoNotPair) {
  // int64 key vs double feature must never match even with similar names.
  Table a("a");
  a.AddColumn("value", Column::Int64s({1, 2, 3})).Abort();
  Table b("b");
  b.AddColumn("value", Column::Doubles({1.5, 2.5, 3.5})).Abort();
  EXPECT_TRUE(MatchSchemas(a, b).empty());
}

TEST(MatchSchemasTest, ThresholdFilters) {
  MatchOptions strict;
  strict.threshold = 0.99;
  Table a("a");
  a.AddColumn("key_one", Column::Int64s({1, 2})).Abort();
  Table b("b");
  b.AddColumn("key_two", Column::Int64s({8, 9})).Abort();
  EXPECT_TRUE(MatchSchemas(a, b, strict).empty());
}

TEST(MatchSchemasTest, SortedByScoreDescending) {
  Table a("a");
  a.AddColumn("id", Column::Int64s({1, 2, 3})).Abort();
  a.AddColumn("zip", Column::Int64s({100, 200, 300})).Abort();
  Table b("b");
  b.AddColumn("id", Column::Int64s({1, 2, 3})).Abort();
  b.AddColumn("zip", Column::Int64s({100, 999, 888})).Abort();
  MatchOptions loose;
  loose.threshold = 0.3;
  auto matches = MatchSchemas(a, b, loose);
  ASSERT_GE(matches.size(), 2u);
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].score, matches[i].score);
  }
}

TEST(MatchSchemasTest, SpuriousOverlapCreatesMatch) {
  // Two unrelated surrogate-key columns over the same 0..n range with
  // similar names: the "spurious but not irrelevant" connections of the
  // data-lake setting.
  Table a("a");
  a.AddColumn("employee_nr", Column::Int64s(KeyRange(32))).Abort();
  Table b("b");
  b.AddColumn("employer_nr", Column::Int64s(KeyRange(32))).Abort();
  auto matches = MatchSchemas(a, b);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_GE(matches[0].score, 0.55);
}

TEST(MatchSchemasTest, TinyCardinalityOverlapIsDiscounted) {
  // A binary column (e.g. a label) is trivially contained in any key
  // range; that containment must not produce a join edge on its own.
  Table a("a");
  a.AddColumn("flag", Column::Int64s({0, 1, 0, 1, 0, 1})).Abort();
  Table b("b");
  b.AddColumn("some_key", Column::Int64s(KeyRange(32))).Abort();
  EXPECT_TRUE(MatchSchemas(a, b).empty());
}

}  // namespace
}  // namespace autofeat
