// Using the feature-selection library directly (without the AutoFeat
// engine): streaming relevance/redundancy selection over feature batches,
// comparing the metric choices of §V — the building blocks are part of the
// public API and usable standalone.

#include <cstdio>

#include "datagen/generator.h"
#include "fs/streaming.h"
#include "ml/trainer.h"
#include "util/timer.h"

using namespace autofeat;

int main() {
  // One flat table with informative / redundant / noise features.
  datagen::GeneratorOptions gen;
  gen.rows = 2000;
  gen.informative_features = 6;
  gen.redundant_features = 6;
  gen.noise_features = 18;
  gen.seed = 5;
  Table table = datagen::GenerateClassification(gen, "demo");
  std::printf("dataset: %zu rows, %zu feature columns\n", table.num_rows(),
              table.num_columns() - 2);

  auto view = FeatureView::FromTable(table, "label");
  view.status().Abort();

  // Simulate streaming arrival: features come in batches of 6 (as if each
  // batch were one join), and the pipeline keeps only relevant,
  // non-redundant ones.
  for (auto redundancy : {RedundancyKind::kMrmr, RedundancyKind::kJmi}) {
    StreamingFeatureSelector::Options options;
    options.relevance.kind = RelevanceKind::kSpearman;
    options.relevance.top_k = 5;
    options.redundancy.kind = redundancy;
    StreamingFeatureSelector selector(options);

    Timer timer;
    size_t accepted = 0;
    for (size_t start = 0; start < view->num_features(); start += 6) {
      std::vector<size_t> batch;
      for (size_t f = start; f < std::min(start + 6, view->num_features());
           ++f) {
        batch.push_back(f);
      }
      auto result = selector.ProcessBatch(*view, batch);
      accepted += result.selected.size();
    }
    double seconds = timer.ElapsedSeconds();

    // Evaluate the selected subset.
    std::vector<std::string> keep = selector.selected().names;
    keep.push_back("label");
    auto selected_table = table.SelectColumns(keep);
    selected_table.status().Abort();
    auto eval = ml::TrainAndEvaluate(*selected_table, "label",
                                     ml::ModelKind::kLightGbm);
    eval.status().Abort();

    std::printf("\n[%s] accepted %zu features in %.3f s -> accuracy %.3f\n",
                RedundancyKindName(redundancy), accepted, seconds,
                eval->accuracy);
    std::printf("  kept:");
    for (const auto& name : selector.selected().names) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }

  // Baseline: all features, no selection.
  auto all_eval = ml::TrainAndEvaluate(table, "label",
                                       ml::ModelKind::kLightGbm);
  all_eval.status().Abort();
  std::printf("\n[all features] accuracy %.3f\n", all_eval->accuracy);
  return 0;
}
