// Algorithm 2: the ranking score of a join path from its relevance and
// redundancy analysis scores.

#ifndef AUTOFEAT_CORE_RANKING_H_
#define AUTOFEAT_CORE_RANKING_H_

#include <vector>

#include "fs/relevance.h"

namespace autofeat {

/// Computes the ranking score of one join (one batch through the streaming
/// pipeline). Per Algorithm 2 the relevance scores are summed and weighted
/// by the cardinality of the selected subset, likewise the redundancy
/// scores, and the two sums are combined weighted by their common divisor —
/// implemented as score = mean(relevance scores) + mean(redundancy scores),
/// halved (see DESIGN.md §4.3 for the interpretation).
double ComputeRankingScore(const std::vector<FeatureScore>& relevance_scores,
                           const std::vector<FeatureScore>& redundancy_scores);

}  // namespace autofeat

#endif  // AUTOFEAT_CORE_RANKING_H_
