#include "relational/sampling.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace autofeat {

Table SampleRows(const Table& table, size_t n, Rng* rng) {
  size_t total = table.num_rows();
  if (n >= total) return table;
  std::vector<size_t> perm = rng->Permutation(total);
  perm.resize(n);
  std::sort(perm.begin(), perm.end());  // Preserve original row order.
  return table.TakeRows(perm);
}

namespace {

// Groups row indices by the key representation of `column`.
std::map<std::string, std::vector<size_t>> GroupByValue(const Column& column) {
  std::map<std::string, std::vector<size_t>> strata;
  for (size_t i = 0; i < column.size(); ++i) {
    strata[column.KeyAt(i)].push_back(i);
  }
  return strata;
}

}  // namespace

Result<Table> StratifiedSample(const Table& table,
                               const std::string& label_column, size_t n,
                               Rng* rng) {
  AF_ASSIGN_OR_RETURN(const Column* label, table.GetColumn(label_column));
  size_t total = table.num_rows();
  if (n >= total) return table;

  auto strata = GroupByValue(*label);
  std::vector<size_t> keep;
  keep.reserve(n);
  double fraction = static_cast<double>(n) / static_cast<double>(total);
  for (auto& [value, rows] : strata) {
    size_t take = std::max<size_t>(
        1, static_cast<size_t>(std::llround(fraction * rows.size())));
    take = std::min(take, rows.size());
    rng->Shuffle(&rows);
    for (size_t i = 0; i < take; ++i) keep.push_back(rows[i]);
  }
  std::sort(keep.begin(), keep.end());
  return table.TakeRows(keep);
}

Result<TrainTestIndices> TrainTestSplit(const Table& table,
                                        double test_fraction,
                                        const std::string& stratify_column,
                                        Rng* rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  size_t total = table.num_rows();
  TrainTestIndices out;
  if (stratify_column.empty()) {
    std::vector<size_t> perm = rng->Permutation(total);
    size_t test_n = static_cast<size_t>(std::llround(test_fraction * total));
    test_n = std::min(std::max<size_t>(test_n, 1), total - 1);
    out.test.assign(perm.begin(), perm.begin() + test_n);
    out.train.assign(perm.begin() + test_n, perm.end());
  } else {
    AF_ASSIGN_OR_RETURN(const Column* label, table.GetColumn(stratify_column));
    auto strata = GroupByValue(*label);
    for (auto& [value, rows] : strata) {
      rng->Shuffle(&rows);
      size_t test_n =
          static_cast<size_t>(std::llround(test_fraction * rows.size()));
      if (rows.size() > 1) test_n = std::max<size_t>(test_n, 1);
      test_n = std::min(test_n, rows.size() > 1 ? rows.size() - 1 : size_t{0});
      for (size_t i = 0; i < rows.size(); ++i) {
        (i < test_n ? out.test : out.train).push_back(rows[i]);
      }
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

}  // namespace autofeat
