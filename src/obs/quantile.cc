#include "obs/quantile.h"

#include <bit>
#include <cmath>

namespace autofeat::obs {

size_t QuantileHistogram::BucketOf(uint64_t v) {
  if (v < kSubBucketCount) return static_cast<size_t>(v);
  // v has bit_width > kSubBucketBits; shifting by (bit_width -
  // kSubBucketBits) normalises it into [kSubBucketHalf, kSubBucketCount).
  const size_t shift =
      static_cast<size_t>(std::bit_width(v)) - kSubBucketBits;
  const size_t sub = static_cast<size_t>(v >> shift) - kSubBucketHalf;
  return kSubBucketCount + (shift - 1) * kSubBucketHalf + sub;
}

uint64_t QuantileHistogram::BucketUpperBound(size_t b) {
  if (b < kSubBucketCount) return static_cast<uint64_t>(b);
  const size_t shift = 1 + (b - kSubBucketCount) / kSubBucketHalf;
  const uint64_t sub = (b - kSubBucketCount) % kSubBucketHalf;
  const uint64_t low = (kSubBucketHalf + sub) << shift;
  return low + ((uint64_t{1} << shift) - 1);
}

void QuantileHistogram::Record(uint64_t v) {
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void QuantileHistogram::Merge(const QuantileHistogram& other) {
  uint64_t merged = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    uint64_t c = other.buckets_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    buckets_[b].fetch_add(c, std::memory_order_relaxed);
    merged += c;
  }
  if (merged == 0) return;
  count_.fetch_add(merged, std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  uint64_t v = other.min_.load(std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  v = other.max();
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

uint64_t QuantileHistogram::ValueAtQuantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= rank) return BucketUpperBound(b);
  }
  // Racing recorders can make the bucket sum lag the count; the highest
  // non-empty bucket is then the best consistent answer.
  for (size_t b = kNumBuckets; b-- > 0;) {
    if (buckets_[b].load(std::memory_order_relaxed) > 0) {
      return BucketUpperBound(b);
    }
  }
  return 0;
}

uint64_t QuantileHistogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

}  // namespace autofeat::obs
