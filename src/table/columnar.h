// Binary columnar table format ("AFC"): the lake-on-disk alternative to CSV.
//
// CSV re-parses and re-infers every value on every load; the AFC format
// stores each column in its typed binary layout so loading is a bounds-check
// plus a bulk copy. Layout (version 1, all integers little-endian):
//
//   header (32 bytes, not checksummed):
//     "AFC1" magic | u32 version | u64 payload_size | u64 fnv1a(payload)
//     | u64 reserved
//   payload:
//     u32 table-name length + bytes | u64 num_rows | u32 num_columns
//     per column:
//       u32 name length + bytes | u8 type | u8 has_nulls | u16 reserved
//       [has_nulls] pad to 64 | validity bitmap, bit i = row i valid
//       double/int64: pad to 64 | num_rows x 8-byte values
//       string:       u32 dict size | per value: u32 length + bytes
//                     | pad to 64 | num_rows x u32 dictionary ids
//
// String columns are dictionary-encoded through KeyDictionary (ids in
// first-seen row order; the sentinel id 0xFFFFFFFF marks null rows), so a
// column with heavy key repetition stores each distinct value once. Every
// fixed-width section (bitmaps, value arrays, id arrays) is padded to a
// 64-byte boundary from the start of the file, so a reader may mmap the
// file and point at the sections directly instead of copying.
//
// Robustness contract: ReadColumnar* never crashes on hostile input — a bad
// magic, version, checksum, truncation or out-of-bounds id returns a
// non-OK Status (see columnar_test.cc, which fuzzes corruption under ASan).

#ifndef AUTOFEAT_TABLE_COLUMNAR_H_
#define AUTOFEAT_TABLE_COLUMNAR_H_

#include <string>
#include <string_view>

#include "table/table.h"
#include "util/status.h"

namespace autofeat {

/// File extension of columnar lake tables (as ".csv" is for CSV lakes).
inline constexpr const char kColumnarExtension[] = ".afc";

/// Serialises a table into an in-memory AFC image (header + payload).
std::string WriteColumnarBuffer(const Table& table);

/// Writes a table to an AFC file.
Status WriteColumnarFile(const Table& table, const std::string& path);

/// Parses an AFC image. The table name stored in the payload wins; pass
/// `fallback_name` for images written by tools that left it empty.
Result<Table> ReadColumnarBuffer(std::string_view data,
                                 const std::string& fallback_name = "");

/// Reads an AFC file (fallback table name = file stem, as ReadCsvFile).
Result<Table> ReadColumnarFile(const std::string& path);

}  // namespace autofeat

#endif  // AUTOFEAT_TABLE_COLUMNAR_H_
