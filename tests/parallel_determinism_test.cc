// Determinism gate for the parallel runtime: every parallel layer — DRG
// construction, frontier expansion, top-k path evaluation, CV folds — must
// produce byte-identical results at any thread count. Scores are compared
// with exact double equality on purpose: the contract is "same arithmetic,
// different scheduling", not "approximately equal".

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/autofeat.h"
#include "datagen/lake_builder.h"
#include "discovery/data_lake.h"
#include "ml/cross_validation.h"
#include "util/thread_pool.h"

namespace autofeat {
namespace {

datagen::BuiltLake SmallLake() {
  datagen::LakeSpec spec;
  spec.rows = 400;
  spec.joinable_tables = 6;
  spec.total_features = 30;
  return datagen::BuildLake(spec);
}

// Canonical printout of a DRG (nodes, then every pair's edge list).
std::string DrgFingerprint(const DatasetRelationGraph& drg) {
  std::ostringstream out;
  out << drg.num_nodes() << " nodes, " << drg.num_edges() << " edges\n";
  for (size_t a = 0; a < drg.num_nodes(); ++a) {
    out << a << "=" << drg.NodeName(a) << ":";
    for (size_t n : drg.Neighbors(a)) out << " " << n;
    out << "\n";
    for (size_t b = 0; b < drg.num_nodes(); ++b) {
      for (const JoinStep& e : drg.EdgesBetween(a, b)) {
        out << "  " << e.from_node << "." << e.from_column << " -> "
            << e.to_node << "." << e.to_column << " w=" << e.weight << "\n";
      }
    }
  }
  return out.str();
}

std::string RankedFingerprint(const DiscoveryResult& result) {
  std::ostringstream out;
  out << result.paths_explored << "/" << result.paths_pruned_infeasible
      << "/" << result.paths_pruned_quality << "\n";
  for (const RankedPath& rp : result.ranked) {
    out.precision(17);
    out << rp.score << " |";
    for (const JoinStep& s : rp.path.steps) {
      out << " " << s.from_node << "." << s.from_column << ">" << s.to_node
          << "." << s.to_column;
    }
    out << " |";
    for (const auto& fs : rp.selected_features) {
      out << " " << fs.name << "=" << fs.score;
    }
    out << "\n";
  }
  return out.str();
}

TEST(ParallelDeterminismTest, DrgConstructionMatchesAcrossThreadCounts) {
  datagen::BuiltLake built = SmallLake();
  MatchOptions options;
  options.threshold = 0.55;

  auto sequential = BuildDrgByDiscovery(built.lake, options);
  ASSERT_TRUE(sequential.ok());
  std::string expected = DrgFingerprint(*sequential);
  EXPECT_GT(sequential->num_edges(), 0u);

  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    auto parallel = BuildDrgByDiscovery(built.lake, options, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(DrgFingerprint(*parallel), expected)
        << "DRG diverged at " << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, DiscoverFeaturesMatchesAcrossThreadCounts) {
  datagen::BuiltLake built = SmallLake();
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok());

  // Both loop runtimes at every thread count must agree with the
  // single-threaded morsel run down to the last bit.
  std::string expected;
  bool have_expected = false;
  for (SchedulerKind scheduler :
       {SchedulerKind::kMorsel, SchedulerKind::kForkJoin}) {
    for (size_t threads : {1u, 2u, 8u}) {
      AutoFeatConfig config;
      config.sample_rows = 200;
      config.num_threads = threads;
      config.scheduler = scheduler;
      AutoFeat engine(&built.lake, &*drg, config);
      auto result =
          engine.DiscoverFeatures(built.base_table, built.label_column);
      ASSERT_TRUE(result.ok());
      EXPECT_GT(result->ranked.size(), 0u);
      std::string fingerprint = RankedFingerprint(*result);
      if (!have_expected) {
        expected = fingerprint;
        have_expected = true;
      } else {
        EXPECT_EQ(fingerprint, expected)
            << "ranked paths diverged at " << threads << " threads with the "
            << SchedulerKindName(scheduler) << " scheduler";
      }
    }
  }
}

TEST(ParallelDeterminismTest, AugmentMatchesAcrossThreadCounts) {
  datagen::BuiltLake built = SmallLake();
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok());

  double expected_accuracy = 0.0;
  std::string expected_path;
  size_t expected_columns = 0;
  for (size_t threads : {1u, 4u}) {
    AutoFeatConfig config;
    config.sample_rows = 200;
    config.num_threads = threads;
    AutoFeat engine(&built.lake, &*drg, config);
    auto result = engine.Augment(built.base_table, built.label_column,
                                 ml::ModelKind::kKnn);
    ASSERT_TRUE(result.ok());
    std::ostringstream path;
    for (const JoinStep& s : result->best_path.path.steps) {
      path << s.from_node << "." << s.from_column << ">" << s.to_node << ";";
    }
    if (threads == 1) {
      expected_accuracy = result->accuracy;
      expected_path = path.str();
      expected_columns = result->augmented.num_columns();
    } else {
      EXPECT_EQ(result->accuracy, expected_accuracy);
      EXPECT_EQ(path.str(), expected_path);
      EXPECT_EQ(result->augmented.num_columns(), expected_columns);
    }
  }
}

TEST(ParallelDeterminismTest, CrossValidationMatchesAcrossThreadCounts) {
  datagen::BuiltLake built = SmallLake();
  auto base = built.lake.GetTable(built.base_table);
  ASSERT_TRUE(base.ok());

  ml::CrossValidationOptions sequential;
  sequential.num_threads = 1;
  auto expected = ml::CrossValidate(**base, built.label_column,
                                    ml::ModelKind::kKnn, sequential);
  ASSERT_TRUE(expected.ok());

  for (SchedulerKind scheduler :
       {SchedulerKind::kMorsel, SchedulerKind::kForkJoin}) {
    ml::CrossValidationOptions parallel = sequential;
    parallel.num_threads = 4;
    parallel.scheduler = scheduler;
    auto got = ml::CrossValidate(**base, built.label_column,
                                 ml::ModelKind::kKnn, parallel);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->fold_accuracies, expected->fold_accuracies);
    EXPECT_EQ(got->fold_aucs, expected->fold_aucs);
    EXPECT_EQ(got->mean_accuracy, expected->mean_accuracy);
  }
}

}  // namespace
}  // namespace autofeat
