// MinHash-LSH candidate index: signature determinism, banding recall on
// high-Jaccard pairs, the small-column containment rescue, cheap-profile
// prefilters, thread-count independence, and the BuildDrgByDiscovery
// candidate_mode wiring (LSH subset equality + the all-pairs fallback when
// the threshold is reachable on name evidence alone).

#include "discovery/lsh_index.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "datagen/scale_lake.h"
#include "discovery/data_lake.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace autofeat {
namespace {

ColumnSketch MakeSketch(std::initializer_list<std::string> values) {
  ColumnSketch sketch;
  for (const auto& v : values) sketch.values.insert(v);
  sketch.num_distinct = sketch.values.size();
  return sketch;
}

Table MakeKeyTable(const std::string& table_name,
                   const std::string& column_name, int64_t lo, int64_t hi) {
  Table table(table_name);
  Column key(DataType::kInt64);
  for (int64_t v = lo; v < hi; ++v) key.AppendInt64(v);
  EXPECT_TRUE(table.AddColumn(column_name, std::move(key)).ok());
  return table;
}

std::set<std::string> EdgeSet(const DatasetRelationGraph& drg) {
  std::set<std::string> edges;
  for (size_t a = 0; a < drg.num_nodes(); ++a) {
    for (size_t b : drg.Neighbors(a)) {
      if (b <= a) continue;
      for (const JoinStep& step : drg.EdgesBetween(a, b)) {
        std::ostringstream line;
        line.precision(17);
        line << drg.NodeName(a) << "." << step.from_column << ">"
             << drg.NodeName(b) << "." << step.to_column << "="
             << step.weight;
        edges.insert(line.str());
      }
    }
  }
  return edges;
}

TEST(MinHashSignatureTest, WidthAndDeterminism) {
  ColumnSketch sketch = MakeSketch({"a", "b", "c", "d"});
  MinHashSignature first = ComputeMinHashSignature(sketch, 64);
  MinHashSignature second = ComputeMinHashSignature(sketch, 64);
  ASSERT_EQ(first.mins.size(), 64u);
  EXPECT_EQ(first.mins, second.mins);
}

TEST(MinHashSignatureTest, PureFunctionOfValueSet) {
  // Same value set built in a different insertion order: the signature is a
  // min over per-value hashes, so iteration order cannot leak through.
  ColumnSketch forward = MakeSketch({"x1", "x2", "x3", "x4", "x5"});
  ColumnSketch backward = MakeSketch({"x5", "x4", "x3", "x2", "x1"});
  EXPECT_EQ(ComputeMinHashSignature(forward, 32).mins,
            ComputeMinHashSignature(backward, 32).mins);
}

TEST(MinHashSignatureTest, EmptySketchAndZeroWidth) {
  EXPECT_TRUE(ComputeMinHashSignature(ColumnSketch{}, 64).empty());
  EXPECT_TRUE(ComputeMinHashSignature(MakeSketch({"a"}), 0).empty());
}

TEST(MinHashSignatureTest, IdenticalSetsShareEveryBand) {
  // Jaccard 1 pairs must collide in every band — the bench lake's
  // within-pod recall guarantee.
  ColumnSketch a = MakeSketch({"10", "11", "12", "13", "14", "15"});
  ColumnSketch b = MakeSketch({"15", "14", "13", "12", "11", "10"});
  EXPECT_EQ(ComputeMinHashSignature(a, 64).mins,
            ComputeMinHashSignature(b, 64).mins);
}

TEST(LshValueHashTest, StableAndSpread) {
  EXPECT_EQ(LshValueHash("key"), LshValueHash("key"));
  EXPECT_NE(LshValueHash("key"), LshValueHash("kez"));
  EXPECT_NE(LshValueHash(""), LshValueHash("0"));
}

TEST(LshCandidateIndexTest, SharedKeyDomainBecomesCandidate) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(MakeKeyTable("left", "id", 0, 100)).ok());
  ASSERT_TRUE(lake.AddTable(MakeKeyTable("right", "id", 0, 100)).ok());
  LakeSketchCache cache = LakeSketchCache::Build(lake, 4096);
  LshCandidateIndex index =
      LshCandidateIndex::Build(lake, cache, LshOptions{});
  ASSERT_EQ(index.candidate_table_pairs().size(), 1u);
  EXPECT_EQ(index.candidate_table_pairs()[0],
            (std::pair<size_t, size_t>{0, 1}));
}

TEST(LshCandidateIndexTest, DisjointKeyDomainsArePruned) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(MakeKeyTable("left", "id_a", 0, 100)).ok());
  ASSERT_TRUE(lake.AddTable(MakeKeyTable("right", "id_b", 1000, 1100)).ok());
  LakeSketchCache cache = LakeSketchCache::Build(lake, 4096);
  LshCandidateIndex index =
      LshCandidateIndex::Build(lake, cache, LshOptions{});
  EXPECT_TRUE(index.candidate_table_pairs().empty());
}

TEST(LshCandidateIndexTest, SmallColumnRescueCatchesContainment) {
  // 5 values contained in 40: Jaccard 0.125, low enough that 32x2 banding
  // misses with good probability — the small-column rescue must guarantee
  // the candidate instead.
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(MakeKeyTable("fk_side", "ref", 10, 15)).ok());
  ASSERT_TRUE(lake.AddTable(MakeKeyTable("pk_side", "ref", 0, 40)).ok());
  LakeSketchCache cache = LakeSketchCache::Build(lake, 4096);
  LshOptions options;
  ASSERT_LE(40u, options.small_column_rescue);
  LshCandidateIndex index = LshCandidateIndex::Build(lake, cache, options);
  ASSERT_EQ(index.candidate_table_pairs().size(), 1u);

  // With the rescue disabled the pair may or may not band-collide; with
  // rescue but no overlap there must be no candidate.
  DataLake disjoint;
  ASSERT_TRUE(disjoint.AddTable(MakeKeyTable("fk_side", "ref", 50, 55)).ok());
  ASSERT_TRUE(disjoint.AddTable(MakeKeyTable("pk_side", "ref", 0, 40)).ok());
  LakeSketchCache disjoint_cache = LakeSketchCache::Build(disjoint, 4096);
  EXPECT_TRUE(LshCandidateIndex::Build(disjoint, disjoint_cache, options)
                  .candidate_table_pairs()
                  .empty());
}

TEST(LshCandidateIndexTest, MinDistinctPrefilterSkipsColumns) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(MakeKeyTable("left", "flag", 0, 2)).ok());
  ASSERT_TRUE(lake.AddTable(MakeKeyTable("right", "flag", 0, 2)).ok());
  LakeSketchCache cache = LakeSketchCache::Build(lake, 4096);
  LshOptions options;
  options.min_distinct = 3;
  LshCandidateIndex index = LshCandidateIndex::Build(lake, cache, options);
  EXPECT_TRUE(index.candidate_table_pairs().empty());
  EXPECT_EQ(index.num_indexed_columns(), 0u);
  EXPECT_EQ(index.num_skipped_columns(), 2u);
}

TEST(LshCandidateIndexTest, CardinalityRatioBoundPrunesAsymmetricPairs) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(MakeKeyTable("small", "id", 0, 4)).ok());
  ASSERT_TRUE(lake.AddTable(MakeKeyTable("large", "id", 0, 64)).ok());
  LakeSketchCache cache = LakeSketchCache::Build(lake, 4096);
  LshOptions options;
  options.max_cardinality_ratio = 4.0;  // 64/4 = 16 > 4: prune
  EXPECT_TRUE(LshCandidateIndex::Build(lake, cache, options)
                  .candidate_table_pairs()
                  .empty());
  options.max_cardinality_ratio = 32.0;  // 16 <= 32: keep
  EXPECT_EQ(LshCandidateIndex::Build(lake, cache, options)
                .candidate_table_pairs()
                .size(),
            1u);
}

TEST(LshCandidateIndexTest, TypeGroupsNeverShareBuckets) {
  // An int64 column and a double column with byte-identical value strings
  // must not collide: the exact matcher would never score that pair.
  DataLake lake;
  Table ints("ints");
  Column ic(DataType::kInt64);
  for (int64_t v = 0; v < 32; ++v) ic.AppendInt64(v);
  ASSERT_TRUE(ints.AddColumn("c", std::move(ic)).ok());
  ASSERT_TRUE(lake.AddTable(std::move(ints)).ok());
  Table doubles("doubles");
  Column dc(DataType::kDouble);
  for (int64_t v = 0; v < 32; ++v) dc.AppendDouble(static_cast<double>(v));
  ASSERT_TRUE(doubles.AddColumn("c", std::move(dc)).ok());
  ASSERT_TRUE(lake.AddTable(std::move(doubles)).ok());
  LakeSketchCache cache = LakeSketchCache::Build(lake, 4096);
  for (const auto& [i, j] :
       LshCandidateIndex::Build(lake, cache, LshOptions{})
           .candidate_table_pairs()) {
    // Only a same-group collision could pair these two tables.
    EXPECT_NE(std::make_pair(i, j), (std::pair<size_t, size_t>{0, 1}));
  }
}

TEST(LshCandidateIndexTest, ThreadCountIndependent) {
  datagen::ScaleLakeSpec spec;
  spec.num_tables = 20;
  DataLake lake = datagen::BuildScaleLake(spec);
  LakeSketchCache cache = LakeSketchCache::Build(lake, 4096);
  LshCandidateIndex sequential =
      LshCandidateIndex::Build(lake, cache, LshOptions{});
  ThreadPool pool(4);
  LshCandidateIndex parallel =
      LshCandidateIndex::Build(lake, cache, LshOptions{}, &pool);
  EXPECT_EQ(sequential.candidate_table_pairs(),
            parallel.candidate_table_pairs());
  EXPECT_EQ(sequential.signature_bytes(), parallel.signature_bytes());
  EXPECT_EQ(sequential.num_bucket_collisions(),
            parallel.num_bucket_collisions());
}

TEST(LshCandidateIndexTest, RecordsCountersAndByteGauges) {
  datagen::ScaleLakeSpec spec;
  spec.num_tables = 10;
  DataLake lake = datagen::BuildScaleLake(spec);
  LakeSketchCache cache = LakeSketchCache::Build(lake, 4096);
  obs::MetricsRegistry metrics;
  LshCandidateIndex index =
      LshCandidateIndex::Build(lake, cache, LshOptions{}, nullptr, &metrics);
  EXPECT_EQ(metrics.GetCounter("lsh.bands")->value(), LshOptions{}.num_bands);
  EXPECT_EQ(metrics.GetCounter("lsh.signature_bytes")->value(),
            index.signature_bytes());
  EXPECT_GT(metrics.GetCounter("lsh.columns_indexed")->value(), 0u);
  EXPECT_EQ(metrics.GetGauge("lsh_index.bytes")->value(),
            static_cast<int64_t>(index.ApproxBytes()));
  EXPECT_EQ(metrics.GetGauge("lsh_index.bytes_peak")->value(),
            static_cast<int64_t>(index.ApproxBytes()));
  EXPECT_GT(index.ApproxBytes(), index.signature_bytes());
}

TEST(DiscoveryCandidateModeTest, LshFindsExactlyTheAllPairsEdges) {
  // Pod lake: within-pod containment 1 — every true edge's pair is a
  // guaranteed band collision, so the two modes must agree edge-for-edge.
  datagen::ScaleLakeSpec spec;
  spec.num_tables = 15;
  DataLake lake = datagen::BuildScaleLake(spec);
  MatchOptions exact;
  auto all_pairs = BuildDrgByDiscovery(lake, exact);
  ASSERT_TRUE(all_pairs.ok());
  MatchOptions lsh;
  lsh.candidate_mode = CandidateMode::kLsh;
  auto filtered = BuildDrgByDiscovery(lake, lsh);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(all_pairs->num_edges(), datagen::ExpectedScaleLakeEdges(spec));
  EXPECT_EQ(EdgeSet(*all_pairs), EdgeSet(*filtered));
}

TEST(DiscoveryCandidateModeTest, CandidateCountersAccountForPruning) {
  datagen::ScaleLakeSpec spec;
  spec.num_tables = 15;  // 105 table pairs, ~25 within-pod candidates
  DataLake lake = datagen::BuildScaleLake(spec);
  MatchOptions options;
  options.candidate_mode = CandidateMode::kLsh;
  obs::MetricsRegistry metrics;
  ASSERT_TRUE(BuildDrgByDiscovery(lake, options, nullptr, &metrics).ok());
  uint64_t candidates = metrics.GetCounter("drg.candidate_pairs")->value();
  uint64_t pruned = metrics.GetCounter("drg.pairs_pruned")->value();
  uint64_t scored = metrics.GetCounter("drg.pairs_scored")->value();
  EXPECT_EQ(candidates + pruned, 15u * 14u / 2u);
  EXPECT_EQ(scored, candidates);
  EXPECT_LT(candidates, 15u * 14u / 2u);
}

TEST(DiscoveryCandidateModeTest, AllPairsModeReportsZeroPruned) {
  datagen::ScaleLakeSpec spec;
  spec.num_tables = 10;
  DataLake lake = datagen::BuildScaleLake(spec);
  obs::MetricsRegistry metrics;
  ASSERT_TRUE(BuildDrgByDiscovery(lake, MatchOptions{}, nullptr, &metrics)
                  .ok());
  EXPECT_EQ(metrics.GetCounter("drg.candidate_pairs")->value(), 45u);
  EXPECT_EQ(metrics.GetCounter("drg.pairs_pruned")->value(), 0u);
}

TEST(DiscoveryCandidateModeTest, NameReachableThresholdFallsBackToAllPairs) {
  // threshold <= name_weight: an edge could exist with zero value overlap,
  // which LSH cannot witness — discovery must fall back to the exhaustive
  // sweep rather than lose those edges.
  datagen::ScaleLakeSpec spec;
  spec.num_tables = 10;
  DataLake lake = datagen::BuildScaleLake(spec);
  MatchOptions options;
  options.candidate_mode = CandidateMode::kLsh;
  options.threshold = 0.45;  // < name_weight 0.5
  obs::MetricsRegistry metrics;
  ASSERT_TRUE(BuildDrgByDiscovery(lake, options, nullptr, &metrics).ok());
  EXPECT_EQ(metrics.GetCounter("drg.candidate_pairs")->value(), 45u);
  EXPECT_EQ(metrics.GetCounter("drg.pairs_pruned")->value(), 0u);
}

}  // namespace
}  // namespace autofeat
