// DRG-construction scaling: all-pairs vs MinHash-LSH candidate generation.
//
// Grows pod-structured lakes (datagen/scale_lake.h — sparsely joinable,
// linear true edge count) and times BuildDrgByDiscovery in both candidate
// modes at each size, demonstrating the quadratic-vs-near-linear crossover.
// Self-gating: exits non-zero when LSH recall drops below 95% of the exact
// edges, when the candidate count stops growing sub-quadratically, when the
// deterministic obs digest differs across thread counts in either mode, or
// (at >= 1000 tables) when the LSH speedup falls under 5x.
//
// AUTOFEAT_DRG_SCALE_MAX_TABLES caps the scale sweep (CI runs with 200 so
// the committed baseline stays cheap to regenerate); quick mode tops out at
// 1,000 tables, AUTOFEAT_BENCH_MODE=full at 5,000.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness.h"
#include "datagen/scale_lake.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace autofeat::benchx {
namespace {

// One "<from>.<col>><to>.<col>=<weight>" line per edge, sorted — an
// order-independent identity of the discovered graph for recall accounting.
std::set<std::string> EdgeSet(const DatasetRelationGraph& drg) {
  std::set<std::string> edges;
  for (size_t a = 0; a < drg.num_nodes(); ++a) {
    for (size_t b : drg.Neighbors(a)) {
      if (b <= a) continue;
      for (const JoinStep& step : drg.EdgesBetween(a, b)) {
        std::ostringstream line;
        line.precision(17);
        line << drg.NodeName(a) << "." << step.from_column << ">"
             << drg.NodeName(b) << "." << step.to_column << "="
             << step.weight;
        edges.insert(line.str());
      }
    }
  }
  return edges;
}

struct ModeRun {
  double seconds = 0.0;
  size_t edges = 0;
  uint64_t candidate_pairs = 0;
  std::set<std::string> edge_set;
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

ModeRun RunMode(const DataLake& lake, CandidateMode mode,
                size_t num_threads) {
  ModeRun run;
  run.metrics = std::make_unique<obs::MetricsRegistry>();
  std::unique_ptr<ThreadPool> pool;
  if (ResolveNumThreads(num_threads) > 1) {
    pool = std::make_unique<ThreadPool>(num_threads);
    pool->set_metrics(run.metrics.get());
  }
  MatchOptions options;
  options.candidate_mode = mode;
  Timer timer;
  auto drg = BuildDrgByDiscovery(lake, options, pool.get(), run.metrics.get());
  run.seconds = timer.ElapsedSeconds();
  drg.status().Abort("drg_scale discovery");
  run.edges = drg->num_edges();
  run.edge_set = EdgeSet(*drg);
  run.candidate_pairs =
      run.metrics->GetCounter("drg.candidate_pairs")->value();
  return run;
}

size_t MaxTablesCap() {
  const char* cap = std::getenv("AUTOFEAT_DRG_SCALE_MAX_TABLES");
  if (cap == nullptr || *cap == '\0') return 0;
  return static_cast<size_t>(std::atoll(cap));
}

}  // namespace
}  // namespace autofeat::benchx

int main() {
  using namespace autofeat;
  using namespace autofeat::benchx;

  PrintModeBanner("drg_scale");
  std::vector<size_t> scales = FullMode()
                                   ? std::vector<size_t>{10, 100, 1000, 5000}
                                   : std::vector<size_t>{10, 50, 200, 1000};
  if (size_t cap = MaxTablesCap(); cap > 0) {
    std::erase_if(scales, [&](size_t n) { return n > cap; });
    std::printf("scale sweep capped at %zu tables "
                "(AUTOFEAT_DRG_SCALE_MAX_TABLES)\n",
                cap);
  }

  std::printf("\n%-8s %12s %12s %8s %12s %12s %8s\n", "tables",
              "all_pairs(s)", "lsh(s)", "speedup", "candidates", "edges",
              "recall");
  PrintRule(80);

  std::vector<BenchTiming> timings;
  std::unique_ptr<obs::MetricsRegistry> report_metrics;
  bool ok = true;
  double largest_speedup = 0.0;
  size_t largest_scale = 0;

  for (size_t n : scales) {
    datagen::ScaleLakeSpec spec;
    spec.num_tables = n;
    DataLake lake = datagen::BuildScaleLake(spec);

    ModeRun all_pairs = RunMode(lake, CandidateMode::kAllPairs, 1);
    ModeRun lsh = RunMode(lake, CandidateMode::kLsh, 1);

    size_t recovered = 0;
    for (const auto& edge : lsh.edge_set) {
      recovered += all_pairs.edge_set.count(edge);
    }
    double recall = all_pairs.edge_set.empty()
                        ? 1.0
                        : static_cast<double>(recovered) /
                              static_cast<double>(all_pairs.edge_set.size());
    double speedup =
        lsh.seconds > 0 ? all_pairs.seconds / lsh.seconds : 0.0;
    std::printf("%-8zu %12.3f %12.3f %7.2fx %12llu %12zu %7.1f%%\n", n,
                all_pairs.seconds, lsh.seconds, speedup,
                static_cast<unsigned long long>(lsh.candidate_pairs),
                all_pairs.edges, recall * 100.0);

    size_t expected_edges = datagen::ExpectedScaleLakeEdges(spec);
    if (all_pairs.edges != expected_edges) {
      std::printf("  FAIL: exact mode found %zu edges, generator promises "
                  "%zu\n",
                  all_pairs.edges, expected_edges);
      ok = false;
    }
    if (recall < 0.95) {
      std::printf("  FAIL: LSH recall %.3f < 0.95\n", recall);
      ok = false;
    }
    // Sub-quadratic growth: on a pod lake true joinability is ~2n pairs;
    // leave headroom for spurious band collisions but stay far under n²/2.
    if (lsh.candidate_pairs > 4 * n + 64) {
      std::printf("  FAIL: %llu candidate pairs exceeds the linear bound "
                  "%zu\n",
                  static_cast<unsigned long long>(lsh.candidate_pairs),
                  4 * n + 64);
      ok = false;
    }

    timings.push_back({"all_pairs_n" + std::to_string(n), 1,
                       all_pairs.seconds});
    timings.push_back({"lsh_n" + std::to_string(n), 1, lsh.seconds});
    report_metrics = std::move(lsh.metrics);
    largest_speedup = speedup;
    largest_scale = n;
  }

  if (largest_scale >= 1000 && largest_speedup < 5.0) {
    std::printf("FAIL: LSH speedup %.2fx < 5x at %zu tables\n",
                largest_speedup, largest_scale);
    ok = false;
  }

  // Determinism: the deterministic obs digest must be byte-identical across
  // thread counts in both modes (checked at a mid scale to keep the 3x2
  // extra discovery runs cheap).
  {
    datagen::ScaleLakeSpec spec;
    spec.num_tables = std::min<size_t>(largest_scale, 200);
    DataLake lake = datagen::BuildScaleLake(spec);
    for (CandidateMode mode : {CandidateMode::kAllPairs, CandidateMode::kLsh}) {
      const char* name =
          mode == CandidateMode::kAllPairs ? "all_pairs" : "lsh";
      std::string digest1;
      bool mode_ok = true;
      for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        ModeRun run = RunMode(lake, mode, threads);
        std::string digest =
            obs::DeterministicDigest(*run.metrics, /*tracer=*/nullptr);
        if (threads == 1) {
          digest1 = digest;
        } else if (digest != digest1) {
          std::printf("FAIL: %s digest at %zu threads (%s) differs from 1 "
                      "thread (%s)\n",
                      name, threads, digest.c_str(), digest1.c_str());
          mode_ok = false;
        }
      }
      std::printf("%s digest identical at 1/2/8 threads: %s\n", name,
                  mode_ok ? "yes" : "NO");
      ok = ok && mode_ok;
    }
  }

  WriteBenchJson("drg_scale", timings, report_metrics.get());
  std::printf("\ndrg_scale: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
