// Zero-dependency metrics substrate for the observability layer.
//
// A MetricsRegistry names four metric kinds: monotonic Counters, last-value
// Gauges, Histograms over fixed log2 buckets, and QuantileHistograms
// (obs/quantile.h) for exact-quantile latency series. All update paths are
// lock-free atomics, safe to hit from ThreadPool workers; the registry map
// itself is mutex-protected, so components resolve their metric handles once
// (construction time) and increment through the handle on the hot path.
//
// Disabled-path contract: the whole library threads a *nullable*
// MetricsRegistry pointer through its layers. Every helper below
// null-propagates — a null registry yields null handles and Increment/Record
// on a null handle is a single predictable branch — so AutoFeatConfig::
// metrics_enabled = false costs one untaken branch per instrumentation
// point, nothing else.
//
// Determinism contract: a metric is registered as *deterministic* when its
// final value is a pure function of (inputs, seed) — independent of thread
// count and scheduling. Scheduling-dependent series (the thread-pool queue
// stats) are registered with deterministic = false and are excluded from the
// report digest (see obs/report.h).

#ifndef AUTOFEAT_OBS_METRICS_H_
#define AUTOFEAT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/quantile.h"

namespace autofeat::obs {

/// \brief Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-value (or running max) instantaneous measurement.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (peak tracking).
  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Distribution over fixed log2 buckets.
///
/// Bucket 0 counts the value 0; bucket b >= 1 counts values in
/// [2^(b-1), 2^b - 1] — i.e. the bucket of v > 0 is bit_width(v). 65 buckets
/// cover the whole uint64 range, so the layout never depends on the data.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/max of recorded values; min() is 0 when nothing was recorded.
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Bucket index of a value (0 for 0, else bit_width).
  static size_t BucketOf(uint64_t v);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram, kQuantile };

/// Point-in-time copy of one histogram (for reports/tests).
struct HistogramSample {
  std::string name;
  bool deterministic = true;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  /// (bucket index, count) for non-empty buckets, ascending.
  std::vector<std::pair<size_t, uint64_t>> buckets;
};

struct CounterSample {
  std::string name;
  bool deterministic = true;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  bool deterministic = true;
  int64_t value = 0;
};

/// Point-in-time copy of one quantile histogram (obs/quantile.h): the
/// summary stats plus the four serving-grade quantiles.
struct QuantileSample {
  std::string name;
  bool deterministic = true;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

/// Name-sorted copy of every registered metric.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<QuantileSample> quantiles;
};

/// \brief Thread-safe name -> metric registry.
///
/// Metric naming scheme: `<component>.<event>` in snake_case, e.g.
/// `join_index_cache.hits`, `discovery.frontier_size`. Components own their
/// prefix; the registry enforces nothing but name/kind consistency.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. The returned pointer is stable for
  /// the registry's lifetime. Requesting an existing name under a different
  /// kind returns nullptr (the misuse surfaces as a missing metric, never as
  /// type confusion). The `deterministic` flag is fixed on first creation.
  Counter* GetCounter(const std::string& name, bool deterministic = true);
  Gauge* GetGauge(const std::string& name, bool deterministic = true);
  Histogram* GetHistogram(const std::string& name, bool deterministic = true);
  /// Latency-style distributions are wall-clock derived, so quantile
  /// histograms default to non-deterministic (excluded from the digest).
  QuantileHistogram* GetQuantile(const std::string& name,
                                 bool deterministic = false);

  /// Snapshot reads; 0 when the metric does not exist (or is another kind).
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  /// Histogram count()/sum() reads with the same missing-is-zero contract.
  uint64_t HistogramCount(const std::string& name) const;
  uint64_t HistogramSum(const std::string& name) const;
  /// QuantileHistogram reads with the same missing-is-zero contract.
  uint64_t QuantileCount(const std::string& name) const;
  uint64_t QuantileValueAt(const std::string& name, double q) const;

  size_t num_metrics() const;

  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    bool deterministic = true;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<QuantileHistogram> quantile;

    bool empty() const {
      return counter == nullptr && gauge == nullptr && histogram == nullptr &&
             quantile == nullptr;
    }
  };

  mutable std::mutex mutex_;
  // std::map: node stability for handed-out pointers + name-sorted snapshots.
  std::map<std::string, Entry> entries_;
};

/// Null-propagating handle resolution: components keep one line per metric.
inline Counter* GetCounter(MetricsRegistry* registry, const std::string& name,
                           bool deterministic = true) {
  return registry != nullptr ? registry->GetCounter(name, deterministic)
                             : nullptr;
}
inline Gauge* GetGauge(MetricsRegistry* registry, const std::string& name,
                       bool deterministic = true) {
  return registry != nullptr ? registry->GetGauge(name, deterministic)
                             : nullptr;
}
inline Histogram* GetHistogram(MetricsRegistry* registry,
                               const std::string& name,
                               bool deterministic = true) {
  return registry != nullptr ? registry->GetHistogram(name, deterministic)
                             : nullptr;
}
inline QuantileHistogram* GetQuantile(MetricsRegistry* registry,
                                      const std::string& name,
                                      bool deterministic = false) {
  return registry != nullptr ? registry->GetQuantile(name, deterministic)
                             : nullptr;
}

/// Null-safe update helpers — the disabled path is this one branch.
inline void Increment(Counter* counter, uint64_t n = 1) {
  if (counter != nullptr) counter->Increment(n);
}
inline void Set(Gauge* gauge, int64_t v) {
  if (gauge != nullptr) gauge->Set(v);
}
inline void UpdateMax(Gauge* gauge, int64_t v) {
  if (gauge != nullptr) gauge->UpdateMax(v);
}
inline void Record(Histogram* histogram, uint64_t v) {
  if (histogram != nullptr) histogram->Record(v);
}
inline void Record(QuantileHistogram* quantile, uint64_t v) {
  if (quantile != nullptr) quantile->Record(v);
}

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_METRICS_H_
