#include "fs/feature_view.h"

#include <cmath>
#include <unordered_set>

#include "stats/discretize.h"

namespace autofeat {

namespace {

// A numeric column with few distinct values is effectively categorical and
// keeps value identity; otherwise it is equal-frequency binned.
std::vector<int> DiscretizeFeature(const std::vector<double>& numeric) {
  std::unordered_set<double> distinct;
  for (double v : numeric) {
    if (!std::isnan(v)) distinct.insert(v);
    if (distinct.size() > 32) break;
  }
  if (distinct.size() <= 32) return CodesFromValues(numeric);
  return DiscretizeEqualFrequency(numeric, DefaultBinCount(numeric.size()));
}

}  // namespace

Result<FeatureView> FeatureView::FromTable(
    const Table& table, const std::string& label_column,
    std::vector<std::string> feature_names) {
  FeatureView view;

  AF_ASSIGN_OR_RETURN(const Column* label, table.GetColumn(label_column));
  view.label_numeric_ = label->ToNumeric();
  view.label_codes_ = CodesFromValues(view.label_numeric_);

  if (feature_names.empty()) {
    for (const auto& name : table.ColumnNames()) {
      if (name != label_column) feature_names.push_back(name);
    }
  }

  for (const auto& name : feature_names) {
    if (name == label_column) {
      return Status::InvalidArgument("label column listed as feature: " + name);
    }
    AF_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(name));
    std::vector<double> numeric = col->ToNumeric();
    view.index_[name] = view.names_.size();
    view.names_.push_back(name);
    view.codes_.push_back(DiscretizeFeature(numeric));
    view.numeric_.push_back(std::move(numeric));
  }
  return view;
}

Result<FeatureView> FeatureView::FromColumns(
    std::vector<std::string> names, std::vector<std::vector<double>> numeric,
    std::vector<double> label_numeric, std::vector<int> label_codes) {
  if (names.size() != numeric.size()) {
    return Status::InvalidArgument("FromColumns: name/vector count mismatch");
  }
  if (label_codes.size() != label_numeric.size()) {
    return Status::InvalidArgument("FromColumns: label codes/values mismatch");
  }
  FeatureView view;
  view.label_numeric_ = std::move(label_numeric);
  view.label_codes_ = std::move(label_codes);
  for (size_t f = 0; f < names.size(); ++f) {
    if (numeric[f].size() != view.label_numeric_.size()) {
      return Status::InvalidArgument("FromColumns: feature '" + names[f] +
                                     "' length mismatch");
    }
    view.index_[names[f]] = view.names_.size();
    view.codes_.push_back(DiscretizeFeature(numeric[f]));
    view.numeric_.push_back(std::move(numeric[f]));
    view.names_.push_back(std::move(names[f]));
  }
  return view;
}

}  // namespace autofeat
