// Parallel-runtime scaling harness (not a paper figure).
//
// Times the three parallelised layers — DRG construction over the synthetic
// data-lake registry, DiscoverFeatures, and end-to-end Augment — at one
// thread and at full hardware concurrency, verifies the ranked output is
// identical across thread counts, and emits BENCH_parallel_scaling.json so
// the perf trajectory is tracked across PRs. On a single-core machine the
// speedup is ~1x by construction; the determinism check still runs.

#include <memory>
#include <sstream>

#include "harness.h"
#include "core/autofeat.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace autofeat::benchx {
namespace {

struct RunResult {
  double drg_seconds = 0.0;
  double discover_seconds = 0.0;
  double augment_seconds = 0.0;
  std::string ranked_fingerprint;
  double accuracy = 0.0;
  /// Deterministic-metric digest of the run; must match across thread
  /// counts (scheduling-dependent thread_pool.* metrics are excluded).
  std::string metrics_digest;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Tracer> tracer;
};

std::string Fingerprint(const DiscoveryResult& result) {
  std::ostringstream out;
  out.precision(17);
  for (const RankedPath& rp : result.ranked) {
    out << rp.score << "|";
    for (const JoinStep& s : rp.path.steps) {
      out << s.from_node << "." << s.from_column << ">" << s.to_node << ";";
    }
    for (const auto& fs : rp.selected_features) out << fs.name << ",";
    out << "\n";
  }
  return out.str();
}

Result<RunResult> RunAtThreadCount(const datagen::BuiltLake& built,
                                   size_t num_threads) {
  RunResult run;
  // Both thread counts run with identical instrumentation, so metric
  // overhead cancels out of the speedup and the digests are comparable.
  run.metrics = std::make_unique<obs::MetricsRegistry>();
  run.tracer = std::make_unique<obs::Tracer>();
  obs::Tracer* tracer = run.tracer.get();

  std::unique_ptr<ThreadPool> pool;
  if (ResolveNumThreads(num_threads) > 1) {
    pool = std::make_unique<ThreadPool>(num_threads);
    pool->set_metrics(run.metrics.get());
    pool->set_tracer(tracer);
  }
  MatchOptions match;
  match.threshold = 0.55;
  Timer drg_timer;
  AF_ASSIGN_OR_RETURN(DatasetRelationGraph drg,
                      BuildDrgByDiscovery(built.lake, match, pool.get(),
                                          run.metrics.get()));
  run.drg_seconds = drg_timer.ElapsedSeconds();

  AutoFeatConfig config;
  config.num_threads = num_threads;
  config.sample_rows = FullMode() ? 2000 : 1000;
  config.max_paths = FullMode() ? 2000 : 600;
  config.metrics_enabled = true;
  config.metrics = run.metrics.get();
  config.tracer = tracer;
  AutoFeat engine(&built.lake, &drg, config);

  Timer discover_timer;
  AF_ASSIGN_OR_RETURN(
      DiscoveryResult discovery,
      engine.DiscoverFeatures(built.base_table, built.label_column));
  run.discover_seconds = discover_timer.ElapsedSeconds();
  run.ranked_fingerprint = Fingerprint(discovery);

  Timer augment_timer;
  AF_ASSIGN_OR_RETURN(AugmentationResult augmented,
                      engine.Augment(built.base_table, built.label_column,
                                     ml::ModelKind::kRandomForest));
  run.augment_seconds = augment_timer.ElapsedSeconds();
  run.accuracy = augmented.accuracy;
  run.metrics_digest = obs::DeterministicDigest(*run.metrics, tracer);
  return run;
}

}  // namespace
}  // namespace autofeat::benchx

int main() {
  using namespace autofeat;
  using namespace autofeat::benchx;

  PrintModeBanner("parallel_scaling");
  size_t hw = ResolveNumThreads(0);
  std::printf("hardware threads: %zu\n\n", hw);

  auto spec = ScaledSpec(*datagen::FindDataset("credit"));
  auto built = datagen::BuildPaperLake(spec, 1);

  auto sequential = RunAtThreadCount(built, 1);
  sequential.status().Abort("sequential run");
  auto parallel = RunAtThreadCount(built, 0);  // 0 = hardware concurrency
  parallel.status().Abort("parallel run");

  std::printf("%-22s %12s %12s %8s\n", "phase", "1 thread (s)",
              "N threads (s)", "speedup");
  PrintRule(58);
  auto row = [&](const char* phase, double seq, double par) {
    std::printf("%-22s %12.3f %12.3f %7.2fx\n", phase, seq, par,
                par > 0 ? seq / par : 0.0);
  };
  row("drg_discovery", sequential->drg_seconds, parallel->drg_seconds);
  row("discover_features", sequential->discover_seconds,
      parallel->discover_seconds);
  row("augment_end_to_end", sequential->augment_seconds,
      parallel->augment_seconds);

  bool identical =
      sequential->ranked_fingerprint == parallel->ranked_fingerprint &&
      sequential->accuracy == parallel->accuracy &&
      sequential->metrics_digest == parallel->metrics_digest;
  std::printf("\nranked output identical across thread counts: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("metrics digest: %s (1 thread) vs %s (%zu threads)\n",
              sequential->metrics_digest.c_str(),
              parallel->metrics_digest.c_str(), hw);

  WriteBenchJson(
      "parallel_scaling",
      {{"drg_discovery", 1, sequential->drg_seconds},
       {"drg_discovery", hw, parallel->drg_seconds},
       {"discover_features", 1, sequential->discover_seconds},
       {"discover_features", hw, parallel->discover_seconds},
       {"augment_end_to_end", 1, sequential->augment_seconds},
       {"augment_end_to_end", hw, parallel->augment_seconds}},
      parallel->metrics.get());
  // The parallel run's trace shows worker spans fanning out across pool
  // threads — the visual counterpart of the speedup table above.
  WriteBenchTrace("parallel_scaling", *parallel->tracer);
  return identical ? 0 : 1;
}
