#include "table/column.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace autofeat {

Column Column::Doubles(std::vector<double> values, std::vector<uint8_t> valid) {
  Column c(DataType::kDouble);
  c.doubles_ = std::move(values);
  assert(valid.empty() || valid.size() == c.doubles_.size());
  c.valid_ = std::move(valid);
  return c;
}

Column Column::Int64s(std::vector<int64_t> values, std::vector<uint8_t> valid) {
  Column c(DataType::kInt64);
  c.int64s_ = std::move(values);
  assert(valid.empty() || valid.size() == c.int64s_.size());
  c.valid_ = std::move(valid);
  return c;
}

Column Column::Strings(std::vector<std::string> values,
                       std::vector<uint8_t> valid) {
  Column c(DataType::kString);
  c.strings_ = std::move(values);
  assert(valid.empty() || valid.size() == c.strings_.size());
  c.valid_ = std::move(valid);
  return c;
}

Column Column::Nulls(DataType type, size_t n) {
  Column c(type);
  for (size_t i = 0; i < n; ++i) c.AppendNull();
  return c;
}

size_t Column::size() const {
  switch (type_) {
    case DataType::kDouble: return doubles_.size();
    case DataType::kInt64: return int64s_.size();
    case DataType::kString: return strings_.size();
  }
  return 0;
}

size_t Column::null_count() const {
  size_t count = 0;
  for (uint8_t v : valid_) count += (v == 0);
  return count;
}

double Column::null_ratio() const {
  size_t n = size();
  if (n == 0) return 0.0;
  return static_cast<double>(null_count()) / static_cast<double>(n);
}

void Column::EnsureValidMask() {
  if (valid_.empty()) valid_.assign(size(), 1);
}

void Column::AppendDouble(double v) {
  assert(type_ == DataType::kDouble);
  if (!valid_.empty()) valid_.push_back(1);
  doubles_.push_back(v);
}

void Column::AppendInt64(int64_t v) {
  assert(type_ == DataType::kInt64);
  if (!valid_.empty()) valid_.push_back(1);
  int64s_.push_back(v);
}

void Column::AppendString(std::string v) {
  assert(type_ == DataType::kString);
  if (!valid_.empty()) valid_.push_back(1);
  strings_.push_back(std::move(v));
}

void Column::AppendNull() {
  EnsureValidMask();
  switch (type_) {
    case DataType::kDouble: doubles_.push_back(0.0); break;
    case DataType::kInt64: int64s_.push_back(0); break;
    case DataType::kString: strings_.emplace_back(); break;
  }
  valid_.push_back(0);
}

void Column::AppendFrom(const Column& other, size_t i) {
  assert(other.type_ == type_);
  if (other.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kDouble: AppendDouble(other.doubles_[i]); break;
    case DataType::kInt64: AppendInt64(other.int64s_[i]); break;
    case DataType::kString: AppendString(other.strings_[i]); break;
  }
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kDouble: doubles_.reserve(n); break;
    case DataType::kInt64: int64s_.reserve(n); break;
    case DataType::kString: strings_.reserve(n); break;
  }
  if (!valid_.empty()) valid_.reserve(n);
}

Column Column::Take(const std::vector<size_t>& indices) const {
  Column out(type_);
  out.Reserve(indices.size());
  for (size_t i : indices) {
    assert(i < size());
    out.AppendFrom(*this, i);
  }
  return out;
}

std::vector<double> Column::ToNumeric() const {
  size_t n = size();
  std::vector<double> out(n);
  if (type_ == DataType::kString) {
    // Ordinal encoding by first occurrence keeps the mapping deterministic.
    std::unordered_map<std::string, double> codes;
    for (size_t i = 0; i < n; ++i) {
      if (IsNull(i)) {
        out[i] = std::nan("");
        continue;
      }
      auto [it, inserted] =
          codes.try_emplace(strings_[i], static_cast<double>(codes.size()));
      out[i] = it->second;
    }
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = IsNull(i) ? std::nan("") : NumericAt(i);
  }
  return out;
}

std::string Column::ValueToString(size_t i) const {
  if (IsNull(i)) return "";
  switch (type_) {
    case DataType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", doubles_[i]);
      return std::string(buf);
    }
    case DataType::kInt64: return std::to_string(int64s_[i]);
    case DataType::kString: return strings_[i];
  }
  return "";
}

std::string Column::KeyAt(size_t i) const {
  if (IsNull(i)) return std::string("\x01<null>");
  switch (type_) {
    case DataType::kDouble: {
      double v = doubles_[i];
      // Canonicalise integral doubles so they match int64 keys.
      if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
        return std::to_string(static_cast<int64_t>(v));
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      return std::string(buf);
    }
    case DataType::kInt64: return std::to_string(int64s_[i]);
    case DataType::kString: return strings_[i];
  }
  return "";
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || size() != other.size()) return false;
  for (size_t i = 0; i < size(); ++i) {
    if (IsNull(i) != other.IsNull(i)) return false;
    if (IsNull(i)) continue;
    switch (type_) {
      case DataType::kDouble:
        if (doubles_[i] != other.doubles_[i]) return false;
        break;
      case DataType::kInt64:
        if (int64s_[i] != other.int64s_[i]) return false;
        break;
      case DataType::kString:
        if (strings_[i] != other.strings_[i]) return false;
        break;
    }
  }
  return true;
}

size_t Column::ApproxBytes() const {
  size_t total = sizeof(Column);
  total += doubles_.size() * sizeof(double);
  total += int64s_.size() * sizeof(int64_t);
  total += valid_.size() * sizeof(uint8_t);
  for (const std::string& s : strings_) total += sizeof(std::string) + s.size();
  return total;
}

}  // namespace autofeat
