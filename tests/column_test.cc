#include "table/column.h"

#include <cmath>

#include <gtest/gtest.h>

namespace autofeat {
namespace {

TEST(ColumnTest, DoubleFactory) {
  Column c = Column::Doubles({1.0, 2.5, -3.0});
  EXPECT_EQ(c.type(), DataType::kDouble);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.null_count(), 0u);
  EXPECT_DOUBLE_EQ(c.GetDouble(1), 2.5);
}

TEST(ColumnTest, Int64Factory) {
  Column c = Column::Int64s({1, 2, 3});
  EXPECT_EQ(c.type(), DataType::kInt64);
  EXPECT_EQ(c.GetInt64(2), 3);
  EXPECT_DOUBLE_EQ(c.NumericAt(2), 3.0);
}

TEST(ColumnTest, StringFactory) {
  Column c = Column::Strings({"a", "b"});
  EXPECT_EQ(c.type(), DataType::kString);
  EXPECT_EQ(c.GetString(0), "a");
}

TEST(ColumnTest, ValidityMask) {
  Column c = Column::Doubles({1, 2, 3}, {1, 0, 1});
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_NEAR(c.null_ratio(), 1.0 / 3, 1e-12);
}

TEST(ColumnTest, NullsFactory) {
  Column c = Column::Nulls(DataType::kString, 4);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.null_count(), 4u);
  EXPECT_DOUBLE_EQ(c.null_ratio(), 1.0);
}

TEST(ColumnTest, EmptyColumnNullRatioIsZero) {
  Column c(DataType::kDouble);
  EXPECT_DOUBLE_EQ(c.null_ratio(), 0.0);
}

TEST(ColumnTest, AppendMixedWithNulls) {
  Column c(DataType::kInt64);
  c.AppendInt64(10);
  c.AppendNull();
  c.AppendInt64(30);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(2));
  EXPECT_EQ(c.GetInt64(2), 30);
}

TEST(ColumnTest, AppendNullFirstThenValue) {
  Column c(DataType::kDouble);
  c.AppendNull();
  c.AppendDouble(5.0);
  EXPECT_TRUE(c.IsNull(0));
  EXPECT_FALSE(c.IsNull(1));
}

TEST(ColumnTest, AppendFromCopiesNulls) {
  Column src = Column::Doubles({1, 2}, {0, 1});
  Column dst(DataType::kDouble);
  dst.AppendFrom(src, 0);
  dst.AppendFrom(src, 1);
  EXPECT_TRUE(dst.IsNull(0));
  EXPECT_DOUBLE_EQ(dst.GetDouble(1), 2.0);
}

TEST(ColumnTest, TakeGathersAndDuplicates) {
  Column c = Column::Int64s({10, 20, 30});
  Column t = c.Take({2, 0, 2});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.GetInt64(0), 30);
  EXPECT_EQ(t.GetInt64(1), 10);
  EXPECT_EQ(t.GetInt64(2), 30);
}

TEST(ColumnTest, TakePreservesNulls) {
  Column c = Column::Strings({"x", "y"}, {0, 1});
  Column t = c.Take({0, 1, 0});
  EXPECT_TRUE(t.IsNull(0));
  EXPECT_FALSE(t.IsNull(1));
  EXPECT_TRUE(t.IsNull(2));
}

TEST(ColumnTest, ToNumericWidensIntAndNansNulls) {
  Column c = Column::Int64s({5, 6, 7}, {1, 0, 1});
  auto v = c.ToNumeric();
  EXPECT_DOUBLE_EQ(v[0], 5.0);
  EXPECT_TRUE(std::isnan(v[1]));
  EXPECT_DOUBLE_EQ(v[2], 7.0);
}

TEST(ColumnTest, ToNumericOrdinalEncodesStrings) {
  Column c = Column::Strings({"b", "a", "b", "c"});
  auto v = c.ToNumeric();
  EXPECT_DOUBLE_EQ(v[0], 0.0);  // first occurrence order
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_DOUBLE_EQ(v[3], 2.0);
}

TEST(ColumnTest, KeyAtCanonicalisesIntegralDoubles) {
  Column d = Column::Doubles({7.0});
  Column i = Column::Int64s({7});
  EXPECT_EQ(d.KeyAt(0), i.KeyAt(0));
}

TEST(ColumnTest, KeyAtNullSentinelNeverMatchesData) {
  Column c = Column::Strings({""}, {0});
  Column empty_str = Column::Strings({""});
  EXPECT_NE(c.KeyAt(0), empty_str.KeyAt(0));
}

TEST(ColumnTest, ValueToStringEmptyForNull) {
  Column c = Column::Int64s({1}, {0});
  EXPECT_EQ(c.ValueToString(0), "");
}

TEST(ColumnTest, EqualsComparesValuesAndNulls) {
  Column a = Column::Doubles({1, 2}, {1, 0});
  Column b = Column::Doubles({1, 2}, {1, 0});
  Column c = Column::Doubles({1, 2});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_FALSE(a.Equals(Column::Int64s({1, 2})));
}

// Round-trip property: Take with the identity permutation is equality.
class ColumnTakeIdentityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ColumnTakeIdentityTest, IdentityTakeIsEqual) {
  size_t n = GetParam();
  Column c(DataType::kDouble);
  for (size_t i = 0; i < n; ++i) {
    if (i % 5 == 0) {
      c.AppendNull();
    } else {
      c.AppendDouble(static_cast<double>(i) * 0.5);
    }
  }
  std::vector<size_t> identity(n);
  for (size_t i = 0; i < n; ++i) identity[i] = i;
  EXPECT_TRUE(c.Take(identity).Equals(c));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ColumnTakeIdentityTest,
                         ::testing::Values(0, 1, 2, 17, 100));

}  // namespace
}  // namespace autofeat
