// make_lake_cli — generate a synthetic multi-table data lake as a
// directory of CSV files (pairs with autofeat_cli for end-to-end demos,
// and reproduces the benchmark datasets of the paper's evaluation).
//
// Usage:
//   make_lake_cli --out DIR [--name NAME] [--rows N] [--tables N]
//                 [--features N] [--star] [--coverage F] [--missing F]
//                 [--seed N]
//   make_lake_cli --out DIR --dataset credit   # a Table II registry entry

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "datagen/lake_builder.h"
#include "datagen/registry.h"
#include "table/csv.h"

namespace {

using namespace autofeat;

struct CliOptions {
  std::string out_dir;
  std::string dataset;  // Registry entry name, or empty for custom.
  datagen::LakeSpec spec;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: make_lake_cli --out DIR [--dataset REGISTRY_NAME]\n"
               "                     [--name NAME] [--rows N] [--tables N]\n"
               "                     [--features N] [--star] [--coverage F]\n"
               "                     [--missing F] [--seed N]\n"
               "registry datasets:");
  for (const auto& spec : datagen::PaperDatasets()) {
    std::fprintf(stderr, " %s", spec.name.c_str());
  }
  std::fprintf(stderr, "\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  options->spec.name = "lake";
  options->spec.rows = 1000;
  options->spec.joinable_tables = 6;
  options->spec.total_features = 24;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      options->out_dir = v;
    } else if (arg == "--dataset") {
      const char* v = next();
      if (!v) return false;
      options->dataset = v;
    } else if (arg == "--name") {
      const char* v = next();
      if (!v) return false;
      options->spec.name = v;
    } else if (arg == "--rows") {
      const char* v = next();
      if (!v) return false;
      options->spec.rows = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--tables") {
      const char* v = next();
      if (!v) return false;
      options->spec.joinable_tables = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--features") {
      const char* v = next();
      if (!v) return false;
      options->spec.total_features = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--coverage") {
      const char* v = next();
      if (!v) return false;
      options->spec.key_coverage = std::atof(v);
    } else if (arg == "--missing") {
      const char* v = next();
      if (!v) return false;
      options->spec.missing_rate = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      options->spec.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--star") {
      options->spec.star_schema = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !options->out_dir.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }

  datagen::BuiltLake built;
  if (!options.dataset.empty()) {
    auto spec = datagen::FindDataset(options.dataset);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      PrintUsage();
      return 2;
    }
    built = datagen::BuildPaperLake(*spec, options.spec.seed);
  } else {
    built = datagen::BuildLake(options.spec);
  }

  std::error_code ec;
  std::filesystem::create_directories(options.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", options.out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  for (const auto& table : built.lake.tables()) {
    std::string path = options.out_dir + "/" + table.name() + ".csv";
    WriteCsvFile(table, path).Abort("writing CSV");
    std::printf("wrote %-28s %6zu rows x %2zu columns\n", path.c_str(),
                table.num_rows(), table.num_columns());
  }

  std::printf("\nbase table : %s\nlabel      : %s\n",
              built.base_table.c_str(), built.label_column.c_str());
  std::printf("ground truth (signal placement):\n");
  for (const auto& truth : built.truth) {
    std::printf("  %-24s depth=%zu effect=%.2f features=%zu\n",
                truth.name.c_str(), truth.depth, truth.effect,
                truth.num_features);
  }
  std::printf("\nnext: autofeat_cli --lake %s --base %s --label %s\n",
              options.out_dir.c_str(), built.base_table.c_str(),
              built.label_column.c_str());
  return 0;
}
