#include "obs/report.h"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/string_utils.h"

namespace autofeat::obs {

namespace {

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  return buf;
}

void AppendQuoted(std::ostringstream& out, const std::string& s) {
  out << '"' << JsonEscape(s) << '"';
}

}  // namespace

std::string JsonReport(const MetricsRegistry& metrics, const Tracer* tracer,
                       const ReportOptions& options) {
  MetricsSnapshot snap = metrics.Snapshot();
  std::ostringstream out;
  out << "{\n  \"schema\": \"autofeat.obs.v1\",\n";

  out << "  \"counters\": {";
  bool first = true;
  for (const CounterSample& c : snap.counters) {
    if (!options.include_volatile && !c.deterministic) continue;
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, c.name);
    out << ": " << c.value;
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"gauges\": {";
  first = true;
  for (const GaugeSample& g : snap.gauges) {
    if (!options.include_volatile && !g.deterministic) continue;
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, g.name);
    out << ": " << g.value;
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"histograms\": {";
  first = true;
  for (const HistogramSample& h : snap.histograms) {
    if (!options.include_volatile && !h.deterministic) continue;
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, h.name);
    out << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max
        << ", \"buckets\": [";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ", ";
      out << "[" << h.buckets[i].first << ", " << h.buckets[i].second << "]";
    }
    out << "]}";
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"quantiles\": {";
  first = true;
  for (const QuantileSample& q : snap.quantiles) {
    if (!options.include_volatile && !q.deterministic) continue;
    out << (first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(out, q.name);
    out << ": {\"count\": " << q.count << ", \"sum\": " << q.sum
        << ", \"min\": " << q.min << ", \"max\": " << q.max
        << ", \"p50\": " << q.p50 << ", \"p90\": " << q.p90
        << ", \"p99\": " << q.p99 << ", \"p999\": " << q.p999 << "}";
  }
  out << (first ? "},\n" : "\n  },\n");

  out << "  \"spans\": [";
  first = true;
  if (tracer != nullptr) {
    for (const SpanRecord& span : tracer->Snapshot()) {
      // Worker spans are scheduling-dependent (their count varies with the
      // number of pool lanes that actually ran), so the deterministic
      // projection drops them entirely.
      if (!options.include_volatile && span.worker) continue;
      out << (first ? "\n    " : ",\n    ");
      first = false;
      out << "{\"id\": " << span.id << ", \"parent\": " << span.parent
          << ", \"name\": ";
      AppendQuoted(out, span.name);
      if (options.include_volatile) {
        out << ", \"thread\": " << span.thread;
        if (span.worker) {
          out << ", \"worker\": true";
          if (span.flow_id != 0) out << ", \"flow\": " << span.flow_id;
        }
      }
      if (options.include_timings) {
        out << ", \"start_s\": " << FormatSeconds(span.start_seconds)
            << ", \"end_s\": " << FormatSeconds(span.end_seconds);
      }
      out << "}";
    }
  }
  out << (first ? "]" : "\n  ]");

  if (options.include_digest) {
    out << ",\n  \"digest\": \"" << DeterministicDigest(metrics, tracer)
        << "\"";
  }
  out << "\n}\n";
  return out.str();
}

std::string DeterministicDigest(const MetricsRegistry& metrics,
                                const Tracer* tracer) {
  ReportOptions projection;
  projection.include_timings = false;
  projection.include_volatile = false;
  projection.include_digest = false;
  uint64_t h = Fnv1a64(JsonReport(metrics, tracer, projection));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "fnv1a:%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

namespace {

// Minimal recursive-descent JSON validator.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Check() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (depth_ > 256 || pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object() {
    ++depth_;
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++depth_;
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        char esc = text_[pos_ + 1];
        if (esc == 'u') {
          if (pos_ + 5 >= text_.size()) return false;
          for (size_t i = 2; i <= 5; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 6;
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
        pos_ += 2;
        continue;
      }
      if (c < 0x20) return false;  // Raw control characters are invalid.
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

bool JsonIsValid(const std::string& text) {
  return JsonChecker(text).Check();
}

}  // namespace autofeat::obs
