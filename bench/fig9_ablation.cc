// Figure 9: ablation study over AutoFeat's metric choices.
//
// Configurations: Spearman-MRMR (AutoFeat), Pearson-MRMR, Spearman-JMI,
// Pearson-JMI, Spearman-only (no redundancy analysis), MRMR-only (no
// relevance analysis). Reports accuracy and total time per dataset.

#include <cstdio>
#include <map>

#include "harness.h"

namespace {

using namespace autofeat;
using namespace autofeat::benchx;

struct Variant {
  const char* name;
  RelevanceKind relevance;
  RedundancyKind redundancy;
  bool use_relevance;
  bool use_redundancy;
};

constexpr Variant kVariants[] = {
    {"AutoFeat", RelevanceKind::kSpearman, RedundancyKind::kMrmr, true, true},
    {"Pearson-MRMR", RelevanceKind::kPearson, RedundancyKind::kMrmr, true,
     true},
    {"Spearman-JMI", RelevanceKind::kSpearman, RedundancyKind::kJmi, true,
     true},
    {"Pearson-JMI", RelevanceKind::kPearson, RedundancyKind::kJmi, true, true},
    {"Spearman-only", RelevanceKind::kSpearman, RedundancyKind::kMrmr, true,
     false},
    {"MRMR-only", RelevanceKind::kSpearman, RedundancyKind::kMrmr, false,
     true},
};

}  // namespace

int main() {
  PrintModeBanner("Figure 9: ablation over relevance/redundancy choices");
  std::printf("\n%-12s %-14s %8s %10s %10s\n", "dataset", "variant", "acc",
              "fs_time_s", "total_s");
  PrintRule(60);

  struct Sums {
    double acc = 0, total = 0;
    size_t count = 0;
  };
  std::map<std::string, Sums> sums;

  for (const auto& raw : datagen::PaperDatasets()) {
    datagen::DatasetSpec spec = ScaledSpec(raw);
    datagen::BuiltLake built = datagen::BuildPaperLake(spec, 42);
    auto drg = BuildSettingDrg(built, Setting::kBenchmark);
    drg.status().Abort();

    for (const Variant& variant : kVariants) {
      AutoFeatConfig config;
      config.sample_rows = FullMode() ? 2000 : 1000;
      config.max_paths = FullMode() ? 2000 : 600;
      config.relevance = variant.relevance;
      config.redundancy = variant.redundancy;
      config.use_relevance = variant.use_relevance;
      config.use_redundancy = variant.use_redundancy;
      AutoFeat engine(&built.lake, &*drg, config);
      auto result = engine.Augment(built.base_table, built.label_column,
                                   ml::ModelKind::kLightGbm);
      result.status().Abort(variant.name);
      std::printf("%-12s %-14s %8.3f %10.3f %10.3f\n", spec.name.c_str(),
                  variant.name, result->accuracy,
                  result->discovery.feature_selection_seconds,
                  result->total_seconds);
      Sums& s = sums[variant.name];
      s.acc += result->accuracy;
      s.total += result->total_seconds;
      ++s.count;
    }
    std::printf("\n");
  }

  PrintRule(60);
  std::printf("%-14s %10s %12s\n", "variant", "mean_acc", "mean_total_s");
  for (const Variant& variant : kVariants) {
    const Sums& s = sums[variant.name];
    std::printf("%-14s %10.3f %12.3f\n", variant.name,
                s.acc / static_cast<double>(s.count),
                s.total / static_cast<double>(s.count));
  }
  std::printf("\nexpected shape: Spearman-MRMR (AutoFeat) is the most "
              "efficient variant with minimal accuracy loss; JMI variants "
              "are ~2x slower.\n");
  return 0;
}
