// Deterministic parallel runtime (fixed-size thread pool + data-parallel
// helpers). Concurrency in this library is *structured*: call sites fan work
// out over an index range and merge results in index order, so any thread
// count — including the inline num_threads=1 path — produces byte-identical
// results. Stochastic tasks derive an independent RNG stream from
// (seed, task_index) via DeriveSeed() in util/rng.h instead of sharing a
// sequentially-consumed generator.

#ifndef AUTOFEAT_UTIL_THREAD_POOL_H_
#define AUTOFEAT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace autofeat {

namespace obs {
class Counter;
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// Resolves a `num_threads` config knob: 0 = hardware concurrency
/// (at least 1), anything else is taken literally.
size_t ResolveNumThreads(size_t num_threads);

/// \brief Fixed-size worker pool with a shared FIFO task queue.
///
/// Tasks must not throw (ParallelFor catches and re-raises on the caller's
/// behalf); the pool itself never reorders or drops tasks. Destruction
/// drains the queue and joins every worker.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 resolves to hardware concurrency).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Attaches a metrics sink (null detaches). Queue/execution stats are
  /// scheduling-dependent, so they register as non-deterministic metrics:
  /// `thread_pool.tasks_submitted`, `thread_pool.tasks_executed`,
  /// `thread_pool.parallel_for.{calls,chunks_caller,chunks_helper}`.
  /// Call before submitting work (the engine attaches at construction).
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const;

  /// Attaches a tracer (null detaches). ParallelFor helper lanes then
  /// record `thread_pool.worker` spans into the tracer's per-thread
  /// buffers, with flow events linking each Submit to its execution.
  /// Worker spans are scheduling-dependent and never enter the
  /// deterministic digest (see obs/trace.h).
  void set_tracer(obs::Tracer* tracer);
  obs::Tracer* tracer() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* tasks_submitted_ = nullptr;
  obs::Counter* tasks_executed_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

/// Runs `fn(i)` for every i in [begin, end), chunked by `grain` (minimum
/// iterations per task; 0 behaves like 1). With a null pool or a
/// single-thread pool the loop runs inline on the caller. The caller thread
/// participates in the work, so a pool of N threads applies N+1 lanes.
/// Iterations may run in any order and concurrently — `fn` must only touch
/// per-index state. If any iteration throws, the exception thrown by the
/// lowest-indexed chunk is rethrown on the caller once all chunks finished.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn);

/// Maps `fn` over [0, n) and returns the results in index order —
/// parallelism never reorders output. `fn(i)` must return T and be safe to
/// call concurrently for distinct i.
template <typename T, typename Fn>
std::vector<T> ParallelMap(ThreadPool* pool, size_t n, size_t grain,
                           Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(pool, 0, n, grain, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace autofeat

#endif  // AUTOFEAT_UTIL_THREAD_POOL_H_
