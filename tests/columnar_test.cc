// Round-trip and corruption coverage for the binary columnar format.
//
// The robustness contract (columnar.h) is that ReadColumnar* never crashes
// on hostile input — every corruption here must surface as a non-OK Status.
// The exhaustive bit-flip cases run under the CI ASan job, so an
// out-of-bounds read in the decoder fails loudly rather than silently.

#include "table/columnar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "qa/lake_fuzzer.h"
#include "table/csv.h"

namespace autofeat {
namespace {

// FNV-1a 64, restated here so corruption tests can re-seal a tampered
// payload and drive the decoder past the checksum gate.
uint64_t TestFnv1a(const char* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Recomputes the payload checksum into header bytes [16, 24).
void ResealChecksum(std::string* image) {
  uint64_t checksum = TestFnv1a(image->data() + 32, image->size() - 32);
  for (int i = 0; i < 8; ++i) {
    (*image)[16 + i] = static_cast<char>((checksum >> (8 * i)) & 0xFF);
  }
}

Table MixedTable() {
  Table t("mixed");
  EXPECT_TRUE(
      t.AddColumn("d", Column::Doubles({1.5, -0.0, 3.25e300,
                                        std::numeric_limits<double>::infinity(),
                                        42.0},
                                       {1, 1, 0, 1, 1}))
          .ok());
  EXPECT_TRUE(
      t.AddColumn("i", Column::Int64s({-7, 0, 123456789012345, -1, 9},
                                      {1, 0, 1, 1, 1}))
          .ok());
  EXPECT_TRUE(t.AddColumn("s", Column::Strings({"alpha", "", "alpha",
                                                "\xE2\x9C\x93 unicode", "z"},
                                               {1, 1, 1, 1, 0}))
                  .ok());
  return t;
}

TEST(ColumnarTest, RoundTripsMixedTypesNullsAndUnicode) {
  Table t = MixedTable();
  std::string image = WriteColumnarBuffer(t);
  auto back = ReadColumnarBuffer(image);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name(), "mixed");
  EXPECT_TRUE(t.Equals(*back));
  // The dictionary stores each distinct string once, nulls as a sentinel.
  EXPECT_EQ((*back->GetColumn("s"))->GetString(2), "alpha");
  EXPECT_TRUE((*back->GetColumn("s"))->IsNull(4));
}

TEST(ColumnarTest, ImageIsAlignedAndDeterministic) {
  Table t = MixedTable();
  std::string a = WriteColumnarBuffer(t);
  std::string b = WriteColumnarBuffer(t);
  EXPECT_EQ(a, b);  // same table, byte-identical image
  EXPECT_EQ(a.size() % 64, 0u);  // AlignPayload pads the final section
}

TEST(ColumnarTest, RoundTripsAllNullColumns) {
  Table t("nulls");
  ASSERT_TRUE(t.AddColumn("d", Column::Nulls(DataType::kDouble, 4)).ok());
  ASSERT_TRUE(t.AddColumn("i", Column::Nulls(DataType::kInt64, 4)).ok());
  ASSERT_TRUE(t.AddColumn("s", Column::Nulls(DataType::kString, 4)).ok());
  auto back = ReadColumnarBuffer(WriteColumnarBuffer(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(t.Equals(*back));
  for (size_t c = 0; c < back->num_columns(); ++c) {
    EXPECT_EQ(back->column(c).null_count(), 4u);
  }
}

TEST(ColumnarTest, RoundTripsZeroRowAndZeroColumnTables) {
  Table empty("empty");
  auto back = ReadColumnarBuffer(WriteColumnarBuffer(empty));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name(), "empty");
  EXPECT_EQ(back->num_columns(), 0u);

  Table zero_rows("zero_rows");
  ASSERT_TRUE(zero_rows.AddColumn("d", Column(DataType::kDouble)).ok());
  ASSERT_TRUE(zero_rows.AddColumn("s", Column(DataType::kString)).ok());
  auto back2 = ReadColumnarBuffer(WriteColumnarBuffer(zero_rows));
  ASSERT_TRUE(back2.ok()) << back2.status().ToString();
  EXPECT_EQ(back2->num_rows(), 0u);
  EXPECT_TRUE(zero_rows.Equals(*back2));
}

TEST(ColumnarTest, RoundTripsWideTable) {
  Table t("wide");
  for (int c = 0; c < 100; ++c) {
    ASSERT_TRUE(t.AddColumn("c" + std::to_string(c),
                            Column::Doubles({1.0 * c, 2.0 * c, 3.0 * c}))
                    .ok());
  }
  auto back = ReadColumnarBuffer(WriteColumnarBuffer(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(t.Equals(*back));
}

TEST(ColumnarTest, RoundTripsEveryFuzzerLakeShape) {
  // The fuzzer plants the corners a production lake throws at the codec:
  // unicode/empty-string keys, all-null and constant columns, zero-overlap
  // keys, single-row and wide tables. Every generated table must survive
  // CSV -> Table -> columnar -> Table with value identity.
  qa::LakeFuzzer fuzzer;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    qa::FuzzedLake fz = fuzzer.Generate(seed);
    for (const Table& table : fz.lake.tables()) {
      auto back = ReadColumnarBuffer(WriteColumnarBuffer(table));
      ASSERT_TRUE(back.ok()) << "seed " << seed << " table " << table.name()
                             << ": " << back.status().ToString();
      EXPECT_TRUE(table.Equals(*back))
          << "seed " << seed << " table " << table.name();
    }
  }
}

TEST(ColumnarTest, FileRoundTripAndFallbackName) {
  namespace fs = std::filesystem;
  Table t = MixedTable();
  t.set_name("");  // force the reader onto the file-stem fallback
  std::string path =
      (fs::path(::testing::TempDir()) / "afc_table.afc").string();
  ASSERT_TRUE(WriteColumnarFile(t, path).ok());
  auto back = ReadColumnarFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name(), "afc_table");
  t.set_name("afc_table");
  EXPECT_TRUE(t.Equals(*back));
  fs::remove(path);
}

TEST(ColumnarTest, MissingFileIsError) {
  auto r = ReadColumnarFile("/nonexistent/nope.afc");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

// ---- Corruption: every case returns Status, never crashes -------------------

TEST(ColumnarTest, RejectsShortAndEmptyBuffers) {
  EXPECT_FALSE(ReadColumnarBuffer("").ok());
  EXPECT_FALSE(ReadColumnarBuffer("AFC1").ok());
  std::string image = WriteColumnarBuffer(MixedTable());
  for (size_t keep : {size_t{1}, size_t{16}, size_t{31}}) {
    EXPECT_FALSE(ReadColumnarBuffer(image.substr(0, keep)).ok());
  }
}

TEST(ColumnarTest, RejectsBadMagicAndVersion) {
  std::string image = WriteColumnarBuffer(MixedTable());
  std::string bad_magic = image;
  bad_magic[0] = 'X';
  auto r = ReadColumnarBuffer(bad_magic);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("magic"), std::string::npos);

  std::string bad_version = image;
  bad_version[4] = 9;  // version u32 LE at offset 4
  r = ReadColumnarBuffer(bad_version);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("version"), std::string::npos);
}

TEST(ColumnarTest, RejectsTruncatedAndPaddedPayload) {
  std::string image = WriteColumnarBuffer(MixedTable());
  EXPECT_FALSE(ReadColumnarBuffer(image.substr(0, image.size() - 1)).ok());
  EXPECT_FALSE(ReadColumnarBuffer(image.substr(0, 40)).ok());
  EXPECT_FALSE(ReadColumnarBuffer(image + "x").ok());
}

TEST(ColumnarTest, RejectsChecksumMismatch) {
  std::string image = WriteColumnarBuffer(MixedTable());
  std::string tampered = image;
  tampered[image.size() / 2] ^= 0x01;
  auto r = ReadColumnarBuffer(tampered);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("checksum"), std::string::npos);
}

TEST(ColumnarTest, EveryHeaderByteFlipFailsOrPreservesTheTable) {
  // Flips in magic/version/size/checksum must be rejected; flips in the
  // reserved header word are (by design) invisible — but then the decoded
  // table must equal the original.
  Table t = MixedTable();
  std::string image = WriteColumnarBuffer(t);
  for (size_t i = 0; i < 32; ++i) {
    std::string flipped = image;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x40);
    auto r = ReadColumnarBuffer(flipped);
    if (r.ok()) {
      EXPECT_GE(i, 24u) << "non-reserved header byte " << i
                        << " flipped undetected";
      EXPECT_TRUE(t.Equals(*r));
    }
  }
}

TEST(ColumnarTest, ResealedPayloadCorruptionNeverCrashes) {
  // Flip every payload byte in turn and re-seal the checksum, so the
  // decoder's structural guards (not the checksum) face each corruption:
  // fabricated row/column/dictionary counts, out-of-range ids, bad type
  // bytes, non-sentinel ids on null rows. Any outcome is legal except a
  // crash; successful reads must at least parse to a well-formed table.
  std::string image = WriteColumnarBuffer(MixedTable());
  size_t rejected = 0;
  for (size_t i = 32; i < image.size(); ++i) {
    std::string tampered = image;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x80);
    ResealChecksum(&tampered);
    auto r = ReadColumnarBuffer(tampered);
    if (!r.ok()) {
      ++rejected;
    } else {
      EXPECT_LE(r->num_rows(), 5u);
    }
  }
  // Most flips hit structure, not string content; the guards must fire.
  EXPECT_GT(rejected, 0u);
}

TEST(ColumnarTest, RejectsFabricatedCountsWithValidChecksum) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("s", Column::Strings({"a", "b"}, {1, 0})).ok());
  std::string image = WriteColumnarBuffer(t);
  // Payload layout: u32 name_len | "t" | u64 num_rows | u32 num_columns.
  const size_t rows_at = 32 + 4 + 1;
  const size_t cols_at = rows_at + 8;
  std::string huge_rows = image;
  huge_rows[rows_at + 6] = static_cast<char>(0x7F);  // num_rows ~= 2^54
  ResealChecksum(&huge_rows);
  auto r = ReadColumnarBuffer(huge_rows);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("row count"), std::string::npos);

  std::string huge_cols = image;
  huge_cols[cols_at + 3] = static_cast<char>(0x7F);  // num_columns ~= 2^30
  ResealChecksum(&huge_cols);
  r = ReadColumnarBuffer(huge_cols);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("column count"), std::string::npos);
}

TEST(ColumnarTest, CsvLakeRoundTripsThroughColumnar) {
  // The converter contract end to end in memory: a CSV-born table written
  // to columnar and read back equals the CSV parse exactly.
  auto t = ReadCsvString(
      "id,score,name\n1,0.5,ann\n2,,bob\n3,1.25,\n4,2.5,d\xC3\xA9j\xC3\xA0\n",
      "csvt");
  ASSERT_TRUE(t.ok());
  auto back = ReadColumnarBuffer(WriteColumnarBuffer(*t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(t->Equals(*back));
}

}  // namespace
}  // namespace autofeat
