// LakeService: mutation semantics, epoch/snapshot consistency, precise
// cache invalidation, incremental-vs-cold equivalence, the per-query
// observability surface (event log, lineage, latency quantiles, slow-query
// events, deterministic digests) and a concurrent mutator+readers stress
// suite (run under TSan in CI with tracing and the event log attached).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "discovery/data_lake.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "qa/invariants.h"
#include "qa/lake_fuzzer.h"
#include "serve/lake_service.h"
#include "serve/mutation.h"
#include "support/lake_fixtures.h"
#include "table/column.h"

namespace autofeat::serve {
namespace {

// A one-key-column satellite joinable with MakeOrdersCustomersLake's
// "cust" columns.
Table MakeCustSatellite(const std::string& name, double offset) {
  Table table(name);
  table.AddColumn("cust", Column::Int64s({1, 2, 3})).Abort();
  table.AddColumn("score",
                  Column::Doubles({offset + 1, offset + 2, offset + 3}))
      .Abort();
  return table;
}

std::unique_ptr<LakeService> MakeService(DataLake lake,
                                         ServeOptions options = {}) {
  Result<std::unique_ptr<LakeService>> service =
      LakeService::Create(std::move(lake), std::move(options));
  EXPECT_TRUE(service.ok()) << service.status().message();
  return service.MoveValue();
}

TEST(MutationTest, ParseMutationKindIsCaseInsensitive) {
  EXPECT_EQ(*ParseMutationKind("add"), LakeMutation::Kind::kAddTable);
  EXPECT_EQ(*ParseMutationKind(" Append "), LakeMutation::Kind::kAppendRows);
  EXPECT_EQ(*ParseMutationKind("DROP"), LakeMutation::Kind::kDropTable);
  Result<LakeMutation::Kind> bad = ParseMutationKind("upsert");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("valid values: add, append, drop"),
            std::string::npos);
}

TEST(LakeServiceTest, MutationsAdvanceTheEpoch) {
  std::unique_ptr<LakeService> service =
      MakeService(testsupport::MakeOrdersCustomersLake());
  EXPECT_EQ(service->epoch(), 0u);

  Result<uint64_t> added = service->AddTable(MakeCustSatellite("regions", 0));
  ASSERT_TRUE(added.ok()) << added.status().message();
  EXPECT_EQ(*added, 1u);

  Table extra("regions");
  extra.AddColumn("cust", Column::Int64s({4})).Abort();
  extra.AddColumn("score", Column::Doubles({9})).Abort();
  Result<uint64_t> appended = service->AppendRows("regions", extra);
  ASSERT_TRUE(appended.ok()) << appended.status().message();
  EXPECT_EQ(*appended, 2u);
  EXPECT_EQ((*service->snapshot()->lake.GetTable("regions"))->num_rows(), 4u);

  Result<uint64_t> dropped = service->DropTable("regions");
  ASSERT_TRUE(dropped.ok()) << dropped.status().message();
  EXPECT_EQ(*dropped, 3u);
  EXPECT_FALSE(service->snapshot()->lake.HasTable("regions"));
}

TEST(LakeServiceTest, FailedMutationsAreNoOps) {
  std::unique_ptr<LakeService> service =
      MakeService(testsupport::MakeOrdersCustomersLake());

  // Duplicate add.
  Table dup("orders");
  dup.AddColumn("cust", Column::Int64s({1})).Abort();
  EXPECT_FALSE(service->AddTable(std::move(dup)).ok());

  // Schema-mismatched append (missing the amount column).
  Table rows("orders");
  rows.AddColumn("cust", Column::Int64s({7})).Abort();
  EXPECT_FALSE(service->AppendRows("orders", rows).ok());

  // Missing drop target.
  EXPECT_FALSE(service->DropTable("no_such_table").ok());

  EXPECT_EQ(service->epoch(), 0u);
  EXPECT_EQ(service->snapshot()->lake.num_tables(), 2u);
}

TEST(LakeServiceTest, PinnedSnapshotIsImmutableAcrossMutations) {
  std::unique_ptr<LakeService> service =
      MakeService(testsupport::MakeOrdersCustomersLake());
  LakeService::SnapshotPin pinned = service->snapshot();
  ASSERT_TRUE(service->DropTable("customers").ok());
  ASSERT_TRUE(service->AddTable(MakeCustSatellite("regions", 5)).ok());

  // The pin still sees epoch 0 in full: the dropped table, its sketches and
  // the old DRG — no use-after-evict, the snapshot owns its caches.
  EXPECT_EQ(pinned->epoch, 0u);
  ASSERT_TRUE(pinned->lake.HasTable("customers"));
  EXPECT_FALSE(pinned->lake.HasTable("regions"));
  LakeSketchCache::TableSketchesPin sketches =
      pinned->sketch_cache->GetOrBuild(1);
  EXPECT_EQ(sketches->size(),
            (*pinned->lake.GetTable("customers"))->num_columns());
  EXPECT_NE(pinned->drg.OrderedFingerprint(),
            service->snapshot()->drg.OrderedFingerprint());

  EXPECT_EQ(service->epoch(), 2u);
  EXPECT_FALSE(service->snapshot()->lake.HasTable("customers"));
}

TEST(LakeServiceTest, UntouchedSketchEntriesCarryOverByPointer) {
  std::unique_ptr<LakeService> service =
      MakeService(testsupport::MakeOrdersCustomersLake());
  LakeService::SnapshotPin before = service->snapshot();
  LakeSketchCache::TableSketchesPin orders_before =
      before->sketch_cache->GetOrBuild(0);
  LakeSketchCache::TableSketchesPin customers_before =
      before->sketch_cache->GetOrBuild(1);

  Table rows("customers");
  rows.AddColumn("cust", Column::Int64s({4})).Abort();
  rows.AddColumn("age", Column::Doubles({64})).Abort();
  ASSERT_TRUE(service->AppendRows("customers", rows).ok());

  LakeService::SnapshotPin after = service->snapshot();
  // Precise invalidation: the untouched table's entry is the *same object*
  // (carried by pointer), the mutated table's entry was rebuilt.
  EXPECT_EQ(after->sketch_cache->GetOrBuild(0).get(), orders_before.get());
  EXPECT_NE(after->sketch_cache->GetOrBuild(1).get(), customers_before.get());
}

TEST(LakeServiceTest, IncrementalDrgMatchesColdRebuildAfterMutations) {
  DataLake initial = testsupport::MakeOrdersCustomersLake();
  std::unique_ptr<LakeService> service = MakeService(initial);

  // Add, append, drop-mid-path, re-add under the same name with a renamed
  // feature column — the corners incremental maintenance can get wrong.
  ASSERT_TRUE(service->AddTable(MakeCustSatellite("regions", 0)).ok());
  Table rows("regions");
  rows.AddColumn("cust", Column::Int64s({2})).Abort();
  rows.AddColumn("score", Column::Doubles({8})).Abort();
  ASSERT_TRUE(service->AppendRows("regions", rows).ok());
  ASSERT_TRUE(service->DropTable("customers").ok());
  Table readded("customers");
  readded.AddColumn("cust", Column::Int64s({1, 3})).Abort();
  readded.AddColumn("renamed_age", Column::Doubles({30, 50})).Abort();
  ASSERT_TRUE(service->AddTable(std::move(readded)).ok());
  EXPECT_EQ(service->epoch(), 4u);

  // Cold replay of the same sequence, then a from-scratch discovery build.
  DataLake cold = std::move(initial);
  ASSERT_TRUE(cold.AddTable(MakeCustSatellite("regions", 0)).ok());
  ASSERT_TRUE(cold.AppendRows("regions", rows).ok());
  ASSERT_TRUE(cold.RemoveTable("customers").ok());
  Table cold_readded("customers");
  cold_readded.AddColumn("cust", Column::Int64s({1, 3})).Abort();
  cold_readded.AddColumn("renamed_age", Column::Doubles({30, 50})).Abort();
  ASSERT_TRUE(cold.AddTable(std::move(cold_readded)).ok());

  Result<DatasetRelationGraph> cold_drg =
      BuildDrgByDiscovery(cold, service->options().match);
  ASSERT_TRUE(cold_drg.ok()) << cold_drg.status().message();
  EXPECT_EQ(service->snapshot()->drg.OrderedFingerprint(),
            cold_drg->OrderedFingerprint());
}

TEST(LakeServiceTest, IncrementalEquivalenceInvariantPassesFuzzedTraces) {
  const qa::Invariant* invariant = nullptr;
  for (const qa::Invariant& inv : qa::BuiltinInvariants()) {
    if (inv.name == "serve.incremental_equivalence") invariant = &inv;
  }
  ASSERT_NE(invariant, nullptr);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    qa::FuzzedLake fz = testsupport::MakeAdversarialLake(seed);
    Status status = invariant->check(fz);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status.message();
  }
}

TEST(LakeServiceObsTest, EventLogRecordsQueriesMutationsAndLineage) {
  obs::MetricsRegistry metrics;
  obs::EventLog events;
  Result<std::unique_ptr<LakeService>> service = LakeService::Create(
      testsupport::MakeOrdersCustomersLake(), ServeOptions{}, &metrics,
      /*tracer=*/nullptr, &events);
  ASSERT_TRUE(service.ok()) << service.status().message();

  // Epoch 0 is already on record: one epoch_publish, one lineage entry.
  EXPECT_EQ(events.size(), 1u);
  ASSERT_TRUE((*service)->AddTable(MakeCustSatellite("regions", 0)).ok());
  ASSERT_TRUE((*service)
                  ->Discover("orders", "amount")
                  .ok());
  EXPECT_FALSE((*service)->DropTable("no_such_table").ok());

  std::string log = events.Jsonl();
  EXPECT_NE(log.find("\"type\": \"epoch_publish\""), std::string::npos);
  EXPECT_NE(log.find("\"type\": \"mutation_apply\""), std::string::npos);
  EXPECT_NE(log.find("\"type\": \"query_start\""), std::string::npos);
  EXPECT_NE(log.find("\"type\": \"query_end\""), std::string::npos);
  // The failed drop is on record with ok=false but published no epoch.
  EXPECT_NE(log.find("\"table\": \"no_such_table\", \"ok\": false"),
            std::string::npos);

  std::vector<EpochLineage> lineage = (*service)->Lineage();
  ASSERT_EQ(lineage.size(), 2u);
  EXPECT_EQ(lineage[0].epoch, 0u);
  EXPECT_EQ(lineage[0].mutation_id, 0u);
  EXPECT_EQ(lineage[0].cause, "create");
  EXPECT_EQ(lineage[0].target_table, "");
  EXPECT_EQ(lineage[0].num_tables, 2u);
  EXPECT_EQ(lineage[0].pairs_carried, 0u);
  EXPECT_EQ(lineage[1].epoch, 1u);
  EXPECT_EQ(lineage[1].mutation_id, 1u);
  EXPECT_EQ(lineage[1].cause, "add");
  EXPECT_EQ(lineage[1].target_table, "regions");
  EXPECT_EQ(lineage[1].num_tables, 3u);
  // The add re-scored its own pairs; the orders/customers pair carried.
  EXPECT_GT(lineage[1].pairs_rescored, 0u);
  EXPECT_GT(lineage[1].sketch_entries_carried, 0u);

  std::string json = (*service)->LineageJson();
  EXPECT_TRUE(obs::JsonIsValid(json)) << json;
  EXPECT_NE(json.find("\"cause\": \"create\""), std::string::npos);
  EXPECT_NE(json.find("\"cause\": \"add\""), std::string::npos);

  // Latency quantiles landed in the service registry (non-deterministic);
  // the failed drop records a mutation latency too.
  EXPECT_EQ(metrics.QuantileCount("serve.query_latency_ns"), 1u);
  EXPECT_EQ(metrics.QuantileCount("serve.mutation_latency_ns"), 2u);
  EXPECT_GT(metrics.QuantileValueAt("serve.query_latency_ns", 0.5), 0u);
}

TEST(LakeServiceObsTest, ReplayedSequencesGiveByteIdenticalObservability) {
  // Two services replaying the same mutation/query sequence must agree on
  // the stripped event log and the full lineage, byte for byte — at any
  // thread count.
  auto replay = [](size_t threads, obs::EventLog* events,
                   std::string* lineage_json) {
    ServeOptions options;
    options.config.num_threads = threads;
    Result<std::unique_ptr<LakeService>> service = LakeService::Create(
        testsupport::MakeOrdersCustomersLake(), options, /*metrics=*/nullptr,
        /*tracer=*/nullptr, events);
    ASSERT_TRUE(service.ok()) << service.status().message();
    ASSERT_TRUE((*service)->AddTable(MakeCustSatellite("regions", 0)).ok());
    ASSERT_TRUE((*service)
                    ->Discover("orders", "amount")
                    .ok());
    ASSERT_TRUE((*service)->DropTable("regions").ok());
    ASSERT_TRUE((*service)
                    ->Discover("orders", "amount")
                    .ok());
    *lineage_json = (*service)->LineageJson();
  };
  obs::EventLog events1, events2, events8;
  std::string lineage1, lineage2, lineage8;
  replay(1, &events1, &lineage1);
  replay(2, &events2, &lineage2);
  replay(8, &events8, &lineage8);
  EXPECT_EQ(events1.Jsonl(false), events2.Jsonl(false));
  EXPECT_EQ(events1.Jsonl(false), events8.Jsonl(false));
  EXPECT_EQ(lineage1, lineage2);
  EXPECT_EQ(lineage1, lineage8);
}

TEST(LakeServiceObsTest, QueryDigestIsInvariantAcrossThreadsAndSchedulers) {
  // A query's deterministic obs digest is a pure function of the snapshot
  // state: identical across thread counts and both schedulers.
  std::vector<std::string> digests;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (SchedulerKind scheduler :
         {SchedulerKind::kForkJoin, SchedulerKind::kMorsel}) {
      ServeOptions options;
      options.config.num_threads = threads;
      options.config.scheduler = scheduler;
      std::unique_ptr<LakeService> service =
          MakeService(testsupport::MakeOrdersCustomersLake(), options);
      ASSERT_TRUE(service->AddTable(MakeCustSatellite("regions", 0)).ok());
      obs::MetricsRegistry query_metrics;
      obs::Tracer query_tracer;
      ASSERT_TRUE(service
                      ->Discover("orders", "amount",
                                 &query_metrics, &query_tracer)
                      .ok());
      digests.push_back(
          obs::DeterministicDigest(query_metrics, &query_tracer));
    }
  }
  for (const std::string& digest : digests) {
    EXPECT_EQ(digest, digests.front());
  }
}

TEST(LakeServiceObsTest, SlowQueryThresholdEmitsEventsAndCounts) {
  obs::MetricsRegistry metrics;
  obs::EventLog events;
  ServeOptions options;
  options.slow_query_threshold_ns = 1;  // every real query is "slow"
  Result<std::unique_ptr<LakeService>> service = LakeService::Create(
      testsupport::MakeOrdersCustomersLake(), options, &metrics,
      /*tracer=*/nullptr, &events);
  ASSERT_TRUE(service.ok()) << service.status().message();
  ASSERT_TRUE((*service)
                  ->Discover("orders", "amount")
                  .ok());
  EXPECT_EQ(metrics.CounterValue("serve.slow_queries"), 1u);
  std::string log = events.Jsonl();
  EXPECT_NE(log.find("\"type\": \"slow_query\""), std::string::npos);
  EXPECT_NE(log.find("\"threshold_ns\": 1"), std::string::npos);

  // Threshold 0 (the default) disables slow-query events entirely.
  obs::MetricsRegistry quiet_metrics;
  obs::EventLog quiet_events;
  Result<std::unique_ptr<LakeService>> quiet = LakeService::Create(
      testsupport::MakeOrdersCustomersLake(), ServeOptions{}, &quiet_metrics,
      /*tracer=*/nullptr, &quiet_events);
  ASSERT_TRUE(quiet.ok());
  ASSERT_TRUE(
      (*quiet)->Discover("orders", "amount").ok());
  EXPECT_EQ(quiet_metrics.CounterValue("serve.slow_queries"), 0u);
  EXPECT_EQ(quiet_events.Jsonl().find("slow_query"), std::string::npos);
}

TEST(LakeServiceStressTest, ConcurrentReadersSeeOnlyPublishedStates) {
  // One mutator applies a known sequence of successful mutations while N
  // reader threads run Discover; every result must carry an epoch in
  // [0, kMutations] and be byte-identical to a cold service built at that
  // epoch's lake state — a reader can never observe a half-applied
  // mutation or a cache entry from a different epoch. The full
  // observability surface stays attached (metrics, tracer, event log,
  // per-query tracers) so TSan exercises the instrumentation hot paths
  // under the same contention.
  qa::FuzzedLake fz = testsupport::MakeAdversarialLake(11);
  ServeOptions options;
  options.config = qa::FuzzDiscoveryConfig(fz, 1);
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  obs::EventLog events;
  Result<std::unique_ptr<LakeService>> created =
      LakeService::Create(fz.lake, options, &metrics, &tracer, &events);
  ASSERT_TRUE(created.ok()) << created.status().message();
  std::unique_ptr<LakeService> service = created.MoveValue();

  constexpr size_t kMutations = 6;
  constexpr size_t kReaders = 4;
  constexpr size_t kQueriesPerReader = 12;

  std::vector<Table> to_add;
  for (size_t m = 0; m < kMutations; ++m) {
    Table table("stress_t" + std::to_string(m));
    table.AddColumn("key", Column::Int64s({0, 1, 2})).Abort();
    table.AddColumn("v", Column::Doubles({1.0 + m, 2.0 + m, 3.0 + m}))
        .Abort();
    to_add.push_back(std::move(table));
  }

  // Expected Discover fingerprint per epoch, from cold services over the
  // replayed mutation prefixes.
  std::vector<std::string> expected;
  {
    DataLake cold = fz.lake;
    for (size_t e = 0; e <= kMutations; ++e) {
      std::unique_ptr<LakeService> cold_service = MakeService(cold, options);
      Result<LakeService::DiscoverOutcome> out =
          cold_service->Discover(fz.base_table, fz.label_column);
      ASSERT_TRUE(out.ok()) << out.status().message();
      expected.push_back(qa::DiscoveryFingerprint(out->discovery));
      if (e < kMutations) ASSERT_TRUE(cold.AddTable(to_add[e]).ok());
    }
  }

  std::mutex mu;
  std::vector<std::pair<uint64_t, std::string>> observed;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      obs::Tracer reader_tracer;
      for (size_t q = 0; q < kQueriesPerReader; ++q) {
        Result<LakeService::DiscoverOutcome> out = service->Discover(
            fz.base_table, fz.label_column, /*metrics=*/nullptr,
            &reader_tracer);
        ASSERT_TRUE(out.ok()) << out.status().message();
        std::lock_guard<std::mutex> lock(mu);
        observed.emplace_back(out->epoch,
                              qa::DiscoveryFingerprint(out->discovery));
      }
    });
  }
  for (size_t m = 0; m < kMutations; ++m) {
    Result<uint64_t> epoch = service->AddTable(to_add[m]);
    ASSERT_TRUE(epoch.ok()) << epoch.status().message();
    EXPECT_EQ(*epoch, m + 1);
  }
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(observed.size(), kReaders * kQueriesPerReader);
  for (const auto& [epoch, fingerprint] : observed) {
    ASSERT_LE(epoch, kMutations);
    EXPECT_EQ(fingerprint, expected[epoch]) << "at epoch " << epoch;
  }
  EXPECT_EQ(service->epoch(), kMutations);

  // The concurrently-written observability is complete and well-formed:
  // every query and mutation is on record, and the interleaved log is
  // valid JSONL line by line.
  EXPECT_EQ(metrics.CounterValue("serve.queries"),
            kReaders * kQueriesPerReader);
  EXPECT_EQ(metrics.QuantileCount("serve.query_latency_ns"),
            kReaders * kQueriesPerReader);
  EXPECT_EQ(metrics.CounterValue("serve.mutations"), kMutations);
  EXPECT_EQ((*service).Lineage().size(), kMutations + 1);
  std::string log = events.Jsonl();
  size_t query_ends = 0;
  for (size_t pos = 0;
       (pos = log.find("\"type\": \"query_end\"", pos)) != std::string::npos;
       ++pos) {
    ++query_ends;
  }
  EXPECT_EQ(query_ends, kReaders * kQueriesPerReader);
  std::istringstream lines(log);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(obs::JsonIsValid(line)) << line;
  }
}

}  // namespace
}  // namespace autofeat::serve
