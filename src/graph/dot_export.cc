#include "graph/dot_export.h"

#include <cstdio>

namespace autofeat {

namespace {

// Escapes a string for use inside a double-quoted dot identifier.
std::string DotEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

bool OnPath(const JoinPath* path, size_t a, size_t b,
            const std::string& a_col, const std::string& b_col) {
  if (path == nullptr) return false;
  for (const auto& step : path->steps) {
    bool forward = step.from_node == a && step.to_node == b &&
                   step.from_column == a_col && step.to_column == b_col;
    bool backward = step.from_node == b && step.to_node == a &&
                    step.from_column == b_col && step.to_column == a_col;
    if (forward || backward) return true;
  }
  return false;
}

}  // namespace

std::string ExportDrgToDot(const DatasetRelationGraph& drg,
                           const DotOptions& options) {
  std::string out = "graph drg {\n  node [shape=box, fontsize=10];\n";
  for (size_t n = 0; n < drg.num_nodes(); ++n) {
    out += "  \"" + DotEscape(drg.NodeName(n)) + "\"";
    if (drg.NodeName(n) == options.highlight_node) {
      out += " [style=filled, fillcolor=lightblue]";
    }
    out += ";\n";
  }
  // Enumerate each undirected edge once (a < b orientation).
  for (size_t a = 0; a < drg.num_nodes(); ++a) {
    for (size_t b = a + 1; b < drg.num_nodes(); ++b) {
      for (const JoinStep& e : drg.EdgesBetween(a, b)) {
        char label[160];
        std::snprintf(label, sizeof(label), "%s = %s (%.2f)",
                      e.from_column.c_str(), e.to_column.c_str(), e.weight);
        out += "  \"" + DotEscape(drg.NodeName(a)) + "\" -- \"" +
               DotEscape(drg.NodeName(b)) + "\" [label=\"" +
               DotEscape(label) + "\", fontsize=8";
        if (OnPath(options.highlight_path, a, b, e.from_column,
                   e.to_column)) {
          out += ", color=red, penwidth=2";
        } else if (e.weight < options.solid_weight_threshold) {
          out += ", style=dashed";
        }
        out += "];\n";
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace autofeat
