// Lake-wide cache of interned join-key indexes, with an optional memory
// budget enforced by cost-aware LRU eviction.
//
// Every BFS candidate edge, top-k materialisation and baseline join probes
// some lake table on some key column. Before this cache each probe re-hashed
// the right key column from scratch; now the dictionary + CSR index + the
// deterministic cardinality-normalisation representative for a given
// (table, key column) pair are built at most once per residency — across the
// discovery frontier, the ML evaluation stage and the ARDA/MAB/JoinAll
// baselines, and across threads (sibling of LakeSketchCache, which plays
// the same role for DRG construction).
//
// Memory budget: with budget_bytes > 0 the cache keeps its resident entries
// within the budget by evicting, on each insertion, the least-recently-used
// entries first (larger footprint first among entries touched by the same
// batch operation — freeing the most bytes per eviction is the cost-aware
// tie-break; Prewarm stamps all its entries with one recency tick, so the
// tie is real there). An entry whose own footprint exceeds the budget is
// handed to the caller but never becomes resident. Evicted entries are
// rebuilt on the next request (rebuild-on-miss); because every entry is a
// pure function of (table contents, column, seed) — never of build
// interleaving or eviction schedule — results are byte-identical under any
// eviction schedule (the `cache.eviction_oblivious` fuzzer invariant).
//
// Callers receive a shared_ptr pin, so an entry evicted while a worker is
// mid-join stays alive until the last pin drops; the budget bounds the
// cache-resident bytes (`join_index_cache.bytes` gauge), matching what
// eviction can actually reclaim.
//
// Thread safety: GetOrBuild may be called concurrently from pool workers;
// concurrent requests for one entry build it once (the per-entry build
// mutex serialises builders; latecomers count as hits). Lock order: a
// build mutex may acquire the cache mutex, never the reverse — eviction
// only takes the cache mutex, so it cannot deadlock against builders.
//
// Metrics semantics (and why): `requests` and `builds` (first-time builds)
// are workload-determined and stay deterministic; `hits`, `rebuilds`,
// `evictions` and the byte gauges depend on the eviction schedule and are
// registered non-deterministic so the obs digest is identical between
// evicted and unevicted runs. `key_cardinality` records only first-time
// builds (rebuilds reproduce the same index).

#ifndef AUTOFEAT_DISCOVERY_JOIN_INDEX_CACHE_H_
#define AUTOFEAT_DISCOVERY_JOIN_INDEX_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "relational/join_index.h"
#include "util/status.h"

namespace autofeat {

namespace obs {
class EventLog;
class Tracer;
}  // namespace obs

class DataLake;
class DatasetRelationGraph;
class ThreadPool;

/// \brief Thread-safe (table, key column) -> JoinKeyIndex cache over a lake,
/// optionally bounded by a byte budget with LRU eviction + rebuild-on-miss.
class JoinIndexCache {
 public:
  /// A pinned cache entry: keeps the index alive across eviction until the
  /// caller drops it.
  using IndexPin = std::shared_ptr<const JoinKeyIndex>;

  /// `lake` must outlive the cache. `seed` fixes the representative-row
  /// draws; two caches with the same seed over the same lake build
  /// interchangeable entries (eviction + rebuild reproduces them exactly).
  /// `budget_bytes` bounds the resident footprint (0 = unbounded). A
  /// non-null `metrics` records the counters/gauges described in the file
  /// comment. A non-null `tracer` records each index build as a
  /// `join_index.build` worker span.
  JoinIndexCache(const DataLake* lake, uint64_t seed,
                 obs::MetricsRegistry* metrics = nullptr,
                 obs::Tracer* tracer = nullptr, size_t budget_bytes = 0);

  /// The index of `table`.`column`, built on first request and rebuilt
  /// after eviction. The returned pin stays valid for as long as the caller
  /// holds it. Fails if the table or column does not exist.
  Result<IndexPin> GetOrBuild(const std::string& table,
                              const std::string& column);

  /// Builds the index of every join target (to_node, to_column) reachable
  /// through `drg` up front, fanning out over `pool` when given. Purely an
  /// optimisation — lazy GetOrBuild fills any entry Prewarm missed or the
  /// budget evicted. All prewarmed entries share one recency tick (they are
  /// one batch), so under a budget the largest are evicted first.
  void Prewarm(const DatasetRelationGraph& drg, ThreadPool* pool = nullptr);

  /// Copies the resident entries of `prev` whose table is neither in
  /// `invalidated_tables` nor absent from this cache's lake — the serving
  /// layer's precise invalidation: a mutation touching one table evicts
  /// exactly that table's entries from the next snapshot's cache, and
  /// every other entry survives by pointer copy. Both caches must share
  /// the seed (entries are pure functions of (table contents, column,
  /// seed); with differing seeds nothing is carried). Sticky failures are
  /// not carried — they re-resolve against the new lake. Respects this
  /// cache's budget. Call before publishing the cache; `prev` may be
  /// serving concurrent readers. Returns the number of entries installed
  /// (the serving layer's epoch-lineage carry-over count).
  size_t CarryOver(const JoinIndexCache& prev,
                   const std::unordered_set<std::string>& invalidated_tables);

  /// Attaches a structured event log: evictions append `cache_evict` and
  /// post-eviction rebuilds append `cache_rebuild` events (obs/event_log.h).
  /// Call before the cache is shared across threads.
  void set_event_log(obs::EventLog* log) { event_log_ = log; }

  /// Evicts every resident entry (the adversarial stress schedule of the
  /// eviction-obliviousness invariant). Outstanding pins stay valid.
  void EvictAll();

  /// Evicts the resident entries whose key hash has the same low bit as
  /// `draw` — a deterministic function of (resident set, draw), used by the
  /// seeded random eviction-stress schedule.
  void EvictRandomHalf(uint64_t draw);

  /// Entries ever created (resident or evicted).
  size_t num_entries() const;
  /// Entries currently holding a built index.
  size_t num_resident() const;
  /// Sum of the resident entries' ApproxBytes (== the bytes gauge).
  size_t resident_bytes() const;
  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    std::mutex build_mutex;  // serialises builders; see lock order above
    // All fields below are guarded by the cache-wide mutex_.
    IndexPin index;          // null when not built or evicted
    size_t bytes = 0;        // ApproxBytes of `index` while resident
    uint64_t last_used = 0;  // recency tick of the latest request
    bool ever_built = false; // distinguishes builds from rebuilds
    Status failure;          // sticky lookup failure (bad table/column)
    bool failed = false;
  };

  std::shared_ptr<Entry> EntryFor(const std::string& key, uint64_t tick);
  Result<IndexPin> GetOrBuildWithTick(const std::string& table,
                                      const std::string& column,
                                      uint64_t tick);
  // Drops resident entries (skipping `keep`) until resident_bytes_ +
  // incoming <= budget. Caller holds mutex_.
  void EvictForLocked(size_t incoming, const Entry* keep);
  void Account(int64_t delta);

  const DataLake* lake_;
  uint64_t seed_;
  size_t budget_bytes_;
  obs::Tracer* tracer_;
  obs::EventLog* event_log_ = nullptr;
  obs::Counter* requests_;
  obs::Counter* builds_;
  obs::Counter* hits_;
  obs::Counter* rebuilds_;
  obs::Counter* evictions_;
  obs::Gauge* bytes_;
  obs::Gauge* bytes_peak_;
  obs::Histogram* key_cardinality_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  size_t resident_bytes_ = 0;
  uint64_t tick_ = 0;
};

}  // namespace autofeat

#endif  // AUTOFEAT_DISCOVERY_JOIN_INDEX_CACHE_H_
