// AutoFeat-as-a-service: incremental DRG maintenance vs cold rebuilds,
// plus a YCSB-style mixed mutation/query driver.
//
// Builds a 200-table pod lake (datagen::BuildScaleLake) plus a labelled
// query base table, stands up a LakeService (kLsh candidate mode), then:
//
//  1. Gate phase (sequential, exported registry): applies a rotating
//     add/append/drop mutation sequence. After every mutation the
//     service's incrementally maintained DRG must be byte-identical to a
//     cold BuildDrgByDiscovery over the same lake state, and the summed
//     incremental maintenance time must be at least 5x faster than the
//     summed cold rebuilds. A final Discover on the mutated service must
//     match a cold service built at the final state.
//  2. YCSB-style workloads (separate, unexported service): A (50/50
//     mutation/query), B (95/5 read-heavy) and C (read-only), each with 4
//     reader threads + 1 mutator. Per-op latencies land in mergeable
//     quantile histograms (obs/quantile.h) registered as
//     `<workload>.query_latency_ns` / `<workload>.mutation_latency_ns`;
//     the p50/p99 they report feed both the autofeat.bench.v1 timings and
//     the embedded obs report, where tools/bench_diff gates them with the
//     timing threshold + --min-seconds noise floor (latency quantiles sit
//     below the CI floor).
//
// Artifacts: BENCH_serving.json (timings + obs report), TRACE_serving.json
// (gate-phase span tree) and EVENTS_serving.jsonl (structured serving
// events) at the repo root.
//
// Self-gating: exits non-zero on any fingerprint divergence or when the
// incremental speedup falls under 5x. Quick mode shrinks rows and op
// counts; AUTOFEAT_BENCH_MODE=full scales them up.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness.h"
#include "datagen/scale_lake.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/quantile.h"
#include "obs/trace.h"
#include "qa/invariants.h"
#include "serve/lake_service.h"
#include "serve/mutation.h"
#include "table/column.h"
#include "util/rng.h"
#include "util/timer.h"

namespace autofeat::benchx {
namespace {

constexpr const char* kBaseTable = "bench_base";
constexpr const char* kLabelColumn = "label";

// The labelled query entry point: joins into pod 0 via its key domain.
Table MakeQueryBase(size_t rows) {
  Table base(kBaseTable);
  Column key(DataType::kInt64);
  Column label(DataType::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    key.AppendInt64(static_cast<int64_t>(i));
    label.AppendInt64(static_cast<int64_t>(i % 2));
  }
  base.AddColumn("key_p0", std::move(key)).Abort();
  base.AddColumn(kLabelColumn, std::move(label)).Abort();
  return base;
}

// A fresh table joinable into pod `pod` (same key domain and column name).
Table MakeAddedTable(size_t index, size_t pod, size_t rows) {
  Rng rng(DeriveSeed(4242, index));
  Table table("mut" + std::to_string(index));
  Column key(DataType::kInt64);
  const int64_t base = static_cast<int64_t>(pod * rows);
  for (size_t i = 0; i < rows; ++i) {
    key.AppendInt64(base + static_cast<int64_t>(i));
  }
  table.AddColumn("key_p" + std::to_string(pod), std::move(key)).Abort();
  for (size_t m = 0; m < 2; ++m) {
    Column feature(DataType::kDouble);
    for (size_t i = 0; i < rows; ++i) feature.AppendDouble(rng.Normal());
    table
        .AddColumn("mv" + std::to_string(index) + "_" + std::to_string(m),
                   std::move(feature))
        .Abort();
  }
  return table;
}

// Rows matching `current`'s exact schema (append payloads must).
Table MakeAppendRows(const Table& current, uint64_t seed, size_t rows) {
  Rng rng(seed);
  Table payload(current.name());
  for (size_t c = 0; c < current.num_columns(); ++c) {
    const Field& field = current.schema().field(c);
    Column col(field.type);
    for (size_t r = 0; r < rows; ++r) {
      switch (field.type) {
        case DataType::kInt64:
          col.AppendInt64(rng.UniformInt(0, 1 << 20));
          break;
        case DataType::kDouble:
          col.AppendDouble(rng.Normal());
          break;
        default:
          col.AppendString("s" + std::to_string(rng.UniformIndex(97)));
          break;
      }
    }
    payload.AddColumn(field.name, std::move(col)).Abort();
  }
  return payload;
}

std::string QueryFingerprint(serve::LakeService* service) {
  auto out = service->Discover(kBaseTable, kLabelColumn);
  out.status().Abort("serving discover");
  return qa::DiscoveryFingerprint(out->discovery);
}

inline uint64_t ToNanos(double seconds) {
  return static_cast<uint64_t>(seconds * 1e9);
}

// `queries` Discover calls split over `readers` threads, racing one
// mutator applying `mutations` schema-preserving appends. Per-op latencies
// go straight into the quantile histograms: each reader records into a
// thread-local histogram and merges once at the end (the merge is
// associative, so the aggregate is identical to a single shared sink
// without readers contending on its buckets). Returns the wall time.
double RunWorkload(serve::LakeService* service, size_t queries,
                   size_t mutations, size_t readers,
                   obs::QuantileHistogram* query_latency,
                   obs::QuantileHistogram* mutation_latency) {
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(readers);
  const size_t per_reader = readers > 0 ? queries / readers : 0;
  for (size_t r = 0; r < readers; ++r) {
    size_t count = per_reader + (r < queries % readers ? 1 : 0);
    threads.emplace_back([service, count, query_latency] {
      obs::QuantileHistogram local;
      for (size_t q = 0; q < count; ++q) {
        Timer timer;
        auto out = service->Discover(kBaseTable, kLabelColumn);
        out.status().Abort("workload query");
        local.Record(ToNanos(timer.ElapsedSeconds()));
      }
      query_latency->Merge(local);
    });
  }
  for (size_t m = 0; m < mutations; ++m) {
    serve::LakeService::SnapshotPin snap = service->snapshot();
    const std::string target = "pod" + std::to_string(m % 8) + "_t1";
    const Table* current = snap->lake.GetTable(target).ValueOrDie();
    Table rows = MakeAppendRows(*current, DeriveSeed(777, m), 4);
    Timer timer;
    service->AppendRows(target, rows).status().Abort("workload mutation");
    obs::Record(mutation_latency, ToNanos(timer.ElapsedSeconds()));
  }
  for (std::thread& t : threads) t.join();
  return wall.ElapsedSeconds();
}

int Main() {
  datagen::ScaleLakeSpec spec;
  spec.num_tables = 200;
  spec.rows = FullMode() ? 120 : 80;  // above the LSH small-column rescue
  spec.features_per_table = 2;
  spec.seed = 42;
  DataLake lake = datagen::BuildScaleLake(spec);
  lake.AddTable(MakeQueryBase(spec.rows)).Abort();

  serve::ServeOptions options;
  options.match.candidate_mode = CandidateMode::kLsh;
  options.config.seed = 42;
  options.config.num_threads = 1;  // gate phase: sequential, deterministic
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  obs::EventLog events;

  Timer create_timer;
  auto service_result =
      serve::LakeService::Create(lake, options, &metrics, &tracer, &events);
  service_result.status().Abort("serving create");
  std::unique_ptr<serve::LakeService> service = service_result.MoveValue();
  const double create_seconds = create_timer.ElapsedSeconds();
  std::printf("serving: %zu tables, service up in %.3fs\n", lake.num_tables(),
              create_seconds);

  // ---- Gate phase: incremental maintenance vs cold rebuild per mutation --
  int failures = 0;
  const size_t kMutations = FullMode() ? 21 : 12;
  double incremental_seconds = 0.0;
  double cold_seconds = 0.0;
  for (size_t i = 0; i < kMutations; ++i) {
    serve::LakeMutation mutation;
    switch (i % 3) {
      case 0:
        mutation.kind = serve::LakeMutation::Kind::kAddTable;
        mutation.payload = MakeAddedTable(i, /*pod=*/1 + i % 7, spec.rows);
        break;
      case 1: {
        mutation.kind = serve::LakeMutation::Kind::kAppendRows;
        mutation.table = "pod" + std::to_string(i % 16) + "_t2";
        const Table* current =
            service->snapshot()->lake.GetTable(mutation.table).ValueOrDie();
        mutation.payload = MakeAppendRows(*current, DeriveSeed(999, i), 6);
        break;
      }
      default:
        // Drops the table added two mutations earlier.
        mutation.kind = serve::LakeMutation::Kind::kDropTable;
        mutation.table = "mut" + std::to_string(i - 2);
        break;
    }
    Timer inc_timer;
    service->Apply(mutation).status().Abort("gate mutation");
    incremental_seconds += inc_timer.ElapsedSeconds();

    serve::LakeService::SnapshotPin snap = service->snapshot();
    Timer cold_timer;
    auto cold_drg = BuildDrgByDiscovery(snap->lake, options.match);
    cold_drg.status().Abort("cold rebuild");
    cold_seconds += cold_timer.ElapsedSeconds();
    if (snap->drg.OrderedFingerprint() != cold_drg->OrderedFingerprint()) {
      std::fprintf(stderr,
                   "FAIL: DRG diverged from the cold rebuild after mutation "
                   "%zu (%s)\n",
                   i, serve::MutationSummary(mutation).c_str());
      ++failures;
    }
  }
  const double speedup =
      incremental_seconds > 0 ? cold_seconds / incremental_seconds : 0.0;
  std::printf(
      "  %zu mutations: incremental %.3fs total, cold rebuilds %.3fs total "
      "(%.1fx)\n",
      kMutations, incremental_seconds, cold_seconds, speedup);
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: incremental maintenance only %.1fx faster than cold "
                 "rebuilds (gate: 5x)\n",
                 speedup);
    ++failures;
  }

  // Query equivalence at the final state: the mutated service vs a service
  // built cold over the same lake.
  {
    auto cold_service =
        serve::LakeService::Create(service->snapshot()->lake, options);
    cold_service.status().Abort("cold service");
    if (QueryFingerprint(service.get()) !=
        QueryFingerprint(cold_service->get())) {
      std::fprintf(stderr,
                   "FAIL: Discover output diverged between the mutated "
                   "service and a cold service\n");
      ++failures;
    }
  }

  std::vector<BenchTiming> timings;
  timings.push_back({"service_create", 1, create_seconds});
  timings.push_back({"mutation_incremental_total", 1, incremental_seconds});
  timings.push_back({"mutation_cold_rebuild_total", 1, cold_seconds});

  // ---- YCSB-style workloads (fresh unexported service; 4 readers + 1
  // mutator; latencies land in the timings under the CI noise floor) ------
  struct Workload {
    const char* label;
    size_t queries;
    size_t mutations;
  };
  const size_t ops = FullMode() ? 400 : 48;
  const Workload workloads[] = {
      {"ycsb_a", ops / 2, ops / 2},              // 50/50 update-heavy
      {"ycsb_b", ops - ops / 20, ops / 20},      // 95/5 read-heavy
      {"ycsb_c", ops, 0},                        // read-only
  };
  for (const Workload& w : workloads) {
    auto fresh = serve::LakeService::Create(service->snapshot()->lake, options);
    fresh.status().Abort("workload service");
    // Per-workload latency sinks, registered in the exported registry so
    // bench_diff gates their p50/p99 from the embedded obs report.
    obs::QuantileHistogram* query_latency = metrics.GetQuantile(
        std::string(w.label) + ".query_latency_ns");
    obs::QuantileHistogram* mutation_latency = metrics.GetQuantile(
        std::string(w.label) + ".mutation_latency_ns");
    const double wall_seconds =
        RunWorkload(fresh->get(), w.queries, w.mutations, /*readers=*/4,
                    query_latency, mutation_latency);
    const double throughput =
        wall_seconds > 0
            ? static_cast<double>(w.queries + w.mutations) / wall_seconds
            : 0.0;
    auto quantile_seconds = [&](const obs::QuantileHistogram& h, double q) {
      return static_cast<double>(h.ValueAtQuantile(q)) / 1e9;
    };
    std::printf(
        "  %s: %zu queries + %zu mutations in %.3fs (%.0f ops/s), query "
        "p50 %.1fms p99 %.1fms\n",
        w.label, w.queries, w.mutations, wall_seconds, throughput,
        quantile_seconds(*query_latency, 0.50) * 1e3,
        quantile_seconds(*query_latency, 0.99) * 1e3);
    timings.push_back({std::string(w.label) + "_wall", 4, wall_seconds});
    timings.push_back({std::string(w.label) + "_query_p50", 4,
                       quantile_seconds(*query_latency, 0.50)});
    timings.push_back({std::string(w.label) + "_query_p99", 4,
                       quantile_seconds(*query_latency, 0.99)});
    if (w.mutations > 0) {
      timings.push_back({std::string(w.label) + "_mutation_p50", 1,
                         quantile_seconds(*mutation_latency, 0.50)});
      timings.push_back({std::string(w.label) + "_mutation_p99", 1,
                         quantile_seconds(*mutation_latency, 0.99)});
    }
  }

  WriteBenchJson("serving", timings, &metrics);
  WriteBenchTrace("serving", tracer);
  WriteBenchEvents("serving", events);
  if (failures > 0) {
    std::fprintf(stderr, "serving: %d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("serving: all gates passed\n");
  return 0;
}

}  // namespace
}  // namespace autofeat::benchx

int main() { return autofeat::benchx::Main(); }
