// Ablation of the traversal-control design choices (DESIGN.md §4.12):
// node-set deduplication and the novelty-first beam. Measures explored
// paths, feature-selection time and accuracy on a data-lake (discovered
// multigraph) configuration, where pure BFS explodes.

#include <cstdio>

#include "core/autofeat.h"
#include "harness.h"

int main() {
  using namespace autofeat;
  using namespace autofeat::benchx;

  PrintModeBanner("Ablation: traversal control (beam + dedup)");

  struct Variant {
    const char* name;
    size_t beam;
    bool dedup;
  };
  const Variant variants[] = {
      {"pure BFS", 0, false},
      {"dedup only", 0, true},
      {"beam only", 8, false},
      {"beam+dedup", 8, true},
  };

  std::vector<std::string> names = FullMode()
      ? std::vector<std::string>{"covertype", "steel", "school"}
      : std::vector<std::string>{"covertype", "steel"};

  std::printf("\n%-12s %-12s %10s %10s %8s %8s\n", "dataset", "variant",
              "explored", "fs_time_s", "acc", "#joined");
  PrintRule(66);
  for (const auto& name : names) {
    auto spec = ScaledSpec(*datagen::FindDataset(name));
    datagen::BuiltLake built = datagen::BuildPaperLake(spec, 42);
    auto drg = BuildSettingDrg(built, Setting::kDataLake);
    drg.status().Abort();

    for (const Variant& variant : variants) {
      AutoFeatConfig config;
      config.sample_rows = 1000;
      config.max_paths = FullMode() ? 2000 : 800;
      config.beam_width = variant.beam;
      config.dedup_node_sets = variant.dedup;
      AutoFeat engine(&built.lake, &*drg, config);
      auto result = engine.Augment(built.base_table, built.label_column,
                                   ml::ModelKind::kLightGbm);
      result.status().Abort(variant.name);
      std::printf("%-12s %-12s %10zu %10.3f %8.3f %8zu\n", spec.name.c_str(),
                  variant.name, result->discovery.paths_explored,
                  result->discovery.feature_selection_seconds,
                  result->accuracy, result->best_path.tables_joined());
    }
    std::printf("\n");
  }
  std::printf("expected: pure BFS exhausts the path cap on shallow "
              "combinations and may miss deep signal; beam+dedup reaches "
              "the transitive features with far fewer explored paths.\n");
  return 0;
}
