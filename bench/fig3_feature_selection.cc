// Figure 3: empirical comparison of feature-selection strategies (§V).
//   (a) relevance metrics: IG, SU, Pearson, Spearman, Relief.
//   (b) redundancy criteria: MIFS, MRMR, CIFE, JMI, CMIM.
//
// Six synthetic binary-classification datasets varying in size, dimension,
// missing data and label noise (stand-ins for the OpenML/Kaggle/UCI mix of
// §V-B). Each metric selects features; a LightGBM-like model evaluates the
// selection; we report aggregated accuracy and selection runtime.

#include <cstdio>

#include "datagen/generator.h"
#include "fs/redundancy.h"
#include "fs/relevance.h"
#include "harness.h"
#include "ml/metrics.h"
#include "stats/information.h"
#include "util/timer.h"

namespace {

using namespace autofeat;
using namespace autofeat::benchx;

std::vector<Table> MakeStudyDatasets() {
  using datagen::GeneratorOptions;
  auto make = [](size_t rows, size_t inf, size_t red, size_t noise,
                 double missing, double label_noise, uint64_t seed,
                 const char* name) {
    GeneratorOptions o;
    o.rows = rows;
    o.informative_features = inf;
    o.redundant_features = red;
    o.noise_features = noise;
    o.missing_rate = missing;
    o.label_noise = label_noise;
    o.seed = seed;
    return datagen::GenerateClassification(o, name);
  };
  size_t scale = FullMode() ? 2 : 1;
  return {
      make(1000 * scale, 5, 3, 12, 0.00, 0.05, 1, "d1_mid"),
      make(4000 * scale, 8, 4, 12, 0.00, 0.05, 2, "d2_large"),
      make(800 * scale, 10, 10, 40, 0.00, 0.05, 3, "d3_highdim"),
      make(3000 * scale, 3, 2, 5, 0.00, 0.05, 4, "d4_narrow"),
      make(1500 * scale, 6, 6, 20, 0.10, 0.05, 5, "d5_missing"),
      make(2500 * scale, 4, 0, 30, 0.00, 0.15, 6, "d6_noisy"),
  };
}

double EvaluateSelection(const Table& table,
                         const std::vector<std::string>& features) {
  std::vector<std::string> keep = features;
  keep.push_back("label");
  auto selected = table.SelectColumns(keep);
  selected.status().Abort("selecting features");
  auto eval = ml::TrainAndEvaluate(*selected, "label",
                                   ml::ModelKind::kLightGbm);
  eval.status().Abort("evaluating selection");
  return eval->accuracy;
}

}  // namespace

int main() {
  PrintModeBanner("Figure 3: relevance and redundancy strategy comparison");
  std::vector<Table> datasets = MakeStudyDatasets();

  // ---- (a) relevance metrics ------------------------------------------------
  std::printf("\n(a) relevance metrics (top-kappa selection, LightGBM-like "
              "evaluation):\n");
  std::printf("%-10s %10s %14s\n", "metric", "avg_acc", "select_time_s");
  PrintRule(38);
  for (RelevanceKind kind :
       {RelevanceKind::kInformationGain, RelevanceKind::kSymmetricalUncertainty,
        RelevanceKind::kPearson, RelevanceKind::kSpearman,
        RelevanceKind::kRelief}) {
    double acc_sum = 0;
    double time_sum = 0;
    for (const Table& table : datasets) {
      auto view = FeatureView::FromTable(table, "label");
      view.status().Abort();
      RelevanceOptions options;
      options.kind = kind;
      options.top_k = std::max<size_t>(5, view->num_features() / 3);
      options.relief_samples = 128;
      Timer timer;
      auto scores = ScoreRelevance(*view, {}, options);
      auto kept = SelectKBest(std::move(scores), options.top_k, 1e-9);
      time_sum += timer.ElapsedSeconds();
      std::vector<std::string> names;
      for (const auto& fs : kept) names.push_back(fs.name);
      if (names.empty()) names.push_back(view->name(0));
      acc_sum += EvaluateSelection(table, names);
    }
    std::printf("%-10s %10.3f %14.3f\n", RelevanceKindName(kind),
                acc_sum / datasets.size(), time_sum);
  }
  std::printf("expected: Pearson/Spearman ~3x faster than IG/SU; Relief "
              "fast but less effective; Spearman best overall.\n");

  // ---- (b) redundancy criteria ----------------------------------------------
  std::printf("\n(b) redundancy criteria (greedy J > 0 selection over "
              "MI-ranked candidates):\n");
  std::printf("%-10s %10s %14s\n", "method", "avg_acc", "select_time_s");
  PrintRule(38);
  for (RedundancyKind kind :
       {RedundancyKind::kMifs, RedundancyKind::kMrmr, RedundancyKind::kCife,
        RedundancyKind::kJmi, RedundancyKind::kCmim}) {
    double acc_sum = 0;
    double time_sum = 0;
    for (const Table& table : datasets) {
      auto view = FeatureView::FromTable(table, "label");
      view.status().Abort();
      Timer timer;
      // Rank candidates by marginal MI, then screen greedily.
      RelevanceOptions rank;
      rank.kind = RelevanceKind::kInformationGain;
      rank.top_k = view->num_features();
      auto ranked = SelectKBest(ScoreRelevance(*view, {}, rank),
                                view->num_features(), 1e-9);
      std::vector<size_t> candidates;
      for (const auto& fs : ranked) {
        candidates.push_back(*view->FeatureIndex(fs.name));
      }
      SelectedFeatureSet selected;
      RedundancyOptions options;
      options.kind = kind;
      auto accepted = SelectNonRedundant(*view, candidates, &selected,
                                         options);
      time_sum += timer.ElapsedSeconds();
      std::vector<std::string> names;
      for (const auto& fs : accepted) names.push_back(fs.name);
      if (names.empty()) names.push_back(view->name(0));
      acc_sum += EvaluateSelection(table, names);
    }
    std::printf("%-10s %10.3f %14.3f\n", RedundancyKindName(kind),
                acc_sum / datasets.size(), time_sum);
  }
  std::printf("expected: MIFS/MRMR ~3x faster than CIFE/JMI/CMIM (no "
              "conditional-MI estimation); MRMR the balanced choice.\n");
  return 0;
}
