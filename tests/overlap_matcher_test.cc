#include "discovery/overlap_matcher.h"

#include <gtest/gtest.h>

#include "datagen/lake_builder.h"

namespace autofeat {
namespace {

std::vector<int64_t> Range(int64_t start, int64_t n) {
  std::vector<int64_t> v;
  for (int64_t i = 0; i < n; ++i) v.push_back(start + i);
  return v;
}

TEST(ValueJaccardTest, IdenticalSetsIsOne) {
  Column a = Column::Int64s(Range(0, 30));
  Column b = Column::Int64s(Range(0, 30));
  EXPECT_DOUBLE_EQ(ValueJaccard(a, b, 4096), 1.0);
}

TEST(ValueJaccardTest, DisjointIsZero) {
  Column a = Column::Int64s(Range(0, 30));
  Column b = Column::Int64s(Range(100, 30));
  EXPECT_DOUBLE_EQ(ValueJaccard(a, b, 4096), 0.0);
}

TEST(ValueJaccardTest, HalfOverlap) {
  Column a = Column::Int64s(Range(0, 20));
  Column b = Column::Int64s(Range(10, 20));
  // |inter| = 10, |union| = 30.
  EXPECT_NEAR(ValueJaccard(a, b, 4096), 10.0 / 30.0, 1e-12);
}

TEST(MatchByValueOverlapTest, NamesAreIgnored) {
  Table a("a");
  a.AddColumn("totally_unrelated_name", Column::Int64s(Range(0, 40)))
      .Abort();
  Table b("b");
  b.AddColumn("other_name", Column::Int64s(Range(0, 40))).Abort();
  auto matches = MatchByValueOverlap(a, b);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_GE(matches[0].score, 0.99);
}

TEST(MatchByValueOverlapTest, ContainmentFindsFkIntoPk) {
  Table fk("fk");
  fk.AddColumn("ref", Column::Int64s(Range(0, 20))).Abort();
  Table pk("pk");
  pk.AddColumn("id", Column::Int64s(Range(0, 200))).Abort();
  // Jaccard is small (0.1) but containment is 1.0; the blended default
  // (0.3 * J + 0.7 * C) crosses the threshold.
  auto matches = MatchByValueOverlap(fk, pk);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_GT(matches[0].score, 0.7);
}

TEST(MatchByValueOverlapTest, ContinuousAndTinyColumnsSkipped) {
  Table a("a");
  a.AddColumn("measure", Column::Doubles({1.5, 2.5, 3.5})).Abort();
  a.AddColumn("flag", Column::Int64s({0, 1, 0})).Abort();  // < min_distinct.
  Table b("b");
  b.AddColumn("key", Column::Int64s(Range(0, 40))).Abort();
  EXPECT_TRUE(MatchByValueOverlap(a, b).empty());
}

TEST(BuildDrgWithMatcherTest, PluggableMatcherDrivesConstruction) {
  datagen::LakeSpec spec;
  spec.name = "plug";
  spec.rows = 400;
  spec.joinable_tables = 4;
  spec.seed = 9;
  auto built = datagen::BuildLake(spec);

  auto jaccard_drg = BuildDrgWithMatcher(
      built.lake, [](const Table& l, const Table& r) {
        return MatchByValueOverlap(l, r);
      });
  ASSERT_TRUE(jaccard_drg.ok());
  EXPECT_EQ(jaccard_drg->num_nodes(), built.lake.num_tables());
  EXPECT_GT(jaccard_drg->num_edges(), 0u);

  // A matcher that reports nothing yields an edgeless graph.
  auto empty_drg = BuildDrgWithMatcher(
      built.lake,
      [](const Table&, const Table&) { return std::vector<ColumnMatch>{}; });
  ASSERT_TRUE(empty_drg.ok());
  EXPECT_EQ(empty_drg->num_edges(), 0u);
}

TEST(BuildDrgWithMatcherTest, InstanceMatcherFindsTrueLinks) {
  datagen::LakeSpec spec;
  spec.name = "inst";
  spec.rows = 500;
  spec.joinable_tables = 4;
  spec.seed = 10;
  auto built = datagen::BuildLake(spec);
  auto drg = BuildDrgWithMatcher(
      built.lake, [](const Table& l, const Table& r) {
        return MatchByValueOverlap(l, r);
      });
  ASSERT_TRUE(drg.ok());
  // Every true KFK link must be rediscovered (full value containment).
  for (const auto& kfk : built.lake.kfk_constraints()) {
    size_t a = *drg->NodeId(kfk.from_table);
    size_t b = *drg->NodeId(kfk.to_table);
    bool found = false;
    for (const auto& e : drg->EdgesBetween(a, b)) {
      if (e.from_column == kfk.from_column &&
          e.to_column == kfk.to_column) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << kfk.from_table << "." << kfk.from_column << " -> "
                       << kfk.to_table << "." << kfk.to_column;
  }
}

}  // namespace
}  // namespace autofeat
