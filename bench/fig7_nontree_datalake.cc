// Figure 7: data-lake setting, non-tree models (KNN and L1 logistic
// regression) over the discovered multigraph DRG.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace autofeat;
  using namespace autofeat::benchx;

  PrintModeBanner("Figure 7: data-lake setting, KNN + L1 logistic regression");
  std::printf("\n%-12s %-12s %8s %8s %8s\n", "dataset", "method", "KNN",
              "LogRegL1", "#joined");
  PrintRule(56);

  for (const auto& raw : datagen::PaperDatasets()) {
    datagen::DatasetSpec spec = ScaledSpec(raw);
    datagen::BuiltLake built = datagen::BuildPaperLake(spec, 42);
    auto drg = BuildSettingDrg(built, Setting::kDataLake);
    drg.status().Abort("schema matching");

    auto methods = MakeMethods(/*include_join_all=*/false);
    for (auto& method : methods) {
      auto result = method->Augment(built.lake, *drg, built.base_table,
                                    built.label_column);
      result.status().Abort(method->name().c_str());
      auto knn = ml::TrainAndEvaluate(result->augmented, built.label_column,
                                      ml::ModelKind::kKnn);
      auto lr = ml::TrainAndEvaluate(result->augmented, built.label_column,
                                     ml::ModelKind::kLogRegL1);
      knn.status().Abort("KNN");
      lr.status().Abort("LogRegL1");
      std::printf("%-12s %-12s %8.3f %8.3f %8zu\n", spec.name.c_str(),
                  method->name().c_str(), knn->accuracy, lr->accuracy,
                  result->tables_joined);
    }
    std::printf("%-12s best reference accuracy: %.3f\n\n", spec.name.c_str(),
                spec.reference_accuracy);
  }
  return 0;
}
