#include "fs/streaming.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace autofeat {
namespace {

// Base table with weak features; a "batch" table adding strong, duplicate
// and noise features, mimicking one join step.
struct Fixture {
  Table base{"base"};
  Table joined{"joined"};

  explicit Fixture(size_t n = 800, uint64_t seed = 3) {
    Rng rng(seed);
    Column weak(DataType::kDouble), label(DataType::kInt64);
    Column strong(DataType::kDouble), duplicate(DataType::kDouble),
        noise(DataType::kDouble);
    std::vector<double> strong_values;
    for (size_t i = 0; i < n; ++i) {
      int y = static_cast<int>(i % 2);
      weak.AppendDouble(y == 1 ? rng.Normal(0.2, 1) : rng.Normal(-0.2, 1));
      double s = y == 1 ? rng.Normal(1.5, 1) : rng.Normal(-1.5, 1);
      strong.AppendDouble(s);
      duplicate.AppendDouble(s + rng.Normal(0, 0.01));
      noise.AppendDouble(rng.Normal(0, 1));
      label.AppendInt64(y);
    }
    base.AddColumn("weak", std::move(weak)).Abort();
    base.AddColumn("label", std::move(label)).Abort();

    joined = base;
    joined.AddColumn("strong", std::move(strong)).Abort();
    joined.AddColumn("duplicate", std::move(duplicate)).Abort();
    joined.AddColumn("noise", std::move(noise)).Abort();
  }
};

StreamingFeatureSelector::Options DefaultOptions() {
  StreamingFeatureSelector::Options o;
  o.relevance.kind = RelevanceKind::kSpearman;
  o.relevance.top_k = 10;
  o.redundancy.kind = RedundancyKind::kMrmr;
  return o;
}

TEST(StreamingTest, SeedingAddsAllBaseFeatures) {
  Fixture fix;
  StreamingFeatureSelector sel(DefaultOptions());
  auto view = FeatureView::FromTable(fix.base, "label");
  sel.SeedWithBaseFeatures(*view);
  EXPECT_EQ(sel.selected().size(), 1u);
  EXPECT_TRUE(sel.selected().Contains("weak"));
}

TEST(StreamingTest, BatchSelectsStrongRejectsDuplicateAndNoise) {
  Fixture fix;
  StreamingFeatureSelector sel(DefaultOptions());
  auto base_view = FeatureView::FromTable(fix.base, "label");
  sel.SeedWithBaseFeatures(*base_view);

  auto batch_view = FeatureView::FromTable(
      fix.joined, "label", {"strong", "duplicate", "noise"});
  auto result = sel.ProcessBatch(*batch_view, {0, 1, 2});

  // `strong` and `duplicate` are near-identical: whichever ranks first is
  // accepted and must shut the other out (that is the redundancy
  // invariant); noise must never carry a meaningful score.
  ASSERT_FALSE(result.selected.empty());
  bool has_strong = sel.selected().Contains("strong");
  bool has_duplicate = sel.selected().Contains("duplicate");
  EXPECT_NE(has_strong, has_duplicate)
      << "exactly one of the near-duplicates may be selected";
  for (const auto& fs : result.selected) {
    if (fs.name == "noise") {
      EXPECT_LT(fs.score, 0.01);
    }
  }
}

TEST(StreamingTest, AllIrrelevantBatch) {
  Fixture fix;
  StreamingFeatureSelector sel(DefaultOptions());
  // Constant column: no relevance at all.
  Table t = fix.base;
  t.AddColumn("constant", Column::Doubles(std::vector<double>(
                              fix.base.num_rows(), 1.0)))
      .Abort();
  auto view = FeatureView::FromTable(t, "label", {"constant"});
  auto result = sel.ProcessBatch(*view, {0});
  EXPECT_TRUE(result.AllIrrelevant());
  EXPECT_FALSE(result.AllRedundant());
}

TEST(StreamingTest, AllRedundantBatch) {
  Fixture fix;
  StreamingFeatureSelector sel(DefaultOptions());
  auto base_view = FeatureView::FromTable(fix.joined, "label",
                                          {"strong"});
  sel.SeedWithBaseFeatures(*base_view);
  auto dup_view =
      FeatureView::FromTable(fix.joined, "label", {"duplicate"});
  auto result = sel.ProcessBatch(*dup_view, {0});
  EXPECT_FALSE(result.AllIrrelevant());
  EXPECT_TRUE(result.AllRedundant());
}

TEST(StreamingTest, TopKappaLimitsBatchSize) {
  Fixture fix;
  auto options = DefaultOptions();
  options.relevance.top_k = 1;
  StreamingFeatureSelector sel(options);
  auto view = FeatureView::FromTable(fix.joined, "label",
                                     {"strong", "duplicate", "noise"});
  auto result = sel.ProcessBatch(*view, {0, 1, 2});
  ASSERT_EQ(result.relevant.size(), 1u);
  // The near-duplicates tie; either may win the single kappa slot.
  EXPECT_TRUE(result.relevant[0].name == "strong" ||
              result.relevant[0].name == "duplicate")
      << result.relevant[0].name;
}

TEST(StreamingTest, RelevanceDisabledPassesAllThrough) {
  Fixture fix;
  auto options = DefaultOptions();
  options.use_relevance = false;
  StreamingFeatureSelector sel(options);
  auto view = FeatureView::FromTable(fix.joined, "label",
                                     {"strong", "duplicate", "noise"});
  auto result = sel.ProcessBatch(*view, {0, 1, 2});
  EXPECT_EQ(result.relevant.size(), 3u);
  // Redundancy still screens: noise carries (near) zero J even if the
  // estimator noise lets it sneak in.
  for (const auto& fs : result.selected) {
    if (fs.name == "noise") {
      EXPECT_LT(fs.score, 0.01);
    }
  }
}

TEST(StreamingTest, RedundancyDisabledAcceptsAllRelevant) {
  Fixture fix;
  auto options = DefaultOptions();
  options.use_redundancy = false;
  StreamingFeatureSelector sel(options);
  auto view = FeatureView::FromTable(fix.joined, "label",
                                     {"strong", "duplicate"});
  auto result = sel.ProcessBatch(*view, {0, 1});
  // Both correlate with the label; without redundancy both are kept.
  EXPECT_EQ(result.selected.size(), 2u);
  EXPECT_TRUE(sel.selected().Contains("duplicate"));
}

TEST(StreamingTest, RepeatedBatchAddsNothing) {
  Fixture fix;
  StreamingFeatureSelector sel(DefaultOptions());
  auto view = FeatureView::FromTable(fix.joined, "label", {"strong"});
  auto first = sel.ProcessBatch(*view, {0});
  EXPECT_EQ(first.selected.size(), 1u);
  auto second = sel.ProcessBatch(*view, {0});
  EXPECT_TRUE(second.selected.empty());
  EXPECT_EQ(sel.selected().size(), 1u);
}

}  // namespace
}  // namespace autofeat
