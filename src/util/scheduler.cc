#include "util/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_utils.h"
#include "util/work_stealing_deque.h"

namespace autofeat {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kForkJoin:
      return "forkjoin";
    case SchedulerKind::kMorsel:
      return "morsel";
  }
  return "unknown";
}

bool ParseSchedulerKind(const std::string& text, SchedulerKind* out) {
  Result<SchedulerKind> parsed = ParseScheduler(text);
  if (!parsed.ok()) return false;
  *out = *parsed;
  return true;
}

Result<SchedulerKind> ParseScheduler(const std::string& text) {
  const std::string lower = ToLower(Trim(text));
  if (lower == "forkjoin") return SchedulerKind::kForkJoin;
  if (lower == "morsel") return SchedulerKind::kMorsel;
  return Status::InvalidArgument("unknown scheduler: \"" + text +
                                 "\" (valid values: forkjoin, morsel)");
}

namespace {

// Shared state of one MorselParallelFor invocation. The deques are filled
// by the caller before any helper is submitted and never pushed to again, so
// every morsel leaves exactly one deque exactly once — either popped by its
// owner lane or stolen — and the latch counts it when its body finished.
struct MorselState {
  size_t begin = 0;
  size_t morsel_size = 1;
  size_t end = 0;
  const std::function<void(size_t)>* fn = nullptr;

  std::vector<WorkStealingDeque> deques;
  size_t num_morsels = 0;

  std::mutex mutex;
  std::condition_variable done_cv;
  size_t morsels_finished = 0;

  // First exception by morsel index, so the propagated error does not depend
  // on which lane ran the morsel or when.
  std::exception_ptr error;
  size_t error_morsel = 0;

  // Runs one morsel's iteration block and updates the completion latch.
  void RunMorsel(size_t morsel) {
    size_t lo = begin + morsel * morsel_size;
    size_t hi = std::min(end, lo + morsel_size);
    std::exception_ptr caught;
    try {
      for (size_t i = lo; i < hi; ++i) (*fn)(i);
    } catch (...) {
      caught = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (caught && (!error || morsel < error_morsel)) {
      error = caught;
      error_morsel = morsel;
    }
    if (++morsels_finished == num_morsels) done_cv.notify_all();
  }

  // One lane's whole schedule: drain the own deque bottom-up (ascending
  // morsel index — the pre-fill pushes in reverse), then sweep the other
  // lanes as a thief until a full round of attempts claims nothing.
  //
  // The sweep may end while some deque still holds work (a lost steal race
  // advances past the victim), but never strands it: each deque's owner
  // drains its own deque to empty before turning thief, and the caller's
  // completion wait is on the morsel latch, not on lane exits. Returns
  // (morsels executed, morsels stolen) for the scheduler counters.
  std::pair<size_t, size_t> RunLane(size_t lane) {
    size_t executed = 0;
    size_t stolen = 0;
    size_t morsel = 0;
    while (deques[lane].PopBottom(&morsel)) {
      RunMorsel(morsel);
      ++executed;
    }
    const size_t lanes = deques.size();
    size_t offset = 1;
    while (offset < lanes) {
      size_t victim = (lane + offset) % lanes;
      if (deques[victim].StealTop(&morsel)) {
        RunMorsel(morsel);
        ++executed;
        ++stolen;
        // Keep milking this victim; a failed steal moves the sweep on.
        continue;
      }
      ++offset;
    }
    return {executed, stolen};
  }
};

}  // namespace

void MorselParallelFor(ThreadPool* pool, size_t begin, size_t end,
                       size_t morsel_size,
                       const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  size_t range = end - begin;
  if (morsel_size == 0) morsel_size = 1;
  if (pool == nullptr || pool->num_threads() <= 1 || range <= morsel_size) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  MorselState state;
  state.begin = begin;
  state.morsel_size = morsel_size;
  state.end = end;
  state.fn = &fn;
  state.num_morsels = (range + morsel_size - 1) / morsel_size;

  // One lane per pool worker plus the participating caller, capped at one
  // morsel per lane. Pre-fill happens before any helper exists, so the
  // deques see their owner as the only pusher ever.
  size_t lanes = std::min(pool->num_threads() + 1, state.num_morsels);
  state.deques.reserve(lanes);
  size_t per_lane = state.num_morsels / lanes;
  size_t remainder = state.num_morsels % lanes;
  size_t next = 0;
  for (size_t lane = 0; lane < lanes; ++lane) {
    size_t count = per_lane + (lane < remainder ? 1 : 0);
    state.deques.emplace_back(count);
    // Pushed in reverse so the owner's LIFO pops walk the block in
    // ascending index order (contiguous input access), while thieves bite
    // off the block's tail.
    for (size_t k = count; k > 0; --k) {
      bool pushed = state.deques[lane].PushBottom(next + k - 1);
      assert(pushed);
      (void)pushed;
    }
    next += count;
  }
  assert(next == state.num_morsels);

  obs::MetricsRegistry* metrics = pool->metrics();
  obs::Counter* calls = obs::GetCounter(metrics, "thread_pool.morsel.calls",
                                        /*deterministic=*/false);
  obs::Counter* executed = obs::GetCounter(
      metrics, "thread_pool.morsel.executed", /*deterministic=*/false);
  obs::Counter* steals = obs::GetCounter(metrics, "thread_pool.morsel.steals",
                                         /*deterministic=*/false);
  obs::Increment(calls);

  size_t helpers = lanes - 1;
  std::atomic<size_t> helpers_live{helpers};
  std::mutex helper_mutex;
  std::condition_variable helper_cv;
  obs::Tracer* tracer = pool->tracer();
  for (size_t t = 0; t < helpers; ++t) {
    // Captured on the caller thread: the enqueuing span parents the helper
    // span and the flow id draws the Submit -> execute arrow in the trace.
    obs::TaskContext ctx = obs::CaptureTaskContext(tracer);
    size_t lane = t + 1;
    pool->Submit([&, ctx, lane] {
      obs::ScopedWorkerSpan span(ctx, "thread_pool.worker");
      auto [ran, stole] = state.RunLane(lane);
      obs::Increment(executed, ran);
      obs::Increment(steals, stole);
      if (helpers_live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(helper_mutex);
        helper_cv.notify_all();
      }
    });
  }
  auto [ran, stole] = state.RunLane(0);
  obs::Increment(executed, ran);
  obs::Increment(steals, stole);
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(
        lock, [&] { return state.morsels_finished == state.num_morsels; });
  }
  // All morsels are done, but helper lambdas may still be on their final
  // instructions; don't let `state` leave scope under them.
  {
    std::unique_lock<std::mutex> lock(helper_mutex);
    helper_cv.wait(lock, [&] {
      return helpers_live.load(std::memory_order_acquire) == 0;
    });
  }
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace autofeat
