#include "core/report.h"

#include <cstdarg>
#include <cstdio>

#include "graph/path_format.h"
#include "util/string_utils.h"

namespace autofeat {

namespace {

void AppendLine(std::string* out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  *out += buffer;
  *out += '\n';
}

}  // namespace

std::string FormatDiscoveryReport(const DiscoveryResult& result,
                                  const DatasetRelationGraph& drg,
                                  size_t max_paths) {
  std::string out;
  AppendLine(&out,
             "discovery: %zu paths explored (%zu infeasible, %zu failed "
             "completeness), %zu ranked",
             result.paths_explored, result.paths_pruned_infeasible,
             result.paths_pruned_quality, result.ranked.size());
  AppendLine(&out, "timing: feature selection %.3fs of %.3fs total",
             result.feature_selection_seconds, result.total_seconds);
  size_t shown = std::min(max_paths, result.ranked.size());
  for (size_t i = 0; i < shown; ++i) {
    const RankedPath& rp = result.ranked[i];
    AppendLine(&out, "#%zu score=%.4f  %s", i + 1, rp.score,
               FormatJoinPath(drg, rp.path).c_str());
    std::string features;
    for (const auto& fs : rp.selected_features) {
      if (!features.empty()) features += ", ";
      features += fs.name + " (" + FormatDouble(fs.score, 3) + ")";
    }
    AppendLine(&out, "    features: %s",
               features.empty() ? "<none>" : features.c_str());
  }
  if (result.ranked.size() > shown) {
    AppendLine(&out, "... and %zu more ranked paths",
               result.ranked.size() - shown);
  }
  return out;
}

std::string FormatAugmentationReport(const AugmentationResult& result,
                                     const DatasetRelationGraph& drg) {
  std::string out;
  AppendLine(&out, "augmentation accuracy: %.3f (total %.3fs)",
             result.accuracy, result.total_seconds);
  AppendLine(&out, "best path: %s",
             FormatJoinPath(drg, result.best_path.path).c_str());
  for (const auto& fs : result.best_path.selected_features) {
    AppendLine(&out, "  + %-28s %.4f", fs.name.c_str(), fs.score);
  }
  out += FormatDiscoveryReport(result.discovery, drg, /*max_paths=*/3);
  return out;
}

}  // namespace autofeat
