// The paper's running example (Figure 2): a bank-loan base table
// `applicants` with a `loan_approval` label, surrounded by candidate
// tables — `personal_information`, `credit_profile`, `property_value` and
// `loan_history`. The relevant features live in `property_value`, which is
// only reachable *transitively* through `credit_profile`; a spurious
// discovered connection (applicant_id ~ credit_score) also exists.
//
// AutoFeat must rank the transitive path
//   applicants -> credit_profile -> property_value
// highest and augment the base table with the property features.

#include <cstdio>

#include "core/autofeat.h"
#include "discovery/data_lake.h"
#include "ml/trainer.h"
#include "util/rng.h"

using namespace autofeat;

namespace {

constexpr size_t kApplicants = 1500;

// Ground truth: approval depends on income (weakly) and on the applicant's
// property value and prior defaults (strongly) — data that lives two hops
// away from the base table.
struct World {
  std::vector<int> approved;
  std::vector<double> income;
  std::vector<double> property_value;
  std::vector<int64_t> defaults;
  std::vector<int64_t> credit_id;  // applicant -> credit profile id

  explicit World(uint64_t seed) {
    Rng rng(seed);
    approved.resize(kApplicants);
    income.resize(kApplicants);
    property_value.resize(kApplicants);
    defaults.resize(kApplicants);
    credit_id.resize(kApplicants);
    for (size_t i = 0; i < kApplicants; ++i) {
      income[i] = rng.Normal(60, 15);
      property_value[i] = rng.Normal(300, 80);
      defaults[i] = rng.Bernoulli(0.2) ? rng.UniformInt(1, 4) : 0;
      credit_id[i] = 100000 + static_cast<int64_t>(i);
      double score = 0.01 * (income[i] - 60) + 0.012 * (property_value[i] - 300) -
                     0.8 * static_cast<double>(defaults[i]) + rng.Normal(0, 0.8);
      approved[i] = score > 0 ? 1 : 0;
    }
  }
};

}  // namespace

int main() {
  World world(7);
  Rng rng(8);
  DataLake lake;

  // -- applicants: the base table (id, age, income, label) -------------------
  {
    Table t("applicants");
    Column id(DataType::kInt64), age(DataType::kDouble),
        income(DataType::kDouble), label(DataType::kInt64);
    for (size_t i = 0; i < kApplicants; ++i) {
      id.AppendInt64(static_cast<int64_t>(i));
      age.AppendDouble(rng.Normal(40, 12));
      income.AppendDouble(world.income[i]);
      label.AppendInt64(world.approved[i]);
    }
    t.AddColumn("applicant_id", std::move(id)).Abort();
    t.AddColumn("age", std::move(age)).Abort();
    t.AddColumn("income", std::move(income)).Abort();
    t.AddColumn("loan_approval", std::move(label)).Abort();
    lake.AddTable(std::move(t)).Abort();
  }

  // -- personal_information: direct neighbour, irrelevant features -----------
  {
    Table t("personal_information");
    Column id(DataType::kInt64), phone(DataType::kInt64),
        height(DataType::kDouble);
    for (size_t i = 0; i < kApplicants; ++i) {
      id.AppendInt64(static_cast<int64_t>(i));
      phone.AppendInt64(600000000 + rng.UniformInt(0, 99999999));
      height.AppendDouble(rng.Normal(172, 9));
    }
    t.AddColumn("applicant_id", std::move(id)).Abort();
    t.AddColumn("phone", std::move(phone)).Abort();
    t.AddColumn("height_cm", std::move(height)).Abort();
    lake.AddTable(std::move(t)).Abort();
  }

  // -- credit_profile: direct neighbour; mostly a bridge to deeper data ------
  {
    Table t("credit_profile");
    Column id(DataType::kInt64), score(DataType::kInt64),
        property_ref(DataType::kInt64);
    for (size_t i = 0; i < kApplicants; ++i) {
      id.AppendInt64(static_cast<int64_t>(i));
      score.AppendInt64(world.credit_id[i]);
      property_ref.AppendInt64(static_cast<int64_t>(i) + 5000);
    }
    t.AddColumn("applicant_id", std::move(id)).Abort();
    t.AddColumn("credit_score", std::move(score)).Abort();
    t.AddColumn("property_ref", std::move(property_ref)).Abort();
    lake.AddTable(std::move(t)).Abort();
  }

  // -- property_value: transitive table with the predictive features ---------
  {
    Table t("property_value");
    Column ref(DataType::kInt64), value(DataType::kDouble),
        tax(DataType::kDouble);
    for (size_t i = 0; i < kApplicants; ++i) {
      ref.AppendInt64(static_cast<int64_t>(i) + 5000);
      value.AppendDouble(world.property_value[i]);
      tax.AppendDouble(world.property_value[i] * 0.011 + rng.Normal(0, 0.4));
    }
    t.AddColumn("property_ref", std::move(ref)).Abort();
    t.AddColumn("market_value", std::move(value)).Abort();
    t.AddColumn("yearly_tax", std::move(tax)).Abort();
    lake.AddTable(std::move(t)).Abort();
  }

  // -- loan_history: transitive via credit_profile.credit_score --------------
  {
    Table t("loan_history");
    Column cid(DataType::kInt64), defaults(DataType::kInt64);
    for (size_t i = 0; i < kApplicants; ++i) {
      cid.AppendInt64(world.credit_id[i]);
      defaults.AppendInt64(world.defaults[i]);
    }
    t.AddColumn("credit_id", std::move(cid)).Abort();
    t.AddColumn("past_defaults", std::move(defaults)).Abort();
    lake.AddTable(std::move(t)).Abort();
  }

  // The DRG as a dataset-discovery tool would produce it — including the
  // spurious edge from Figure 2 (applicant_id ~ credit_score: both are
  // "numbers about an applicant" but joining them is meaningless).
  DatasetRelationGraph drg;
  drg.AddEdge("applicants", "applicant_id", "personal_information",
              "applicant_id", 1.0).Abort();
  drg.AddEdge("applicants", "applicant_id", "credit_profile", "applicant_id",
              1.0).Abort();
  drg.AddEdge("applicants", "applicant_id", "credit_profile", "credit_score",
              0.58).Abort();  // Spurious (Fig. 2's red arrow).
  drg.AddEdge("credit_profile", "property_ref", "property_value",
              "property_ref", 0.92).Abort();
  drg.AddEdge("credit_profile", "credit_score", "loan_history", "credit_id",
              0.88).Abort();

  std::printf("lake: %zu tables | DRG: %zu nodes, %zu edges (incl. 1 "
              "spurious)\n\n",
              lake.num_tables(), drg.num_nodes(), drg.num_edges());

  auto base_eval = ml::TrainAndEvaluate(**lake.GetTable("applicants"),
                                        "loan_approval",
                                        ml::ModelKind::kLightGbm);
  base_eval.status().Abort();
  std::printf("base table accuracy          : %.3f\n", base_eval->accuracy);

  AutoFeatConfig config;
  config.kappa = 10;
  config.top_k_paths = 3;
  AutoFeat engine(&lake, &drg, config);
  auto result =
      engine.Augment("applicants", "loan_approval", ml::ModelKind::kLightGbm);
  result.status().Abort("AutoFeat");

  std::printf("augmented accuracy           : %.3f\n", result->accuracy);
  std::printf("paths explored               : %zu\n",
              result->discovery.paths_explored);
  std::printf("\nranked join paths:\n");
  for (size_t i = 0; i < result->discovery.ranked.size(); ++i) {
    const RankedPath& rp = result->discovery.ranked[i];
    std::printf("  #%zu score=%.3f :", i + 1, rp.score);
    for (const auto& step : rp.path.steps) {
      std::printf(" %s.%s->%s.%s |", drg.NodeName(step.from_node).c_str(),
                  step.from_column.c_str(),
                  drg.NodeName(step.to_node).c_str(), step.to_column.c_str());
    }
    std::printf("\n");
  }
  std::printf("\nbest path selected features:\n");
  for (const auto& fs : result->best_path.selected_features) {
    std::printf("  %-16s (score %.3f)\n", fs.name.c_str(), fs.score);
  }
  std::printf("\naugmented table columns:");
  for (const auto& name : result->augmented.ColumnNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  return 0;
}
