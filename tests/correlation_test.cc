#include "stats/correlation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace autofeat {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(PearsonTest, PerfectPositive) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, TooFewPairsIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(PearsonTest, SkipsNanPairs) {
  std::vector<double> x{1, kNan, 2, 3};
  std::vector<double> y{2, 100, 4, 6};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, KnownValue) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 1, 4, 3, 5};
  // Hand-computed: cov = 1.6, sx = sy = sqrt(2) -> r = 0.8.
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.8, 1e-12);
}

TEST(RankTest, SimpleRanks) {
  std::vector<double> v{30, 10, 20};
  auto r = FractionalRanks(v);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(RankTest, TiesGetAverageRank) {
  std::vector<double> v{5, 5, 1};
  auto r = FractionalRanks(v);
  EXPECT_DOUBLE_EQ(r[0], 2.5);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
}

TEST(RankTest, NanKeepsNanRank) {
  std::vector<double> v{2, kNan, 1};
  auto r = FractionalRanks(v);
  EXPECT_TRUE(std::isnan(r[1]));
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp(v));  // Nonlinear but monotone.
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  for (auto& v : y) v = -v;
  EXPECT_NEAR(SpearmanCorrelation(x, y), -1.0, 1e-12);
}

TEST(SpearmanTest, InvariantUnderMonotoneTransform) {
  Rng rng(1);
  std::vector<double> x(100), y(100);
  for (size_t i = 0; i < 100; ++i) {
    x[i] = rng.Normal(0, 1);
    y[i] = x[i] + rng.Normal(0, 0.5);
  }
  double base = SpearmanCorrelation(x, y);
  std::vector<double> cubed = x;
  for (auto& v : cubed) v = v * v * v;  // Strictly increasing transform.
  EXPECT_NEAR(SpearmanCorrelation(cubed, y), base, 1e-9);
}

TEST(SpearmanTest, PairwiseNanMasking) {
  // The NaN row must be excluded from *both* rank computations.
  std::vector<double> x{1, 2, kNan, 4};
  std::vector<double> y{1, 2, 3, 4};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, SymmetricInArguments) {
  Rng rng(2);
  std::vector<double> x(60), y(60);
  for (size_t i = 0; i < 60; ++i) {
    x[i] = rng.Uniform();
    y[i] = rng.Uniform();
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), SpearmanCorrelation(y, x), 1e-12);
}

// Property sweep: |r| bounded by 1 and decreasing with noise.
class CorrelationNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(CorrelationNoiseTest, BoundedAndDecaying) {
  double noise = GetParam();
  Rng rng(7);
  std::vector<double> x(500), y_clean(500), y_noisy(500);
  for (size_t i = 0; i < 500; ++i) {
    x[i] = rng.Normal(0, 1);
    y_clean[i] = x[i] + rng.Normal(0, noise);
    y_noisy[i] = x[i] + rng.Normal(0, noise + 2.0);
  }
  for (auto metric : {PearsonCorrelation, SpearmanCorrelation}) {
    double clean = metric(x, y_clean);
    double noisy = metric(x, y_noisy);
    EXPECT_LE(std::abs(clean), 1.0);
    EXPECT_LE(std::abs(noisy), 1.0);
    EXPECT_GT(clean, noisy);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, CorrelationNoiseTest,
                         ::testing::Values(0.1, 0.5, 1.0));

}  // namespace
}  // namespace autofeat
