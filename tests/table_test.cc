#include "table/table.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

Table MakeSample() {
  Table t("people");
  t.AddColumn("id", Column::Int64s({1, 2, 3})).Abort();
  t.AddColumn("name", Column::Strings({"ann", "bob", "cid"})).Abort();
  t.AddColumn("score", Column::Doubles({0.5, 1.5, 2.5}, {1, 1, 0})).Abort();
  return t;
}

TEST(TableTest, BasicShape) {
  Table t = MakeSample();
  EXPECT_EQ(t.name(), "people");
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.ColumnNames(),
            (std::vector<std::string>{"id", "name", "score"}));
}

TEST(TableTest, AddColumnRejectsDuplicates) {
  Table t = MakeSample();
  Status s = t.AddColumn("id", Column::Int64s({9, 9, 9}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AddColumnRejectsLengthMismatch) {
  Table t = MakeSample();
  Status s = t.AddColumn("bad", Column::Int64s({1}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, GetColumnByName) {
  Table t = MakeSample();
  auto c = t.GetColumn("name");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->GetString(1), "bob");
  EXPECT_EQ(t.GetColumn("nope").status().code(), StatusCode::kKeyError);
}

TEST(TableTest, SetColumnReplacesAndRetypes) {
  Table t = MakeSample();
  ASSERT_TRUE(t.SetColumn("score", Column::Strings({"a", "b", "c"})).ok());
  auto idx = t.schema().FieldIndex("score");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(t.schema().field(*idx).type, DataType::kString);
}

TEST(TableTest, DropColumn) {
  Table t = MakeSample();
  ASSERT_TRUE(t.DropColumn("name").ok());
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_FALSE(t.HasColumn("name"));
  EXPECT_TRUE(t.HasColumn("score"));
  EXPECT_EQ(t.DropColumn("name").code(), StatusCode::kKeyError);
}

TEST(TableTest, SelectColumnsReordersAndSubsets) {
  Table t = MakeSample();
  auto s = t.SelectColumns({"score", "id"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ColumnNames(), (std::vector<std::string>{"score", "id"}));
  EXPECT_EQ(s->num_rows(), 3u);
  EXPECT_EQ(t.SelectColumns({"missing"}).status().code(),
            StatusCode::kKeyError);
}

TEST(TableTest, TakeRows) {
  Table t = MakeSample();
  Table sub = t.TakeRows({2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ((*sub.GetColumn("id"))->GetInt64(0), 3);
  EXPECT_EQ((*sub.GetColumn("id"))->GetInt64(1), 1);
}

TEST(TableTest, RenameColumn) {
  Table t = MakeSample();
  ASSERT_TRUE(t.RenameColumn("score", "points").ok());
  EXPECT_TRUE(t.HasColumn("points"));
  EXPECT_FALSE(t.HasColumn("score"));
  EXPECT_EQ(t.RenameColumn("gone", "x").code(), StatusCode::kKeyError);
  EXPECT_EQ(t.RenameColumn("id", "name").code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(t.RenameColumn("id", "id").ok());
}

TEST(TableTest, QualifiedNames) {
  Table t = MakeSample();
  Table q = t.WithQualifiedNames("people");
  EXPECT_EQ(q.ColumnNames(),
            (std::vector<std::string>{"people.id", "people.name",
                                      "people.score"}));
  // Idempotent: qualifying again does not double-prefix.
  Table qq = q.WithQualifiedNames("people");
  EXPECT_EQ(qq.ColumnNames(), q.ColumnNames());
}

TEST(TableTest, OverallNullRatio) {
  Table t = MakeSample();
  // 1 null out of 9 cells.
  EXPECT_NEAR(t.OverallNullRatio(), 1.0 / 9, 1e-12);
  Table empty;
  EXPECT_DOUBLE_EQ(empty.OverallNullRatio(), 0.0);
}

TEST(TableTest, Equals) {
  EXPECT_TRUE(MakeSample().Equals(MakeSample()));
  Table other = MakeSample();
  other.DropColumn("score").Abort();
  EXPECT_FALSE(MakeSample().Equals(other));
}

TEST(SchemaTest, FieldIndexAndNames) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(*s.FieldIndex("b"), 1u);
  EXPECT_FALSE(s.FieldIndex("z").has_value());
  EXPECT_TRUE(s.HasField("a"));
}

TEST(SchemaTest, DuplicateFieldIgnored) {
  Schema s;
  EXPECT_TRUE(s.AddField({"x", DataType::kDouble}));
  EXPECT_FALSE(s.AddField({"x", DataType::kInt64}));
  EXPECT_EQ(s.num_fields(), 1u);
  EXPECT_EQ(s.field(0).type, DataType::kDouble);
}

}  // namespace
}  // namespace autofeat
