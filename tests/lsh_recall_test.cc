// Differential recall: on fuzzer-generated lakes, LSH-mode discovery must
// recover >= 95% of the edges the exhaustive all-pairs sweep finds (the
// ISSUE-level contract of the candidate generator) and must never invent an
// edge all-pairs would not report (it scores a subset of the pairs with the
// same matcher, so every surviving edge carries the same score).
//
// Fuzzer lakes max out at 40 rows, so every column sits under the
// small-column rescue threshold (64): any exact edge's value-overlap
// witness is also a guaranteed rescue collision, and per-lake recall should
// in fact be 1.0. The asserted bound stays at the contract's 0.95 so tuning
// LshOptions defaults later cannot silently break the gate.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "discovery/data_lake.h"
#include "qa/lake_fuzzer.h"

namespace autofeat {
namespace {

std::set<std::string> EdgeSet(const DatasetRelationGraph& drg) {
  std::set<std::string> edges;
  for (size_t a = 0; a < drg.num_nodes(); ++a) {
    for (size_t b : drg.Neighbors(a)) {
      if (b <= a) continue;
      for (const JoinStep& step : drg.EdgesBetween(a, b)) {
        std::ostringstream line;
        line.precision(17);
        line << drg.NodeName(a) << "." << step.from_column << ">"
             << drg.NodeName(b) << "." << step.to_column << "="
             << step.weight;
        edges.insert(line.str());
      }
    }
  }
  return edges;
}

TEST(LshRecallTest, RecoversExactEdgesAcrossFuzzedLakes) {
  qa::LakeFuzzer fuzzer;
  size_t total_exact = 0;
  size_t total_recovered = 0;
  size_t lakes_with_edges = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    qa::FuzzedLake fz = fuzzer.Generate(seed);

    MatchOptions exact_options;
    auto exact = BuildDrgByDiscovery(fz.lake, exact_options);
    ASSERT_TRUE(exact.ok()) << "seed " << seed << ": "
                            << exact.status().ToString();
    MatchOptions lsh_options;
    lsh_options.candidate_mode = CandidateMode::kLsh;
    auto lsh = BuildDrgByDiscovery(fz.lake, lsh_options);
    ASSERT_TRUE(lsh.ok()) << "seed " << seed << ": "
                          << lsh.status().ToString();

    std::set<std::string> exact_edges = EdgeSet(*exact);
    std::set<std::string> lsh_edges = EdgeSet(*lsh);
    for (const std::string& edge : lsh_edges) {
      // Scoring a pair subset can only drop edges, never add or rescore.
      EXPECT_TRUE(exact_edges.count(edge) > 0)
          << "seed " << seed << ": LSH invented edge " << edge;
    }
    size_t recovered = 0;
    for (const std::string& edge : exact_edges) {
      recovered += lsh_edges.count(edge);
    }
    total_exact += exact_edges.size();
    total_recovered += recovered;
    if (!exact_edges.empty()) ++lakes_with_edges;
  }
  // The sweep must actually exercise discovery: enough adversarial seeds
  // overlap keys well enough to produce discovered edges that a recall
  // regression cannot hide behind empty graphs.
  ASSERT_GT(total_exact, 20u);
  ASSERT_GE(lakes_with_edges, 5u);
  double recall = static_cast<double>(total_recovered) /
                  static_cast<double>(total_exact);
  EXPECT_GE(recall, 0.95) << total_recovered << "/" << total_exact
                          << " edges recovered";
}

}  // namespace
}  // namespace autofeat
