// Greedy lake shrinker: given a lake (plus its mutation trace) that
// violates an invariant, searches for a smaller counterexample that still
// violates it — the one a human actually wants to read. Transformations are
// tried coarse to fine (drop mutation-trace ops, drop whole tables, drop
// columns, drop row chunks, simplify values) and a transformation is kept
// iff the invariant still fails, so the result is a local minimum: removing
// any one more piece — table, column, row chunk or trace op — makes the
// failure disappear.

#ifndef AUTOFEAT_QA_SHRINKER_H_
#define AUTOFEAT_QA_SHRINKER_H_

#include <cstddef>
#include <string>

#include "qa/invariants.h"
#include "qa/lake_fuzzer.h"
#include "util/status.h"

namespace autofeat::qa {

struct ShrinkOptions {
  /// Cap on invariant evaluations (each candidate lake costs one check).
  size_t max_checks = 4000;
};

struct ShrinkResult {
  FuzzedLake lake;
  /// The invariant's violation message on the shrunk lake.
  std::string message;
  size_t checks = 0;    // invariant evaluations spent
  size_t accepted = 0;  // transformations that kept the failure
};

/// Shrinks `input`, which must currently violate `invariant` (otherwise
/// returns InvalidArgument). The base table itself and its label column are
/// never dropped; KFK constraints referencing removed tables/columns are
/// filtered so every intermediate lake stays structurally valid.
Result<ShrinkResult> ShrinkLake(const FuzzedLake& input,
                                const Invariant& invariant,
                                const ShrinkOptions& options = {});

}  // namespace autofeat::qa

#endif  // AUTOFEAT_QA_SHRINKER_H_
