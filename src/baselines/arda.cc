#include "baselines/arda.h"

#include <algorithm>
#include <cmath>

#include "discovery/join_index_cache.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "relational/join.h"
#include "relational/join_index.h"
#include "relational/sampling.h"
#include "util/timer.h"

namespace autofeat::baselines {

namespace {

// Median of a (copied) vector; 0 if empty.
double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

}  // namespace

Result<AugmenterResult> Arda::Augment(const DataLake& lake,
                                      const DatasetRelationGraph& drg,
                                      const std::string& base_table,
                                      const std::string& label_column) {
  Timer total_timer;
  AF_ASSIGN_OR_RETURN(const Table* base, lake.GetTable(base_table));
  AF_ASSIGN_OR_RETURN(size_t base_node, drg.NodeId(base_table));
  Rng rng(options_.seed);

  AugmenterResult result;
  result.augmented = *base;

  // Interned join-key indexes, built once per (table, column) target.
  JoinIndexCache join_cache(&lake, options_.seed, options_.metrics);

  // --- Star join: direct neighbours only (ARDA's single-hop limitation). ---
  for (size_t neighbor : drg.Neighbors(base_node)) {
    const Table* right = nullptr;
    {
      auto r = lake.GetTable(drg.NodeName(neighbor));
      if (!r.ok()) continue;
      right = *r;
    }
    if (right->HasColumn(label_column)) continue;
    for (const JoinStep& edge : drg.BestEdgesBetween(base_node, neighbor)) {
      if (edge.from_column == label_column) continue;  // Label leakage.
      if (!result.augmented.HasColumn(edge.from_column)) continue;
      auto index = join_cache.GetOrBuild(drg.NodeName(neighbor),
                                         edge.to_column);
      if (!index.ok()) continue;
      auto join = LeftJoinWithIndex(result.augmented, edge.from_column,
                                    *right, **index);
      if (!join.ok() || join->stats.matched_rows == 0) continue;
      result.augmented = std::move(join->table);
      ++result.tables_joined;
      break;
    }
  }

  // --- RIFS feature selection over the wide star-joined table. ---
  Timer fs_timer;
  Table sampled = result.augmented;
  if (options_.sample_rows > 0 &&
      sampled.num_rows() > options_.sample_rows) {
    AF_ASSIGN_OR_RETURN(sampled,
                        StratifiedSample(result.augmented, label_column,
                                         options_.sample_rows, &rng));
  }
  AF_ASSIGN_OR_RETURN(ml::Dataset data,
                      ml::Dataset::FromTable(sampled, label_column));
  size_t p = data.num_features();
  if (p == 0) {
    result.total_seconds = total_timer.ElapsedSeconds();
    return result;
  }
  size_t num_random = std::max<size_t>(
      3, static_cast<size_t>(std::ceil(options_.random_fraction *
                                       static_cast<double>(p))));

  std::vector<size_t> beats(p, 0);
  std::vector<double> importance_sum(p, 0.0);
  for (size_t trial = 0; trial < options_.num_trials; ++trial) {
    ml::Dataset injected = data;
    for (size_t j = 0; j < num_random; ++j) {
      std::vector<double> noise(data.num_rows());
      for (double& v : noise) v = rng.Normal(0.0, 1.0);
      injected.AddFeature("__random_" + std::to_string(j), std::move(noise));
    }
    ml::Forest forest =
        ml::Forest::RandomForest(options_.forest_trees, rng.engine()());
    AF_RETURN_NOT_OK(forest.Fit(injected));
    std::vector<double> importances = forest.FeatureImportances();

    std::vector<double> random_importances(
        importances.begin() + static_cast<ptrdiff_t>(p), importances.end());
    double bar = Median(random_importances);
    for (size_t f = 0; f < p; ++f) {
      importance_sum[f] += importances[f];
      if (importances[f] > bar) ++beats[f];
    }
  }

  // Survivors, ranked by mean importance.
  size_t required = static_cast<size_t>(
      std::ceil(options_.beat_fraction *
                static_cast<double>(options_.num_trials)));
  std::vector<size_t> survivors;
  for (size_t f = 0; f < p; ++f) {
    if (beats[f] >= required) survivors.push_back(f);
  }
  if (survivors.empty()) {
    // Degenerate: keep everything rather than return an empty table.
    survivors.resize(p);
    for (size_t f = 0; f < p; ++f) survivors[f] = f;
  }
  std::stable_sort(survivors.begin(), survivors.end(), [&](size_t a, size_t b) {
    return importance_sum[a] > importance_sum[b];
  });

  // Wrapper sweep over feature-count fractions, judged on a validation
  // split of the sampled data (more model training — ARDA's cost profile).
  std::vector<size_t> rows(data.num_rows());
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  rng.Shuffle(&rows);
  size_t val_n = std::max<size_t>(1, rows.size() / 5);
  std::vector<size_t> val_rows(rows.begin(),
                               rows.begin() + static_cast<ptrdiff_t>(val_n));
  std::vector<size_t> train_rows(rows.begin() + static_cast<ptrdiff_t>(val_n),
                                 rows.end());

  double best_accuracy = -1.0;
  std::vector<size_t> best_subset;
  for (double fraction : options_.wrapper_fractions) {
    size_t count = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               fraction * static_cast<double>(survivors.size()))));
    count = std::min(count, survivors.size());
    std::vector<size_t> subset(survivors.begin(),
                               survivors.begin() + static_cast<ptrdiff_t>(count));
    ml::Dataset sub = data.SelectFeatures(subset);
    ml::Dataset train = sub.TakeRows(train_rows);
    ml::Dataset val = sub.TakeRows(val_rows);
    ml::Forest forest =
        ml::Forest::RandomForest(options_.forest_trees, rng.engine()());
    AF_RETURN_NOT_OK(forest.Fit(train));
    double acc = ml::Accuracy(val.labels(), forest.PredictProbaAll(val));
    if (acc > best_accuracy) {
      best_accuracy = acc;
      best_subset = std::move(subset);
    }
  }
  result.feature_selection_seconds = fs_timer.ElapsedSeconds();

  // Project the augmented table onto the winning subset (+ label).
  std::vector<std::string> keep;
  keep.reserve(best_subset.size() + 1);
  for (size_t f : best_subset) keep.push_back(data.feature_names()[f]);
  keep.push_back(label_column);
  AF_ASSIGN_OR_RETURN(Table projected, result.augmented.SelectColumns(keep));
  projected.set_name(result.augmented.name());
  result.augmented = std::move(projected);

  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace autofeat::baselines
