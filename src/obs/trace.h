// Hierarchical phase tracing.
//
// A Tracer records begin/end spans with parent links, so a run decomposes
// into a tree: augment -> discover -> {prewarm, stratified_sample,
// seed_base_features, bfs} -> ... Parentage is tracked per *thread* (the
// calling thread's innermost open span is the parent), which matches how the
// engine uses spans: orchestration phases open/close on the coordinating
// thread while ParallelFor workers never open spans of their own — so the
// span tree (names, nesting, order) is identical at any thread count and is
// part of the report's deterministic digest. Wall-clock timestamps and
// thread ids are recorded too, but excluded from the digest (see
// obs/report.h).
//
// Thread safety: Begin/End/Snapshot may be called concurrently; a span
// begun on one thread must be ended on the same thread (ScopedSpan
// guarantees this).

#ifndef AUTOFEAT_OBS_TRACE_H_
#define AUTOFEAT_OBS_TRACE_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/timer.h"

namespace autofeat::obs {

/// \brief One recorded phase span. Ids are 1-based begin order; parent 0
/// means root. Thread ids are dense (first-seen order), not OS ids.
struct SpanRecord {
  size_t id = 0;
  size_t parent = 0;
  std::string name;
  size_t thread = 0;
  /// Seconds since the tracer was constructed; end < 0 while still open.
  double start_seconds = 0.0;
  double end_seconds = -1.0;
};

/// \brief Thread-safe hierarchical span recorder.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span under the calling thread's innermost open span (or the
  /// root). Returns the span id for EndSpan.
  size_t BeginSpan(std::string name);

  /// Closes the span; must be the calling thread's innermost open span.
  void EndSpan(size_t id);

  size_t num_spans() const;

  /// Copy of every span in begin order.
  std::vector<SpanRecord> Snapshot() const;

 private:
  mutable std::mutex mutex_;
  Timer clock_;
  std::vector<SpanRecord> spans_;
  std::unordered_map<std::thread::id, std::vector<size_t>> open_stacks_;
  std::unordered_map<std::thread::id, size_t> thread_ids_;
};

/// \brief RAII span; null-safe (a null tracer records nothing).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name) : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(std::move(name));
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  size_t id_ = 0;
};

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_TRACE_H_
