// AutoFeat: transitive feature discovery over join paths (paper §VI).
//
// Given a base table with a label and a Dataset Relation Graph over the
// lake, AutoFeat explores multi-hop join paths breadth-first, prunes
// low-quality joins, runs streaming relevance/redundancy feature selection
// on each join batch, ranks paths (Algorithm 2) and finally evaluates the
// top-k paths by training an ML model, returning the best augmented table.

#ifndef AUTOFEAT_CORE_AUTOFEAT_H_
#define AUTOFEAT_CORE_AUTOFEAT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "discovery/data_lake.h"
#include "discovery/join_index_cache.h"
#include "graph/drg.h"
#include "graph/join_path.h"
#include "ml/trainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/table.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace autofeat {

/// \brief A join path with its ranking score and selected features.
struct RankedPath {
  JoinPath path;
  /// Cumulative ranking score along the path (Algorithm 2 per hop, summed).
  double score = 0.0;
  /// Features selected anywhere along the path (names in the joined table).
  std::vector<FeatureScore> selected_features;
  /// Datasets joined by the path (excluding the base table).
  size_t tables_joined() const { return path.length(); }
};

/// \brief Outcome of the ranking phase (Algorithm 1).
struct DiscoveryResult {
  /// Paths with a positive score, sorted by descending score. Ties keep BFS
  /// (shortest-first) order.
  std::vector<RankedPath> ranked;
  /// Time spent in relevance + redundancy analysis only.
  double feature_selection_seconds = 0.0;
  /// Wall time of the whole discovery (joins + pruning + selection).
  double total_seconds = 0.0;
  size_t paths_explored = 0;
  size_t paths_pruned_infeasible = 0;  // join produced no matches
  size_t paths_pruned_quality = 0;     // completeness < tau
};

/// \brief Outcome of the full augmentation pipeline (§III-C).
struct AugmentationResult {
  /// Base table augmented with the best path's selected features.
  Table augmented;
  RankedPath best_path;
  /// Test accuracy of the model trained on `augmented`.
  double accuracy = 0.0;
  DiscoveryResult discovery;
  /// End-to-end wall time (discovery + top-k training).
  double total_seconds = 0.0;
};

/// \brief The AutoFeat engine.
///
/// With config.num_threads != 1 the engine owns a worker pool and runs the
/// hot loops — frontier-candidate evaluation during discovery and top-k
/// path materialisation/training — concurrently. Parallelism is invisible
/// in the results: candidates are merged in deterministic edge order and
/// stochastic tasks use RNG streams derived from (seed, task_index), so
/// ranked paths, selected features and accuracies are byte-identical at any
/// thread count (including the sequential num_threads=1 path).
class AutoFeat {
 public:
  /// `lake` and `drg` must outlive the engine.
  AutoFeat(const DataLake* lake, const DatasetRelationGraph* drg,
           AutoFeatConfig config)
      : lake_(lake), drg_(drg), config_(config) {
    if (config_.metrics_enabled) {
      // External sinks win (one shared report across phases); otherwise the
      // engine owns private ones, reachable via metrics() / tracer().
      metrics_ = config_.metrics;
      tracer_ = config_.tracer;
      if (metrics_ == nullptr) {
        owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
        metrics_ = owned_metrics_.get();
      }
      if (tracer_ == nullptr) {
        owned_tracer_ = std::make_unique<obs::Tracer>();
        tracer_ = owned_tracer_.get();
      }
    }
    if (ResolveNumThreads(config_.num_threads) > 1) {
      pool_ = std::make_unique<ThreadPool>(config_.num_threads);
      if (metrics_ != nullptr) pool_->set_metrics(metrics_);
      if (tracer_ != nullptr) pool_->set_tracer(tracer_);
    }
    if (config_.join_fast_path) {
      if (config_.join_cache != nullptr) {
        // Serving layer: an external cache shared across queries. Entries
        // are pure functions of (table contents, column, seed), so sharing
        // is invisible in the results.
        join_cache_ptr_ = config_.join_cache;
      } else {
        join_cache_ = std::make_unique<JoinIndexCache>(
            lake_, config_.seed, metrics_, tracer_,
            config_.memory_budget_bytes);
        join_cache_ptr_ = join_cache_.get();
      }
    }
  }

  /// The engine's worker pool (null on the sequential path). Exposed so
  /// callers can reuse it for DRG construction with the same knob.
  ThreadPool* thread_pool() const { return pool_.get(); }

  /// The engine's join-index cache (null when config.join_fast_path is
  /// off). Shared by discovery, top-k materialisation and any caller that
  /// wants to join against the same lake with consistent representatives.
  /// Points at config.join_cache when that external cache was supplied.
  JoinIndexCache* join_index_cache() const { return join_cache_ptr_; }

  /// The engine's metrics registry / tracer (null unless
  /// config.metrics_enabled). Points at config.metrics / config.tracer when
  /// those external sinks were supplied, else at engine-owned instances.
  obs::MetricsRegistry* metrics() const { return metrics_; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Algorithm 1: explores join paths from `base_table`, returns the ranked
  /// list. `label_column` must exist in the base table.
  Result<DiscoveryResult> DiscoverFeatures(const std::string& base_table,
                                           const std::string& label_column);

  /// Full pipeline: discovery, then trains `model` on the top-k ranked
  /// paths' augmented tables (full data) and returns the best.
  Result<AugmentationResult> Augment(const std::string& base_table,
                                     const std::string& label_column,
                                     ml::ModelKind model);

  /// Materialises a join path against the full (unsampled) lake tables and
  /// keeps base columns + the path's selected features.
  Result<Table> MaterializeAugmentedTable(const std::string& base_table,
                                          const RankedPath& ranked,
                                          const std::string& label_column);

 private:
  const DataLake* lake_;
  const DatasetRelationGraph* drg_;
  AutoFeatConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  std::unique_ptr<obs::Tracer> owned_tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<JoinIndexCache> join_cache_;  // owned (no external cache)
  JoinIndexCache* join_cache_ptr_ = nullptr;    // owned or external
};

}  // namespace autofeat

#endif  // AUTOFEAT_CORE_AUTOFEAT_H_
