#include "datagen/scale_lake.h"

#include <string>
#include <utility>

#include "util/rng.h"

namespace autofeat::datagen {

size_t ExpectedScaleLakeEdges(const ScaleLakeSpec& spec) {
  if (spec.pod_size == 0) return 0;
  size_t full_pods = spec.num_tables / spec.pod_size;
  size_t remainder = spec.num_tables % spec.pod_size;
  return full_pods * spec.pod_size * (spec.pod_size - 1) / 2 +
         (remainder > 1 ? remainder * (remainder - 1) / 2 : 0);
}

DataLake BuildScaleLake(const ScaleLakeSpec& spec) {
  DataLake lake;
  for (size_t t = 0; t < spec.num_tables; ++t) {
    size_t pod = spec.pod_size > 0 ? t / spec.pod_size : 0;
    size_t slot = spec.pod_size > 0 ? t % spec.pod_size : t;
    // Per-table stream: the lake is a pure function of spec.seed no matter
    // how callers interleave construction.
    Rng rng(DeriveSeed(spec.seed, t));

    Table table("pod" + std::to_string(pod) + "_t" + std::to_string(slot));
    // The pod key domain is [pod * rows, (pod + 1) * rows): containment of
    // any two within-pod key columns is exactly 1, and key domains (and
    // thus value sketches) of different pods are disjoint.
    Column key(DataType::kInt64);
    const int64_t base = static_cast<int64_t>(pod * spec.rows);
    for (size_t i : rng.Permutation(spec.rows)) {
      key.AppendInt64(base + static_cast<int64_t>(i));
    }
    table.AddColumn("key_p" + std::to_string(pod), std::move(key)).Abort();

    for (size_t m = 0; m < spec.features_per_table; ++m) {
      Column feature(DataType::kDouble);
      for (size_t i = 0; i < spec.rows; ++i) {
        feature.AppendDouble(rng.Normal(0.0, 1.0));
      }
      table
          .AddColumn("v" + std::to_string(t) + "_" + std::to_string(m),
                     std::move(feature))
          .Abort();
    }
    lake.AddTable(std::move(table)).Abort();
  }
  return lake;
}

}  // namespace autofeat::datagen
