// Dataset-discovery substitute for COMA (paper §IV, §VII-A).
//
// The paper builds the data-lake DRG with the COMA schema matcher (via
// Valentine), thresholded at 0.55 "to encourage spurious, but not
// irrelevant, connections". COMA combines name-based and instance-based
// matchers into a similarity score in [0, 1]; AutoFeat consumes only that
// score. This module reproduces that contract with a combination of
// column-name similarity (Levenshtein + q-gram Jaccard) and instance
// value-overlap (containment of sampled distinct values).

#ifndef AUTOFEAT_DISCOVERY_SCHEMA_MATCHER_H_
#define AUTOFEAT_DISCOVERY_SCHEMA_MATCHER_H_

#include <string>
#include <string_view>
#include <vector>

#include "discovery/lsh_index.h"
#include "discovery/sketch_cache.h"
#include "table/table.h"

namespace autofeat {

/// How BuildDrgByDiscovery enumerates the table pairs to score exactly.
enum class CandidateMode {
  /// Score the full upper triangle — O(n²) pairs, exhaustive.
  kAllPairs,
  /// MinHash-LSH candidate generation (see lsh_index.h): exact scoring runs
  /// only on table pairs with a signature-band or small-column collision.
  /// Requires `threshold > name_weight` (every reported edge then needs
  /// value overlap, which is what LSH collisions witness); otherwise
  /// discovery silently falls back to kAllPairs rather than drop
  /// name-only edges.
  kLsh,
};

struct MatchOptions {
  /// Relative weight of name similarity vs value overlap. Equal weights
  /// mean pure value containment (similarity 0.5) stays below the 0.55
  /// threshold on its own; some name evidence is required, which keeps the
  /// discovered graph spurious-but-plausible rather than complete.
  double name_weight = 0.5;
  double value_weight = 0.5;
  /// Minimum combined score for a match to be reported (paper: 0.55).
  double threshold = 0.55;
  /// Distinct values kept per column for the overlap estimate (a bottom-k
  /// by-hash sketch, so the same values survive on both sides).
  size_t max_sample_values = 4096;
  /// Columns with fewer distinct values than this have their value-overlap
  /// evidence discounted proportionally: containment of a two-value column
  /// (e.g. a binary label) in a key range is meaningless.
  size_t min_distinct_for_overlap = 16;
  /// Candidate generation strategy for BuildDrgByDiscovery. kAllPairs is a
  /// drop-in exhaustive default; kLsh makes DRG construction sub-quadratic
  /// in the number of tables on sparsely joinable lakes.
  CandidateMode candidate_mode = CandidateMode::kAllPairs;
  /// MinHash-LSH tuning (only read when candidate_mode == kLsh).
  LshOptions lsh;
  /// Memory budget in bytes for the column-sketch cache during DRG
  /// construction (0 = unbounded): under a budget the cache evicts
  /// least-recently-used table entries and rebuilds them on the next
  /// request. Sketches are pure functions of (table, max_sample_values), so
  /// the discovered DRG is byte-identical at any budget. Callers plumb
  /// AutoFeatConfig::memory_budget_bytes here (autofeat_cli does).
  size_t memory_budget_bytes = 0;
};

/// A discovered join opportunity between two columns.
struct ColumnMatch {
  std::string left_column;
  std::string right_column;
  double score = 0.0;
};

/// Name similarity in [0, 1]: max of normalised Levenshtein similarity and
/// 3-gram Jaccard over lower-cased names (1.0 for equal names).
double NameSimilarity(std::string_view a, std::string_view b);

/// Instance similarity in [0, 1]: containment |A ∩ B| / min(|A|, |B|) of the
/// (up to max_sample) distinct non-null values of the two columns.
double ValueOverlap(const Column& a, const Column& b, size_t max_sample);

/// All column pairs between `left` and `right` whose combined score reaches
/// options.threshold, sorted by descending score. Only columns of
/// join-plausible types are compared (string/int64 join keys; double columns
/// are compared with each other only).
std::vector<ColumnMatch> MatchSchemas(const Table& left, const Table& right,
                                      const MatchOptions& options = {});

/// MatchSchemas over precomputed column sketches (one per column, aligned
/// with the tables' column order, built with options.max_sample_values).
/// All-pairs DRG construction sketches each column once and calls this per
/// pair instead of re-scanning column values quadratically. Pure function of
/// its arguments — safe to call concurrently for different pairs.
std::vector<ColumnMatch> MatchSchemas(
    const Table& left, const std::vector<ColumnSketch>& left_sketches,
    const Table& right, const std::vector<ColumnSketch>& right_sketches,
    const MatchOptions& options = {});

}  // namespace autofeat

#endif  // AUTOFEAT_DISCOVERY_SCHEMA_MATCHER_H_
