#include "core/autofeat.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "core/ranking.h"
#include "fs/streaming.h"
#include "relational/join.h"
#include "relational/sampling.h"
#include "util/timer.h"

namespace autofeat {

namespace {

// Column names present in `joined` but not in `before` — the features the
// latest join appended.
std::vector<std::string> AppendedColumns(const Table& before,
                                         const Table& joined) {
  std::vector<std::string> out;
  for (const auto& name : joined.ColumnNames()) {
    if (!before.HasColumn(name)) out.push_back(name);
  }
  return out;
}

StreamingFeatureSelector::Options MakeSelectorOptions(
    const AutoFeatConfig& config) {
  StreamingFeatureSelector::Options options;
  options.relevance.kind = config.relevance;
  options.relevance.top_k = config.kappa;
  options.relevance.seed = config.seed;
  options.redundancy.kind = config.redundancy;
  options.use_relevance = config.use_relevance;
  options.use_redundancy = config.use_redundancy;
  return options;
}

}  // namespace

Result<DiscoveryResult> AutoFeat::DiscoverFeatures(
    const std::string& base_table, const std::string& label_column) {
  Timer total_timer;
  AF_ASSIGN_OR_RETURN(const Table* base_full, lake_->GetTable(base_table));
  if (!base_full->HasColumn(label_column)) {
    return Status::KeyError("label column '" + label_column +
                            "' missing from base table " + base_table);
  }
  AF_ASSIGN_OR_RETURN(size_t base_node, drg_->NodeId(base_table));
  Rng rng(config_.seed);

  // Stratified sampling speeds up feature selection without biasing the
  // label distribution (§VI); model training later uses the full data.
  Table base_sampled = *base_full;
  if (config_.sample_rows > 0 && base_full->num_rows() > config_.sample_rows) {
    AF_ASSIGN_OR_RETURN(
        base_sampled,
        StratifiedSample(*base_full, label_column, config_.sample_rows, &rng));
  }

  StreamingFeatureSelector selector(MakeSelectorOptions(config_));
  double fs_seconds = 0.0;
  {
    Timer t;
    AF_ASSIGN_OR_RETURN(FeatureView base_view,
                        FeatureView::FromTable(base_sampled, label_column));
    selector.SeedWithBaseFeatures(base_view);
    fs_seconds += t.ElapsedSeconds();
  }

  // BFS frontier of partial join paths, each carrying its (sampled) join
  // result so transitive joins extend the intermediate table (§IV-B).
  struct State {
    JoinPath path;
    Table table;
    double score = 0.0;
    std::vector<FeatureScore> selected;
  };
  std::deque<State> frontier;
  frontier.push_back(State{JoinPath{}, std::move(base_sampled), 0.0, {}});

  DiscoveryResult result;
  // Tables reached by any path so far (drives the beam's novelty order).
  std::vector<bool> node_visited(drg_->num_nodes(), false);
  node_visited[base_node] = true;
  // Signatures of (visited node set, terminal) used for path dedup.
  std::unordered_set<std::string> seen_signatures;
  auto signature = [&](const JoinPath& path) {
    std::vector<size_t> nodes;
    nodes.reserve(path.steps.size());
    for (const auto& s : path.steps) nodes.push_back(s.to_node);
    size_t terminal = nodes.empty() ? base_node : nodes.back();
    std::sort(nodes.begin(), nodes.end());
    std::string sig;
    for (size_t n : nodes) {
      sig += std::to_string(n);
      sig += ',';
    }
    sig += ':';
    sig += std::to_string(terminal);
    return sig;
  };

  while (!frontier.empty() && result.paths_explored < config_.max_paths) {
    State state = std::move(frontier.front());
    frontier.pop_front();
    if (state.path.length() >= config_.max_hops) continue;
    size_t tail = state.path.Terminal(base_node);

    // Beam pruning: on dense discovered graphs expand only a bounded set
    // of neighbours per path — never-visited tables first (they are the
    // only way to reach new features), then by similarity. On KFK trees
    // every child is unvisited, so the beam changes nothing there.
    std::vector<size_t> neighbors = drg_->Neighbors(tail);
    if (config_.beam_width > 0 && neighbors.size() > config_.beam_width) {
      auto weight = [&](size_t node) {
        double best = 0.0;
        for (const auto& e : drg_->EdgesBetween(tail, node)) {
          best = std::max(best, e.weight);
        }
        return best;
      };
      std::stable_sort(neighbors.begin(), neighbors.end(),
                       [&](size_t a, size_t b) {
                         bool fresh_a = !node_visited[a];
                         bool fresh_b = !node_visited[b];
                         if (fresh_a != fresh_b) return fresh_a;
                         return weight(a) > weight(b);
                       });
      neighbors.resize(config_.beam_width);
    }

    for (size_t neighbor : neighbors) {
      if (neighbor == base_node || state.path.ContainsNode(neighbor)) continue;
      auto table_result = lake_->GetTable(drg_->NodeName(neighbor));
      if (!table_result.ok()) continue;
      const Table* right = *table_result;
      // Candidate tables must not carry the label (left-join assumption of
      // §IV-B: Y only lives in the base table).
      if (right->HasColumn(label_column)) continue;

      // Similarity-score pruning keeps only the best join columns (§IV-C).
      std::vector<JoinStep> edges =
          config_.prune_join_columns ? drg_->BestEdgesBetween(tail, neighbor)
                                     : drg_->EdgesBetween(tail, neighbor);
      for (const JoinStep& edge : edges) {
        if (result.paths_explored >= config_.max_paths) break;
        // Never join on the target column: a label-valued join key leaks
        // the label into the appended features.
        if (edge.from_column == label_column) continue;
        if (config_.dedup_node_sets &&
            !seen_signatures.insert(signature(state.path.Extend(edge)))
                 .second) {
          continue;  // Same table set and terminal already explored.
        }
        ++result.paths_explored;

        if (!state.table.HasColumn(edge.from_column)) {
          ++result.paths_pruned_infeasible;
          continue;
        }
        auto joined = LeftJoin(state.table, edge.from_column, *right,
                               edge.to_column, &rng);
        if (!joined.ok() || joined->stats.matched_rows == 0) {
          ++result.paths_pruned_infeasible;
          continue;
        }

        // Data-quality pruning: completeness of the appended columns must
        // reach tau (§IV-C).
        std::vector<std::string> new_columns =
            AppendedColumns(state.table, joined->table);
        double completeness = JoinCompleteness(joined->table, new_columns);
        if (completeness < config_.tau) {
          ++result.paths_pruned_quality;
          continue;
        }

        // Streaming feature selection over the appended feature batch.
        Timer t;
        auto view = FeatureView::FromTable(joined->table, label_column,
                                           new_columns);
        if (!view.ok()) return view.status();
        std::vector<size_t> all_indices(view->num_features());
        for (size_t i = 0; i < all_indices.size(); ++i) all_indices[i] = i;
        StreamingFeatureSelector::BatchResult batch =
            selector.ProcessBatch(*view, all_indices);
        fs_seconds += t.ElapsedSeconds();

        State next;
        next.path = state.path.Extend(edge);
        next.score =
            state.score + ComputeRankingScore(batch.relevant, batch.selected);
        next.selected = state.selected;
        next.selected.insert(next.selected.end(), batch.selected.begin(),
                             batch.selected.end());
        // Paths whose batch was all-irrelevant or all-redundant are not
        // ranked but stay in the frontier: they may be the gateway to
        // relevant multi-hop features (§V-A).
        if (!batch.selected.empty()) {
          result.ranked.push_back(
              RankedPath{next.path, next.score, next.selected});
        }
        node_visited[neighbor] = true;
        // Leaf states (at the hop limit) can never expand; skip carrying
        // their join result into the frontier.
        if (next.path.length() < config_.max_hops) {
          next.table = std::move(joined->table);
          frontier.push_back(std::move(next));
        }
      }
    }
  }

  // Descending score; stable keeps BFS (shortest-first) order for ties.
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const RankedPath& a, const RankedPath& b) {
                     return a.score > b.score;
                   });
  result.feature_selection_seconds = fs_seconds;
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

Result<Table> AutoFeat::MaterializeAugmentedTable(
    const std::string& base_table, const RankedPath& ranked,
    const std::string& label_column) {
  AF_ASSIGN_OR_RETURN(const Table* base, lake_->GetTable(base_table));
  if (!base->HasColumn(label_column)) {
    return Status::KeyError("label column '" + label_column +
                            "' missing from base table " + base_table);
  }
  Rng rng(config_.seed);

  Table current = *base;
  for (const JoinStep& step : ranked.path.steps) {
    AF_ASSIGN_OR_RETURN(const Table* right,
                        lake_->GetTable(drg_->NodeName(step.to_node)));
    if (!current.HasColumn(step.from_column)) {
      return Status::KeyError("join column vanished during materialisation: " +
                              step.from_column);
    }
    AF_ASSIGN_OR_RETURN(
        JoinResult joined,
        LeftJoin(current, step.from_column, *right, step.to_column, &rng));
    current = std::move(joined.table);
  }

  // Keep base columns (including the label) plus the selected features.
  std::vector<std::string> keep = base->ColumnNames();
  std::unordered_set<std::string> seen(keep.begin(), keep.end());
  for (const auto& fs : ranked.selected_features) {
    if (seen.insert(fs.name).second && current.HasColumn(fs.name)) {
      keep.push_back(fs.name);
    }
  }
  AF_ASSIGN_OR_RETURN(Table augmented, current.SelectColumns(keep));
  augmented.set_name(base->name() + "_augmented");
  return augmented;
}

Result<AugmentationResult> AutoFeat::Augment(const std::string& base_table,
                                             const std::string& label_column,
                                             ml::ModelKind model) {
  Timer total_timer;
  AugmentationResult out;
  AF_ASSIGN_OR_RETURN(out.discovery,
                      DiscoverFeatures(base_table, label_column));

  ml::TrainerOptions trainer_options;
  trainer_options.seed = config_.seed;

  AF_ASSIGN_OR_RETURN(const Table* base, lake_->GetTable(base_table));
  // Fallback: no rankable path found — the base table stands alone.
  AF_ASSIGN_OR_RETURN(
      ml::EvalResult base_eval,
      ml::TrainAndEvaluate(*base, label_column, model, trainer_options));
  out.augmented = *base;
  out.accuracy = base_eval.accuracy;

  size_t k = std::min(config_.top_k_paths, out.discovery.ranked.size());
  for (size_t i = 0; i < k; ++i) {
    const RankedPath& candidate = out.discovery.ranked[i];
    AF_ASSIGN_OR_RETURN(
        Table augmented,
        MaterializeAugmentedTable(base_table, candidate, label_column));
    AF_ASSIGN_OR_RETURN(
        ml::EvalResult eval,
        ml::TrainAndEvaluate(augmented, label_column, model, trainer_options));
    if (eval.accuracy > out.accuracy) {
      out.accuracy = eval.accuracy;
      out.augmented = std::move(augmented);
      out.best_path = candidate;
    }
  }
  out.total_seconds = total_timer.ElapsedSeconds();
  return out;
}

}  // namespace autofeat
