// Wall-clock timing for the benchmark harness.

#ifndef AUTOFEAT_UTIL_TIMER_H_
#define AUTOFEAT_UTIL_TIMER_H_

#include <chrono>

namespace autofeat {

/// \brief Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_UTIL_TIMER_H_
