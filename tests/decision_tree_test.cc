#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "support/ml_fixtures.h"

namespace autofeat::ml {
namespace {

TEST(DecisionTreeTest, LearnsSeparableBlobs) {
  Dataset train = MakeBlobs(400, 2.0, 1);
  Dataset test = MakeBlobs(200, 2.0, 2);
  DecisionTree tree;
  EXPECT_GT(HoldoutAccuracy(tree, train, test), 0.9);
}

TEST(DecisionTreeTest, SolvesXor) {
  Dataset train = MakeXor(400, 3);
  Dataset test = MakeXor(200, 4);
  DecisionTree tree;
  EXPECT_GT(HoldoutAccuracy(tree, train, test), 0.95);
}

TEST(DecisionTreeTest, PureLeavesOnTrainingData) {
  Dataset train = MakeBlobs(100, 3.0, 5);
  TreeOptions options;
  options.max_depth = 32;
  options.min_samples_leaf = 1;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(train).ok());
  // With unconstrained depth the tree fits the training set exactly.
  EXPECT_DOUBLE_EQ(
      Accuracy(train.labels(), tree.PredictProbaAll(train)), 1.0);
}

TEST(DecisionTreeTest, DepthZeroIsMajorityVote) {
  Dataset train = MakeBlobs(100, 3.0, 6);
  TreeOptions options;
  options.max_depth = 0;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  double p = tree.PredictProba(train, 0);
  EXPECT_NEAR(p, 0.5, 0.05);  // Balanced classes.
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  Dataset train = MakeXor(300, 7);
  TreeOptions options;
  options.max_depth = 3;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Dataset train = MakeBlobs(50, 0.3, 8);
  TreeOptions options;
  options.min_samples_leaf = 20;
  DecisionTree tree(options);
  ASSERT_TRUE(tree.Fit(train).ok());
  // Splits below 20-per-side are impossible -> at most 1 split layer here.
  EXPECT_LE(tree.num_nodes(), 7u);
}

TEST(DecisionTreeTest, EmptyTrainingFails) {
  Dataset empty;
  DecisionTree tree;
  EXPECT_FALSE(tree.FitRows(MakeBlobs(10, 1, 9), {}).ok());
}

TEST(DecisionTreeTest, ImportancesFavorInformativeFeatures) {
  Dataset train = MakeBlobs(500, 2.0, 10);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  auto imp = tree.FeatureImportances();
  ASSERT_EQ(imp.size(), 3u);
  // noise is feature 2.
  EXPECT_GT(imp[0] + imp[1], imp[2]);
  double sum = imp[0] + imp[1] + imp[2];
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DecisionTreeTest, DeterministicGivenSeed) {
  Dataset train = MakeBlobs(200, 1.0, 11);
  TreeOptions options;
  options.max_features = TreeOptions::kSqrt;
  options.seed = 99;
  DecisionTree a(options), b(options);
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  for (size_t r = 0; r < train.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(a.PredictProba(train, r), b.PredictProba(train, r));
  }
}

TEST(DecisionTreeTest, RandomThresholdModeStillLearns) {
  Dataset train = MakeBlobs(400, 2.0, 12);
  Dataset test = MakeBlobs(200, 2.0, 13);
  TreeOptions options;
  options.random_thresholds = true;
  DecisionTree tree(options);
  EXPECT_GT(HoldoutAccuracy(tree, train, test), 0.85);
}

TEST(DecisionTreeTest, FitRowsSubsetOnly) {
  Dataset data = MakeBlobs(100, 5.0, 14);
  // Train only on class-0 rows: predictions collapse to 0.
  std::vector<size_t> zero_rows;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    if (data.label(r) == 0) zero_rows.push_back(r);
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.FitRows(data, zero_rows).ok());
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_DOUBLE_EQ(tree.PredictProba(data, r), 0.0);
  }
}

}  // namespace
}  // namespace autofeat::ml
