#include "stats/discretize.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace autofeat {

int DefaultBinCount(size_t n) {
  int sqrt_bins = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  return std::max(2, std::min(10, sqrt_bins));
}

std::vector<int> DiscretizeEqualWidth(const std::vector<double>& values,
                                      int bins) {
  std::vector<int> out(values.size(), kMissingBin);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(lo < hi)) {
    // Constant (or empty/all-NaN) column: single bin.
    for (size_t i = 0; i < values.size(); ++i) {
      if (!std::isnan(values[i])) out[i] = 0;
    }
    return out;
  }
  double width = (hi - lo) / bins;
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::isnan(values[i])) continue;
    int b = static_cast<int>((values[i] - lo) / width);
    out[i] = std::min(b, bins - 1);
  }
  return out;
}

std::vector<int> DiscretizeEqualFrequency(const std::vector<double>& values,
                                          int bins) {
  std::vector<int> out(values.size(), kMissingBin);
  std::vector<size_t> idx;
  idx.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isnan(values[i])) idx.push_back(i);
  }
  if (idx.empty()) return out;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return values[a] < values[b];
  });

  size_t n = idx.size();
  size_t per_bin = std::max<size_t>(1, n / static_cast<size_t>(bins));
  int bin = 0;
  size_t in_bin = 0;
  for (size_t r = 0; r < n; ++r) {
    // Keep ties together: only advance the bin at a strict value change.
    if (in_bin >= per_bin && bin < bins - 1 &&
        values[idx[r]] != values[idx[r - 1]]) {
      ++bin;
      in_bin = 0;
    }
    out[idx[r]] = bin;
    ++in_bin;
  }
  return out;
}

std::vector<int> CodesFromValues(const std::vector<double>& values) {
  std::vector<int> out(values.size(), kMissingBin);
  std::unordered_map<double, int> codes;
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::isnan(values[i])) continue;
    auto [it, inserted] =
        codes.try_emplace(values[i], static_cast<int>(codes.size()));
    out[i] = it->second;
  }
  return out;
}

size_t DistinctCodeCount(const std::vector<int>& codes) {
  std::unordered_map<int, int> seen;
  for (int c : codes) {
    if (c != kMissingBin) seen.emplace(c, 0);
  }
  return seen.size();
}

}  // namespace autofeat
