// Adaptor exposing the core AutoFeat engine through the common Augmenter
// interface so the benchmark harness can treat all methods uniformly.

#ifndef AUTOFEAT_BASELINES_AUTOFEAT_METHOD_H_
#define AUTOFEAT_BASELINES_AUTOFEAT_METHOD_H_

#include <string>

#include "baselines/augmenter.h"
#include "core/autofeat.h"

namespace autofeat::baselines {

class AutoFeatMethod final : public Augmenter {
 public:
  explicit AutoFeatMethod(AutoFeatConfig config = {},
                          ml::ModelKind selection_model =
                              ml::ModelKind::kLightGbm)
      : config_(config), selection_model_(selection_model) {}

  Result<AugmenterResult> Augment(const DataLake& lake,
                                  const DatasetRelationGraph& drg,
                                  const std::string& base_table,
                                  const std::string& label_column) override;

  std::string name() const override { return "AutoFeat"; }

  /// Result details of the last Augment call (ranked paths etc.).
  const AugmentationResult& last_result() const { return last_; }

 private:
  AutoFeatConfig config_;
  ml::ModelKind selection_model_;
  AugmentationResult last_;
};

}  // namespace autofeat::baselines

#endif  // AUTOFEAT_BASELINES_AUTOFEAT_METHOD_H_
