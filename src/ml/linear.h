// L1-regularised logistic regression, trained with proximal gradient
// descent (ISTA). The paper's "Linear Regression with L1 regularisation"
// baseline model, used for binary classification in Figs. 5 and 7.

#ifndef AUTOFEAT_ML_LINEAR_H_
#define AUTOFEAT_ML_LINEAR_H_

#include <string>
#include <vector>

#include "ml/classifier.h"

namespace autofeat::ml {

struct LogRegOptions {
  double l1 = 0.01;
  double learning_rate = 0.5;
  size_t max_iterations = 300;
  double tolerance = 1e-6;
};

/// \brief Sparse linear classifier over z-score-normalised features.
class LogisticRegressionL1 final : public Classifier {
 public:
  explicit LogisticRegressionL1(LogRegOptions options = {})
      : options_(options) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, size_t row) const override;
  std::string name() const override { return "LogRegL1"; }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  /// Count of exactly-zero weights (L1 sparsity diagnostic).
  size_t num_zero_weights() const;

 private:
  LogRegOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace autofeat::ml

#endif  // AUTOFEAT_ML_LINEAR_H_
