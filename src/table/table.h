// Table: a named collection of equally long Columns with a Schema.
//
// This is the dataframe-equivalent the rest of the library operates on:
// datasets in the lake, intermediate join results, and augmented outputs are
// all Tables.

#ifndef AUTOFEAT_TABLE_TABLE_H_
#define AUTOFEAT_TABLE_TABLE_H_

#include <string>
#include <vector>

#include "table/column.h"
#include "table/schema.h"
#include "util/status.h"

namespace autofeat {

/// \brief In-memory columnar table.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t num_columns() const { return columns_.size(); }
  const Schema& schema() const { return schema_; }

  /// Appends a column. Fails if the name is taken or the length mismatches.
  Status AddColumn(const std::string& name, Column column);

  /// Replaces an existing column (same length required).
  Status SetColumn(const std::string& name, Column column);

  /// Drops a column by name.
  Status DropColumn(const std::string& name);

  const Column& column(size_t i) const { return columns_[i]; }
  Column* mutable_column(size_t i) { return &columns_[i]; }

  /// Column lookup by name.
  Result<const Column*> GetColumn(const std::string& name) const;
  bool HasColumn(const std::string& name) const {
    return schema_.HasField(name);
  }
  std::vector<std::string> ColumnNames() const { return schema_.FieldNames(); }

  /// A new table with only the given columns, in the given order.
  Result<Table> SelectColumns(const std::vector<std::string>& names) const;

  /// A new table with the given rows (duplicates allowed), all columns.
  Table TakeRows(const std::vector<size_t>& indices) const;

  /// Renames a column.
  Status RenameColumn(const std::string& old_name, const std::string& new_name);

  /// A copy whose column names are prefixed with "<prefix>." unless already
  /// qualified with it. Used when joining to keep names unique per dataset.
  Table WithQualifiedNames(const std::string& prefix) const;

  /// Average null ratio over all columns (the data-quality signal of §IV-C).
  double OverallNullRatio() const;

  bool Equals(const Table& other) const;

  /// Approximate in-memory footprint in bytes: every column's
  /// Column::ApproxBytes plus the name and schema strings. Size-based and
  /// deterministic (see Column::ApproxBytes).
  size_t ApproxBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_TABLE_TABLE_H_
