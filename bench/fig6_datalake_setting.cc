// Figure 6: the data-lake setting. KFK metadata is discarded; the DRG is
// discovered by the schema matcher (threshold 0.55), yielding a dense
// multigraph with spurious edges. JoinAll variants are omitted entirely —
// the join-order space explodes (Eq. 3), exactly as in the paper.

#include <cstdio>

#include "harness.h"
#include "util/timer.h"

int main() {
  using namespace autofeat;
  using namespace autofeat::benchx;

  PrintModeBanner("Figure 6: data-lake setting (discovered multigraph)");
  std::vector<ml::ModelKind> models = BenchTreeModels();
  std::printf("evaluation models:");
  for (auto m : models) std::printf(" %s", ml::ModelKindName(m));
  std::printf("\n\n");

  double autofeat_fs_sum = 0, arda_fs_sum = 0, mab_fs_sum = 0;
  double autofeat_acc_sum = 0, arda_acc_sum = 0, mab_acc_sum = 0;
  size_t datasets = 0;

  for (const auto& raw : datagen::PaperDatasets()) {
    datagen::DatasetSpec spec = ScaledSpec(raw);
    datagen::BuiltLake built = datagen::BuildPaperLake(spec, 42);

    Timer discovery_timer;
    auto kfk = BuildSettingDrg(built, Setting::kBenchmark);
    auto drg = BuildSettingDrg(built, Setting::kDataLake);
    drg.status().Abort("schema matching");
    double discovery_seconds = discovery_timer.ElapsedSeconds();

    std::printf("== %s (rows=%zu, KFK edges=%zu, discovered edges=%zu, "
                "discovery %.2fs offline)\n",
                spec.name.c_str(), spec.rows, kfk->num_edges(),
                drg->num_edges(), discovery_seconds);
    PrintMethodHeader();

    auto methods = MakeMethods(/*include_join_all=*/false);
    for (auto& method : methods) {
      auto row = RunMethod(method.get(), built, *drg, models);
      row.status().Abort(method->name().c_str());
      PrintMethodRow(*row);
      if (row->method == "AutoFeat") {
        autofeat_fs_sum += row->fs_seconds;
        autofeat_acc_sum += row->accuracy;
      } else if (row->method == "ARDA") {
        arda_fs_sum += row->fs_seconds;
        arda_acc_sum += row->accuracy;
      } else if (row->method == "MAB") {
        mab_fs_sum += row->fs_seconds;
        mab_acc_sum += row->accuracy;
      }
    }
    std::printf("   best reference accuracy (Table II): %.3f\n\n",
                spec.reference_accuracy);
    ++datasets;
  }

  PrintRule();
  std::printf("summary over %zu datasets:\n", datasets);
  std::printf("  feature-selection speedup vs ARDA: %.1fx\n",
              arda_fs_sum / autofeat_fs_sum);
  std::printf("  feature-selection speedup vs MAB : %.1fx\n",
              mab_fs_sum / autofeat_fs_sum);
  std::printf("  mean accuracy: AutoFeat %.3f | ARDA %.3f | MAB %.3f\n",
              autofeat_acc_sum / datasets, arda_acc_sum / datasets,
              mab_acc_sum / datasets);
  return 0;
}
