#include "table/key_dictionary.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace autofeat {

namespace {

// %.17g rendering of a double key that is not integer-representable — the
// same format KeyAt uses, so string-space keys line up across types.
std::string_view FormatDoubleKey(double v, char (&buf)[64]) {
  int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string_view(buf, static_cast<size_t>(n));
}

}  // namespace

std::optional<int64_t> CanonicalIntKey(std::string_view s) {
  if (s.empty()) return std::nullopt;
  size_t digits_at = s[0] == '-' ? 1 : 0;
  if (digits_at >= s.size()) return std::nullopt;
  // std::to_string never emits leading zeros or "-0".
  if (s[digits_at] == '0' && (s.size() > digits_at + 1 || digits_at == 1)) {
    return std::nullopt;
  }
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

bool IntegralDoubleKey(double v, int64_t* out) {
  if (!(std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15)) {
    return false;
  }
  *out = static_cast<int64_t>(v);
  return true;
}

uint32_t KeyDictionary::InternInt(int64_t v) {
  uint32_t next = static_cast<uint32_t>(int_ids_.size() + str_ids_.size());
  return int_ids_.try_emplace(v, next).first->second;
}

uint32_t KeyDictionary::InternString(std::string_view s) {
  auto it = str_ids_.find(s);
  if (it != str_ids_.end()) return it->second;
  uint32_t next = static_cast<uint32_t>(int_ids_.size() + str_ids_.size());
  return str_ids_.emplace(std::string(s), next).first->second;
}

uint32_t KeyDictionary::FindInt(int64_t v) const {
  auto it = int_ids_.find(v);
  return it == int_ids_.end() ? kNoKey : it->second;
}

uint32_t KeyDictionary::FindString(std::string_view s) const {
  auto it = str_ids_.find(s);
  return it == str_ids_.end() ? kNoKey : it->second;
}

uint32_t KeyDictionary::InternAt(const Column& key, size_t row) {
  switch (key.type()) {
    case DataType::kInt64:
      return InternInt(key.GetInt64(row));
    case DataType::kDouble: {
      int64_t as_int;
      if (IntegralDoubleKey(key.GetDouble(row), &as_int)) {
        return InternInt(as_int);
      }
      char buf[64];
      return InternString(FormatDoubleKey(key.GetDouble(row), buf));
    }
    case DataType::kString: {
      const std::string& s = key.GetString(row);
      if (auto as_int = CanonicalIntKey(s)) return InternInt(*as_int);
      return InternString(s);
    }
  }
  return kNoKey;
}

KeyDictionary KeyDictionary::Build(const Column& key) {
  KeyDictionary dict;
  size_t n = key.size();
  dict.row_ids_.assign(n, kNoKey);
  for (size_t i = 0; i < n; ++i) {
    if (!key.IsNull(i)) dict.row_ids_[i] = dict.InternAt(key, i);
  }

  size_t num_keys = dict.int_ids_.size() + dict.str_ids_.size();
  dict.offsets_.assign(num_keys + 1, 0);
  for (uint32_t id : dict.row_ids_) {
    if (id != kNoKey) ++dict.offsets_[id + 1];
  }
  for (size_t k = 0; k < num_keys; ++k) dict.offsets_[k + 1] += dict.offsets_[k];
  dict.rows_.resize(dict.offsets_[num_keys]);
  std::vector<uint32_t> cursor(dict.offsets_.begin(),
                               dict.offsets_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    uint32_t id = dict.row_ids_[i];
    if (id != kNoKey) dict.rows_[cursor[id]++] = static_cast<uint32_t>(i);
  }
  return dict;
}

uint32_t KeyDictionary::Lookup(const Column& probe, size_t row) const {
  if (probe.IsNull(row)) return kNoKey;
  switch (probe.type()) {
    case DataType::kInt64:
      return FindInt(probe.GetInt64(row));
    case DataType::kDouble: {
      int64_t as_int;
      if (IntegralDoubleKey(probe.GetDouble(row), &as_int)) {
        return FindInt(as_int);
      }
      char buf[64];
      return FindString(FormatDoubleKey(probe.GetDouble(row), buf));
    }
    case DataType::kString: {
      const std::string& s = probe.GetString(row);
      if (auto as_int = CanonicalIntKey(s)) return FindInt(*as_int);
      return FindString(s);
    }
  }
  return kNoKey;
}

size_t KeyDictionary::ApproxBytes() const {
  // Hash-map entries count key + value + one node pointer; bucket arrays
  // are capacity-dependent and deliberately excluded.
  size_t total = sizeof(KeyDictionary);
  total += int_ids_.size() *
           (sizeof(int64_t) + sizeof(uint32_t) + sizeof(void*));
  for (const auto& [key, id] : str_ids_) {
    (void)id;
    total += sizeof(std::string) + key.size() + sizeof(uint32_t) +
             sizeof(void*);
  }
  total += row_ids_.size() * sizeof(uint32_t);
  total += offsets_.size() * sizeof(uint32_t);
  total += rows_.size() * sizeof(uint32_t);
  return total;
}

}  // namespace autofeat
