#include "stats/information.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "stats/discretize.h"

namespace autofeat {

namespace {

// Missing-coded rows are excluded from all estimates (pairwise-complete):
// joins null out entire row ranges at once, so "missing" as a category
// would dominate any inter-feature dependence measure.
bool Present(int a) { return a != kMissingBin; }

// Codes produced by the discretisers are small (<= ~33); the dense path
// covers them. Larger/negative codes fall back to hashing.
constexpr int kDenseLimit = 64;

double EntropyOfDense(const std::vector<size_t>& counts, size_t n) {
  if (n == 0) return 0.0;
  double h = 0.0;
  double dn = static_cast<double>(n);
  for (size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / dn;
    h -= p * std::log(p);
  }
  return h;
}

size_t OccupiedCells(const std::vector<size_t>& counts) {
  size_t k = 0;
  for (size_t c : counts) k += (c != 0);
  return k;
}

// Miller-Madow correction term for a dense count vector.
double MmTerm(const std::vector<size_t>& counts, size_t n) {
  if (n == 0) return 0.0;
  return (static_cast<double>(OccupiedCells(counts)) - 1.0) /
         (2.0 * static_cast<double>(n));
}

// Remaps arbitrary int codes (missing rows of either input dropped) into
// dense 0..k-1 codes. Returns false if the dense limit is exceeded.
struct DensePair {
  std::vector<int> x, y;  // parallel, remapped, complete rows only
  int kx = 0, ky = 0;
};

bool BuildDensePair(const std::vector<int>& x, const std::vector<int>& y,
                    DensePair* out) {
  assert(x.size() == y.size());
  int min_x = 0, max_x = -1, min_y = 0, max_y = -1;
  bool first = true;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!Present(x[i]) || !Present(y[i])) continue;
    if (first) {
      min_x = max_x = x[i];
      min_y = max_y = y[i];
      first = false;
    } else {
      min_x = std::min(min_x, x[i]);
      max_x = std::max(max_x, x[i]);
      min_y = std::min(min_y, y[i]);
      max_y = std::max(max_y, y[i]);
    }
  }
  if (first) {
    out->kx = out->ky = 0;
    return true;
  }
  if (max_x - min_x >= kDenseLimit || max_y - min_y >= kDenseLimit) {
    return false;
  }
  out->kx = max_x - min_x + 1;
  out->ky = max_y - min_y + 1;
  out->x.clear();
  out->y.clear();
  out->x.reserve(x.size());
  out->y.reserve(y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    if (!Present(x[i]) || !Present(y[i])) continue;
    out->x.push_back(x[i] - min_x);
    out->y.push_back(y[i] - min_y);
  }
  return true;
}

struct PairEntropies {
  double hx = 0, hy = 0, hxy = 0;
  double hx_mm = 0, hy_mm = 0, hxy_mm = 0;
};

// Dense two-way contingency entropies (plug-in and Miller-Madow).
PairEntropies DensePairEntropies(const DensePair& p) {
  PairEntropies out;
  size_t n = p.x.size();
  if (n == 0 || p.kx == 0 || p.ky == 0) return out;
  std::vector<size_t> cx(static_cast<size_t>(p.kx), 0);
  std::vector<size_t> cy(static_cast<size_t>(p.ky), 0);
  std::vector<size_t> cxy(static_cast<size_t>(p.kx) * p.ky, 0);
  for (size_t i = 0; i < n; ++i) {
    ++cx[static_cast<size_t>(p.x[i])];
    ++cy[static_cast<size_t>(p.y[i])];
    ++cxy[static_cast<size_t>(p.x[i]) * p.ky + p.y[i]];
  }
  out.hx = EntropyOfDense(cx, n);
  out.hy = EntropyOfDense(cy, n);
  out.hxy = EntropyOfDense(cxy, n);
  out.hx_mm = out.hx + MmTerm(cx, n);
  out.hy_mm = out.hy + MmTerm(cy, n);
  out.hxy_mm = out.hxy + MmTerm(cxy, n);
  return out;
}

// ---- Hash fallback (arbitrary code ranges) --------------------------------

double EntropyOfCounts(const std::unordered_map<uint64_t, size_t>& counts,
                       size_t n) {
  if (n == 0) return 0.0;
  double h = 0.0;
  double dn = static_cast<double>(n);
  for (const auto& [key, c] : counts) {
    double p = static_cast<double>(c) / dn;
    h -= p * std::log(p);
  }
  return h;
}

double EntropyMM(const std::unordered_map<uint64_t, size_t>& counts,
                 size_t n) {
  if (n == 0) return 0.0;
  return EntropyOfCounts(counts, n) +
         (static_cast<double>(counts.size()) - 1.0) /
             (2.0 * static_cast<double>(n));
}

// Packs small signed codes into tuple keys (bias keeps them non-negative).
uint64_t Pack1(int a) { return static_cast<uint64_t>(a + (1 << 20)); }
uint64_t Pack2(int a, int b) { return (Pack1(a) << 21) | Pack1(b); }
uint64_t Pack3(int a, int b, int c) { return (Pack2(a, b) << 21) | Pack1(c); }

PairEntropies HashPairEntropies(const std::vector<int>& x,
                                const std::vector<int>& y) {
  PairEntropies out;
  std::unordered_map<uint64_t, size_t> cx, cy, cxy;
  size_t n = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!Present(x[i]) || !Present(y[i])) continue;
    ++cx[Pack1(x[i])];
    ++cy[Pack1(y[i])];
    ++cxy[Pack2(x[i], y[i])];
    ++n;
  }
  out.hx = EntropyOfCounts(cx, n);
  out.hy = EntropyOfCounts(cy, n);
  out.hxy = EntropyOfCounts(cxy, n);
  out.hx_mm = EntropyMM(cx, n);
  out.hy_mm = EntropyMM(cy, n);
  out.hxy_mm = EntropyMM(cxy, n);
  return out;
}

PairEntropies ComputePairEntropies(const std::vector<int>& x,
                                   const std::vector<int>& y) {
  DensePair dense;
  if (BuildDensePair(x, y, &dense)) return DensePairEntropies(dense);
  return HashPairEntropies(x, y);
}

}  // namespace

double Entropy(const std::vector<int>& x) {
  // Reuse the pair machinery with y == x; H(X,X) == H(X).
  return ComputePairEntropies(x, x).hx;
}

double JointEntropy(const std::vector<int>& x, const std::vector<int>& y) {
  return ComputePairEntropies(x, y).hxy;
}

double MutualInformation(const std::vector<int>& x,
                         const std::vector<int>& y) {
  PairEntropies e = ComputePairEntropies(x, y);
  return std::max(0.0, e.hx + e.hy - e.hxy);
}

double MutualInformationCorrected(const std::vector<int>& x,
                                  const std::vector<int>& y) {
  PairEntropies e = ComputePairEntropies(x, y);
  return std::max(0.0, e.hx_mm + e.hy_mm - e.hxy_mm);
}

double SymmetricalUncertainty(const std::vector<int>& x,
                              const std::vector<int>& y) {
  PairEntropies e = ComputePairEntropies(x, y);
  if (e.hx + e.hy <= 0.0) return 0.0;
  double mi = std::max(0.0, e.hx + e.hy - e.hxy);
  return 2.0 * mi / (e.hx + e.hy);
}

namespace {

struct TripleEntropies {
  double hxz = 0, hyz = 0, hxyz = 0, hz = 0;
  double hxz_mm = 0, hyz_mm = 0, hxyz_mm = 0, hz_mm = 0;
};

TripleEntropies ComputeTripleEntropies(const std::vector<int>& x,
                                       const std::vector<int>& y,
                                       const std::vector<int>& z) {
  assert(x.size() == y.size() && y.size() == z.size());
  TripleEntropies out;
  std::unordered_map<uint64_t, size_t> xz, yz, xyz, zz;
  size_t n = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!Present(x[i]) || !Present(y[i]) || !Present(z[i])) continue;
    ++xz[Pack2(x[i], z[i])];
    ++yz[Pack2(y[i], z[i])];
    ++xyz[Pack3(x[i], y[i], z[i])];
    ++zz[Pack1(z[i])];
    ++n;
  }
  out.hxz = EntropyOfCounts(xz, n);
  out.hyz = EntropyOfCounts(yz, n);
  out.hxyz = EntropyOfCounts(xyz, n);
  out.hz = EntropyOfCounts(zz, n);
  out.hxz_mm = EntropyMM(xz, n);
  out.hyz_mm = EntropyMM(yz, n);
  out.hxyz_mm = EntropyMM(xyz, n);
  out.hz_mm = EntropyMM(zz, n);
  return out;
}

}  // namespace

double ConditionalMutualInformation(const std::vector<int>& x,
                                    const std::vector<int>& y,
                                    const std::vector<int>& z) {
  TripleEntropies e = ComputeTripleEntropies(x, y, z);
  return std::max(0.0, e.hxz + e.hyz - e.hxyz - e.hz);
}

double ConditionalMutualInformationCorrected(const std::vector<int>& x,
                                             const std::vector<int>& y,
                                             const std::vector<int>& z) {
  TripleEntropies e = ComputeTripleEntropies(x, y, z);
  return std::max(0.0, e.hxz_mm + e.hyz_mm - e.hxyz_mm - e.hz_mm);
}

}  // namespace autofeat
