#include "ml/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace autofeat::ml {
namespace {

TEST(AccuracyTest, PerfectAndWorst) {
  std::vector<int> y{0, 1, 1, 0};
  EXPECT_DOUBLE_EQ(Accuracy(y, {0.1, 0.9, 0.8, 0.2}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(y, {0.9, 0.1, 0.2, 0.8}), 0.0);
}

TEST(AccuracyTest, ThresholdAtHalf) {
  std::vector<int> y{1, 0};
  EXPECT_DOUBLE_EQ(Accuracy(y, {0.5, 0.499}), 1.0);  // >= 0.5 is positive.
}

TEST(AccuracyTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0); }

TEST(RocAucTest, PerfectRanking) {
  std::vector<int> y{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(y, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(RocAucTest, InvertedRanking) {
  std::vector<int> y{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(y, {0.9, 0.8, 0.1, 0.2}), 0.0);
}

TEST(RocAucTest, SingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({1, 1}, {0.1, 0.9}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0, 0}, {0.1, 0.9}), 0.5);
}

TEST(RocAucTest, AllTiedScoresIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(RocAucTest, PartialTiesGetHalfCredit) {
  // One positive tied with one negative, one clean pair.
  std::vector<int> y{0, 1, 0, 1};
  std::vector<double> p{0.3, 0.3, 0.1, 0.9};
  // Pairs: (n=0.3 vs p=0.3) tie = 0.5; (0.3, 0.9) = 1; (0.1, 0.3) = 1;
  // (0.1, 0.9) = 1 -> AUC = 3.5 / 4.
  EXPECT_DOUBLE_EQ(RocAuc(y, p), 3.5 / 4);
}

TEST(RocAucTest, InvariantToMonotoneTransform) {
  Rng rng(1);
  std::vector<int> y(200);
  std::vector<double> p(200), p2(200);
  for (size_t i = 0; i < 200; ++i) {
    y[i] = static_cast<int>(rng.UniformInt(0, 1));
    p[i] = rng.Uniform();
    p2[i] = p[i] * p[i] * 0.5;  // Monotone rescale.
  }
  EXPECT_NEAR(RocAuc(y, p), RocAuc(y, p2), 1e-12);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  Rng rng(7);
  std::vector<int> y(5000);
  std::vector<double> p(5000);
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = static_cast<int>(rng.UniformInt(0, 1));
    p[i] = rng.Uniform();
  }
  EXPECT_NEAR(RocAuc(y, p), 0.5, 0.03);
}


TEST(LogLossTest, PerfectPredictionsNearZero) {
  std::vector<int> y{0, 1};
  EXPECT_LT(LogLoss(y, {1e-12, 1.0 - 1e-12}), 1e-9);
}

TEST(LogLossTest, ConstantHalfIsLn2) {
  std::vector<int> y{0, 1, 0, 1};
  EXPECT_NEAR(LogLoss(y, {0.5, 0.5, 0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(LogLossTest, ConfidentlyWrongIsLarge) {
  std::vector<int> y{1};
  EXPECT_GT(LogLoss(y, {0.001}), 6.0);
}

TEST(LogLossTest, ClipsExtremeProbabilities) {
  std::vector<int> y{1, 0};
  double loss = LogLoss(y, {0.0, 1.0});  // Would be inf unclipped.
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(LogLossTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(LogLoss({}, {}), 0.0); }

TEST(BrierTest, PerfectIsZeroWorstIsOne) {
  std::vector<int> y{0, 1};
  EXPECT_DOUBLE_EQ(BrierScore(y, {0.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(BrierScore(y, {1.0, 0.0}), 1.0);
}

TEST(BrierTest, ConstantHalfIsQuarter) {
  std::vector<int> y{0, 1, 1, 0};
  EXPECT_DOUBLE_EQ(BrierScore(y, {0.5, 0.5, 0.5, 0.5}), 0.25);
}

TEST(BrierTest, BetterCalibrationLowersScore) {
  Rng rng(21);
  std::vector<int> y(500);
  std::vector<double> sharp(500), blurry(500);
  for (size_t i = 0; i < 500; ++i) {
    y[i] = static_cast<int>(rng.UniformInt(0, 1));
    double signal = y[i] == 1 ? 0.8 : 0.2;
    sharp[i] = signal;
    blurry[i] = 0.5 + (signal - 0.5) * 0.2;
  }
  EXPECT_LT(BrierScore(y, sharp), BrierScore(y, blurry));
}

}  // namespace
}  // namespace autofeat::ml
