#include "fs/redundancy.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace autofeat {
namespace {

// Builds (x, y, duplicate-of-x, noise) code vectors for J-score tests.
struct CodeFixture {
  std::vector<int> label;
  std::vector<int> informative;
  std::vector<int> duplicate;
  std::vector<int> fresh;          // independent second view of the label
  std::vector<int> complementary;  // xor structure: only CMI sees it
  std::vector<int> noise;

  explicit CodeFixture(size_t n = 1200, uint64_t seed = 1) {
    Rng rng(seed);
    label.resize(n);
    informative.resize(n);
    duplicate.resize(n);
    fresh.resize(n);
    complementary.resize(n);
    noise.resize(n);
    for (size_t i = 0; i < n; ++i) {
      label[i] = static_cast<int>(i % 2);
      // Informative: noisy copy of the label.
      informative[i] =
          rng.Bernoulli(0.2) ? static_cast<int>(rng.UniformInt(0, 1))
                             : label[i];
      duplicate[i] = informative[i];
      // Fresh: another noisy copy with *independent* noise — carries label
      // information that `informative` does not already have.
      fresh[i] = rng.Bernoulli(0.2) ? static_cast<int>(rng.UniformInt(0, 1))
                                    : label[i];
      // Complementary: informative about the label only where
      // `informative` errs (xor-ish; rewarded by conditional-MI terms).
      complementary[i] =
          rng.Bernoulli(0.3) ? static_cast<int>(rng.UniformInt(0, 1))
                             : label[i] ^ informative[i];
      noise[i] = static_cast<int>(rng.UniformInt(0, 3));
    }
  }
};

class RedundancyKindTest : public ::testing::TestWithParam<RedundancyKind> {};

TEST_P(RedundancyKindTest, EmptySelectedSetReturnsRelevance) {
  CodeFixture fix;
  RedundancyOptions options;
  options.kind = GetParam();
  double j = RedundancyScore(fix.informative, fix.label, {}, options);
  EXPECT_GT(j, 0.1);
}

TEST_P(RedundancyKindTest, ExactDuplicateScoresBelowFresh) {
  CodeFixture fix;
  RedundancyOptions options;
  options.kind = GetParam();
  std::vector<std::vector<int>> selected{fix.informative};
  double j_duplicate =
      RedundancyScore(fix.duplicate, fix.label, selected, options);
  double j_fresh = RedundancyScore(fix.informative, fix.label, {}, options);
  EXPECT_LT(j_duplicate, j_fresh);
}

TEST_P(RedundancyKindTest, NoiseScoresAtMostEpsilon) {
  CodeFixture fix;
  RedundancyOptions options;
  options.kind = GetParam();
  std::vector<std::vector<int>> selected{fix.informative};
  double j = RedundancyScore(fix.noise, fix.label, selected, options);
  EXPECT_LT(j, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, RedundancyKindTest,
    ::testing::Values(RedundancyKind::kMifs, RedundancyKind::kMrmr,
                      RedundancyKind::kCife, RedundancyKind::kJmi,
                      RedundancyKind::kCmim),
    [](const auto& info) { return RedundancyKindName(info.param); });

TEST(RedundancyTest, MrmrDuplicateRejectedFreshAccepted) {
  CodeFixture fix;
  RedundancyOptions options;
  options.kind = RedundancyKind::kMrmr;
  std::vector<std::vector<int>> selected{fix.informative};
  EXPECT_LE(RedundancyScore(fix.duplicate, fix.label, selected, options), 0.0);
  EXPECT_GT(RedundancyScore(fix.fresh, fix.label, selected, options), 0.0);
}

TEST(RedundancyTest, MrmrBlindToPurelyComplementaryFeatures) {
  // The xor-structured feature has ~zero *marginal* MI with the label, so
  // MRMR (lambda = 0) cannot accept it — the very limitation that motivates
  // the conditional-MI criteria (CIFE/JMI/CMIM) in §V-D.
  CodeFixture fix;
  std::vector<std::vector<int>> selected{fix.informative};
  RedundancyOptions mrmr;
  mrmr.kind = RedundancyKind::kMrmr;
  EXPECT_LE(RedundancyScore(fix.complementary, fix.label, selected, mrmr),
            0.01);
  RedundancyOptions cmim;
  cmim.kind = RedundancyKind::kCmim;
  RedundancyOptions cife;
  cife.kind = RedundancyKind::kCife;
  // The conditional criteria score it strictly higher than MRMR does.
  EXPECT_GT(RedundancyScore(fix.complementary, fix.label, selected, cife),
            RedundancyScore(fix.complementary, fix.label, selected, mrmr));
}

TEST(RedundancyTest, ConditionalTermRewardsComplementarity) {
  // CIFE adds lambda * I(Xj;Xk|Y): a complementary feature should score
  // higher under CIFE than under MIFS with beta = 1.
  CodeFixture fix;
  std::vector<std::vector<int>> selected{fix.informative};
  RedundancyOptions cife;
  cife.kind = RedundancyKind::kCife;
  RedundancyOptions mifs;
  mifs.kind = RedundancyKind::kMifs;
  mifs.mifs_beta = 1.0;
  EXPECT_GT(RedundancyScore(fix.complementary, fix.label, selected, cife),
            RedundancyScore(fix.complementary, fix.label, selected, mifs));
}

TEST(RedundancyTest, MrmrPenaltyShrinksWithSelectedSetSize) {
  // MRMR divides the redundancy sum by |S|: adding unrelated noise
  // features to S must not increase the penalty on a candidate.
  CodeFixture fix;
  RedundancyOptions options;
  options.kind = RedundancyKind::kMrmr;
  std::vector<std::vector<int>> small{fix.informative};
  std::vector<std::vector<int>> large{fix.informative, fix.noise};
  double j_small =
      RedundancyScore(fix.duplicate, fix.label, small, options);
  double j_large =
      RedundancyScore(fix.duplicate, fix.label, large, options);
  EXPECT_GT(j_large, j_small);
}

TEST(SelectedFeatureSetTest, AddAndContains) {
  SelectedFeatureSet s;
  EXPECT_EQ(s.size(), 0u);
  s.Add("a", {0, 1});
  EXPECT_TRUE(s.Contains("a"));
  EXPECT_FALSE(s.Contains("b"));
  EXPECT_EQ(s.size(), 1u);
}

TEST(SelectNonRedundantTest, ScreensAgainstSelectedAndEachOther) {
  CodeFixture fix;
  Table t("t");
  auto to_col = [&](const std::vector<int>& codes) {
    Column c(DataType::kInt64);
    for (int v : codes) c.AppendInt64(v);
    return c;
  };
  t.AddColumn("informative", to_col(fix.informative)).Abort();
  t.AddColumn("duplicate", to_col(fix.duplicate)).Abort();
  t.AddColumn("noise", to_col(fix.noise)).Abort();
  t.AddColumn("label", to_col(fix.label)).Abort();
  auto view = FeatureView::FromTable(t, "label");
  ASSERT_TRUE(view.ok());

  SelectedFeatureSet selected;
  RedundancyOptions options;
  options.kind = RedundancyKind::kMrmr;
  auto accepted = SelectNonRedundant(*view, {0, 1, 2}, &selected, options);
  // informative accepted; duplicate redundant; noise irrelevant.
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].name, "informative");
  EXPECT_TRUE(selected.Contains("informative"));
  EXPECT_FALSE(selected.Contains("duplicate"));
}

TEST(SelectNonRedundantTest, AlreadySelectedNameSkipped) {
  CodeFixture fix;
  Table t("t");
  Column c(DataType::kInt64);
  for (int v : fix.informative) c.AppendInt64(v);
  t.AddColumn("x", std::move(c)).Abort();
  Column l(DataType::kInt64);
  for (int v : fix.label) l.AppendInt64(v);
  t.AddColumn("label", std::move(l)).Abort();
  auto view = FeatureView::FromTable(t, "label");
  SelectedFeatureSet selected;
  selected.Add("x", fix.informative);
  auto accepted =
      SelectNonRedundant(*view, {0}, &selected, RedundancyOptions{});
  EXPECT_TRUE(accepted.empty());
  EXPECT_EQ(selected.size(), 1u);
}

TEST(RedundancyTest, KindNames) {
  EXPECT_STREQ(RedundancyKindName(RedundancyKind::kMrmr), "MRMR");
  EXPECT_STREQ(RedundancyKindName(RedundancyKind::kJmi), "JMI");
}

}  // namespace
}  // namespace autofeat
