// JoinAll and JoinAll+F baselines (paper §VII-B).
//
// JoinAll joins every table reachable from the base table (BFS over the
// DRG, one canonical order — with 1:1-normalised KFK joins the result is
// order-independent up to column order; the factorial path blow-up of
// Eq. 3 is what the harness *skips*, exactly as the paper does on `school`
// and in the data-lake setting). JoinAll+F additionally applies a filter
// feature selection (select-k-best Spearman) on the single wide table.

#ifndef AUTOFEAT_BASELINES_JOIN_ALL_H_
#define AUTOFEAT_BASELINES_JOIN_ALL_H_

#include <string>

#include "baselines/augmenter.h"

namespace autofeat::obs {
class MetricsRegistry;
}  // namespace autofeat::obs

namespace autofeat::baselines {

struct JoinAllOptions {
  /// Apply the filter feature-selection stage (the "+F" variant).
  bool filter = false;
  /// Features kept by the filter.
  size_t keep_features = 50;
  /// Safety bound on joins (the harness skips infeasible configs anyway).
  size_t max_tables = 64;
  uint64_t seed = 42;
  /// Optional observability sink, shared with the baseline's join-index
  /// cache (`join_index_cache.*` counters).
  obs::MetricsRegistry* metrics = nullptr;
};

class JoinAll final : public Augmenter {
 public:
  explicit JoinAll(JoinAllOptions options = {}) : options_(options) {}

  Result<AugmenterResult> Augment(const DataLake& lake,
                                  const DatasetRelationGraph& drg,
                                  const std::string& base_table,
                                  const std::string& label_column) override;

  std::string name() const override {
    return options_.filter ? "JoinAll+F" : "JoinAll";
  }

 private:
  JoinAllOptions options_;
};

}  // namespace autofeat::baselines

#endif  // AUTOFEAT_BASELINES_JOIN_ALL_H_
