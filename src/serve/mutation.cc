#include "serve/mutation.h"

#include "util/string_utils.h"

namespace autofeat::serve {

const char* MutationKindName(LakeMutation::Kind kind) {
  switch (kind) {
    case LakeMutation::Kind::kAddTable:
      return "add";
    case LakeMutation::Kind::kAppendRows:
      return "append";
    case LakeMutation::Kind::kDropTable:
      return "drop";
  }
  return "unknown";
}

Result<LakeMutation::Kind> ParseMutationKind(const std::string& text) {
  const std::string lower = ToLower(Trim(text));
  if (lower == "add") return LakeMutation::Kind::kAddTable;
  if (lower == "append") return LakeMutation::Kind::kAppendRows;
  if (lower == "drop") return LakeMutation::Kind::kDropTable;
  return Status::InvalidArgument("unknown mutation kind: \"" + text +
                                 "\" (valid values: add, append, drop)");
}

Status ApplyMutationToLake(DataLake* lake, const LakeMutation& mutation) {
  switch (mutation.kind) {
    case LakeMutation::Kind::kAddTable:
      return lake->AddTable(mutation.payload);
    case LakeMutation::Kind::kAppendRows:
      return lake->AppendRows(mutation.table, mutation.payload);
    case LakeMutation::Kind::kDropTable:
      return lake->RemoveTable(mutation.table);
  }
  return Status::InvalidArgument("unhandled mutation kind");
}

std::string MutationSummary(const LakeMutation& mutation) {
  std::string out = MutationKindName(mutation.kind);
  out += " ";
  out += mutation.TargetTable();
  if (mutation.kind != LakeMutation::Kind::kDropTable) {
    out += " (" + std::to_string(mutation.payload.num_rows()) + " rows, " +
           std::to_string(mutation.payload.num_columns()) + " cols)";
  }
  return out;
}

bool MutationsEqual(const LakeMutation& a, const LakeMutation& b) {
  if (a.kind != b.kind || a.TargetTable() != b.TargetTable()) return false;
  if (a.kind == LakeMutation::Kind::kDropTable) return true;
  return a.payload.Equals(b.payload);
}

}  // namespace autofeat::serve
