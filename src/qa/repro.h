// Self-contained failure repros: a shrunk lake serialised as a CSV
// directory plus a MANIFEST.txt recording the seed, entry points, KFK
// metadata, the violated invariant and the mutation trace (`op` lines with
// per-op payload CSVs). A repro replays without the fuzzer:
// `lake_fuzz_cli --replay DIR` (or LoadRepro + the invariant registry).

#ifndef AUTOFEAT_QA_REPRO_H_
#define AUTOFEAT_QA_REPRO_H_

#include <string>

#include "qa/lake_fuzzer.h"
#include "util/status.h"

namespace autofeat::qa {

/// What a repro directory claims about itself (from MANIFEST.txt).
struct ReproManifest {
  uint64_t seed = 0;
  std::string base_table;
  std::string label_column;
  std::string invariant;
  std::string message;
};

/// Writes `lake` as one CSV per table plus MANIFEST.txt under `directory`
/// (created if missing). Note the usual CSV canonicalisation caveats: the
/// manifest's seed regenerates the exact original lake if byte fidelity
/// matters.
Status WriteRepro(const FuzzedLake& lake, const std::string& invariant_name,
                  const std::string& message, const std::string& directory);

/// Loads a repro directory back into a FuzzedLake (+ its manifest, if
/// `manifest` is non-null).
Result<FuzzedLake> LoadRepro(const std::string& directory,
                             ReproManifest* manifest = nullptr);

}  // namespace autofeat::qa

#endif  // AUTOFEAT_QA_REPRO_H_
