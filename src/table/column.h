// A nullable, typed, value-semantic column of data.
//
// Columns are the unit of feature manipulation throughout the library: joins
// gather them, statistics consume them, feature selection ranks them. The
// representation is a tagged union of typed vectors plus a validity bitmap,
// similar in spirit to (a simplified) Arrow array.

#ifndef AUTOFEAT_TABLE_COLUMN_H_
#define AUTOFEAT_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/data_type.h"
#include "util/status.h"

namespace autofeat {

/// \brief A typed column with per-row validity (null) information.
///
/// Invariants: exactly the vector matching type() has size() entries;
/// valid_ is either empty (all rows valid) or has size() entries.
class Column {
 public:
  /// An empty column of the given type.
  explicit Column(DataType type = DataType::kDouble) : type_(type) {}

  // -- Factories ------------------------------------------------------------

  static Column Doubles(std::vector<double> values,
                        std::vector<uint8_t> valid = {});
  static Column Int64s(std::vector<int64_t> values,
                       std::vector<uint8_t> valid = {});
  static Column Strings(std::vector<std::string> values,
                        std::vector<uint8_t> valid = {});
  /// A column of `n` nulls with the given type.
  static Column Nulls(DataType type, size_t n);

  // -- Basic accessors --------------------------------------------------------

  DataType type() const { return type_; }
  size_t size() const;
  bool empty() const { return size() == 0; }

  bool IsNull(size_t i) const {
    return !valid_.empty() && valid_[i] == 0;
  }
  /// True when no row is null (no validity mask allocated) — the
  /// precondition for the branch-free SIMD gather paths.
  bool all_valid() const { return valid_.empty(); }
  /// Raw double storage; only meaningful when type() == kDouble.
  const std::vector<double>& double_data() const { return doubles_; }
  size_t null_count() const;
  /// Fraction of null entries, 0 for an empty column.
  double null_ratio() const;

  /// Typed element access; row must be valid and of matching type
  /// (checked only by assertions in debug builds — hot path).
  double GetDouble(size_t i) const { return doubles_[i]; }
  int64_t GetInt64(size_t i) const { return int64s_[i]; }
  const std::string& GetString(size_t i) const { return strings_[i]; }

  /// Numeric value of row i: the double/int64 value as double.
  /// Must not be called on string columns or null rows.
  double NumericAt(size_t i) const {
    return type_ == DataType::kDouble ? doubles_[i]
                                      : static_cast<double>(int64s_[i]);
  }

  // -- Appending (builder-style) ----------------------------------------------

  void AppendDouble(double v);
  void AppendInt64(int64_t v);
  void AppendString(std::string v);
  void AppendNull();
  /// Appends row `i` of `other` (same type) to this column.
  void AppendFrom(const Column& other, size_t i);
  void Reserve(size_t n);

  // -- Transformations ----------------------------------------------------------

  /// Gathers rows at `indices` into a new column (duplicate indices allowed).
  Column Take(const std::vector<size_t>& indices) const;

  /// All values as doubles (int64 widened). Strings are ordinally encoded
  /// by first occurrence. Null rows map to NaN.
  std::vector<double> ToNumeric() const;

  /// Human-readable value for CSV output and debugging ("" for null).
  std::string ValueToString(size_t i) const;

  /// Join-key representation of row i. Nulls get a sentinel that never
  /// matches data. Numeric values are canonicalised so that int64 7 and
  /// double 7.0 produce the same key.
  std::string KeyAt(size_t i) const;

  /// Structural equality (type, validity and values).
  bool Equals(const Column& other) const;

  /// Approximate heap footprint in bytes. Size-based (element counts and
  /// string lengths, not container capacity), so equal content reports
  /// equal bytes regardless of construction history — which keeps the
  /// memory gauges built on it deterministic.
  size_t ApproxBytes() const;

 private:
  void EnsureValidMask();

  DataType type_;
  std::vector<double> doubles_;
  std::vector<int64_t> int64s_;
  std::vector<std::string> strings_;
  // Empty means "all valid"; otherwise 1 = valid, 0 = null.
  std::vector<uint8_t> valid_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_TABLE_COLUMN_H_
