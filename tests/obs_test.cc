// Observability layer: metric semantics, span nesting, concurrency safety,
// the JSON report's deterministic projection, and metrics-as-assertions
// against the join-index cache (hit counters as a cheap oracle for "the
// cache actually cached").

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/autofeat.h"
#include "datagen/lake_builder.h"
#include "discovery/data_lake.h"
#include "discovery/join_index_cache.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace autofeat {
namespace {

TEST(MetricsTest, CounterSemantics) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("test.count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name resolves to the same instance.
  EXPECT_EQ(registry.GetCounter("test.count"), c);
  EXPECT_EQ(registry.CounterValue("test.count"), 42u);
  // Missing metrics read as zero; kind mismatch yields nullptr, not UB.
  EXPECT_EQ(registry.CounterValue("test.never_registered"), 0u);
  EXPECT_EQ(registry.GetGauge("test.count"), nullptr);
  EXPECT_EQ(registry.GetHistogram("test.count"), nullptr);
  EXPECT_EQ(registry.num_metrics(), 1u);
}

TEST(MetricsTest, GaugeSemantics) {
  obs::MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("test.gauge");
  ASSERT_NE(g, nullptr);
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->UpdateMax(5);
  EXPECT_EQ(g->value(), 7);  // UpdateMax never lowers.
  g->UpdateMax(9);
  EXPECT_EQ(g->value(), 9);
  EXPECT_EQ(registry.GaugeValue("test.gauge"), 9);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketOf(7), 3u);
  EXPECT_EQ(obs::Histogram::BucketOf(8), 4u);
  EXPECT_EQ(obs::Histogram::BucketOf(UINT64_MAX), 64u);

  obs::Histogram h;
  EXPECT_EQ(h.min(), 0u);  // Empty histogram reads min 0, not UINT64_MAX.
  for (uint64_t v : {0, 1, 2, 3}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 0u);
}

TEST(MetricsTest, NullRegistryPropagates) {
  // The disabled path: null registry -> null handles -> no-op updates.
  obs::Counter* c = obs::GetCounter(nullptr, "x");
  obs::Gauge* g = obs::GetGauge(nullptr, "y");
  obs::Histogram* h = obs::GetHistogram(nullptr, "z");
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(g, nullptr);
  EXPECT_EQ(h, nullptr);
  obs::Increment(c);
  obs::Set(g, 1);
  obs::UpdateMax(g, 2);
  obs::Record(h, 3);  // Must not crash.
}

TEST(MetricsTest, ConcurrentIncrementsAreExact) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("concurrent.count");
  obs::Histogram* hist = registry.GetHistogram("concurrent.hist");
  obs::Gauge* peak = registry.GetGauge("concurrent.peak");
  constexpr size_t kTasks = 64;
  constexpr size_t kPerTask = 1000;

  ThreadPool pool(8);
  pool.set_metrics(&registry);
  ParallelFor(&pool, 0, kTasks, /*grain=*/1, [&](size_t t) {
    for (size_t i = 0; i < kPerTask; ++i) {
      counter->Increment();
      hist->Record(t);
      peak->UpdateMax(static_cast<int64_t>(t));
    }
  });

  EXPECT_EQ(counter->value(), kTasks * kPerTask);
  EXPECT_EQ(hist->count(), kTasks * kPerTask);
  // Sum of 1000 * (0 + 1 + ... + 63).
  EXPECT_EQ(hist->sum(), kPerTask * (kTasks * (kTasks - 1)) / 2);
  EXPECT_EQ(hist->min(), 0u);
  EXPECT_EQ(hist->max(), kTasks - 1);
  EXPECT_EQ(peak->value(), static_cast<int64_t>(kTasks - 1));
  // The pool's own instrumentation saw every submitted task.
  EXPECT_GT(registry.CounterValue("thread_pool.tasks_submitted"), 0u);
}

TEST(TracerTest, SpanNestingAndParents) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan outer(&tracer, "outer");
    {
      obs::ScopedSpan inner(&tracer, "inner");
    }
    obs::ScopedSpan sibling(&tracer, "sibling");
  }
  obs::ScopedSpan root2(&tracer, "root2");

  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 1u);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent, 1u);  // Sibling of inner, child of outer.
  EXPECT_EQ(spans[3].name, "root2");
  EXPECT_EQ(spans[3].parent, 0u);
  // Closed spans have an end; root2 is still open here.
  EXPECT_GE(spans[0].end_seconds, spans[0].start_seconds);
  EXPECT_LT(spans[3].end_seconds, 0.0);
  // All spans opened on one thread share one dense thread id.
  EXPECT_EQ(spans[0].thread, spans[3].thread);
}

TEST(TracerTest, NullTracerIsNoop) {
  obs::ScopedSpan span(nullptr, "nothing");  // Must not crash.
}

TEST(ReportTest, GoldenDeterministicProjection) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(3);
  registry.GetGauge("g.peak")->Set(7);
  obs::Histogram* h = registry.GetHistogram("h.vals");
  for (uint64_t v : {0, 1, 2, 3}) h->Record(v);
  // A deterministic quantile series: 100 lands in the bucket whose upper
  // bound is 101, documenting the bounded-error contract in the golden.
  registry.GetQuantile("q.lat", /*deterministic=*/true)->Record(100);
  // Non-deterministic metrics exist but are excluded from the projection.
  registry.GetCounter("thread_pool.tasks_executed", /*deterministic=*/false)
      ->Increment(99);
  registry.GetQuantile("serve.query_latency_ns")->Record(12345);

  obs::Tracer tracer;
  {
    obs::ScopedSpan outer(&tracer, "outer");
    obs::ScopedSpan inner(&tracer, "inner");
  }

  obs::ReportOptions projection;
  projection.include_timings = false;
  projection.include_volatile = false;
  projection.include_digest = false;
  std::string got = obs::JsonReport(registry, &tracer, projection);
  std::string expected =
      "{\n"
      "  \"schema\": \"autofeat.obs.v1\",\n"
      "  \"counters\": {\n"
      "    \"a.count\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"g.peak\": 7\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"h.vals\": {\"count\": 4, \"sum\": 6, \"min\": 0, \"max\": 3, "
      "\"buckets\": [[0, 1], [1, 1], [2, 2]]}\n"
      "  },\n"
      "  \"quantiles\": {\n"
      "    \"q.lat\": {\"count\": 1, \"sum\": 100, \"min\": 100, "
      "\"max\": 100, \"p50\": 101, \"p90\": 101, \"p99\": 101, "
      "\"p999\": 101}\n"
      "  },\n"
      "  \"spans\": [\n"
      "    {\"id\": 1, \"parent\": 0, \"name\": \"outer\"},\n"
      "    {\"id\": 2, \"parent\": 1, \"name\": \"inner\"}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(obs::JsonIsValid(got));
}

TEST(ReportTest, DigestIgnoresVolatileFields) {
  // Two registries computing the same deterministic work but different
  // scheduling-dependent stats must share a digest.
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.GetCounter("work.done")->Increment(10);
  b.GetCounter("work.done")->Increment(10);
  a.GetCounter("thread_pool.tasks_executed", false)->Increment(3);
  b.GetCounter("thread_pool.tasks_executed", false)->Increment(700);
  b.GetCounter("thread_pool.parallel_for.calls", false)->Increment(1);

  EXPECT_EQ(obs::DeterministicDigest(a, nullptr),
            obs::DeterministicDigest(b, nullptr));

  // A deterministic difference must change the digest.
  b.GetCounter("work.done")->Increment(1);
  EXPECT_NE(obs::DeterministicDigest(a, nullptr),
            obs::DeterministicDigest(b, nullptr));
}

TEST(ReportTest, FullReportIsValidJsonWithHostileNames) {
  obs::MetricsRegistry registry;
  registry.GetCounter("evil \"quoted\"\\name\n\twith\x01" "controls")
      ->Increment(1);
  obs::Tracer tracer;
  { obs::ScopedSpan span(&tracer, "span \"with\" \\ hostile\nname"); }
  std::string report = obs::JsonReport(registry, &tracer);
  EXPECT_TRUE(obs::JsonIsValid(report)) << report;
  // The digest is embedded in the default report.
  EXPECT_NE(report.find("\"digest\": \"fnv1a:"), std::string::npos);
}

TEST(ReportTest, JsonEscapeRoundTripsHostileStrings) {
  std::string hostile = "a\"b\\c\nd\re\tf\bg\fh\x01i";
  std::string doc = "{\"k\": \"" + JsonEscape(hostile) + "\"}";
  EXPECT_TRUE(obs::JsonIsValid(doc)) << doc;
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("q\"q"), "q\\\"q");
  EXPECT_EQ(JsonEscape("b\\b"), "b\\\\b");
  EXPECT_EQ(JsonEscape("\x01"), "\\u0001");
}

TEST(ReportTest, JsonIsValidRejectsMalformedDocuments) {
  EXPECT_TRUE(obs::JsonIsValid("{}"));
  EXPECT_TRUE(obs::JsonIsValid("[1, 2.5, -3e2, \"x\", true, false, null]"));
  EXPECT_TRUE(obs::JsonIsValid("{\"a\": {\"b\": []}}"));
  EXPECT_FALSE(obs::JsonIsValid(""));
  EXPECT_FALSE(obs::JsonIsValid("{"));
  EXPECT_FALSE(obs::JsonIsValid("{\"a\": }"));
  EXPECT_FALSE(obs::JsonIsValid("{\"a\": 1,}"));
  EXPECT_FALSE(obs::JsonIsValid("{\"a\": 1} extra"));
  EXPECT_FALSE(obs::JsonIsValid("\"unterminated"));
  EXPECT_FALSE(obs::JsonIsValid("\"bad \x01 control\""));
  EXPECT_FALSE(obs::JsonIsValid("\"bad \\q escape\""));
  EXPECT_FALSE(obs::JsonIsValid("01"));
}

// --- Metrics as assertions: the join-index cache actually caches. ---

datagen::BuiltLake SmallLake() {
  datagen::LakeSpec spec;
  spec.rows = 400;
  spec.joinable_tables = 6;
  spec.total_features = 30;
  return datagen::BuildLake(spec);
}

TEST(MetricsAssertionsTest, EngineDisabledByDefault) {
  datagen::BuiltLake built = SmallLake();
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok());
  AutoFeatConfig config;
  AutoFeat engine(&built.lake, &*drg, config);
  EXPECT_EQ(engine.metrics(), nullptr);
  EXPECT_EQ(engine.tracer(), nullptr);
}

TEST(MetricsAssertionsTest, JoinIndexCacheHitsOnRepeatedEdges) {
  datagen::BuiltLake built = SmallLake();
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok());

  AutoFeatConfig config;
  config.sample_rows = 200;
  config.metrics_enabled = true;
  AutoFeat engine(&built.lake, &*drg, config);
  ASSERT_NE(engine.metrics(), nullptr);
  ASSERT_NE(engine.tracer(), nullptr);

  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->ranked.size(), 0u);

  const obs::MetricsRegistry& m = *engine.metrics();
  // Prewarm built each reachable (table, key) exactly once; every candidate
  // evaluation afterwards was a hit.
  uint64_t requests = m.CounterValue("join_index_cache.requests");
  uint64_t builds = m.CounterValue("join_index_cache.builds");
  uint64_t hits = m.CounterValue("join_index_cache.hits");
  EXPECT_GT(hits, 0u);
  EXPECT_GT(builds, 0u);
  EXPECT_EQ(requests, builds + hits);
  // Each built entry recorded its interned-key cardinality.
  EXPECT_EQ(m.HistogramCount("join_index_cache.key_cardinality"), builds);
  // Discovery counters moved and reconcile with the result.
  EXPECT_GT(m.CounterValue("discovery.candidates_scored"), 0u);
  EXPECT_EQ(m.CounterValue("discovery.ranked_paths"), result->ranked.size());
  EXPECT_EQ(m.CounterValue("discovery.pruned_quality"),
            result->paths_pruned_quality);
  EXPECT_GT(m.HistogramCount("discovery.frontier_size"), 0u);
  // The span tree contains the discovery phases.
  std::string report = obs::JsonReport(m, engine.tracer());
  EXPECT_TRUE(obs::JsonIsValid(report));
  EXPECT_NE(report.find("\"discover\""), std::string::npos);
  EXPECT_NE(report.find("\"discover.bfs\""), std::string::npos);
}

TEST(MetricsAssertionsTest, PrewarmMakesSubsequentBuildsZero) {
  datagen::BuiltLake built = SmallLake();
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok());

  obs::MetricsRegistry registry;
  JoinIndexCache cache(&built.lake, /*seed=*/42, &registry);
  cache.Prewarm(*drg, /*pool=*/nullptr);
  uint64_t builds_after_prewarm =
      registry.CounterValue("join_index_cache.builds");
  EXPECT_GT(builds_after_prewarm, 0u);
  EXPECT_EQ(registry.CounterValue("join_index_cache.hits"), 0u);

  // Every edge target the DRG knows is already interned: requesting them
  // again reports zero further builds, only hits.
  for (size_t a = 0; a < drg->num_nodes(); ++a) {
    for (size_t b = 0; b < drg->num_nodes(); ++b) {
      for (const JoinStep& e : drg->EdgesBetween(a, b)) {
        auto index = cache.GetOrBuild(drg->NodeName(e.to_node), e.to_column);
        ASSERT_TRUE(index.ok());
      }
    }
  }
  EXPECT_EQ(registry.CounterValue("join_index_cache.builds"),
            builds_after_prewarm);
  EXPECT_GT(registry.CounterValue("join_index_cache.hits"), 0u);
}

TEST(MetricsAssertionsTest, DigestIdenticalAcrossThreadCounts) {
  datagen::BuiltLake built = SmallLake();
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok());

  std::string expected;
  for (size_t threads : {1u, 4u}) {
    AutoFeatConfig config;
    config.sample_rows = 200;
    config.num_threads = threads;
    config.metrics_enabled = true;
    AutoFeat engine(&built.lake, &*drg, config);
    auto result =
        engine.DiscoverFeatures(built.base_table, built.label_column);
    ASSERT_TRUE(result.ok());
    std::string digest =
        obs::DeterministicDigest(*engine.metrics(), engine.tracer());
    if (threads == 1) {
      expected = digest;
    } else {
      EXPECT_EQ(digest, expected)
          << "metrics digest diverged at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace autofeat
