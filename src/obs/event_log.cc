#include "obs/event_log.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_utils.h"

namespace autofeat::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

EventField::EventField(std::string k, uint64_t v)
    : key(std::move(k)), rendered(std::to_string(v)) {}
EventField::EventField(std::string k, int64_t v)
    : key(std::move(k)), rendered(std::to_string(v)) {}
EventField::EventField(std::string k, double v)
    : key(std::move(k)), rendered(FormatDouble(v)) {}
EventField::EventField(std::string k, bool v)
    : key(std::move(k)), rendered(v ? "true" : "false") {}
EventField::EventField(std::string k, const char* v)
    : key(std::move(k)), rendered('"' + JsonEscape(v) + '"') {}
EventField::EventField(std::string k, const std::string& v)
    : key(std::move(k)), rendered('"' + JsonEscape(v) + '"') {}

uint64_t EventLog::Append(const std::string& type,
                          std::initializer_list<EventField> fields) {
  double ts = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            origin_)
                  .count();
  std::lock_guard<std::mutex> lock(mutex_);
  Record rec;
  rec.seq = events_.size() + 1;
  rec.ts_s = ts;
  rec.type = type;
  rec.fields.assign(fields.begin(), fields.end());
  events_.push_back(std::move(rec));
  return events_.back().seq;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

bool EventLog::IsTimestampKey(const std::string& key) {
  return EndsWith(key, "_s") || EndsWith(key, "_ms") || EndsWith(key, "_us") ||
         EndsWith(key, "_ns");
}

std::string EventLog::Jsonl(bool include_timestamps) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const Record& rec : events_) {
    out << "{\"seq\": " << rec.seq;
    if (include_timestamps) out << ", \"ts_s\": " << FormatDouble(rec.ts_s);
    out << ", \"type\": \"" << JsonEscape(rec.type) << '"';
    for (const EventField& f : rec.fields) {
      if (!include_timestamps && IsTimestampKey(f.key)) continue;
      out << ", \"" << JsonEscape(f.key) << "\": " << f.rendered;
    }
    out << "}\n";
  }
  return out.str();
}

bool EventLog::WriteFile(const std::string& path,
                         bool include_timestamps) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << Jsonl(include_timestamps);
  return static_cast<bool>(out);
}

}  // namespace autofeat::obs
