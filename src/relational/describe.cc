#include "relational/describe.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace autofeat {

ColumnProfile ProfileColumn(const std::string& name, const Column& column,
                            size_t distinct_cap) {
  ColumnProfile profile;
  profile.name = name;
  profile.type = column.type();
  profile.rows = column.size();
  profile.nulls = column.null_count();

  std::unordered_set<std::string> distinct;
  bool numeric = IsNumeric(column.type());
  bool first = true;
  double sum = 0.0;
  size_t non_null = 0;
  for (size_t i = 0; i < column.size(); ++i) {
    if (column.IsNull(i)) continue;
    ++non_null;
    if (distinct.size() < distinct_cap) {
      distinct.insert(column.KeyAt(i));
    } else {
      profile.distinct_capped = true;
    }
    if (numeric) {
      double v = column.NumericAt(i);
      sum += v;
      if (first) {
        profile.min = profile.max = v;
        first = false;
      } else {
        profile.min = std::min(profile.min, v);
        profile.max = std::max(profile.max, v);
      }
    }
  }
  profile.distinct = distinct.size();
  if (numeric && non_null > 0) {
    profile.mean = sum / static_cast<double>(non_null);
  }
  return profile;
}

std::vector<ColumnProfile> DescribeTable(const Table& table,
                                         size_t distinct_cap) {
  std::vector<ColumnProfile> profiles;
  profiles.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    profiles.push_back(ProfileColumn(table.schema().field(c).name,
                                     table.column(c), distinct_cap));
  }
  return profiles;
}

std::string FormatTableDescription(const Table& table) {
  std::string out = table.name() + ": " + std::to_string(table.num_rows()) +
                    " rows x " + std::to_string(table.num_columns()) +
                    " columns\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %-7s %8s %9s %11s %11s %11s\n",
                "column", "type", "null%", "distinct", "min", "mean", "max");
  out += line;
  for (const auto& p : DescribeTable(table)) {
    if (IsNumeric(p.type)) {
      std::snprintf(line, sizeof(line),
                    "%-24s %-7s %7.1f%% %8zu%s %11.4g %11.4g %11.4g%s\n",
                    p.name.c_str(), DataTypeName(p.type),
                    100.0 * p.null_ratio(), p.distinct,
                    p.distinct_capped ? "+" : "", p.min, p.mean, p.max,
                    p.LooksLikeKey() ? "  [key?]" : "");
    } else {
      std::snprintf(line, sizeof(line), "%-24s %-7s %7.1f%% %8zu%s%s\n",
                    p.name.c_str(), DataTypeName(p.type),
                    100.0 * p.null_ratio(), p.distinct,
                    p.distinct_capped ? "+" : "",
                    p.LooksLikeKey() ? "  [key?]" : "");
    }
    out += line;
  }
  return out;
}

}  // namespace autofeat
