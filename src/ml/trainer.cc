#include "ml/trainer.h"

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "relational/sampling.h"
#include "util/timer.h"

namespace autofeat::ml {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLightGbm: return "LightGBM-like";
    case ModelKind::kRandomForest: return "RandomForest";
    case ModelKind::kExtraTrees: return "ExtraTrees";
    case ModelKind::kXgBoost: return "XGBoost-like";
    case ModelKind::kKnn: return "KNN";
    case ModelKind::kLogRegL1: return "LogRegL1";
  }
  return "invalid";
}

std::unique_ptr<Classifier> MakeClassifier(ModelKind kind, uint64_t seed) {
  switch (kind) {
    case ModelKind::kLightGbm:
      return std::make_unique<Gbdt>(Gbdt::LightGbmLike(seed));
    case ModelKind::kRandomForest:
      return std::make_unique<Forest>(Forest::RandomForest(40, seed));
    case ModelKind::kExtraTrees:
      return std::make_unique<Forest>(Forest::ExtraTrees(40, seed));
    case ModelKind::kXgBoost:
      return std::make_unique<Gbdt>(Gbdt::XgBoostLike(seed));
    case ModelKind::kKnn:
      return std::make_unique<Knn>();
    case ModelKind::kLogRegL1:
      return std::make_unique<LogisticRegressionL1>();
  }
  return nullptr;
}

std::vector<ModelKind> TreeModelKinds() {
  return {ModelKind::kLightGbm, ModelKind::kRandomForest,
          ModelKind::kExtraTrees, ModelKind::kXgBoost};
}

std::vector<ModelKind> NonTreeModelKinds() {
  return {ModelKind::kKnn, ModelKind::kLogRegL1};
}

Result<EvalResult> TrainAndEvaluate(const Table& table,
                                    const std::string& label_column,
                                    ModelKind kind,
                                    const TrainerOptions& options) {
  Rng rng(options.seed);
  AF_ASSIGN_OR_RETURN(
      TrainTestIndices split,
      TrainTestSplit(table, options.test_fraction, label_column, &rng));
  AF_ASSIGN_OR_RETURN(Dataset full, Dataset::FromTable(table, label_column));
  Dataset train = full.TakeRows(split.train);
  Dataset test = full.TakeRows(split.test);

  std::unique_ptr<Classifier> model = MakeClassifier(kind, options.seed);
  if (model == nullptr) return Status::InvalidArgument("unknown model kind");

  EvalResult result;
  result.model_name = ModelKindName(kind);
  Timer timer;
  AF_RETURN_NOT_OK(model->Fit(train));
  result.train_seconds = timer.ElapsedSeconds();

  std::vector<double> probabilities = model->PredictProbaAll(test);
  result.accuracy = Accuracy(test.labels(), probabilities);
  result.auc = RocAuc(test.labels(), probabilities);
  return result;
}

Result<double> AverageAccuracy(const Table& table,
                               const std::string& label_column,
                               const std::vector<ModelKind>& kinds,
                               const TrainerOptions& options) {
  if (kinds.empty()) return Status::InvalidArgument("no model kinds given");
  double sum = 0.0;
  for (ModelKind kind : kinds) {
    AF_ASSIGN_OR_RETURN(EvalResult r,
                        TrainAndEvaluate(table, label_column, kind, options));
    sum += r.accuracy;
  }
  return sum / static_cast<double>(kinds.size());
}

}  // namespace autofeat::ml
