#include "fs/feature_view.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/discretize.h"

namespace autofeat {
namespace {

Table MakeTable() {
  Table t("t");
  t.AddColumn("id", Column::Int64s({0, 1, 2, 3})).Abort();
  t.AddColumn("num", Column::Doubles({0.5, 1.5, 2.5, 3.5})).Abort();
  t.AddColumn("cat", Column::Strings({"a", "b", "a", "c"})).Abort();
  t.AddColumn("label", Column::Int64s({0, 1, 0, 1})).Abort();
  return t;
}

TEST(FeatureViewTest, DefaultsToAllNonLabelColumns) {
  auto v = FeatureView::FromTable(MakeTable(), "label");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->num_features(), 3u);
  EXPECT_EQ(v->names(), (std::vector<std::string>{"id", "num", "cat"}));
  EXPECT_EQ(v->num_rows(), 4u);
}

TEST(FeatureViewTest, ExplicitSubset) {
  auto v = FeatureView::FromTable(MakeTable(), "label", {"cat"});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->num_features(), 1u);
  EXPECT_EQ(*v->FeatureIndex("cat"), 0u);
  EXPECT_FALSE(v->FeatureIndex("num").has_value());
}

TEST(FeatureViewTest, LabelAsFeatureIsError) {
  EXPECT_FALSE(FeatureView::FromTable(MakeTable(), "label", {"label"}).ok());
}

TEST(FeatureViewTest, MissingLabelIsError) {
  EXPECT_FALSE(FeatureView::FromTable(MakeTable(), "nope").ok());
}

TEST(FeatureViewTest, LabelCodesAreBinaryHere) {
  auto v = FeatureView::FromTable(MakeTable(), "label");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->label_codes(), (std::vector<int>{0, 1, 0, 1}));
}

TEST(FeatureViewTest, CategoricalCodesKeepIdentity) {
  auto v = FeatureView::FromTable(MakeTable(), "label");
  ASSERT_TRUE(v.ok());
  size_t cat = *v->FeatureIndex("cat");
  EXPECT_EQ(v->codes(cat), (std::vector<int>{0, 1, 0, 2}));
}

TEST(FeatureViewTest, NullsBecomeMissingCodes) {
  Table t("t");
  t.AddColumn("x", Column::Doubles({1, 2, 3}, {1, 0, 1})).Abort();
  t.AddColumn("label", Column::Int64s({0, 1, 0})).Abort();
  auto v = FeatureView::FromTable(t, "label");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->codes(0)[1], kMissingBin);
  EXPECT_TRUE(std::isnan(v->numeric(0)[1]));
}

TEST(FeatureViewTest, HighCardinalityNumericIsBinned) {
  Table t("t");
  Column c(DataType::kDouble);
  Column label(DataType::kInt64);
  for (int i = 0; i < 200; ++i) {
    c.AppendDouble(i * 0.37);
    label.AppendInt64(i % 2);
  }
  t.AddColumn("x", std::move(c)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  auto v = FeatureView::FromTable(t, "label");
  ASSERT_TRUE(v.ok());
  EXPECT_LE(DistinctCodeCount(v->codes(0)), 10u);
}

}  // namespace
}  // namespace autofeat
