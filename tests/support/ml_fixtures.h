// Shared fixtures for the ML model tests: synthetic datasets with known
// learnable structure. (Moved from tests/ml_testing.h into the shared
// tests/support/ library.)

#ifndef AUTOFEAT_TESTS_SUPPORT_ML_FIXTURES_H_
#define AUTOFEAT_TESTS_SUPPORT_ML_FIXTURES_H_

#include "ml/dataset.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace autofeat::ml {

// Linearly separable blobs: label 1 around (+d, +d), label 0 around
// (-d, -d), plus one noise feature.
inline Dataset MakeBlobs(size_t n, double separation, uint64_t seed) {
  Rng rng(seed);
  Table t("blobs");
  Column f0(DataType::kDouble), f1(DataType::kDouble),
      noise(DataType::kDouble), label(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    int y = static_cast<int>(i % 2);
    double mean = y == 1 ? separation : -separation;
    f0.AppendDouble(rng.Normal(mean, 1));
    f1.AppendDouble(rng.Normal(mean, 1));
    noise.AppendDouble(rng.Normal(0, 1));
    label.AppendInt64(y);
  }
  t.AddColumn("f0", std::move(f0)).Abort();
  t.AddColumn("f1", std::move(f1)).Abort();
  t.AddColumn("noise", std::move(noise)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  return Dataset::FromTable(t, "label").MoveValue();
}

// XOR data: not linearly separable, solvable by depth >= 2 trees.
inline Dataset MakeXor(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t("xor");
  Column f0(DataType::kDouble), f1(DataType::kDouble),
      label(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    double b = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    f0.AppendDouble(a + rng.Normal(0, 0.2));
    f1.AppendDouble(b + rng.Normal(0, 0.2));
    label.AppendInt64((a > 0) != (b > 0) ? 1 : 0);
  }
  t.AddColumn("f0", std::move(f0)).Abort();
  t.AddColumn("f1", std::move(f1)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  return Dataset::FromTable(t, "label").MoveValue();
}

// Holdout accuracy of a fitted classifier.
template <typename Model>
double HoldoutAccuracy(Model& model, const Dataset& train,
                       const Dataset& test) {
  model.Fit(train).Abort("fit");
  return Accuracy(test.labels(), model.PredictProbaAll(test));
}

}  // namespace autofeat::ml

#endif  // AUTOFEAT_TESTS_SUPPORT_ML_FIXTURES_H_
