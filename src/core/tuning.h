// Dynamic hyper-parameter tuning — the paper's first future-work item
// ("we plan to explore dynamic hyper-parameter tuning, allowing the
// algorithm to adapt to different data landscapes").
//
// Grid-searches the completeness threshold tau and the feature budget
// kappa on a (stratified sample of the) lake, scoring each configuration
// by the end accuracy of the augmentation pipeline with a cheap evaluation
// model, and returns the best configuration for the full run.

#ifndef AUTOFEAT_CORE_TUNING_H_
#define AUTOFEAT_CORE_TUNING_H_

#include <string>
#include <vector>

#include "core/autofeat.h"

namespace autofeat {

struct TuningOptions {
  /// Grids to sweep. Defaults follow the paper's recommended regions.
  std::vector<double> tau_grid = {0.5, 0.65, 0.8, 0.95};
  std::vector<size_t> kappa_grid = {5, 10, 15};
  /// Evaluation model used to score configurations (cheap by default).
  ml::ModelKind model = ml::ModelKind::kRandomForest;
  /// Row sample used during the sweep (0 = all rows).
  size_t sample_rows = 1000;
  uint64_t seed = 42;
};

struct TuningTrial {
  double tau = 0.0;
  size_t kappa = 0;
  double accuracy = 0.0;
  double seconds = 0.0;
  bool produced_paths = false;
};

struct TuningResult {
  /// The base configuration with tau/kappa replaced by the winners.
  AutoFeatConfig best_config;
  TuningTrial best_trial;
  /// Every evaluated configuration, in sweep order.
  std::vector<TuningTrial> trials;
};

/// Sweeps options.tau_grid x options.kappa_grid over the lake, starting
/// from `base_config` (its other knobs are kept). Ties favour the smaller
/// kappa, then the larger tau (cheaper, stricter configurations).
Result<TuningResult> TuneHyperParameters(const DataLake& lake,
                                         const DatasetRelationGraph& drg,
                                         const std::string& base_table,
                                         const std::string& label_column,
                                         const AutoFeatConfig& base_config,
                                         const TuningOptions& options = {});

}  // namespace autofeat

#endif  // AUTOFEAT_CORE_TUNING_H_
