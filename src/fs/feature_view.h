// FeatureView: a table prepared for feature selection.
//
// Feature-selection metrics need two representations of each feature: raw
// numeric values (correlation metrics) and discretised codes (information-
// theoretic metrics). A FeatureView computes both once per table so repeated
// metric evaluations are cheap.

#ifndef AUTOFEAT_FS_FEATURE_VIEW_H_
#define AUTOFEAT_FS_FEATURE_VIEW_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "table/table.h"
#include "util/status.h"

namespace autofeat {

/// \brief Numeric + discretised representations of a table's features and
/// its label column.
class FeatureView {
 public:
  /// Builds a view over `feature_names` (all columns except `label_column`
  /// if empty). String features are ordinally encoded; continuous numeric
  /// features are equal-frequency discretised with DefaultBinCount; discrete
  /// numerics keep their value identity.
  static Result<FeatureView> FromTable(
      const Table& table, const std::string& label_column,
      std::vector<std::string> feature_names = {});

  /// Builds a view directly from numeric feature vectors plus a prepared
  /// label — the late-materialization path: callers that already hold
  /// gathered numeric views of joined columns (relational/join_index.h)
  /// skip the Table round-trip entirely. Discretisation matches FromTable,
  /// so the view is identical to FromTable over the materialised join.
  /// `label_codes` must be CodesFromValues(label_numeric).
  static Result<FeatureView> FromColumns(std::vector<std::string> names,
                                         std::vector<std::vector<double>> numeric,
                                         std::vector<double> label_numeric,
                                         std::vector<int> label_codes);

  size_t num_features() const { return names_.size(); }
  size_t num_rows() const { return label_codes_.size(); }

  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(size_t f) const { return names_[f]; }

  /// Raw numeric values of feature f (NaN = missing).
  const std::vector<double>& numeric(size_t f) const { return numeric_[f]; }
  /// Discretised codes of feature f (kMissingBin = missing).
  const std::vector<int>& codes(size_t f) const { return codes_[f]; }

  const std::vector<int>& label_codes() const { return label_codes_; }
  const std::vector<double>& label_numeric() const { return label_numeric_; }

  /// Index of a feature by name, if present in the view.
  std::optional<size_t> FeatureIndex(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::vector<double>> numeric_;
  std::vector<std::vector<int>> codes_;
  std::vector<int> label_codes_;
  std::vector<double> label_numeric_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_FS_FEATURE_VIEW_H_
