// Smoke tests of the benchmark harness helpers (bench/harness.h): the
// figure binaries build on these, so their contracts deserve coverage too.

#include "../bench/harness.h"

#include <gtest/gtest.h>

namespace autofeat::benchx {
namespace {

TEST(HarnessTest, ScaledSpecCapsQuickMode) {
  // The test binary runs without AUTOFEAT_BENCH_MODE=full.
  ASSERT_FALSE(FullMode());
  auto spec = ScaledSpec(*datagen::FindDataset("covertype"));
  EXPECT_LE(spec.rows, 2000u);
  EXPECT_LE(spec.total_features, 120u);
}

TEST(HarnessTest, TreeModelsNonEmpty) {
  auto models = BenchTreeModels();
  EXPECT_GE(models.size(), 2u);
}

TEST(HarnessTest, SettingDrgBuildsBothWays) {
  auto spec = ScaledSpec(*datagen::FindDataset("credit"));
  auto built = datagen::BuildPaperLake(spec, 1);
  auto kfk = BuildSettingDrg(built, Setting::kBenchmark);
  auto lake = BuildSettingDrg(built, Setting::kDataLake);
  ASSERT_TRUE(kfk.ok());
  ASSERT_TRUE(lake.ok());
  EXPECT_EQ(kfk->num_edges(), spec.joinable_tables);
  EXPECT_GE(lake->num_edges(), kfk->num_edges());
  EXPECT_STREQ(SettingName(Setting::kBenchmark), "benchmark");
  EXPECT_STREQ(SettingName(Setting::kDataLake), "data lake");
}

TEST(HarnessTest, MethodLineup) {
  auto with_joinall = MakeMethods(true);
  auto without = MakeMethods(false);
  EXPECT_EQ(with_joinall.size(), 6u);
  EXPECT_EQ(without.size(), 4u);
  EXPECT_EQ(with_joinall[0]->name(), "BASE");
  EXPECT_EQ(with_joinall[1]->name(), "AutoFeat");
  EXPECT_EQ(with_joinall[4]->name(), "JoinAll");
  EXPECT_EQ(with_joinall[5]->name(), "JoinAll+F");
}

TEST(HarnessTest, RunMethodProducesSaneRow) {
  auto spec = ScaledSpec(*datagen::FindDataset("credit"));
  spec.rows = 500;  // Keep the smoke test fast.
  auto built = datagen::BuildPaperLake(spec, 2);
  auto drg = BuildSettingDrg(built, Setting::kBenchmark);
  ASSERT_TRUE(drg.ok());
  baselines::BaseMethod base;
  auto row = RunMethod(&base, built, *drg, {ml::ModelKind::kKnn});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->method, "BASE");
  EXPECT_GT(row->accuracy, 0.0);
  EXPECT_EQ(row->tables_joined, 0u);
}

}  // namespace
}  // namespace autofeat::benchx
