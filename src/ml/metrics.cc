#include "ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace autofeat::ml {

double Accuracy(const std::vector<int>& labels,
                const std::vector<double>& probabilities) {
  assert(labels.size() == probabilities.size());
  if (labels.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    int pred = probabilities[i] >= 0.5 ? 1 : 0;
    correct += (pred == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double LogLoss(const std::vector<int>& labels,
               const std::vector<double>& probabilities) {
  assert(labels.size() == probabilities.size());
  if (labels.empty()) return 0.0;
  double loss = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    double p = std::clamp(probabilities[i], 1e-12, 1.0 - 1e-12);
    loss -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return loss / static_cast<double>(labels.size());
}

double BrierScore(const std::vector<int>& labels,
                  const std::vector<double>& probabilities) {
  assert(labels.size() == probabilities.size());
  if (labels.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    double d = probabilities[i] - static_cast<double>(labels[i]);
    sum += d * d;
  }
  return sum / static_cast<double>(labels.size());
}

double RocAuc(const std::vector<int>& labels,
              const std::vector<double>& probabilities) {
  assert(labels.size() == probabilities.size());
  size_t n = labels.size();
  size_t positives = 0;
  for (int y : labels) positives += (y == 1);
  size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Rank-sum (Mann-Whitney U) formulation with average ranks for ties.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return probabilities[a] < probabilities[b];
  });
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n &&
           probabilities[order[j + 1]] == probabilities[order[i]]) {
      ++j;
    }
    double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2;
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] == 1) rank_sum_pos += avg_rank;
    }
    i = j + 1;
  }
  double u = rank_sum_pos - static_cast<double>(positives) *
                                (static_cast<double>(positives) + 1) / 2;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

}  // namespace autofeat::ml
