// Portable SIMD kernels for the scoring hot paths.
//
// One compile-time backend is selected for the whole build (see the
// AUTOFEAT_SIMD CMake option): AVX2, SSE2, NEON, or the portable scalar
// fallback. Every vectorised kernel ships with a `*Scalar` / `*Reference`
// twin that states the exact semantics in plain code; the differential test
// suites (tests/simd_test.cc, tests/kernels_test.cc) hold the two sides
// together — bit-exact for the integer kernels (counting, hashing, gather),
// bounded-ULP for the floating-point entropy reduction.
//
// Dispatch matrix (which kernels are actually vectorised per backend):
//
//   kernel                     AVX2  SSE2  NEON  scalar
//   LogBatch / SumPLogP         4x    2x    2x     —
//   CountPresent/JointPresent   8x     —     —     —
//   MinMaxPresent (+Pair)       8x     —     —     —
//   MinHashUpdate               4x     —     —     —
//   GatherDoublesByRow          4x     —     —     —
//   CountEqualU32/CountNonZero  8x     —     —     —
//   AccumulateGh          (cache-conscious unrolled form on all backends)
//
// A "—" cell runs the scalar form; results stay correct, only the speed
// differs. SSE2 lacks the integer ISA the counting/hashing kernels need
// (mullo_epi32, cmpgt_epi64, gathers), and on NEON a 64-bit multiply has no
// vector form, so those backends vectorise only the entropy reduction — the
// kernel the scoring loop spends most of its time in.
//
// Determinism: integer kernels are bit-identical across all backends (the
// MinHash kernel feeds the DRG candidate list, which must not depend on the
// build's ISA). The entropy reduction is deterministic for a given build but
// may differ across backends in the last ulp (lane-order of the summation);
// all consumers compare entropies through epsilon tolerances.
//
// Domain note: the vector log expects positive *normal* doubles. Its only
// in-tree caller feeds probabilities c/n with c >= 1, which are >= 1/n and
// far above the subnormal range for any realistic row count.

#ifndef AUTOFEAT_UTIL_SIMD_H_
#define AUTOFEAT_UTIL_SIMD_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "util/rng.h"

#if defined(AUTOFEAT_SIMD_FORCE_SCALAR)
// CMake -DAUTOFEAT_SIMD=off: portable scalar everywhere.
#elif defined(__AVX2__)
#define AUTOFEAT_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define AUTOFEAT_SIMD_NEON 1
#include <arm_neon.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define AUTOFEAT_SIMD_SSE2 1
#include <emmintrin.h>
#endif

namespace autofeat::simd {

inline constexpr const char* kBackendName =
#if defined(AUTOFEAT_SIMD_AVX2)
    "avx2";
#elif defined(AUTOFEAT_SIMD_NEON)
    "neon";
#elif defined(AUTOFEAT_SIMD_SSE2)
    "sse2";
#else
    "scalar";
#endif

// ---- Scalar natural log (fdlibm-style) ------------------------------------
//
// The same reduction the vector paths use, in scalar form: exact at x == 1
// (returns +0.0, which the entropy kernels rely on for single-category
// columns), branch-light, and within ~2 ulp of std::log over the normal
// range. Remainder lanes of the vector kernels call this so a kernel's
// output does not depend on how its length rounds against the vector width.
inline double LogPositive(double x) {
  // x = 2^k * m with m in [sqrt(2)/2, sqrt(2)).
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  int64_t e = static_cast<int64_t>(bits >> 52) - 1023;
  uint64_t mant_bits =
      (bits & 0x000FFFFFFFFFFFFFULL) | 0x3FF0000000000000ULL;
  double m;
  std::memcpy(&m, &mant_bits, sizeof(m));
  constexpr double kSqrt2 = 1.41421356237309514547462185873883;
  if (m > kSqrt2) {
    m *= 0.5;
    e += 1;
  }
  double f = m - 1.0;
  double s = f / (2.0 + f);
  double z = s * s;
  // Horner form of the fdlibm log() minimax series in z = s^2.
  double r =
      z *
      (6.666666666666735130e-01 +
       z * (3.999999999940941908e-01 +
            z * (2.857142874366239149e-01 +
                 z * (2.222219843214978396e-01 +
                      z * (1.818357216161805012e-01 +
                           z * (1.531383769920937332e-01 +
                                z * 1.479819860511658591e-01))))));
  double hfsq = 0.5 * f * f;
  double k = static_cast<double>(e);
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  return k * kLn2Hi - ((hfsq - (s * (hfsq + r) + k * kLn2Lo)) - f);
}

// ---- Scalar reference twins -----------------------------------------------

/// Plug-in entropy reduction over a dense count vector: sum over c > 0 of
/// -(c/n) * log(c/n). Uses std::log, making it an independent oracle for the
/// vectorised form. Counts must not exceed INT32_MAX (they are row counts).
inline double SumPLogPScalar(const uint32_t* counts, size_t k, double n) {
  double h = 0.0;
  for (size_t i = 0; i < k; ++i) {
    if (counts[i] == 0) continue;
    double p = static_cast<double>(counts[i]) / n;
    h -= p * std::log(p);
  }
  return h;
}

/// counts[x[i] - min_x] += 1 for present rows, counts[trash] += 1 for
/// missing ones (branch-free trash-slot form of masked counting).
inline void CountPresentScalar(const int* x, size_t n, int min_x,
                               size_t trash, uint32_t* counts) {
  for (size_t i = 0; i < n; ++i) {
    size_t idx = x[i] == -1 ? trash : static_cast<size_t>(x[i] - min_x);
    ++counts[idx];
  }
}

/// Joint form: counts[(x[i]-min_x)*ky + (y[i]-min_y)] for rows where both
/// sides are present, counts[trash] otherwise.
inline void CountJointPresentScalar(const int* x, const int* y, size_t n,
                                    int min_x, int min_y, int ky,
                                    size_t trash, uint32_t* counts) {
  for (size_t i = 0; i < n; ++i) {
    size_t idx = (x[i] == -1 || y[i] == -1)
                     ? trash
                     : static_cast<size_t>(x[i] - min_x) *
                               static_cast<size_t>(ky) +
                           static_cast<size_t>(y[i] - min_y);
    ++counts[idx];
  }
}

/// Min/max over present (!= -1) values. mm = {min, max}; untouched lanes
/// keep their initial values, so seed with {INT32_MAX, INT32_MIN} and detect
/// the all-missing case via mm[0] > mm[1].
inline void MinMaxPresentScalar(const int* x, size_t n, int mm[2]) {
  for (size_t i = 0; i < n; ++i) {
    if (x[i] == -1) continue;
    if (x[i] < mm[0]) mm[0] = x[i];
    if (x[i] > mm[1]) mm[1] = x[i];
  }
}

/// Pairwise-complete min/max: rows where either side is missing are skipped
/// entirely. mm = {min_x, max_x, min_y, max_y}, seeded as MinMaxPresent.
inline void PairMinMaxPresentScalar(const int* x, const int* y, size_t n,
                                    int mm[4]) {
  for (size_t i = 0; i < n; ++i) {
    if (x[i] == -1 || y[i] == -1) continue;
    if (x[i] < mm[0]) mm[0] = x[i];
    if (x[i] > mm[1]) mm[1] = x[i];
    if (y[i] < mm[2]) mm[2] = y[i];
    if (y[i] > mm[3]) mm[3] = y[i];
  }
}

inline size_t CountNonZero32Scalar(const uint32_t* v, size_t n) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) k += (v[i] != 0);
  return k;
}

inline size_t CountEqualU32Scalar(const uint32_t* v, size_t n,
                                  uint32_t target) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) k += (v[i] == target);
  return k;
}

/// mins[k] = min(mins[k], DeriveSeed(base, k)) for k in [0, num_hashes).
/// The oracle calls DeriveSeed directly; the vector form re-derives the
/// splitmix64 finaliser in 64-bit lanes and must stay bit-exact (the
/// signatures feed the DRG candidate list).
inline void MinHashUpdateScalar(uint64_t base, uint64_t* mins,
                                size_t num_hashes) {
  for (size_t k = 0; k < num_hashes; ++k) {
    uint64_t h = DeriveSeed(base, k);
    if (h < mins[k]) mins[k] = h;
  }
}

/// out[i] = rows[i] == no_match ? missing : src[rows[i]].
inline void GatherDoublesByRowScalar(const double* src, const uint32_t* rows,
                                     size_t n, uint32_t no_match,
                                     double missing, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = rows[i] == no_match ? missing : src[rows[i]];
  }
}

/// Interleaved gradient/hessian histogram accumulation:
/// gh[2*codes[rows[i]] + 0] += grad[rows[i]],
/// gh[2*codes[rows[i]] + 1] += hess[rows[i]], in row order — the reference
/// the unrolled kernel must match bit-exactly (FP adds hit each bin in the
/// same order).
inline void AccumulateGhReference(const uint8_t* codes, const double* grad,
                                  const double* hess, const size_t* rows,
                                  size_t n, double* gh) {
  for (size_t i = 0; i < n; ++i) {
    size_t r = rows[i];
    double* slot = gh + 2 * static_cast<size_t>(codes[r]);
    slot[0] += grad[r];
    slot[1] += hess[r];
  }
}

// ---- Vector log + entropy reduction ---------------------------------------

#if defined(AUTOFEAT_SIMD_AVX2)

namespace detail {

// Four-lane fdlibm-style log; same reduction as LogPositive. Inputs must be
// positive normals.
inline __m256d Log4(__m256d x) {
  const __m256i kMantMask = _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL);
  const __m256i kOneBits = _mm256_set1_epi64x(0x3FF0000000000000LL);
  const __m256i kMagicBits = _mm256_set1_epi64x(0x4338000000000000LL);
  const __m256d kMagic = _mm256_set1_pd(6755399441055744.0);  // 1.5 * 2^52
  const __m256d kSqrt2 = _mm256_set1_pd(1.41421356237309514547462185873883);
  const __m256d kHalf = _mm256_set1_pd(0.5);
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kTwo = _mm256_set1_pd(2.0);

  __m256i bits = _mm256_castpd_si256(x);
  // Unbiased exponent as a double via the 1.5*2^52 integer-in-mantissa trick
  // (AVX2 has no epi64 -> pd conversion).
  __m256i e64 = _mm256_sub_epi64(_mm256_srli_epi64(bits, 52),
                                 _mm256_set1_epi64x(1023));
  __m256d e = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_add_epi64(e64, kMagicBits)), kMagic);
  __m256d m = _mm256_castsi256_pd(
      _mm256_or_si256(_mm256_and_si256(bits, kMantMask), kOneBits));
  // Fold m into [sqrt(2)/2, sqrt(2)): halve and bump the exponent where
  // m > sqrt(2).
  __m256d fold = _mm256_cmp_pd(m, kSqrt2, _CMP_GT_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, kHalf), fold);
  __m256d k = _mm256_add_pd(e, _mm256_and_pd(fold, kOne));

  __m256d f = _mm256_sub_pd(m, kOne);
  __m256d s = _mm256_div_pd(f, _mm256_add_pd(kTwo, f));
  __m256d z = _mm256_mul_pd(s, s);
  __m256d r = _mm256_set1_pd(1.479819860511658591e-01);
  r = _mm256_add_pd(_mm256_mul_pd(r, z),
                    _mm256_set1_pd(1.531383769920937332e-01));
  r = _mm256_add_pd(_mm256_mul_pd(r, z),
                    _mm256_set1_pd(1.818357216161805012e-01));
  r = _mm256_add_pd(_mm256_mul_pd(r, z),
                    _mm256_set1_pd(2.222219843214978396e-01));
  r = _mm256_add_pd(_mm256_mul_pd(r, z),
                    _mm256_set1_pd(2.857142874366239149e-01));
  r = _mm256_add_pd(_mm256_mul_pd(r, z),
                    _mm256_set1_pd(3.999999999940941908e-01));
  r = _mm256_add_pd(_mm256_mul_pd(r, z),
                    _mm256_set1_pd(6.666666666666735130e-01));
  r = _mm256_mul_pd(r, z);
  __m256d hfsq = _mm256_mul_pd(kHalf, _mm256_mul_pd(f, f));
  const __m256d kLn2Hi = _mm256_set1_pd(6.93147180369123816490e-01);
  const __m256d kLn2Lo = _mm256_set1_pd(1.90821492927058770002e-10);
  // k*ln2_hi - ((hfsq - (s*(hfsq+r) + k*ln2_lo)) - f)
  __m256d t = _mm256_add_pd(_mm256_mul_pd(s, _mm256_add_pd(hfsq, r)),
                            _mm256_mul_pd(k, kLn2Lo));
  return _mm256_sub_pd(_mm256_mul_pd(k, kLn2Hi),
                       _mm256_sub_pd(_mm256_sub_pd(hfsq, t), f));
}

}  // namespace detail

inline void LogBatch(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, detail::Log4(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = LogPositive(x[i]);
}

inline double SumPLogP(const uint32_t* counts, size_t k, double n) {
  const __m256d vn = _mm256_set1_pd(n);
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kZero = _mm256_setzero_pd();
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    __m128i c32 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + i));
    __m256d c = _mm256_cvtepi32_pd(c32);
    __m256d p = _mm256_div_pd(c, vn);
    // Zero-count lanes contribute exactly 0: substitute p = 1 (log 1 = 0)
    // instead of letting 0 * log(0) produce a NaN.
    __m256d zero = _mm256_cmp_pd(p, kZero, _CMP_EQ_OQ);
    p = _mm256_blendv_pd(p, kOne, zero);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(p, detail::Log4(p)));
  }
  // Fixed-shape horizontal reduction: (l0+l2)+(l1+l3) — deterministic for a
  // given build.
  __m128d lo = _mm256_castpd256_pd128(acc);
  __m128d hi = _mm256_extractf128_pd(acc, 1);
  __m128d pair = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; i < k; ++i) {
    if (counts[i] == 0) continue;
    double p = static_cast<double>(counts[i]) / n;
    sum += p * LogPositive(p);
  }
  return 0.0 - sum;
}

#elif defined(AUTOFEAT_SIMD_SSE2)

namespace detail {

inline __m128d Blend(__m128d a, __m128d b, __m128d mask) {
  return _mm_or_pd(_mm_and_pd(mask, b), _mm_andnot_pd(mask, a));
}

// Two-lane version of Log4 (see the AVX2 backend); SSE2 has no blendv, so
// masks combine through and/andnot.
inline __m128d Log2v(__m128d x) {
  const __m128i kMantMask = _mm_set1_epi64x(0x000FFFFFFFFFFFFFLL);
  const __m128i kOneBits = _mm_set1_epi64x(0x3FF0000000000000LL);
  const __m128i kMagicBits = _mm_set1_epi64x(0x4338000000000000LL);
  const __m128d kMagic = _mm_set1_pd(6755399441055744.0);
  const __m128d kSqrt2 = _mm_set1_pd(1.41421356237309514547462185873883);
  const __m128d kHalf = _mm_set1_pd(0.5);
  const __m128d kOne = _mm_set1_pd(1.0);
  const __m128d kTwo = _mm_set1_pd(2.0);

  __m128i bits = _mm_castpd_si128(x);
  __m128i e64 = _mm_sub_epi64(_mm_srli_epi64(bits, 52), _mm_set1_epi64x(1023));
  __m128d e = _mm_sub_pd(_mm_castsi128_pd(_mm_add_epi64(e64, kMagicBits)),
                         kMagic);
  __m128d m = _mm_castsi128_pd(
      _mm_or_si128(_mm_and_si128(bits, kMantMask), kOneBits));
  __m128d fold = _mm_cmpgt_pd(m, kSqrt2);
  m = Blend(m, _mm_mul_pd(m, kHalf), fold);
  __m128d k = _mm_add_pd(e, _mm_and_pd(fold, kOne));

  __m128d f = _mm_sub_pd(m, kOne);
  __m128d s = _mm_div_pd(f, _mm_add_pd(kTwo, f));
  __m128d z = _mm_mul_pd(s, s);
  __m128d r = _mm_set1_pd(1.479819860511658591e-01);
  r = _mm_add_pd(_mm_mul_pd(r, z), _mm_set1_pd(1.531383769920937332e-01));
  r = _mm_add_pd(_mm_mul_pd(r, z), _mm_set1_pd(1.818357216161805012e-01));
  r = _mm_add_pd(_mm_mul_pd(r, z), _mm_set1_pd(2.222219843214978396e-01));
  r = _mm_add_pd(_mm_mul_pd(r, z), _mm_set1_pd(2.857142874366239149e-01));
  r = _mm_add_pd(_mm_mul_pd(r, z), _mm_set1_pd(3.999999999940941908e-01));
  r = _mm_add_pd(_mm_mul_pd(r, z), _mm_set1_pd(6.666666666666735130e-01));
  r = _mm_mul_pd(r, z);
  __m128d hfsq = _mm_mul_pd(kHalf, _mm_mul_pd(f, f));
  const __m128d kLn2Hi = _mm_set1_pd(6.93147180369123816490e-01);
  const __m128d kLn2Lo = _mm_set1_pd(1.90821492927058770002e-10);
  __m128d t = _mm_add_pd(_mm_mul_pd(s, _mm_add_pd(hfsq, r)),
                         _mm_mul_pd(k, kLn2Lo));
  return _mm_sub_pd(_mm_mul_pd(k, kLn2Hi),
                    _mm_sub_pd(_mm_sub_pd(hfsq, t), f));
}

}  // namespace detail

inline void LogBatch(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i, detail::Log2v(_mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = LogPositive(x[i]);
}

inline double SumPLogP(const uint32_t* counts, size_t k, double n) {
  const __m128d vn = _mm_set1_pd(n);
  const __m128d kOne = _mm_set1_pd(1.0);
  const __m128d kZero = _mm_setzero_pd();
  __m128d acc = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 2 <= k; i += 2) {
    // Two uint32 counts -> two doubles (counts fit int32; see scalar twin).
    __m128i c32 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(counts + i));
    __m128d c = _mm_cvtepi32_pd(c32);
    __m128d p = _mm_div_pd(c, vn);
    __m128d zero = _mm_cmpeq_pd(p, kZero);
    p = detail::Blend(p, kOne, zero);
    acc = _mm_add_pd(acc, _mm_mul_pd(p, detail::Log2v(p)));
  }
  double sum =
      _mm_cvtsd_f64(acc) + _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc));
  for (; i < k; ++i) {
    if (counts[i] == 0) continue;
    double p = static_cast<double>(counts[i]) / n;
    sum += p * LogPositive(p);
  }
  return 0.0 - sum;
}

#elif defined(AUTOFEAT_SIMD_NEON)

namespace detail {

// Two-lane NEON version of the same reduction (aarch64: has float64x2 and
// vector divide).
inline float64x2_t Log2v(float64x2_t x) {
  const uint64x2_t kMantMask = vdupq_n_u64(0x000FFFFFFFFFFFFFULL);
  const uint64x2_t kOneBits = vdupq_n_u64(0x3FF0000000000000ULL);
  const float64x2_t kSqrt2 = vdupq_n_f64(1.41421356237309514547462185873883);
  const float64x2_t kHalf = vdupq_n_f64(0.5);
  const float64x2_t kOne = vdupq_n_f64(1.0);
  const float64x2_t kTwo = vdupq_n_f64(2.0);

  uint64x2_t bits = vreinterpretq_u64_f64(x);
  int64x2_t e64 = vsubq_s64(
      vreinterpretq_s64_u64(vshrq_n_u64(bits, 52)), vdupq_n_s64(1023));
  float64x2_t e = vcvtq_f64_s64(e64);
  float64x2_t m = vreinterpretq_f64_u64(
      vorrq_u64(vandq_u64(bits, kMantMask), kOneBits));
  uint64x2_t fold = vcgtq_f64(m, kSqrt2);
  m = vbslq_f64(fold, vmulq_f64(m, kHalf), m);
  float64x2_t k =
      vaddq_f64(e, vbslq_f64(fold, kOne, vdupq_n_f64(0.0)));

  float64x2_t f = vsubq_f64(m, kOne);
  float64x2_t s = vdivq_f64(f, vaddq_f64(kTwo, f));
  float64x2_t z = vmulq_f64(s, s);
  float64x2_t r = vdupq_n_f64(1.479819860511658591e-01);
  r = vaddq_f64(vmulq_f64(r, z), vdupq_n_f64(1.531383769920937332e-01));
  r = vaddq_f64(vmulq_f64(r, z), vdupq_n_f64(1.818357216161805012e-01));
  r = vaddq_f64(vmulq_f64(r, z), vdupq_n_f64(2.222219843214978396e-01));
  r = vaddq_f64(vmulq_f64(r, z), vdupq_n_f64(2.857142874366239149e-01));
  r = vaddq_f64(vmulq_f64(r, z), vdupq_n_f64(3.999999999940941908e-01));
  r = vaddq_f64(vmulq_f64(r, z), vdupq_n_f64(6.666666666666735130e-01));
  r = vmulq_f64(r, z);
  float64x2_t hfsq = vmulq_f64(kHalf, vmulq_f64(f, f));
  const float64x2_t kLn2Hi = vdupq_n_f64(6.93147180369123816490e-01);
  const float64x2_t kLn2Lo = vdupq_n_f64(1.90821492927058770002e-10);
  float64x2_t t = vaddq_f64(vmulq_f64(s, vaddq_f64(hfsq, r)),
                            vmulq_f64(k, kLn2Lo));
  return vsubq_f64(vmulq_f64(k, kLn2Hi), vsubq_f64(vsubq_f64(hfsq, t), f));
}

}  // namespace detail

inline void LogBatch(const double* x, double* out, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, detail::Log2v(vld1q_f64(x + i)));
  }
  for (; i < n; ++i) out[i] = LogPositive(x[i]);
}

inline double SumPLogP(const uint32_t* counts, size_t k, double n) {
  const float64x2_t vn = vdupq_n_f64(n);
  const float64x2_t kOne = vdupq_n_f64(1.0);
  float64x2_t acc = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 2 <= k; i += 2) {
    uint32x2_t c32 = vld1_u32(counts + i);
    float64x2_t c = vcvtq_f64_u64(vmovl_u32(c32));
    float64x2_t p = vdivq_f64(c, vn);
    uint64x2_t zero = vceqq_f64(p, vdupq_n_f64(0.0));
    p = vbslq_f64(zero, kOne, p);
    acc = vaddq_f64(acc, vmulq_f64(p, detail::Log2v(p)));
  }
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < k; ++i) {
    if (counts[i] == 0) continue;
    double p = static_cast<double>(counts[i]) / n;
    sum += p * LogPositive(p);
  }
  return 0.0 - sum;
}

#else  // scalar backend

inline void LogBatch(const double* x, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = LogPositive(x[i]);
}

inline double SumPLogP(const uint32_t* counts, size_t k, double n) {
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    if (counts[i] == 0) continue;
    double p = static_cast<double>(counts[i]) / n;
    sum += p * LogPositive(p);
  }
  return 0.0 - sum;
}

#endif

// ---- Integer kernels (AVX2-vectorised, scalar elsewhere) ------------------

#if defined(AUTOFEAT_SIMD_AVX2)

inline void CountPresent(const int* x, size_t n, int min_x, size_t trash,
                         uint32_t* counts) {
  const __m256i kMissing = _mm256_set1_epi32(-1);
  const __m256i kMin = _mm256_set1_epi32(min_x);
  const __m256i kTrash = _mm256_set1_epi32(static_cast<int>(trash));
  alignas(32) int idx[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i missing = _mm256_cmpeq_epi32(vx, kMissing);
    __m256i v = _mm256_sub_epi32(vx, kMin);
    v = _mm256_blendv_epi8(v, kTrash, missing);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), v);
    for (int j = 0; j < 8; ++j) ++counts[static_cast<size_t>(idx[j])];
  }
  if (i < n) CountPresentScalar(x + i, n - i, min_x, trash, counts);
}

inline void CountJointPresent(const int* x, const int* y, size_t n, int min_x,
                              int min_y, int ky, size_t trash,
                              uint32_t* counts) {
  const __m256i kMissing = _mm256_set1_epi32(-1);
  const __m256i kMinX = _mm256_set1_epi32(min_x);
  const __m256i kMinY = _mm256_set1_epi32(min_y);
  const __m256i kKy = _mm256_set1_epi32(ky);
  const __m256i kTrash = _mm256_set1_epi32(static_cast<int>(trash));
  alignas(32) int idx[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    __m256i missing = _mm256_or_si256(_mm256_cmpeq_epi32(vx, kMissing),
                                      _mm256_cmpeq_epi32(vy, kMissing));
    __m256i v = _mm256_add_epi32(
        _mm256_mullo_epi32(_mm256_sub_epi32(vx, kMinX), kKy),
        _mm256_sub_epi32(vy, kMinY));
    v = _mm256_blendv_epi8(v, kTrash, missing);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), v);
    for (int j = 0; j < 8; ++j) ++counts[static_cast<size_t>(idx[j])];
  }
  if (i < n) {
    CountJointPresentScalar(x + i, y + i, n - i, min_x, min_y, ky, trash,
                            counts);
  }
}

inline void MinMaxPresent(const int* x, size_t n, int mm[2]) {
  const __m256i kMissing = _mm256_set1_epi32(-1);
  __m256i vmin = _mm256_set1_epi32(INT32_MAX);
  __m256i vmax = _mm256_set1_epi32(INT32_MIN);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i missing = _mm256_cmpeq_epi32(vx, kMissing);
    vmin = _mm256_min_epi32(
        vmin, _mm256_blendv_epi8(vx, _mm256_set1_epi32(INT32_MAX), missing));
    vmax = _mm256_max_epi32(
        vmax, _mm256_blendv_epi8(vx, _mm256_set1_epi32(INT32_MIN), missing));
  }
  alignas(32) int lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  for (int j = 0; j < 8; ++j) mm[0] = lanes[j] < mm[0] ? lanes[j] : mm[0];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmax);
  for (int j = 0; j < 8; ++j) mm[1] = lanes[j] > mm[1] ? lanes[j] : mm[1];
  if (i < n) MinMaxPresentScalar(x + i, n - i, mm);
}

inline void PairMinMaxPresent(const int* x, const int* y, size_t n,
                              int mm[4]) {
  const __m256i kMissing = _mm256_set1_epi32(-1);
  const __m256i kIntMax = _mm256_set1_epi32(INT32_MAX);
  const __m256i kIntMin = _mm256_set1_epi32(INT32_MIN);
  __m256i min_x = kIntMax, max_x = kIntMin, min_y = kIntMax, max_y = kIntMin;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i vy = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    __m256i missing = _mm256_or_si256(_mm256_cmpeq_epi32(vx, kMissing),
                                      _mm256_cmpeq_epi32(vy, kMissing));
    min_x = _mm256_min_epi32(min_x, _mm256_blendv_epi8(vx, kIntMax, missing));
    max_x = _mm256_max_epi32(max_x, _mm256_blendv_epi8(vx, kIntMin, missing));
    min_y = _mm256_min_epi32(min_y, _mm256_blendv_epi8(vy, kIntMax, missing));
    max_y = _mm256_max_epi32(max_y, _mm256_blendv_epi8(vy, kIntMin, missing));
  }
  alignas(32) int lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), min_x);
  for (int j = 0; j < 8; ++j) mm[0] = lanes[j] < mm[0] ? lanes[j] : mm[0];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), max_x);
  for (int j = 0; j < 8; ++j) mm[1] = lanes[j] > mm[1] ? lanes[j] : mm[1];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), min_y);
  for (int j = 0; j < 8; ++j) mm[2] = lanes[j] < mm[2] ? lanes[j] : mm[2];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), max_y);
  for (int j = 0; j < 8; ++j) mm[3] = lanes[j] > mm[3] ? lanes[j] : mm[3];
  if (i < n) PairMinMaxPresentScalar(x + i, y + i, n - i, mm);
}

inline size_t CountNonZero32(const uint32_t* v, size_t n) {
  size_t k = 0;
  size_t i = 0;
  const __m256i kZero = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    int zero_mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(c, kZero)));
    k += 8 - static_cast<size_t>(__builtin_popcount(
                 static_cast<unsigned>(zero_mask)));
  }
  return k + CountNonZero32Scalar(v + i, n - i);
}

inline size_t CountEqualU32(const uint32_t* v, size_t n, uint32_t target) {
  size_t k = 0;
  size_t i = 0;
  const __m256i kTarget = _mm256_set1_epi32(static_cast<int>(target));
  for (; i + 8 <= n; i += 8) {
    __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    int eq_mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(c, kTarget)));
    k += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(eq_mask)));
  }
  return k + CountEqualU32Scalar(v + i, n - i, target);
}

namespace detail {

// 64x64 -> low-64 multiply by a constant; AVX2 has no mullo_epi64 (that is
// AVX-512DQ), so assemble it from 32x32 -> 64 pieces.
inline __m256i Mul64(__m256i a, uint64_t b_const) {
  const __m256i b = _mm256_set1_epi64x(static_cast<long long>(b_const));
  __m256i lo = _mm256_mul_epu32(a, b);
  __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// Unsigned 64-bit min via the sign-bias trick (AVX2 compares are signed).
inline __m256i MinU64(__m256i a, __m256i b) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                                  _mm256_xor_si256(b, bias));
  return _mm256_blendv_epi8(a, b, gt);
}

}  // namespace detail

inline void MinHashUpdate(uint64_t base, uint64_t* mins, size_t num_hashes) {
  const __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(base));
  const uint64_t kGamma = 0x9E3779B97F4A7C15ULL;
  // Streams k, k+1, k+2, k+3: offsets gamma*(k+1..k+4) advance by 4*gamma.
  __m256i off = _mm256_set_epi64x(static_cast<long long>(kGamma * 4),
                                  static_cast<long long>(kGamma * 3),
                                  static_cast<long long>(kGamma * 2),
                                  static_cast<long long>(kGamma * 1));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(kGamma * 4));
  size_t k = 0;
  for (; k + 4 <= num_hashes; k += 4) {
    __m256i z = _mm256_add_epi64(vbase, off);
    z = detail::Mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                      0xBF58476D1CE4E5B9ULL);
    z = detail::Mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                      0x94D049BB133111EBULL);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
    __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mins + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mins + k),
                        detail::MinU64(cur, z));
    off = _mm256_add_epi64(off, step);
  }
  if (k < num_hashes) {
    for (; k < num_hashes; ++k) {
      uint64_t h = DeriveSeed(base, k);
      if (h < mins[k]) mins[k] = h;
    }
  }
}

inline void GatherDoublesByRow(const double* src, const uint32_t* rows,
                               size_t n, uint32_t no_match, double missing,
                               double* out) {
  const __m128i kNoMatch = _mm_set1_epi32(static_cast<int>(no_match));
  const __m256d kMissing = _mm256_set1_pd(missing);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i));
    __m128i bad = _mm_cmpeq_epi32(idx, kNoMatch);
    // Gather mask: all-ones lanes load, masked-out lanes keep `missing` and
    // touch no memory (so the no-match sentinel never dereferences).
    __m256d allow = _mm256_castsi256_pd(_mm256_andnot_si256(
        _mm256_cvtepi32_epi64(bad), _mm256_set1_epi64x(-1)));
    __m256d g = _mm256_mask_i32gather_pd(kMissing, src, idx, allow, 8);
    _mm256_storeu_pd(out + i, g);
  }
  if (i < n) {
    GatherDoublesByRowScalar(src, rows + i, n - i, no_match, missing,
                             out + i);
  }
}

#else  // non-AVX2 backends: scalar forms

inline void CountPresent(const int* x, size_t n, int min_x, size_t trash,
                         uint32_t* counts) {
  CountPresentScalar(x, n, min_x, trash, counts);
}

inline void CountJointPresent(const int* x, const int* y, size_t n, int min_x,
                              int min_y, int ky, size_t trash,
                              uint32_t* counts) {
  CountJointPresentScalar(x, y, n, min_x, min_y, ky, trash, counts);
}

inline void MinMaxPresent(const int* x, size_t n, int mm[2]) {
  MinMaxPresentScalar(x, n, mm);
}

inline void PairMinMaxPresent(const int* x, const int* y, size_t n,
                              int mm[4]) {
  PairMinMaxPresentScalar(x, y, n, mm);
}

inline size_t CountNonZero32(const uint32_t* v, size_t n) {
  return CountNonZero32Scalar(v, n);
}

inline size_t CountEqualU32(const uint32_t* v, size_t n, uint32_t target) {
  return CountEqualU32Scalar(v, n, target);
}

inline void MinHashUpdate(uint64_t base, uint64_t* mins, size_t num_hashes) {
  MinHashUpdateScalar(base, mins, num_hashes);
}

inline void GatherDoublesByRow(const double* src, const uint32_t* rows,
                               size_t n, uint32_t no_match, double missing,
                               double* out) {
  GatherDoublesByRowScalar(src, rows, n, no_match, missing, out);
}

#endif

// ---- Histogram accumulation (all backends) --------------------------------

/// Cache-conscious form of AccumulateGhReference: the interleaved (g, h)
/// pair keeps both accumulators of a bin on one cache line, and the 4-row
/// unroll lets the row/code loads run ahead of the dependent adds. Rows hit
/// each bin in the original order, so the result is bit-exact against the
/// reference (scatter-add has loop-carried dependences through memory, so
/// this kernel is ILP- and cache-bound, not vector-width-bound, on every
/// backend).
inline void AccumulateGh(const uint8_t* codes, const double* grad,
                         const double* hess, const size_t* rows, size_t n,
                         double* gh) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    size_t r0 = rows[i], r1 = rows[i + 1], r2 = rows[i + 2], r3 = rows[i + 3];
    double* s0 = gh + 2 * static_cast<size_t>(codes[r0]);
    s0[0] += grad[r0];
    s0[1] += hess[r0];
    double* s1 = gh + 2 * static_cast<size_t>(codes[r1]);
    s1[0] += grad[r1];
    s1[1] += hess[r1];
    double* s2 = gh + 2 * static_cast<size_t>(codes[r2]);
    s2[0] += grad[r2];
    s2[1] += hess[r2];
    double* s3 = gh + 2 * static_cast<size_t>(codes[r3]);
    s3[0] += grad[r3];
    s3[1] += hess[r3];
  }
  for (; i < n; ++i) {
    size_t r = rows[i];
    double* slot = gh + 2 * static_cast<size_t>(codes[r]);
    slot[0] += grad[r];
    slot[1] += hess[r];
  }
}

}  // namespace autofeat::simd

#endif  // AUTOFEAT_UTIL_SIMD_H_
