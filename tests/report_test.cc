#include "core/report.h"

#include <gtest/gtest.h>

#include "datagen/lake_builder.h"

namespace autofeat {
namespace {

struct Fixture {
  datagen::BuiltLake built;
  DatasetRelationGraph drg;
  DiscoveryResult discovery;
  AugmentationResult augmentation;

  Fixture() {
    datagen::LakeSpec spec;
    spec.name = "rep";
    spec.rows = 500;
    spec.joinable_tables = 4;
    spec.total_features = 16;
    spec.seed = 17;
    built = datagen::BuildLake(spec);
    drg = BuildDrgFromKfk(built.lake).MoveValue();
    AutoFeatConfig config;
    config.sample_rows = 300;
    AutoFeat engine(&built.lake, &drg, config);
    discovery = engine.DiscoverFeatures(built.base_table, built.label_column)
                    .MoveValue();
    augmentation = engine.Augment(built.base_table, built.label_column,
                                  ml::ModelKind::kKnn)
                       .MoveValue();
  }
};

TEST(ReportTest, DiscoveryReportMentionsCountsAndPaths) {
  Fixture fix;
  std::string report = FormatDiscoveryReport(fix.discovery, fix.drg);
  EXPECT_NE(report.find("paths explored"), std::string::npos);
  EXPECT_NE(report.find("feature selection"), std::string::npos);
  if (!fix.discovery.ranked.empty()) {
    EXPECT_NE(report.find("#1 score="), std::string::npos);
    EXPECT_NE(report.find("rep_"), std::string::npos);  // Table names shown.
  }
}

TEST(ReportTest, MaxPathsTruncates) {
  Fixture fix;
  ASSERT_GT(fix.discovery.ranked.size(), 1u);
  std::string report = FormatDiscoveryReport(fix.discovery, fix.drg, 1);
  EXPECT_NE(report.find("#1 score="), std::string::npos);
  EXPECT_EQ(report.find("#2 score="), std::string::npos);
  EXPECT_NE(report.find("more ranked paths"), std::string::npos);
}

TEST(ReportTest, AugmentationReportMentionsAccuracyAndBestPath) {
  Fixture fix;
  std::string report = FormatAugmentationReport(fix.augmentation, fix.drg);
  EXPECT_NE(report.find("augmentation accuracy"), std::string::npos);
  EXPECT_NE(report.find("best path"), std::string::npos);
}

TEST(ReportTest, EmptyDiscoveryDoesNotCrash) {
  Fixture fix;
  DiscoveryResult empty;
  std::string report = FormatDiscoveryReport(empty, fix.drg);
  EXPECT_NE(report.find("0 paths explored"), std::string::npos);
}

}  // namespace
}  // namespace autofeat
