// Graphviz (dot) export of the Dataset Relation Graph, for inspecting
// discovered joinability (render with `dot -Tsvg drg.dot -o drg.svg`).

#ifndef AUTOFEAT_GRAPH_DOT_EXPORT_H_
#define AUTOFEAT_GRAPH_DOT_EXPORT_H_

#include <string>

#include "graph/drg.h"
#include "graph/join_path.h"

namespace autofeat {

struct DotOptions {
  /// Highlight this node (typically the base table).
  std::string highlight_node;
  /// Edges on this path are drawn bold/coloured.
  const JoinPath* highlight_path = nullptr;
  /// Edges below this weight are drawn dashed (visual spurious-edge cue).
  double solid_weight_threshold = 0.9;
};

/// Renders the DRG as an undirected Graphviz graph. Multi-edges appear as
/// parallel edges labelled "left_col = right_col (weight)".
std::string ExportDrgToDot(const DatasetRelationGraph& drg,
                           const DotOptions& options = {});

}  // namespace autofeat

#endif  // AUTOFEAT_GRAPH_DOT_EXPORT_H_
