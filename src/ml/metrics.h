// Classification evaluation metrics.

#ifndef AUTOFEAT_ML_METRICS_H_
#define AUTOFEAT_ML_METRICS_H_

#include <vector>

namespace autofeat::ml {

/// Fraction of rows where round(proba >= 0.5) equals the label.
double Accuracy(const std::vector<int>& labels,
                const std::vector<double>& probabilities);

/// Area under the ROC curve (rank statistic, ties get half credit).
/// Returns 0.5 if either class is absent.
double RocAuc(const std::vector<int>& labels,
              const std::vector<double>& probabilities);

/// Binary cross-entropy (natural log); probabilities clipped to
/// [1e-12, 1 - 1e-12]. Lower is better.
double LogLoss(const std::vector<int>& labels,
               const std::vector<double>& probabilities);

/// Mean squared error of the probabilities against the 0/1 labels.
/// Lower is better; 0.25 for a constant 0.5 predictor.
double BrierScore(const std::vector<int>& labels,
                  const std::vector<double>& probabilities);

}  // namespace autofeat::ml

#endif  // AUTOFEAT_ML_METRICS_H_
