// Out-of-core discovery: the memory-budgeted join-index cache against a
// lake much larger than the budget.
//
// Generates a snowflake lake, runs discovery unbudgeted to measure the
// cache's natural high-water mark, then reruns with a budget of a sixteenth
// of that peak — forcing LRU eviction + rebuild-on-miss throughout the BFS
// — and with the adversarial evict-everything-between-rounds schedule, at
// 1, 2 and 8 threads. Self-gating: exits non-zero when
//
//  * the lake is not at least 10x larger than the budget (the run would
//    not demonstrate out-of-core operation),
//  * any budgeted run's peak cache bytes exceed the budget,
//  * any run's discovery fingerprint or deterministic obs digest differs
//    from the unbudgeted single-thread baseline (results must be
//    byte-identical under every eviction schedule, the
//    cache.eviction_oblivious contract), or
//  * the budgeted single-thread run is more than 3x slower than the
//    unbudgeted one (rebuild-on-miss must stay bounded).
//
// Quick mode uses a small lake; AUTOFEAT_BENCH_MODE=full scales it up.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "core/autofeat.h"
#include "datagen/lake_builder.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "qa/invariants.h"
#include "util/timer.h"

namespace autofeat::benchx {
namespace {

struct OocoreRun {
  std::string fingerprint;
  std::string digest;
  double seconds = 0.0;
  int64_t cache_peak_bytes = 0;
};

OocoreRun RunOnce(const datagen::BuiltLake& built,
                  const DatasetRelationGraph& drg, size_t threads,
                  size_t budget_bytes, EvictionStress stress,
                  std::unique_ptr<AutoFeat>* engine_out = nullptr) {
  AutoFeatConfig config;
  config.seed = 42;
  config.num_threads = threads;
  config.metrics_enabled = true;
  config.memory_budget_bytes = budget_bytes;
  config.eviction_stress = stress;
  auto engine = std::make_unique<AutoFeat>(&built.lake, &drg, config);
  Timer timer;
  auto result =
      engine->DiscoverFeatures(built.base_table, built.label_column);
  result.status().Abort("oocore discovery");
  OocoreRun run;
  run.seconds = timer.ElapsedSeconds();
  run.fingerprint = qa::DiscoveryFingerprint(*result);
  run.digest = obs::DeterministicDigest(*engine->metrics(), engine->tracer());
  run.cache_peak_bytes =
      engine->metrics()->GaugeValue("join_index_cache.bytes_peak");
  if (engine_out != nullptr) *engine_out = std::move(engine);
  return run;
}

int Main() {
  datagen::LakeSpec spec;
  spec.rows = FullMode() ? 8000 : 1500;
  spec.joinable_tables = FullMode() ? 16 : 10;
  spec.total_features = FullMode() ? 96 : 48;
  spec.seed = 42;
  datagen::BuiltLake built = datagen::BuildLake(spec);
  size_t lake_bytes = 0;
  for (const Table& table : built.lake.tables()) {
    lake_bytes += table.ApproxBytes();
  }
  auto drg = BuildDrgFromKfk(built.lake);
  drg.status().Abort("oocore drg");

  std::printf("oocore: %zu tables, lake %.1f KiB\n", built.lake.num_tables(),
              lake_bytes / 1024.0);

  // Unbudgeted baseline: the fingerprint/digest every other run must
  // reproduce, and the cache's natural peak. The engine stays alive so its
  // metrics registry can back the BENCH json.
  std::unique_ptr<AutoFeat> baseline_engine;
  OocoreRun baseline = RunOnce(built, *drg, /*threads=*/1, /*budget=*/0,
                               EvictionStress::kNone, &baseline_engine);
  // Budget: a sixteenth of what the workload naturally wants (the cache's
  // unbudgeted peak covers essentially every key column of the lake), so
  // the lake is well past 10x the budget and eviction churns throughout.
  const size_t budget = std::min(static_cast<size_t>(baseline.cache_peak_bytes),
                                 lake_bytes) /
                        16;
  std::printf(
      "  unbudgeted: %.3fs, cache peak %.1f KiB -> budget %.1f KiB "
      "(lake/budget = %.0fx)\n",
      baseline.seconds, baseline.cache_peak_bytes / 1024.0, budget / 1024.0,
      budget > 0 ? static_cast<double>(lake_bytes) / budget : 0.0);

  int failures = 0;
  if (budget == 0) {
    std::fprintf(stderr, "FAIL: unbudgeted cache peak is zero\n");
    return 1;
  }
  if (lake_bytes < 10 * budget) {
    std::fprintf(stderr,
                 "FAIL: lake (%zu bytes) is not 10x the budget (%zu bytes); "
                 "the run does not demonstrate out-of-core operation\n",
                 lake_bytes, budget);
    ++failures;
  }

  std::vector<BenchTiming> timings;
  timings.push_back({"unbudgeted_t1", 1, baseline.seconds});

  struct Variant {
    const char* label;
    size_t threads;
    size_t budget;
    EvictionStress stress;
  };
  const Variant variants[] = {
      {"budget_lru_t1", 1, budget, EvictionStress::kNone},
      {"budget_lru_t2", 2, budget, EvictionStress::kNone},
      {"budget_lru_t8", 8, budget, EvictionStress::kNone},
      {"evict_all_t1", 1, budget, EvictionStress::kEvictAll},
      {"evict_all_t2", 2, budget, EvictionStress::kEvictAll},
      {"evict_all_t8", 8, budget, EvictionStress::kEvictAll},
      {"unbudgeted_t8", 8, 0, EvictionStress::kNone},
  };
  double budget_t1_seconds = 0.0;
  for (const Variant& v : variants) {
    OocoreRun run = RunOnce(built, *drg, v.threads, v.budget, v.stress);
    timings.push_back({v.label, v.threads, run.seconds});
    const bool budgeted = v.budget > 0;
    std::printf("  %-14s %.3fs, cache peak %.1f KiB%s\n", v.label,
                run.seconds, run.cache_peak_bytes / 1024.0,
                budgeted ? "" : " (unbounded)");
    if (run.fingerprint != baseline.fingerprint) {
      std::fprintf(stderr, "FAIL: %s diverged from the baseline features\n",
                   v.label);
      ++failures;
    }
    if (run.digest != baseline.digest) {
      std::fprintf(stderr,
                   "FAIL: %s deterministic obs digest differs from the "
                   "baseline\n",
                   v.label);
      ++failures;
    }
    if (budgeted &&
        run.cache_peak_bytes > static_cast<int64_t>(v.budget)) {
      std::fprintf(stderr,
                   "FAIL: %s cache peak %lld bytes exceeds the budget %zu\n",
                   v.label, static_cast<long long>(run.cache_peak_bytes),
                   v.budget);
      ++failures;
    }
    if (std::string(v.label) == "budget_lru_t1") {
      budget_t1_seconds = run.seconds;
    }
  }

  // Slowdown gate with a 50 ms absolute floor: quick-mode baselines are a
  // few milliseconds and scheduler noise would dominate a pure ratio.
  const double allowed =
      baseline.seconds * 3.0 + (FullMode() ? 0.0 : 0.05);
  if (budget_t1_seconds > allowed) {
    std::fprintf(stderr,
                 "FAIL: budgeted run took %.3fs, more than 3x the "
                 "unbudgeted %.3fs\n",
                 budget_t1_seconds, baseline.seconds);
    ++failures;
  }

  WriteBenchJson("oocore", timings, baseline_engine->metrics());
  if (failures > 0) {
    std::fprintf(stderr, "oocore: %d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("oocore: all gates passed\n");
  return 0;
}

}  // namespace
}  // namespace autofeat::benchx

int main() { return autofeat::benchx::Main(); }
