#include "stats/correlation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace autofeat {

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  assert(x.size() == y.size());
  double sx = 0, sy = 0;
  size_t n = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::isnan(x[i]) || std::isnan(y[i])) continue;
    sx += x[i];
    sy += y[i];
    ++n;
  }
  if (n < 2) return 0.0;
  double mx = sx / static_cast<double>(n);
  double my = sy / static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::isnan(x[i]) || std::isnan(y[i])) continue;
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  double r = sxy / std::sqrt(sxx * syy);
  return std::clamp(r, -1.0, 1.0);
}

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  std::vector<size_t> idx;
  idx.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isnan(values[i])) idx.push_back(i);
  }
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return values[a] < values[b];
  });

  std::vector<double> ranks(values.size(),
                            std::numeric_limits<double>::quiet_NaN());
  size_t i = 0;
  while (i < idx.size()) {
    size_t j = i;
    while (j + 1 < idx.size() && values[idx[j + 1]] == values[idx[i]]) ++j;
    // Average rank for the tie group [i, j] (1-based ranks).
    double avg = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2;
    for (size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  assert(x.size() == y.size());
  // Mask pairwise: rank only the complete pairs so ranks stay comparable.
  std::vector<double> xm(x.size(), std::numeric_limits<double>::quiet_NaN());
  std::vector<double> ym(y.size(), std::numeric_limits<double>::quiet_NaN());
  for (size_t i = 0; i < x.size(); ++i) {
    if (!std::isnan(x[i]) && !std::isnan(y[i])) {
      xm[i] = x[i];
      ym[i] = y[i];
    }
  }
  return PearsonCorrelation(FractionalRanks(xm), FractionalRanks(ym));
}

}  // namespace autofeat
