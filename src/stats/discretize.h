// Discretisation of continuous features for information-theoretic metrics.
//
// Entropy/MI-based metrics operate on discrete codes; continuous features are
// binned first. Default policy (DESIGN.md §4.7): equal-frequency bins,
// min(10, ceil(sqrt(n))) of them.

#ifndef AUTOFEAT_STATS_DISCRETIZE_H_
#define AUTOFEAT_STATS_DISCRETIZE_H_

#include <cstddef>
#include <vector>

namespace autofeat {

/// Code used for missing (NaN) values in discretised output. Missing values
/// form their own category so they carry (rather than destroy) information.
inline constexpr int kMissingBin = -1;

/// Default bin count for n samples: min(10, ceil(sqrt(n))), at least 2.
int DefaultBinCount(size_t n);

/// Equal-width binning of `values` into `bins` buckets over [min, max].
/// NaN maps to kMissingBin. A constant column maps to bin 0.
std::vector<int> DiscretizeEqualWidth(const std::vector<double>& values,
                                      int bins);

/// Equal-frequency (quantile) binning. Ties share a bin; NaN -> kMissingBin.
std::vector<int> DiscretizeEqualFrequency(const std::vector<double>& values,
                                          int bins);

/// Treats values as categorical: each distinct value gets a code by first
/// occurrence; NaN -> kMissingBin. Suitable for already-discrete data.
std::vector<int> CodesFromValues(const std::vector<double>& values);

/// Number of distinct non-missing codes in `codes`.
size_t DistinctCodeCount(const std::vector<int>& codes);

}  // namespace autofeat

#endif  // AUTOFEAT_STATS_DISCRETIZE_H_
