// Relevance analysis (paper §V-C): scores features against the label with a
// pluggable heuristic, then keeps the top-kappa ("select k best", §VI).

#ifndef AUTOFEAT_FS_RELEVANCE_H_
#define AUTOFEAT_FS_RELEVANCE_H_

#include <string>
#include <vector>

#include "fs/feature_view.h"
#include "util/rng.h"

namespace autofeat {

/// The relevance heuristics evaluated in §V-C. Spearman is AutoFeat's
/// recommended default.
enum class RelevanceKind {
  kInformationGain,
  kSymmetricalUncertainty,
  kPearson,
  kSpearman,
  kRelief,
};

const char* RelevanceKindName(RelevanceKind kind);

/// A feature together with a selection score (higher = better).
struct FeatureScore {
  std::string name;
  double score = 0.0;
};

struct RelevanceOptions {
  RelevanceKind kind = RelevanceKind::kSpearman;
  /// Max features retained (the paper's kappa).
  size_t top_k = 15;
  /// Features scoring at or below this are considered irrelevant. Correlation
  /// metrics use |r|, so 0 keeps anything with non-zero association.
  double min_score = 1e-9;
  /// Instances sampled by Relief.
  size_t relief_samples = 64;
  uint64_t seed = 42;
};

/// Scores the features of `view` at indices `feature_indices` (all features
/// if empty) against the view's label. Correlation metrics report |r|.
std::vector<FeatureScore> ScoreRelevance(
    const FeatureView& view, const std::vector<size_t>& feature_indices,
    const RelevanceOptions& options);

/// Sorts scores descending (ties broken by ascending name, so the result
/// never depends on input order) and keeps the top-k strictly above
/// min_score (the "select kappa best" heuristic of §VI).
std::vector<FeatureScore> SelectKBest(std::vector<FeatureScore> scores,
                                      size_t k, double min_score);

}  // namespace autofeat

#endif  // AUTOFEAT_FS_RELEVANCE_H_
