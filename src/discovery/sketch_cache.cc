#include "discovery/sketch_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "discovery/data_lake.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace autofeat {

ColumnSketch BuildColumnSketch(const Column& col, size_t max_sample) {
  ColumnSketch sketch;
  std::unordered_set<std::string> values;
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsNull(i)) values.insert(col.KeyAt(i));
  }
  sketch.num_distinct = values.size();
  if (values.size() <= max_sample) {
    sketch.values = std::move(values);
    return sketch;
  }
  // Bottom-k by hash: the kept set is a deterministic function of the value
  // set (ranking by (hash, value) has no ties across distinct values).
  std::vector<std::pair<size_t, std::string>> hashed;
  hashed.reserve(values.size());
  std::hash<std::string> hasher;
  for (auto& v : values) hashed.emplace_back(hasher(v), v);
  std::nth_element(hashed.begin(),
                   hashed.begin() + static_cast<ptrdiff_t>(max_sample),
                   hashed.end());
  for (size_t i = 0; i < max_sample; ++i) {
    sketch.values.insert(std::move(hashed[i].second));
  }
  return sketch;
}

namespace {

size_t SketchIntersection(const ColumnSketch& a, const ColumnSketch& b) {
  const auto& small = a.values.size() <= b.values.size() ? a.values : b.values;
  const auto& large = a.values.size() <= b.values.size() ? b.values : a.values;
  size_t inter = 0;
  for (const auto& v : small) inter += large.count(v);
  return inter;
}

}  // namespace

double SketchContainment(const ColumnSketch& a, const ColumnSketch& b) {
  if (a.values.empty() || b.values.empty()) return 0.0;
  size_t smaller = std::min(a.values.size(), b.values.size());
  return static_cast<double>(SketchIntersection(a, b)) /
         static_cast<double>(smaller);
}

double SketchJaccard(const ColumnSketch& a, const ColumnSketch& b) {
  if (a.values.empty() && b.values.empty()) return 0.0;
  size_t inter = SketchIntersection(a, b);
  size_t uni = a.values.size() + b.values.size() - inter;
  return uni == 0 ? 0.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

LakeSketchCache LakeSketchCache::Build(const DataLake& lake,
                                       size_t max_sample, ThreadPool* pool,
                                       obs::MetricsRegistry* metrics) {
  LakeSketchCache cache;
  cache.max_sample_ = max_sample;
  obs::Counter* builds = obs::GetCounter(metrics, "sketch_cache.builds");
  obs::Gauge* bytes = obs::GetGauge(metrics, "sketch_cache.bytes");
  obs::Gauge* bytes_peak = obs::GetGauge(metrics, "sketch_cache.bytes_peak");
  const auto& tables = lake.tables();
  cache.sketches_.resize(tables.size());
  obs::Tracer* tracer = pool != nullptr ? pool->tracer() : nullptr;
  obs::TaskContext ctx = obs::CaptureTaskContext(
      tables.empty() ? nullptr : tracer);
  // One task per table (columns of a table share value scans' cache
  // locality); each slot is written by exactly one task.
  ParallelFor(pool, 0, tables.size(), /*grain=*/1, [&](size_t t) {
    obs::ScopedWorkerSpan span(ctx, "sketch.table");
    const Table& table = tables[t];
    std::vector<ColumnSketch> sketches;
    sketches.reserve(table.num_columns());
    size_t footprint = 0;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      sketches.push_back(BuildColumnSketch(table.column(c), max_sample));
      footprint += sketches.back().ApproxBytes();
    }
    obs::Increment(builds, table.num_columns());
    obs::AddBytesWithPeak(bytes, bytes_peak, static_cast<int64_t>(footprint));
    cache.sketches_[t] = std::move(sketches);
  });
  return cache;
}

}  // namespace autofeat
