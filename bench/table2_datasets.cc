// Table II: overview of the evaluation datasets. Prints the registry
// entries side by side with the properties of the synthetic lakes actually
// built (rows, #joinable tables, #features, reference accuracy) plus the
// scale factor applied for the single-core budget.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace autofeat;
  using namespace autofeat::benchx;

  PrintModeBanner("Table II: dataset overview");
  std::printf("%-12s %9s %9s %7s %9s %9s %8s %7s\n", "dataset", "rows",
              "built", "scale", "#tables", "#features", "best_acc", "schema");
  PrintRule(80);
  for (const auto& raw : datagen::PaperDatasets()) {
    datagen::DatasetSpec spec = ScaledSpec(raw);
    datagen::BuiltLake built = datagen::BuildPaperLake(spec, 42);
    size_t total_features = 0;
    for (const auto& truth : built.truth) total_features += truth.num_features;
    auto base = built.lake.GetTable(built.base_table);
    base.status().Abort();
    // Base features = columns minus key and label.
    total_features += (*base)->num_columns() - 2;
    double scale = static_cast<double>(spec.paper_rows) /
                   static_cast<double>((*base)->num_rows());
    std::printf("%-12s %9zu %9zu %6.1fx %9zu %9zu %8.3f %7s\n",
                spec.name.c_str(), spec.paper_rows, (*base)->num_rows(),
                scale, built.truth.size(), total_features,
                spec.reference_accuracy,
                spec.star_schema ? "star" : "snow");
  }
  PrintRule(80);
  std::printf("paper column values: rows / #joinable tables / #features / "
              "best accuracy (openml.org)\n");
  return 0;
}
