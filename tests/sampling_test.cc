#include "relational/sampling.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

namespace autofeat {
namespace {

Table MakeLabeled(size_t n, double positive_rate) {
  Table t("labeled");
  std::vector<int64_t> ids(n), labels(n);
  size_t positives = static_cast<size_t>(positive_rate * n);
  for (size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<int64_t>(i);
    labels[i] = i < positives ? 1 : 0;
  }
  t.AddColumn("id", Column::Int64s(std::move(ids))).Abort();
  t.AddColumn("label", Column::Int64s(std::move(labels))).Abort();
  return t;
}

TEST(SampleRowsTest, ReturnsRequestedCount) {
  Table t = MakeLabeled(100, 0.5);
  Rng rng(1);
  EXPECT_EQ(SampleRows(t, 30, &rng).num_rows(), 30u);
}

TEST(SampleRowsTest, OversampleReturnsAll) {
  Table t = MakeLabeled(10, 0.5);
  Rng rng(1);
  EXPECT_EQ(SampleRows(t, 100, &rng).num_rows(), 10u);
}

TEST(SampleRowsTest, NoDuplicates) {
  Table t = MakeLabeled(100, 0.5);
  Rng rng(5);
  Table s = SampleRows(t, 50, &rng);
  auto ids = *s.GetColumn("id");
  std::unordered_set<int64_t> seen;
  for (size_t i = 0; i < ids->size(); ++i) {
    EXPECT_TRUE(seen.insert(ids->GetInt64(i)).second);
  }
}

TEST(StratifiedSampleTest, PreservesClassProportions) {
  Table t = MakeLabeled(1000, 0.2);
  Rng rng(3);
  auto s = StratifiedSample(t, "label", 200, &rng);
  ASSERT_TRUE(s.ok());
  auto labels = *s->GetColumn("label");
  size_t positives = 0;
  for (size_t i = 0; i < labels->size(); ++i) {
    positives += labels->GetInt64(i);
  }
  double rate = static_cast<double>(positives) / labels->size();
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(StratifiedSampleTest, EveryClassKeepsAtLeastOneRow) {
  Table t = MakeLabeled(1000, 0.001);  // One positive row.
  Rng rng(3);
  auto s = StratifiedSample(t, "label", 10, &rng);
  ASSERT_TRUE(s.ok());
  auto labels = *s->GetColumn("label");
  bool has_positive = false;
  for (size_t i = 0; i < labels->size(); ++i) {
    if (labels->GetInt64(i) == 1) has_positive = true;
  }
  EXPECT_TRUE(has_positive);
}

TEST(StratifiedSampleTest, MissingLabelColumnFails) {
  Table t = MakeLabeled(10, 0.5);
  Rng rng(1);
  EXPECT_FALSE(StratifiedSample(t, "nope", 5, &rng).ok());
}

TEST(TrainTestSplitTest, PartitionsAllRows) {
  Table t = MakeLabeled(100, 0.3);
  Rng rng(9);
  auto split = TrainTestSplit(t, 0.2, "label", &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size() + split->test.size(), 100u);
  std::unordered_set<size_t> all(split->train.begin(), split->train.end());
  for (size_t i : split->test) {
    EXPECT_TRUE(all.insert(i).second) << "row in both splits: " << i;
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplitTest, StratifiedKeepsBothClassesInTrain) {
  Table t = MakeLabeled(50, 0.1);
  Rng rng(2);
  auto split = TrainTestSplit(t, 0.2, "label", &rng);
  ASSERT_TRUE(split.ok());
  auto labels = *t.GetColumn("label");
  size_t train_pos = 0;
  for (size_t i : split->train) train_pos += labels->GetInt64(i);
  EXPECT_GT(train_pos, 0u);
}

TEST(TrainTestSplitTest, UnstratifiedSplitSizes) {
  Table t = MakeLabeled(100, 0.5);
  Rng rng(2);
  auto split = TrainTestSplit(t, 0.25, "", &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->test.size(), 25u);
  EXPECT_EQ(split->train.size(), 75u);
}

TEST(TrainTestSplitTest, RejectsDegenerateFraction) {
  Table t = MakeLabeled(10, 0.5);
  Rng rng(2);
  EXPECT_FALSE(TrainTestSplit(t, 0.0, "", &rng).ok());
  EXPECT_FALSE(TrainTestSplit(t, 1.0, "", &rng).ok());
}

// Property: across fractions, the test share is within one row per stratum.
class SplitFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitFractionTest, TestShareApproximatesFraction) {
  double fraction = GetParam();
  Table t = MakeLabeled(400, 0.4);
  Rng rng(11);
  auto split = TrainTestSplit(t, fraction, "label", &rng);
  ASSERT_TRUE(split.ok());
  double share = static_cast<double>(split->test.size()) / 400.0;
  EXPECT_NEAR(share, fraction, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitFractionTest,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5));

}  // namespace
}  // namespace autofeat
