#include "discovery/join_index_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "discovery/data_lake.h"
#include "graph/drg.h"
#include "obs/event_log.h"
#include "obs/memory.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace autofeat {

namespace {

// FNV-1a over "table\0column": a stable per-entry stream id, so the
// representative draws do not depend on which caller builds an entry first
// (and rebuilds after eviction reproduce the exact same index).
uint64_t EntryStream(const std::string& table, const std::string& column) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001B3ULL;
    }
    h ^= 0;  // the '\0' separator
    h *= 0x100000001B3ULL;
  };
  mix(table);
  mix(column);
  return h;
}

uint64_t KeyHash(const std::string& key) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

JoinIndexCache::JoinIndexCache(const DataLake* lake, uint64_t seed,
                               obs::MetricsRegistry* metrics,
                               obs::Tracer* tracer, size_t budget_bytes)
    : lake_(lake),
      seed_(seed),
      budget_bytes_(budget_bytes),
      tracer_(tracer),
      requests_(obs::GetCounter(metrics, "join_index_cache.requests")),
      builds_(obs::GetCounter(metrics, "join_index_cache.builds")),
      // Everything below depends on the eviction schedule (and, under a
      // budget, on build interleaving), so it is excluded from the
      // deterministic digest — see the header's metrics-semantics note.
      hits_(obs::GetCounter(metrics, "join_index_cache.hits",
                            /*deterministic=*/false)),
      rebuilds_(obs::GetCounter(metrics, "join_index_cache.rebuilds",
                                /*deterministic=*/false)),
      evictions_(obs::GetCounter(metrics, "join_index_cache.evictions",
                                 /*deterministic=*/false)),
      bytes_(obs::GetGauge(metrics, "join_index_cache.bytes",
                           /*deterministic=*/false)),
      bytes_peak_(obs::GetGauge(metrics, "join_index_cache.bytes_peak",
                                /*deterministic=*/false)),
      key_cardinality_(
          obs::GetHistogram(metrics, "join_index_cache.key_cardinality")) {}

void JoinIndexCache::Account(int64_t delta) {
  obs::AddBytesWithPeak(bytes_, bytes_peak_, delta);
}

std::shared_ptr<JoinIndexCache::Entry> JoinIndexCache::EntryFor(
    const std::string& key, uint64_t tick) {
  std::shared_ptr<Entry>& slot = entries_[key];
  if (slot == nullptr) slot = std::make_shared<Entry>();
  slot->last_used = std::max(slot->last_used, tick);
  return slot;
}

void JoinIndexCache::EvictForLocked(size_t incoming, const Entry* keep) {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ + incoming > budget_bytes_) {
    // Victim: least-recently-used resident entry; among entries touched by
    // the same batch tick, the largest footprint goes first (most bytes
    // reclaimed per rebuild risked — the cost-aware tie-break). The final
    // key comparison only makes victim order deterministic.
    Entry* victim = nullptr;
    const std::string* victim_key = nullptr;
    for (const auto& [key, entry] : entries_) {
      if (entry->index == nullptr || entry.get() == keep) continue;
      if (victim == nullptr ||
          entry->last_used < victim->last_used ||
          (entry->last_used == victim->last_used &&
           (entry->bytes > victim->bytes ||
            (entry->bytes == victim->bytes && key < *victim_key)))) {
        victim = entry.get();
        victim_key = &key;
      }
    }
    if (victim == nullptr) break;  // everything left is pinned-out or `keep`
    resident_bytes_ -= victim->bytes;
    Account(-static_cast<int64_t>(victim->bytes));
    const size_t sep = victim_key->find('\0');
    obs::Append(event_log_, "cache_evict",
                {{"cache", "join_index"},
                 {"table", victim_key->substr(0, sep)},
                 {"column", victim_key->substr(sep + 1)},
                 {"bytes", victim->bytes}});
    victim->index.reset();
    victim->bytes = 0;
    obs::Increment(evictions_);
  }
}

Result<JoinIndexCache::IndexPin> JoinIndexCache::GetOrBuild(
    const std::string& table, const std::string& column) {
  return GetOrBuildWithTick(table, column, /*tick=*/0);
}

Result<JoinIndexCache::IndexPin> JoinIndexCache::GetOrBuildWithTick(
    const std::string& table, const std::string& column, uint64_t tick) {
  obs::Increment(requests_);
  std::string key = table + '\0' + column;
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tick == 0) tick = ++tick_;
    entry = EntryFor(key, tick);
    if (entry->index != nullptr) {
      obs::Increment(hits_);
      return entry->index;
    }
    if (entry->failed) {
      obs::Increment(hits_);
      return entry->failure;
    }
  }

  // Miss: serialise builders of this entry; latecomers re-check and count
  // as hits. The build itself runs with only build_mutex held.
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  bool rebuild = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entry->index != nullptr) {
      obs::Increment(hits_);
      return entry->index;
    }
    if (entry->failed) {
      obs::Increment(hits_);
      return entry->failure;
    }
    rebuild = entry->ever_built;
  }

  obs::ScopedWorkerSpan span(tracer_, "join_index.build");
  auto table_result = lake_->GetTable(table);
  Result<const Column*> column_result =
      table_result.ok() ? (*table_result)->GetColumn(column)
                        : Result<const Column*>(table_result.status());
  if (!column_result.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    entry->failed = true;
    entry->failure = column_result.status();
    if (!entry->ever_built) {
      entry->ever_built = true;
      obs::Increment(builds_);
    }
    return entry->failure;
  }
  IndexPin pin = std::make_shared<JoinKeyIndex>(BuildJoinKeyIndex(
      **column_result, DeriveSeed(seed_, EntryStream(table, column))));
  size_t cost = pin->ApproxBytes();

  std::lock_guard<std::mutex> lock(mutex_);
  if (!rebuild) {
    entry->ever_built = true;
    obs::Increment(builds_);
    obs::Record(key_cardinality_, pin->num_distinct_keys());
  } else {
    obs::Increment(rebuilds_);
    obs::Append(event_log_, "cache_rebuild",
                {{"cache", "join_index"},
                 {"table", table},
                 {"column", column},
                 {"bytes", cost}});
  }
  // Publish only while it fits: an entry larger than the whole budget is
  // handed to the caller pin-only, so the resident gauge never exceeds the
  // budget (the invariant cache_eviction_test asserts via bytes_peak).
  if (budget_bytes_ == 0 || cost <= budget_bytes_) {
    EvictForLocked(cost, entry.get());
    entry->index = pin;
    entry->bytes = cost;
    resident_bytes_ += cost;
    Account(static_cast<int64_t>(cost));
  }
  return pin;
}

void JoinIndexCache::Prewarm(const DatasetRelationGraph& drg,
                             ThreadPool* pool) {
  // Every (to_node, to_column) of every oriented edge is a potential join
  // target; neighbour lists are symmetric, so this covers both directions.
  std::vector<std::pair<std::string, std::string>> targets;
  for (size_t node = 0; node < drg.num_nodes(); ++node) {
    for (size_t neighbor : drg.Neighbors(node)) {
      for (const JoinStep& edge : drg.EdgesBetween(node, neighbor)) {
        targets.emplace_back(drg.NodeName(edge.to_node), edge.to_column);
      }
    }
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  // One recency tick for the whole batch: the prewarmed entries are equally
  // recent, which makes the cost-aware (largest-first) tie-break decide
  // eviction order among them under a budget.
  uint64_t batch_tick;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_tick = ++tick_;
  }
  ParallelFor(pool, 0, targets.size(), /*grain=*/1, [&](size_t i) {
    // Failures surface (again) at join time; prewarm just drops them.
    GetOrBuildWithTick(targets[i].first, targets[i].second, batch_tick)
        .status();
  });
}

size_t JoinIndexCache::CarryOver(
    const JoinIndexCache& prev,
    const std::unordered_set<std::string>& invalidated_tables) {
  if (prev.seed_ != seed_) return 0;
  // Snapshot the survivors under prev's lock, then install under ours —
  // never both at once (no lock-order relationship between two caches).
  struct Carried {
    std::string key;
    IndexPin index;
    size_t bytes;
    uint64_t last_used;
  };
  std::vector<Carried> carried;
  uint64_t prev_tick = 0;
  {
    std::lock_guard<std::mutex> lock(prev.mutex_);
    prev_tick = prev.tick_;
    for (const auto& [key, entry] : prev.entries_) {
      if (entry->index == nullptr) continue;
      const std::string table = key.substr(0, key.find('\0'));
      if (invalidated_tables.count(table) > 0) continue;
      if (!lake_->HasTable(table)) continue;
      carried.push_back({key, entry->index, entry->bytes, entry->last_used});
    }
  }
  // Largest last_used installed last so budget eviction (LRU) sheds the
  // least recently used survivors first, preserving prev's recency order.
  std::sort(carried.begin(), carried.end(), [](const Carried& a,
                                               const Carried& b) {
    return a.last_used != b.last_used ? a.last_used < b.last_used
                                      : a.key < b.key;
  });
  std::lock_guard<std::mutex> lock(mutex_);
  tick_ = std::max(tick_, prev_tick);
  size_t installed = 0;
  for (Carried& c : carried) {
    if (budget_bytes_ != 0 && c.bytes > budget_bytes_) continue;
    std::shared_ptr<Entry>& slot = entries_[c.key];
    if (slot == nullptr) slot = std::make_shared<Entry>();
    if (slot->index != nullptr) continue;
    EvictForLocked(c.bytes, slot.get());
    slot->index = std::move(c.index);
    slot->bytes = c.bytes;
    slot->last_used = c.last_used;
    slot->ever_built = true;
    resident_bytes_ += c.bytes;
    Account(static_cast<int64_t>(c.bytes));
    ++installed;
  }
  return installed;
}

void JoinIndexCache::EvictAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : entries_) {
    if (entry->index == nullptr) continue;
    resident_bytes_ -= entry->bytes;
    Account(-static_cast<int64_t>(entry->bytes));
    const size_t sep = key.find('\0');
    obs::Append(event_log_, "cache_evict",
                {{"cache", "join_index"},
                 {"table", key.substr(0, sep)},
                 {"column", key.substr(sep + 1)},
                 {"bytes", entry->bytes}});
    entry->index.reset();
    entry->bytes = 0;
    obs::Increment(evictions_);
  }
}

void JoinIndexCache::EvictRandomHalf(uint64_t draw) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : entries_) {
    if (entry->index == nullptr) continue;
    if (((KeyHash(key) ^ draw) & 1) == 0) continue;
    resident_bytes_ -= entry->bytes;
    Account(-static_cast<int64_t>(entry->bytes));
    const size_t sep = key.find('\0');
    obs::Append(event_log_, "cache_evict",
                {{"cache", "join_index"},
                 {"table", key.substr(0, sep)},
                 {"column", key.substr(sep + 1)},
                 {"bytes", entry->bytes}});
    entry->index.reset();
    entry->bytes = 0;
    obs::Increment(evictions_);
  }
}

size_t JoinIndexCache::num_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t JoinIndexCache::num_resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t resident = 0;
  for (const auto& [key, entry] : entries_) {
    resident += entry->index != nullptr ? 1 : 0;
  }
  return resident;
}

size_t JoinIndexCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

}  // namespace autofeat
