#include "ml/gbdt.h"

#include <gtest/gtest.h>

#include "support/ml_fixtures.h"

namespace autofeat::ml {
namespace {

TEST(FeatureBinnerTest, BinsAreMonotone) {
  Table t("t");
  t.AddColumn("x", Column::Doubles({5, 1, 3, 2, 4})).Abort();
  t.AddColumn("label", Column::Int64s({0, 1, 0, 1, 0})).Abort();
  Dataset ds = Dataset::FromTable(t, "label").MoveValue();
  FeatureBinner binner;
  binner.Fit(ds, 16);
  EXPECT_LE(binner.Bin(0, 1.0), binner.Bin(0, 2.0));
  EXPECT_LE(binner.Bin(0, 2.0), binner.Bin(0, 5.0));
  EXPECT_EQ(binner.Bin(0, -100.0), 0);
  EXPECT_EQ(binner.Bin(0, 100.0), binner.num_bins(0) - 1);
}

TEST(FeatureBinnerTest, ConstantFeatureSingleBin) {
  Table t("t");
  t.AddColumn("x", Column::Doubles({2, 2, 2})).Abort();
  t.AddColumn("label", Column::Int64s({0, 1, 0})).Abort();
  Dataset ds = Dataset::FromTable(t, "label").MoveValue();
  FeatureBinner binner;
  binner.Fit(ds, 16);
  EXPECT_EQ(binner.num_bins(0), 1u);
}

TEST(FeatureBinnerTest, MaxBinsRespected) {
  Dataset ds = MakeBlobs(1000, 1.0, 1);
  FeatureBinner binner;
  binner.Fit(ds, 32);
  for (size_t f = 0; f < ds.num_features(); ++f) {
    EXPECT_LE(binner.num_bins(f), 32u);
  }
}

TEST(GbdtTest, LearnsBlobs) {
  Dataset train = MakeBlobs(500, 1.5, 2);
  Dataset test = MakeBlobs(300, 1.5, 3);
  Gbdt model = Gbdt::LightGbmLike(42);
  EXPECT_GT(HoldoutAccuracy(model, train, test), 0.92);
}

TEST(GbdtTest, SolvesXor) {
  Dataset train = MakeXor(500, 4);
  Dataset test = MakeXor(300, 5);
  Gbdt model = Gbdt::LightGbmLike(42);
  EXPECT_GT(HoldoutAccuracy(model, train, test), 0.95);
}

TEST(GbdtTest, XgbPresetAlsoLearns) {
  Dataset train = MakeBlobs(500, 1.5, 6);
  Dataset test = MakeBlobs(300, 1.5, 7);
  Gbdt model = Gbdt::XgBoostLike(42);
  EXPECT_GT(HoldoutAccuracy(model, train, test), 0.92);
}

TEST(GbdtTest, PresetNames) {
  EXPECT_EQ(Gbdt::LightGbmLike().name(), "LightGBM-like");
  EXPECT_EQ(Gbdt::XgBoostLike().name(), "XGBoost-like");
}

TEST(GbdtTest, MoreRoundsImproveTrainingFit) {
  Dataset train = MakeBlobs(300, 0.8, 8);
  GbdtOptions few;
  few.num_rounds = 3;
  GbdtOptions many;
  many.num_rounds = 100;
  Gbdt small(few), large(many);
  ASSERT_TRUE(small.Fit(train).ok());
  ASSERT_TRUE(large.Fit(train).ok());
  double acc_small = Accuracy(train.labels(), small.PredictProbaAll(train));
  double acc_large = Accuracy(train.labels(), large.PredictProbaAll(train));
  EXPECT_GE(acc_large, acc_small);
}

TEST(GbdtTest, ImbalancedBaseScoreFollowsPrior) {
  // 90/10 class prior with uninformative features: predictions stay near
  // the prior, never the inverse.
  Rng rng(9);
  Table t("t");
  Column x(DataType::kDouble), label(DataType::kInt64);
  for (size_t i = 0; i < 300; ++i) {
    x.AppendDouble(rng.Normal(0, 1));
    label.AppendInt64(i % 10 == 0 ? 1 : 0);
  }
  t.AddColumn("x", std::move(x)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  Dataset ds = Dataset::FromTable(t, "label").MoveValue();
  GbdtOptions options;
  options.num_rounds = 10;
  Gbdt model(options);
  ASSERT_TRUE(model.Fit(ds).ok());
  double mean = 0;
  for (size_t r = 0; r < ds.num_rows(); ++r) {
    mean += model.PredictProba(ds, r);
  }
  mean /= static_cast<double>(ds.num_rows());
  EXPECT_LT(mean, 0.35);
}

TEST(GbdtTest, EmptyTrainingFails) {
  Gbdt model;
  EXPECT_FALSE(model.Fit(Dataset()).ok());
}

TEST(GbdtTest, DeterministicGivenSeed) {
  Dataset train = MakeBlobs(200, 1.0, 10);
  Gbdt a = Gbdt::LightGbmLike(5);
  Gbdt b = Gbdt::LightGbmLike(5);
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  for (size_t r = 0; r < train.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(a.PredictProba(train, r), b.PredictProba(train, r));
  }
}

TEST(GbdtTest, ImportancesFavorSignalFeatures) {
  Dataset train = MakeBlobs(500, 1.5, 11);
  Gbdt model = Gbdt::LightGbmLike(42);
  ASSERT_TRUE(model.Fit(train).ok());
  auto imp = model.FeatureImportances();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[1], imp[2]);
}

TEST(GbdtTest, NumTreesEqualsRounds) {
  Dataset train = MakeBlobs(100, 1.0, 12);
  GbdtOptions options;
  options.num_rounds = 17;
  Gbdt model(options);
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_EQ(model.num_trees(), 17u);
}

}  // namespace
}  // namespace autofeat::ml
