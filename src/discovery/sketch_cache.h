// Precomputed distinct-value sketches for DRG construction, with an
// optional memory budget enforced by LRU eviction + rebuild-on-miss.
//
// All-pairs joinability matching is quadratic in the number of tables, and
// the naive formulation re-scans (and re-sketches) each column once per
// table pair it participates in. A LakeSketchCache computes every column's
// bottom-k-by-hash sketch once per residency — in parallel over tables when
// a ThreadPool is given — so pair scoring degenerates to set intersections
// over cached sketches. The sketch keeps the values with the smallest
// hashes, so the *same* values survive on both sides of any comparison and
// containment/Jaccard estimates are stable under sampling (see
// schema_matcher.h).
//
// Memory budget: with budget_bytes > 0 the per-table entries are bounded by
// cost-aware LRU eviction exactly as in JoinIndexCache (least recently used
// first; largest footprint first within one batch tick; an entry bigger
// than the whole budget is handed out pin-only). Sketches are pure
// functions of (table contents, max_sample), so rebuilds are byte-identical
// and eviction never changes the discovered DRG. Callers hold entries
// through shared_ptr pins; `table_sketches()` returns a bare reference and
// is only stable on an unbudgeted cache.

#ifndef AUTOFEAT_DISCOVERY_SKETCH_CACHE_H_
#define AUTOFEAT_DISCOVERY_SKETCH_CACHE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "table/table.h"

namespace autofeat {

namespace obs {
class EventLog;
}  // namespace obs

class DataLake;
class ThreadPool;

/// \brief Distinct-value summary of one column.
struct ColumnSketch {
  /// Up to `max_sample` distinct non-null values (bottom-k by hash).
  std::unordered_set<std::string> values;
  /// Exact distinct non-null count before sampling (for the low-cardinality
  /// evidence discount, which needs the true count, not the sample size).
  size_t num_distinct = 0;

  /// Approximate heap footprint in bytes. Size-based (value count and
  /// lengths, not bucket capacity), so equal content reports equal bytes
  /// and the `sketch_cache.bytes` gauge stays deterministic.
  size_t ApproxBytes() const {
    size_t total = sizeof(ColumnSketch);
    for (const auto& v : values) {
      total += sizeof(std::string) + v.size() + 2 * sizeof(void*);
    }
    return total;
  }
};

/// Builds the sketch of a single column.
ColumnSketch BuildColumnSketch(const Column& col, size_t max_sample);

/// Containment |A ∩ B| / min(|A|, |B|) of two sketches (0 if either empty).
double SketchContainment(const ColumnSketch& a, const ColumnSketch& b);

/// Jaccard |A ∩ B| / |A ∪ B| of two sketches (0 if both empty).
double SketchJaccard(const ColumnSketch& a, const ColumnSketch& b);

/// \brief Budget-aware cache of every lake column's sketch, one entry per
/// table (columns of a table share value scans' cache locality), indexed by
/// table position.
class LakeSketchCache {
 public:
  /// A pinned per-table entry (sketches aligned with the table's column
  /// order): stays valid across eviction until the caller drops it.
  using TableSketchesPin = std::shared_ptr<const std::vector<ColumnSketch>>;

  /// `lake` must outlive the cache. `budget_bytes` bounds the resident
  /// footprint (0 = unbounded). A non-null `metrics` counts
  /// `sketch_cache.builds` (column sketches first computed — deterministic)
  /// plus the schedule-dependent `sketch_cache.rebuilds` /
  /// `sketch_cache.evictions` counters and `sketch_cache.bytes` /
  /// `.bytes_peak` gauges (all registered non-deterministic, as in
  /// JoinIndexCache).
  LakeSketchCache(const DataLake* lake, size_t max_sample,
                  obs::MetricsRegistry* metrics = nullptr,
                  size_t budget_bytes = 0);

  /// Compatibility builder: constructs a cache over `lake` and prewarms
  /// every table (fanning out over `pool` when given; per-table sketching
  /// records `sketch.table` worker spans into the pool's attached tracer).
  /// With budget_bytes == 0 this reproduces the old eager semantics —
  /// every entry resident, `table_sketches()` references stable.
  static LakeSketchCache Build(const DataLake& lake, size_t max_sample,
                               ThreadPool* pool = nullptr,
                               obs::MetricsRegistry* metrics = nullptr,
                               size_t budget_bytes = 0);

  /// The sketches of table `table_index`, built on first request and
  /// rebuilt after eviction. Thread-safe; concurrent requests build once.
  TableSketchesPin GetOrBuild(size_t table_index);

  /// Builds every table's entry (one shared batch recency tick, as
  /// JoinIndexCache::Prewarm).
  void PrewarmAll(ThreadPool* pool = nullptr);

  /// Copies the resident entries of `prev` for every table of this cache's
  /// lake that exists in `prev`'s lake under the same *name* and is not in
  /// `invalidated_tables` (serving-layer precise invalidation; entries are
  /// matched by name because positions shift when a table is dropped).
  /// Both caches must share max_sample; sketches are pure functions of
  /// (table contents, max_sample), so carried pins equal a rebuild.
  /// Respects this cache's budget. `prev` may be serving concurrent
  /// readers. Returns the number of entries installed (the serving layer's
  /// epoch-lineage carry-over count).
  size_t CarryOver(const LakeSketchCache& prev,
                   const std::unordered_set<std::string>& invalidated_tables);

  /// Attaches a structured event log: evictions append `cache_evict` and
  /// post-eviction rebuilds append `cache_rebuild` events (obs/event_log.h).
  /// Call before the cache is shared across threads.
  void set_event_log(obs::EventLog* log) { event_log_ = log; }

  /// Evicts every resident entry. Outstanding pins stay valid.
  void EvictAll();

  /// Bare reference for unbudgeted caches (the pre-budget API); invalidated
  /// by eviction, so budgeted callers must hold a GetOrBuild pin instead.
  const std::vector<ColumnSketch>& table_sketches(size_t table_index);

  size_t num_tables() const;
  size_t max_sample() const { return max_sample_; }
  /// Entries currently holding built sketches.
  size_t num_resident() const;
  /// Sum of the resident entries' ApproxBytes (== the bytes gauge).
  size_t resident_bytes() const;
  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    std::mutex build_mutex;  // serialises builders of this entry
    // Guarded by State::mutex:
    TableSketchesPin sketches;
    size_t bytes = 0;
    uint64_t last_used = 0;
    bool ever_built = false;
  };
  // Behind a unique_ptr so the cache stays movable (mutexes are not).
  struct State {
    mutable std::mutex mutex;
    std::vector<std::shared_ptr<Entry>> entries;
    size_t resident_bytes = 0;
    uint64_t tick = 0;
  };

  TableSketchesPin GetOrBuildWithTick(size_t table_index, uint64_t tick,
                                      ThreadPool* pool);
  void EvictForLocked(size_t incoming, const Entry* keep);

  const DataLake* lake_;
  size_t max_sample_ = 0;
  size_t budget_bytes_ = 0;
  obs::Counter* builds_;
  obs::Counter* rebuilds_;
  obs::Counter* evictions_;
  obs::Gauge* bytes_;
  obs::Gauge* bytes_peak_;
  obs::EventLog* event_log_ = nullptr;
  std::unique_ptr<State> state_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_DISCOVERY_SKETCH_CACHE_H_
