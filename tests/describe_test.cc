#include "relational/describe.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

Table MakeTable() {
  Table t("profiled");
  t.AddColumn("id", Column::Int64s({1, 2, 3, 4})).Abort();
  t.AddColumn("score", Column::Doubles({1.0, 3.0, 0.0, 2.0}, {1, 1, 0, 1}))
      .Abort();
  t.AddColumn("city", Column::Strings({"a", "b", "a", "b"})).Abort();
  return t;
}

TEST(DescribeTest, ProfilesEveryColumn) {
  auto profiles = DescribeTable(MakeTable());
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "id");
  EXPECT_EQ(profiles[1].name, "score");
  EXPECT_EQ(profiles[2].name, "city");
}

TEST(DescribeTest, NumericSummary) {
  auto p = ProfileColumn("score", *(*MakeTable().GetColumn("score")));
  EXPECT_EQ(p.rows, 4u);
  EXPECT_EQ(p.nulls, 1u);
  EXPECT_NEAR(p.null_ratio(), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(p.min, 1.0);
  EXPECT_DOUBLE_EQ(p.max, 3.0);
  EXPECT_DOUBLE_EQ(p.mean, 2.0);
  EXPECT_EQ(p.distinct, 3u);
}

TEST(DescribeTest, DistinctCounting) {
  auto p = ProfileColumn("city", *(*MakeTable().GetColumn("city")));
  EXPECT_EQ(p.distinct, 2u);
  EXPECT_FALSE(p.distinct_capped);
}

TEST(DescribeTest, DistinctCapRespected) {
  Column c(DataType::kInt64);
  for (int64_t i = 0; i < 100; ++i) c.AppendInt64(i);
  auto p = ProfileColumn("wide", c, /*distinct_cap=*/10);
  EXPECT_EQ(p.distinct, 10u);
  EXPECT_TRUE(p.distinct_capped);
}

TEST(DescribeTest, KeyDetection) {
  auto profiles = DescribeTable(MakeTable());
  EXPECT_TRUE(profiles[0].LooksLikeKey());    // Unique int64.
  EXPECT_FALSE(profiles[1].LooksLikeKey());   // Continuous double.
  EXPECT_FALSE(profiles[2].LooksLikeKey());   // Repeated strings.
}

TEST(DescribeTest, AllNullColumn) {
  auto p = ProfileColumn("empty", Column::Nulls(DataType::kDouble, 5));
  EXPECT_EQ(p.nulls, 5u);
  EXPECT_EQ(p.distinct, 0u);
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_FALSE(p.LooksLikeKey());
}

TEST(DescribeTest, FormattedOutputMentionsEveryColumn) {
  std::string text = FormatTableDescription(MakeTable());
  EXPECT_NE(text.find("profiled"), std::string::npos);
  EXPECT_NE(text.find("id"), std::string::npos);
  EXPECT_NE(text.find("score"), std::string::npos);
  EXPECT_NE(text.find("city"), std::string::npos);
  EXPECT_NE(text.find("[key?]"), std::string::npos);
}

}  // namespace
}  // namespace autofeat
