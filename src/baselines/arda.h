// ARDA baseline (Chepurko et al., PVLDB 2020; paper §VII-B).
//
// ARDA supports star schemata only: it joins every table directly connected
// to the base table, then selects features by *random injection* (RIFS):
// random noise features are injected, a random forest is trained, and real
// features survive only if they out-rank the injected noise consistently
// across trials. A final wrapper sweep picks the feature-count threshold by
// validation accuracy. Its feature selection trains models repeatedly —
// which is exactly why it is slow relative to AutoFeat.
//
// The original system is closed source; like the paper, we implement the
// feature-selection component from the algorithms in the ARDA paper.

#ifndef AUTOFEAT_BASELINES_ARDA_H_
#define AUTOFEAT_BASELINES_ARDA_H_

#include <string>
#include <vector>

#include "baselines/augmenter.h"

namespace autofeat::obs {
class MetricsRegistry;
}  // namespace autofeat::obs

namespace autofeat::baselines {

struct ArdaOptions {
  /// RIFS trials (each trains one forest).
  size_t num_trials = 4;
  /// Injected random features as a fraction of real features (>= 3).
  double random_fraction = 0.2;
  /// A feature survives if it beats the median random feature in at least
  /// this fraction of trials.
  double beat_fraction = 0.5;
  /// Wrapper sweep: fractions of the surviving ranked features to evaluate.
  std::vector<double> wrapper_fractions = {0.25, 0.5, 0.75, 1.0};
  size_t forest_trees = 24;
  /// Rows sampled for the internal model training.
  size_t sample_rows = 2000;
  uint64_t seed = 42;
  /// Optional observability sink, shared with the baseline's join-index
  /// cache (`join_index_cache.*` counters).
  obs::MetricsRegistry* metrics = nullptr;
};

class Arda final : public Augmenter {
 public:
  explicit Arda(ArdaOptions options = {}) : options_(std::move(options)) {}

  Result<AugmenterResult> Augment(const DataLake& lake,
                                  const DatasetRelationGraph& drg,
                                  const std::string& base_table,
                                  const std::string& label_column) override;

  std::string name() const override { return "ARDA"; }

 private:
  ArdaOptions options_;
};

}  // namespace autofeat::baselines

#endif  // AUTOFEAT_BASELINES_ARDA_H_
