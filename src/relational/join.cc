#include "relational/join.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "table/key_dictionary.h"

namespace autofeat {

namespace {

// Appends `right`'s columns to `out` gathered by `right_rows` (sentinel ->
// null), disambiguating name collisions with per-base suffix counters
// instead of rescanning HasColumn per candidate suffix.
constexpr size_t kNoMatch = static_cast<size_t>(-1);

Status AppendGatheredRightColumns(Table* out, const Table& right,
                                  const std::vector<size_t>& right_rows) {
  std::unordered_set<std::string> used;
  used.reserve(out->num_columns() + right.num_columns());
  for (const auto& name : out->ColumnNames()) used.insert(name);
  std::unordered_map<std::string, int> next_suffix;

  for (size_t c = 0; c < right.num_columns(); ++c) {
    const Column& src = right.column(c);
    Column gathered(src.type());
    gathered.Reserve(right_rows.size());
    for (size_t r : right_rows) {
      if (r == kNoMatch) {
        gathered.AppendNull();
      } else {
        gathered.AppendFrom(src, r);
      }
    }
    std::string name = right.schema().field(c).name;
    // Disambiguate collisions (e.g. the same table joined twice on a path).
    if (used.count(name) > 0) {
      int& suffix = next_suffix.try_emplace(name, 2).first->second;
      std::string candidate;
      do {
        candidate = name + "#" + std::to_string(suffix);
        ++suffix;
      } while (used.count(candidate) > 0);
      name = std::move(candidate);
    }
    used.insert(name);
    AF_RETURN_NOT_OK(out->AddColumn(name, std::move(gathered)));
  }
  return Status::OK();
}

}  // namespace

Result<Table> NormalizeJoinCardinality(const Table& right,
                                       const std::string& key_column,
                                       Rng* rng) {
  AF_ASSIGN_OR_RETURN(const Column* key, right.GetColumn(key_column));
  // Dictionary ids are assigned in first-seen row order, so iterating them
  // in id order reproduces the deterministic group order (and the per-group
  // RNG stream) of the original string-keyed grouping.
  KeyDictionary dict = KeyDictionary::Build(*key);
  std::vector<size_t> keep;
  keep.reserve(dict.num_keys());
  for (uint32_t id = 0; id < dict.num_keys(); ++id) {
    const uint32_t* rows = dict.rows_begin(id);
    size_t count = dict.rows_count(id);
    keep.push_back(count == 1 ? rows[0] : rows[rng->UniformIndex(count)]);
  }
  return right.TakeRows(keep);
}

Result<JoinResult> Join(const Table& left, const std::string& left_key,
                        const Table& right, const std::string& right_key,
                        Rng* rng, const JoinOptions& options) {
  AF_ASSIGN_OR_RETURN(const Column* lkey, left.GetColumn(left_key));

  const Table* probe_side = &right;
  Table normalized;
  if (options.normalize_cardinality) {
    AF_ASSIGN_OR_RETURN(normalized,
                        NormalizeJoinCardinality(right, right_key, rng));
    probe_side = &normalized;
  }
  AF_ASSIGN_OR_RETURN(const Column* rkey, probe_side->GetColumn(right_key));

  // Intern the right keys once (one row per key when normalised, CSR lists
  // otherwise); probing is typed and allocation-free for numeric keys.
  KeyDictionary dict = KeyDictionary::Build(*rkey);

  JoinResult result;
  result.stats.right_distinct_keys = dict.num_keys();

  // Probe: gather the output row indices per side directly — materialising
  // (left, right) pairs first would allocate and traverse the same data
  // twice just to re-split it into these two vectors.
  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;  // kNoMatch where unmatched
  left_rows.reserve(left.num_rows());
  right_rows.reserve(left.num_rows());
  for (size_t i = 0; i < left.num_rows(); ++i) {
    uint32_t id = dict.Lookup(*lkey, i);
    if (id != KeyDictionary::kNoKey) {
      ++result.stats.matched_rows;
      const uint32_t* rows = dict.rows_begin(id);
      size_t count = dict.rows_count(id);
      for (size_t r = 0; r < count; ++r) {
        left_rows.push_back(i);
        right_rows.push_back(rows[r]);
      }
    } else if (options.type == JoinType::kLeft) {
      left_rows.push_back(i);
      right_rows.push_back(kNoMatch);
    }
  }
  result.stats.total_rows = left_rows.size();

  // Materialise: left columns gathered by left index, right columns by
  // right index (null where unmatched).
  Table out(left.name());
  for (size_t c = 0; c < left.num_columns(); ++c) {
    AF_RETURN_NOT_OK(out.AddColumn(left.schema().field(c).name,
                                   left.column(c).Take(left_rows)));
  }
  AF_RETURN_NOT_OK(AppendGatheredRightColumns(&out, *probe_side, right_rows));
  result.table = std::move(out);
  return result;
}

Result<JoinResult> JoinStringKeyed(const Table& left,
                                   const std::string& left_key,
                                   const Table& right,
                                   const std::string& right_key, Rng* rng,
                                   const JoinOptions& options) {
  AF_ASSIGN_OR_RETURN(const Column* lkey, left.GetColumn(left_key));

  const Table* probe_side = &right;
  Table normalized;
  if (options.normalize_cardinality) {
    // The original string-keyed normalisation, group picks drawn the same
    // way so both implementations consume identical RNG streams.
    AF_ASSIGN_OR_RETURN(const Column* key, right.GetColumn(right_key));
    std::unordered_map<std::string, std::vector<size_t>> groups;
    std::vector<const std::vector<size_t>*> order;
    for (size_t i = 0; i < key->size(); ++i) {
      if (key->IsNull(i)) continue;  // Null keys never match in a join.
      auto [it, inserted] = groups.try_emplace(key->KeyAt(i));
      it->second.push_back(i);
      if (inserted) order.push_back(&it->second);
    }
    std::vector<size_t> keep;
    keep.reserve(order.size());
    for (const auto* rows : order) {
      keep.push_back(rows->size() == 1
                         ? (*rows)[0]
                         : (*rows)[rng->UniformIndex(rows->size())]);
    }
    normalized = right.TakeRows(keep);
    probe_side = &normalized;
  }
  AF_ASSIGN_OR_RETURN(const Column* rkey, probe_side->GetColumn(right_key));

  std::unordered_map<std::string, std::vector<size_t>> right_index;
  right_index.reserve(rkey->size());
  for (size_t i = 0; i < rkey->size(); ++i) {
    if (rkey->IsNull(i)) continue;
    right_index[rkey->KeyAt(i)].push_back(i);
  }

  JoinResult result;
  result.stats.right_distinct_keys = right_index.size();

  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  left_rows.reserve(left.num_rows());
  right_rows.reserve(left.num_rows());
  for (size_t i = 0; i < left.num_rows(); ++i) {
    const std::vector<size_t>* matches = nullptr;
    if (!lkey->IsNull(i)) {
      auto it = right_index.find(lkey->KeyAt(i));
      if (it != right_index.end()) matches = &it->second;
    }
    if (matches != nullptr) {
      ++result.stats.matched_rows;
      for (size_t r : *matches) {
        left_rows.push_back(i);
        right_rows.push_back(r);
      }
    } else if (options.type == JoinType::kLeft) {
      left_rows.push_back(i);
      right_rows.push_back(kNoMatch);
    }
  }
  result.stats.total_rows = left_rows.size();

  Table out(left.name());
  for (size_t c = 0; c < left.num_columns(); ++c) {
    AF_RETURN_NOT_OK(out.AddColumn(left.schema().field(c).name,
                                   left.column(c).Take(left_rows)));
  }
  AF_RETURN_NOT_OK(AppendGatheredRightColumns(&out, *probe_side, right_rows));
  result.table = std::move(out);
  return result;
}

Result<double> JoinCompleteness(
    const Table& joined, const std::vector<std::string>& appended_columns) {
  // Column lookup happens before any early return: a misnamed column is a
  // KeyError even for empty joins, not a silent perfect score.
  size_t nulls = 0;
  size_t total = 0;
  for (const auto& name : appended_columns) {
    AF_ASSIGN_OR_RETURN(const Column* col, joined.GetColumn(name));
    nulls += col->null_count();
    total += col->size();
  }
  if (total == 0) return 1.0;
  return 1.0 - static_cast<double>(nulls) / static_cast<double>(total);
}

}  // namespace autofeat
