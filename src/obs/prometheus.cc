#include "obs/prometheus.h"

#include <cctype>
#include <sstream>

namespace autofeat::obs {

namespace {

std::string Sanitize(const std::string& name) {
  std::string out = "autofeat_";
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(u) || c == '_' ? c : '_');
  }
  return out;
}

// Largest value in log2 bucket b (obs::Histogram layout: bucket 0 holds 0,
// bucket b >= 1 holds [2^(b-1), 2^b - 1]).
uint64_t Log2BucketUpper(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return UINT64_MAX;
  return (uint64_t{1} << b) - 1;
}

}  // namespace

std::string PrometheusText(const MetricsRegistry& metrics) {
  MetricsSnapshot snap = metrics.Snapshot();
  std::ostringstream out;

  for (const CounterSample& c : snap.counters) {
    std::string n = Sanitize(c.name);
    out << "# TYPE " << n << " counter\n" << n << " " << c.value << "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    std::string n = Sanitize(g.name);
    out << "# TYPE " << n << " gauge\n" << n << " " << g.value << "\n";
  }
  for (const HistogramSample& h : snap.histograms) {
    std::string n = Sanitize(h.name);
    out << "# TYPE " << n << " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [bucket, count] : h.buckets) {
      cumulative += count;
      out << n << "_bucket{le=\"" << Log2BucketUpper(bucket) << "\"} "
          << cumulative << "\n";
    }
    out << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << n << "_sum " << h.sum << "\n";
    out << n << "_count " << h.count << "\n";
  }
  for (const QuantileSample& q : snap.quantiles) {
    std::string n = Sanitize(q.name);
    out << "# TYPE " << n << " summary\n";
    out << n << "{quantile=\"0.5\"} " << q.p50 << "\n";
    out << n << "{quantile=\"0.9\"} " << q.p90 << "\n";
    out << n << "{quantile=\"0.99\"} " << q.p99 << "\n";
    out << n << "{quantile=\"0.999\"} " << q.p999 << "\n";
    out << n << "_sum " << q.sum << "\n";
    out << n << "_count " << q.count << "\n";
  }
  return out.str();
}

}  // namespace autofeat::obs
