#include "discovery/overlap_matcher.h"

#include <algorithm>

namespace autofeat {

double ValueJaccard(const Column& a, const Column& b, size_t max_sample) {
  return SketchJaccard(BuildColumnSketch(a, max_sample),
                       BuildColumnSketch(b, max_sample));
}

std::vector<ColumnMatch> MatchByValueOverlap(
    const Table& left, const std::vector<ColumnSketch>& left_sketches,
    const Table& right, const std::vector<ColumnSketch>& right_sketches,
    const OverlapMatchOptions& options) {
  std::vector<ColumnMatch> matches;
  for (size_t lc = 0; lc < left.num_columns(); ++lc) {
    const Field& lf = left.schema().field(lc);
    if (lf.type == DataType::kDouble) continue;  // Keys only.
    const ColumnSketch& sl = left_sketches[lc];
    if (sl.values.size() < options.min_distinct) continue;
    for (size_t rc = 0; rc < right.num_columns(); ++rc) {
      const Field& rf = right.schema().field(rc);
      if (rf.type == DataType::kDouble) continue;
      const ColumnSketch& sr = right_sketches[rc];
      if (sr.values.size() < options.min_distinct) continue;

      double score = options.jaccard_weight * SketchJaccard(sl, sr) +
                     (1.0 - options.jaccard_weight) *
                         SketchContainment(sl, sr);
      if (score >= options.threshold) {
        matches.push_back(ColumnMatch{lf.name, rf.name, score});
      }
    }
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const ColumnMatch& a, const ColumnMatch& b) {
                     return a.score > b.score;
                   });
  return matches;
}

std::vector<ColumnMatch> MatchByValueOverlap(
    const Table& left, const Table& right,
    const OverlapMatchOptions& options) {
  // Sketch both sides once up front: the naive nested loop re-sketched every
  // right column once per left column (O(L·R) column scans instead of L+R).
  auto sketch_table = [&](const Table& t) {
    std::vector<ColumnSketch> sketches;
    sketches.reserve(t.num_columns());
    for (size_t c = 0; c < t.num_columns(); ++c) {
      sketches.push_back(
          BuildColumnSketch(t.column(c), options.max_sample_values));
    }
    return sketches;
  };
  return MatchByValueOverlap(left, sketch_table(left), right,
                             sketch_table(right), options);
}

}  // namespace autofeat
