// Lake-wide cache of interned join-key indexes.
//
// Every BFS candidate edge, top-k materialisation and baseline join probes
// some lake table on some key column. Before this cache each probe re-hashed
// the right key column from scratch; now the dictionary + CSR index + the
// deterministic cardinality-normalisation representative for a given
// (table, key column) pair are built exactly once and shared — across the
// discovery frontier, the ML evaluation stage and the ARDA/MAB/JoinAll
// baselines, and across threads (sibling of LakeSketchCache, which plays
// the same role for DRG construction).
//
// Thread safety: GetOrBuild may be called concurrently from pool workers;
// each entry is built exactly once (std::call_once) with the map mutex
// released during the build. Entry contents are a pure function of
// (table contents, column, seed), never of build interleaving, so cached
// joins keep the runtime's byte-identical-at-any-thread-count contract.

#ifndef AUTOFEAT_DISCOVERY_JOIN_INDEX_CACHE_H_
#define AUTOFEAT_DISCOVERY_JOIN_INDEX_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "relational/join_index.h"
#include "util/status.h"

namespace autofeat {

namespace obs {
class Tracer;
}  // namespace obs

class DataLake;
class DatasetRelationGraph;
class ThreadPool;

/// \brief Thread-safe (table, key column) -> JoinKeyIndex cache over a lake.
class JoinIndexCache {
 public:
  /// `lake` must outlive the cache. `seed` fixes the representative-row
  /// draws; two caches with the same seed over the same lake are identical.
  /// A non-null `metrics` records `join_index_cache.requests` /
  /// `.builds` / `.hits` counters and the `join_index_cache.key_cardinality`
  /// histogram (distinct interned keys per built entry), plus the
  /// `join_index_cache.bytes` / `.bytes_peak` gauges (approximate index
  /// footprint; the cache only grows, so peak == final); all are
  /// deterministic for a fixed workload regardless of thread count. A
  /// non-null `tracer` records each index build as a `join_index.build`
  /// worker span.
  JoinIndexCache(const DataLake* lake, uint64_t seed,
                 obs::MetricsRegistry* metrics = nullptr,
                 obs::Tracer* tracer = nullptr)
      : lake_(lake),
        seed_(seed),
        tracer_(tracer),
        requests_(obs::GetCounter(metrics, "join_index_cache.requests")),
        builds_(obs::GetCounter(metrics, "join_index_cache.builds")),
        hits_(obs::GetCounter(metrics, "join_index_cache.hits")),
        bytes_(obs::GetGauge(metrics, "join_index_cache.bytes")),
        bytes_peak_(obs::GetGauge(metrics, "join_index_cache.bytes_peak")),
        key_cardinality_(
            obs::GetHistogram(metrics, "join_index_cache.key_cardinality")) {}

  /// The index of `table`.`column`, built on first request. The pointer
  /// stays valid for the cache's lifetime. Fails if the table or column
  /// does not exist.
  Result<const JoinKeyIndex*> GetOrBuild(const std::string& table,
                                         const std::string& column);

  /// Builds the index of every join target (to_node, to_column) reachable
  /// through `drg` up front, fanning out over `pool` when given. Purely an
  /// optimisation — lazy GetOrBuild fills any entry Prewarm missed.
  void Prewarm(const DatasetRelationGraph& drg, ThreadPool* pool = nullptr);

  /// Entries created so far (built or in flight).
  size_t num_entries() const;

 private:
  struct Entry {
    std::once_flag once;
    Status status;
    JoinKeyIndex index;
  };

  std::shared_ptr<Entry> EntryFor(const std::string& table,
                                  const std::string& column);

  const DataLake* lake_;
  uint64_t seed_;
  obs::Tracer* tracer_;
  obs::Counter* requests_;
  obs::Counter* builds_;
  obs::Counter* hits_;
  obs::Gauge* bytes_;
  obs::Gauge* bytes_peak_;
  obs::Histogram* key_cardinality_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_DISCOVERY_JOIN_INDEX_CACHE_H_
