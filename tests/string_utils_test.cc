#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

TEST(StringUtilsTest, ToLower) {
  EXPECT_EQ(ToLower("AbC_12"), "abc_12");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\nz"), "z");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, "->"), "a->b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("table.column", "table."));
  EXPECT_FALSE(StartsWith("tab", "table"));
  EXPECT_TRUE(EndsWith("data.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "data.csv"));
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinTest, SimilarityBounds) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
}

// Property: Levenshtein is a metric (symmetry + triangle inequality) on a
// sweep of word pairs.
class LevenshteinPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(LevenshteinPropertyTest, SymmetricAndBounded) {
  const auto& [a, b] = GetParam();
  size_t d_ab = LevenshteinDistance(a, b);
  size_t d_ba = LevenshteinDistance(b, a);
  EXPECT_EQ(d_ab, d_ba);
  EXPECT_LE(d_ab, std::max(a.size(), b.size()));
  size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
  EXPECT_GE(d_ab, diff);
}

TEST_P(LevenshteinPropertyTest, TriangleViaEmpty) {
  const auto& [a, b] = GetParam();
  EXPECT_LE(LevenshteinDistance(a, b),
            LevenshteinDistance(a, "") + LevenshteinDistance("", b));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, LevenshteinPropertyTest,
    ::testing::Values(std::make_tuple("customer_id", "customerid"),
                      std::make_tuple("loan", "loans"),
                      std::make_tuple("a", "abcdef"),
                      std::make_tuple("credit_score", "score_credit"),
                      std::make_tuple("", "x"),
                      std::make_tuple("zip", "postal_code")));

TEST(QGramTest, GramsArePadded) {
  auto grams = QGrams("ab", 3);
  // "##ab##" -> ##a, #ab, ab#, b##
  EXPECT_EQ(grams.size(), 4u);
}

TEST(QGramTest, JaccardIdentity) {
  EXPECT_DOUBLE_EQ(QGramJaccard("name", "name"), 1.0);
}

TEST(QGramTest, JaccardDisjoint) {
  EXPECT_DOUBLE_EQ(QGramJaccard("aaa", "zzz"), 0.0);
}

TEST(QGramTest, JaccardSymmetric) {
  EXPECT_DOUBLE_EQ(QGramJaccard("credit_id", "credit_key"),
                   QGramJaccard("credit_key", "credit_id"));
}

TEST(QGramTest, SimilarNamesScoreHigherThanDissimilar) {
  EXPECT_GT(QGramJaccard("customer_id", "customer_key"),
            QGramJaccard("customer_id", "property_value"));
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

}  // namespace
}  // namespace autofeat
