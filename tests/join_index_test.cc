#include "relational/join_index.h"

#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "discovery/data_lake.h"
#include "discovery/join_index_cache.h"
#include "relational/join.h"
#include "support/join_differential.h"
#include "support/lake_fixtures.h"
#include "util/thread_pool.h"

namespace autofeat {
namespace {

using testsupport::ExpectJoinsAgree;
using testsupport::ExpectJoinsAgreeAllOptions;
using testsupport::ExpectNumericViewsEqual;

TEST(JoinDifferentialTest, Int64Keys) {
  Table left("l");
  left.AddColumn("k", Column::Int64s({1, 2, 3, 4, 2})).Abort();
  left.AddColumn("x", Column::Doubles({1, 2, 3, 4, 5})).Abort();
  Table right("r");
  right.AddColumn("k2", Column::Int64s({2, 3, 3, 5, 2, 2})).Abort();
  right.AddColumn("v", Column::Doubles({10, 20, 30, 40, 50, 60})).Abort();
  ExpectJoinsAgreeAllOptions(left, "k", right, "k2");
}

TEST(JoinDifferentialTest, DoubleKeys) {
  Table left("l");
  left.AddColumn("k", Column::Doubles({1.0, 2.5, 3.0, 4.25})).Abort();
  Table right("r");
  right.AddColumn("k2", Column::Doubles({2.5, 3.0, 3.0, 4.25})).Abort();
  right.AddColumn("v", Column::Strings({"a", "b", "c", "d"})).Abort();
  ExpectJoinsAgreeAllOptions(left, "k", right, "k2");
}

TEST(JoinDifferentialTest, StringKeys) {
  Table left("l");
  left.AddColumn("k", Column::Strings({"u", "v", "07", "7"})).Abort();
  Table right("r");
  right.AddColumn("k2", Column::Strings({"v", "v", "7", "w"})).Abort();
  right.AddColumn("v", Column::Doubles({1, 2, 3, 4})).Abort();
  ExpectJoinsAgreeAllOptions(left, "k", right, "k2");
}

TEST(JoinDifferentialTest, CrossTypeKeys) {
  // int64 left against a string right holding canonical and non-canonical
  // numerals; only the canonical forms may match.
  Table left("l");
  left.AddColumn("k", Column::Int64s({7, 8, 9})).Abort();
  Table right("r");
  right.AddColumn("k2", Column::Strings({"7", "07", "8.0", "9"})).Abort();
  right.AddColumn("v", Column::Doubles({1, 2, 3, 4})).Abort();
  ExpectJoinsAgreeAllOptions(left, "k", right, "k2");
}

TEST(JoinDifferentialTest, NullKeys) {
  Table left("l");
  left.AddColumn("k", Column::Int64s({1, 2, 3}, {1, 0, 1})).Abort();
  Table right("r");
  right.AddColumn("k2", Column::Int64s({1, 2, 3}, {0, 1, 1})).Abort();
  right.AddColumn("v", Column::Doubles({10, 20, 30})).Abort();
  ExpectJoinsAgreeAllOptions(left, "k", right, "k2");
}

TEST(JoinDifferentialTest, DuplicateRightKeysManyGroups) {
  Table left("l");
  std::vector<int64_t> lk;
  for (int64_t i = 0; i < 40; ++i) lk.push_back(i % 11);
  left.AddColumn("k", Column::Int64s(lk)).Abort();
  Table right("r");
  std::vector<int64_t> rk;
  std::vector<double> rv;
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t d = 0; d <= i % 4; ++d) {
      rk.push_back(i);
      rv.push_back(static_cast<double>(i * 100 + d));
    }
  }
  right.AddColumn("k2", Column::Int64s(rk)).Abort();
  right.AddColumn("v", Column::Doubles(rv)).Abort();
  ExpectJoinsAgreeAllOptions(left, "k", right, "k2");
}

TEST(JoinDifferentialTest, InnerJoinAndCollidingNames) {
  Table left("l");
  left.AddColumn("id", Column::Int64s({1, 2, 3})).Abort();
  left.AddColumn("x", Column::Doubles({1, 2, 3})).Abort();
  Table right("r");
  right.AddColumn("id", Column::Int64s({2, 3, 4})).Abort();
  right.AddColumn("x", Column::Doubles({20, 30, 40})).Abort();
  for (JoinType type : {JoinType::kLeft, JoinType::kInner}) {
    JoinOptions options;
    options.type = type;
    ExpectJoinsAgree(left, "id", right, "id", options);
  }
}

// ---------------------------------------------------------------------------
// Factorized primitives.
// ---------------------------------------------------------------------------

Table DupRight() {
  Table t("r");
  t.AddColumn("k2", Column::Int64s({2, 2, 3, 5, 3})).Abort();
  t.AddColumn("v", Column::Doubles({21, 22, 31, 51, 32})).Abort();
  t.AddColumn("s", Column::Strings({"b1", "b2", "c1", "e1", "c2"})).Abort();
  return t;
}

TEST(JoinKeyIndexTest, UniqueKeysEqualLeftJoin) {
  Table left("l");
  left.AddColumn("k", Column::Int64s({1, 2, 3, 4})).Abort();
  Table right("r");
  right.AddColumn("k2", Column::Int64s({2, 3, 5})).Abort();
  right.AddColumn("v", Column::Doubles({20, 30, 50})).Abort();

  JoinKeyIndex index = BuildJoinKeyIndex(**right.GetColumn("k2"), 99);
  auto via_index = LeftJoinWithIndex(left, "k", right, index);
  ASSERT_TRUE(via_index.ok());
  // With unique right keys the representative draw never fires, so the
  // rng-driven reference join is bitwise identical.
  Rng rng(1);
  auto ref = LeftJoin(left, "k", right, "k2", &rng);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(via_index->table.Equals(ref->table));
  EXPECT_EQ(via_index->stats.matched_rows, ref->stats.matched_rows);
}

TEST(JoinKeyIndexTest, DuplicateKeysPickOneRowOfTheGroup) {
  Table left("l");
  left.AddColumn("k", Column::Int64s({2, 3, 4})).Abort();
  Table right = DupRight();
  JoinKeyIndex index = BuildJoinKeyIndex(**right.GetColumn("k2"), 7);
  EXPECT_EQ(index.num_distinct_keys(), 3u);
  auto r = LeftJoinWithIndex(left, "k", right, index);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 3u);
  EXPECT_EQ(r->stats.matched_rows, 2u);
  const Column* v = *r->table.GetColumn("v");
  // Whatever representative was drawn, it comes from the right group.
  EXPECT_TRUE(v->GetDouble(0) == 21 || v->GetDouble(0) == 22);
  EXPECT_TRUE(v->GetDouble(1) == 31 || v->GetDouble(1) == 32);
  EXPECT_TRUE(v->IsNull(2));
}

TEST(JoinKeyIndexTest, SameSeedSameRepresentatives) {
  Table right = DupRight();
  JoinKeyIndex a = BuildJoinKeyIndex(**right.GetColumn("k2"), 42);
  JoinKeyIndex b = BuildJoinKeyIndex(**right.GetColumn("k2"), 42);
  EXPECT_EQ(a.representative, b.representative);
}

TEST(MapLeftJoinTest, GathersMatchLeftJoinWithIndex) {
  Table left("l");
  left.AddColumn("k", Column::Int64s({2, 9, 3, 2})).Abort();
  Table right = DupRight();
  JoinKeyIndex index = BuildJoinKeyIndex(**right.GetColumn("k2"), 5);

  JoinRowMap map = MapLeftJoin(**left.GetColumn("k"), index);
  ASSERT_EQ(map.right_rows.size(), 4u);
  EXPECT_EQ(map.stats.matched_rows, 3u);
  EXPECT_EQ(map.right_rows[1], kNoMatchRow);

  auto materialized = LeftJoinWithIndex(left, "k", right, index);
  ASSERT_TRUE(materialized.ok());
  for (size_t c = 0; c < right.num_columns(); ++c) {
    Column gathered = GatherColumn(right.column(c), map.right_rows);
    const Column& from_join =
        materialized->table.column(left.num_columns() + c);
    // Null counts and numeric views line up with the materialised columns.
    EXPECT_EQ(GatherNullCount(right.column(c), map.right_rows),
              from_join.null_count());
    EXPECT_EQ(gathered.null_count(), from_join.null_count());
    ExpectNumericViewsEqual(GatherNumeric(right.column(c), map.right_rows),
                            gathered.ToNumeric());
    ExpectNumericViewsEqual(gathered.ToNumeric(), from_join.ToNumeric());
  }
}

TEST(ResolveAppendedNamesTest, MatchesJoinNaming) {
  Table left("l");
  left.AddColumn("id", Column::Int64s({1})).Abort();
  left.AddColumn("x", Column::Doubles({1})).Abort();
  left.AddColumn("x#2", Column::Doubles({1})).Abort();  // pre-existing suffix
  Table right("r");
  right.AddColumn("id", Column::Int64s({1})).Abort();
  right.AddColumn("x", Column::Doubles({9})).Abort();
  right.AddColumn("y", Column::Doubles({9})).Abort();

  std::vector<std::string> names = ResolveAppendedNames(left, right);
  Rng rng(1);
  auto joined = Join(left, "id", right, "id", &rng);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(names.size(), right.num_columns());
  std::vector<std::string> joined_names = joined->table.ColumnNames();
  for (size_t c = 0; c < names.size(); ++c) {
    EXPECT_EQ(names[c], joined_names[left.num_columns() + c]);
  }
}

// ---------------------------------------------------------------------------
// JoinIndexCache.
// ---------------------------------------------------------------------------

DataLake MakeLake() { return testsupport::MakeOrdersCustomersLake(); }

TEST(JoinIndexCacheTest, BuildsOnceAndReturnsStablePointer) {
  DataLake lake = MakeLake();
  JoinIndexCache cache(&lake, 11);
  auto a = cache.GetOrBuild("orders", "cust");
  ASSERT_TRUE(a.ok());
  auto b = cache.GetOrBuild("orders", "cust");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // same entry, not a rebuild
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_EQ((*a)->num_distinct_keys(), 3u);
}

TEST(JoinIndexCacheTest, MissingTableOrColumnFails) {
  DataLake lake = MakeLake();
  JoinIndexCache cache(&lake, 11);
  EXPECT_FALSE(cache.GetOrBuild("nope", "cust").ok());
  EXPECT_FALSE(cache.GetOrBuild("orders", "nope").ok());
  // The failed entries do not poison later valid requests.
  EXPECT_TRUE(cache.GetOrBuild("orders", "cust").ok());
}

TEST(JoinIndexCacheTest, SameSeedCachesAreInterchangeable) {
  DataLake lake = MakeLake();
  JoinIndexCache cache_a(&lake, 23);
  JoinIndexCache cache_b(&lake, 23);
  auto a = cache_a.GetOrBuild("orders", "cust");
  auto b = cache_b.GetOrBuild("orders", "cust");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->representative, (*b)->representative);
}

TEST(JoinIndexCacheTest, ConcurrentGetOrBuildIsSafeAndConsistent) {
  DataLake lake = MakeLake();
  JoinIndexCache cache(&lake, 5);
  ThreadPool pool(8);
  std::vector<JoinIndexCache::IndexPin> seen(64);
  ParallelFor(&pool, 0, seen.size(), 1, [&](size_t i) {
    const char* table = (i % 2 == 0) ? "orders" : "customers";
    auto r = cache.GetOrBuild(table, "cust");
    if (r.ok()) seen[i] = *r;
  });
  EXPECT_EQ(cache.num_entries(), 2u);
  std::unordered_set<const JoinKeyIndex*> distinct;
  for (const auto& pin : seen) distinct.insert(pin.get());
  distinct.erase(nullptr);
  // Every thread observed one of exactly two built entries (unbudgeted:
  // nothing evicts, so concurrent requests all pin the same two indexes).
  EXPECT_EQ(distinct.size(), 2u);
  for (const auto& pin : seen) EXPECT_NE(pin, nullptr);
}

}  // namespace
}  // namespace autofeat
