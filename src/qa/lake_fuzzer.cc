#include "qa/lake_fuzzer.h"

#include <algorithm>
#include <cstddef>
#include <unordered_set>
#include <vector>

#include "table/column.h"
#include "table/data_type.h"
#include "table/table.h"
#include "util/rng.h"

namespace autofeat::qa {
namespace {

// Fixed DeriveSeed stream ids; per-table and per-column streams are offset
// from these bases so no two entities share a generator.
constexpr uint64_t kShapeStream = 1;
constexpr uint64_t kTableStreamBase = 100;
constexpr uint64_t kColumnStreamBase = 10000;
constexpr uint64_t kMutationStream = 500000;

enum class KeyStyle { kUnique, kDuplicated, kConstant, kSkewed };

// The awkward-but-legal key alphabet: empty string, whitespace, unicode,
// CSV metacharacters, and numeric strings in canonical and non-canonical
// spellings (KeyAt canonicalises int64 7 and double 7.0 but not "07").
const char* const kStringKeyPool[] = {"",     "k",      "7",       "07",
                                      "key 0", "日本語", "naïve-α", "x,y",
                                      "\"q\"", "Z"};
constexpr size_t kStringKeyPoolSize =
    sizeof(kStringKeyPool) / sizeof(kStringKeyPool[0]);

void AppendKeyValue(Column* column, DataType type, size_t idx) {
  switch (type) {
    case DataType::kInt64:
      column->AppendInt64(static_cast<int64_t>(idx));
      return;
    case DataType::kDouble:
      // Alternates integral and fractional values so numeric key
      // canonicalisation (int64 3 == double 3.0) gets exercised.
      column->AppendDouble(static_cast<double>(idx) * 1.5);
      return;
    default:
      if (idx < kStringKeyPoolSize) {
        column->AppendString(kStringKeyPool[idx]);
      } else {
        column->AppendString("id_" + std::to_string(idx));
      }
      return;
  }
}

// Values guaranteed never to collide with AppendKeyValue output: used to
// build the non-overlapping fraction of a satellite's key column.
void AppendDisjointKeyValue(Column* column, DataType type, size_t idx) {
  switch (type) {
    case DataType::kInt64:
      column->AppendInt64(-static_cast<int64_t>(idx) - 1);
      return;
    case DataType::kDouble:
      column->AppendDouble(-(static_cast<double>(idx) * 1.5) - 0.25);
      return;
    default:
      column->AppendString("zz_" + std::to_string(idx));
      return;
  }
}

// A heavily skewed index in [0, n): most draws land on 0, a long tail on
// the rest (the "few hot keys" distribution of real foreign keys).
size_t SkewedIndex(Rng* rng, size_t n) {
  if (n <= 1) return 0;
  double u = rng->Uniform();
  return static_cast<size_t>(u * u * u * static_cast<double>(n)) % n;
}

// Distinct non-null key rows of `key` in first-occurrence order.
std::vector<size_t> DistinctKeyRows(const Column& key) {
  std::vector<size_t> rows;
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < key.size(); ++i) {
    if (key.IsNull(i)) continue;
    if (seen.insert(key.KeyAt(i)).second) rows.push_back(i);
  }
  return rows;
}

Column MakeFeatureColumn(Rng* rng, size_t rows, const Table& table,
                         size_t feature_index) {
  // Trait mix: plain numeric features dominate, with every degenerate shape
  // the selection/stats layers must tolerate appearing regularly.
  size_t trait = rng->UniformIndex(10);
  if (trait >= 8 && feature_index > 0) {
    // Exact duplicate of the previous feature (redundancy-analysis bait).
    return table.column(table.num_columns() - 1);
  }
  switch (trait) {
    case 0: {  // constant
      Column c(DataType::kDouble);
      for (size_t i = 0; i < rows; ++i) c.AppendDouble(3.25);
      return c;
    }
    case 1:  // all null
      return Column::Nulls(DataType::kDouble, rows);
    case 2: {  // sparse nulls
      Column c(DataType::kDouble);
      for (size_t i = 0; i < rows; ++i) {
        if (rng->Bernoulli(0.3)) {
          c.AppendNull();
        } else {
          c.AppendDouble(rng->Normal());
        }
      }
      return c;
    }
    case 3: {  // small-domain int64
      Column c(DataType::kInt64);
      for (size_t i = 0; i < rows; ++i) {
        c.AppendInt64(rng->UniformInt(-5, 5));
      }
      return c;
    }
    case 4: {  // string categorical
      const char* cats[] = {"a", "b", "c"};
      Column c(DataType::kString);
      for (size_t i = 0; i < rows; ++i) {
        if (rng->Bernoulli(0.15)) {
          c.AppendNull();
        } else {
          c.AppendString(cats[rng->UniformIndex(3)]);
        }
      }
      return c;
    }
    case 5: {  // unicode strings
      const char* cats[] = {"α", "β", "日本", "naïve"};
      Column c(DataType::kString);
      for (size_t i = 0; i < rows; ++i) {
        c.AppendString(cats[rng->UniformIndex(4)]);
      }
      return c;
    }
    default: {  // plain numeric
      Column c(DataType::kDouble);
      for (size_t i = 0; i < rows; ++i) c.AppendDouble(rng->Normal());
      return c;
    }
  }
}

// Rows appended to `current` under its exact schema (names and types);
// schema-matched by construction so the append succeeds on both the
// incremental and the cold side.
Table MakeAppendPayload(Rng* rng, const Table& current, size_t rows) {
  Table payload(current.name());
  for (size_t c = 0; c < current.num_columns(); ++c) {
    const Field& field = current.schema().field(c);
    Column col(field.type);
    for (size_t r = 0; r < rows; ++r) {
      if (rng->Bernoulli(0.1)) {
        col.AppendNull();
        continue;
      }
      switch (field.type) {
        case DataType::kInt64:
          col.AppendInt64(rng->UniformInt(-5, 5));
          break;
        case DataType::kDouble:
          col.AppendDouble(rng->Normal());
          break;
        default:
          AppendKeyValue(&col, DataType::kString,
                         rng->UniformIndex(kStringKeyPoolSize + 4));
          break;
      }
    }
    payload.AddColumn(field.name, std::move(col)).Abort("fuzz append payload");
  }
  return payload;
}

// A fresh satellite-shaped table for an add mutation. `feature_prefix`
// exercises the "re-add a dropped name with renamed columns" corner: the
// re-added table has the same name but g*-named features, so stale
// per-column cache entries or matches would be observable.
Table MakeMutationTable(Rng* rng, const std::string& name, uint64_t seed,
                        size_t op_index, const char* feature_prefix,
                        size_t max_feature_columns) {
  DataType key_type = DataType::kInt64;
  switch (rng->UniformIndex(3)) {
    case 0: key_type = DataType::kInt64; break;
    case 1: key_type = DataType::kDouble; break;
    default: key_type = DataType::kString; break;
  }
  size_t rows = 1 + rng->UniformIndex(10);
  Column key(key_type);
  for (size_t i = 0; i < rows; ++i) {
    if (rng->Bernoulli(0.05)) {
      key.AppendNull();
    } else if (rng->Bernoulli(0.3)) {
      AppendDisjointKeyValue(&key, key_type, i);
    } else {
      // AppendKeyValue draws from the same domain the base key uses, so
      // added tables overlap the base when the key types line up.
      AppendKeyValue(&key, key_type, rng->UniformIndex(rows));
    }
  }
  Table table(name);
  table.AddColumn("k", std::move(key)).Abort("fuzz mutation table");
  size_t num_features = 1 + rng->UniformIndex(std::max<size_t>(
                                1, max_feature_columns / 2));
  for (size_t f = 0; f < num_features; ++f) {
    Rng col_rng(DeriveSeed(seed, kMutationStream + 1000 + op_index * 64 + f));
    table
        .AddColumn(feature_prefix + std::to_string(f),
                   MakeFeatureColumn(&col_rng, rows, table, f))
        .Abort("fuzz mutation table");
  }
  return table;
}

}  // namespace

FuzzedLake LakeFuzzer::Generate(uint64_t seed) const {
  FuzzedLake fz;
  fz.seed = seed;
  Rng shape(DeriveSeed(seed, kShapeStream));

  // ---- Base table -----------------------------------------------------------
  size_t base_rows = shape.Bernoulli(0.1)
                         ? 1
                         : 3 + shape.UniformIndex(options_.max_rows - 2);
  DataType key_type = static_cast<DataType>(0);
  switch (shape.UniformIndex(3)) {
    case 0: key_type = DataType::kInt64; break;
    case 1: key_type = DataType::kDouble; break;
    default: key_type = DataType::kString; break;
  }

  Table base(fz.base_table);
  {
    Rng rng(DeriveSeed(seed, kTableStreamBase));
    // Key-domain size: constant key, heavy duplicates, or near-unique.
    size_t domain = 1;
    switch (rng.UniformIndex(4)) {
      case 0: domain = 1; break;
      case 1: domain = std::max<size_t>(1, base_rows / 4); break;
      case 2: domain = std::max<size_t>(1, base_rows / 2); break;
      default: domain = base_rows; break;
    }
    bool skewed = rng.Bernoulli(0.3);
    Column key(key_type);
    for (size_t i = 0; i < base_rows; ++i) {
      if (rng.Bernoulli(0.05)) {
        key.AppendNull();
        continue;
      }
      size_t idx = skewed ? SkewedIndex(&rng, domain) : rng.UniformIndex(domain);
      AppendKeyValue(&key, key_type, idx);
    }
    base.AddColumn("key", std::move(key)).Abort();

    bool constant_label = rng.Bernoulli(0.1);
    Column label(DataType::kInt64);
    for (size_t i = 0; i < base_rows; ++i) {
      label.AppendInt64(constant_label ? 0 : (rng.Bernoulli(0.5) ? 1 : 0));
    }
    base.AddColumn(fz.label_column, std::move(label)).Abort();

    size_t base_features = rng.UniformIndex(4);
    for (size_t f = 0; f < base_features; ++f) {
      Rng col_rng(DeriveSeed(seed, kColumnStreamBase + f));
      base.AddColumn("bf" + std::to_string(f),
                     MakeFeatureColumn(&col_rng, base_rows, base, f + 2))
          .Abort();
    }
  }
  fz.lake.AddTable(std::move(base)).Abort();

  // ---- Satellite tables -----------------------------------------------------
  size_t num_satellites = shape.UniformIndex(options_.max_satellites + 1);
  for (size_t t = 0; t < num_satellites; ++t) {
    Rng rng(DeriveSeed(seed, kTableStreamBase + 1 + t));
    std::string name = "fz_t" + std::to_string(t);

    // Parent: usually the base, sometimes an earlier satellite (building the
    // transitive chains the paper's traversal exists for).
    std::string parent_name = fz.base_table;
    std::string parent_key_column = "key";
    if (t > 0 && rng.Bernoulli(0.35)) {
      parent_name = "fz_t" + std::to_string(rng.UniformIndex(t));
      parent_key_column = "k";
    }
    const Table& parent = **fz.lake.GetTable(parent_name);
    const Column& parent_key = **parent.GetColumn(parent_key_column);
    std::vector<size_t> parent_distinct = DistinctKeyRows(parent_key);

    size_t rows;
    if (rng.Bernoulli(0.05)) {
      rows = 0;
    } else if (rng.Bernoulli(0.1)) {
      rows = 1;
    } else {
      rows = 2 + rng.UniformIndex(options_.max_rows - 1);
    }

    // Overlap with the parent key domain: exactly none, half, or all.
    double overlap = 0.5;
    switch (rng.UniformIndex(3)) {
      case 0: overlap = 0.0; break;
      case 1: overlap = 0.5; break;
      default: overlap = 1.0; break;
    }
    if (parent_distinct.empty()) overlap = 0.0;
    KeyStyle style = static_cast<KeyStyle>(rng.UniformIndex(4));
    size_t overlap_rows = static_cast<size_t>(overlap * static_cast<double>(rows));

    Column key(parent_key.type());
    for (size_t i = 0; i < rows; ++i) {
      if (rng.Bernoulli(0.05)) {
        key.AppendNull();
        continue;
      }
      size_t idx = i;
      switch (style) {
        case KeyStyle::kUnique: idx = i; break;
        case KeyStyle::kDuplicated: idx = i / 2; break;
        case KeyStyle::kConstant: idx = 0; break;
        case KeyStyle::kSkewed: idx = SkewedIndex(&rng, std::max<size_t>(rows, 1)); break;
      }
      if (i < overlap_rows) {
        key.AppendFrom(parent_key, parent_distinct[idx % parent_distinct.size()]);
      } else {
        AppendDisjointKeyValue(&key, parent_key.type(), idx);
      }
    }

    Table table(name);
    table.AddColumn("k", std::move(key)).Abort();

    size_t num_features = rng.Bernoulli(0.1)
                              ? options_.max_feature_columns
                              : 1 + rng.UniformIndex(options_.max_feature_columns);
    for (size_t f = 0; f < num_features; ++f) {
      Rng col_rng(DeriveSeed(seed, kColumnStreamBase + (t + 1) * 64 + f));
      table.AddColumn("f" + std::to_string(f),
                      MakeFeatureColumn(&col_rng, rows, table, f))
          .Abort();
    }
    fz.lake.AddTable(std::move(table)).Abort();
    fz.lake.AddKfk(KfkConstraint{parent_name, parent_key_column, name, "k"});
  }

  // ---- Mutation trace -------------------------------------------------------
  // Generated against a simulated lake copy so every op is well-formed for
  // the state it runs in (append payloads match the schema *at that point
  // in the sequence*), with a sprinkling of deliberately failing ops to
  // check failure symmetry. The base table is never dropped.
  Rng mrng(DeriveSeed(seed, kMutationStream));
  size_t num_mutations = mrng.UniformIndex(options_.max_mutations + 1);
  DataLake sim = fz.lake;  // COW storage: O(tables) pointer copies
  std::vector<std::string> dropped;
  for (size_t m = 0; m < num_mutations; ++m) {
    serve::LakeMutation op;
    if (mrng.Bernoulli(0.1)) {
      // A drop of a table that does not exist: must fail as a no-op on
      // both the incremental service and a cold replay.
      op.kind = serve::LakeMutation::Kind::kDropTable;
      op.table = "fz_no_such_table";
      fz.trace.push_back(std::move(op));
      continue;
    }
    std::vector<std::string> non_base;
    for (const std::string& name : sim.TableNames()) {
      if (name != fz.base_table) non_base.push_back(name);
    }
    size_t roll = mrng.UniformIndex(10);
    if (roll < 4 || non_base.empty()) {
      // Add: usually a fresh name; sometimes a previously dropped name
      // re-added with renamed (g*) feature columns.
      op.kind = serve::LakeMutation::Kind::kAddTable;
      const char* prefix = "f";
      std::string name = "fz_m" + std::to_string(m);
      if (!dropped.empty() && mrng.Bernoulli(0.6)) {
        std::string candidate = dropped[mrng.UniformIndex(dropped.size())];
        if (!sim.HasTable(candidate)) {
          name = std::move(candidate);
          prefix = "g";
        }
      }
      Rng trng(DeriveSeed(seed, kMutationStream + 1 + m));
      op.payload = MakeMutationTable(&trng, name, seed, m, prefix,
                                     options_.max_feature_columns);
    } else if (roll < 7) {
      // Append to any table (the base included) under its current schema.
      size_t pick = mrng.UniformIndex(sim.num_tables());
      const Table& current = sim.tables()[pick];
      op.kind = serve::LakeMutation::Kind::kAppendRows;
      op.table = current.name();
      Rng prng(DeriveSeed(seed, kMutationStream + 1 + m));
      op.payload = MakeAppendPayload(&prng, current, 1 + prng.UniformIndex(5));
    } else {
      // Drop a satellite; prefer one that is itself a join-path parent
      // (severing a transitive chain mid-path).
      op.kind = serve::LakeMutation::Kind::kDropTable;
      std::vector<std::string> parents;
      for (const KfkConstraint& kfk : sim.kfk_constraints()) {
        if (kfk.from_table != fz.base_table && sim.HasTable(kfk.from_table)) {
          parents.push_back(kfk.from_table);
        }
      }
      if (!parents.empty() && mrng.Bernoulli(0.5)) {
        op.table = parents[mrng.UniformIndex(parents.size())];
      } else {
        op.table = non_base[mrng.UniformIndex(non_base.size())];
      }
      dropped.push_back(op.table);
    }
    serve::ApplyMutationToLake(&sim, op).Abort("fuzz trace simulation");
    fz.trace.push_back(std::move(op));
  }
  return fz;
}

bool FuzzedLakesEqual(const FuzzedLake& a, const FuzzedLake& b) {
  if (a.base_table != b.base_table || a.label_column != b.label_column) {
    return false;
  }
  if (a.lake.num_tables() != b.lake.num_tables()) return false;
  for (size_t i = 0; i < a.lake.num_tables(); ++i) {
    const Table& ta = a.lake.tables()[i];
    const Table& tb = b.lake.tables()[i];
    if (ta.name() != tb.name() || !ta.Equals(tb)) return false;
  }
  const auto& ka = a.lake.kfk_constraints();
  const auto& kb = b.lake.kfk_constraints();
  if (ka.size() != kb.size()) return false;
  for (size_t i = 0; i < ka.size(); ++i) {
    if (ka[i].from_table != kb[i].from_table ||
        ka[i].from_column != kb[i].from_column ||
        ka[i].to_table != kb[i].to_table ||
        ka[i].to_column != kb[i].to_column) {
      return false;
    }
  }
  if (a.trace.size() != b.trace.size()) return false;
  for (size_t i = 0; i < a.trace.size(); ++i) {
    if (!serve::MutationsEqual(a.trace[i], b.trace[i])) return false;
  }
  return true;
}

}  // namespace autofeat::qa
