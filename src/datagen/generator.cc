#include "datagen/generator.h"

#include <cmath>

namespace autofeat::datagen {

Table GenerateClassification(const GeneratorOptions& options,
                             const std::string& table_name) {
  Rng rng(options.seed);
  size_t n = options.rows;
  size_t ni = options.informative_features;
  size_t nr = options.redundant_features;
  size_t nn = options.noise_features;

  // Balanced labels, then per-class Gaussian informative features.
  std::vector<int> labels(n);
  for (size_t r = 0; r < n; ++r) labels[r] = static_cast<int>(r % 2);
  rng.Shuffle(&labels);

  // Per-informative-feature effect size: how far apart the class means sit.
  std::vector<double> effect(ni);
  for (size_t f = 0; f < ni; ++f) {
    effect[f] = options.class_separation * rng.Uniform(0.5, 1.5) *
                (rng.Bernoulli(0.5) ? 1.0 : -1.0);
  }

  std::vector<std::vector<double>> informative(ni, std::vector<double>(n));
  for (size_t f = 0; f < ni; ++f) {
    for (size_t r = 0; r < n; ++r) {
      double mean = labels[r] == 1 ? effect[f] / 2 : -effect[f] / 2;
      informative[f][r] = rng.Normal(mean, 1.0);
    }
  }

  // Redundant features: noisy linear combinations of two informative ones.
  std::vector<std::vector<double>> redundant(nr, std::vector<double>(n));
  for (size_t f = 0; f < nr; ++f) {
    size_t a = ni > 0 ? rng.UniformIndex(ni) : 0;
    size_t b = ni > 0 ? rng.UniformIndex(ni) : 0;
    double wa = rng.Uniform(0.5, 1.5);
    double wb = rng.Uniform(-1.0, 1.0);
    for (size_t r = 0; r < n; ++r) {
      double base = ni > 0 ? wa * informative[a][r] + wb * informative[b][r]
                           : 0.0;
      redundant[f][r] = base + rng.Normal(0.0, 0.1);
    }
  }

  // Label noise.
  for (size_t r = 0; r < n; ++r) {
    if (rng.Bernoulli(options.label_noise)) labels[r] = 1 - labels[r];
  }

  auto maybe_mask = [&](Column* col) {
    if (options.missing_rate <= 0.0) return;
    Column masked(col->type());
    for (size_t r = 0; r < col->size(); ++r) {
      if (rng.Bernoulli(options.missing_rate)) {
        masked.AppendNull();
      } else {
        masked.AppendFrom(*col, r);
      }
    }
    *col = std::move(masked);
  };

  Table table(table_name);
  {
    std::vector<int64_t> ids(n);
    for (size_t r = 0; r < n; ++r) ids[r] = static_cast<int64_t>(r);
    table.AddColumn("row_id", Column::Int64s(std::move(ids))).Abort();
  }
  for (size_t f = 0; f < ni; ++f) {
    Column col = Column::Doubles(std::move(informative[f]));
    maybe_mask(&col);
    table.AddColumn("inf_" + std::to_string(f), std::move(col)).Abort();
  }
  for (size_t f = 0; f < nr; ++f) {
    Column col = Column::Doubles(std::move(redundant[f]));
    maybe_mask(&col);
    table.AddColumn("red_" + std::to_string(f), std::move(col)).Abort();
  }
  for (size_t f = 0; f < nn; ++f) {
    std::vector<double> noise(n);
    for (size_t r = 0; r < n; ++r) noise[r] = rng.Normal(0.0, 1.0);
    Column col = Column::Doubles(std::move(noise));
    maybe_mask(&col);
    table.AddColumn("noise_" + std::to_string(f), std::move(col)).Abort();
  }
  {
    std::vector<int64_t> label_col(n);
    for (size_t r = 0; r < n; ++r) label_col[r] = labels[r];
    table.AddColumn("label", Column::Int64s(std::move(label_col))).Abort();
  }
  return table;
}

}  // namespace autofeat::datagen
