// Structured JSONL event log for the serving path.
//
// Metrics answer "how much / how fast in aggregate"; the event log answers
// "what happened, in order". Each appended event becomes one JSON object on
// its own line:
//
//     {"seq": 7, "ts_s": 0.001234, "type": "query_end", "query": 3,
//      "latency_ns": 412000, ...}
//
// `seq` is a per-log monotonic sequence number assigned under the log's
// mutex, so the line order is the append order even when multiple threads
// record concurrently. `ts_s` is wall-clock seconds since the log was
// created.
//
// Determinism contract (mirrors obs/report.h): the log is *deterministic
// modulo timestamps*. Every wall-clock-derived field carries a time-unit
// key suffix — `_s`, `_ms`, `_us`, or `_ns` — and Jsonl(false) strips those
// fields (including the built-in `ts_s`). Two replays of the same command
// script therefore produce byte-identical stripped logs; everything that
// survives stripping must be a pure function of (inputs, seed).
//
// Event vocabulary used by the serving layer (src/serve): `query_start`,
// `query_end`, `mutation_apply`, `epoch_publish`, `cache_evict`,
// `cache_rebuild`, `slow_query`. The log itself enforces no schema — any
// component may append its own types.

#ifndef AUTOFEAT_OBS_EVENT_LOG_H_
#define AUTOFEAT_OBS_EVENT_LOG_H_

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

namespace autofeat::obs {

/// \brief One key/value field of an event; the value is rendered to its
/// JSON form at construction so appends stay allocation-light.
struct EventField {
  EventField(std::string key, uint64_t v);
  EventField(std::string key, int64_t v);
  EventField(std::string key, int v) : EventField(std::move(key), int64_t{v}) {}
  EventField(std::string key, unsigned v)
      : EventField(std::move(key), uint64_t{v}) {}
  EventField(std::string key, double v);
  EventField(std::string key, bool v);
  EventField(std::string key, const char* v);
  EventField(std::string key, const std::string& v);

  std::string key;
  std::string rendered;  // Valid JSON value (number, bool, or quoted string).
};

/// \brief Thread-safe append-only structured event log with JSONL export.
class EventLog {
 public:
  EventLog() : origin_(std::chrono::steady_clock::now()) {}
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event and returns its sequence number (first event = 1).
  uint64_t Append(const std::string& type,
                  std::initializer_list<EventField> fields = {});

  size_t size() const;

  /// Serializes every event, one JSON object per line. With
  /// `include_timestamps` false, `ts_s` and every field whose key ends in
  /// `_s`/`_ms`/`_us`/`_ns` are dropped — the deterministic projection.
  std::string Jsonl(bool include_timestamps = true) const;

  /// Writes Jsonl() to `path`; false on I/O failure.
  bool WriteFile(const std::string& path, bool include_timestamps = true) const;

  /// True when `key` names a wall-clock-derived field by the suffix
  /// convention above (stripped from the deterministic projection).
  static bool IsTimestampKey(const std::string& key);

 private:
  struct Record {
    uint64_t seq = 0;
    double ts_s = 0.0;
    std::string type;
    std::vector<EventField> fields;
  };

  mutable std::mutex mutex_;
  std::vector<Record> events_;
  std::chrono::steady_clock::time_point origin_;
};

/// Null-safe append: the disabled path is one branch, as with metrics.
inline uint64_t Append(EventLog* log, const std::string& type,
                       std::initializer_list<EventField> fields = {}) {
  return log != nullptr ? log->Append(type, fields) : 0;
}

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_EVENT_LOG_H_
