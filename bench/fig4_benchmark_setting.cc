// Figure 4: the benchmark setting (KFK snowflake DRG).
//
// Top panel: average runtime with the feature-selection share, per method.
// Bottom panel: accuracy per dataset averaged over the tree-based models;
// bar labels = number of joined tables. JoinAll/JoinAll+F are skipped on
// `school` exactly as the paper does: its star schema with non-1:1 joins
// yields 15! possible join orders (Eq. 3).

#include <cstdio>

#include "harness.h"

int main() {
  using namespace autofeat;
  using namespace autofeat::benchx;

  PrintModeBanner("Figure 4: benchmark setting (KFK snowflake)");
  std::vector<ml::ModelKind> models = BenchTreeModels();
  std::printf("evaluation models:");
  for (auto m : models) std::printf(" %s", ml::ModelKindName(m));
  std::printf("\n\n");

  double autofeat_fs_sum = 0, arda_fs_sum = 0, mab_fs_sum = 0;
  double autofeat_acc_sum = 0, best_other_acc_sum = 0;
  size_t datasets = 0;

  for (const auto& raw : datagen::PaperDatasets()) {
    datagen::DatasetSpec spec = ScaledSpec(raw);
    datagen::BuiltLake built = datagen::BuildPaperLake(spec, 42);
    auto drg = BuildSettingDrg(built, Setting::kBenchmark);
    drg.status().Abort("building KFK DRG");

    size_t base_node = *drg->NodeId(built.base_table);
    double join_all_log10 = drg->JoinAllPathCountLog10(base_node);
    // The paper's criterion: JoinAll is infeasible when the join-order
    // space explodes (school: log10(15!) ~ 12).
    bool join_all_feasible = join_all_log10 < 6.0;

    std::printf("== %s (rows=%zu, tables=%zu, log10 JoinAll paths=%.1f)\n",
                spec.name.c_str(), spec.rows, spec.joinable_tables,
                join_all_log10);
    PrintMethodHeader();

    auto methods = MakeMethods(/*include_join_all=*/join_all_feasible);
    double best_other = 0;
    double autofeat_acc = 0;
    for (auto& method : methods) {
      auto row = RunMethod(method.get(), built, *drg, models);
      row.status().Abort(method->name().c_str());
      PrintMethodRow(*row);
      if (row->method == "AutoFeat") {
        autofeat_fs_sum += row->fs_seconds;
        autofeat_acc = row->accuracy;
      } else if (row->method == "ARDA") {
        arda_fs_sum += row->fs_seconds;
        best_other = std::max(best_other, row->accuracy);
      } else if (row->method == "MAB") {
        mab_fs_sum += row->fs_seconds;
        best_other = std::max(best_other, row->accuracy);
      }
    }
    if (!join_all_feasible) {
      MethodRow skipped;
      skipped.method = "JoinAll";
      skipped.skipped = true;
      skipped.skip_reason = "skipped: join-order explosion (Eq. 3)";
      PrintMethodRow(skipped);
      skipped.method = "JoinAll+F";
      PrintMethodRow(skipped);
    }
    std::printf("   best reference accuracy (Table II): %.3f\n\n",
                spec.reference_accuracy);
    autofeat_acc_sum += autofeat_acc;
    best_other_acc_sum += best_other;
    ++datasets;
  }

  PrintRule();
  std::printf("summary over %zu datasets:\n", datasets);
  std::printf("  feature-selection speedup vs ARDA: %.1fx\n",
              arda_fs_sum / autofeat_fs_sum);
  std::printf("  feature-selection speedup vs MAB : %.1fx\n",
              mab_fs_sum / autofeat_fs_sum);
  std::printf("  mean accuracy AutoFeat %.3f vs best(ARDA, MAB) %.3f "
              "(+%.1f%%)\n",
              autofeat_acc_sum / datasets, best_other_acc_sum / datasets,
              100.0 * (autofeat_acc_sum - best_other_acc_sum) /
                  best_other_acc_sum);
  return 0;
}
