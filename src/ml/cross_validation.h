// Stratified k-fold cross-validation. A more robust alternative to the
// single 80/20 split of ml::TrainAndEvaluate for small datasets (the
// paper's credit/steel/school are in the 1-2k row range where split
// variance matters).

#ifndef AUTOFEAT_ML_CROSS_VALIDATION_H_
#define AUTOFEAT_ML_CROSS_VALIDATION_H_

#include <string>
#include <vector>

#include "ml/trainer.h"
#include "util/scheduler.h"

namespace autofeat::obs {
class MetricsRegistry;
class Tracer;
}  // namespace autofeat::obs

namespace autofeat::ml {

struct CrossValidationOptions {
  size_t folds = 5;
  uint64_t seed = 42;
  /// Worker threads for fold training (0 = hardware concurrency, 1 =
  /// sequential). Folds are independent — each trains a fresh model seeded
  /// by (seed + fold) — and per-fold metrics are merged in fold order, so
  /// results are identical at any thread count.
  size_t num_threads = 1;
  /// Loop runtime for parallel fold training (see util/scheduler.h); fold
  /// metrics merge in fold order under either kind.
  SchedulerKind scheduler = SchedulerKind::kMorsel;
  /// Optional observability sink: records `cv.runs`, `cv.folds_trained`
  /// and the `cv.fold_test_rows` histogram (all deterministic — fold
  /// assignment is a pure function of the seed).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional tracer: each fold records a `cv.fold` worker span (plus the
  /// pool's `thread_pool.worker` lane spans when folds run in parallel).
  obs::Tracer* tracer = nullptr;
};

struct CrossValidationResult {
  std::string model_name;
  /// Per-fold test accuracy / AUC.
  std::vector<double> fold_accuracies;
  std::vector<double> fold_aucs;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  double mean_auc = 0.0;
};

/// Splits rows into `folds` stratified folds; trains a fresh `kind` model
/// on each fold complement and evaluates on the held-out fold.
Result<CrossValidationResult> CrossValidate(
    const Table& table, const std::string& label_column, ModelKind kind,
    const CrossValidationOptions& options = {});

/// Stratified fold assignment: fold id per row, each class spread evenly
/// across folds. Exposed for tests.
Result<std::vector<size_t>> StratifiedFoldAssignment(
    const Table& table, const std::string& label_column, size_t folds,
    uint64_t seed);

}  // namespace autofeat::ml

#endif  // AUTOFEAT_ML_CROSS_VALIDATION_H_
