// Tests for the greedy lake shrinker and the repro round trip, driven by
// the deliberately wrong planted invariant ("no column contains a null") —
// the self-test mode of the fuzzing pipeline: a known-bad claim must shrink
// to a tiny counterexample and replay from its repro directory.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "qa/fuzz_runner.h"
#include "qa/invariants.h"
#include "qa/lake_fuzzer.h"
#include "qa/repro.h"
#include "qa/shrinker.h"

namespace autofeat::qa {
namespace {

bool LakeHasNull(const FuzzedLake& fz) {
  for (const Table& table : fz.lake.tables()) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (table.column(c).null_count() > 0) return true;
    }
  }
  return false;
}

// A seed whose generated lake contains at least one null (so the planted
// invariant fails on it). Nulls are common; scan a few seeds to stay
// robust against generator tweaks.
uint64_t FindNullySeed() {
  LakeFuzzer fuzzer;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    if (LakeHasNull(fuzzer.Generate(seed))) return seed;
  }
  ADD_FAILURE() << "no seed in 1..50 produced a null value";
  return 1;
}

TEST(ShrinkerTest, PlantedBugShrinksToTinyCounterexample) {
  LakeFuzzer fuzzer;
  FuzzedLake failing = fuzzer.Generate(FindNullySeed());
  Invariant planted = PlantedNoNullsInvariant();

  auto shrunk = ShrinkLake(failing, planted);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();

  // The shrunk lake still violates the invariant...
  EXPECT_FALSE(planted.check(shrunk->lake).ok());
  EXPECT_FALSE(shrunk->message.empty());

  // ...and is within the acceptance envelope: a single null value needs at
  // most the base table, one column beside the label, and one row.
  size_t max_columns = 0;
  size_t max_rows = 0;
  for (const Table& table : shrunk->lake.lake.tables()) {
    max_columns = std::max(max_columns, table.num_columns());
    max_rows = std::max(max_rows, table.num_rows());
  }
  EXPECT_LE(shrunk->lake.lake.num_tables(), 2u);
  EXPECT_LE(max_columns, 4u);
  EXPECT_LE(max_rows, 10u);
}

TEST(ShrinkerTest, ShrinkingIsDeterministic) {
  LakeFuzzer fuzzer;
  FuzzedLake failing = fuzzer.Generate(FindNullySeed());
  Invariant planted = PlantedNoNullsInvariant();
  auto a = ShrinkLake(failing, planted);
  auto b = ShrinkLake(failing, planted);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(FuzzedLakesEqual(a->lake, b->lake));
  EXPECT_EQ(a->message, b->message);
  EXPECT_EQ(a->checks, b->checks);
}

TEST(ShrinkerTest, RefusesLakeThatDoesNotFail) {
  LakeFuzzer fuzzer;
  FuzzedLake fine = fuzzer.Generate(1);
  Invariant always_ok{"qa.test_pass", "always passes",
                      [](const FuzzedLake&) { return Status::OK(); }};
  auto shrunk = ShrinkLake(fine, always_ok);
  ASSERT_FALSE(shrunk.ok());
  EXPECT_EQ(shrunk.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReproTest, WriteLoadRoundTripPreservesTheFailure) {
  LakeFuzzer fuzzer;
  FuzzedLake failing = fuzzer.Generate(FindNullySeed());
  Invariant planted = PlantedNoNullsInvariant();
  auto shrunk = ShrinkLake(failing, planted);
  ASSERT_TRUE(shrunk.ok());

  std::string dir =
      (std::filesystem::temp_directory_path() / "af_qa_repro_test").string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(
      WriteRepro(shrunk->lake, planted.name, shrunk->message, dir).ok());

  ReproManifest manifest;
  auto loaded = LoadRepro(dir, &manifest);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(manifest.invariant, planted.name);
  EXPECT_EQ(manifest.seed, shrunk->lake.seed);
  EXPECT_EQ(loaded->base_table, shrunk->lake.base_table);
  EXPECT_EQ(loaded->lake.num_tables(), shrunk->lake.lake.num_tables());

  // The loaded lake still violates the invariant (nulls survive the CSV
  // canonicalisation round trip — that's why the planted bug targets them).
  EXPECT_FALSE(planted.check(*loaded).ok());

  // And the end-to-end replay entry point agrees.
  auto replay = ReplayRepro(dir, /*manifest_only=*/true);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->ok());
  ASSERT_EQ(replay->failures.size(), 1u);
  EXPECT_EQ(replay->failures[0].invariant, planted.name);

  std::filesystem::remove_all(dir);
}

TEST(ReproTest, LoadMissingDirectoryIsAnError) {
  auto loaded = LoadRepro("/no/such/qa/repro/dir");
  EXPECT_FALSE(loaded.ok());
}

// End-to-end self-test of the whole campaign pipeline: plant the bug, run
// a campaign with shrinking + repro emission, check the report shape.
TEST(FuzzPipelineTest, PlantedCampaignShrinksAndWritesRepros) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "af_qa_campaign_test")
          .string();
  std::filesystem::remove_all(dir);

  FuzzOptions options;
  options.seed_start = FindNullySeed();
  options.num_seeds = 1;
  options.include_planted = true;
  options.invariant_filter = {"planted.no_nulls"};
  options.repro_dir = dir;
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->failures.size(), 1u);
  const FuzzFailure& failure = report->failures[0];
  EXPECT_LE(failure.tables, 2u);
  EXPECT_LE(failure.max_columns, 4u);
  EXPECT_LE(failure.max_rows, 10u);
  ASSERT_FALSE(failure.repro_dir.empty());
  EXPECT_TRUE(std::filesystem::exists(failure.repro_dir + "/MANIFEST.txt"));

  auto replay = ReplayRepro(failure.repro_dir, /*manifest_only=*/true);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->ok());

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace autofeat::qa
