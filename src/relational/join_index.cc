#include "relational/join_index.h"

#include <cmath>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"
#include "util/simd.h"

namespace autofeat {

JoinKeyIndex BuildJoinKeyIndex(const Column& key, uint64_t rep_seed) {
  JoinKeyIndex index;
  index.dict = KeyDictionary::Build(key);
  uint32_t num_keys = index.dict.num_keys();
  index.representative.resize(num_keys);
  Rng rng(rep_seed);
  for (uint32_t id = 0; id < num_keys; ++id) {
    const uint32_t* rows = index.dict.rows_begin(id);
    size_t count = index.dict.rows_count(id);
    index.representative[id] =
        count == 1 ? rows[0] : rows[rng.UniformIndex(count)];
  }
  return index;
}

JoinRowMap MapLeftJoin(const Column& left_key, const JoinKeyIndex& index) {
  JoinRowMap map;
  size_t n = left_key.size();
  map.right_rows.resize(n);
  map.stats.total_rows = n;
  map.stats.right_distinct_keys = index.num_distinct_keys();
  for (size_t i = 0; i < n; ++i) {
    uint32_t id = index.dict.Lookup(left_key, i);
    if (id == KeyDictionary::kNoKey) {
      map.right_rows[i] = kNoMatchRow;
    } else {
      map.right_rows[i] = index.representative[id];
      ++map.stats.matched_rows;
    }
  }
  return map;
}

Column GatherColumn(const Column& src, const std::vector<uint32_t>& rows) {
  Column out(src.type());
  out.Reserve(rows.size());
  for (uint32_t r : rows) {
    if (r == kNoMatchRow) {
      out.AppendNull();
    } else {
      out.AppendFrom(src, r);
    }
  }
  return out;
}

size_t GatherNullCount(const Column& src, const std::vector<uint32_t>& rows) {
  if (src.all_valid()) {
    // No right-side nulls: the count is exactly the unmatched rows, which
    // the vectorised sentinel scan finds without touching the column.
    return simd::CountEqualU32(rows.data(), rows.size(), kNoMatchRow);
  }
  return GatherNullCountReference(src, rows);
}

size_t GatherNullCountReference(const Column& src,
                                const std::vector<uint32_t>& rows) {
  size_t nulls = 0;
  for (uint32_t r : rows) {
    if (r == kNoMatchRow || src.IsNull(r)) ++nulls;
  }
  return nulls;
}

std::vector<double> GatherNumeric(const Column& src,
                                  const std::vector<uint32_t>& rows) {
  if (src.type() == DataType::kDouble && src.all_valid()) {
    // All-valid double column — the common case for feature columns after
    // CSV ingest: branch-free masked gather, NaN where unmatched. The mask
    // keeps sentinel lanes from dereferencing src.
    std::vector<double> out(rows.size());
    simd::GatherDoublesByRow(src.double_data().data(), rows.data(),
                             rows.size(), kNoMatchRow, std::nan(""),
                             out.data());
    return out;
  }
  return GatherNumericReference(src, rows);
}

std::vector<double> GatherNumericReference(const Column& src,
                                           const std::vector<uint32_t>& rows) {
  std::vector<double> out(rows.size());
  if (src.type() == DataType::kString) {
    // First-occurrence ordinal codes in output order — identical to
    // materialising the gathered column and calling ToNumeric on it.
    std::unordered_map<std::string_view, double> codes;
    for (size_t i = 0; i < rows.size(); ++i) {
      uint32_t r = rows[i];
      if (r == kNoMatchRow || src.IsNull(r)) {
        out[i] = std::nan("");
        continue;
      }
      auto [it, inserted] = codes.try_emplace(
          std::string_view(src.GetString(r)),
          static_cast<double>(codes.size()));
      out[i] = it->second;
    }
    return out;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    uint32_t r = rows[i];
    out[i] = (r == kNoMatchRow || src.IsNull(r)) ? std::nan("")
                                                 : src.NumericAt(r);
  }
  return out;
}

std::vector<std::string> ResolveAppendedNames(const Table& left,
                                              const Table& right) {
  std::unordered_set<std::string> used;
  used.reserve(left.num_columns() + right.num_columns());
  for (const auto& name : left.ColumnNames()) used.insert(name);

  std::vector<std::string> out;
  out.reserve(right.num_columns());
  // Per-base suffix counters avoid the quadratic rescan of candidate names
  // while producing exactly the suffixes the old HasColumn loop chose.
  std::unordered_map<std::string, int> next_suffix;
  for (size_t c = 0; c < right.num_columns(); ++c) {
    std::string name = right.schema().field(c).name;
    if (used.count(name) > 0) {
      int& suffix = next_suffix.try_emplace(name, 2).first->second;
      std::string candidate;
      do {
        candidate = name + "#" + std::to_string(suffix);
        ++suffix;
      } while (used.count(candidate) > 0);
      name = std::move(candidate);
    }
    used.insert(name);
    out.push_back(std::move(name));
  }
  return out;
}

Result<JoinResult> LeftJoinWithIndex(const Table& left,
                                     const std::string& left_key,
                                     const Table& right,
                                     const JoinKeyIndex& index) {
  AF_ASSIGN_OR_RETURN(const Column* lkey, left.GetColumn(left_key));
  JoinRowMap map = MapLeftJoin(*lkey, index);

  JoinResult result;
  result.stats = map.stats;

  Table out(left.name());
  for (size_t c = 0; c < left.num_columns(); ++c) {
    AF_RETURN_NOT_OK(
        out.AddColumn(left.schema().field(c).name, left.column(c)));
  }
  std::vector<std::string> names = ResolveAppendedNames(left, right);
  for (size_t c = 0; c < right.num_columns(); ++c) {
    AF_RETURN_NOT_OK(
        out.AddColumn(names[c], GatherColumn(right.column(c), map.right_rows)));
  }
  result.table = std::move(out);
  return result;
}

}  // namespace autofeat
