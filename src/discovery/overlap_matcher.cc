#include "discovery/overlap_matcher.h"

#include <algorithm>
#include <unordered_set>

namespace autofeat {

namespace {

// Bottom-k-by-hash distinct sketch (consistent across columns; see
// schema_matcher.cc for the rationale).
std::unordered_set<std::string> Sketch(const Column& col, size_t max_sample) {
  std::unordered_set<std::string> values;
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsNull(i)) values.insert(col.KeyAt(i));
  }
  if (values.size() <= max_sample) return values;
  std::vector<std::pair<size_t, std::string>> hashed;
  hashed.reserve(values.size());
  std::hash<std::string> hasher;
  for (auto& v : values) hashed.emplace_back(hasher(v), v);
  std::nth_element(hashed.begin(),
                   hashed.begin() + static_cast<ptrdiff_t>(max_sample),
                   hashed.end());
  std::unordered_set<std::string> sketch;
  for (size_t i = 0; i < max_sample; ++i) {
    sketch.insert(std::move(hashed[i].second));
  }
  return sketch;
}

size_t Intersection(const std::unordered_set<std::string>& a,
                    const std::unordered_set<std::string>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t inter = 0;
  for (const auto& v : small) inter += large.count(v);
  return inter;
}

}  // namespace

double ValueJaccard(const Column& a, const Column& b, size_t max_sample) {
  auto sa = Sketch(a, max_sample);
  auto sb = Sketch(b, max_sample);
  if (sa.empty() && sb.empty()) return 0.0;
  size_t inter = Intersection(sa, sb);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<ColumnMatch> MatchByValueOverlap(
    const Table& left, const Table& right,
    const OverlapMatchOptions& options) {
  std::vector<ColumnMatch> matches;
  for (size_t lc = 0; lc < left.num_columns(); ++lc) {
    const Field& lf = left.schema().field(lc);
    if (lf.type == DataType::kDouble) continue;  // Keys only.
    auto sl = Sketch(left.column(lc), options.max_sample_values);
    if (sl.size() < options.min_distinct) continue;
    for (size_t rc = 0; rc < right.num_columns(); ++rc) {
      const Field& rf = right.schema().field(rc);
      if (rf.type == DataType::kDouble) continue;
      auto sr = Sketch(right.column(rc), options.max_sample_values);
      if (sr.size() < options.min_distinct) continue;

      size_t inter = Intersection(sl, sr);
      size_t uni = sl.size() + sr.size() - inter;
      double jaccard =
          uni == 0 ? 0.0
                   : static_cast<double>(inter) / static_cast<double>(uni);
      size_t smaller = std::min(sl.size(), sr.size());
      double containment =
          smaller == 0
              ? 0.0
              : static_cast<double>(inter) / static_cast<double>(smaller);
      double score = options.jaccard_weight * jaccard +
                     (1.0 - options.jaccard_weight) * containment;
      if (score >= options.threshold) {
        matches.push_back(ColumnMatch{lf.name, rf.name, score});
      }
    }
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const ColumnMatch& a, const ColumnMatch& b) {
                     return a.score > b.score;
                   });
  return matches;
}

}  // namespace autofeat
