// LakeService: the long-lived serving core of AutoFeat-as-a-service.
//
// One process-resident service owns the lake, the discovered DRG and both
// lake-wide caches across requests, behind
//
//  * a mutation API — AddTable / AppendRows / DropTable — performing
//    *incremental* DRG maintenance (only pairs touching the mutated table
//    are re-scored; candidate generation for the touched table runs the
//    pairwise LSH collision predicate against cached per-table profiles
//    instead of rebuilding the lake-wide index) and *precise* cache
//    invalidation (both caches carry every untouched entry into the next
//    snapshot by pointer copy; only the touched table's entries rebuild);
//  * a concurrent query API — Discover / Augment — that any number of
//    threads may call while mutations run.
//
// Epoch scheme: the service publishes immutable snapshots. A snapshot pins
// {epoch, lake, DRG, join-index cache, sketch cache} behind one
// shared_ptr<const Snapshot>; queries pin the current snapshot for their
// whole run and never block on (or observe) a concurrent mutation, while
// the lake's copy-on-write table storage makes the per-mutation snapshot
// copy O(tables) pointer copies. A mutation builds the next snapshot off
// the current one under the writer mutex (mutations serialise; queries do
// not), then swaps the published pointer. Old snapshots stay alive until
// their last reader drops the pin — there is no use-after-evict by
// construction.
//
// Equivalence contract: after any mutation sequence the published DRG is
// byte-identical — node order, edge order, weights — to a cold
// BuildDrgByDiscovery over the final lake state, and Discover/Augment
// results (and their deterministic obs digests) match a cold service built
// at that state. The qa invariant `serve.incremental_equivalence` fuzzes
// this; see DESIGN.md "Serving architecture" for the argument.

#ifndef AUTOFEAT_SERVE_LAKE_SERVICE_H_
#define AUTOFEAT_SERVE_LAKE_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/autofeat.h"
#include "core/config.h"
#include "discovery/data_lake.h"
#include "discovery/join_index_cache.h"
#include "discovery/lsh_index.h"
#include "discovery/schema_matcher.h"
#include "discovery/sketch_cache.h"
#include "graph/drg.h"
#include "graph/drg_delta.h"
#include "ml/trainer.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "serve/mutation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace autofeat::serve {

/// \brief Service configuration: how DRG edges are discovered and how
/// queries run.
struct ServeOptions {
  /// Schema-matcher options for DRG discovery (candidate_mode kLsh enables
  /// the incremental LSH profile path; kAllPairs re-scores the touched
  /// table against every other table).
  MatchOptions match;
  /// Per-query engine configuration. num_threads also sizes the service's
  /// maintenance pool (sketching + pair re-scoring fan out over it);
  /// join_cache is overwritten per query with the snapshot's shared cache.
  AutoFeatConfig config;
  /// Queries whose wall latency exceeds this threshold append a
  /// `slow_query` event to the attached event log; 0 disables. Whether a
  /// given query is "slow" is wall-clock dependent, so replay-determinism
  /// of the event log holds only at 0 (no slow-query events) — the
  /// stripped-timestamp byte-identity contract assumes the default.
  uint64_t slow_query_threshold_ns = 0;
};

/// \brief Provenance of one published epoch: what caused it and how much
/// incremental maintenance it needed versus carried over. Every field is a
/// pure function of the mutation trace (deterministic across replays).
struct EpochLineage {
  uint64_t epoch = 0;
  /// Monotonic mutation id (1-based); 0 for the epoch-0 initial build.
  uint64_t mutation_id = 0;
  /// "create" for epoch 0, else the mutation kind ("add"/"append"/"drop").
  std::string cause;
  /// Mutated table; empty for epoch 0.
  std::string target_table;
  size_t num_tables = 0;
  size_t drg_edges = 0;
  /// Candidate pairs actually re-scored for this epoch vs pairs skipped by
  /// the LSH collision predicate vs scored pairs carried from the previous
  /// epoch's match store untouched.
  size_t pairs_rescored = 0;
  size_t pairs_skipped = 0;
  size_t pairs_carried = 0;
  /// Cache entries carried into this epoch's caches by pointer copy.
  size_t join_entries_carried = 0;
  size_t sketch_entries_carried = 0;
};

/// \brief A published, immutable view of the service state at one epoch.
struct LakeSnapshot {
  uint64_t epoch = 0;
  DataLake lake;
  DatasetRelationGraph drg;
  /// Shared across queries of this epoch; entries for untouched tables are
  /// carried (by pointer) from the previous epoch's cache.
  std::shared_ptr<JoinIndexCache> join_cache;
  std::shared_ptr<LakeSketchCache> sketch_cache;
};

/// \brief The long-lived in-process AutoFeat service.
///
/// Thread safety: Apply/AddTable/AppendRows/DropTable serialise on an
/// internal writer mutex; Discover/Augment/snapshot() are safe from any
/// number of threads concurrently with each other and with mutations.
class LakeService {
 public:
  using SnapshotPin = std::shared_ptr<const LakeSnapshot>;

  /// \brief Outcome of one Discover query.
  struct DiscoverOutcome {
    /// Epoch the query ran against (its whole run saw exactly this state).
    uint64_t epoch = 0;
    DiscoveryResult discovery;
  };

  /// \brief Outcome of one Augment query.
  struct AugmentOutcome {
    uint64_t epoch = 0;
    AugmentationResult augmentation;
  };

  /// Builds the service over `initial`: sketches every table, discovers
  /// the epoch-0 DRG (kLsh candidate filtering via pairwise profiles when
  /// configured) and prepares the caches. A non-null `metrics` receives
  /// the `serve.*` counters plus both caches' counters for every epoch,
  /// and the `serve.query_latency_ns` / `serve.mutation_latency_ns`
  /// quantile histograms (non-deterministic — wall-clock derived). A
  /// non-null `event_log` receives the structured serving events
  /// (query_start/query_end, mutation_apply, epoch_publish, cache
  /// evict/rebuild, slow_query — see obs/event_log.h).
  static Result<std::unique_ptr<LakeService>> Create(
      DataLake initial, ServeOptions options,
      obs::MetricsRegistry* metrics = nullptr, obs::Tracer* tracer = nullptr,
      obs::EventLog* event_log = nullptr);

  // -- Mutations (serialised; each returns the new epoch) -----------------

  /// Applies one mutation: lake update, incremental re-match of the touched
  /// table, canonical DRG rebuild, cache carry-over, snapshot publish. A
  /// failed mutation (duplicate add, schema-mismatched append, missing
  /// drop target) changes nothing and leaves the current epoch in place.
  Result<uint64_t> Apply(const LakeMutation& mutation);

  Result<uint64_t> AddTable(Table table);
  Result<uint64_t> AppendRows(const std::string& table, const Table& rows);
  Result<uint64_t> DropTable(const std::string& table);

  // -- Queries (concurrent) -----------------------------------------------

  /// Runs discovery for (base_table, label_column) against the current
  /// snapshot. `metrics`/`tracer` (optional) receive this query's engine
  /// counters — cache counters go to the service registry, so a query's
  /// deterministic digest is a pure function of the snapshot state.
  Result<DiscoverOutcome> Discover(const std::string& base_table,
                                   const std::string& label_column,
                                   obs::MetricsRegistry* metrics = nullptr,
                                   obs::Tracer* tracer = nullptr) const;

  /// Full augmentation (discovery + top-k training) against the current
  /// snapshot.
  Result<AugmentOutcome> Augment(const std::string& base_table,
                                 const std::string& label_column,
                                 ml::ModelKind model,
                                 obs::MetricsRegistry* metrics = nullptr,
                                 obs::Tracer* tracer = nullptr) const;

  /// The current snapshot. Hold the pin to keep reading one consistent
  /// state across multiple calls.
  SnapshotPin snapshot() const;

  uint64_t epoch() const { return snapshot()->epoch; }
  const ServeOptions& options() const { return options_; }

  // -- Lineage (concurrent) -----------------------------------------------

  /// One record per published epoch (epoch 0 first), in publish order.
  std::vector<EpochLineage> Lineage() const;

  /// Lineage() rendered as a JSON array (pretty-printed, one record per
  /// object) — what the daemon's `lineage` command prints.
  std::string LineageJson() const;

 private:
  /// Per-mutation incremental-maintenance tallies feeding EpochLineage.
  struct MatchStats {
    size_t rescored = 0;
    size_t skipped = 0;
  };

  LakeService(ServeOptions options, obs::MetricsRegistry* metrics,
              obs::Tracer* tracer, obs::EventLog* event_log);

  /// True when LSH candidate filtering is active (mirrors the
  /// BuildDrgByDiscovery fallback rule: name-only edges are reachable when
  /// threshold <= name_weight, and then every pair must be scored).
  bool LshFilteringActive() const;

  /// The cached LSH profile of `table` (position `index` in `snap`),
  /// computing and memoising it on first use.
  const std::vector<ColumnLshProfile>& ProfileFor(const LakeSnapshot& snap,
                                                  size_t index,
                                                  const std::string& name);

  /// Re-scores every candidate pair touching `target` (present in
  /// snap->lake) and updates the match store. Writer mutex held. A
  /// non-null `stats` receives this call's rescored/skipped tallies.
  Status RematchTable(const LakeSnapshot& snap, const std::string& target,
                      MatchStats* stats = nullptr);

  /// Builds a fresh epoch-0 match store for snap->lake. Writer mutex held.
  Status MatchAllPairs(const LakeSnapshot& snap, MatchStats* stats = nullptr);

  /// Records one epoch's lineage (and its `epoch_publish` event).
  void RecordLineage(EpochLineage record);

  /// Appends a `slow_query` event when `latency_ns` crosses the configured
  /// threshold (0 disables).
  void MaybeRecordSlowQuery(uint64_t query_id, const char* kind,
                            uint64_t latency_ns) const;

  AutoFeatConfig QueryConfig(const LakeSnapshot& snap,
                             obs::MetricsRegistry* metrics,
                             obs::Tracer* tracer) const;

  ServeOptions options_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  obs::EventLog* event_log_;
  obs::Counter* mutations_;
  obs::Counter* mutations_failed_;
  obs::Counter* queries_;
  obs::Counter* tables_rematched_;
  obs::Counter* pairs_rescored_;
  obs::Counter* pairs_skipped_;
  obs::Counter* slow_queries_;
  obs::Gauge* epoch_gauge_;
  /// Wall-clock latency series (service registry, non-deterministic).
  obs::QuantileHistogram* query_latency_;
  obs::QuantileHistogram* mutation_latency_;
  /// Monotonic query ids; mutable because queries are const. Ids feed the
  /// event log and trace flow links only — never the per-query registries,
  /// whose digests stay pure functions of snapshot state.
  mutable std::atomic<uint64_t> next_query_id_{0};
  /// Monotonic mutation ids (guarded by writer_mutex_).
  uint64_t next_mutation_id_ = 0;
  std::unique_ptr<ThreadPool> pool_;

  /// Per-epoch provenance, publish order (guarded by lineage_mutex_ so
  /// readers never contend with the writer path beyond this vector).
  mutable std::mutex lineage_mutex_;
  std::vector<EpochLineage> lineage_;

  // Writer-side state (guarded by writer_mutex_): the canonical match
  // store the DRG is rebuilt from, and the per-table LSH profiles.
  std::mutex writer_mutex_;
  DrgMatchStore match_store_;
  std::unordered_map<std::string, std::vector<ColumnLshProfile>> profiles_;

  // The published snapshot (guarded by snapshot_mutex_ for the pointer
  // swap only; the pointee is immutable).
  mutable std::mutex snapshot_mutex_;
  SnapshotPin current_;
};

}  // namespace autofeat::serve

#endif  // AUTOFEAT_SERVE_LAKE_SERVICE_H_
