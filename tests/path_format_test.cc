#include "graph/path_format.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

DatasetRelationGraph MakeGraph() {
  DatasetRelationGraph g;
  g.AddEdge("applicants", "applicant_id", "credit", "applicant_id", 1.0)
      .Abort();
  g.AddEdge("credit", "credit_score", "history", "credit_id", 0.7).Abort();
  return g;
}

TEST(PathFormatTest, EmptyPath) {
  auto g = MakeGraph();
  EXPECT_EQ(FormatJoinPath(g, JoinPath{}), "<base>");
}

TEST(PathFormatTest, SingleStep) {
  auto g = MakeGraph();
  JoinPath p;
  p.steps.push_back(JoinStep{*g.NodeId("applicants"), *g.NodeId("credit"),
                             "applicant_id", "applicant_id", 1.0});
  EXPECT_EQ(FormatJoinPath(g, p),
            "applicants.applicant_id -> credit.applicant_id");
}

TEST(PathFormatTest, MultiHopMatchesPaperNotation) {
  auto g = MakeGraph();
  JoinPath p;
  p.steps.push_back(JoinStep{*g.NodeId("applicants"), *g.NodeId("credit"),
                             "applicant_id", "applicant_id", 1.0});
  p.steps.push_back(JoinStep{*g.NodeId("credit"), *g.NodeId("history"),
                             "credit_score", "credit_id", 0.7});
  EXPECT_EQ(FormatJoinPath(g, p),
            "applicants.applicant_id -> credit.credit_score -> "
            "history.credit_id");
}

TEST(PathFormatTest, FormatStep) {
  auto g = MakeGraph();
  JoinStep s{*g.NodeId("credit"), *g.NodeId("history"), "credit_score",
             "credit_id", 0.7};
  EXPECT_EQ(FormatJoinStep(g, s), "credit.credit_score -> history.credit_id");
}

}  // namespace
}  // namespace autofeat
