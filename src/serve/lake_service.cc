#include "serve/lake_service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "obs/trace.h"
#include "util/string_utils.h"

namespace autofeat::serve {

namespace {

std::vector<PairMatch> ToPairMatches(std::vector<ColumnMatch> matches) {
  std::vector<PairMatch> out;
  out.reserve(matches.size());
  for (ColumnMatch& m : matches) {
    out.push_back({std::move(m.left_column), std::move(m.right_column),
                   m.score});
  }
  return out;
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

LakeService::LakeService(ServeOptions options, obs::MetricsRegistry* metrics,
                         obs::Tracer* tracer, obs::EventLog* event_log)
    : options_(std::move(options)),
      metrics_(metrics),
      tracer_(tracer),
      event_log_(event_log),
      mutations_(obs::GetCounter(metrics, "serve.mutations")),
      mutations_failed_(obs::GetCounter(metrics, "serve.mutations_failed")),
      queries_(obs::GetCounter(metrics, "serve.queries")),
      tables_rematched_(obs::GetCounter(metrics, "serve.tables_rematched")),
      pairs_rescored_(obs::GetCounter(metrics, "serve.pairs_rescored")),
      pairs_skipped_(obs::GetCounter(metrics, "serve.pairs_skipped")),
      // Whether a query crosses the slow threshold is wall-clock dependent,
      // as are the latency quantiles — all excluded from the digest.
      slow_queries_(obs::GetCounter(metrics, "serve.slow_queries",
                                    /*deterministic=*/false)),
      epoch_gauge_(obs::GetGauge(metrics, "serve.epoch")),
      query_latency_(obs::GetQuantile(metrics, "serve.query_latency_ns")),
      mutation_latency_(
          obs::GetQuantile(metrics, "serve.mutation_latency_ns")) {
  if (ResolveNumThreads(options_.config.num_threads) > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.config.num_threads);
    if (metrics_ != nullptr) pool_->set_metrics(metrics_);
    if (tracer_ != nullptr) pool_->set_tracer(tracer_);
  }
}

Result<std::unique_ptr<LakeService>> LakeService::Create(
    DataLake initial, ServeOptions options, obs::MetricsRegistry* metrics,
    obs::Tracer* tracer, obs::EventLog* event_log) {
  std::unique_ptr<LakeService> service(
      new LakeService(std::move(options), metrics, tracer, event_log));
  auto snap = std::make_shared<LakeSnapshot>();
  snap->epoch = 0;
  snap->lake = std::move(initial);
  snap->sketch_cache = std::make_shared<LakeSketchCache>(
      &snap->lake, service->options_.match.max_sample_values, metrics,
      service->options_.match.memory_budget_bytes);
  snap->sketch_cache->set_event_log(event_log);
  snap->sketch_cache->PrewarmAll(service->pool_.get());
  MatchStats stats;
  AF_RETURN_NOT_OK(service->MatchAllPairs(*snap, &stats));
  AF_ASSIGN_OR_RETURN(snap->drg,
                      service->match_store_.BuildGraph(snap->lake.TableNames()));
  snap->join_cache = std::make_shared<JoinIndexCache>(
      &snap->lake, service->options_.config.seed, metrics, tracer,
      service->options_.config.memory_budget_bytes);
  snap->join_cache->set_event_log(event_log);
  obs::Set(service->epoch_gauge_, 0);

  EpochLineage lineage;
  lineage.epoch = 0;
  lineage.mutation_id = 0;
  lineage.cause = "create";
  lineage.num_tables = snap->lake.num_tables();
  lineage.drg_edges = snap->drg.num_edges();
  lineage.pairs_rescored = stats.rescored;
  lineage.pairs_skipped = stats.skipped;
  service->RecordLineage(std::move(lineage));

  service->current_ = std::move(snap);
  return service;
}

bool LakeService::LshFilteringActive() const {
  // Mirrors the BuildDrgByDiscovery fallback: LSH filtering is sound only
  // while every reportable edge needs value overlap. When the threshold is
  // reachable on name evidence alone, every pair must be scored.
  return options_.match.candidate_mode == CandidateMode::kLsh &&
         options_.match.threshold > options_.match.name_weight;
}

const std::vector<ColumnLshProfile>& LakeService::ProfileFor(
    const LakeSnapshot& snap, size_t index, const std::string& name) {
  auto it = profiles_.find(name);
  if (it != profiles_.end()) return it->second;
  LakeSketchCache::TableSketchesPin pin = snap.sketch_cache->GetOrBuild(index);
  return profiles_
      .emplace(name, ComputeTableLshProfiles(snap.lake.tables()[index], *pin,
                                             options_.match.lsh))
      .first->second;
}

Status LakeService::MatchAllPairs(const LakeSnapshot& snap,
                                  MatchStats* stats) {
  match_store_ = DrgMatchStore();
  profiles_.clear();
  const auto tables = snap.lake.tables();
  const size_t n = tables.size();
  std::vector<std::pair<size_t, size_t>> pairs;
  if (LshFilteringActive()) {
    for (size_t i = 0; i < n; ++i) ProfileFor(snap, i, tables[i].name());
    for (size_t i = 0; i < n; ++i) {
      const auto& pi = profiles_.at(tables[i].name());
      for (size_t j = i + 1; j < n; ++j) {
        if (LshTablesCollide(pi, profiles_.at(tables[j].name()),
                             options_.match.lsh)) {
          pairs.emplace_back(i, j);
        } else {
          obs::Increment(pairs_skipped_);
          if (stats != nullptr) ++stats->skipped;
        }
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
    }
  }

  // Score candidates (fanning out over the pool; each score is a pure
  // function of the two tables' sketches) and install them in the store.
  std::vector<std::vector<ColumnMatch>> matches =
      ParallelMap<std::vector<ColumnMatch>>(
          pool_.get(), pairs.size(), /*grain=*/1, [&](size_t p) {
            const auto& [i, j] = pairs[p];
            LakeSketchCache::TableSketchesPin left =
                snap.sketch_cache->GetOrBuild(i);
            LakeSketchCache::TableSketchesPin right =
                snap.sketch_cache->GetOrBuild(j);
            return MatchSchemas(tables[i], *left, tables[j], *right,
                                options_.match);
          });
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto& [i, j] = pairs[p];
    match_store_.SetMatches(tables[i].name(), tables[j].name(),
                            ToPairMatches(std::move(matches[p])));
  }
  obs::Increment(pairs_rescored_, pairs.size());
  if (stats != nullptr) stats->rescored += pairs.size();
  return Status::OK();
}

Status LakeService::RematchTable(const LakeSnapshot& snap,
                                 const std::string& target,
                                 MatchStats* stats) {
  const auto tables = snap.lake.tables();
  const size_t n = tables.size();
  size_t target_idx = n;
  for (size_t i = 0; i < n; ++i) {
    if (tables[i].name() == target) {
      target_idx = i;
      break;
    }
  }
  if (target_idx == n) {
    return Status::KeyError("re-match target not in lake: " + target);
  }

  const bool lsh = LshFilteringActive();
  std::vector<std::pair<size_t, size_t>> pairs;
  if (lsh) {
    // `tprof` stays valid across later ProfileFor insertions —
    // unordered_map references survive rehashing.
    const auto& tprof = ProfileFor(snap, target_idx, target);
    for (size_t u = 0; u < n; ++u) {
      if (u == target_idx) continue;
      if (LshTablesCollide(tprof, ProfileFor(snap, u, tables[u].name()),
                           options_.match.lsh)) {
        pairs.emplace_back(std::min(u, target_idx),
                           std::max(u, target_idx));
      } else {
        obs::Increment(pairs_skipped_);
        if (stats != nullptr) ++stats->skipped;
      }
    }
  } else {
    for (size_t u = 0; u < n; ++u) {
      if (u == target_idx) continue;
      pairs.emplace_back(std::min(u, target_idx), std::max(u, target_idx));
    }
  }

  std::vector<std::vector<ColumnMatch>> matches =
      ParallelMap<std::vector<ColumnMatch>>(
          pool_.get(), pairs.size(), /*grain=*/1, [&](size_t p) {
            const auto& [i, j] = pairs[p];
            LakeSketchCache::TableSketchesPin left =
                snap.sketch_cache->GetOrBuild(i);
            LakeSketchCache::TableSketchesPin right =
                snap.sketch_cache->GetOrBuild(j);
            return MatchSchemas(tables[i], *left, tables[j], *right,
                                options_.match);
          });
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto& [i, j] = pairs[p];
    match_store_.SetMatches(tables[i].name(), tables[j].name(),
                            ToPairMatches(std::move(matches[p])));
  }
  obs::Increment(pairs_rescored_, pairs.size());
  if (stats != nullptr) stats->rescored += pairs.size();
  obs::Increment(tables_rematched_);
  return Status::OK();
}

Result<uint64_t> LakeService::Apply(const LakeMutation& mutation) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const auto start = std::chrono::steady_clock::now();
  const uint64_t mutation_id = ++next_mutation_id_;
  const char* kind_name = MutationKindName(mutation.kind);
  obs::ScopedSpan span(tracer_, "serve.mutation");
  SnapshotPin prev = snapshot();
  auto next = std::make_shared<LakeSnapshot>();
  next->epoch = prev->epoch + 1;
  next->lake = prev->lake;  // O(tables) pointer copies (COW storage)
  Status applied = ApplyMutationToLake(&next->lake, mutation);
  if (!applied.ok()) {
    // Failed mutations are no-ops: nothing published, epoch unchanged —
    // the same contract a cold replay of the trace observes.
    obs::Increment(mutations_failed_);
    const uint64_t latency_ns = ElapsedNs(start);
    obs::Record(mutation_latency_, latency_ns);
    obs::Append(event_log_, "mutation_apply",
                {{"mutation", mutation_id},
                 {"kind", kind_name},
                 {"table", mutation.TargetTable()},
                 {"ok", false},
                 {"latency_ns", latency_ns}});
    return applied;
  }
  const std::string target = mutation.TargetTable();
  const std::unordered_set<std::string> invalidated{target};

  EpochLineage lineage;
  lineage.epoch = next->epoch;
  lineage.mutation_id = mutation_id;
  lineage.cause = kind_name;
  lineage.target_table = target;

  // Precise invalidation: every untouched table's sketches carry over by
  // pointer; the target's entry (if any) is left behind.
  next->sketch_cache = std::make_shared<LakeSketchCache>(
      &next->lake, options_.match.max_sample_values, metrics_,
      options_.match.memory_budget_bytes);
  next->sketch_cache->set_event_log(event_log_);
  lineage.sketch_entries_carried =
      next->sketch_cache->CarryOver(*prev->sketch_cache, invalidated);

  // Incremental DRG maintenance: drop the target's pairs, re-score only
  // pairs touching it, rebuild the graph canonically (see drg_delta.h).
  match_store_.PurgeTable(target);
  profiles_.erase(target);
  lineage.pairs_carried = match_store_.num_pairs();
  if (mutation.kind != LakeMutation::Kind::kDropTable) {
    MatchStats stats;
    AF_RETURN_NOT_OK(RematchTable(*next, target, &stats));
    lineage.pairs_rescored = stats.rescored;
    lineage.pairs_skipped = stats.skipped;
  }
  AF_ASSIGN_OR_RETURN(next->drg,
                      match_store_.BuildGraph(next->lake.TableNames()));
  lineage.num_tables = next->lake.num_tables();
  lineage.drg_edges = next->drg.num_edges();

  next->join_cache = std::make_shared<JoinIndexCache>(
      &next->lake, options_.config.seed, metrics_, tracer_,
      options_.config.memory_budget_bytes);
  next->join_cache->set_event_log(event_log_);
  lineage.join_entries_carried =
      next->join_cache->CarryOver(*prev->join_cache, invalidated);

  obs::Increment(mutations_);
  obs::Set(epoch_gauge_, static_cast<int64_t>(next->epoch));
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    current_ = std::move(next);
  }
  const uint64_t latency_ns = ElapsedNs(start);
  obs::Record(mutation_latency_, latency_ns);
  obs::Append(event_log_, "mutation_apply",
              {{"mutation", mutation_id},
               {"kind", kind_name},
               {"table", target},
               {"ok", true},
               {"latency_ns", latency_ns}});
  RecordLineage(std::move(lineage));
  return epoch();
}

Result<uint64_t> LakeService::AddTable(Table table) {
  LakeMutation m;
  m.kind = LakeMutation::Kind::kAddTable;
  m.payload = std::move(table);
  return Apply(m);
}

Result<uint64_t> LakeService::AppendRows(const std::string& table,
                                         const Table& rows) {
  LakeMutation m;
  m.kind = LakeMutation::Kind::kAppendRows;
  m.table = table;
  m.payload = rows;
  return Apply(m);
}

Result<uint64_t> LakeService::DropTable(const std::string& table) {
  LakeMutation m;
  m.kind = LakeMutation::Kind::kDropTable;
  m.table = table;
  return Apply(m);
}

LakeService::SnapshotPin LakeService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return current_;
}

AutoFeatConfig LakeService::QueryConfig(const LakeSnapshot& snap,
                                        obs::MetricsRegistry* metrics,
                                        obs::Tracer* tracer) const {
  AutoFeatConfig config = options_.config;
  config.join_cache = snap.join_cache.get();
  if (metrics != nullptr || tracer != nullptr) {
    config.metrics_enabled = true;
    config.metrics = metrics;
    config.tracer = tracer;
  }
  return config;
}

Result<LakeService::DiscoverOutcome> LakeService::Discover(
    const std::string& base_table, const std::string& label_column,
    obs::MetricsRegistry* metrics, obs::Tracer* tracer) const {
  const auto start = std::chrono::steady_clock::now();
  const uint64_t query_id = next_query_id_.fetch_add(1) + 1;
  obs::Increment(queries_);
  obs::Append(event_log_, "query_start",
              {{"query", query_id},
               {"kind", "discover"},
               {"base", base_table},
               {"label", label_column}});
  // The per-query span tree: a constant-named root (query ids stay out of
  // the deterministic projection), the snapshot pin as a child, and the
  // engine's own spans nested under the root.
  obs::ScopedSpan qspan(tracer, "serve.discover");
  SnapshotPin snap;
  {
    obs::ScopedSpan pin_span(tracer, "serve.pin_snapshot");
    // Pin one snapshot for the whole query: concurrent mutations publish
    // new snapshots but never touch this one.
    snap = snapshot();
  }
  // Flow link from command ingest (the capture point under qspan) to the
  // execution worker span — the enqueue -> execute arrow in Perfetto.
  obs::TaskContext ctx = obs::CaptureTaskContext(tracer);
  AutoFeat engine(&snap->lake, &snap->drg,
                  QueryConfig(*snap, metrics, tracer));
  Result<DiscoveryResult> discovery = [&] {
    obs::ScopedWorkerSpan exec(ctx, "serve.execute");
    return engine.DiscoverFeatures(base_table, label_column);
  }();
  const uint64_t latency_ns = ElapsedNs(start);
  obs::Record(query_latency_, latency_ns);
  obs::Append(event_log_, "query_end",
              {{"query", query_id},
               {"kind", "discover"},
               {"epoch", snap->epoch},
               {"ok", discovery.ok()},
               {"ranked", discovery.ok() ? discovery->ranked.size() : 0},
               {"latency_ns", latency_ns}});
  MaybeRecordSlowQuery(query_id, "discover", latency_ns);
  AF_RETURN_NOT_OK(discovery.status());
  DiscoverOutcome outcome;
  outcome.epoch = snap->epoch;
  outcome.discovery = std::move(*discovery);
  return outcome;
}

Result<LakeService::AugmentOutcome> LakeService::Augment(
    const std::string& base_table, const std::string& label_column,
    ml::ModelKind model, obs::MetricsRegistry* metrics,
    obs::Tracer* tracer) const {
  const auto start = std::chrono::steady_clock::now();
  const uint64_t query_id = next_query_id_.fetch_add(1) + 1;
  obs::Increment(queries_);
  obs::Append(event_log_, "query_start",
              {{"query", query_id},
               {"kind", "augment"},
               {"base", base_table},
               {"label", label_column}});
  obs::ScopedSpan qspan(tracer, "serve.augment");
  SnapshotPin snap;
  {
    obs::ScopedSpan pin_span(tracer, "serve.pin_snapshot");
    snap = snapshot();
  }
  obs::TaskContext ctx = obs::CaptureTaskContext(tracer);
  AutoFeat engine(&snap->lake, &snap->drg,
                  QueryConfig(*snap, metrics, tracer));
  Result<AugmentationResult> augmentation = [&] {
    obs::ScopedWorkerSpan exec(ctx, "serve.execute");
    return engine.Augment(base_table, label_column, model);
  }();
  const uint64_t latency_ns = ElapsedNs(start);
  obs::Record(query_latency_, latency_ns);
  obs::Append(event_log_, "query_end",
              {{"query", query_id},
               {"kind", "augment"},
               {"epoch", snap->epoch},
               {"ok", augmentation.ok()},
               {"latency_ns", latency_ns}});
  MaybeRecordSlowQuery(query_id, "augment", latency_ns);
  AF_RETURN_NOT_OK(augmentation.status());
  AugmentOutcome outcome;
  outcome.epoch = snap->epoch;
  outcome.augmentation = std::move(*augmentation);
  return outcome;
}

void LakeService::MaybeRecordSlowQuery(uint64_t query_id, const char* kind,
                                       uint64_t latency_ns) const {
  if (options_.slow_query_threshold_ns == 0 ||
      latency_ns <= options_.slow_query_threshold_ns) {
    return;
  }
  obs::Increment(slow_queries_);
  obs::Append(event_log_, "slow_query",
              {{"query", query_id},
               {"kind", kind},
               {"latency_ns", latency_ns},
               {"threshold_ns", options_.slow_query_threshold_ns}});
}

void LakeService::RecordLineage(EpochLineage record) {
  obs::Append(event_log_, "epoch_publish",
              {{"epoch", record.epoch},
               {"mutation", record.mutation_id},
               {"cause", record.cause},
               {"table", record.target_table},
               {"tables", record.num_tables},
               {"drg_edges", record.drg_edges},
               {"pairs_rescored", record.pairs_rescored},
               {"pairs_skipped", record.pairs_skipped},
               {"pairs_carried", record.pairs_carried},
               {"join_entries_carried", record.join_entries_carried},
               {"sketch_entries_carried", record.sketch_entries_carried}});
  std::lock_guard<std::mutex> lock(lineage_mutex_);
  lineage_.push_back(std::move(record));
}

std::vector<EpochLineage> LakeService::Lineage() const {
  std::lock_guard<std::mutex> lock(lineage_mutex_);
  return lineage_;
}

std::string LakeService::LineageJson() const {
  std::vector<EpochLineage> records = Lineage();
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < records.size(); ++i) {
    const EpochLineage& r = records[i];
    out << (i == 0 ? "\n  " : ",\n  ");
    out << "{\"epoch\": " << r.epoch << ", \"mutation\": " << r.mutation_id
        << ", \"cause\": \"" << JsonEscape(r.cause) << "\", \"table\": \""
        << JsonEscape(r.target_table) << "\", \"tables\": " << r.num_tables
        << ", \"drg_edges\": " << r.drg_edges
        << ", \"pairs_rescored\": " << r.pairs_rescored
        << ", \"pairs_skipped\": " << r.pairs_skipped
        << ", \"pairs_carried\": " << r.pairs_carried
        << ", \"join_entries_carried\": " << r.join_entries_carried
        << ", \"sketch_entries_carried\": " << r.sketch_entries_carried
        << "}";
  }
  out << (records.empty() ? "]\n" : "\n]\n");
  return out.str();
}

}  // namespace autofeat::serve
