// Differential tests for the SIMD kernel layer: every dispatched kernel is
// held against its scalar twin — bit-exact for the integer kernels
// (counting, min/max, hashing, gather), bounded-ULP for the floating-point
// log / entropy reduction. These tests are meaningful on every backend
// (on the scalar backend both sides are the same code; on AVX2/SSE2/NEON
// they pin the vector lanes to the reference semantics).

#include "util/simd.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace autofeat::simd {
namespace {

TEST(SimdLogTest, ExactAtOne) {
  double v = LogPositive(1.0);
  EXPECT_EQ(0.0, v);
  EXPECT_FALSE(std::signbit(v));
}

TEST(SimdLogTest, MatchesStdLogWithinUlps) {
  std::vector<double> inputs = {
      5e-324 * 1e16,  // well above subnormals
      1e-300, 1e-12,  0.1,  0.25, 0.5,
      0.7071067811865475,  // ~sqrt(2)/2, fold boundary
      0.9999999999999999, 1.0, 1.0000000000000002,
      1.4142135623730950,  // ~sqrt(2), fold boundary
      1.5, 2.0, 3.0, 10.0, 1e6, 1e12, 1e300};
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    inputs.push_back(std::exp(rng.Uniform(-700.0, 700.0)));
    inputs.push_back(rng.Uniform(1e-6, 1.0));  // probability regime
  }
  for (double x : inputs) {
    double got = LogPositive(x);
    double want = std::log(x);
    // ~4 ulp: |log(x)| >= ~1e-16 except right at 1, where both are tiny.
    double tol = std::max(std::abs(want) * 4e-16, 4e-16);
    EXPECT_NEAR(want, got, tol) << "x=" << x;
  }
}

TEST(SimdLogTest, BatchMatchesScalarLanes) {
  Rng rng(11);
  for (size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 31, 100}) {
    std::vector<double> x(n), out(n);
    for (size_t i = 0; i < n; ++i) x[i] = rng.Uniform(1e-9, 1e9);
    LogBatch(x.data(), out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      double want = std::log(x[i]);
      EXPECT_NEAR(want, out[i], std::max(std::abs(want) * 4e-16, 4e-16));
    }
  }
}

TEST(SimdSumPLogPTest, SingleFullCountIsExactlyZero) {
  // One category holding every row: p = n/n = 1.0 exactly, entropy +0.0.
  std::vector<uint32_t> counts = {5};
  double h = SumPLogP(counts.data(), counts.size(), 5.0);
  EXPECT_EQ(0.0, h);
  EXPECT_FALSE(std::signbit(h));
  // Same with padding zeros on both sides of the vector width.
  std::vector<uint32_t> padded = {0, 0, 0, 7, 0, 0, 0, 0, 0};
  EXPECT_EQ(0.0, SumPLogP(padded.data(), padded.size(), 7.0));
}

TEST(SimdSumPLogPTest, MatchesScalarOracle) {
  Rng rng(13);
  for (size_t k : {1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 1000}) {
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<uint32_t> counts(k);
      uint64_t n = 0;
      for (size_t i = 0; i < k; ++i) {
        // ~1/3 zero cells, to exercise the zero-lane blend.
        counts[i] = rng.Bernoulli(0.33)
                        ? 0
                        : static_cast<uint32_t>(rng.UniformInt(1, 10000));
        n += counts[i];
      }
      if (n == 0) continue;
      double dn = static_cast<double>(n);
      double got = SumPLogP(counts.data(), k, dn);
      double want = SumPLogPScalar(counts.data(), k, dn);
      EXPECT_NEAR(want, got, std::max(want, 1.0) * 1e-13);
    }
  }
}

TEST(SimdCountTest, CountPresentBitExact) {
  Rng rng(17);
  for (size_t n : {0, 1, 7, 8, 9, 64, 1000}) {
    std::vector<int> x(n);
    int min_x = 3;
    int range = 40;
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Bernoulli(0.2) ? -1
                                : static_cast<int>(rng.UniformInt(
                                      min_x, min_x + range - 1));
    }
    size_t trash = static_cast<size_t>(range);
    std::vector<uint32_t> got(range + 1, 0), want(range + 1, 0);
    CountPresent(x.data(), n, min_x, trash, got.data());
    CountPresentScalar(x.data(), n, min_x, trash, want.data());
    EXPECT_EQ(want, got) << "n=" << n;
  }
}

TEST(SimdCountTest, CountJointPresentBitExact) {
  Rng rng(19);
  for (size_t n : {0, 1, 7, 8, 9, 64, 1000}) {
    std::vector<int> x(n), y(n);
    int min_x = -5, min_y = 2, kx = 9, ky = 13;
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Bernoulli(0.15)
                 ? -1
                 : static_cast<int>(rng.UniformInt(min_x, min_x + kx - 1));
      y[i] = rng.Bernoulli(0.15)
                 ? -1
                 : static_cast<int>(rng.UniformInt(min_y, min_y + ky - 1));
    }
    size_t trash = static_cast<size_t>(kx) * static_cast<size_t>(ky);
    std::vector<uint32_t> got(trash + 1, 0), want(trash + 1, 0);
    CountJointPresent(x.data(), y.data(), n, min_x, min_y, ky, trash,
                      got.data());
    CountJointPresentScalar(x.data(), y.data(), n, min_x, min_y, ky, trash,
                            want.data());
    EXPECT_EQ(want, got) << "n=" << n;
  }
}

TEST(SimdMinMaxTest, MinMaxPresentBitExact) {
  Rng rng(23);
  for (size_t n : {0, 1, 7, 8, 9, 64, 1000}) {
    for (double missing_rate : {0.0, 0.3, 1.0}) {
      std::vector<int> x(n);
      for (size_t i = 0; i < n; ++i) {
        x[i] = rng.Bernoulli(missing_rate)
                   ? -1
                   : static_cast<int>(rng.UniformInt(-100, 100));
      }
      int got[2] = {INT32_MAX, INT32_MIN};
      int want[2] = {INT32_MAX, INT32_MIN};
      MinMaxPresent(x.data(), n, got);
      MinMaxPresentScalar(x.data(), n, want);
      EXPECT_EQ(want[0], got[0]);
      EXPECT_EQ(want[1], got[1]);
    }
  }
}

TEST(SimdMinMaxTest, PairMinMaxPresentBitExact) {
  Rng rng(29);
  for (size_t n : {0, 1, 7, 8, 9, 64, 1000}) {
    std::vector<int> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Bernoulli(0.2) ? -1
                                : static_cast<int>(rng.UniformInt(-50, 50));
      y[i] = rng.Bernoulli(0.2) ? -1
                                : static_cast<int>(rng.UniformInt(0, 30));
    }
    int got[4] = {INT32_MAX, INT32_MIN, INT32_MAX, INT32_MIN};
    int want[4] = {INT32_MAX, INT32_MIN, INT32_MAX, INT32_MIN};
    PairMinMaxPresent(x.data(), y.data(), n, got);
    PairMinMaxPresentScalar(x.data(), y.data(), n, want);
    for (int j = 0; j < 4; ++j) EXPECT_EQ(want[j], got[j]) << "j=" << j;
  }
}

TEST(SimdCountTest, CountNonZeroAndEqualBitExact) {
  Rng rng(31);
  for (size_t n : {0, 1, 7, 8, 9, 64, 1000}) {
    std::vector<uint32_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = rng.Bernoulli(0.4)
                 ? 0
                 : static_cast<uint32_t>(rng.UniformInt(0, 5));
    }
    EXPECT_EQ(CountNonZero32Scalar(v.data(), n), CountNonZero32(v.data(), n));
    for (uint32_t target : {0u, 3u, 0xFFFFFFFFu}) {
      EXPECT_EQ(CountEqualU32Scalar(v.data(), n, target),
                CountEqualU32(v.data(), n, target));
    }
  }
}

TEST(SimdMinHashTest, UpdateBitExact) {
  Rng rng(37);
  for (size_t num_hashes : {1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65}) {
    std::vector<uint64_t> got(num_hashes, ~uint64_t{0});
    std::vector<uint64_t> want(num_hashes, ~uint64_t{0});
    for (int v = 0; v < 50; ++v) {
      uint64_t base = rng.engine()();
      MinHashUpdate(base, got.data(), num_hashes);
      MinHashUpdateScalar(base, want.data(), num_hashes);
    }
    EXPECT_EQ(want, got) << "num_hashes=" << num_hashes;
  }
}

TEST(SimdGatherTest, GatherDoublesByRowBitExact) {
  Rng rng(41);
  const uint32_t kNoMatch = std::numeric_limits<uint32_t>::max();
  std::vector<double> src(512);
  for (double& v : src) v = rng.Normal();
  const double missing = std::numeric_limits<double>::quiet_NaN();
  for (size_t n : {0, 1, 3, 4, 5, 8, 9, 100, 1000}) {
    std::vector<uint32_t> rows(n);
    for (size_t i = 0; i < n; ++i) {
      rows[i] = rng.Bernoulli(0.25)
                    ? kNoMatch
                    : static_cast<uint32_t>(rng.UniformIndex(src.size()));
    }
    std::vector<double> got(n), want(n);
    GatherDoublesByRow(src.data(), rows.data(), n, kNoMatch, missing,
                       got.data());
    GatherDoublesByRowScalar(src.data(), rows.data(), n, kNoMatch, missing,
                             want.data());
    // Bitwise compare (NaN-safe).
    EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * sizeof(double)));
  }
}

TEST(SimdHistogramTest, AccumulateGhBitExact) {
  Rng rng(43);
  const size_t num_rows = 777;
  const size_t nbins = 64;
  std::vector<uint8_t> codes(num_rows);
  std::vector<double> grad(num_rows), hess(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    codes[r] = static_cast<uint8_t>(rng.UniformIndex(nbins));
    grad[r] = rng.Normal();
    hess[r] = rng.Uniform(1e-6, 1.0);
  }
  for (size_t n : {0, 1, 3, 4, 5, 100, 777}) {
    std::vector<size_t> rows(n);
    for (size_t i = 0; i < n; ++i) rows[i] = rng.UniformIndex(num_rows);
    std::vector<double> got(2 * nbins, 0.0), want(2 * nbins, 0.0);
    AccumulateGh(codes.data(), grad.data(), hess.data(), rows.data(), n,
                 got.data());
    AccumulateGhReference(codes.data(), grad.data(), hess.data(), rows.data(),
                          n, want.data());
    EXPECT_EQ(want, got) << "n=" << n;
  }
}

TEST(SimdBackendTest, BackendNameIsKnown) {
  std::string b = kBackendName;
  EXPECT_TRUE(b == "avx2" || b == "sse2" || b == "neon" || b == "scalar") << b;
}

}  // namespace
}  // namespace autofeat::simd
