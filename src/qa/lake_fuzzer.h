// LakeFuzzer: seeded generation of adversarial data lakes.
//
// datagen/lake_builder plants well-behaved benchmark lakes; the fuzzer's job
// is the opposite — to hit the corners a production lake throws at the
// pipeline: skewed and constant key distributions, 0%/100% join overlap,
// all-null and constant columns, duplicate keys, unicode/empty-string keys,
// single-row, empty and wide tables, null join keys, transitive satellite
// chains. Generation is a pure function of the seed (DeriveSeed streams per
// table/column), so every lake is reproducible from one uint64.

#ifndef AUTOFEAT_QA_LAKE_FUZZER_H_
#define AUTOFEAT_QA_LAKE_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "discovery/data_lake.h"
#include "serve/mutation.h"

namespace autofeat::qa {

/// \brief A generated lake plus the discovery entry points and its seed.
struct FuzzedLake {
  DataLake lake;
  std::string base_table = "fz_base";
  std::string label_column = "label";
  uint64_t seed = 0;
  /// Seeded mutation sequence against `lake` (the serving layer's write
  /// vocabulary): interleaved add/append/drop, including dropping a table
  /// mid-join-path and re-adding a dropped name with renamed feature
  /// columns, plus the occasional deliberately failing op (failure must be
  /// symmetric between the incremental service and a cold replay). The
  /// base table is never dropped. Empty for trace-free invariants.
  std::vector<serve::LakeMutation> trace;
};

/// Size envelope of generated lakes. Defaults keep a single lake small
/// enough that the full invariant registry (several discovery runs per
/// lake) stays in the low-millisecond range.
struct LakeFuzzOptions {
  size_t max_satellites = 4;
  size_t max_rows = 40;
  size_t max_feature_columns = 10;
  /// Upper bound on generated mutation-trace length.
  size_t max_mutations = 5;
};

/// \brief Deterministic adversarial lake generator.
class LakeFuzzer {
 public:
  explicit LakeFuzzer(LakeFuzzOptions options = {}) : options_(options) {}

  /// Generates the lake for `seed`. Same seed, same lake — byte-identical.
  FuzzedLake Generate(uint64_t seed) const;

  const LakeFuzzOptions& options() const { return options_; }

 private:
  LakeFuzzOptions options_;
};

/// Structural equality of two fuzzed lakes (tables, values, KFK metadata,
/// mutation trace).
bool FuzzedLakesEqual(const FuzzedLake& a, const FuzzedLake& b);

}  // namespace autofeat::qa

#endif  // AUTOFEAT_QA_LAKE_FUZZER_H_
