// Dataset Relation Graph (paper §IV, Def. IV.3).
//
// A weighted undirected *multigraph*: nodes are datasets, edges are join
// opportunities (one edge per join-column pair). KFK constraints enter with
// weight 1; dataset-discovery matches enter with weight = similarity score.

#ifndef AUTOFEAT_GRAPH_DRG_H_
#define AUTOFEAT_GRAPH_DRG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/join_path.h"
#include "util/status.h"

namespace autofeat {

/// \brief One edge instance as stored: node ids plus the join columns.
///
/// Exposed (in insertion order) so that callers can compare two graphs
/// *exactly* — including edge order, which is observable through
/// Neighbors/EnumeratePaths BFS ordering and hence through discovery
/// tie-breaks. The serving layer's incremental-vs-cold equivalence gates
/// are built on this.
struct DrgEdge {
  size_t a = 0;
  size_t b = 0;
  std::string a_column;
  std::string b_column;
  double weight = 0.0;

  bool operator==(const DrgEdge& other) const {
    return a == other.a && b == other.b && a_column == other.a_column &&
           b_column == other.b_column && weight == other.weight;
  }
};

/// \brief The joinability multigraph over a dataset collection.
class DatasetRelationGraph {
 public:
  /// Adds (or finds) a node for `dataset_name`; returns its id.
  size_t AddNode(const std::string& dataset_name);

  Result<size_t> NodeId(const std::string& dataset_name) const;
  const std::string& NodeName(size_t id) const { return node_names_[id]; }
  size_t num_nodes() const { return node_names_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Adds an undirected edge between two datasets' join columns. Duplicate
  /// (same endpoints and columns) edges are ignored; the max weight is kept.
  Status AddEdge(const std::string& from_dataset,
                 const std::string& from_column,
                 const std::string& to_dataset, const std::string& to_column,
                 double weight);

  /// Distinct neighbour nodes of `node` (each listed once even if connected
  /// by several multi-edges), in insertion order.
  std::vector<size_t> Neighbors(size_t node) const;

  /// All edge instances between `a` and `b`, oriented a -> b.
  std::vector<JoinStep> EdgesBetween(size_t a, size_t b) const;

  /// Similarity-score pruning (§IV-C): only the edges between `a` and `b`
  /// with the maximum weight. Ties all survive (each becomes its own path).
  std::vector<JoinStep> BestEdgesBetween(size_t a, size_t b) const;

  /// All acyclic join paths starting at `start` with 1 <= length <=
  /// max_hops, in BFS (level) order; each multigraph edge choice is a
  /// distinct path (Def. IV.4). When `prune_to_best_edges` is set the
  /// similarity-score pruning is applied at every hop.
  std::vector<JoinPath> EnumeratePaths(size_t start, size_t max_hops,
                                       bool prune_to_best_edges = false) const;

  /// log10 of the JoinAll path count (Eq. 3): the product over BFS levels d
  /// and nodes v in level d of k(v)! where k(v) = #unvisited neighbours.
  double JoinAllPathCountLog10(size_t start) const;

  /// Node ids reachable from `start` (including `start`). Tables outside
  /// this set can never contribute features to the base table.
  std::vector<size_t> ReachableFrom(size_t start) const;

  /// Nodes NOT reachable from `start` — diagnosed by the CLI as isolated
  /// datasets the discovery step found no join for.
  std::vector<size_t> UnreachableFrom(size_t start) const;

  /// Every edge instance, in insertion order.
  std::vector<DrgEdge> AllEdges() const;

  /// An order-sensitive FNV-1a fingerprint of the node list and edge list
  /// (names, columns, weights, insertion order). Two graphs with equal
  /// fingerprints behave identically in every traversal above.
  std::string OrderedFingerprint() const;

 private:
  struct EdgeRecord {
    size_t a;
    size_t b;
    std::string a_column;
    std::string b_column;
    double weight;
  };

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, size_t> node_index_;
  std::vector<EdgeRecord> edges_;
  // Per node: edge indices incident to it.
  std::vector<std::vector<size_t>> incidence_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_GRAPH_DRG_H_
