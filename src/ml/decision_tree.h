// CART-style binary classification tree (gini impurity).
//
// Serves standalone and as the weak learner inside RandomForest /
// ExtraTrees. Supports per-node feature subsampling and (for ExtraTrees)
// random split thresholds.

#ifndef AUTOFEAT_ML_DECISION_TREE_H_
#define AUTOFEAT_ML_DECISION_TREE_H_

#include <string>
#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"

namespace autofeat::ml {

struct TreeOptions {
  int max_depth = 10;
  size_t min_samples_leaf = 1;
  size_t min_samples_split = 2;
  /// Features considered per split; 0 = all, kSqrt = floor(sqrt(p)).
  static constexpr int kSqrt = -1;
  int max_features = 0;
  /// ExtraTrees mode: draw one uniform threshold per feature instead of
  /// scanning all boundaries.
  bool random_thresholds = false;
  uint64_t seed = 42;
};

/// \brief A single decision tree classifier.
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(TreeOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;

  /// Fits on a row subset (bagging support). Rows may repeat.
  Status FitRows(const Dataset& train, const std::vector<size_t>& rows);

  double PredictProba(const Dataset& data, size_t row) const override;
  std::string name() const override { return "DecisionTree"; }
  std::vector<double> FeatureImportances() const override;

  size_t num_nodes() const { return nodes_.size(); }
  int depth() const { return depth_; }

 private:
  struct Node {
    int feature = -1;          // -1 = leaf
    double threshold = 0.0;    // go left if value <= threshold
    int left = -1;
    int right = -1;
    double proba = 0.5;        // P(y=1) among training rows at the node
  };

  // Recursive builder over `rows` (indices into the training dataset).
  int BuildNode(const Dataset& data, std::vector<size_t>& rows, int depth,
                Rng* rng);

  struct SplitDecision {
    bool found = false;
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };
  SplitDecision FindBestSplit(const Dataset& data,
                              const std::vector<size_t>& rows, Rng* rng) const;

  TreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  int depth_ = 0;
  size_t num_features_ = 0;
};

}  // namespace autofeat::ml

#endif  // AUTOFEAT_ML_DECISION_TREE_H_
