// Human-readable reports of discovery/augmentation results (shared by the
// CLI, the examples and debugging sessions).

#ifndef AUTOFEAT_CORE_REPORT_H_
#define AUTOFEAT_CORE_REPORT_H_

#include <string>

#include "core/autofeat.h"
#include "graph/drg.h"

namespace autofeat {

/// Multi-line summary of a discovery run: counters, timings and the top
/// `max_paths` ranked join paths with their selected features.
std::string FormatDiscoveryReport(const DiscoveryResult& result,
                                  const DatasetRelationGraph& drg,
                                  size_t max_paths = 5);

/// Multi-line summary of a full augmentation: accuracy, best path,
/// selected features and the discovery counters.
std::string FormatAugmentationReport(const AugmentationResult& result,
                                     const DatasetRelationGraph& drg);

}  // namespace autofeat

#endif  // AUTOFEAT_CORE_REPORT_H_
