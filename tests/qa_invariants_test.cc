// Tests for the qa invariant registry: registry shape, and hand-built
// minimal lakes that each invariant must judge correctly — including the
// score-tie lake that regression-tests the SelectKBest tie-break (two
// identical feature columns must not make discovery output depend on the
// physical column order of a lake table).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "qa/invariants.h"
#include "qa/lake_fuzzer.h"

namespace autofeat::qa {
namespace {

const Invariant& FindInvariant(const std::string& name) {
  for (const Invariant& inv : BuiltinInvariants()) {
    if (inv.name == name) return inv;
  }
  static Invariant missing;
  ADD_FAILURE() << "no builtin invariant named " << name;
  return missing;
}

TEST(InvariantRegistryTest, HasAtLeastTenUniquelyNamedInvariants) {
  const auto& invariants = BuiltinInvariants();
  EXPECT_GE(invariants.size(), 10u);
  std::set<std::string> names;
  for (const Invariant& inv : invariants) {
    EXPECT_TRUE(names.insert(inv.name).second)
        << "duplicate invariant name: " << inv.name;
    EXPECT_FALSE(inv.description.empty()) << inv.name;
    EXPECT_TRUE(inv.check != nullptr) << inv.name;
  }
}

TEST(InvariantRegistryTest, PlantedInvariantOnlyPresentWhenAsked) {
  for (const Invariant& inv : RegistryInvariants(false)) {
    EXPECT_NE(inv.name, "planted.no_nulls");
  }
  bool found = false;
  for (const Invariant& inv : RegistryInvariants(true)) {
    if (inv.name == "planted.no_nulls") found = true;
  }
  EXPECT_TRUE(found);
}

// A minimal lake with two byte-identical satellite feature columns ("a" and
// "b"): every relevance heuristic scores them equally, so selection must
// break the tie by name, not by column position. Shrunk-repro regression
// test for the SelectKBest order dependence found by
// discovery.column_permutation_invariant.
FuzzedLake MakeTiedFeatureLake() {
  FuzzedLake fz;
  fz.seed = 4242;
  const size_t n = 24;

  Table base("fz_base");
  Column key(DataType::kInt64);
  Column bf0(DataType::kInt64);
  Column label(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    key.AppendInt64(static_cast<int64_t>(i));
    bf0.AppendInt64(static_cast<int64_t>(i % 5));
    label.AppendInt64(static_cast<int64_t>(i % 2));
  }
  EXPECT_TRUE(base.AddColumn("key", std::move(key)).ok());
  EXPECT_TRUE(base.AddColumn("bf0", std::move(bf0)).ok());
  EXPECT_TRUE(base.AddColumn("label", std::move(label)).ok());

  Table sat("fz_sat");
  Column k(DataType::kInt64);
  Column a(DataType::kInt64);
  Column b(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    k.AppendInt64(static_cast<int64_t>(i));
    a.AppendInt64(static_cast<int64_t>(i % 2));  // == label: top relevance
    b.AppendInt64(static_cast<int64_t>(i % 2));  // identical twin of "a"
  }
  EXPECT_TRUE(sat.AddColumn("k", std::move(k)).ok());
  EXPECT_TRUE(sat.AddColumn("a", std::move(a)).ok());
  EXPECT_TRUE(sat.AddColumn("b", std::move(b)).ok());

  EXPECT_TRUE(fz.lake.AddTable(std::move(base)).ok());
  EXPECT_TRUE(fz.lake.AddTable(std::move(sat)).ok());
  fz.lake.AddKfk({"fz_base", "key", "fz_sat", "k"});
  return fz;
}

TEST(InvariantRegressionTest, TiedFeaturesDoNotBreakPermutationInvariance) {
  FuzzedLake fz = MakeTiedFeatureLake();
  const Invariant& inv =
      FindInvariant("discovery.column_permutation_invariant");
  Status status = inv.check(fz);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(InvariantRegressionTest, TiedFeatureLakePassesWholeRegistry) {
  FuzzedLake fz = MakeTiedFeatureLake();
  for (const Invariant& inv : BuiltinInvariants()) {
    Status status = inv.check(fz);
    EXPECT_TRUE(status.ok()) << inv.name << ": " << status.ToString();
  }
}

// Shrunk-repro regression for the JoinCompleteness empty-join bug: a
// zero-row satellite joins to zero rows, and JoinCompleteness must still
// raise KeyError for a column missing from the joined table instead of
// silently returning a perfect score.
FuzzedLake MakeEmptyJoinLake() {
  FuzzedLake fz;
  fz.seed = 4243;
  Table base("fz_base");
  Column key(DataType::kInt64);
  Column label(DataType::kInt64);
  for (size_t i = 0; i < 4; ++i) {
    key.AppendInt64(static_cast<int64_t>(i));
    label.AppendInt64(static_cast<int64_t>(i % 2));
  }
  EXPECT_TRUE(base.AddColumn("key", std::move(key)).ok());
  EXPECT_TRUE(base.AddColumn("label", std::move(label)).ok());

  Table empty_sat("fz_empty");  // zero rows: every left row unmatched,
  EXPECT_TRUE(                  // and an inner join of it has zero rows
      empty_sat.AddColumn("k", Column(DataType::kInt64)).ok());
  EXPECT_TRUE(empty_sat.AddColumn("f0", Column(DataType::kDouble)).ok());

  EXPECT_TRUE(fz.lake.AddTable(std::move(base)).ok());
  EXPECT_TRUE(fz.lake.AddTable(std::move(empty_sat)).ok());
  fz.lake.AddKfk({"fz_base", "key", "fz_empty", "k"});
  return fz;
}

TEST(InvariantRegressionTest, EmptyJoinStillValidatesCompletenessColumns) {
  FuzzedLake fz = MakeEmptyJoinLake();
  const Invariant& inv = FindInvariant("join.completeness_bounds");
  Status status = inv.check(fz);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(InvariantRegressionTest, EmptyJoinLakePassesWholeRegistry) {
  FuzzedLake fz = MakeEmptyJoinLake();
  for (const Invariant& inv : BuiltinInvariants()) {
    Status status = inv.check(fz);
    EXPECT_TRUE(status.ok()) << inv.name << ": " << status.ToString();
  }
}

TEST(DiscoveryFingerprintTest, EncodesScoresPathsAndFeatures) {
  DiscoveryResult result;
  result.paths_explored = 3;
  RankedPath rp;
  rp.score = 0.5;
  rp.path.steps.push_back({0, 1, "key", "k", 1.0});
  rp.selected_features.push_back({"a", 1.0});
  result.ranked.push_back(rp);
  std::string fp = DiscoveryFingerprint(result);
  EXPECT_NE(fp.find("0.key>1.k"), std::string::npos);
  EXPECT_NE(fp.find("a=1"), std::string::npos);
  EXPECT_NE(fp.find("0.5"), std::string::npos);
}

}  // namespace
}  // namespace autofeat::qa
