// Failure-injection tests: malformed inputs, broken graphs and degenerate
// lakes must produce clean Status errors (or graceful skips), never
// crashes or silent corruption.

#include <gtest/gtest.h>

#include "core/autofeat.h"
#include "core/tuning.h"
#include "datagen/lake_builder.h"
#include "discovery/data_lake.h"
#include "graph/drg.h"
#include "relational/join.h"
#include "table/csv.h"

namespace autofeat {
namespace {

// ---- Malformed CSV inputs ---------------------------------------------------

TEST(CsvFailureTest, VariousMalformedInputs) {
  // Header only: zero rows is valid.
  auto empty = ReadCsvString("a,b\n", "t");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);
  // Too many fields.
  EXPECT_FALSE(ReadCsvString("a,b\n1,2,3\n", "t").ok());
  // Too few fields.
  EXPECT_FALSE(ReadCsvString("a,b,c\n1,2\n", "t").ok());
}

TEST(CsvFailureTest, MalformedRowDeepInFileIsAnErrorNotTruncation) {
  // A bad row after many good ones must fail the whole parse — silently
  // keeping the prefix would corrupt downstream joins.
  std::string csv = "a,b\n";
  for (int i = 0; i < 20; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i * 2) + "\n";
  }
  csv += "21\n";  // too few fields, row 22
  auto t = ReadCsvString(csv, "t");
  EXPECT_FALSE(t.ok());
}

TEST(CsvFailureTest, RowOfOnlyCommasParsesAsNulls) {
  // Degenerate but well-formed: correct field count, all fields empty.
  auto t = ReadCsvString("a,b,c\n,,\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);
  for (size_t c = 0; c < t->num_columns(); ++c) {
    EXPECT_TRUE(t->column(c).IsNull(0));
  }
}

TEST(CsvFailureTest, UnterminatedQuoteStillTerminates) {
  // Parser must not hang or crash on a dangling quote.
  auto t = ReadCsvString("a\n\"unterminated\n", "t");
  // Either parse (content swallowed to EOL) or error; both acceptable,
  // crash is not.
  (void)t;
  SUCCEED();
}

// ---- JoinCompleteness column validation --------------------------------------

TEST(JoinCompletenessFailureTest, MissingColumnIsKeyError) {
  Table joined("j");
  joined.AddColumn("x", Column::Doubles({1, 2, 3})).Abort();
  auto r = JoinCompleteness(joined, {"x", "no_such_column"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
}

TEST(JoinCompletenessFailureTest, EmptyJoinStillValidatesColumns) {
  // Regression (found by the lake fuzzer, join.completeness_bounds): the
  // zero-row early return used to skip column validation, silently scoring
  // a misnamed column as perfectly complete.
  Table joined("j");
  joined.AddColumn("x", Column(DataType::kDouble)).Abort();  // zero rows
  auto missing = JoinCompleteness(joined, {"no_such_column"});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kKeyError);
  // Valid columns on an empty join still score 1.0 (nothing is missing).
  auto valid = JoinCompleteness(joined, {"x"});
  ASSERT_TRUE(valid.ok());
  EXPECT_EQ(*valid, 1.0);
}

// ---- Unreadable lake directory -----------------------------------------------

// The CLI pipeline: load a lake from disk, build the DRG, discover. Each
// AF_ASSIGN_OR_RETURN hop must propagate the original load failure.
Result<DiscoveryResult> DiscoverFromDirectory(const std::string& directory) {
  AF_ASSIGN_OR_RETURN(DataLake lake, DataLake::FromCsvDirectory(directory));
  AF_ASSIGN_OR_RETURN(DatasetRelationGraph drg, BuildDrgFromKfk(lake));
  AutoFeat engine(&lake, &drg, AutoFeatConfig{});
  return engine.DiscoverFeatures("base", "label");
}

TEST(EngineFailureTest, UnreadableLakeDirectoryPropagatesThroughDiscover) {
  auto missing = DiscoverFromDirectory("/no/such/lake/directory");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);

  // A file path where a directory is expected is just as unreadable.
  auto not_a_dir = DiscoverFromDirectory("/dev/null");
  EXPECT_FALSE(not_a_dir.ok());
}

// ---- DRG referencing tables missing from the lake ---------------------------

TEST(EngineFailureTest, DrgNodeWithoutLakeTableIsSkipped) {
  datagen::LakeSpec spec;
  spec.name = "ghost";
  spec.rows = 300;
  spec.joinable_tables = 3;
  spec.seed = 5;
  auto built = datagen::BuildLake(spec);
  auto drg = BuildDrgFromKfk(built.lake).MoveValue();
  // An edge to a table that is in the graph but not in the lake.
  drg.AddEdge("ghost_base", "ghost_id", "phantom", "ghost_id", 1.0).Abort();

  AutoFeatConfig config;
  config.sample_rows = 200;
  AutoFeat engine(&built.lake, &drg, config);
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The phantom neighbour is skipped; real paths still come back.
  EXPECT_FALSE(result->ranked.empty());
  for (const auto& rp : result->ranked) {
    for (const auto& step : rp.path.steps) {
      EXPECT_NE(drg.NodeName(step.to_node), "phantom");
    }
  }
}

TEST(EngineFailureTest, EdgeWithWrongColumnIsInfeasible) {
  datagen::LakeSpec spec;
  spec.name = "wrongcol";
  spec.rows = 300;
  spec.joinable_tables = 2;
  spec.seed = 6;
  auto built = datagen::BuildLake(spec);
  DatasetRelationGraph drg;
  // Edge claims a join column the base table does not have.
  drg.AddNode(built.base_table);
  drg.AddEdge(built.base_table, "no_such_column", "wrongcol_t0",
              "wrongcol_id", 0.9).Abort();
  AutoFeatConfig config;
  config.sample_rows = 200;
  AutoFeat engine(&built.lake, &drg, config);
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ranked.empty());
  EXPECT_GT(result->paths_pruned_infeasible, 0u);
}

TEST(EngineFailureTest, IsolatedBaseTableYieldsEmptyRanking) {
  datagen::LakeSpec spec;
  spec.name = "island";
  spec.rows = 300;
  spec.joinable_tables = 2;
  spec.seed = 7;
  auto built = datagen::BuildLake(spec);
  DatasetRelationGraph drg;
  for (const auto& t : built.lake.tables()) drg.AddNode(t.name());
  // No edges at all.
  AutoFeatConfig config;
  config.sample_rows = 200;
  AutoFeat engine(&built.lake, &drg, config);
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ranked.empty());
  EXPECT_EQ(result->paths_explored, 0u);
  // Augment falls back to the base table without error.
  auto augmented = engine.Augment(built.base_table, built.label_column,
                                  ml::ModelKind::kKnn);
  ASSERT_TRUE(augmented.ok());
  EXPECT_EQ(augmented->best_path.path.length(), 0u);
}

// ---- Degenerate data ---------------------------------------------------------

TEST(DegenerateDataTest, SingleClassLabelIsCleanError) {
  DataLake lake;
  Table base("b");
  base.AddColumn("id", Column::Int64s({1, 2, 3})).Abort();
  base.AddColumn("label", Column::Int64s({1, 1, 1})).Abort();
  lake.AddTable(std::move(base)).Abort();
  DatasetRelationGraph drg;
  drg.AddNode("b");
  AutoFeat engine(&lake, &drg, AutoFeatConfig{});
  // Discovery itself works (no ML involved)...
  auto discovery = engine.DiscoverFeatures("b", "label");
  EXPECT_TRUE(discovery.ok());
  // ...but training on a single-class label fails with a Status, not a
  // crash.
  auto augmented = engine.Augment("b", "label", ml::ModelKind::kKnn);
  EXPECT_FALSE(augmented.ok());
}

TEST(DegenerateDataTest, TinyTableStillRuns) {
  DataLake lake;
  Table base("tiny");
  base.AddColumn("id", Column::Int64s({1, 2, 3, 4})).Abort();
  base.AddColumn("x", Column::Doubles({0.1, 0.9, 0.2, 0.8})).Abort();
  base.AddColumn("label", Column::Int64s({0, 1, 0, 1})).Abort();
  lake.AddTable(std::move(base)).Abort();
  Table sat("sat");
  sat.AddColumn("id", Column::Int64s({1, 2, 3, 4})).Abort();
  sat.AddColumn("y", Column::Doubles({1.0, 2.0, 1.1, 2.1})).Abort();
  lake.AddTable(std::move(sat)).Abort();
  lake.AddKfk(KfkConstraint{"tiny", "id", "sat", "id"});
  auto drg = BuildDrgFromKfk(lake);
  ASSERT_TRUE(drg.ok());
  AutoFeat engine(&lake, &*drg, AutoFeatConfig{});
  auto result = engine.Augment("tiny", "label", ml::ModelKind::kKnn);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(DegenerateDataTest, AllConstantFeaturesRankNothing) {
  DataLake lake;
  Table base("c");
  base.AddColumn("id", Column::Int64s({1, 2, 3, 4, 5, 6})).Abort();
  base.AddColumn("label", Column::Int64s({0, 1, 0, 1, 0, 1})).Abort();
  lake.AddTable(std::move(base)).Abort();
  Table sat("consts");
  sat.AddColumn("id", Column::Int64s({1, 2, 3, 4, 5, 6})).Abort();
  sat.AddColumn("k1", Column::Doubles(std::vector<double>(6, 3.14))).Abort();
  sat.AddColumn("k2", Column::Doubles(std::vector<double>(6, 2.72))).Abort();
  lake.AddTable(std::move(sat)).Abort();
  lake.AddKfk(KfkConstraint{"c", "id", "consts", "id"});
  auto drg = BuildDrgFromKfk(lake);
  AutoFeat engine(&lake, &*drg, AutoFeatConfig{});
  auto result = engine.DiscoverFeatures("c", "label");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ranked.empty());  // All features irrelevant.
}

// ---- Tuning over a broken lake -----------------------------------------------

TEST(TuningFailureTest, PropagatesEngineErrors) {
  DataLake lake;
  Table base("b");
  base.AddColumn("id", Column::Int64s({1, 2})).Abort();
  base.AddColumn("label", Column::Int64s({1, 1})).Abort();  // Single class.
  lake.AddTable(std::move(base)).Abort();
  DatasetRelationGraph drg;
  drg.AddNode("b");
  auto result = TuneHyperParameters(lake, drg, "b", "label",
                                    AutoFeatConfig{}, TuningOptions{});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace autofeat
