// AutoFeat hyper-parameters (paper §VI, §VII-B, §VII-D).

#ifndef AUTOFEAT_CORE_CONFIG_H_
#define AUTOFEAT_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "fs/redundancy.h"
#include "fs/relevance.h"
#include "util/scheduler.h"

namespace autofeat {

class JoinIndexCache;

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// \brief Cache-eviction stress schedules (qa/bench only). Discovery output
/// must be byte-identical under every schedule — cache entries are pure
/// functions of (table contents, column, seed) — which the
/// `cache.eviction_oblivious` fuzzer invariant enforces.
enum class EvictionStress {
  /// Production behaviour: evict only when the budget demands it.
  kNone,
  /// Adversarial: evict every resident entry between BFS rounds.
  kEvictAll,
  /// Evict a seeded pseudo-random half of the entries between BFS rounds
  /// (deterministic given config.seed).
  kRandom,
};

/// \brief Configuration of the AutoFeat discovery algorithm.
struct AutoFeatConfig {
  /// Data-quality (completeness) threshold tau: joins whose appended
  /// columns are less complete than this are pruned (paper default 0.65).
  double tau = 0.65;
  /// Maximum features selected from one table, kappa (paper default 15).
  size_t kappa = 15;
  /// Join paths handed to the ML evaluation stage (top-k).
  size_t top_k_paths = 4;
  /// Maximum join-path length explored (transitive-hop budget).
  size_t max_hops = 4;
  /// Safety cap on the number of join paths materialised during search.
  size_t max_paths = 2000;

  /// Relevance heuristic (§V-C; recommended: Spearman).
  RelevanceKind relevance = RelevanceKind::kSpearman;
  /// Redundancy criterion (§V-D; recommended: MRMR).
  RedundancyKind redundancy = RedundancyKind::kMrmr;
  /// Ablation switches (Fig. 9): disable one of the two analyses.
  bool use_relevance = true;
  bool use_redundancy = true;

  /// Similarity-score join-column pruning (§IV-C): keep only top-scoring
  /// join columns between a table pair.
  bool prune_join_columns = true;

  /// Beam pruning on dense (discovered) graphs: each partial path only
  /// expands to its `beam_width` highest-similarity neighbours (0 = all).
  /// The paper's future work anticipates "more aggressive pruning" for
  /// real data lakes; KFK snowflakes have small degrees and are unaffected.
  size_t beam_width = 8;

  /// Collapse join paths that visit the same set of tables and end at the
  /// same table (different visit orders produce near-identical augmented
  /// tables). Tames the factorial path blow-up of dense multigraphs; no
  /// effect on tree-shaped KFK schemata, where node sets identify paths.
  bool dedup_node_sets = true;

  /// Stratified sample size of the base table used during feature selection
  /// (0 = use all rows). Model training always sees the full data (§VI).
  size_t sample_rows = 2000;

  /// Join fast path: intern key columns once per (lake table, key column)
  /// in a shared JoinIndexCache and score BFS candidate edges through
  /// factorized row mappings, materialising a joined Table only for states
  /// that actually enter the frontier or reach the ML evaluator. When
  /// false, the engine runs the pre-interning reference path (string-keyed
  /// joins, full materialisation per candidate) — kept for differential
  /// benchmarking (bench/join_path_eval); the two paths explore identical
  /// path sets but may pick different cardinality-normalisation
  /// representatives, so scores can differ in the last digits.
  bool join_fast_path = true;

  /// Worker threads for frontier expansion and top-k path evaluation:
  /// 0 = one per hardware thread, 1 = legacy sequential path (no pool),
  /// n = a fixed-size pool of n workers. Results are byte-identical at any
  /// thread count: candidate edges are merged in deterministic edge order
  /// and every stochastic task draws from an RNG stream derived from
  /// (seed, task_index).
  size_t num_threads = 1;

  /// Loop runtime for the parallel phases (candidate evaluation, top-k path
  /// evaluation): kMorsel deals fixed-size morsels across per-lane
  /// work-stealing deques (skew-tolerant, no intermediate barrier),
  /// kForkJoin is the shared-cursor ParallelFor. Both fold results in index
  /// order — the digest is byte-identical across kinds and thread counts.
  SchedulerKind scheduler = SchedulerKind::kMorsel;

  /// Global memory budget in bytes for the lake-wide caches (join-key
  /// indexes during discovery; column sketches during DRG construction —
  /// the phases do not overlap, so each cache is bounded by the full
  /// budget). 0 = unbounded. Under a budget the caches evict
  /// least-recently-used entries (largest first within a batch) and rebuild
  /// them on the next miss; results are byte-identical at any budget, only
  /// wall time changes (bench/oocore gates the slowdown).
  size_t memory_budget_bytes = 0;

  /// Eviction-schedule stress for qa/bench runs: evict everything (or a
  /// seeded random half) between BFS rounds to prove results are
  /// eviction-oblivious. Leave at kNone in production.
  EvictionStress eviction_stress = EvictionStress::kNone;

  /// Observability: when true the engine records counters/histograms and
  /// hierarchical phase spans (src/obs/) across DRG caches, the BFS
  /// traversal, joins and evaluation. When false (default) every
  /// instrumentation point degenerates to one untaken branch — the hot
  /// paths stay within noise of the uninstrumented build.
  bool metrics_enabled = false;
  /// Optional external sinks. When metrics_enabled and left null the engine
  /// owns a private registry/tracer (reachable via AutoFeat::metrics() /
  /// tracer()); pass non-null sinks to share one report across DRG
  /// construction, the engine and baselines (as autofeat_cli does for
  /// --metrics-out). Ignored when metrics_enabled is false.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;

  /// Optional externally owned join-index cache (serving layer): when
  /// non-null and join_fast_path is set, the engine uses it instead of
  /// constructing a private one, so the cache outlives the engine and is
  /// shared across queries. The cache must be built over the same lake the
  /// engine reads and with the same seed (its entries are pure functions of
  /// (table contents, column, seed), so sharing never changes results).
  JoinIndexCache* join_cache = nullptr;

  uint64_t seed = 42;
};

}  // namespace autofeat

#endif  // AUTOFEAT_CORE_CONFIG_H_
