// K-nearest-neighbours classifier (used for the paper's non-tree-model
// evaluation, Figs. 5 and 7).

#ifndef AUTOFEAT_ML_KNN_H_
#define AUTOFEAT_ML_KNN_H_

#include <string>
#include <vector>

#include "ml/classifier.h"

namespace autofeat::ml {

struct KnnOptions {
  size_t k = 5;
};

/// \brief KNN over z-score-normalised features with Euclidean distance.
class Knn final : public Classifier {
 public:
  explicit Knn(KnnOptions options = {}) : options_(options) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, size_t row) const override;
  std::string name() const override { return "KNN"; }

 private:
  // Normalises a raw value of feature f into z-score space.
  double Normalize(size_t feature, double value) const {
    return (value - means_[feature]) / stds_[feature];
  }

  KnnOptions options_;
  std::vector<std::vector<double>> train_rows_;  // [row][feature], normalised
  std::vector<int> train_labels_;
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace autofeat::ml

#endif  // AUTOFEAT_ML_KNN_H_
