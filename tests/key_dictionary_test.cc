#include "table/key_dictionary.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace autofeat {
namespace {

TEST(CanonicalIntKeyTest, AcceptsCanonicalDecimals) {
  EXPECT_EQ(CanonicalIntKey("0"), 0);
  EXPECT_EQ(CanonicalIntKey("7"), 7);
  EXPECT_EQ(CanonicalIntKey("-3"), -3);
  EXPECT_EQ(CanonicalIntKey("9223372036854775807"),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(CanonicalIntKey("-9223372036854775808"),
            std::numeric_limits<int64_t>::min());
}

TEST(CanonicalIntKeyTest, RejectsNonCanonicalForms) {
  // Everything here would NOT equal std::to_string(n) for any n, so it must
  // stay in the string key space (KeyAt semantics).
  EXPECT_EQ(CanonicalIntKey(""), std::nullopt);
  EXPECT_EQ(CanonicalIntKey("07"), std::nullopt);
  EXPECT_EQ(CanonicalIntKey("-0"), std::nullopt);
  EXPECT_EQ(CanonicalIntKey("+7"), std::nullopt);
  EXPECT_EQ(CanonicalIntKey("7.0"), std::nullopt);
  EXPECT_EQ(CanonicalIntKey("7 "), std::nullopt);
  EXPECT_EQ(CanonicalIntKey(" 7"), std::nullopt);
  EXPECT_EQ(CanonicalIntKey("abc"), std::nullopt);
  EXPECT_EQ(CanonicalIntKey("9223372036854775808"), std::nullopt);  // overflow
  EXPECT_EQ(CanonicalIntKey("99999999999999999999"), std::nullopt);
}

TEST(IntegralDoubleKeyTest, ClassifiesDoubles) {
  int64_t out = 0;
  EXPECT_TRUE(IntegralDoubleKey(7.0, &out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(IntegralDoubleKey(-2.0, &out));
  EXPECT_EQ(out, -2);
  EXPECT_TRUE(IntegralDoubleKey(0.0, &out));
  EXPECT_EQ(out, 0);

  EXPECT_FALSE(IntegralDoubleKey(2.5, &out));
  EXPECT_FALSE(IntegralDoubleKey(std::nan(""), &out));
  EXPECT_FALSE(IntegralDoubleKey(std::numeric_limits<double>::infinity(),
                                 &out));
  EXPECT_FALSE(IntegralDoubleKey(1e16, &out));  // beyond the KeyAt cutoff
}

TEST(KeyDictionaryTest, AssignsIdsInFirstSeenOrder) {
  Column keys = Column::Int64s({5, 3, 5, 9, 3, 5});
  KeyDictionary dict = KeyDictionary::Build(keys);
  ASSERT_EQ(dict.num_keys(), 3u);
  // First-seen order: 5 -> 0, 3 -> 1, 9 -> 2.
  const auto& ids = dict.row_ids();
  ASSERT_EQ(ids.size(), 6u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 1u);
  EXPECT_EQ(ids[2], 0u);
  EXPECT_EQ(ids[3], 2u);
  EXPECT_EQ(ids[4], 1u);
  EXPECT_EQ(ids[5], 0u);
}

TEST(KeyDictionaryTest, CsrGroupsAreAscendingRowLists) {
  Column keys = Column::Int64s({5, 3, 5, 9, 3, 5});
  KeyDictionary dict = KeyDictionary::Build(keys);
  ASSERT_EQ(dict.rows_count(0), 3u);  // key 5 at rows 0, 2, 5
  EXPECT_EQ(dict.rows_begin(0)[0], 0u);
  EXPECT_EQ(dict.rows_begin(0)[1], 2u);
  EXPECT_EQ(dict.rows_begin(0)[2], 5u);
  ASSERT_EQ(dict.rows_count(1), 2u);  // key 3 at rows 1, 4
  EXPECT_EQ(dict.rows_begin(1)[0], 1u);
  EXPECT_EQ(dict.rows_begin(1)[1], 4u);
  ASSERT_EQ(dict.rows_count(2), 1u);  // key 9 at row 3
  EXPECT_EQ(dict.rows_begin(2)[0], 3u);
}

TEST(KeyDictionaryTest, NullRowsAreNotInterned) {
  Column keys = Column::Int64s({1, 2, 3}, {1, 0, 1});
  KeyDictionary dict = KeyDictionary::Build(keys);
  EXPECT_EQ(dict.num_keys(), 2u);
  EXPECT_EQ(dict.row_ids()[0], 0u);
  EXPECT_EQ(dict.row_ids()[1], KeyDictionary::kNoKey);
  EXPECT_EQ(dict.row_ids()[2], 1u);
  // A null probe row misses too.
  EXPECT_EQ(dict.Lookup(keys, 1), KeyDictionary::kNoKey);
}

TEST(KeyDictionaryTest, CrossTypeLookupMatchesKeyAtSemantics) {
  Column keys = Column::Int64s({7, 8});
  KeyDictionary dict = KeyDictionary::Build(keys);

  Column doubles = Column::Doubles({7.0, 8.5});
  EXPECT_EQ(dict.Lookup(doubles, 0), 0u);  // double 7.0 == int64 7
  EXPECT_EQ(dict.Lookup(doubles, 1), KeyDictionary::kNoKey);

  Column strings = Column::Strings({"7", "07", "8"});
  EXPECT_EQ(dict.Lookup(strings, 0), 0u);  // "7" is canonical
  EXPECT_EQ(dict.Lookup(strings, 1), KeyDictionary::kNoKey);  // "07" is not
  EXPECT_EQ(dict.Lookup(strings, 2), 1u);
}

TEST(KeyDictionaryTest, StringDictionaryProbedByNumbers) {
  Column keys = Column::Strings({"7", "x", "2.5"});
  KeyDictionary dict = KeyDictionary::Build(keys);
  EXPECT_EQ(dict.num_keys(), 3u);

  Column ints = Column::Int64s({7});
  EXPECT_EQ(dict.Lookup(ints, 0), 0u);

  // Non-integral doubles format with %.17g; "2.5" is exactly that form.
  Column doubles = Column::Doubles({2.5, 7.0});
  EXPECT_EQ(dict.Lookup(doubles, 0), 2u);
  EXPECT_EQ(dict.Lookup(doubles, 1), 0u);
}

TEST(KeyDictionaryTest, LookupOfUnseenKeyMisses) {
  Column keys = Column::Int64s({1, 2});
  KeyDictionary dict = KeyDictionary::Build(keys);
  Column probe = Column::Int64s({3});
  EXPECT_EQ(dict.Lookup(probe, 0), KeyDictionary::kNoKey);
}

}  // namespace
}  // namespace autofeat
