#include "stats/relief.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace autofeat {

namespace {

// Per-feature min/max used to normalise value differences into [0, 1].
struct FeatureRange {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double Span() const { return hi > lo ? hi - lo : 1.0; }
};

double NormalizedDiff(double a, double b, const FeatureRange& range) {
  // NaN = unknown: neutral difference of 0.5 (standard Relief convention).
  if (std::isnan(a) || std::isnan(b)) return 0.5;
  return std::abs(a - b) / range.Span();
}

}  // namespace

std::vector<double> ReliefScores(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels, size_t num_samples, Rng* rng) {
  size_t nf = features.size();
  std::vector<double> weights(nf, 0.0);
  if (nf == 0) return weights;
  size_t n = labels.size();
  if (n < 2) return weights;

  std::vector<FeatureRange> ranges(nf);
  for (size_t f = 0; f < nf; ++f) {
    assert(features[f].size() == n);
    for (double v : features[f]) {
      if (std::isnan(v)) continue;
      ranges[f].lo = std::min(ranges[f].lo, v);
      ranges[f].hi = std::max(ranges[f].hi, v);
    }
  }

  auto distance = [&](size_t a, size_t b) {
    double d = 0.0;
    for (size_t f = 0; f < nf; ++f) {
      d += NormalizedDiff(features[f][a], features[f][b], ranges[f]);
    }
    return d;
  };

  std::vector<size_t> samples;
  if (num_samples >= n) {
    samples.resize(n);
    for (size_t i = 0; i < n; ++i) samples[i] = i;
  } else {
    samples = rng->Permutation(n);
    samples.resize(num_samples);
  }

  size_t used = 0;
  for (size_t s : samples) {
    // Nearest hit (same class) and nearest miss (different class).
    double best_hit = std::numeric_limits<double>::infinity();
    double best_miss = std::numeric_limits<double>::infinity();
    size_t hit = n, miss = n;
    for (size_t j = 0; j < n; ++j) {
      if (j == s) continue;
      double d = distance(s, j);
      if (labels[j] == labels[s]) {
        if (d < best_hit) {
          best_hit = d;
          hit = j;
        }
      } else if (d < best_miss) {
        best_miss = d;
        miss = j;
      }
    }
    if (hit == n || miss == n) continue;  // Single-class neighbourhood.
    ++used;
    for (size_t f = 0; f < nf; ++f) {
      weights[f] += NormalizedDiff(features[f][s], features[f][miss], ranges[f]) -
                    NormalizedDiff(features[f][s], features[f][hit], ranges[f]);
    }
  }
  if (used > 0) {
    for (double& w : weights) w /= static_cast<double>(used);
  }
  return weights;
}

}  // namespace autofeat
