// Correlation coefficients used as relevance heuristics (paper §V-C).
//
// Pearson measures linear association; Spearman (rank correlation with
// average ranks for ties) measures monotonic association and is AutoFeat's
// recommended relevance metric. Rows where either value is NaN are skipped
// pairwise.

#ifndef AUTOFEAT_STATS_CORRELATION_H_
#define AUTOFEAT_STATS_CORRELATION_H_

#include <vector>

namespace autofeat {

/// Pearson correlation coefficient in [-1, 1]; 0 if either side is constant
/// or fewer than 2 complete pairs exist.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Fractional (average) ranks in [1, n] of the non-NaN entries of `values`;
/// NaN entries keep NaN ranks. Ties receive the mean of their rank range.
std::vector<double> FractionalRanks(const std::vector<double>& values);

/// Spearman rank correlation: Pearson over fractional ranks.
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace autofeat

#endif  // AUTOFEAT_STATS_CORRELATION_H_
