#include "ml/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

namespace autofeat::ml {
namespace {

Table MakeTable() {
  Table t("t");
  t.AddColumn("num", Column::Doubles({1.0, 2.0, 3.0, 4.0}, {1, 0, 1, 1}))
      .Abort();
  t.AddColumn("cat", Column::Strings({"a", "b", "a", "b"})).Abort();
  t.AddColumn("label", Column::Strings({"no", "yes", "no", "yes"})).Abort();
  return t;
}

TEST(DatasetTest, FromTableShapes) {
  auto ds = Dataset::FromTable(MakeTable(), "label");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_rows(), 4u);
  EXPECT_EQ(ds->num_features(), 2u);
  EXPECT_EQ(ds->feature_names(), (std::vector<std::string>{"num", "cat"}));
}

TEST(DatasetTest, LabelsMappedDeterministically) {
  auto ds = Dataset::FromTable(MakeTable(), "label");
  ASSERT_TRUE(ds.ok());
  // "no" < "yes" lexicographically -> no = 0, yes = 1.
  EXPECT_EQ(ds->labels(), (std::vector<int>{0, 1, 0, 1}));
}

TEST(DatasetTest, NullsImputedWithMode) {
  auto ds = Dataset::FromTable(MakeTable(), "label");
  ASSERT_TRUE(ds.ok());
  // num has nulls -> imputed (mode = first occurrence among 1,3,4), no NaN.
  for (double v : ds->column(0)) EXPECT_FALSE(std::isnan(v));
}

TEST(DatasetTest, StringsOrdinallyEncoded) {
  auto ds = Dataset::FromTable(MakeTable(), "label");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->column(1), (std::vector<double>{0, 1, 0, 1}));
}

TEST(DatasetTest, NonBinaryLabelRejected) {
  Table t("t");
  t.AddColumn("x", Column::Doubles({1, 2, 3})).Abort();
  t.AddColumn("label", Column::Int64s({0, 1, 2})).Abort();
  EXPECT_FALSE(Dataset::FromTable(t, "label").ok());
}

TEST(DatasetTest, NullLabelRejected) {
  Table t("t");
  t.AddColumn("x", Column::Doubles({1, 2})).Abort();
  t.AddColumn("label", Column::Int64s({0, 1}, {1, 0})).Abort();
  EXPECT_FALSE(Dataset::FromTable(t, "label").ok());
}

TEST(DatasetTest, MissingLabelColumnRejected) {
  EXPECT_FALSE(Dataset::FromTable(MakeTable(), "nope").ok());
}

TEST(DatasetTest, TakeRows) {
  auto ds = Dataset::FromTable(MakeTable(), "label");
  Dataset sub = ds->TakeRows({3, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.label(0), 1);
  EXPECT_EQ(sub.label(1), 0);
  EXPECT_DOUBLE_EQ(sub.at(1, 1), 0.0);
}

TEST(DatasetTest, SelectFeatures) {
  auto ds = Dataset::FromTable(MakeTable(), "label");
  Dataset sub = ds->SelectFeatures({1});
  EXPECT_EQ(sub.num_features(), 1u);
  EXPECT_EQ(sub.feature_names()[0], "cat");
  EXPECT_EQ(sub.num_rows(), 4u);
}

TEST(DatasetTest, AddFeature) {
  auto ds = Dataset::FromTable(MakeTable(), "label");
  ds->AddFeature("injected", {9, 9, 9, 9});
  EXPECT_EQ(ds->num_features(), 3u);
  EXPECT_DOUBLE_EQ(ds->at(2, 2), 9.0);
}

}  // namespace
}  // namespace autofeat::ml
