// Tree ensembles: RandomForest (bootstrap + sqrt features) and
// ExtraTrees (no bootstrap, random thresholds).

#ifndef AUTOFEAT_ML_FOREST_H_
#define AUTOFEAT_ML_FOREST_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/decision_tree.h"

namespace autofeat::ml {

struct ForestOptions {
  size_t num_trees = 50;
  int max_depth = 10;
  size_t min_samples_leaf = 1;
  /// Bootstrap-sample rows per tree (RandomForest) or use all rows
  /// (ExtraTrees convention).
  bool bootstrap = true;
  /// ExtraTrees mode.
  bool random_thresholds = false;
  uint64_t seed = 42;
};

/// \brief Averaged ensemble of decision trees.
class Forest final : public Classifier {
 public:
  /// Standard RandomForest configuration.
  static Forest RandomForest(size_t num_trees = 50, uint64_t seed = 42) {
    ForestOptions options;
    options.num_trees = num_trees;
    options.bootstrap = true;
    options.random_thresholds = false;
    options.seed = seed;
    return Forest(options, "RandomForest");
  }

  /// Extremely-randomised trees configuration.
  static Forest ExtraTrees(size_t num_trees = 50, uint64_t seed = 42) {
    ForestOptions options;
    options.num_trees = num_trees;
    options.bootstrap = false;
    options.random_thresholds = true;
    options.seed = seed;
    return Forest(options, "ExtraTrees");
  }

  Forest(ForestOptions options, std::string name)
      : options_(options), name_(std::move(name)) {}

  Status Fit(const Dataset& train) override;
  double PredictProba(const Dataset& data, size_t row) const override;
  std::string name() const override { return name_; }
  std::vector<double> FeatureImportances() const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  ForestOptions options_;
  std::string name_;
  std::vector<DecisionTree> trees_;
};

}  // namespace autofeat::ml

#endif  // AUTOFEAT_ML_FOREST_H_
