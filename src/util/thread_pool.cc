#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace autofeat {

size_t ResolveNumThreads(size_t num_threads) {
  if (num_threads != 0) return num_threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = ResolveNumThreads(num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  obs::Counter* submitted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    submitted = tasks_submitted_;
  }
  obs::Increment(submitted);
  wake_.notify_one();
}

void ThreadPool::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = metrics;
  tasks_submitted_ = obs::GetCounter(metrics, "thread_pool.tasks_submitted",
                                     /*deterministic=*/false);
  tasks_executed_ = obs::GetCounter(metrics, "thread_pool.tasks_executed",
                                    /*deterministic=*/false);
}

obs::MetricsRegistry* ThreadPool::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_;
}

void ThreadPool::set_tracer(obs::Tracer* tracer) {
  std::lock_guard<std::mutex> lock(mutex_);
  tracer_ = tracer;
}

obs::Tracer* ThreadPool::tracer() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tracer_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    obs::Counter* executed;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining tasks even when stopping: ParallelFor may still be
      // waiting on their completion latch.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      executed = tasks_executed_;
    }
    task();
    obs::Increment(executed);
  }
}

namespace {

// Shared state of one ParallelFor invocation: chunks are claimed by an
// atomic cursor (workers and the caller all pull from it) and completion is
// tracked with a latch-style counter.
struct ForState {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  const std::function<void(size_t)>* fn = nullptr;

  std::atomic<size_t> next_chunk{0};
  size_t num_chunks = 0;

  std::mutex mutex;
  std::condition_variable done_cv;
  size_t chunks_finished = 0;

  // First exception by chunk index, so the propagated error does not depend
  // on scheduling.
  std::exception_ptr error;
  size_t error_chunk = 0;

  // Claims and runs chunks until the cursor runs dry; returns how many this
  // lane executed (feeds the caller-vs-helper work-split stats).
  size_t RunChunks() {
    size_t ran = 0;
    for (;;) {
      size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return ran;
      ++ran;
      size_t lo = begin + chunk * grain;
      size_t hi = std::min(end, lo + grain);
      std::exception_ptr caught;
      try {
        for (size_t i = lo; i < hi; ++i) (*fn)(i);
      } catch (...) {
        caught = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (caught && (!error || chunk < error_chunk)) {
        error = caught;
        error_chunk = chunk;
      }
      if (++chunks_finished == num_chunks) done_cv.notify_all();
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  size_t range = end - begin;
  if (grain == 0) grain = 1;
  if (pool == nullptr || pool->num_threads() <= 1 || range <= grain) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  ForState state;
  state.begin = begin;
  state.end = end;
  state.grain = grain;
  state.fn = &fn;
  state.num_chunks = (range + grain - 1) / grain;

  obs::MetricsRegistry* metrics = pool->metrics();
  obs::Counter* pf_calls = obs::GetCounter(
      metrics, "thread_pool.parallel_for.calls", /*deterministic=*/false);
  obs::Counter* chunks_caller = obs::GetCounter(
      metrics, "thread_pool.parallel_for.chunks_caller",
      /*deterministic=*/false);
  obs::Counter* chunks_helper = obs::GetCounter(
      metrics, "thread_pool.parallel_for.chunks_helper",
      /*deterministic=*/false);
  obs::Increment(pf_calls);

  // One helper task per worker is enough: each claims chunks until the
  // cursor runs dry. The caller participates too, so the pool being busy
  // with other work never deadlocks this loop.
  size_t helpers = std::min(pool->num_threads(), state.num_chunks - 1);
  std::atomic<size_t> helpers_live{helpers};
  std::mutex helper_mutex;
  std::condition_variable helper_cv;
  obs::Tracer* tracer = pool->tracer();
  for (size_t t = 0; t < helpers; ++t) {
    // Captured on the caller thread: the enqueuing span becomes the
    // helper span's parent and the flow id draws the Submit -> execute
    // arrow in the Chrome trace.
    obs::TaskContext ctx = obs::CaptureTaskContext(tracer);
    pool->Submit([&, ctx] {
      obs::ScopedWorkerSpan span(ctx, "thread_pool.worker");
      obs::Increment(chunks_helper, state.RunChunks());
      if (helpers_live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(helper_mutex);
        helper_cv.notify_all();
      }
    });
  }
  obs::Increment(chunks_caller, state.RunChunks());
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock,
                       [&] { return state.chunks_finished == state.num_chunks; });
  }
  // All chunks are done, but helper lambdas may still be on their final
  // instructions; don't let `state` leave scope under them.
  {
    std::unique_lock<std::mutex> lock(helper_mutex);
    helper_cv.wait(lock, [&] {
      return helpers_live.load(std::memory_order_acquire) == 0;
    });
  }
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace autofeat
