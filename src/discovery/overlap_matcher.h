// Alternative dataset-discovery matcher: instance-only Jaccard similarity
// (in the spirit of JOSIE/Lazo joinable-table search).
//
// The paper stresses that "DRG construction is independent of the dataset
// discovery algorithm; any algorithm which outputs a similarity score can
// be used". This second matcher demonstrates that property: it ignores
// column names entirely and scores join candidates purely by the Jaccard
// similarity (or containment) of their value sets. Plug it into
// BuildDrgWithMatcher to build a DRG with different discovery behaviour.

#ifndef AUTOFEAT_DISCOVERY_OVERLAP_MATCHER_H_
#define AUTOFEAT_DISCOVERY_OVERLAP_MATCHER_H_

#include <functional>
#include <vector>

#include "discovery/schema_matcher.h"
#include "graph/drg.h"
#include "table/table.h"

namespace autofeat {

struct OverlapMatchOptions {
  /// Score = jaccard_weight * Jaccard + (1 - jaccard_weight) * containment.
  /// Jaccard punishes size mismatch; containment finds FK-into-PK joins.
  double jaccard_weight = 0.3;
  /// Minimum score to report a match.
  double threshold = 0.55;
  /// Bottom-k-by-hash sketch size per column.
  size_t max_sample_values = 4096;
  /// Columns below this distinct count carry no overlap evidence.
  size_t min_distinct = 16;
};

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two columns' distinct values
/// (bottom-k sketched like ValueOverlap).
double ValueJaccard(const Column& a, const Column& b, size_t max_sample);

/// Instance-only matching of two tables: key-like columns (int64/string)
/// are compared by value sets; names are ignored. Sorted by score.
std::vector<ColumnMatch> MatchByValueOverlap(
    const Table& left, const Table& right,
    const OverlapMatchOptions& options = {});

/// MatchByValueOverlap over precomputed column sketches (aligned with the
/// tables' column order, built with options.max_sample_values). Pure
/// function of its arguments — safe to call concurrently for different
/// pairs.
std::vector<ColumnMatch> MatchByValueOverlap(
    const Table& left, const std::vector<ColumnSketch>& left_sketches,
    const Table& right, const std::vector<ColumnSketch>& right_sketches,
    const OverlapMatchOptions& options = {});

/// A pluggable matcher: anything that maps two tables to scored column
/// pairs can drive DRG construction.
using Matcher =
    std::function<std::vector<ColumnMatch>(const Table&, const Table&)>;

}  // namespace autofeat

#endif  // AUTOFEAT_DISCOVERY_OVERLAP_MATCHER_H_
