// Lake builder: splits a synthetic classification problem into a multi-table
// data lake with known KFK constraints and ground-truth feature placement.
//
// This reproduces the paper's benchmark construction (§VII-A): a dataset is
// divided into many small tables. Feature predictive power is placed by
// depth — weak signal in the base table, moderate in direct (hub) tables,
// and the strongest signal in *transitive* tables two or more hops away —
// so that methods limited to star schemata (ARDA) or shallow exploration
// (MAB) demonstrably miss it. Noise tables and partial key coverage model
// uncurated open data.

#ifndef AUTOFEAT_DATAGEN_LAKE_BUILDER_H_
#define AUTOFEAT_DATAGEN_LAKE_BUILDER_H_

#include <string>
#include <vector>

#include "discovery/data_lake.h"

namespace autofeat::datagen {

struct LakeSpec {
  std::string name = "synthetic";
  size_t rows = 1000;
  /// Number of joinable tables around the base table.
  size_t joinable_tables = 6;
  /// Total feature count across all tables (Table II "# features").
  size_t total_features = 24;
  /// Star schema (all tables direct neighbours, like the paper's `school`)
  /// vs snowflake (transitive chains).
  bool star_schema = false;
  /// Fraction of base rows covered by each satellite table (drives nulls
  /// after a left join; exercises the tau pruning).
  double key_coverage = 0.9;
  /// Fraction of satellite feature cells nulled out.
  double missing_rate = 0.03;
  /// Probability of flipping a label.
  double label_noise = 0.05;
  /// Fraction of deep KFK links whose two sides get *different* column
  /// names (breaks same-name joining, the MAB limitation from the paper).
  double mismatched_name_rate = 0.7;
  uint64_t seed = 42;
};

/// Ground truth about one built satellite table (for tests/benches).
struct TableTruth {
  std::string name;
  size_t depth = 1;       // hops from the base table
  double effect = 0.0;    // class separation of its features (0 = noise)
  size_t num_features = 0;
};

struct BuiltLake {
  DataLake lake;
  std::string base_table;
  std::string label_column = "label";
  std::vector<TableTruth> truth;

  /// Names of tables whose features carry signal (effect > 0).
  std::vector<std::string> RelevantTables() const {
    std::vector<std::string> out;
    for (const auto& t : truth) {
      if (t.effect > 0) out.push_back(t.name);
    }
    return out;
  }
  /// The largest depth at which signal was planted.
  size_t DeepestRelevantDepth() const {
    size_t d = 0;
    for (const auto& t : truth) {
      if (t.effect > 0) d = std::max(d, t.depth);
    }
    return d;
  }
};

/// Builds the lake. The base table is named "<spec.name>_base"; satellites
/// "<spec.name>_t<i>". KFK constraints are registered on the lake.
BuiltLake BuildLake(const LakeSpec& spec);

}  // namespace autofeat::datagen

#endif  // AUTOFEAT_DATAGEN_LAKE_BUILDER_H_
