#include "graph/path_format.h"

namespace autofeat {

std::string FormatJoinStep(const DatasetRelationGraph& drg,
                           const JoinStep& step) {
  return drg.NodeName(step.from_node) + "." + step.from_column + " -> " +
         drg.NodeName(step.to_node) + "." + step.to_column;
}

std::string FormatJoinPath(const DatasetRelationGraph& drg,
                           const JoinPath& path) {
  if (path.empty()) return "<base>";
  std::string out;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const JoinStep& step = path.steps[i];
    if (i == 0) {
      out += drg.NodeName(step.from_node) + "." + step.from_column;
    } else {
      out += "." + step.from_column;
    }
    out += " -> " + drg.NodeName(step.to_node);
    if (i + 1 == path.steps.size()) {
      out += "." + step.to_column;
    }
  }
  return out;
}

}  // namespace autofeat
