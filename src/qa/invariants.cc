#include "qa/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "discovery/data_lake.h"
#include "fs/feature_view.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "relational/join.h"
#include "relational/join_index.h"
#include "serve/lake_service.h"
#include "stats/discretize.h"
#include "stats/information.h"
#include "table/columnar.h"
#include "table/csv.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace autofeat::qa {
namespace {

constexpr double kEps = 1e-9;

Status Violated(const std::string& message) {
  return Status::InvalidArgument(message);
}

// ---- Discovery helpers ------------------------------------------------------

struct DiscoveryRun {
  DiscoveryResult result;
  std::string fingerprint;
  std::string digest;  // obs deterministic digest; empty unless requested
};

Result<DiscoveryRun> RunDiscovery(const DataLake& lake, const FuzzedLake& fz,
                                  size_t num_threads, bool want_digest,
                                  EvictionStress stress = EvictionStress::kNone,
                                  size_t budget_bytes = 0) {
  AF_ASSIGN_OR_RETURN(DatasetRelationGraph drg, BuildDrgFromKfk(lake));
  AutoFeatConfig config = FuzzDiscoveryConfig(fz, num_threads);
  config.metrics_enabled = want_digest;
  config.eviction_stress = stress;
  config.memory_budget_bytes = budget_bytes;
  AutoFeat engine(&lake, &drg, config);
  DiscoveryRun run;
  AF_ASSIGN_OR_RETURN(run.result,
                      engine.DiscoverFeatures(fz.base_table, fz.label_column));
  run.fingerprint = DiscoveryFingerprint(run.result);
  if (want_digest) {
    run.digest = obs::DeterministicDigest(*engine.metrics(), engine.tracer());
  }
  return run;
}

std::string PathSignature(const RankedPath& rp) {
  std::ostringstream out;
  for (const JoinStep& s : rp.path.steps) {
    out << s.from_node << "." << s.from_column << ">" << s.to_node << "."
        << s.to_column << ";";
  }
  return out.str();
}

// ---- Join algebra -----------------------------------------------------------

Status CheckLeftJoinPreservesRows(const FuzzedLake& fz) {
  size_t ci = 0;
  for (const KfkConstraint& kfk : fz.lake.kfk_constraints()) {
    AF_ASSIGN_OR_RETURN(const Table* left, fz.lake.GetTable(kfk.from_table));
    AF_ASSIGN_OR_RETURN(const Table* right, fz.lake.GetTable(kfk.to_table));
    Rng rng(DeriveSeed(fz.seed, 5000 + ci));
    AF_ASSIGN_OR_RETURN(
        JoinResult join,
        LeftJoin(*left, kfk.from_column, *right, kfk.to_column, &rng));
    if (join.table.num_rows() != left->num_rows()) {
      return Violated("left join " + kfk.from_table + ">" + kfk.to_table +
                      " changed the row count: " +
                      std::to_string(left->num_rows()) + " left rows, " +
                      std::to_string(join.table.num_rows()) + " joined rows");
    }
    if (join.stats.total_rows != left->num_rows() ||
        join.stats.matched_rows > join.stats.total_rows) {
      return Violated("left join " + kfk.from_table + ">" + kfk.to_table +
                      " reported inconsistent stats (" +
                      std::to_string(join.stats.matched_rows) + "/" +
                      std::to_string(join.stats.total_rows) + ")");
    }
    if (join.table.num_columns() !=
        left->num_columns() + right->num_columns()) {
      return Violated("left join " + kfk.from_table + ">" + kfk.to_table +
                      " lost or invented columns");
    }
    ++ci;
  }
  return Status::OK();
}

Status CheckInternedJoinMatchesReference(const FuzzedLake& fz) {
  size_t ci = 0;
  for (const KfkConstraint& kfk : fz.lake.kfk_constraints()) {
    AF_ASSIGN_OR_RETURN(const Table* left, fz.lake.GetTable(kfk.from_table));
    AF_ASSIGN_OR_RETURN(const Table* right, fz.lake.GetTable(kfk.to_table));
    for (bool normalize : {true, false}) {
      for (JoinType type : {JoinType::kLeft, JoinType::kInner}) {
        JoinOptions options;
        options.type = type;
        options.normalize_cardinality = normalize;
        uint64_t join_seed = DeriveSeed(fz.seed, 5100 + ci);
        Rng rng_fast(join_seed);
        Rng rng_ref(join_seed);
        AF_ASSIGN_OR_RETURN(JoinResult fast,
                            Join(*left, kfk.from_column, *right,
                                 kfk.to_column, &rng_fast, options));
        AF_ASSIGN_OR_RETURN(JoinResult ref,
                            JoinStringKeyed(*left, kfk.from_column, *right,
                                            kfk.to_column, &rng_ref, options));
        if (!fast.table.Equals(ref.table) ||
            fast.stats.matched_rows != ref.stats.matched_rows ||
            fast.stats.total_rows != ref.stats.total_rows ||
            fast.stats.right_distinct_keys != ref.stats.right_distinct_keys) {
          return Violated(
              "interned Join diverged from JoinStringKeyed on " +
              kfk.from_table + "." + kfk.from_column + ">" + kfk.to_table +
              "." + kfk.to_column + " (normalize=" +
              (normalize ? "yes" : "no") + ", type=" +
              (type == JoinType::kLeft ? "left" : "inner") + ")");
        }
      }
    }
    ++ci;
  }
  return Status::OK();
}

Status CheckGatherViewsMatchMaterialisation(const FuzzedLake& fz) {
  size_t ci = 0;
  for (const KfkConstraint& kfk : fz.lake.kfk_constraints()) {
    AF_ASSIGN_OR_RETURN(const Table* left, fz.lake.GetTable(kfk.from_table));
    AF_ASSIGN_OR_RETURN(const Table* right, fz.lake.GetTable(kfk.to_table));
    AF_ASSIGN_OR_RETURN(const Column* left_key,
                        left->GetColumn(kfk.from_column));
    AF_ASSIGN_OR_RETURN(const Column* right_key,
                        right->GetColumn(kfk.to_column));
    JoinKeyIndex index =
        BuildJoinKeyIndex(*right_key, DeriveSeed(fz.seed, 5200 + ci));
    JoinRowMap map = MapLeftJoin(*left_key, index);
    AF_ASSIGN_OR_RETURN(
        JoinResult joined,
        LeftJoinWithIndex(*left, kfk.from_column, *right, index));
    std::vector<std::string> appended = ResolveAppendedNames(*left, *right);
    if (appended.size() != right->num_columns() ||
        joined.table.num_columns() != left->num_columns() + appended.size()) {
      return Violated("ResolveAppendedNames disagrees with LeftJoinWithIndex "
                      "on " + kfk.from_table + ">" + kfk.to_table);
    }
    for (size_t c = 0; c < right->num_columns(); ++c) {
      const Column& src = right->column(c);
      const Column& materialised =
          joined.table.column(left->num_columns() + c);
      Column gathered = GatherColumn(src, map.right_rows);
      if (!gathered.Equals(materialised)) {
        return Violated("GatherColumn view of " + kfk.to_table + "." +
                        right->schema().field(c).name +
                        " differs from the materialised join column");
      }
      if (GatherNullCount(src, map.right_rows) != materialised.null_count()) {
        return Violated("GatherNullCount of " + kfk.to_table + "." +
                        right->schema().field(c).name +
                        " differs from the materialised null count");
      }
      std::vector<double> view = GatherNumeric(src, map.right_rows);
      std::vector<double> reference = materialised.ToNumeric();
      if (view.size() != reference.size()) {
        return Violated("GatherNumeric length mismatch on " + kfk.to_table);
      }
      for (size_t i = 0; i < view.size(); ++i) {
        bool both_nan = std::isnan(view[i]) && std::isnan(reference[i]);
        if (!both_nan && view[i] != reference[i]) {
          return Violated("GatherNumeric of " + kfk.to_table + "." +
                          right->schema().field(c).name + " row " +
                          std::to_string(i) + " differs from ToNumeric of "
                          "the materialised column");
        }
      }
    }
    ++ci;
  }
  return Status::OK();
}

Status CheckJoinCompletenessBounds(const FuzzedLake& fz) {
  size_t ci = 0;
  for (const KfkConstraint& kfk : fz.lake.kfk_constraints()) {
    AF_ASSIGN_OR_RETURN(const Table* left, fz.lake.GetTable(kfk.from_table));
    AF_ASSIGN_OR_RETURN(const Table* right, fz.lake.GetTable(kfk.to_table));
    Rng rng(DeriveSeed(fz.seed, 5300 + ci));
    AF_ASSIGN_OR_RETURN(
        JoinResult join,
        LeftJoin(*left, kfk.from_column, *right, kfk.to_column, &rng));
    std::vector<std::string> appended = ResolveAppendedNames(*left, *right);
    AF_ASSIGN_OR_RETURN(double completeness,
                        JoinCompleteness(join.table, appended));
    if (!(completeness >= 0.0 && completeness <= 1.0)) {
      return Violated("completeness of " + kfk.from_table + ">" +
                      kfk.to_table + " out of [0,1]: " +
                      std::to_string(completeness));
    }
    if (JoinCompleteness(join.table, {"qa_no_such_column"}).ok()) {
      return Violated("JoinCompleteness silently accepted a column that "
                      "does not exist in the joined table");
    }
    ++ci;
  }
  return Status::OK();
}

// ---- Information-theory bounds ----------------------------------------------

// Runs `fn(view)` over a FeatureView of the base table joined with each of
// its direct satellites (exposing every adversarial satellite column to the
// stats layer), plus the base table alone.
Status ForEachJoinedView(
    const FuzzedLake& fz,
    const std::function<Status(const FeatureView&)>& fn) {
  AF_ASSIGN_OR_RETURN(const Table* base, fz.lake.GetTable(fz.base_table));
  if (!base->HasColumn(fz.label_column)) return Status::OK();  // vacuous
  {
    AF_ASSIGN_OR_RETURN(FeatureView view,
                        FeatureView::FromTable(*base, fz.label_column));
    AF_RETURN_NOT_OK(fn(view));
  }
  size_t ci = 0;
  for (const KfkConstraint& kfk : fz.lake.kfk_constraints()) {
    if (kfk.from_table != fz.base_table) continue;
    AF_ASSIGN_OR_RETURN(const Table* right, fz.lake.GetTable(kfk.to_table));
    Rng rng(DeriveSeed(fz.seed, 5400 + ci));
    AF_ASSIGN_OR_RETURN(
        JoinResult join,
        LeftJoin(*base, kfk.from_column, *right, kfk.to_column, &rng));
    AF_ASSIGN_OR_RETURN(FeatureView view,
                        FeatureView::FromTable(join.table, fz.label_column));
    AF_RETURN_NOT_OK(fn(view));
    ++ci;
  }
  return Status::OK();
}

Status CheckEntropyNonNegative(const FuzzedLake& fz) {
  return ForEachJoinedView(fz, [](const FeatureView& view) -> Status {
    double hy = Entropy(view.label_codes());
    if (!(hy >= 0.0) || !std::isfinite(hy)) {
      return Violated("label entropy is not a finite non-negative value: " +
                      std::to_string(hy));
    }
    for (size_t f = 0; f < view.num_features(); ++f) {
      double h = Entropy(view.codes(f));
      if (!(h >= 0.0) || !std::isfinite(h)) {
        return Violated("entropy of feature '" + view.name(f) +
                        "' is not a finite non-negative value: " +
                        std::to_string(h));
      }
    }
    return Status::OK();
  });
}

// Re-codes `x` so that rows missing in either input are missing in the
// output. Entropy() then measures H on exactly the pairwise-complete
// support that MutualInformation(x, y) is estimated on — the bound
// I <= min(H(X), H(Y)) only holds when all three use the same rows.
std::vector<int> MaskToPairwiseSupport(const std::vector<int>& x,
                                       const std::vector<int>& y) {
  std::vector<int> masked(x.size(), kMissingBin);
  for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (x[i] != kMissingBin && y[i] != kMissingBin) masked[i] = x[i];
  }
  return masked;
}

Status CheckMutualInformationBounds(const FuzzedLake& fz) {
  return ForEachJoinedView(fz, [](const FeatureView& view) -> Status {
    for (size_t f = 0; f < view.num_features(); ++f) {
      double mi = MutualInformation(view.codes(f), view.label_codes());
      if (!(mi >= 0.0) || !std::isfinite(mi)) {
        return Violated("I(" + view.name(f) + "; label) is negative or "
                        "non-finite: " + std::to_string(mi));
      }
      double hx = Entropy(MaskToPairwiseSupport(view.codes(f),
                                                view.label_codes()));
      double hy = Entropy(MaskToPairwiseSupport(view.label_codes(),
                                                view.codes(f)));
      if (mi > std::min(hx, hy) + kEps) {
        return Violated("I(" + view.name(f) + "; label) = " +
                        std::to_string(mi) + " exceeds min(H(X), H(Y)) = " +
                        std::to_string(std::min(hx, hy)) +
                        " on the shared pairwise-complete support");
      }
      double hxy = JointEntropy(view.codes(f), view.label_codes());
      if (mi > hxy + kEps) {
        return Violated("I(" + view.name(f) + "; label) = " +
                        std::to_string(mi) + " exceeds H(X, Y) = " +
                        std::to_string(hxy));
      }
    }
    return Status::OK();
  });
}

Status CheckMutualInformationSymmetry(const FuzzedLake& fz) {
  return ForEachJoinedView(fz, [](const FeatureView& view) -> Status {
    size_t n = std::min<size_t>(view.num_features(), 6);
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        double ab = MutualInformation(view.codes(a), view.codes(b));
        double ba = MutualInformation(view.codes(b), view.codes(a));
        if (std::abs(ab - ba) > kEps) {
          return Violated("I(X;Y) asymmetric for '" + view.name(a) +
                          "'/'" + view.name(b) + "': " + std::to_string(ab) +
                          " vs " + std::to_string(ba));
        }
        double su_ab = SymmetricalUncertainty(view.codes(a), view.codes(b));
        double su_ba = SymmetricalUncertainty(view.codes(b), view.codes(a));
        if (std::abs(su_ab - su_ba) > kEps || su_ab < 0.0 ||
            su_ab > 1.0 + kEps) {
          return Violated("SU out of [0,1] or asymmetric for '" +
                          view.name(a) + "'/'" + view.name(b) + "': " +
                          std::to_string(su_ab) + " vs " +
                          std::to_string(su_ba));
        }
      }
    }
    return Status::OK();
  });
}

// ---- Ranking sanity ---------------------------------------------------------

Status CheckZeroMiFeatureNeverRaisesScores(const FuzzedLake& fz) {
  // Metamorphic transform: append a constant (zero-relevance) column to
  // every satellite. Completeness can only improve, so every path ranked in
  // the original run is ranked in the transformed run — with a score no
  // higher than before (the constant must be screened out, not credited).
  DataLake augmented;
  for (const Table& table : fz.lake.tables()) {
    Table copy = table;
    if (table.name() != fz.base_table) {
      Column constant(DataType::kDouble);
      for (size_t i = 0; i < table.num_rows(); ++i) {
        constant.AppendDouble(1.0);
      }
      AF_RETURN_NOT_OK(copy.AddColumn("qa_zmi", std::move(constant)));
    }
    AF_RETURN_NOT_OK(augmented.AddTable(std::move(copy)));
  }
  for (const KfkConstraint& kfk : fz.lake.kfk_constraints()) {
    augmented.AddKfk(kfk);
  }

  AF_ASSIGN_OR_RETURN(DiscoveryRun plain,
                      RunDiscovery(fz.lake, fz, 1, /*want_digest=*/false));
  AF_ASSIGN_OR_RETURN(DiscoveryRun with_const,
                      RunDiscovery(augmented, fz, 1, /*want_digest=*/false));

  std::map<std::string, double> augmented_scores;
  for (const RankedPath& rp : with_const.result.ranked) {
    augmented_scores.emplace(PathSignature(rp), rp.score);
  }
  for (const RankedPath& rp : plain.result.ranked) {
    auto it = augmented_scores.find(PathSignature(rp));
    if (it == augmented_scores.end()) {
      return Violated("path " + PathSignature(rp) +
                      " disappeared after adding a zero-MI column (its "
                      "completeness can only have improved)");
    }
    if (it->second > rp.score + kEps) {
      return Violated("zero-MI column raised the score of path " +
                      PathSignature(rp) + " from " +
                      std::to_string(rp.score) + " to " +
                      std::to_string(it->second));
    }
  }
  return Status::OK();
}

// ---- Determinism ------------------------------------------------------------

Status CheckRerunDeterminism(const FuzzedLake& fz) {
  AF_ASSIGN_OR_RETURN(DiscoveryRun first,
                      RunDiscovery(fz.lake, fz, 1, /*want_digest=*/true));
  AF_ASSIGN_OR_RETURN(DiscoveryRun second,
                      RunDiscovery(fz.lake, fz, 1, /*want_digest=*/true));
  if (first.fingerprint != second.fingerprint) {
    return Violated("two identical discovery runs produced different "
                    "ranked output");
  }
  if (first.digest != second.digest) {
    return Violated("two identical discovery runs produced different obs "
                    "digests: " + first.digest + " vs " + second.digest);
  }
  return Status::OK();
}

Status CheckThreadCountInvariance(const FuzzedLake& fz) {
  AF_ASSIGN_OR_RETURN(DiscoveryRun sequential,
                      RunDiscovery(fz.lake, fz, 1, /*want_digest=*/true));
  for (size_t threads : {size_t{4}, size_t{0}}) {  // 0 = hardware threads
    AF_ASSIGN_OR_RETURN(DiscoveryRun parallel,
                        RunDiscovery(fz.lake, fz, threads,
                                     /*want_digest=*/true));
    if (sequential.fingerprint != parallel.fingerprint) {
      return Violated("discovery output differs between --threads 1 and "
                      "--threads " + std::to_string(threads));
    }
    if (sequential.digest != parallel.digest) {
      return Violated("obs digest differs between --threads 1 and "
                      "--threads " + std::to_string(threads) + ": " +
                      sequential.digest + " vs " + parallel.digest);
    }
  }
  return Status::OK();
}

// Sorted edge-line fingerprint of a DRG: byte-equal fingerprints mean the
// same nodes, edges, join columns and weights.
std::string DrgEdgeFingerprint(const DatasetRelationGraph& drg) {
  std::vector<std::string> lines;
  for (size_t a = 0; a < drg.num_nodes(); ++a) {
    for (size_t b : drg.Neighbors(a)) {
      if (b <= a) continue;
      for (const JoinStep& step : drg.EdgesBetween(a, b)) {
        std::ostringstream line;
        line.precision(17);
        line << drg.NodeName(a) << "." << step.from_column << ">"
             << drg.NodeName(b) << "." << step.to_column << "="
             << step.weight;
        lines.push_back(line.str());
      }
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

Status CheckLshDiscoveryDeterminism(const FuzzedLake& fz) {
  // LSH-mode DRG discovery (MinHash signatures, banding, candidate pruning)
  // must be a pure function of the lake: the graph and the deterministic
  // obs digest may not change across reruns or thread counts.
  auto run = [&](size_t threads, std::string* fingerprint,
                 std::string* digest) -> Status {
    obs::MetricsRegistry metrics;
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      pool->set_metrics(&metrics);
    }
    MatchOptions options;
    options.candidate_mode = CandidateMode::kLsh;
    AF_ASSIGN_OR_RETURN(
        DatasetRelationGraph drg,
        BuildDrgByDiscovery(fz.lake, options, pool.get(), &metrics));
    *fingerprint = DrgEdgeFingerprint(drg);
    *digest = obs::DeterministicDigest(metrics, /*tracer=*/nullptr);
    return Status::OK();
  };
  std::string base_fp, base_digest;
  AF_RETURN_NOT_OK(run(1, &base_fp, &base_digest));
  struct Variant {
    const char* label;
    size_t threads;
  };
  for (const Variant& v :
       {Variant{"rerun", 1}, Variant{"4 threads", 4}, Variant{"8 threads", 8}}) {
    std::string fp, digest;
    AF_RETURN_NOT_OK(run(v.threads, &fp, &digest));
    if (fp != base_fp) {
      return Violated(std::string("LSH-mode DRG differs on ") + v.label +
                      ":\n--- baseline ---\n" + base_fp + "--- " + v.label +
                      " ---\n" + fp);
    }
    if (digest != base_digest) {
      return Violated(std::string("LSH-mode obs digest differs on ") +
                      v.label + ": " + base_digest + " vs " + digest);
    }
  }
  return Status::OK();
}

Status CheckColumnPermutationInvariance(const FuzzedLake& fz) {
  // Reversing satellite column order must not change discovery output: no
  // score, no ranked path, no selected feature may depend on the physical
  // layout of a lake table. (Base-table order is kept: it seeds the
  // selector's accepted set, which is order-defined by contract.)
  DataLake permuted;
  for (const Table& table : fz.lake.tables()) {
    if (table.name() == fz.base_table) {
      AF_RETURN_NOT_OK(permuted.AddTable(table));
      continue;
    }
    std::vector<std::string> names = table.ColumnNames();
    std::reverse(names.begin(), names.end());
    AF_ASSIGN_OR_RETURN(Table reversed, table.SelectColumns(names));
    reversed.set_name(table.name());
    AF_RETURN_NOT_OK(permuted.AddTable(std::move(reversed)));
  }
  for (const KfkConstraint& kfk : fz.lake.kfk_constraints()) {
    permuted.AddKfk(kfk);
  }
  AF_ASSIGN_OR_RETURN(DiscoveryRun plain,
                      RunDiscovery(fz.lake, fz, 1, /*want_digest=*/false));
  AF_ASSIGN_OR_RETURN(DiscoveryRun reordered,
                      RunDiscovery(permuted, fz, 1, /*want_digest=*/false));
  if (plain.fingerprint != reordered.fingerprint) {
    return Violated("discovery output depends on satellite column order:\n"
                    "--- original ---\n" + plain.fingerprint +
                    "--- reversed ---\n" + reordered.fingerprint);
  }
  return Status::OK();
}

Status CheckEvictionOblivious(const FuzzedLake& fz) {
  // Cache entries (join-key indexes) are pure functions of (table contents,
  // column, seed), so discovery output — ranked paths, scores, selected
  // features AND the deterministic obs digest — must be byte-identical no
  // matter when entries are evicted and rebuilt: never (baseline), between
  // every BFS round, on a seeded random schedule, or whenever a tiny memory
  // budget forces it.
  AF_ASSIGN_OR_RETURN(DiscoveryRun baseline,
                      RunDiscovery(fz.lake, fz, 1, /*want_digest=*/true));
  struct Variant {
    const char* label;
    size_t threads;
    EvictionStress stress;
    size_t budget_bytes;
  };
  constexpr size_t kTinyBudget = 32 * 1024;
  for (const Variant& v :
       {Variant{"evict-all between BFS rounds", 1, EvictionStress::kEvictAll,
                0},
        Variant{"seeded random eviction", 1, EvictionStress::kRandom, 0},
        Variant{"32KiB budget", 1, EvictionStress::kNone, kTinyBudget},
        Variant{"32KiB budget + evict-all", 1, EvictionStress::kEvictAll,
                kTinyBudget},
        Variant{"evict-all at 4 threads", 4, EvictionStress::kEvictAll, 0}}) {
    AF_ASSIGN_OR_RETURN(DiscoveryRun stressed,
                        RunDiscovery(fz.lake, fz, v.threads,
                                     /*want_digest=*/true, v.stress,
                                     v.budget_bytes));
    if (stressed.fingerprint != baseline.fingerprint) {
      return Violated(std::string("discovery output changed under ") +
                      v.label + ":\n--- baseline ---\n" + baseline.fingerprint +
                      "--- " + v.label + " ---\n" + stressed.fingerprint);
    }
    if (stressed.digest != baseline.digest) {
      return Violated(std::string("obs digest changed under ") + v.label +
                      ": " + baseline.digest + " vs " + stressed.digest);
    }
  }
  return Status::OK();
}

// ---- Serving ----------------------------------------------------------------

Status CheckServeIncrementalEquivalence(const FuzzedLake& fz) {
  // Replays the fuzzed mutation trace through a live LakeService (incremental
  // DRG maintenance + cache carry-over) and, in parallel, through a plain
  // cold lake. After the sequence the service's published DRG must be
  // byte-identical to a cold BuildDrgByDiscovery over the final lake state,
  // and a Discover query (ranked output AND deterministic obs digest) must
  // match a cold service built at that state. Mutation failures must be
  // symmetric: an op rejected by the service must be rejected cold too.
  struct Arm {
    const char* label;
    CandidateMode mode;
    size_t threads;
  };
  for (const Arm& arm :
       {Arm{"all-pairs, 1 thread", CandidateMode::kAllPairs, 1},
        Arm{"all-pairs, 4 threads", CandidateMode::kAllPairs, 4},
        Arm{"lsh, 1 thread", CandidateMode::kLsh, 1}}) {
    serve::ServeOptions opts;
    opts.match.candidate_mode = arm.mode;
    opts.config = FuzzDiscoveryConfig(fz, arm.threads);
    AF_ASSIGN_OR_RETURN(std::unique_ptr<serve::LakeService> service,
                        serve::LakeService::Create(fz.lake, opts));
    DataLake cold = fz.lake;
    size_t oi = 0;
    for (const serve::LakeMutation& op : fz.trace) {
      Result<uint64_t> incremental = service->Apply(op);
      Status replay = serve::ApplyMutationToLake(&cold, op);
      if (incremental.ok() != replay.ok()) {
        return Violated("mutation " + std::to_string(oi) + " (" +
                        serve::MutationSummary(op) + ") " +
                        (incremental.ok()
                             ? "succeeded on the service but failed cold: " +
                                   replay.message()
                             : "failed on the service but succeeded cold: " +
                                   incremental.status().message()) +
                        " [" + arm.label + "]");
      }
      ++oi;
    }

    // DRG equivalence against a cold discovery build at the final state.
    std::unique_ptr<ThreadPool> pool;
    if (arm.threads > 1) pool = std::make_unique<ThreadPool>(arm.threads);
    AF_ASSIGN_OR_RETURN(
        DatasetRelationGraph cold_drg,
        BuildDrgByDiscovery(cold, opts.match, pool.get(), nullptr));
    serve::LakeService::SnapshotPin snap = service->snapshot();
    if (snap->drg.OrderedFingerprint() != cold_drg.OrderedFingerprint()) {
      return Violated(std::string("incrementally maintained DRG diverged "
                                  "from a cold rebuild after ") +
                      std::to_string(fz.trace.size()) + " mutation(s) [" +
                      arm.label + "]:\n--- incremental ---\n" +
                      snap->drg.OrderedFingerprint() + "--- cold ---\n" +
                      cold_drg.OrderedFingerprint());
    }

    // Query equivalence against a cold service built at the final state.
    AF_ASSIGN_OR_RETURN(std::unique_ptr<serve::LakeService> cold_service,
                        serve::LakeService::Create(std::move(cold), opts));
    auto query = [&](serve::LakeService* s, std::string* fingerprint,
                     std::string* digest) -> Status {
      obs::MetricsRegistry metrics;
      AF_ASSIGN_OR_RETURN(
          serve::LakeService::DiscoverOutcome out,
          s->Discover(fz.base_table, fz.label_column, &metrics));
      *fingerprint = DiscoveryFingerprint(out.discovery);
      *digest = obs::DeterministicDigest(metrics, /*tracer=*/nullptr);
      return Status::OK();
    };
    std::string inc_fp, inc_digest, cold_fp, cold_digest;
    AF_RETURN_NOT_OK(query(service.get(), &inc_fp, &inc_digest));
    AF_RETURN_NOT_OK(query(cold_service.get(), &cold_fp, &cold_digest));
    if (inc_fp != cold_fp) {
      return Violated(std::string("Discover output diverged between the "
                                  "mutated service and a cold service [") +
                      arm.label + "]:\n--- incremental ---\n" + inc_fp +
                      "--- cold ---\n" + cold_fp);
    }
    if (inc_digest != cold_digest) {
      return Violated(std::string("Discover obs digest diverged between the "
                                  "mutated service and a cold service [") +
                      arm.label + "]: " + inc_digest + " vs " + cold_digest);
    }
  }
  return Status::OK();
}

// ---- Round trips ------------------------------------------------------------

Status CheckColumnarRoundTrip(const FuzzedLake& fz) {
  for (const Table& table : fz.lake.tables()) {
    std::string buf = WriteColumnarBuffer(table);
    AF_ASSIGN_OR_RETURN(Table back, ReadColumnarBuffer(buf));
    if (back.name() != table.name()) {
      return Violated("columnar round trip renamed " + table.name() + " to " +
                      back.name());
    }
    if (!table.Equals(back)) {
      return Violated("columnar round trip of " + table.name() +
                      " is not value-identical (" +
                      std::to_string(table.num_rows()) + "x" +
                      std::to_string(table.num_columns()) + ")");
    }
    // Tamper detection: FNV-1a applies a bijection of the running state per
    // payload byte, so any single-byte payload flip changes the checksum —
    // the read must fail cleanly, never crash or return data.
    std::string corrupt = buf;
    size_t flip = 32 + (corrupt.size() - 32) / 2;  // mid-payload
    corrupt[flip] = static_cast<char>(corrupt[flip] ^ 0x5A);
    if (ReadColumnarBuffer(corrupt).ok()) {
      return Violated("columnar reader accepted a payload with byte " +
                      std::to_string(flip) + " flipped (table " +
                      table.name() + ")");
    }
    if (ReadColumnarBuffer(std::string_view(buf).substr(0, buf.size() - 1))
            .ok()) {
      return Violated("columnar reader accepted a truncated buffer (table " +
                      table.name() + ")");
    }
  }
  return Status::OK();
}

Status CheckCsvRoundTripStabilises(const FuzzedLake& fz) {
  // One write/read pass may canonicalise a value ("07" -> 7, "" -> null,
  // all-null double -> all-null int64); after that the representation must
  // be a fixed point: write(read(write(read(csv)))) == write(read(csv)).
  for (const Table& table : fz.lake.tables()) {
    std::string csv1 = WriteCsvString(table);
    AF_ASSIGN_OR_RETURN(Table t1, ReadCsvString(csv1, table.name()));
    if (t1.num_rows() != table.num_rows() ||
        t1.num_columns() != table.num_columns()) {
      return Violated("CSV round trip changed the shape of " + table.name() +
                      ": " + std::to_string(table.num_rows()) + "x" +
                      std::to_string(table.num_columns()) + " -> " +
                      std::to_string(t1.num_rows()) + "x" +
                      std::to_string(t1.num_columns()));
    }
    std::string csv2 = WriteCsvString(t1);
    AF_ASSIGN_OR_RETURN(Table t2, ReadCsvString(csv2, table.name()));
    std::string csv3 = WriteCsvString(t2);
    if (csv2 != csv3) {
      return Violated("CSV round trip of " + table.name() +
                      " does not stabilise after one pass");
    }
  }
  return Status::OK();
}

}  // namespace

AutoFeatConfig FuzzDiscoveryConfig(const FuzzedLake& fz, size_t num_threads) {
  AutoFeatConfig config;
  config.sample_rows = 0;  // lakes are tiny; sampling would only mask rows
  config.max_hops = 3;
  config.num_threads = num_threads;
  config.seed = fz.seed;
  return config;
}

std::string DiscoveryFingerprint(const DiscoveryResult& result) {
  std::ostringstream out;
  out.precision(17);
  out << result.paths_explored << "/" << result.paths_pruned_infeasible << "/"
      << result.paths_pruned_quality << "\n";
  for (const RankedPath& rp : result.ranked) {
    out << rp.score << " |";
    for (const JoinStep& s : rp.path.steps) {
      out << " " << s.from_node << "." << s.from_column << ">" << s.to_node
          << "." << s.to_column;
    }
    out << " |";
    for (const FeatureScore& fs : rp.selected_features) {
      out << " " << fs.name << "=" << fs.score;
    }
    out << "\n";
  }
  return out.str();
}

const std::vector<Invariant>& BuiltinInvariants() {
  static const std::vector<Invariant>* const kInvariants =
      new std::vector<Invariant>{
          {"join.left_preserves_rows",
           "a cardinality-normalised left join keeps exactly the left "
           "table's rows and appends every right column",
           CheckLeftJoinPreservesRows},
          {"join.interned_matches_reference",
           "the dictionary-interned Join is byte-identical to "
           "JoinStringKeyed for every option combination",
           CheckInternedJoinMatchesReference},
          {"join.gather_views_match_materialisation",
           "JoinKeyIndex gather views (column/null-count/numeric) equal the "
           "materialised LeftJoinWithIndex output",
           CheckGatherViewsMatchMaterialisation},
          {"join.completeness_bounds",
           "JoinCompleteness is within [0,1] and errors on missing columns",
           CheckJoinCompletenessBounds},
          {"info.entropy_nonnegative",
           "H(X) is finite and >= 0 for every discretised feature",
           CheckEntropyNonNegative},
          {"info.mi_bounds",
           "0 <= I(X;Y) <= min(H(X), H(Y)) for every feature/label pair",
           CheckMutualInformationBounds},
          {"info.mi_symmetric",
           "I(X;Y) == I(Y;X) and SU(X,Y) == SU(Y,X) in [0,1]",
           CheckMutualInformationSymmetry},
          {"rank.zero_mi_no_gain",
           "appending a constant (zero-MI) column never removes a ranked "
           "path and never raises its score",
           CheckZeroMiFeatureNeverRaisesScores},
          {"determinism.rerun",
           "two identical discovery runs produce identical ranked output "
           "and obs digests",
           CheckRerunDeterminism},
          {"determinism.thread_invariant",
           "discovery output and obs digest are identical at --threads "
           "1/4/hw",
           CheckThreadCountInvariance},
          {"discovery.column_permutation_invariant",
           "reversing satellite column order leaves ranked paths, scores "
           "and selected features unchanged",
           CheckColumnPermutationInvariance},
          {"discovery.lsh_deterministic",
           "LSH-mode DRG discovery yields identical graphs and obs digests "
           "across reruns and thread counts",
           CheckLshDiscoveryDeterminism},
          {"csv.round_trip_stabilises",
           "CSV write/read canonicalises in one pass and is a fixed point "
           "afterwards",
           CheckCsvRoundTripStabilises},
          {"serve.incremental_equivalence",
           "after any fuzzed mutation sequence the serving layer's "
           "incrementally maintained DRG, Discover output and obs digest "
           "are byte-identical to a cold rebuild at the final lake state "
           "(all-pairs at 1/4 threads, LSH at 1)",
           CheckServeIncrementalEquivalence},
          {"cache.eviction_oblivious",
           "discovery output and obs digest are byte-identical under "
           "adversarial, random and budget-forced cache eviction schedules",
           CheckEvictionOblivious},
          {"columnar.round_trip",
           "binary columnar write/read is value-identical for every lake "
           "table, and corrupted or truncated buffers are rejected cleanly",
           CheckColumnarRoundTrip},
      };
  return *kInvariants;
}

Invariant PlantedNoNullsInvariant() {
  return {"planted.no_nulls",
          "TEST-ONLY deliberately wrong claim: no lake column contains a "
          "null value (exercises the shrinker and repro pipeline)",
          [](const FuzzedLake& fz) -> Status {
            for (const Table& table : fz.lake.tables()) {
              for (size_t c = 0; c < table.num_columns(); ++c) {
                const Column& col = table.column(c);
                for (size_t r = 0; r < col.size(); ++r) {
                  if (col.IsNull(r)) {
                    return Violated("null value in " + table.name() + "." +
                                    table.schema().field(c).name + " row " +
                                    std::to_string(r));
                  }
                }
              }
            }
            return Status::OK();
          }};
}

std::vector<Invariant> RegistryInvariants(bool include_planted) {
  std::vector<Invariant> out = BuiltinInvariants();
  if (include_planted) out.push_back(PlantedNoNullsInvariant());
  return out;
}

}  // namespace autofeat::qa
