// Exact-quantile latency recording: a mergeable fixed-precision histogram
// in the HDR-histogram style.
//
// The log2-bucket obs::Histogram answers "what order of magnitude" — good
// enough for frontier sizes, useless for serving latency SLOs where the
// difference between a 9 ms and a 15 ms p99 matters. A QuantileHistogram
// keeps sub-bucket resolution inside every octave: values below
// kSubBucketCount are counted exactly, and every larger value v lands in
// the bucket of (v >> shift) where the shift keeps kSubBucketHalf
// sub-buckets per octave. Quantile queries walk the cumulative counts and
// return the bucket's *upper bound*, so the estimate never under-reports
// and is within a bounded relative error of the true rank statistic:
//
//     true <= ValueAtQuantile(q) <= true * (1 + 1/kSubBucketHalf)
//
// (1/32 ≈ 3.2% with the default layout). The bucket layout is a pure
// function of the value — never of the data distribution — so two
// histograms are *mergeable* by bucket-wise addition, and merging is
// associative and commutative: per-thread recorders fold into one
// process-wide distribution with no loss beyond the fixed precision.
//
// Thread safety: Record is lock-free (relaxed atomics per bucket, as
// obs::Histogram); Merge/quantile queries read relaxed snapshots and are
// safe to call concurrently with recorders (a racing query sees some
// recent prefix of the updates, exact once recorders quiesce).
//
// Units are the caller's choice; the serving layer records nanoseconds
// (metric names carry a `_ns` suffix so report consumers can scale).

#ifndef AUTOFEAT_OBS_QUANTILE_H_
#define AUTOFEAT_OBS_QUANTILE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace autofeat::obs {

/// \brief Fixed-precision mergeable histogram with bounded-relative-error
/// quantile queries (p50/p90/p99/p999 and any q in [0, 1]).
class QuantileHistogram {
 public:
  /// Sub-bucket resolution: 2^6 = 64 exact low values, 32 sub-buckets per
  /// octave above, hence <= 1/32 relative error on every quantile.
  static constexpr size_t kSubBucketBits = 6;
  static constexpr size_t kSubBucketCount = size_t{1} << kSubBucketBits;
  static constexpr size_t kSubBucketHalf = kSubBucketCount / 2;
  /// Buckets covering the whole uint64 range: the exact region plus
  /// kSubBucketHalf buckets for each of the (64 - kSubBucketBits) octaves.
  static constexpr size_t kNumBuckets =
      kSubBucketCount + (64 - kSubBucketBits) * kSubBucketHalf;

  /// Bucket index of a value (total order, ascending in v).
  static size_t BucketOf(uint64_t v);

  /// Largest value mapping to bucket `b` — what quantile queries report.
  static uint64_t BucketUpperBound(size_t b);

  void Record(uint64_t v);

  /// Adds every recorded sample of `other` into this histogram
  /// (bucket-wise; associative and commutative).
  void Merge(const QuantileHistogram& other);

  /// The smallest bucket upper bound covering rank ceil(q * count) of the
  /// recorded distribution; 0 on an empty histogram. q is clamped to
  /// [0, 1]; q == 0 reports the first non-empty bucket (the minimum's
  /// bucket).
  uint64_t ValueAtQuantile(double q) const;

  uint64_t p50() const { return ValueAtQuantile(0.50); }
  uint64_t p90() const { return ValueAtQuantile(0.90); }
  uint64_t p99() const { return ValueAtQuantile(0.99); }
  uint64_t p999() const { return ValueAtQuantile(0.999); }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Exact min/max of recorded values; min() is 0 when nothing was
  /// recorded.
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_QUANTILE_H_
