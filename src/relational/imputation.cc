#include "relational/imputation.h"

#include <unordered_map>

namespace autofeat {

Column ImputeMostFrequent(const Column& column) {
  if (column.null_count() == 0) return column;

  // Find the mode of the non-null values (first-seen wins ties).
  std::unordered_map<std::string, size_t> counts;
  std::string mode_key;
  size_t mode_count = 0;
  size_t mode_row = 0;
  bool found = false;
  for (size_t i = 0; i < column.size(); ++i) {
    if (column.IsNull(i)) continue;
    std::string k = column.KeyAt(i);
    size_t c = ++counts[k];
    if (c > mode_count) {
      mode_count = c;
      mode_key = k;
      mode_row = i;
      found = true;
    }
  }

  Column out(column.type());
  out.Reserve(column.size());
  for (size_t i = 0; i < column.size(); ++i) {
    if (!column.IsNull(i)) {
      out.AppendFrom(column, i);
    } else if (found) {
      out.AppendFrom(column, mode_row);
    } else {
      // All-null column: fill with a type default.
      switch (column.type()) {
        case DataType::kDouble: out.AppendDouble(0.0); break;
        case DataType::kInt64: out.AppendInt64(0); break;
        case DataType::kString: out.AppendString(""); break;
      }
    }
  }
  return out;
}

Table ImputeTableMostFrequent(const Table& table) {
  Table out(table.name());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    out.AddColumn(table.schema().field(c).name,
                  ImputeMostFrequent(table.column(c)))
        .Abort();
  }
  return out;
}

}  // namespace autofeat
