#include "table/table.h"

#include "util/string_utils.h"

namespace autofeat {

Status Table::AddColumn(const std::string& name, Column column) {
  if (schema_.HasField(name)) {
    return Status::InvalidArgument("duplicate column name: " + name);
  }
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + name + "' has " + std::to_string(column.size()) +
        " rows, table has " + std::to_string(num_rows()));
  }
  schema_.AddField(Field{name, column.type()});
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::SetColumn(const std::string& name, Column column) {
  auto idx = schema_.FieldIndex(name);
  if (!idx.has_value()) {
    return Status::KeyError("no such column: " + name);
  }
  if (column.size() != num_rows()) {
    return Status::InvalidArgument("replacement column length mismatch");
  }
  // Rebuild schema in place to reflect a possible type change.
  Schema schema;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    Field f = schema_.field(i);
    if (i == *idx) f.type = column.type();
    schema.AddField(std::move(f));
  }
  schema_ = std::move(schema);
  columns_[*idx] = std::move(column);
  return Status::OK();
}

Status Table::DropColumn(const std::string& name) {
  auto idx = schema_.FieldIndex(name);
  if (!idx.has_value()) {
    return Status::KeyError("no such column: " + name);
  }
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(*idx));
  Schema schema;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    if (i != *idx) schema.AddField(schema_.field(i));
  }
  schema_ = std::move(schema);
  return Status::OK();
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  auto idx = schema_.FieldIndex(name);
  if (!idx.has_value()) {
    return Status::KeyError("no such column: " + name + " in table " + name_);
  }
  return &columns_[*idx];
}

Result<Table> Table::SelectColumns(
    const std::vector<std::string>& names) const {
  Table out(name_);
  for (const auto& name : names) {
    AF_ASSIGN_OR_RETURN(const Column* col, GetColumn(name));
    AF_RETURN_NOT_OK(out.AddColumn(name, *col));
  }
  return out;
}

Table Table::TakeRows(const std::vector<size_t>& indices) const {
  Table out(name_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    out.AddColumn(schema_.field(i).name, columns_[i].Take(indices)).Abort();
  }
  return out;
}

Status Table::RenameColumn(const std::string& old_name,
                           const std::string& new_name) {
  auto idx = schema_.FieldIndex(old_name);
  if (!idx.has_value()) {
    return Status::KeyError("no such column: " + old_name);
  }
  if (old_name == new_name) return Status::OK();
  if (schema_.HasField(new_name)) {
    return Status::InvalidArgument("column name already in use: " + new_name);
  }
  Schema schema;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    Field f = schema_.field(i);
    if (i == *idx) f.name = new_name;
    schema.AddField(std::move(f));
  }
  schema_ = std::move(schema);
  return Status::OK();
}

Table Table::WithQualifiedNames(const std::string& prefix) const {
  Table out(name_);
  std::string qualifier = prefix + ".";
  for (size_t i = 0; i < columns_.size(); ++i) {
    const std::string& name = schema_.field(i).name;
    std::string qualified =
        StartsWith(name, qualifier) ? name : qualifier + name;
    out.AddColumn(qualified, columns_[i]).Abort();
  }
  return out;
}

double Table::OverallNullRatio() const {
  if (columns_.empty() || num_rows() == 0) return 0.0;
  size_t nulls = 0;
  size_t total = 0;
  for (const auto& col : columns_) {
    nulls += col.null_count();
    total += col.size();
  }
  return static_cast<double>(nulls) / static_cast<double>(total);
}

bool Table::Equals(const Table& other) const {
  if (!schema_.Equals(other.schema_)) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i].Equals(other.columns_[i])) return false;
  }
  return true;
}

size_t Table::ApproxBytes() const {
  size_t total = sizeof(Table) + name_.size();
  for (const std::string& field : schema_.FieldNames()) {
    total += sizeof(std::string) + field.size();
  }
  for (const Column& col : columns_) total += col.ApproxBytes();
  return total;
}

}  // namespace autofeat
