#include "fs/relevance.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace autofeat {
namespace {

// A table with one strong feature, one weak, one pure-noise feature.
Table MakeSignalTable(size_t n = 400) {
  Rng rng(1);
  Table t("t");
  Column strong(DataType::kDouble), weak(DataType::kDouble),
      noise(DataType::kDouble), label(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    int y = static_cast<int>(i % 2);
    strong.AppendDouble(y == 1 ? rng.Normal(2, 1) : rng.Normal(-2, 1));
    weak.AppendDouble(y == 1 ? rng.Normal(0.3, 1) : rng.Normal(-0.3, 1));
    noise.AppendDouble(rng.Normal(0, 1));
    label.AppendInt64(y);
  }
  t.AddColumn("strong", std::move(strong)).Abort();
  t.AddColumn("weak", std::move(weak)).Abort();
  t.AddColumn("noise", std::move(noise)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  return t;
}

class RelevanceKindTest : public ::testing::TestWithParam<RelevanceKind> {};

TEST_P(RelevanceKindTest, RanksStrongAboveWeakAboveNoise) {
  auto view = FeatureView::FromTable(MakeSignalTable(), "label");
  ASSERT_TRUE(view.ok());
  RelevanceOptions options;
  options.kind = GetParam();
  options.relief_samples = 128;
  auto scores = ScoreRelevance(*view, {}, options);
  ASSERT_EQ(scores.size(), 3u);
  double strong = scores[0].score;
  double weak = scores[1].score;
  double noise = scores[2].score;
  EXPECT_GT(strong, weak) << RelevanceKindName(GetParam());
  // Relief's effectiveness is notably lower (paper §V-C): it separates the
  // strong feature but cannot reliably rank a 0.3-effect feature above
  // noise at this sample size, so the weak-vs-noise assertion is skipped.
  if (GetParam() != RelevanceKind::kRelief) {
    EXPECT_GT(weak, noise) << RelevanceKindName(GetParam());
  }
  EXPECT_GT(strong, noise) << RelevanceKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, RelevanceKindTest,
    ::testing::Values(RelevanceKind::kInformationGain,
                      RelevanceKind::kSymmetricalUncertainty,
                      RelevanceKind::kPearson, RelevanceKind::kSpearman,
                      RelevanceKind::kRelief),
    [](const auto& info) { return RelevanceKindName(info.param); });

TEST(RelevanceTest, SubsetIndicesRespected) {
  auto view = FeatureView::FromTable(MakeSignalTable(), "label");
  ASSERT_TRUE(view.ok());
  RelevanceOptions options;
  auto scores = ScoreRelevance(*view, {2}, options);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].name, "noise");
}

TEST(RelevanceTest, CorrelationScoresAreAbsolute) {
  // A negatively correlated feature must still rank as relevant.
  Rng rng(2);
  Table t("t");
  Column negative(DataType::kDouble), label(DataType::kInt64);
  for (size_t i = 0; i < 300; ++i) {
    int y = static_cast<int>(i % 2);
    negative.AppendDouble(y == 1 ? rng.Normal(-2, 1) : rng.Normal(2, 1));
    label.AppendInt64(y);
  }
  t.AddColumn("neg", std::move(negative)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  auto view = FeatureView::FromTable(t, "label");
  RelevanceOptions options;
  options.kind = RelevanceKind::kSpearman;
  auto scores = ScoreRelevance(*view, {}, options);
  EXPECT_GT(scores[0].score, 0.5);
}

TEST(SelectKBestTest, SortsAndTruncates) {
  std::vector<FeatureScore> scores{{"a", 0.1}, {"b", 0.9}, {"c", 0.5}};
  auto out = SelectKBest(scores, 2, 0.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].name, "b");
  EXPECT_EQ(out[1].name, "c");
}

TEST(SelectKBestTest, ThresholdFiltersLowScores) {
  std::vector<FeatureScore> scores{{"a", 0.1}, {"b", 0.9}, {"c", 0.0}};
  auto out = SelectKBest(scores, 10, 0.05);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.back().name, "a");
}

TEST(SelectKBestTest, EmptyWhenNothingPasses) {
  EXPECT_TRUE(SelectKBest({{"a", 0.0}}, 5, 0.0).empty());
  EXPECT_TRUE(SelectKBest({}, 5, 0.0).empty());
}

TEST(SelectKBestTest, TiesBreakByNameNotByInputOrder) {
  // Regression (found by the lake fuzzer's column-permutation invariant):
  // equally scored features were kept in input order, so duplicated columns
  // made the selection depend on the physical column order of the table.
  std::vector<FeatureScore> forward{{"a", 0.5}, {"b", 0.5}, {"c", 0.9}};
  std::vector<FeatureScore> backward{{"b", 0.5}, {"a", 0.5}, {"c", 0.9}};
  auto out_fwd = SelectKBest(forward, 2, 0.0);
  auto out_bwd = SelectKBest(backward, 2, 0.0);
  ASSERT_EQ(out_fwd.size(), 2u);
  EXPECT_EQ(out_fwd[0].name, "c");
  EXPECT_EQ(out_fwd[1].name, "a");  // name order, not input order
  ASSERT_EQ(out_bwd.size(), 2u);
  EXPECT_EQ(out_bwd[1].name, "a");  // identical under input permutation
}

TEST(RelevanceTest, KindNames) {
  EXPECT_STREQ(RelevanceKindName(RelevanceKind::kSpearman), "Spearman");
  EXPECT_STREQ(RelevanceKindName(RelevanceKind::kRelief), "Relief");
}

}  // namespace
}  // namespace autofeat
