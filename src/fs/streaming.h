// Streaming feature selection (paper §V-A, §VI).
//
// Features arrive in batches — one batch per join along a join path — while
// the row count stays fixed (left joins preserve the base-table rows, in
// order). Each batch passes a relevance analysis (top-kappa) and then a
// redundancy analysis against the set of already-selected features R_sel.
// Join-column features persist implicitly: paths are never pruned for lack
// of relevant features, only their features are discarded.

#ifndef AUTOFEAT_FS_STREAMING_H_
#define AUTOFEAT_FS_STREAMING_H_

#include <string>
#include <vector>

#include "fs/feature_view.h"
#include "fs/redundancy.h"
#include "fs/relevance.h"
#include "util/status.h"

namespace autofeat {

/// \brief Incremental relevance+redundancy pipeline maintaining R_sel.
class StreamingFeatureSelector {
 public:
  struct Options {
    RelevanceOptions relevance;
    RedundancyOptions redundancy;
    /// When false the redundancy stage is skipped (ablation: relevance-only).
    bool use_redundancy = true;
    /// When false the relevance stage passes all features through
    /// (ablation: redundancy-only).
    bool use_relevance = true;
  };

  /// Outcome of one batch (one join) through the pipeline.
  struct BatchResult {
    /// Relevant features (top-kappa) with their relevance scores.
    std::vector<FeatureScore> relevant;
    /// Accepted, non-redundant features with their J scores (subset of
    /// `relevant`); these have been added to R_sel.
    std::vector<FeatureScore> selected;

    bool AllIrrelevant() const { return relevant.empty(); }
    bool AllRedundant() const {
      return !relevant.empty() && selected.empty();
    }
  };

  explicit StreamingFeatureSelector(Options options)
      : options_(std::move(options)) {}

  /// Seeds R_sel with the base table's features without screening them —
  /// Algorithm 1 initialises R_sel from T_0.
  void SeedWithBaseFeatures(const FeatureView& view);

  /// Runs the pipeline on the features of `view` at `new_feature_indices`.
  /// Equivalent to CommitBatch(view, ScoreBatchRelevance(view, indices)).
  BatchResult ProcessBatch(const FeatureView& view,
                           const std::vector<size_t>& new_feature_indices);

  /// Relevance stage alone: ranks the incoming features against the label
  /// and keeps the top-kappa. Depends only on `view` and the options — not
  /// on R_sel — so batches can be scored concurrently (const, thread-safe)
  /// and committed later in deterministic order.
  std::vector<FeatureScore> ScoreBatchRelevance(
      const FeatureView& view,
      const std::vector<size_t>& new_feature_indices) const;

  /// Redundancy stage: screens an already-scored relevant set against R_sel
  /// and commits the survivors to it. Order-sensitive and stateful — callers
  /// parallelising the relevance stage must invoke this sequentially, in the
  /// same batch order a sequential run would use.
  BatchResult CommitBatch(const FeatureView& view,
                          std::vector<FeatureScore> relevant);

  const SelectedFeatureSet& selected() const { return selected_; }
  SelectedFeatureSet* mutable_selected() { return &selected_; }

 private:
  Options options_;
  SelectedFeatureSet selected_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_FS_STREAMING_H_
