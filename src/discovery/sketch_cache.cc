#include "discovery/sketch_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "discovery/data_lake.h"
#include "obs/event_log.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace autofeat {

ColumnSketch BuildColumnSketch(const Column& col, size_t max_sample) {
  ColumnSketch sketch;
  std::unordered_set<std::string> values;
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsNull(i)) values.insert(col.KeyAt(i));
  }
  sketch.num_distinct = values.size();
  if (values.size() <= max_sample) {
    sketch.values = std::move(values);
    return sketch;
  }
  // Bottom-k by hash: the kept set is a deterministic function of the value
  // set (ranking by (hash, value) has no ties across distinct values).
  std::vector<std::pair<size_t, std::string>> hashed;
  hashed.reserve(values.size());
  std::hash<std::string> hasher;
  for (auto& v : values) hashed.emplace_back(hasher(v), v);
  std::nth_element(hashed.begin(),
                   hashed.begin() + static_cast<ptrdiff_t>(max_sample),
                   hashed.end());
  for (size_t i = 0; i < max_sample; ++i) {
    sketch.values.insert(std::move(hashed[i].second));
  }
  return sketch;
}

namespace {

size_t SketchIntersection(const ColumnSketch& a, const ColumnSketch& b) {
  const auto& small = a.values.size() <= b.values.size() ? a.values : b.values;
  const auto& large = a.values.size() <= b.values.size() ? b.values : a.values;
  size_t inter = 0;
  for (const auto& v : small) inter += large.count(v);
  return inter;
}

}  // namespace

double SketchContainment(const ColumnSketch& a, const ColumnSketch& b) {
  if (a.values.empty() || b.values.empty()) return 0.0;
  size_t smaller = std::min(a.values.size(), b.values.size());
  return static_cast<double>(SketchIntersection(a, b)) /
         static_cast<double>(smaller);
}

double SketchJaccard(const ColumnSketch& a, const ColumnSketch& b) {
  if (a.values.empty() && b.values.empty()) return 0.0;
  size_t inter = SketchIntersection(a, b);
  size_t uni = a.values.size() + b.values.size() - inter;
  return uni == 0 ? 0.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

LakeSketchCache::LakeSketchCache(const DataLake* lake, size_t max_sample,
                                 obs::MetricsRegistry* metrics,
                                 size_t budget_bytes)
    : lake_(lake),
      max_sample_(max_sample),
      budget_bytes_(budget_bytes),
      builds_(obs::GetCounter(metrics, "sketch_cache.builds")),
      // Schedule-dependent under a budget — excluded from the deterministic
      // digest, like the JoinIndexCache eviction metrics.
      rebuilds_(obs::GetCounter(metrics, "sketch_cache.rebuilds",
                                /*deterministic=*/false)),
      evictions_(obs::GetCounter(metrics, "sketch_cache.evictions",
                                 /*deterministic=*/false)),
      bytes_(obs::GetGauge(metrics, "sketch_cache.bytes",
                           /*deterministic=*/false)),
      bytes_peak_(obs::GetGauge(metrics, "sketch_cache.bytes_peak",
                                /*deterministic=*/false)),
      state_(std::make_unique<State>()) {
  state_->entries.resize(lake_->num_tables());
  for (auto& slot : state_->entries) slot = std::make_shared<Entry>();
}

LakeSketchCache LakeSketchCache::Build(const DataLake& lake,
                                       size_t max_sample, ThreadPool* pool,
                                       obs::MetricsRegistry* metrics,
                                       size_t budget_bytes) {
  LakeSketchCache cache(&lake, max_sample, metrics, budget_bytes);
  cache.PrewarmAll(pool);
  return cache;
}

LakeSketchCache::TableSketchesPin LakeSketchCache::GetOrBuild(
    size_t table_index) {
  return GetOrBuildWithTick(table_index, /*tick=*/0, /*pool=*/nullptr);
}

LakeSketchCache::TableSketchesPin LakeSketchCache::GetOrBuildWithTick(
    size_t table_index, uint64_t tick, ThreadPool* pool) {
  State& st = *state_;
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    if (tick == 0) tick = ++st.tick;
    entry = st.entries[table_index];
    entry->last_used = std::max(entry->last_used, tick);
    if (entry->sketches != nullptr) return entry->sketches;
  }

  // Miss: serialise builders of this entry; the sketch itself is built with
  // only build_mutex held, so distinct tables sketch concurrently.
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  bool rebuild = false;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    if (entry->sketches != nullptr) return entry->sketches;
    rebuild = entry->ever_built;
  }

  obs::Tracer* tracer = pool != nullptr ? pool->tracer() : nullptr;
  obs::ScopedWorkerSpan span(tracer, "sketch.table");
  const Table& table = lake_->tables()[table_index];
  auto sketches = std::make_shared<std::vector<ColumnSketch>>();
  sketches->reserve(table.num_columns());
  size_t footprint = sizeof(std::vector<ColumnSketch>);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    sketches->push_back(BuildColumnSketch(table.column(c), max_sample_));
    footprint += sketches->back().ApproxBytes();
  }
  TableSketchesPin pin = std::move(sketches);

  std::lock_guard<std::mutex> lock(st.mutex);
  if (!rebuild) {
    entry->ever_built = true;
    obs::Increment(builds_, table.num_columns());
  } else {
    obs::Increment(rebuilds_, table.num_columns());
    obs::Append(event_log_, "cache_rebuild",
                {{"cache", "sketch"},
                 {"table", table.name()},
                 {"bytes", footprint}});
  }
  // Publish only while it fits: an entry larger than the whole budget is
  // handed to the caller pin-only, so the resident gauge never exceeds the
  // budget.
  if (budget_bytes_ == 0 || footprint <= budget_bytes_) {
    EvictForLocked(footprint, entry.get());
    entry->sketches = pin;
    entry->bytes = footprint;
    st.resident_bytes += footprint;
    obs::AddBytesWithPeak(bytes_, bytes_peak_,
                          static_cast<int64_t>(footprint));
  }
  return pin;
}

void LakeSketchCache::EvictForLocked(size_t incoming, const Entry* keep) {
  State& st = *state_;
  if (budget_bytes_ == 0) return;
  while (st.resident_bytes + incoming > budget_bytes_) {
    // Victim: least-recently-used resident entry; among equally recent
    // entries (one prewarm batch) the largest footprint goes first — most
    // bytes reclaimed per rebuild risked. Entries are scanned in table
    // order, so victim order is deterministic.
    Entry* victim = nullptr;
    size_t victim_index = 0;
    for (size_t i = 0; i < st.entries.size(); ++i) {
      const auto& entry = st.entries[i];
      if (entry->sketches == nullptr || entry.get() == keep) continue;
      if (victim == nullptr || entry->last_used < victim->last_used ||
          (entry->last_used == victim->last_used &&
           entry->bytes > victim->bytes)) {
        victim = entry.get();
        victim_index = i;
      }
    }
    if (victim == nullptr) break;  // everything left is `keep`
    st.resident_bytes -= victim->bytes;
    obs::AddBytesWithPeak(bytes_, bytes_peak_,
                          -static_cast<int64_t>(victim->bytes));
    obs::Append(event_log_, "cache_evict",
                {{"cache", "sketch"},
                 {"table", lake_->tables()[victim_index].name()},
                 {"bytes", victim->bytes}});
    victim->sketches.reset();
    victim->bytes = 0;
    obs::Increment(evictions_);
  }
}

void LakeSketchCache::PrewarmAll(ThreadPool* pool) {
  State& st = *state_;
  size_t n;
  uint64_t batch_tick;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    // One recency tick for the whole batch: prewarmed entries are equally
    // recent, so the cost-aware (largest-first) tie-break decides eviction
    // order among them under a budget.
    batch_tick = ++st.tick;
    n = st.entries.size();
  }
  ParallelFor(pool, 0, n, /*grain=*/1, [&](size_t t) {
    GetOrBuildWithTick(t, batch_tick, pool);
  });
}

size_t LakeSketchCache::CarryOver(
    const LakeSketchCache& prev,
    const std::unordered_set<std::string>& invalidated_tables) {
  if (prev.max_sample_ != max_sample_) return 0;
  // Positions shift when tables are dropped, so survivors are matched by
  // name: for each table of our lake, find its position in prev's lake.
  std::unordered_map<std::string, size_t> prev_pos;
  {
    const auto prev_tables = prev.lake_->tables();
    for (size_t t = 0; t < prev_tables.size(); ++t) {
      prev_pos[prev_tables[t].name()] = t;
    }
  }
  struct Carried {
    size_t index;
    TableSketchesPin sketches;
    size_t bytes;
    uint64_t last_used;
  };
  std::vector<Carried> carried;
  uint64_t prev_tick = 0;
  {
    std::lock_guard<std::mutex> lock(prev.state_->mutex);
    prev_tick = prev.state_->tick;
    const auto tables = lake_->tables();
    for (size_t t = 0; t < tables.size(); ++t) {
      const std::string& name = tables[t].name();
      if (invalidated_tables.count(name) > 0) continue;
      auto it = prev_pos.find(name);
      if (it == prev_pos.end()) continue;
      const auto& entry = prev.state_->entries[it->second];
      if (entry->sketches == nullptr) continue;
      carried.push_back({t, entry->sketches, entry->bytes, entry->last_used});
    }
  }
  std::sort(carried.begin(), carried.end(),
            [](const Carried& a, const Carried& b) {
              return a.last_used != b.last_used ? a.last_used < b.last_used
                                                : a.index < b.index;
            });
  State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mutex);
  st.tick = std::max(st.tick, prev_tick);
  size_t installed = 0;
  for (Carried& c : carried) {
    if (budget_bytes_ != 0 && c.bytes > budget_bytes_) continue;
    auto& slot = st.entries[c.index];
    if (slot->sketches != nullptr) continue;
    EvictForLocked(c.bytes, slot.get());
    slot->sketches = std::move(c.sketches);
    slot->bytes = c.bytes;
    slot->last_used = c.last_used;
    slot->ever_built = true;
    st.resident_bytes += c.bytes;
    obs::AddBytesWithPeak(bytes_, bytes_peak_, static_cast<int64_t>(c.bytes));
    ++installed;
  }
  return installed;
}

void LakeSketchCache::EvictAll() {
  State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mutex);
  for (auto& entry : st.entries) {
    if (entry->sketches == nullptr) continue;
    st.resident_bytes -= entry->bytes;
    obs::AddBytesWithPeak(bytes_, bytes_peak_,
                          -static_cast<int64_t>(entry->bytes));
    entry->sketches.reset();
    entry->bytes = 0;
    obs::Increment(evictions_);
  }
}

const std::vector<ColumnSketch>& LakeSketchCache::table_sketches(
    size_t table_index) {
  // The returned reference aliases the resident entry, which is only stable
  // on an unbudgeted cache (budgeted callers must hold a GetOrBuild pin).
  TableSketchesPin pin = GetOrBuild(table_index);
  return *pin;
}

size_t LakeSketchCache::num_tables() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->entries.size();
}

size_t LakeSketchCache::num_resident() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  size_t resident = 0;
  for (const auto& entry : state_->entries) {
    resident += entry->sketches != nullptr ? 1 : 0;
  }
  return resident;
}

size_t LakeSketchCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->resident_bytes;
}

}  // namespace autofeat
