// Logical column types of the columnar table substrate.

#ifndef AUTOFEAT_TABLE_DATA_TYPE_H_
#define AUTOFEAT_TABLE_DATA_TYPE_H_

#include <string>

namespace autofeat {

/// \brief Physical/logical type of a Column.
///
/// kDouble  — continuous numeric features.
/// kInt64   — integer features and surrogate keys.
/// kString  — categorical / nominal features and textual join keys.
enum class DataType {
  kDouble = 0,
  kInt64 = 1,
  kString = 2,
};

inline const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kDouble: return "double";
    case DataType::kInt64: return "int64";
    case DataType::kString: return "string";
  }
  return "invalid";
}

/// True for types on which arithmetic statistics (mean, correlation) are
/// directly defined.
inline bool IsNumeric(DataType t) {
  return t == DataType::kDouble || t == DataType::kInt64;
}

}  // namespace autofeat

#endif  // AUTOFEAT_TABLE_DATA_TYPE_H_
