// Relief feature scoring (paper §V-C): weights features by how well their
// values separate nearest-neighbour instances of different classes.

#ifndef AUTOFEAT_STATS_RELIEF_H_
#define AUTOFEAT_STATS_RELIEF_H_

#include <vector>

#include "util/rng.h"

namespace autofeat {

/// \brief Relief weights for a feature matrix.
///
/// `features` is column-major: features[f][row]. NaNs are treated as the
/// feature midpoint (neutral difference 0.5). `labels` holds class codes.
/// `num_samples` instances are sampled (all, if >= n). For each sampled
/// instance the nearest hit (same class) and nearest miss (other class) are
/// found by normalised Manhattan distance; weights accumulate
/// diff(miss) - diff(hit). Result is per-feature, higher = more relevant.
std::vector<double> ReliefScores(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels, size_t num_samples, Rng* rng);

}  // namespace autofeat

#endif  // AUTOFEAT_STATS_RELIEF_H_
