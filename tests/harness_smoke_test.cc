// Smoke tests of the benchmark harness helpers (bench/harness.h): the
// figure binaries build on these, so their contracts deserve coverage too.

#include "../bench/harness.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/report.h"

namespace autofeat::benchx {
namespace {

TEST(HarnessTest, ScaledSpecCapsQuickMode) {
  // The test binary runs without AUTOFEAT_BENCH_MODE=full.
  ASSERT_FALSE(FullMode());
  auto spec = ScaledSpec(*datagen::FindDataset("covertype"));
  EXPECT_LE(spec.rows, 2000u);
  EXPECT_LE(spec.total_features, 120u);
}

TEST(HarnessTest, TreeModelsNonEmpty) {
  auto models = BenchTreeModels();
  EXPECT_GE(models.size(), 2u);
}

TEST(HarnessTest, SettingDrgBuildsBothWays) {
  auto spec = ScaledSpec(*datagen::FindDataset("credit"));
  auto built = datagen::BuildPaperLake(spec, 1);
  auto kfk = BuildSettingDrg(built, Setting::kBenchmark);
  auto lake = BuildSettingDrg(built, Setting::kDataLake);
  ASSERT_TRUE(kfk.ok());
  ASSERT_TRUE(lake.ok());
  EXPECT_EQ(kfk->num_edges(), spec.joinable_tables);
  EXPECT_GE(lake->num_edges(), kfk->num_edges());
  EXPECT_STREQ(SettingName(Setting::kBenchmark), "benchmark");
  EXPECT_STREQ(SettingName(Setting::kDataLake), "data lake");
}

TEST(HarnessTest, MethodLineup) {
  auto with_joinall = MakeMethods(true);
  auto without = MakeMethods(false);
  EXPECT_EQ(with_joinall.size(), 6u);
  EXPECT_EQ(without.size(), 4u);
  EXPECT_EQ(with_joinall[0]->name(), "BASE");
  EXPECT_EQ(with_joinall[1]->name(), "AutoFeat");
  EXPECT_EQ(with_joinall[4]->name(), "JoinAll");
  EXPECT_EQ(with_joinall[5]->name(), "JoinAll+F");
}

// Regression: the JSON emitter used to print phase strings through a raw
// %s, so a quote or backslash in a phase name produced an invalid file.
TEST(HarnessTest, WriteBenchJsonEscapesHostileNamesAndRoundTrips) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "autofeat_harness_json_test";
  fs::create_directories(dir);
  ASSERT_EQ(setenv("AUTOFEAT_BENCH_JSON_DIR", dir.c_str(), 1), 0);

  obs::MetricsRegistry metrics;
  metrics.GetCounter("smoke.count")->Increment(5);
  std::string hostile = "phase \"quoted\" back\\slash\nnewline\ttab";
  ASSERT_TRUE(WriteBenchJson("hostile_smoke",
                             {{hostile, 2, 0.125}, {"plain", 1, 1.5}},
                             &metrics));

  std::ifstream in(dir / "BENCH_hostile_smoke.json");
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  std::string json = content.str();
  unsetenv("AUTOFEAT_BENCH_JSON_DIR");

  EXPECT_TRUE(obs::JsonIsValid(json)) << json;
  // The hostile characters were escaped, not emitted raw.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
  // The metrics block rode along.
  EXPECT_NE(json.find("\"smoke.count\": 5"), std::string::npos);
  // Without a registry the block degrades to an empty object, still valid.
  ASSERT_EQ(setenv("AUTOFEAT_BENCH_JSON_DIR", dir.c_str(), 1), 0);
  ASSERT_TRUE(WriteBenchJson("hostile_smoke", {{"p", 1, 0.5}}));
  std::ifstream in2(dir / "BENCH_hostile_smoke.json");
  std::ostringstream content2;
  content2 << in2.rdbuf();
  unsetenv("AUTOFEAT_BENCH_JSON_DIR");
  EXPECT_TRUE(obs::JsonIsValid(content2.str()));
  EXPECT_NE(content2.str().find("\"metrics\": {}"), std::string::npos);
  fs::remove_all(dir);
}

TEST(HarnessTest, RunMethodProducesSaneRow) {
  auto spec = ScaledSpec(*datagen::FindDataset("credit"));
  spec.rows = 500;  // Keep the smoke test fast.
  auto built = datagen::BuildPaperLake(spec, 2);
  auto drg = BuildSettingDrg(built, Setting::kBenchmark);
  ASSERT_TRUE(drg.ok());
  baselines::BaseMethod base;
  auto row = RunMethod(&base, built, *drg, {ml::ModelKind::kKnn});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->method, "BASE");
  EXPECT_GT(row->accuracy, 0.0);
  EXPECT_EQ(row->tables_joined, 0u);
}

}  // namespace
}  // namespace autofeat::benchx
