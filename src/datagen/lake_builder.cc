#include "datagen/lake_builder.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace autofeat::datagen {

namespace {

// Internal topology node for one satellite table.
struct Satellite {
  std::string name;
  int parent = -1;  // -1 = base table, else index into the satellite vector
  size_t depth = 1;
  double effect = 0.0;
  size_t num_features = 0;
  std::vector<int> children;

  // Filled during construction:
  std::vector<size_t> base_rows;  // satellite row -> base row
  std::vector<int64_t> codes;     // per-row surrogate codes (as join target)
};

// Short random identifier used in join-column names, so that the names of
// unrelated links are only loosely similar (real schemata do not name all
// foreign keys alike).
std::string RandomToken(Rng* rng) {
  std::string token;
  for (int i = 0; i < 4; ++i) {
    token += static_cast<char>('a' + rng->UniformInt(0, 25));
  }
  return token;
}

// Builds a class-conditional Gaussian feature column over `base_rows`.
Column MakeFeature(const std::vector<size_t>& base_rows,
                   const std::vector<int>& labels, double effect,
                   double missing_rate, Rng* rng) {
  double jitter = rng->Uniform(0.75, 1.25);
  double separation = effect * jitter;
  Column col(DataType::kDouble);
  col.Reserve(base_rows.size());
  for (size_t base_row : base_rows) {
    if (missing_rate > 0 && rng->Bernoulli(missing_rate)) {
      col.AppendNull();
      continue;
    }
    double mean = labels[base_row] == 1 ? separation / 2 : -separation / 2;
    col.AppendDouble(rng->Normal(mean, 1.0));
  }
  return col;
}

}  // namespace

BuiltLake BuildLake(const LakeSpec& spec) {
  Rng rng(spec.seed);
  size_t n = std::max<size_t>(spec.rows, 10);
  size_t num_satellites = std::max<size_t>(spec.joinable_tables, 1);

  // ---- Labels -------------------------------------------------------------
  std::vector<int> labels(n);
  for (size_t r = 0; r < n; ++r) labels[r] = static_cast<int>(r % 2);
  rng.Shuffle(&labels);
  for (size_t r = 0; r < n; ++r) {
    if (rng.Bernoulli(spec.label_noise)) labels[r] = 1 - labels[r];
  }

  // ---- Topology -----------------------------------------------------------
  std::vector<Satellite> sats(num_satellites);
  size_t hubs = spec.star_schema
                    ? num_satellites
                    : std::max<size_t>(1, (num_satellites + 1) / 2);
  size_t mids = spec.star_schema
                    ? 0
                    : std::min(num_satellites - hubs,
                               std::max<size_t>(1, num_satellites / 4));
  for (size_t i = 0; i < num_satellites; ++i) {
    sats[i].name = spec.name + "_t" + std::to_string(i);
    if (i < hubs) {
      sats[i].parent = -1;
      sats[i].depth = 1;
    } else if (i < hubs + mids) {
      int parent = static_cast<int>((i - hubs) % hubs);
      sats[i].parent = parent;
      sats[i].depth = 2;
      sats[parent].children.push_back(static_cast<int>(i));
    } else {
      // Deep tables hang behind depth-2 tables when available.
      int parent = mids > 0
                       ? static_cast<int>(hubs + (i - hubs - mids) % mids)
                       : static_cast<int>((i - hubs) % hubs);
      sats[i].parent = parent;
      sats[i].depth = sats[static_cast<size_t>(parent)].depth + 1;
      sats[static_cast<size_t>(parent)].children.push_back(
          static_cast<int>(i));
    }
  }
  size_t max_depth = 1;
  for (const auto& s : sats) max_depth = std::max(max_depth, s.depth);

  // ---- Signal placement ----------------------------------------------------
  // Snowflake: strongest signal at the deepest level; moderate one level
  // up; depth-1 tables are mostly noise (with a weak exception). Star: a
  // minority of tables carry the signal, the rest are noise.
  if (spec.star_schema || max_depth == 1) {
    size_t relevant = std::max<size_t>(1, num_satellites * 2 / 5);
    for (size_t i = 0; i < num_satellites; ++i) {
      if (i < relevant) {
        sats[i].effect = i == 0 ? 1.3 : 0.7;
      } else {
        sats[i].effect = 0.0;
      }
    }
  } else {
    // One dominant deep table (strong enough that a single join path gets
    // close to the accuracy ceiling, as in the paper where AutoFeat rivals
    // JoinAll); the remaining deep tables carry moderate signal.
    bool dominant_assigned = false;
    bool weak_hub_assigned = false;
    for (auto& s : sats) {
      if (s.depth == max_depth) {
        s.effect = dominant_assigned ? 0.8 : 1.8;
        dominant_assigned = true;
      } else if (s.depth + 1 == max_depth) {
        s.effect = 0.5;
      } else if (!weak_hub_assigned) {
        s.effect = 0.35;  // One weak direct table keeps ARDA honest.
        weak_hub_assigned = true;
      } else {
        s.effect = 0.0;
      }
    }
  }

  // ---- Feature budget -------------------------------------------------------
  size_t base_features =
      std::max<size_t>(2, spec.total_features / 10);
  size_t satellite_budget =
      spec.total_features > base_features
          ? spec.total_features - base_features
          : num_satellites;
  size_t per_table = std::max<size_t>(1, satellite_budget / num_satellites);
  size_t remainder = satellite_budget > per_table * num_satellites
                         ? satellite_budget - per_table * num_satellites
                         : 0;
  for (size_t i = 0; i < num_satellites; ++i) {
    sats[i].num_features = per_table + (i < remainder ? 1 : 0);
  }

  // ---- Base table -----------------------------------------------------------
  BuiltLake built;
  built.base_table = spec.name + "_base";
  std::string base_key = spec.name + "_id";

  std::vector<size_t> identity(n);
  for (size_t r = 0; r < n; ++r) identity[r] = r;

  Table base(built.base_table);
  {
    std::vector<int64_t> ids(n);
    for (size_t r = 0; r < n; ++r) ids[r] = static_cast<int64_t>(r);
    base.AddColumn(base_key, Column::Int64s(std::move(ids))).Abort();
  }
  for (size_t f = 0; f < base_features; ++f) {
    // Weak signal only: the base table is assumed to perform poorly (§VII-B).
    base.AddColumn(spec.name + "_bf" + std::to_string(f),
                   MakeFeature(identity, labels, 0.25, 0.0, &rng))
        .Abort();
  }
  {
    std::vector<int64_t> label_col(n);
    for (size_t r = 0; r < n; ++r) label_col[r] = labels[r];
    base.AddColumn(built.label_column, Column::Int64s(std::move(label_col)))
        .Abort();
  }
  built.lake.AddTable(std::move(base)).Abort();

  // ---- Satellites (depth order so parents exist first) ----------------------
  std::vector<size_t> build_order(num_satellites);
  for (size_t i = 0; i < num_satellites; ++i) build_order[i] = i;
  std::stable_sort(build_order.begin(), build_order.end(),
                   [&](size_t a, size_t b) {
                     return sats[a].depth < sats[b].depth;
                   });

  for (size_t si : build_order) {
    Satellite& sat = sats[si];

    // Row mapping: a random subset of the parent's rows (key coverage).
    const std::vector<size_t>& parent_base_rows =
        sat.parent < 0 ? identity
                       : sats[static_cast<size_t>(sat.parent)].base_rows;
    size_t parent_rows = parent_base_rows.size();
    size_t rows = std::max<size_t>(
        2, static_cast<size_t>(std::floor(spec.key_coverage *
                                          static_cast<double>(parent_rows))));
    rows = std::min(rows, parent_rows);
    std::vector<size_t> chosen = rng.Permutation(parent_rows);
    chosen.resize(rows);

    sat.base_rows.reserve(rows);
    std::vector<int64_t> key_values;
    key_values.reserve(rows);
    for (size_t parent_pos : chosen) {
      sat.base_rows.push_back(parent_base_rows[parent_pos]);
      if (sat.parent < 0) {
        // Key = the base table's surrogate id.
        key_values.push_back(static_cast<int64_t>(parent_base_rows[parent_pos]));
      } else {
        // Key = the parent's surrogate code for that row.
        key_values.push_back(
            sats[static_cast<size_t>(sat.parent)].codes[parent_pos]);
      }
    }

    // Key column names: depth-1 tables reuse the base key name (classic
    // PK-FK). Deeper links get mismatched names with some probability,
    // reproducing the same-name limitation that throttles MAB.
    std::string parent_side_column;
    std::string child_side_column;
    std::string parent_name;
    if (sat.parent < 0) {
      parent_name = built.base_table;
      parent_side_column = base_key;
      child_side_column = base_key;
    } else {
      Satellite& parent = sats[static_cast<size_t>(sat.parent)];
      parent_name = parent.name;
      std::string token = RandomToken(&rng);
      parent_side_column = "fk_" + token;
      // Mismatched names share the token (the same entity is referenced)
      // but differ in convention — enough to break same-name joining (the
      // MAB limitation) while keeping discovered true edges above the
      // unrelated-link noise.
      child_side_column = rng.Bernoulli(spec.mismatched_name_rate)
                              ? "key_" + token
                              : parent_side_column;
      // Materialise the FK column on the parent table (codes 0..rows-1 by
      // parent row; overlapping integer ranges intentionally create
      // spurious value-overlap matches in the data-lake setting).
      auto parent_table = built.lake.GetTable(parent_name);
      Table updated = **parent_table;
      std::vector<int64_t> fk(parent.base_rows.size());
      for (size_t r = 0; r < fk.size(); ++r) {
        fk[r] = parent.codes[r];
      }
      updated.AddColumn(parent_side_column, Column::Int64s(std::move(fk)))
          .Abort();
      built.lake.ReplaceTable(std::move(updated)).Abort();
    }

    // Surrogate codes for this satellite's own rows (used by its children).
    // A per-table random offset makes unrelated code columns overlap only
    // partially, as unrelated id spaces do in real lakes; the true
    // parent-child link still overlaps fully (the child inherits codes).
    int64_t offset = rng.UniformInt(0, static_cast<int64_t>(2 * n));
    sat.codes.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      sat.codes[r] = offset + static_cast<int64_t>(r);
    }

    Table table(sat.name);
    table.AddColumn(child_side_column, Column::Int64s(std::move(key_values)))
        .Abort();
    for (size_t f = 0; f < sat.num_features; ++f) {
      table
          .AddColumn(sat.name + "_f" + std::to_string(f),
                     MakeFeature(sat.base_rows, labels, sat.effect,
                                 spec.missing_rate, &rng))
          .Abort();
    }
    built.lake.AddTable(std::move(table)).Abort();

    built.lake.AddKfk(KfkConstraint{parent_name, parent_side_column, sat.name,
                                    child_side_column});
    built.truth.push_back(
        TableTruth{sat.name, sat.depth, sat.effect, sat.num_features});
  }

  return built;
}

}  // namespace autofeat::datagen
