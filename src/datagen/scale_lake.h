// Pod-structured lakes for DRG-construction scaling benchmarks.
//
// BuildLake (lake_builder.h) grows a single joinable neighbourhood around
// one base table — its true edge count is quadratic-ish in the table count,
// which is the wrong shape for measuring candidate generation: a candidate
// filter cannot beat all-pairs on a lake where almost every pair really
// joins. Real thousand-table lakes are sparsely joinable; BuildScaleLake
// models that with independent "pods" of `pod_size` tables sharing one
// per-pod key domain. Key domains of different pods are disjoint and key
// column names differ per pod, so the ground-truth DRG has exactly
// C(pod_size, 2) key↔key edges per pod — edge count linear in the table
// count — and everything cross-pod stays below the match threshold.

#ifndef AUTOFEAT_DATAGEN_SCALE_LAKE_H_
#define AUTOFEAT_DATAGEN_SCALE_LAKE_H_

#include <cstddef>
#include <cstdint>

#include "discovery/data_lake.h"

namespace autofeat::datagen {

struct ScaleLakeSpec {
  /// Total table count; the last pod may be smaller than pod_size.
  size_t num_tables = 100;
  /// Tables per pod, all sharing one key domain (1 hub + pod_size-1
  /// satellites).
  size_t pod_size = 5;
  /// Rows per table; also the size of each pod's key domain. Keep above
  /// LshOptions::small_column_rescue so the bench exercises the banding
  /// path, not the small-column rescue.
  size_t rows = 120;
  /// Double feature columns per table.
  size_t features_per_table = 2;
  uint64_t seed = 42;
};

/// Expected DRG edge count of a spec-built lake under the default
/// MatchOptions: every within-pod table pair joins on the pod key, nothing
/// else matches.
size_t ExpectedScaleLakeEdges(const ScaleLakeSpec& spec);

/// Builds the lake. Tables are named "pod<p>_t<k>"; each carries the pod
/// key column "key_p<p>" (a permutation of the pod's key domain, so
/// within-pod containment is exactly 1) plus normally-distributed double
/// feature columns with per-table names. Deterministic in spec.seed.
DataLake BuildScaleLake(const ScaleLakeSpec& spec);

}  // namespace autofeat::datagen

#endif  // AUTOFEAT_DATAGEN_SCALE_LAKE_H_
