#include "baselines/join_all.h"

#include <deque>
#include <unordered_set>

#include "discovery/join_index_cache.h"
#include "fs/feature_view.h"
#include "fs/relevance.h"
#include "relational/join.h"
#include "relational/join_index.h"
#include "util/timer.h"

namespace autofeat::baselines {

Result<AugmenterResult> JoinAll::Augment(const DataLake& lake,
                                         const DatasetRelationGraph& drg,
                                         const std::string& base_table,
                                         const std::string& label_column) {
  Timer total_timer;
  AF_ASSIGN_OR_RETURN(const Table* base, lake.GetTable(base_table));
  AF_ASSIGN_OR_RETURN(size_t base_node, drg.NodeId(base_table));

  AugmenterResult result;
  result.augmented = *base;

  // Interned join-key indexes, built once per (table, column) target.
  JoinIndexCache join_cache(&lake, options_.seed, options_.metrics);

  // BFS join of every reachable table, each joined once, in level order.
  std::unordered_set<size_t> joined{base_node};
  std::deque<size_t> queue{base_node};
  // Remember, per joined node, which join column reached it so transitive
  // edges can be followed (the edge's from-column must exist in the
  // accumulated wide table; with unique satellite column names it does).
  while (!queue.empty()) {
    size_t node = queue.front();
    queue.pop_front();
    for (size_t neighbor : drg.Neighbors(node)) {
      // The cap counts the base table plus every joined satellite.
      if (joined.size() >= options_.max_tables) break;
      if (joined.count(neighbor) > 0) continue;
      const Table* right = nullptr;
      {
        auto r = lake.GetTable(drg.NodeName(neighbor));
        if (!r.ok()) continue;
        right = *r;
      }
      if (right->HasColumn(label_column)) continue;
      std::vector<JoinStep> edges = drg.BestEdgesBetween(node, neighbor);
      for (const JoinStep& edge : edges) {
        if (edge.from_column == label_column) continue;  // Label leakage.
        if (!result.augmented.HasColumn(edge.from_column)) continue;
        auto index = join_cache.GetOrBuild(drg.NodeName(neighbor),
                                           edge.to_column);
        if (!index.ok()) continue;
        auto join = LeftJoinWithIndex(result.augmented, edge.from_column,
                                      *right, **index);
        if (!join.ok() || join->stats.matched_rows == 0) continue;
        result.augmented = std::move(join->table);
        joined.insert(neighbor);
        queue.push_back(neighbor);
        ++result.tables_joined;
        break;  // One join per table.
      }
    }
  }

  if (options_.filter) {
    // Filter feature selection once, over the single wide table.
    Timer fs_timer;
    AF_ASSIGN_OR_RETURN(FeatureView view,
                        FeatureView::FromTable(result.augmented, label_column));
    RelevanceOptions rel;
    rel.kind = RelevanceKind::kSpearman;
    rel.top_k = options_.keep_features;
    std::vector<FeatureScore> scores = ScoreRelevance(view, {}, rel);
    std::vector<FeatureScore> kept =
        SelectKBest(std::move(scores), options_.keep_features, 1e-9);
    result.feature_selection_seconds = fs_timer.ElapsedSeconds();

    std::vector<std::string> columns;
    columns.reserve(kept.size() + 1);
    for (const auto& fs : kept) columns.push_back(fs.name);
    columns.push_back(label_column);
    AF_ASSIGN_OR_RETURN(Table filtered,
                        result.augmented.SelectColumns(columns));
    filtered.set_name(result.augmented.name());
    result.augmented = std::move(filtered);
  }

  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace autofeat::baselines
