// Differential property test for the join fast path: over randomized
// synthetic lakes, discovery with join_fast_path on and off must produce
// byte-identical ranked paths, scores and selected features, and the full
// Augment pipeline must land on the same model accuracy. The generated
// lakes' satellite key columns are unique (permutation subsets), so the
// cardinality-normalisation representative is forced and the two execution
// paths are exactly — not approximately — comparable.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/autofeat.h"
#include "datagen/lake_builder.h"
#include "discovery/data_lake.h"
#include "support/lake_fixtures.h"

namespace autofeat {
namespace {

using testsupport::RankedFingerprint;

struct LakeVariant {
  uint64_t seed;
  size_t rows;
  size_t joinable_tables;
  size_t total_features;
  bool star_schema;
};

AutoFeatConfig VariantConfig(const LakeVariant& variant, bool fast_path) {
  AutoFeatConfig config;
  config.seed = variant.seed;
  config.sample_rows = 200;
  config.join_fast_path = fast_path;
  return config;
}

TEST(FastPathDifferentialTest, DiscoveryAndAugmentMatchLegacyPath) {
  const LakeVariant variants[] = {
      {7, 300, 4, 20, false},
      {11, 400, 6, 30, false},
      {23, 350, 5, 24, true},
      {101, 500, 7, 36, false},
      {977, 250, 3, 16, true},
  };

  for (const LakeVariant& variant : variants) {
    SCOPED_TRACE("lake seed " + std::to_string(variant.seed));
    datagen::LakeSpec spec;
    spec.seed = variant.seed;
    spec.rows = variant.rows;
    spec.joinable_tables = variant.joinable_tables;
    spec.total_features = variant.total_features;
    spec.star_schema = variant.star_schema;
    datagen::BuiltLake built = datagen::BuildLake(spec);
    auto drg = BuildDrgFromKfk(built.lake);
    ASSERT_TRUE(drg.ok());

    // Discovery: ranked paths, scores and features must be byte-identical.
    AutoFeat fast_engine(&built.lake, &*drg,
                         VariantConfig(variant, /*fast_path=*/true));
    AutoFeat legacy_engine(&built.lake, &*drg,
                           VariantConfig(variant, /*fast_path=*/false));
    auto fast =
        fast_engine.DiscoverFeatures(built.base_table, built.label_column);
    auto legacy =
        legacy_engine.DiscoverFeatures(built.base_table, built.label_column);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(legacy.ok());
    EXPECT_GT(fast->ranked.size(), 0u);
    EXPECT_EQ(RankedFingerprint(*fast), RankedFingerprint(*legacy));

    // End to end: same best path, same augmented shape, same accuracy.
    auto fast_aug = fast_engine.Augment(built.base_table, built.label_column,
                                        ml::ModelKind::kKnn);
    auto legacy_aug = legacy_engine.Augment(
        built.base_table, built.label_column, ml::ModelKind::kKnn);
    ASSERT_TRUE(fast_aug.ok());
    ASSERT_TRUE(legacy_aug.ok());
    EXPECT_EQ(fast_aug->accuracy, legacy_aug->accuracy);
    EXPECT_EQ(fast_aug->augmented.num_columns(),
              legacy_aug->augmented.num_columns());
    EXPECT_EQ(fast_aug->augmented.ColumnNames(),
              legacy_aug->augmented.ColumnNames());
    std::ostringstream fast_path_str, legacy_path_str;
    for (const JoinStep& s : fast_aug->best_path.path.steps) {
      fast_path_str << s.from_node << "." << s.from_column << ">" << s.to_node
                    << ";";
    }
    for (const JoinStep& s : legacy_aug->best_path.path.steps) {
      legacy_path_str << s.from_node << "." << s.from_column << ">"
                      << s.to_node << ";";
    }
    EXPECT_EQ(fast_path_str.str(), legacy_path_str.str());
  }
}

}  // namespace
}  // namespace autofeat
