// Tests for the qa lake fuzzer and campaign runner: generation is a pure
// function of the seed, the adversarial traits actually occur, the builtin
// invariant registry holds over a seed range, and the runner's report is
// identical at any thread count.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "qa/fuzz_runner.h"
#include "qa/invariants.h"
#include "qa/lake_fuzzer.h"

namespace autofeat::qa {
namespace {

TEST(LakeFuzzerTest, GenerationIsDeterministic) {
  LakeFuzzer fuzzer;
  for (uint64_t seed : {1u, 7u, 23u, 101u}) {
    FuzzedLake a = fuzzer.Generate(seed);
    FuzzedLake b = fuzzer.Generate(seed);
    EXPECT_TRUE(FuzzedLakesEqual(a, b)) << "seed " << seed;
  }
}

TEST(LakeFuzzerTest, DifferentSeedsProduceDifferentLakes) {
  LakeFuzzer fuzzer;
  size_t distinct = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    if (!FuzzedLakesEqual(fuzzer.Generate(seed), fuzzer.Generate(seed + 100))) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 7u);  // near-certain divergence, allow one collision
}

TEST(LakeFuzzerTest, BaseTableAlwaysHasLabel) {
  LakeFuzzer fuzzer;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    FuzzedLake fz = fuzzer.Generate(seed);
    auto base = fz.lake.GetTable(fz.base_table);
    ASSERT_TRUE(base.ok()) << "seed " << seed;
    EXPECT_TRUE((*base)->HasColumn(fz.label_column)) << "seed " << seed;
    EXPECT_GE((*base)->num_rows(), 1u) << "seed " << seed;
  }
}

// The generator must actually hit its advertised adversarial corners.
TEST(LakeFuzzerTest, AdversarialTraitsAllOccur) {
  LakeFuzzer fuzzer;
  bool saw_empty_table = false;
  bool saw_single_row = false;
  bool saw_all_null_column = false;
  bool saw_null_key = false;
  bool saw_duplicate_key = false;
  bool saw_string_key = false;
  bool saw_chain = false;  // satellite whose parent is another satellite
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    FuzzedLake fz = fuzzer.Generate(seed);
    for (const Table& table : fz.lake.tables()) {
      if (table.num_rows() == 0) saw_empty_table = true;
      if (table.num_rows() == 1) saw_single_row = true;
      for (size_t c = 0; c < table.num_columns(); ++c) {
        const Column& col = table.column(c);
        if (col.size() > 0 && col.null_count() == col.size()) {
          saw_all_null_column = true;
        }
      }
      if (table.HasColumn("k")) {
        auto key = table.GetColumn("k");
        ASSERT_TRUE(key.ok());
        const Column& col = **key;
        if (col.type() == DataType::kString) saw_string_key = true;
        std::set<std::string> keys;
        for (size_t i = 0; i < col.size(); ++i) {
          if (col.IsNull(i)) {
            saw_null_key = true;
          } else if (!keys.insert(col.KeyAt(i)).second) {
            saw_duplicate_key = true;
          }
        }
      }
    }
    for (const KfkConstraint& kfk : fz.lake.kfk_constraints()) {
      if (kfk.from_table != fz.base_table) saw_chain = true;
    }
  }
  EXPECT_TRUE(saw_empty_table);
  EXPECT_TRUE(saw_single_row);
  EXPECT_TRUE(saw_all_null_column);
  EXPECT_TRUE(saw_null_key);
  EXPECT_TRUE(saw_duplicate_key);
  EXPECT_TRUE(saw_string_key);
  EXPECT_TRUE(saw_chain);
}

TEST(FuzzRunnerTest, BuiltinInvariantsHoldOverSeedRange) {
  FuzzOptions options;
  options.seed_start = 1;
  options.num_seeds = 12;
  options.threads = 1;
  options.repro_dir.clear();  // no disk output from unit tests
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->seeds_run, 12u);
  EXPECT_GE(report->invariants_per_seed, 10u);  // the tentpole's >=10 floor
}

TEST(FuzzRunnerTest, ReportIsThreadCountInvariant) {
  // The planted invariant guarantees failures, so this exercises the
  // failure-merge path (the interesting one) across thread counts.
  FuzzOptions options;
  options.seed_start = 1;
  options.num_seeds = 6;
  options.include_planted = true;
  options.invariant_filter = {"planted.no_nulls"};
  options.shrink = false;  // shape checked by the shrinker tests
  options.repro_dir.clear();
  options.threads = 1;
  auto sequential = RunFuzz(options);
  ASSERT_TRUE(sequential.ok());
  EXPECT_FALSE(sequential->ok());
  for (size_t threads : {size_t{4}, size_t{0}}) {
    options.threads = threads;
    auto parallel = RunFuzz(options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(sequential->Summary(), parallel->Summary())
        << "threads=" << threads;
  }
}

TEST(FuzzRunnerTest, UnknownInvariantFilterIsAnError) {
  FuzzOptions options;
  options.num_seeds = 1;
  options.invariant_filter = {"no.such.invariant"};
  auto report = RunFuzz(options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(FuzzRunnerTest, CampaignMetricsAreRecorded) {
  obs::MetricsRegistry metrics;
  FuzzOptions options;
  options.num_seeds = 3;
  options.metrics = &metrics;
  options.repro_dir.clear();
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(metrics.CounterValue("qa.seeds"), 3u);
  EXPECT_EQ(metrics.CounterValue("qa.checks"), report->checks_run);
}

}  // namespace
}  // namespace autofeat::qa
