#include "core/autofeat.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <unordered_set>
#include <utility>

#include "core/ranking.h"
#include "fs/streaming.h"
#include "relational/join.h"
#include "relational/join_index.h"
#include "relational/sampling.h"
#include "util/timer.h"

namespace autofeat {

namespace {

// Column names present in `joined` but not in `before` — the features the
// latest join appended.
std::vector<std::string> AppendedColumns(const Table& before,
                                         const Table& joined) {
  std::vector<std::string> out;
  for (const auto& name : joined.ColumnNames()) {
    if (!before.HasColumn(name)) out.push_back(name);
  }
  return out;
}

StreamingFeatureSelector::Options MakeSelectorOptions(
    const AutoFeatConfig& config) {
  StreamingFeatureSelector::Options options;
  options.relevance.kind = config.relevance;
  options.relevance.top_k = config.kappa;
  options.relevance.seed = config.seed;
  options.redundancy.kind = config.redundancy;
  options.use_relevance = config.use_relevance;
  options.use_redundancy = config.use_redundancy;
  return options;
}

}  // namespace

Result<DiscoveryResult> AutoFeat::DiscoverFeatures(
    const std::string& base_table, const std::string& label_column) {
  Timer total_timer;
  obs::ScopedSpan discover_span(tracer_, "discover");
  // All discovery counters are incremented from the coordinating thread
  // (phases 1 and 3, never inside ParallelMap workers), so their values —
  // and the deterministic digest — are identical at any thread count.
  obs::Counter* m_candidates =
      obs::GetCounter(metrics_, "discovery.candidates_scored");
  obs::Counter* m_materialised =
      obs::GetCounter(metrics_, "discovery.states_materialised");
  obs::Counter* m_view_scored =
      obs::GetCounter(metrics_, "discovery.view_scored");
  obs::Counter* m_pruned_infeasible =
      obs::GetCounter(metrics_, "discovery.pruned_infeasible");
  obs::Counter* m_pruned_quality =
      obs::GetCounter(metrics_, "discovery.pruned_quality");
  obs::Counter* m_pruned_redundant =
      obs::GetCounter(metrics_, "discovery.pruned_redundant");
  obs::Counter* m_ranked = obs::GetCounter(metrics_, "discovery.ranked_paths");
  obs::Histogram* m_frontier =
      obs::GetHistogram(metrics_, "discovery.frontier_size");
  obs::Gauge* m_frontier_peak =
      obs::GetGauge(metrics_, "discovery.frontier_peak");

  AF_ASSIGN_OR_RETURN(const Table* base_full, lake_->GetTable(base_table));
  if (!base_full->HasColumn(label_column)) {
    return Status::KeyError("label column '" + label_column +
                            "' missing from base table " + base_table);
  }
  AF_ASSIGN_OR_RETURN(size_t base_node, drg_->NodeId(base_table));
  Rng rng(config_.seed);

  // Fast path: every (right table, key column) the DRG can reach is
  // interned once up front, in parallel, and shared by all candidates.
  if (join_cache_ptr_ != nullptr) {
    obs::ScopedSpan span(tracer_, "discover.prewarm");
    join_cache_ptr_->Prewarm(*drg_, pool_.get());
  }

  // Stratified sampling speeds up feature selection without biasing the
  // label distribution (§VI); model training later uses the full data.
  Table base_sampled = *base_full;
  if (config_.sample_rows > 0 && base_full->num_rows() > config_.sample_rows) {
    obs::ScopedSpan span(tracer_, "discover.stratified_sample");
    AF_ASSIGN_OR_RETURN(
        base_sampled,
        StratifiedSample(*base_full, label_column, config_.sample_rows, &rng));
  }

  StreamingFeatureSelector selector(MakeSelectorOptions(config_));
  double fs_seconds = 0.0;
  // Left joins preserve the base rows in order, so every candidate's view
  // shares one label representation, prepared exactly once.
  std::vector<double> label_numeric;
  std::vector<int> label_codes;
  {
    obs::ScopedSpan span(tracer_, "discover.seed_base_features");
    Timer t;
    AF_ASSIGN_OR_RETURN(FeatureView base_view,
                        FeatureView::FromTable(base_sampled, label_column));
    selector.SeedWithBaseFeatures(base_view);
    label_numeric = base_view.label_numeric();
    label_codes = base_view.label_codes();
    fs_seconds += t.ElapsedSeconds();
  }
  obs::ScopedSpan bfs_span(tracer_, "discover.bfs");

  // BFS frontier of partial join paths, each carrying its (sampled) join
  // result so transitive joins extend the intermediate table (§IV-B).
  struct State {
    JoinPath path;
    Table table;
    double score = 0.0;
    std::vector<FeatureScore> selected;
  };
  std::deque<State> frontier;
  frontier.push_back(State{JoinPath{}, std::move(base_sampled), 0.0, {}});

  DiscoveryResult result;
  // Tables reached by any path so far (drives the beam's novelty order).
  std::vector<bool> node_visited(drg_->num_nodes(), false);
  node_visited[base_node] = true;
  // Signatures of (visited node set, terminal) used for path dedup.
  std::unordered_set<std::string> seen_signatures;
  auto signature = [&](const JoinPath& path) {
    std::vector<size_t> nodes;
    nodes.reserve(path.steps.size());
    for (const auto& s : path.steps) nodes.push_back(s.to_node);
    size_t terminal = nodes.empty() ? base_node : nodes.back();
    std::sort(nodes.begin(), nodes.end());
    std::string sig;
    for (size_t n : nodes) {
      sig += std::to_string(n);
      sig += ',';
    }
    sig += ':';
    sig += std::to_string(terminal);
    return sig;
  };

  // Monotone counter over evaluated candidate edges; every candidate's join
  // draws from an RNG stream derived from (seed, counter) so the result does
  // not depend on how many threads interleaved their draws.
  uint64_t candidate_counter = 0;

  // Eviction-schedule stress (qa/bench): between BFS rounds, drop cache
  // entries so later rounds exercise rebuild-on-miss. Runs on the
  // coordinating thread with a counter-derived draw, so the schedule is a
  // pure function of the seed — and the invariant that results do not
  // depend on it is checked by qa's cache.eviction_oblivious.
  uint64_t stress_round = 0;
  auto stress_evict = [&] {
    if (join_cache_ptr_ == nullptr) return;
    switch (config_.eviction_stress) {
      case EvictionStress::kNone:
        return;
      case EvictionStress::kEvictAll:
        join_cache_ptr_->EvictAll();
        return;
      case EvictionStress::kRandom:
        join_cache_ptr_->EvictRandomHalf(
            DeriveSeed(config_.seed, 0xE71C7ULL + stress_round++));
        return;
    }
  };

  while (!frontier.empty() && result.paths_explored < config_.max_paths) {
    obs::Record(m_frontier, frontier.size());
    obs::UpdateMax(m_frontier_peak, frontier.size());
    State state = std::move(frontier.front());
    frontier.pop_front();
    if (state.path.length() >= config_.max_hops) continue;
    size_t tail = state.path.Terminal(base_node);

    // Beam pruning: on dense discovered graphs expand only a bounded set
    // of neighbours per path — never-visited tables first (they are the
    // only way to reach new features), then by similarity. On KFK trees
    // every child is unvisited, so the beam changes nothing there.
    std::vector<size_t> neighbors = drg_->Neighbors(tail);
    if (config_.beam_width > 0 && neighbors.size() > config_.beam_width) {
      auto weight = [&](size_t node) {
        double best = 0.0;
        for (const auto& e : drg_->EdgesBetween(tail, node)) {
          best = std::max(best, e.weight);
        }
        return best;
      };
      std::stable_sort(neighbors.begin(), neighbors.end(),
                       [&](size_t a, size_t b) {
                         bool fresh_a = !node_visited[a];
                         bool fresh_b = !node_visited[b];
                         if (fresh_a != fresh_b) return fresh_a;
                         return weight(a) > weight(b);
                       });
      neighbors.resize(config_.beam_width);
    }

    // Phase 1 — collect this state's candidate edges. The gates here are
    // cheap but order-sensitive (dedup signatures, the max_paths budget), so
    // they run sequentially, exactly as the legacy loop ordered them.
    struct Candidate {
      JoinStep edge;
      size_t neighbor = 0;
      const Table* right = nullptr;
      uint64_t rng_seed = 0;
    };
    std::vector<Candidate> candidates;
    for (size_t neighbor : neighbors) {
      if (neighbor == base_node || state.path.ContainsNode(neighbor)) continue;
      auto table_result = lake_->GetTable(drg_->NodeName(neighbor));
      if (!table_result.ok()) continue;
      const Table* right = *table_result;
      // Candidate tables must not carry the label (left-join assumption of
      // §IV-B: Y only lives in the base table).
      if (right->HasColumn(label_column)) continue;

      // Similarity-score pruning keeps only the best join columns (§IV-C).
      std::vector<JoinStep> edges =
          config_.prune_join_columns ? drg_->BestEdgesBetween(tail, neighbor)
                                     : drg_->EdgesBetween(tail, neighbor);
      for (const JoinStep& edge : edges) {
        if (result.paths_explored >= config_.max_paths) break;
        // Never join on the target column: a label-valued join key leaks
        // the label into the appended features.
        if (edge.from_column == label_column) continue;
        if (config_.dedup_node_sets &&
            !seen_signatures.insert(signature(state.path.Extend(edge)))
                 .second) {
          continue;  // Same table set and terminal already explored.
        }
        ++result.paths_explored;

        if (!state.table.HasColumn(edge.from_column)) {
          ++result.paths_pruned_infeasible;
          obs::Increment(m_pruned_infeasible);
          continue;
        }
        candidates.push_back(
            Candidate{edge, neighbor, right,
                      DeriveSeed(config_.seed, candidate_counter++)});
      }
    }

    // Phase 2 — evaluate every candidate concurrently: join, completeness,
    // feature-view construction and the (stateless) relevance stage. Tasks
    // only read shared state; each writes its own Eval slot.
    //
    // With the join fast path the candidate is never materialised here: the
    // cached key index yields a left-row -> right-row mapping, and
    // completeness + the relevance view are computed through gathered views
    // of only the appended columns. The legacy path (join_fast_path off)
    // keeps the pre-interning string-keyed join + full materialisation as
    // the differential baseline for bench/join_path_eval.
    struct Eval {
      Status status;               // FeatureView failure, surfaced in order
      bool infeasible = false;     // join failed or matched no rows
      bool low_quality = false;    // completeness < tau
      Table joined;                        // legacy path only
      std::vector<uint32_t> right_rows;    // fast path: composed row mapping
      std::vector<std::string> appended;   // fast path: resolved new names
      std::optional<FeatureView> view;
      std::vector<FeatureScore> relevant;
      double fs_seconds = 0.0;
    };
    obs::TaskContext bfs_ctx = obs::CaptureTaskContext(
        candidates.empty() ? nullptr : tracer_);
    std::vector<Eval> evals = ParallelMapWith<Eval>(
        config_.scheduler, pool_.get(), candidates.size(), /*grain=*/1,
        [&](size_t c) {
          obs::ScopedWorkerSpan task_span(bfs_ctx, "bfs.candidate");
          const Candidate& cand = candidates[c];
          Eval ev;
          if (join_cache_ptr_ != nullptr) {
            auto index = join_cache_ptr_->GetOrBuild(
                drg_->NodeName(cand.neighbor), cand.edge.to_column);
            auto lkey = state.table.GetColumn(cand.edge.from_column);
            if (!index.ok() || !lkey.ok()) {
              ev.infeasible = true;
              return ev;
            }
            JoinRowMap map = MapLeftJoin(**lkey, **index);
            if (map.stats.matched_rows == 0) {
              ev.infeasible = true;
              return ev;
            }
            // Data-quality pruning straight through the mapping (§IV-C):
            // a null in an appended column is an unmatched left row or a
            // right-side null.
            ev.appended = ResolveAppendedNames(state.table, *cand.right);
            size_t cells = ev.appended.size() * map.right_rows.size();
            size_t nulls = 0;
            for (size_t col = 0; col < cand.right->num_columns(); ++col) {
              nulls += GatherNullCount(cand.right->column(col),
                                       map.right_rows);
            }
            double completeness =
                cells == 0 ? 1.0
                           : 1.0 - static_cast<double>(nulls) /
                                       static_cast<double>(cells);
            if (completeness < config_.tau) {
              ev.low_quality = true;
              return ev;
            }
            Timer t;
            std::vector<std::vector<double>> numeric;
            numeric.reserve(cand.right->num_columns());
            for (size_t col = 0; col < cand.right->num_columns(); ++col) {
              numeric.push_back(
                  GatherNumeric(cand.right->column(col), map.right_rows));
            }
            auto view = FeatureView::FromColumns(ev.appended,
                                                 std::move(numeric),
                                                 label_numeric, label_codes);
            if (!view.ok()) {
              ev.status = view.status();
              return ev;
            }
            std::vector<size_t> all_indices(view->num_features());
            for (size_t i = 0; i < all_indices.size(); ++i) all_indices[i] = i;
            ev.relevant = selector.ScoreBatchRelevance(*view, all_indices);
            ev.fs_seconds = t.ElapsedSeconds();
            ev.view = std::move(*view);
            ev.right_rows = std::move(map.right_rows);
            return ev;
          }
          Rng task_rng(cand.rng_seed);
          auto joined =
              JoinStringKeyed(state.table, cand.edge.from_column, *cand.right,
                              cand.edge.to_column, &task_rng);
          if (!joined.ok() || joined->stats.matched_rows == 0) {
            ev.infeasible = true;
            return ev;
          }
          // Data-quality pruning: completeness of the appended columns must
          // reach tau (§IV-C).
          std::vector<std::string> new_columns =
              AppendedColumns(state.table, joined->table);
          auto completeness = JoinCompleteness(joined->table, new_columns);
          if (!completeness.ok()) {
            ev.status = completeness.status();
            return ev;
          }
          if (*completeness < config_.tau) {
            ev.low_quality = true;
            return ev;
          }
          Timer t;
          auto view = FeatureView::FromTable(joined->table, label_column,
                                             new_columns);
          if (!view.ok()) {
            ev.status = view.status();
            return ev;
          }
          std::vector<size_t> all_indices(view->num_features());
          for (size_t i = 0; i < all_indices.size(); ++i) all_indices[i] = i;
          ev.relevant = selector.ScoreBatchRelevance(*view, all_indices);
          ev.fs_seconds = t.ElapsedSeconds();
          ev.view = std::move(*view);
          ev.joined = std::move(joined->table);
          return ev;
        });

    // Phase 3 — merge in candidate (edge) order. The redundancy stage
    // mutates R_sel, so it stays sequential here; because the merge order
    // equals the legacy evaluation order, the ranked output is identical.
    obs::Increment(m_candidates, candidates.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      Eval& ev = evals[c];
      if (!ev.status.ok()) return ev.status;
      if (ev.infeasible) {
        ++result.paths_pruned_infeasible;
        obs::Increment(m_pruned_infeasible);
        continue;
      }
      if (ev.low_quality) {
        ++result.paths_pruned_quality;
        obs::Increment(m_pruned_quality);
        continue;
      }
      obs::Increment(m_view_scored);
      fs_seconds += ev.fs_seconds;
      Timer t;
      StreamingFeatureSelector::BatchResult batch =
          selector.CommitBatch(*ev.view, std::move(ev.relevant));
      fs_seconds += t.ElapsedSeconds();

      State next;
      next.path = state.path.Extend(candidates[c].edge);
      next.score =
          state.score + ComputeRankingScore(batch.relevant, batch.selected);
      next.selected = state.selected;
      next.selected.insert(next.selected.end(), batch.selected.begin(),
                           batch.selected.end());
      // Paths whose batch was all-irrelevant or all-redundant are not
      // ranked but stay in the frontier: they may be the gateway to
      // relevant multi-hop features (§V-A).
      if (!batch.selected.empty()) {
        result.ranked.push_back(
            RankedPath{next.path, next.score, next.selected});
        obs::Increment(m_ranked);
      } else {
        obs::Increment(m_pruned_redundant);
      }
      node_visited[candidates[c].neighbor] = true;
      // Leaf states (at the hop limit) can never expand; skip carrying
      // their join result into the frontier. Late materialisation: on the
      // fast path this is the only place a candidate's join becomes a real
      // Table — pruned candidates and hop-limit leaves never pay for one.
      if (next.path.length() < config_.max_hops) {
        obs::Increment(m_materialised);
        if (join_cache_ptr_ != nullptr) {
          Table joined = state.table;
          const Table& right = *candidates[c].right;
          for (size_t col = 0; col < right.num_columns(); ++col) {
            AF_RETURN_NOT_OK(joined.AddColumn(
                ev.appended[col],
                GatherColumn(right.column(col), ev.right_rows)));
          }
          next.table = std::move(joined);
        } else {
          next.table = std::move(ev.joined);
        }
        frontier.push_back(std::move(next));
      }
    }
    stress_evict();
  }

  // Descending score; stable keeps BFS (shortest-first) order for ties.
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const RankedPath& a, const RankedPath& b) {
                     return a.score > b.score;
                   });
  result.feature_selection_seconds = fs_seconds;
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

Result<Table> AutoFeat::MaterializeAugmentedTable(
    const std::string& base_table, const RankedPath& ranked,
    const std::string& label_column) {
  AF_ASSIGN_OR_RETURN(const Table* base, lake_->GetTable(base_table));
  if (!base->HasColumn(label_column)) {
    return Status::KeyError("label column '" + label_column +
                            "' missing from base table " + base_table);
  }
  Rng rng(config_.seed);

  Table current = *base;
  for (const JoinStep& step : ranked.path.steps) {
    const std::string& right_name = drg_->NodeName(step.to_node);
    AF_ASSIGN_OR_RETURN(const Table* right, lake_->GetTable(right_name));
    if (!current.HasColumn(step.from_column)) {
      return Status::KeyError("join column vanished during materialisation: " +
                              step.from_column);
    }
    JoinResult joined;
    if (join_cache_ptr_ != nullptr) {
      // The shared cache means the full-data materialisation picks the same
      // per-key representatives the discovery phase scored (rebuilds after
      // eviction reproduce them exactly).
      AF_ASSIGN_OR_RETURN(JoinIndexCache::IndexPin index,
                          join_cache_ptr_->GetOrBuild(right_name, step.to_column));
      AF_ASSIGN_OR_RETURN(
          joined, LeftJoinWithIndex(current, step.from_column, *right, *index));
    } else {
      AF_ASSIGN_OR_RETURN(joined, JoinStringKeyed(current, step.from_column,
                                                  *right, step.to_column,
                                                  &rng));
    }
    current = std::move(joined.table);
  }

  // Keep base columns (including the label) plus the selected features.
  std::vector<std::string> keep = base->ColumnNames();
  std::unordered_set<std::string> seen(keep.begin(), keep.end());
  for (const auto& fs : ranked.selected_features) {
    if (seen.insert(fs.name).second && current.HasColumn(fs.name)) {
      keep.push_back(fs.name);
    }
  }
  AF_ASSIGN_OR_RETURN(Table augmented, current.SelectColumns(keep));
  augmented.set_name(base->name() + "_augmented");
  return augmented;
}

Result<AugmentationResult> AutoFeat::Augment(const std::string& base_table,
                                             const std::string& label_column,
                                             ml::ModelKind model) {
  Timer total_timer;
  obs::ScopedSpan augment_span(tracer_, "augment");
  AugmentationResult out;
  AF_ASSIGN_OR_RETURN(out.discovery,
                      DiscoverFeatures(base_table, label_column));
  obs::ScopedSpan eval_span(tracer_, "augment.evaluate");

  ml::TrainerOptions trainer_options;
  trainer_options.seed = config_.seed;

  AF_ASSIGN_OR_RETURN(const Table* base, lake_->GetTable(base_table));
  size_t k = std::min(config_.top_k_paths, out.discovery.ranked.size());
  obs::Increment(obs::GetCounter(metrics_, "evaluation.paths_evaluated"), k);
  obs::Increment(obs::GetCounter(metrics_, "evaluation.models_trained"),
                 k + 1);

  // Task 0 trains on the bare base table (the fallback when no rankable
  // path exists); task i > 0 materialises and trains ranked path i-1. The
  // tasks share nothing mutable — every one builds its own tables and seeds
  // its own generators — so they run concurrently and merge in index order.
  struct PathEval {
    Status status;
    Table table;
    double accuracy = 0.0;
  };
  obs::TaskContext eval_ctx = obs::CaptureTaskContext(tracer_);
  std::vector<PathEval> evals = ParallelMapWith<PathEval>(
      config_.scheduler, pool_.get(), k + 1, /*grain=*/1, [&](size_t i) {
        obs::ScopedWorkerSpan task_span(eval_ctx, "evaluate.path");
        PathEval ev;
        if (i == 0) {
          auto eval =
              ml::TrainAndEvaluate(*base, label_column, model,
                                   trainer_options);
          if (!eval.ok()) {
            ev.status = eval.status();
            return ev;
          }
          ev.table = *base;
          ev.accuracy = eval->accuracy;
          return ev;
        }
        auto augmented = MaterializeAugmentedTable(
            base_table, out.discovery.ranked[i - 1], label_column);
        if (!augmented.ok()) {
          ev.status = augmented.status();
          return ev;
        }
        auto eval = ml::TrainAndEvaluate(*augmented, label_column, model,
                                         trainer_options);
        if (!eval.ok()) {
          ev.status = eval.status();
          return ev;
        }
        ev.table = std::move(*augmented);
        ev.accuracy = eval->accuracy;
        return ev;
      });

  for (const PathEval& ev : evals) {
    if (!ev.status.ok()) return ev.status;
  }
  out.augmented = std::move(evals[0].table);
  out.accuracy = evals[0].accuracy;
  for (size_t i = 1; i < evals.size(); ++i) {
    if (evals[i].accuracy > out.accuracy) {
      out.accuracy = evals[i].accuracy;
      out.augmented = std::move(evals[i].table);
      out.best_path = out.discovery.ranked[i - 1];
    }
  }
  out.total_seconds = total_timer.ElapsedSeconds();
  return out;
}

}  // namespace autofeat
