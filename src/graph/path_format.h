// Human-readable rendering of join paths (used by examples, benches and
// logging).

#ifndef AUTOFEAT_GRAPH_PATH_FORMAT_H_
#define AUTOFEAT_GRAPH_PATH_FORMAT_H_

#include <string>

#include "graph/drg.h"
#include "graph/join_path.h"

namespace autofeat {

/// Formats one step as "table.column -> table.column".
std::string FormatJoinStep(const DatasetRelationGraph& drg,
                           const JoinStep& step);

/// Formats a path as "base.col -> t1.col -> t2.col ..." in the paper's
/// notation. An empty path renders as "<base>".
std::string FormatJoinPath(const DatasetRelationGraph& drg,
                           const JoinPath& path);

}  // namespace autofeat

#endif  // AUTOFEAT_GRAPH_PATH_FORMAT_H_
