// Differential join assertions shared by the join test suites: the
// interned-key Join must be byte-identical to the string-keyed reference
// path for every key type and option combination. (Extracted from
// join_index_test.cc; the qa invariant join.interned_matches_reference runs
// the same oracle over fuzzed lakes.)

#ifndef AUTOFEAT_TESTS_SUPPORT_JOIN_DIFFERENTIAL_H_
#define AUTOFEAT_TESTS_SUPPORT_JOIN_DIFFERENTIAL_H_

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relational/join.h"

namespace autofeat::testsupport {

// Runs the interned-key Join and the string-keyed reference join with the
// same RNG seed (both consume identical streams by contract) and asserts
// byte-identical tables and stats.
inline void ExpectJoinsAgree(const Table& left, const std::string& lkey,
                             const Table& right, const std::string& rkey,
                             const JoinOptions& options) {
  Rng rng_fast(17), rng_ref(17);
  auto fast = Join(left, lkey, right, rkey, &rng_fast, options);
  auto ref = JoinStringKeyed(left, lkey, right, rkey, &rng_ref, options);
  ASSERT_EQ(fast.ok(), ref.ok());
  if (!fast.ok()) return;
  EXPECT_EQ(fast->stats.matched_rows, ref->stats.matched_rows);
  EXPECT_EQ(fast->stats.total_rows, ref->stats.total_rows);
  EXPECT_EQ(fast->stats.right_distinct_keys, ref->stats.right_distinct_keys);
  EXPECT_TRUE(fast->table.Equals(ref->table))
      << "interned join diverged from string-keyed join";
}

inline void ExpectJoinsAgreeAllOptions(const Table& left,
                                       const std::string& lkey,
                                       const Table& right,
                                       const std::string& rkey) {
  for (bool normalize : {true, false}) {
    JoinOptions options;
    options.normalize_cardinality = normalize;
    ExpectJoinsAgree(left, lkey, right, rkey, options);
  }
}

// Element-wise equality with NaN == NaN (unmatched rows surface as NaN in
// numeric views, and NaN never compares equal to itself).
inline void ExpectNumericViewsEqual(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) && std::isnan(b[i])) continue;
    EXPECT_EQ(a[i], b[i]) << "at index " << i;
  }
}

}  // namespace autofeat::testsupport

#endif  // AUTOFEAT_TESTS_SUPPORT_JOIN_DIFFERENTIAL_H_
