// Module-level differential tests for the SIMD kernel rewrites: the public
// entry points (information measures, MinHash signatures, join gathers) are
// held against the scalar reference implementations they replaced.
// Integer-domain kernels must be bit-exact; the entropy measures go through
// floating-point summation whose lane order differs, so they compare with
// tight epsilons.

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "discovery/lsh_index.h"
#include "discovery/sketch_cache.h"
#include "relational/join_index.h"
#include "stats/discretize.h"
#include "stats/information.h"
#include "table/column.h"
#include "util/rng.h"

namespace autofeat {
namespace {

// Random code vector: `missing_rate` of kMissingBin, the rest uniform in
// [lo, lo + range).
std::vector<int> RandomCodes(Rng* rng, size_t n, int lo, int range,
                             double missing_rate) {
  std::vector<int> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng->Bernoulli(missing_rate)
               ? kMissingBin
               : static_cast<int>(rng->UniformInt(lo, lo + range - 1));
  }
  return x;
}

class InformationDifferentialTest : public ::testing::Test {
 protected:
  // Covers the dense path (small ranges, straddling zero), the dense-limit
  // boundary (63/64/65), and the hash fallback (wide and negative ranges).
  struct Shape {
    int lo;
    int range;
    double missing;
  };
  const std::vector<Shape> shapes_ = {
      {0, 3, 0.0},    {0, 8, 0.2},     {-5, 12, 0.1},  {5, 33, 0.3},
      {0, 63, 0.05},  {0, 64, 0.05},   {0, 65, 0.05},  {-1000, 400, 0.1},
      {100000, 9000, 0.2},
  };
  const std::vector<size_t> sizes_ = {0, 1, 7, 8, 9, 100, 1537};
};

TEST_F(InformationDifferentialTest, EntropyMatchesReference) {
  Rng rng(101);
  for (const Shape& s : shapes_) {
    for (size_t n : sizes_) {
      std::vector<int> x = RandomCodes(&rng, n, s.lo, s.range, s.missing);
      double got = Entropy(x);
      double want = reference::Entropy(x);
      EXPECT_NEAR(want, got, 1e-12)
          << "n=" << n << " lo=" << s.lo << " range=" << s.range;
    }
  }
}

TEST_F(InformationDifferentialTest, PairMeasuresMatchReference) {
  Rng rng(103);
  for (const Shape& sx : shapes_) {
    for (const Shape& sy : shapes_) {
      size_t n = 600;
      std::vector<int> x = RandomCodes(&rng, n, sx.lo, sx.range, sx.missing);
      std::vector<int> y = RandomCodes(&rng, n, sy.lo, sy.range, sy.missing);
      EXPECT_NEAR(reference::JointEntropy(x, y), JointEntropy(x, y), 1e-12);
      EXPECT_NEAR(reference::MutualInformation(x, y), MutualInformation(x, y),
                  1e-12);
      EXPECT_NEAR(reference::MutualInformationCorrected(x, y),
                  MutualInformationCorrected(x, y), 1e-12);
      EXPECT_NEAR(reference::SymmetricalUncertainty(x, y),
                  SymmetricalUncertainty(x, y), 1e-12);
    }
  }
}

TEST_F(InformationDifferentialTest, CorrelatedPairsMatchReference) {
  // Dependent codes (y a noisy function of x) — exercises joint tables with
  // strong diagonal structure rather than uniform fill.
  Rng rng(107);
  for (int k : {4, 16, 63}) {
    size_t n = 2000;
    std::vector<int> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = static_cast<int>(rng.UniformIndex(static_cast<size_t>(k)));
      y[i] = rng.Bernoulli(0.8)
                 ? x[i]
                 : static_cast<int>(rng.UniformIndex(static_cast<size_t>(k)));
      if (rng.Bernoulli(0.05)) x[i] = kMissingBin;
      if (rng.Bernoulli(0.05)) y[i] = kMissingBin;
    }
    EXPECT_NEAR(reference::MutualInformation(x, y), MutualInformation(x, y),
                1e-12);
    EXPECT_NEAR(reference::SymmetricalUncertainty(x, y),
                SymmetricalUncertainty(x, y), 1e-12);
  }
}

TEST_F(InformationDifferentialTest, ExactZeroEntropyCases) {
  // These are EXPECT_DOUBLE_EQ-level contracts from information_test: the
  // optimised path must keep them exact, not epsilon-close.
  EXPECT_DOUBLE_EQ(0.0, Entropy({}));
  EXPECT_DOUBLE_EQ(0.0, Entropy({3, 3, 3}));
  EXPECT_DOUBLE_EQ(0.0, Entropy({kMissingBin, kMissingBin}));
  EXPECT_DOUBLE_EQ(0.0, SymmetricalUncertainty({1, 1}, {2, 2}));
  // Constant column with a huge code value: falls into the dense path via
  // offsetting (range 1), same exact-zero contract.
  std::vector<int> constant(51, 1000000);
  EXPECT_DOUBLE_EQ(0.0, Entropy(constant));
}

TEST_F(InformationDifferentialTest, EntropyAgreesWithPairMachinery) {
  // The single-vector fast path (satellite fix) must agree with what
  // Entropy used to compute via ComputePairEntropies(x, x).
  Rng rng(109);
  for (const Shape& s : shapes_) {
    std::vector<int> x = RandomCodes(&rng, 913, s.lo, s.range, s.missing);
    EXPECT_NEAR(reference::Entropy(x), Entropy(x), 1e-12);
    // H(X, X) == H(X) — the identity the old implementation leaned on.
    EXPECT_NEAR(JointEntropy(x, x), Entropy(x), 1e-12);
  }
}

TEST(MinHashDifferentialTest, SignatureBitExact) {
  Rng rng(211);
  for (size_t num_values : {1, 2, 7, 100}) {
    for (size_t num_hashes : {1, 2, 3, 4, 5, 8, 64, 65}) {
      ColumnSketch sketch;
      sketch.num_distinct = num_values;
      for (size_t v = 0; v < num_values; ++v) {
        sketch.values.insert("value_" +
                             std::to_string(rng.UniformInt(0, 1 << 20)));
      }
      MinHashSignature got = ComputeMinHashSignature(sketch, num_hashes);
      MinHashSignature want =
          ComputeMinHashSignatureReference(sketch, num_hashes);
      EXPECT_EQ(want.mins, got.mins)
          << "values=" << num_values << " hashes=" << num_hashes;
    }
  }
}

class GatherDifferentialTest : public ::testing::Test {
 protected:
  std::vector<uint32_t> RandomRows(Rng* rng, size_t n, size_t src_size,
                                   double miss_rate) {
    std::vector<uint32_t> rows(n);
    for (size_t i = 0; i < n; ++i) {
      rows[i] = rng->Bernoulli(miss_rate)
                    ? kNoMatchRow
                    : static_cast<uint32_t>(rng->UniformIndex(src_size));
    }
    return rows;
  }
};

TEST_F(GatherDifferentialTest, AllValidDoubleColumnBitExact) {
  Rng rng(223);
  std::vector<double> values(300);
  for (double& v : values) v = rng.Normal();
  Column src = Column::Doubles(values);
  ASSERT_TRUE(src.all_valid());
  for (size_t n : {0, 1, 3, 4, 5, 101, 1000}) {
    std::vector<uint32_t> rows = RandomRows(&rng, n, values.size(), 0.3);
    std::vector<double> got = GatherNumeric(src, rows);
    std::vector<double> want = GatherNumericReference(src, rows);
    ASSERT_EQ(want.size(), got.size());
    EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                             want.size() * sizeof(double)));
    EXPECT_EQ(GatherNullCountReference(src, rows), GatherNullCount(src, rows));
  }
}

TEST_F(GatherDifferentialTest, NullableAndTypedColumnsMatchReference) {
  Rng rng(227);
  const size_t src_size = 200;
  std::vector<double> dvals(src_size);
  std::vector<int64_t> ivals(src_size);
  std::vector<std::string> svals(src_size);
  std::vector<uint8_t> valid(src_size);
  for (size_t i = 0; i < src_size; ++i) {
    dvals[i] = rng.Normal();
    ivals[i] = rng.UniformInt(-5, 5);
    svals[i] = "s" + std::to_string(rng.UniformInt(0, 20));
    valid[i] = rng.Bernoulli(0.9) ? 1 : 0;
  }
  std::vector<Column> columns = {
      Column::Doubles(dvals, valid),
      Column::Int64s(ivals),
      Column::Int64s(ivals, valid),
      Column::Strings(svals),
      Column::Strings(svals, valid),
  };
  for (const Column& src : columns) {
    std::vector<uint32_t> rows = RandomRows(&rng, 500, src_size, 0.25);
    std::vector<double> got = GatherNumeric(src, rows);
    std::vector<double> want = GatherNumericReference(src, rows);
    ASSERT_EQ(want.size(), got.size());
    EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                             want.size() * sizeof(double)));
    EXPECT_EQ(GatherNullCountReference(src, rows), GatherNullCount(src, rows));
  }
}

}  // namespace
}  // namespace autofeat
