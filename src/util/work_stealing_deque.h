// Chase-Lev work-stealing deque over a fixed-capacity ring buffer.
//
// One owner thread pushes and pops at the bottom (LIFO for the owner, which
// keeps its morsels in ascending index order when pre-filled in reverse);
// any number of thief threads steal from the top (FIFO, so thieves take the
// work the owner would reach last). The implementation follows the classic
// Chase-Lev algorithm with one deliberate simplification: all index
// operations use sequentially-consistent atomics instead of the minimal
// fence-based orderings from the weak-memory formulation. At morsel
// granularity the index traffic is nowhere near hot enough to matter, the
// seq_cst form is immune to the subtle reorderings the fence version has to
// argue away, and ThreadSanitizer models atomic operations precisely while
// it does not model standalone memory fences — so the stress tests under
// TSan actually verify this code rather than false-positiving on it.
//
// Buffer slots are themselves atomics (relaxed): a slot written by
// PushBottom is published by the subsequent seq_cst bottom store, and a
// claim (CAS on top, or the bottom decrement in PopBottom) is what
// transfers ownership of the value.
//
// Capacity is fixed at construction; the morsel scheduler pre-fills each
// lane's deque before any helper starts and never pushes afterwards, so
// overflow cannot occur mid-run (PushBottom still reports it, and the
// scheduler asserts).

#ifndef AUTOFEAT_UTIL_WORK_STEALING_DEQUE_H_
#define AUTOFEAT_UTIL_WORK_STEALING_DEQUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace autofeat {

class WorkStealingDeque {
 public:
  /// A deque holding at most `capacity` items (rounded up to a power of
  /// two, minimum 1).
  explicit WorkStealingDeque(size_t capacity = 1) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    buffer_ = std::vector<std::atomic<size_t>>(cap);
    mask_ = cap - 1;
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  // Movable only while no other thread touches either side (the scheduler
  // moves deques during single-threaded container setup, never mid-run);
  // atomics are not movable themselves, so spell the member transfer out.
  WorkStealingDeque(WorkStealingDeque&& other) noexcept
      : buffer_(std::move(other.buffer_)),
        mask_(other.mask_),
        top_(other.top_.load()),
        bottom_(other.bottom_.load()) {}
  WorkStealingDeque& operator=(WorkStealingDeque&& other) noexcept {
    buffer_ = std::move(other.buffer_);
    mask_ = other.mask_;
    top_.store(other.top_.load());
    bottom_.store(other.bottom_.load());
    return *this;
  }

  size_t capacity() const { return mask_ + 1; }

  /// Owner only. Returns false when full.
  bool PushBottom(size_t v) {
    int64_t b = bottom_.load();
    int64_t t = top_.load();
    if (b - t > static_cast<int64_t>(mask_)) return false;
    buffer_[static_cast<size_t>(b) & mask_].store(v,
                                                  std::memory_order_relaxed);
    bottom_.store(b + 1);
    return true;
  }

  /// Owner only. Returns false when the deque is empty (including the case
  /// where a thief won the race for the final item).
  bool PopBottom(size_t* v) {
    int64_t b = bottom_.load() - 1;
    bottom_.store(b);
    int64_t t = top_.load();
    if (t <= b) {
      *v = buffer_[static_cast<size_t>(b) & mask_].load(
          std::memory_order_relaxed);
      if (t == b) {
        // Last item: race the thieves for it via top.
        if (!top_.compare_exchange_strong(t, t + 1)) {
          bottom_.store(b + 1);
          return false;
        }
        bottom_.store(b + 1);
      }
      return true;
    }
    bottom_.store(b + 1);
    return false;
  }

  /// Thieves. Returns false when empty or when another thief (or the owner,
  /// on the final item) won the race — a false return does NOT mean the
  /// deque is empty, only that this attempt claimed nothing.
  bool StealTop(size_t* v) {
    int64_t t = top_.load();
    int64_t b = bottom_.load();
    if (t >= b) return false;
    *v = buffer_[static_cast<size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    return top_.compare_exchange_strong(t, t + 1);
  }

 private:
  std::vector<std::atomic<size_t>> buffer_;
  size_t mask_ = 0;
  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
};

}  // namespace autofeat

#endif  // AUTOFEAT_UTIL_WORK_STEALING_DEQUE_H_
