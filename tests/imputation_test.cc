#include "relational/imputation.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

TEST(ImputationTest, NoNullsReturnsIdentical) {
  Column c = Column::Int64s({1, 2, 2});
  EXPECT_TRUE(ImputeMostFrequent(c).Equals(c));
}

TEST(ImputationTest, FillsWithMode) {
  Column c = Column::Int64s({5, 7, 7, 0, 0, 0}, {1, 1, 1, 0, 0, 0});
  Column imputed = ImputeMostFrequent(c);
  EXPECT_EQ(imputed.null_count(), 0u);
  EXPECT_EQ(imputed.GetInt64(3), 7);
  EXPECT_EQ(imputed.GetInt64(4), 7);
  // Non-null values untouched.
  EXPECT_EQ(imputed.GetInt64(0), 5);
}

TEST(ImputationTest, StringMode) {
  Column c = Column::Strings({"a", "b", "b", ""}, {1, 1, 1, 0});
  Column imputed = ImputeMostFrequent(c);
  EXPECT_EQ(imputed.GetString(3), "b");
}

TEST(ImputationTest, TieBrokenByFirstOccurrence) {
  Column c = Column::Strings({"x", "y", ""}, {1, 1, 0});
  Column imputed = ImputeMostFrequent(c);
  EXPECT_EQ(imputed.GetString(2), "x");
}

TEST(ImputationTest, AllNullGetsTypeDefault) {
  Column d = ImputeMostFrequent(Column::Nulls(DataType::kDouble, 3));
  EXPECT_EQ(d.null_count(), 0u);
  EXPECT_DOUBLE_EQ(d.GetDouble(0), 0.0);
  Column s = ImputeMostFrequent(Column::Nulls(DataType::kString, 2));
  EXPECT_EQ(s.GetString(1), "");
  Column i = ImputeMostFrequent(Column::Nulls(DataType::kInt64, 2));
  EXPECT_EQ(i.GetInt64(0), 0);
}

TEST(ImputationTest, WholeTable) {
  Table t("t");
  t.AddColumn("a", Column::Int64s({1, 1, 0}, {1, 1, 0})).Abort();
  t.AddColumn("b", Column::Strings({"m", "", "m"}, {1, 0, 1})).Abort();
  Table imputed = ImputeTableMostFrequent(t);
  EXPECT_EQ(imputed.name(), "t");
  EXPECT_DOUBLE_EQ(imputed.OverallNullRatio(), 0.0);
  EXPECT_EQ((*imputed.GetColumn("a"))->GetInt64(2), 1);
  EXPECT_EQ((*imputed.GetColumn("b"))->GetString(1), "m");
}

}  // namespace
}  // namespace autofeat
