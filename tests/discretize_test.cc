#include "stats/discretize.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace autofeat {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(DefaultBinCountTest, SqrtRuleCappedAtTen) {
  EXPECT_EQ(DefaultBinCount(4), 2);
  EXPECT_EQ(DefaultBinCount(25), 5);
  EXPECT_EQ(DefaultBinCount(100), 10);
  EXPECT_EQ(DefaultBinCount(100000), 10);
  EXPECT_EQ(DefaultBinCount(1), 2);  // At least two bins.
}

TEST(EqualWidthTest, SplitsRangeEvenly) {
  std::vector<double> v{0.0, 0.25, 0.5, 0.75, 1.0};
  auto codes = DiscretizeEqualWidth(v, 4);
  EXPECT_EQ(codes, (std::vector<int>{0, 1, 2, 3, 3}));
}

TEST(EqualWidthTest, ConstantColumnSingleBin) {
  std::vector<double> v{2.0, 2.0, 2.0};
  auto codes = DiscretizeEqualWidth(v, 5);
  EXPECT_EQ(codes, (std::vector<int>{0, 0, 0}));
}

TEST(EqualWidthTest, NanGetsMissingBin) {
  std::vector<double> v{1.0, kNan, 2.0};
  auto codes = DiscretizeEqualWidth(v, 2);
  EXPECT_EQ(codes[1], kMissingBin);
  EXPECT_NE(codes[0], kMissingBin);
}

TEST(EqualFrequencyTest, BalancedBins) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i));
  auto codes = DiscretizeEqualFrequency(v, 4);
  std::vector<int> counts(4, 0);
  for (int c : codes) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 4);
    ++counts[c];
  }
  for (int c : counts) EXPECT_EQ(c, 25);
}

TEST(EqualFrequencyTest, TiesStayTogether) {
  std::vector<double> v{1, 1, 1, 1, 2, 3};
  auto codes = DiscretizeEqualFrequency(v, 3);
  // All the 1s share a bin.
  EXPECT_EQ(codes[0], codes[1]);
  EXPECT_EQ(codes[1], codes[2]);
  EXPECT_EQ(codes[2], codes[3]);
}

TEST(EqualFrequencyTest, AllNan) {
  std::vector<double> v{kNan, kNan};
  auto codes = DiscretizeEqualFrequency(v, 3);
  EXPECT_EQ(codes, (std::vector<int>{kMissingBin, kMissingBin}));
}

TEST(CodesFromValuesTest, FirstOccurrenceOrder) {
  std::vector<double> v{5.0, 3.0, 5.0, kNan, 7.0};
  auto codes = CodesFromValues(v);
  EXPECT_EQ(codes, (std::vector<int>{0, 1, 0, kMissingBin, 2}));
}

TEST(DistinctCodeCountTest, IgnoresMissing) {
  EXPECT_EQ(DistinctCodeCount({0, 1, 1, kMissingBin, 2}), 3u);
  EXPECT_EQ(DistinctCodeCount({kMissingBin}), 0u);
  EXPECT_EQ(DistinctCodeCount({}), 0u);
}

// Properties over random data: codes in range, monotone wrt values.
class DiscretizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DiscretizePropertyTest, CodesInRangeAndMonotone) {
  int bins = GetParam();
  Rng rng(bins);
  std::vector<double> v(500);
  for (auto& x : v) x = rng.Normal(0, 3);

  for (auto codes : {DiscretizeEqualWidth(v, bins),
                     DiscretizeEqualFrequency(v, bins)}) {
    for (size_t i = 0; i < v.size(); ++i) {
      ASSERT_GE(codes[i], 0);
      ASSERT_LT(codes[i], bins);
      for (size_t j = 0; j < v.size(); ++j) {
        if (v[i] < v[j]) {
          ASSERT_LE(codes[i], codes[j]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, DiscretizePropertyTest,
                         ::testing::Values(2, 3, 5, 10));

}  // namespace
}  // namespace autofeat
