#include "core/tuning.h"

#include <gtest/gtest.h>

#include "datagen/lake_builder.h"

namespace autofeat {
namespace {

struct Fixture {
  datagen::BuiltLake built;
  DatasetRelationGraph drg;

  Fixture() {
    datagen::LakeSpec spec;
    spec.name = "tune";
    spec.rows = 600;
    spec.joinable_tables = 5;
    spec.total_features = 20;
    spec.seed = 13;
    built = datagen::BuildLake(spec);
    drg = BuildDrgFromKfk(built.lake).MoveValue();
  }
};

TuningOptions FastOptions() {
  TuningOptions options;
  options.tau_grid = {0.5, 0.9};
  options.kappa_grid = {3, 10};
  options.sample_rows = 400;
  return options;
}

TEST(TuningTest, SweepsFullGrid) {
  Fixture fix;
  auto result =
      TuneHyperParameters(fix.built.lake, fix.drg, fix.built.base_table,
                          fix.built.label_column, AutoFeatConfig{},
                          FastOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->trials.size(), 4u);
  for (const auto& trial : result->trials) {
    EXPECT_GT(trial.accuracy, 0.0);
    EXPECT_GT(trial.seconds, 0.0);
  }
}

TEST(TuningTest, BestTrialIsArgmax) {
  Fixture fix;
  auto result =
      TuneHyperParameters(fix.built.lake, fix.drg, fix.built.base_table,
                          fix.built.label_column, AutoFeatConfig{},
                          FastOptions());
  ASSERT_TRUE(result.ok());
  for (const auto& trial : result->trials) {
    EXPECT_LE(trial.accuracy, result->best_trial.accuracy);
  }
  EXPECT_DOUBLE_EQ(result->best_config.tau, result->best_trial.tau);
  EXPECT_EQ(result->best_config.kappa, result->best_trial.kappa);
}

TEST(TuningTest, PreservesOtherConfigKnobs) {
  Fixture fix;
  AutoFeatConfig base;
  base.max_hops = 2;
  base.relevance = RelevanceKind::kPearson;
  auto result =
      TuneHyperParameters(fix.built.lake, fix.drg, fix.built.base_table,
                          fix.built.label_column, base, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_config.max_hops, 2u);
  EXPECT_EQ(result->best_config.relevance, RelevanceKind::kPearson);
}

TEST(TuningTest, TiesPreferSmallerKappaThenLargerTau) {
  // With a degenerate grid on an empty-signal lake all accuracies tie;
  // the tie-break should pick the smallest kappa and largest tau.
  Fixture fix;
  TuningOptions options = FastOptions();
  options.tau_grid = {1.5, 2.0};  // Both prune everything -> same accuracy.
  options.kappa_grid = {4, 9};
  auto result =
      TuneHyperParameters(fix.built.lake, fix.drg, fix.built.base_table,
                          fix.built.label_column, AutoFeatConfig{}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_trial.kappa, 4u);
  EXPECT_DOUBLE_EQ(result->best_trial.tau, 2.0);
  for (const auto& trial : result->trials) {
    EXPECT_FALSE(trial.produced_paths);
  }
}

TEST(TuningTest, EmptyGridIsError) {
  Fixture fix;
  TuningOptions options;
  options.tau_grid = {};
  EXPECT_FALSE(TuneHyperParameters(fix.built.lake, fix.drg,
                                   fix.built.base_table,
                                   fix.built.label_column, AutoFeatConfig{},
                                   options)
                   .ok());
}

TEST(TuningTest, BadBaseTableIsError) {
  Fixture fix;
  EXPECT_FALSE(TuneHyperParameters(fix.built.lake, fix.drg, "ghost",
                                   fix.built.label_column, AutoFeatConfig{},
                                   FastOptions())
                   .ok());
}

}  // namespace
}  // namespace autofeat
