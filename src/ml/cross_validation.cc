#include "ml/cross_validation.h"

#include <cmath>
#include <map>
#include <memory>

#include "ml/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace autofeat::ml {

Result<std::vector<size_t>> StratifiedFoldAssignment(
    const Table& table, const std::string& label_column, size_t folds,
    uint64_t seed) {
  if (folds < 2) {
    return Status::InvalidArgument("need at least 2 folds");
  }
  AF_ASSIGN_OR_RETURN(const Column* label, table.GetColumn(label_column));
  // Group rows per class, shuffle, deal them round-robin into folds.
  std::map<std::string, std::vector<size_t>> strata;
  for (size_t i = 0; i < label->size(); ++i) {
    strata[label->KeyAt(i)].push_back(i);
  }
  Rng rng(seed);
  std::vector<size_t> assignment(table.num_rows(), 0);
  size_t dealer = 0;
  for (auto& [value, rows] : strata) {
    rng.Shuffle(&rows);
    for (size_t r : rows) {
      assignment[r] = dealer % folds;
      ++dealer;
    }
  }
  return assignment;
}

Result<CrossValidationResult> CrossValidate(
    const Table& table, const std::string& label_column, ModelKind kind,
    const CrossValidationOptions& options) {
  AF_ASSIGN_OR_RETURN(
      std::vector<size_t> assignment,
      StratifiedFoldAssignment(table, label_column, options.folds,
                               options.seed));
  AF_ASSIGN_OR_RETURN(Dataset full, Dataset::FromTable(table, label_column));

  CrossValidationResult result;
  result.model_name = ModelKindName(kind);

  obs::Increment(obs::GetCounter(options.metrics, "cv.runs"));
  obs::Histogram* fold_test_rows =
      obs::GetHistogram(options.metrics, "cv.fold_test_rows");
  if (fold_test_rows != nullptr) {
    std::vector<uint64_t> per_fold(options.folds, 0);
    for (size_t f : assignment) ++per_fold[f];
    for (uint64_t rows : per_fold) obs::Record(fold_test_rows, rows);
  }

  // Folds are independent tasks: each trains a fresh model on its own row
  // subset with a per-fold seed. Metrics are merged in fold order below, so
  // the result is identical at any thread count.
  std::unique_ptr<ThreadPool> pool;
  if (ResolveNumThreads(options.num_threads) > 1 && options.folds > 1) {
    pool = std::make_unique<ThreadPool>(options.num_threads);
    if (options.tracer != nullptr) pool->set_tracer(options.tracer);
  }
  struct FoldEval {
    Status status;
    double accuracy = 0.0;
    double auc = 0.0;
  };
  obs::TaskContext fold_ctx = obs::CaptureTaskContext(options.tracer);
  std::vector<FoldEval> evals = ParallelMapWith<FoldEval>(
      options.scheduler, pool.get(), options.folds, /*grain=*/1,
      [&](size_t fold) {
        obs::ScopedWorkerSpan fold_span(fold_ctx, "cv.fold");
        FoldEval ev;
        std::vector<size_t> train_rows, test_rows;
        for (size_t r = 0; r < assignment.size(); ++r) {
          (assignment[r] == fold ? test_rows : train_rows).push_back(r);
        }
        if (train_rows.empty() || test_rows.empty()) {
          ev.status = Status::InvalidArgument(
              "fold " + std::to_string(fold) + " is degenerate (" +
              std::to_string(train_rows.size()) + " train / " +
              std::to_string(test_rows.size()) + " test rows)");
          return ev;
        }
        Dataset train = full.TakeRows(train_rows);
        Dataset test = full.TakeRows(test_rows);
        std::unique_ptr<Classifier> model =
            MakeClassifier(kind, options.seed + fold);
        if (model == nullptr) {
          ev.status = Status::InvalidArgument("unknown model kind");
          return ev;
        }
        ev.status = model->Fit(train);
        if (!ev.status.ok()) return ev;
        std::vector<double> probabilities = model->PredictProbaAll(test);
        ev.accuracy = Accuracy(test.labels(), probabilities);
        ev.auc = RocAuc(test.labels(), probabilities);
        return ev;
      });
  for (const FoldEval& ev : evals) {
    AF_RETURN_NOT_OK(ev.status);
    result.fold_accuracies.push_back(ev.accuracy);
    result.fold_aucs.push_back(ev.auc);
  }
  obs::Increment(obs::GetCounter(options.metrics, "cv.folds_trained"),
                 options.folds);

  double n = static_cast<double>(options.folds);
  for (double a : result.fold_accuracies) result.mean_accuracy += a;
  result.mean_accuracy /= n;
  for (double a : result.fold_aucs) result.mean_auc += a;
  result.mean_auc /= n;
  double var = 0;
  for (double a : result.fold_accuracies) {
    var += (a - result.mean_accuracy) * (a - result.mean_accuracy);
  }
  result.stddev_accuracy = std::sqrt(var / n);
  return result;
}

}  // namespace autofeat::ml
