#include "datagen/registry.h"

namespace autofeat::datagen {

std::vector<DatasetSpec> PaperDatasets() {
  // name, paper_rows, rows(built), #joinable, #features, best acc, star,
  // coverage, missing_rate. `covertype` keeps full key coverage and no
  // missing values so that tau = 1 remains satisfiable (Fig. 8c); `school`
  // has no perfect joins so tau = 1 yields no output (Fig. 8d).
  return {
      {"credit", 1001, 1001, 5, 21, 0.990, false, 0.90, 0.03},
      {"eyemove", 7609, 7609, 6, 24, 0.894, false, 0.90, 0.03},
      {"covertype", 423682, 8000, 12, 21, 0.990, false, 1.00, 0.00},
      {"jannis", 57581, 6000, 12, 55, 0.875, false, 0.90, 0.03},
      {"miniboone", 73000, 6000, 15, 51, 0.9465, false, 0.90, 0.03},
      {"steel", 1943, 1943, 15, 34, 1.000, false, 0.90, 0.03},
      {"school", 1775, 1775, 16, 731, 0.831, true, 0.85, 0.05},
      {"bioresponse", 3435, 3435, 40, 420, 0.885, false, 0.90, 0.03},
  };
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const auto& spec : PaperDatasets()) {
    if (spec.name == name) return spec;
  }
  return Status::KeyError("unknown registry dataset: " + name);
}

BuiltLake BuildPaperLake(const DatasetSpec& spec, uint64_t seed) {
  LakeSpec lake_spec;
  lake_spec.name = spec.name;
  lake_spec.rows = spec.rows;
  lake_spec.joinable_tables = spec.joinable_tables;
  lake_spec.total_features = spec.total_features;
  lake_spec.star_schema = spec.star_schema;
  lake_spec.key_coverage = spec.key_coverage;
  lake_spec.missing_rate = spec.missing_rate;
  lake_spec.seed = seed;
  return BuildLake(lake_spec);
}

}  // namespace autofeat::datagen
