// The bench-regression gate: JSON parsing, timing/metric comparison
// semantics (relative threshold + absolute noise floor, growth-only byte
// gauges, skipped scheduling-dependent series), and the failure modes CI
// depends on (mismatched benches, malformed documents).

#include <gtest/gtest.h>

#include <string>

#include "obs/bench_diff.h"
#include "obs/json_value.h"

namespace autofeat {
namespace {

std::string BenchDoc(double eval_seconds, double micro_seconds,
                     int candidates, int cache_bytes) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema\": \"autofeat.bench.v1\", \"bench\": \"join_path\","
      " \"mode\": \"quick\", \"timings\": ["
      "{\"phase\": \"candidate_eval\", \"threads\": 1, \"seconds\": %.6f},"
      "{\"phase\": \"micro_join\", \"threads\": 1, \"seconds\": %.6f}],"
      " \"metrics\": {\"counters\": {"
      "\"discovery.candidates_scored\": %d,"
      "\"thread_pool.tasks_executed\": 9999},"
      " \"gauges\": {\"join_index_cache.bytes\": %d}}}",
      eval_seconds, micro_seconds, candidates, cache_bytes);
  return buf;
}

TEST(BenchDiffTest, IdenticalRunsPass) {
  std::string doc = BenchDoc(1.0, 0.002, 500, 100000);
  auto report = obs::DiffBenchReports(doc, doc);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->num_regressions(), 0u);
  EXPECT_EQ(report->bench, "join_path");
  EXPECT_EQ(report->timings.size(), 2u);
  // thread_pool.* is scheduling-dependent and must be skipped.
  for (const obs::BenchDiffEntry& e : report->metrics) {
    EXPECT_EQ(e.name.rfind("thread_pool.", 0), std::string::npos) << e.name;
  }
}

TEST(BenchDiffTest, InjectedSlowdownFlagsRegression) {
  std::string baseline = BenchDoc(1.0, 0.002, 500, 100000);
  // 20% slower candidate_eval: over the 10% threshold and the noise floor.
  std::string current = BenchDoc(1.2, 0.002, 500, 100000);
  auto report = obs::DiffBenchReports(baseline, current);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  ASSERT_EQ(report->num_regressions(), 1u);
  bool flagged = false;
  for (const obs::BenchDiffEntry& e : report->timings) {
    if (e.name == "candidate_eval@1") {
      flagged = e.regression;
      EXPECT_NEAR(e.delta_ratio, 0.2, 1e-9);
    }
  }
  EXPECT_TRUE(flagged);
  EXPECT_NE(report->Summary().find("REGRESSION"), std::string::npos);
}

TEST(BenchDiffTest, NoiseFloorAbsorbsTinyAbsoluteDeltas) {
  // micro_join doubles (+100% relative) but the delta is 2ms — far below
  // the 10ms floor, so a pure ratio test would false-positive here.
  std::string baseline = BenchDoc(1.0, 0.002, 500, 100000);
  std::string current = BenchDoc(1.0, 0.004, 500, 100000);
  auto report = obs::DiffBenchReports(baseline, current);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
}

TEST(BenchDiffTest, SpeedupNeverFlags) {
  std::string baseline = BenchDoc(1.0, 0.002, 500, 100000);
  std::string current = BenchDoc(0.5, 0.001, 500, 100000);
  auto report = obs::DiffBenchReports(baseline, current);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
}

TEST(BenchDiffTest, DeterministicMetricDriftFlagsBothDirections) {
  std::string baseline = BenchDoc(1.0, 0.002, 500, 100000);
  // Deterministic counters are pure functions of the workload; drift in
  // either direction is a behavioural change.
  for (int candidates : {300, 700}) {
    std::string current = BenchDoc(1.0, 0.002, candidates, 100000);
    auto report = obs::DiffBenchReports(baseline, current);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->ok()) << candidates << " candidates not flagged";
  }
}

TEST(BenchDiffTest, ByteGaugesFlagGrowthOnly) {
  std::string baseline = BenchDoc(1.0, 0.002, 500, 100000);
  // 50% more cache memory: regression.
  auto grown = obs::DiffBenchReports(baseline, BenchDoc(1.0, 0.002, 500,
                                                        150000));
  ASSERT_TRUE(grown.ok());
  EXPECT_FALSE(grown->ok());
  // 50% less: an improvement, not a regression.
  auto shrunk = obs::DiffBenchReports(baseline, BenchDoc(1.0, 0.002, 500,
                                                         50000));
  ASSERT_TRUE(shrunk.ok());
  EXPECT_TRUE(shrunk->ok());
}

TEST(BenchDiffTest, ThresholdsAreConfigurable) {
  std::string baseline = BenchDoc(1.0, 0.002, 500, 100000);
  std::string current = BenchDoc(1.05, 0.002, 500, 100000);
  obs::BenchDiffOptions loose;
  auto ok_report = obs::DiffBenchReports(baseline, current, loose);
  ASSERT_TRUE(ok_report.ok());
  EXPECT_TRUE(ok_report->ok());  // +5% passes the default 10% gate.
  obs::BenchDiffOptions strict;
  strict.time_threshold = 0.02;
  auto strict_report = obs::DiffBenchReports(baseline, current, strict);
  ASSERT_TRUE(strict_report.ok());
  EXPECT_FALSE(strict_report->ok());
}

// A doc whose embedded obs report carries a latency quantile series (the
// serving bench shape): one `_ns` histogram plus a unitless one that the
// gate must ignore.
std::string QuantileDoc(double p50_ns, double p99_ns) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema\": \"autofeat.bench.v1\", \"bench\": \"serving\","
      " \"mode\": \"quick\", \"timings\": [],"
      " \"metrics\": {\"quantiles\": {"
      "\"serve.query_latency_ns\": {\"count\": 100, \"sum\": 1, \"min\": 1,"
      " \"max\": 1, \"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f,"
      " \"p999\": %.0f},"
      "\"frontier_size\": {\"count\": 9, \"sum\": 9, \"min\": 1, \"max\": 1,"
      " \"p50\": 1, \"p90\": 1, \"p99\": 1, \"p999\": 1}}}}",
      p50_ns, p99_ns, p99_ns, p99_ns);
  return buf;
}

TEST(BenchDiffTest, QuantileSlowdownFlagsUnderTimingRule) {
  // p99 goes 100ms -> 150ms: +50% relative and a 50ms absolute delta,
  // over both the 10% threshold and the 10ms floor.
  std::string baseline = QuantileDoc(50e6, 100e6);
  std::string current = QuantileDoc(50e6, 150e6);
  auto report = obs::DiffBenchReports(baseline, current);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  ASSERT_EQ(report->num_regressions(), 1u);
  bool flagged = false;
  for (const obs::BenchDiffEntry& e : report->quantiles) {
    // The unitless series must not appear at all.
    EXPECT_EQ(e.name.rfind("frontier_size", 0), std::string::npos) << e.name;
    if (e.name == "serve.query_latency_ns/p99") {
      flagged = e.regression;
      EXPECT_NEAR(e.baseline, 0.1, 1e-9);  // ns converted to seconds
      EXPECT_NEAR(e.current, 0.15, 1e-9);
      EXPECT_NEAR(e.delta_ratio, 0.5, 1e-9);
    }
  }
  EXPECT_TRUE(flagged);
  EXPECT_NE(report->Summary().find("quantile"), std::string::npos);
}

TEST(BenchDiffTest, QuantileNoiseFloorAbsorbsSmallDeltas) {
  // p50 doubles 2ms -> 4ms: +100% relative but 2ms absolute, under the
  // 10ms floor — exactly the timing rule.
  std::string baseline = QuantileDoc(2e6, 100e6);
  std::string current = QuantileDoc(4e6, 100e6);
  auto report = obs::DiffBenchReports(baseline, current);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  // And a speedup never flags.
  auto faster = obs::DiffBenchReports(QuantileDoc(50e6, 100e6),
                                      QuantileDoc(25e6, 50e6));
  ASSERT_TRUE(faster.ok());
  EXPECT_TRUE(faster->ok());
}

TEST(BenchDiffTest, QuantileOnlyOnOneSideBecomesANote) {
  std::string with = QuantileDoc(50e6, 100e6);
  std::string without =
      "{\"bench\": \"serving\", \"mode\": \"quick\", \"timings\": [],"
      " \"metrics\": {}}";
  auto report = obs::DiffBenchReports(with, without);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  bool noted = false;
  for (const std::string& note : report->notes) {
    if (note.find("quantile only in baseline") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
}

TEST(BenchDiffTest, OneSidedEntriesBecomeNotesNotRegressions) {
  std::string baseline =
      "{\"bench\": \"b\", \"mode\": \"quick\", \"timings\": ["
      "{\"phase\": \"old_phase\", \"threads\": 1, \"seconds\": 1.0}],"
      " \"metrics\": {}}";
  std::string current =
      "{\"bench\": \"b\", \"mode\": \"quick\", \"timings\": ["
      "{\"phase\": \"new_phase\", \"threads\": 1, \"seconds\": 1.0}],"
      " \"metrics\": {}}";
  auto report = obs::DiffBenchReports(baseline, current);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->notes.size(), 2u);
}

TEST(BenchDiffTest, MismatchesAndMalformedInputError) {
  std::string a = BenchDoc(1.0, 0.002, 500, 100000);
  std::string other_bench =
      "{\"bench\": \"other\", \"mode\": \"quick\", \"timings\": []}";
  EXPECT_FALSE(obs::DiffBenchReports(a, other_bench).ok());
  std::string other_mode =
      "{\"bench\": \"join_path\", \"mode\": \"full\", \"timings\": []}";
  EXPECT_FALSE(obs::DiffBenchReports(a, other_mode).ok());
  EXPECT_FALSE(obs::DiffBenchReports(a, "{not json").ok());
  EXPECT_FALSE(obs::DiffBenchReports(a, "{\"bench\": \"join_path\"}").ok());
}

// --- JSON parser units (the gate's only input surface) ---

TEST(JsonValueTest, ParsesScalarsArraysObjects) {
  auto doc = obs::ParseJson(
      "{\"a\": 1.5, \"b\": [true, false, null, -3e2], \"c\": {\"d\": \"x\"}}");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->Find("a")->number, 1.5);
  const obs::JsonValue* b = doc->Find("b");
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->items.size(), 4u);
  EXPECT_TRUE(b->items[0].boolean);
  EXPECT_TRUE(b->items[2].is_null());
  EXPECT_EQ(b->items[3].number, -300.0);
  EXPECT_EQ(doc->Find("c")->Find("d")->str, "x");
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonValueTest, DecodesEscapes) {
  auto doc = obs::ParseJson("\"q\\\"b\\\\n\\nt\\tu\\u0041\\u00e9\"");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->str, "q\"b\\n\nt\tuA\xc3\xa9");
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "{\"a\": 1} x", "\"\\q\"", "01",
        "nul", "\"unterminated"}) {
    EXPECT_FALSE(obs::ParseJson(bad).ok()) << bad;
  }
}

}  // namespace
}  // namespace autofeat
