#include "graph/dot_export.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

DatasetRelationGraph MakeGraph() {
  DatasetRelationGraph g;
  g.AddEdge("base", "id", "sat", "base_id", 1.0).Abort();
  g.AddEdge("base", "id", "noise", "nid", 0.6).Abort();
  return g;
}

TEST(DotExportTest, ContainsNodesAndEdges) {
  std::string dot = ExportDrgToDot(MakeGraph());
  EXPECT_NE(dot.find("graph drg {"), std::string::npos);
  EXPECT_NE(dot.find("\"base\""), std::string::npos);
  EXPECT_NE(dot.find("\"sat\""), std::string::npos);
  EXPECT_NE(dot.find("\"base\" -- \"sat\""), std::string::npos);
  EXPECT_NE(dot.find("id = base_id (1.00)"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExportTest, HighlightsBaseNode) {
  DotOptions options;
  options.highlight_node = "base";
  std::string dot = ExportDrgToDot(MakeGraph(), options);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
}

TEST(DotExportTest, WeakEdgesDashed) {
  std::string dot = ExportDrgToDot(MakeGraph());
  // The 0.6 edge is below the 0.9 default threshold.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // The KFK edge is solid: the line containing "base_id" must not be
  // dashed.
  size_t pos = dot.find("id = base_id");
  ASSERT_NE(pos, std::string::npos);
  size_t line_end = dot.find('\n', pos);
  std::string line = dot.substr(pos, line_end - pos);
  EXPECT_EQ(line.find("dashed"), std::string::npos);
}

TEST(DotExportTest, HighlightPathColoured) {
  auto g = MakeGraph();
  JoinPath path;
  path.steps.push_back(JoinStep{*g.NodeId("base"), *g.NodeId("sat"), "id",
                                "base_id", 1.0});
  DotOptions options;
  options.highlight_path = &path;
  std::string dot = ExportDrgToDot(g, options);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(DotExportTest, EscapesQuotes) {
  DatasetRelationGraph g;
  g.AddEdge("we\"ird", "c", "other", "d", 1.0).Abort();
  std::string dot = ExportDrgToDot(g);
  EXPECT_NE(dot.find("we\\\"ird"), std::string::npos);
}

}  // namespace
}  // namespace autofeat
