// Trainer: the AutoGluon-substitute facade (paper §V-B, §VII-A).
//
// Handles everything between a relational Table and a trained model:
// imputation, encoding, stratified 80/20 train/test split, model
// construction, fitting and evaluation.

#ifndef AUTOFEAT_ML_TRAINER_H_
#define AUTOFEAT_ML_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "table/table.h"
#include "util/status.h"

namespace autofeat::ml {

/// The models of the paper's evaluation: four tree-based (§VII-A) and two
/// non-tree (Figs. 5/7).
enum class ModelKind {
  kLightGbm,
  kRandomForest,
  kExtraTrees,
  kXgBoost,
  kKnn,
  kLogRegL1,
};

const char* ModelKindName(ModelKind kind);

/// Instantiates a classifier of the given kind.
std::unique_ptr<Classifier> MakeClassifier(ModelKind kind, uint64_t seed);

/// The tree-based models averaged in Figs. 4 and 6.
std::vector<ModelKind> TreeModelKinds();
/// The non-tree models of Figs. 5 and 7.
std::vector<ModelKind> NonTreeModelKinds();

struct EvalResult {
  std::string model_name;
  double accuracy = 0.0;
  double auc = 0.0;
  double train_seconds = 0.0;
};

struct TrainerOptions {
  double test_fraction = 0.2;
  uint64_t seed = 42;
};

/// Imputes/encodes `table`, splits stratified on `label_column`, trains a
/// `kind` model and evaluates on the held-out split.
Result<EvalResult> TrainAndEvaluate(const Table& table,
                                    const std::string& label_column,
                                    ModelKind kind,
                                    const TrainerOptions& options = {});

/// Mean test accuracy of `kinds` on the same split (the per-dataset bars of
/// Figs. 4-7 average over models).
Result<double> AverageAccuracy(const Table& table,
                               const std::string& label_column,
                               const std::vector<ModelKind>& kinds,
                               const TrainerOptions& options = {});

}  // namespace autofeat::ml

#endif  // AUTOFEAT_ML_TRAINER_H_
