#include "obs/metrics.h"

#include <bit>

namespace autofeat::obs {

size_t Histogram::BucketOf(uint64_t v) {
  return v == 0 ? 0 : static_cast<size_t>(std::bit_width(v));
}

void Histogram::Record(uint64_t v) {
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.empty()) {
    entry.kind = MetricKind::kCounter;
    entry.deterministic = deterministic;
    entry.counter = std::make_unique<Counter>();
  }
  return entry.kind == MetricKind::kCounter ? entry.counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.empty()) {
    entry.kind = MetricKind::kGauge;
    entry.deterministic = deterministic;
    entry.gauge = std::make_unique<Gauge>();
  }
  return entry.kind == MetricKind::kGauge ? entry.gauge.get() : nullptr;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.empty()) {
    entry.kind = MetricKind::kHistogram;
    entry.deterministic = deterministic;
    entry.histogram = std::make_unique<Histogram>();
  }
  return entry.kind == MetricKind::kHistogram ? entry.histogram.get()
                                              : nullptr;
}

QuantileHistogram* MetricsRegistry::GetQuantile(const std::string& name,
                                                bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.empty()) {
    entry.kind = MetricKind::kQuantile;
    entry.deterministic = deterministic;
    entry.quantile = std::make_unique<QuantileHistogram>();
  }
  return entry.kind == MetricKind::kQuantile ? entry.quantile.get() : nullptr;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.counter == nullptr) return 0;
  return it->second.counter->value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.gauge == nullptr) return 0;
  return it->second.gauge->value();
}

uint64_t MetricsRegistry::HistogramCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.histogram == nullptr) return 0;
  return it->second.histogram->count();
}

uint64_t MetricsRegistry::HistogramSum(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.histogram == nullptr) return 0;
  return it->second.histogram->sum();
}

uint64_t MetricsRegistry::QuantileCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.quantile == nullptr) return 0;
  return it->second.quantile->count();
}

uint64_t MetricsRegistry::QuantileValueAt(const std::string& name,
                                          double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.quantile == nullptr) return 0;
  return it->second.quantile->ValueAtQuantile(q);
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.counters.push_back(
            CounterSample{name, entry.deterministic, entry.counter->value()});
        break;
      case MetricKind::kGauge:
        snap.gauges.push_back(
            GaugeSample{name, entry.deterministic, entry.gauge->value()});
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        HistogramSample sample;
        sample.name = name;
        sample.deterministic = entry.deterministic;
        sample.count = h.count();
        sample.sum = h.sum();
        sample.min = h.min();
        sample.max = h.max();
        for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
          uint64_t c = h.bucket(b);
          if (c > 0) sample.buckets.emplace_back(b, c);
        }
        snap.histograms.push_back(std::move(sample));
        break;
      }
      case MetricKind::kQuantile: {
        const QuantileHistogram& q = *entry.quantile;
        QuantileSample sample;
        sample.name = name;
        sample.deterministic = entry.deterministic;
        sample.count = q.count();
        sample.sum = q.sum();
        sample.min = q.min();
        sample.max = q.max();
        sample.p50 = q.p50();
        sample.p90 = q.p90();
        sample.p99 = q.p99();
        sample.p999 = q.p999();
        snap.quantiles.push_back(std::move(sample));
        break;
      }
    }
  }
  return snap;
}

}  // namespace autofeat::obs
