#include "baselines/augmenter.h"

namespace autofeat::baselines {

Result<AugmenterResult> BaseMethod::Augment(const DataLake& lake,
                                            const DatasetRelationGraph& drg,
                                            const std::string& base_table,
                                            const std::string& label_column) {
  (void)drg;
  AF_ASSIGN_OR_RETURN(const Table* base, lake.GetTable(base_table));
  if (!base->HasColumn(label_column)) {
    return Status::KeyError("label column missing from base table");
  }
  AugmenterResult result;
  result.augmented = *base;
  result.tables_joined = 0;
  return result;
}

}  // namespace autofeat::baselines
