#include "qa/fuzz_runner.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "qa/repro.h"
#include "qa/shrinker.h"
#include "util/thread_pool.h"

namespace autofeat::qa {
namespace {

void RecordShape(const FuzzedLake& lake, FuzzFailure* failure) {
  failure->tables = lake.lake.num_tables();
  failure->max_columns = 0;
  failure->max_rows = 0;
  for (const Table& table : lake.lake.tables()) {
    failure->max_columns = std::max(failure->max_columns, table.num_columns());
    failure->max_rows = std::max(failure->max_rows, table.num_rows());
  }
}

std::string OneLine(std::string text) {
  for (char& ch : text) {
    if (ch == '\n' || ch == '\r') ch = ' ';
  }
  return text;
}

}  // namespace

std::string FuzzReport::Summary() const {
  std::ostringstream out;
  out << "fuzz: " << seeds_run << " seed(s) x " << invariants_per_seed
      << " invariant(s) = " << checks_run << " checks, " << failures.size()
      << " failure(s)\n";
  for (const FuzzFailure& f : failures) {
    out << "  seed " << f.seed << " violates " << f.invariant << " ["
        << f.tables << " table(s), <=" << f.max_columns << " column(s), <="
        << f.max_rows << " row(s)]";
    if (!f.repro_dir.empty()) out << " repro: " << f.repro_dir;
    out << "\n    " << OneLine(f.message) << "\n";
  }
  return out.str();
}

Result<FuzzReport> RunFuzz(const FuzzOptions& options) {
  std::vector<Invariant> invariants = RegistryInvariants(options.include_planted);
  if (!options.invariant_filter.empty()) {
    std::vector<Invariant> filtered;
    for (const std::string& name : options.invariant_filter) {
      auto it = std::find_if(
          invariants.begin(), invariants.end(),
          [&](const Invariant& inv) { return inv.name == name; });
      if (it == invariants.end()) {
        return Status::InvalidArgument("unknown invariant: " + name);
      }
      filtered.push_back(*it);
    }
    invariants = std::move(filtered);
  }

  obs::ScopedSpan campaign_span(options.tracer, "fuzz.campaign");
  LakeFuzzer fuzzer(options.fuzz);
  std::unique_ptr<ThreadPool> pool;
  if (ResolveNumThreads(options.threads) > 1 && options.num_seeds > 1) {
    pool = std::make_unique<ThreadPool>(options.threads);
    if (options.tracer != nullptr) pool->set_tracer(options.tracer);
  }

  // Phase 1 — the seed sweep. Each seed is an independent task; failures
  // are merged in seed order so the report never depends on scheduling.
  obs::TaskContext seed_ctx = obs::CaptureTaskContext(
      options.num_seeds == 0 ? nullptr : options.tracer);
  std::vector<std::vector<FuzzFailure>> per_seed =
      ParallelMap<std::vector<FuzzFailure>>(
          pool.get(), options.num_seeds, /*grain=*/1, [&](size_t i) {
            obs::ScopedWorkerSpan seed_span(seed_ctx, "fuzz.seed");
            uint64_t seed = options.seed_start + i;
            FuzzedLake fz = fuzzer.Generate(seed);
            std::vector<FuzzFailure> failures;
            for (const Invariant& invariant : invariants) {
              Status status = invariant.check(fz);
              if (!status.ok()) {
                FuzzFailure failure;
                failure.seed = seed;
                failure.invariant = invariant.name;
                failure.message = status.message();
                RecordShape(fz, &failure);
                failures.push_back(std::move(failure));
              }
            }
            return failures;
          });

  FuzzReport report;
  report.seeds_run = options.num_seeds;
  report.invariants_per_seed = invariants.size();
  report.checks_run = options.num_seeds * invariants.size();

  // Phase 2 — shrink + repro emission, sequential (failures are rare and
  // the shrinker dominates; keeping it out of the pool keeps repro
  // directories and messages in deterministic order).
  for (std::vector<FuzzFailure>& failures : per_seed) {
    for (FuzzFailure& failure : failures) {
      auto it = std::find_if(invariants.begin(), invariants.end(),
                             [&](const Invariant& inv) {
                               return inv.name == failure.invariant;
                             });
      FuzzedLake failing = fuzzer.Generate(failure.seed);
      if (options.shrink && it != invariants.end()) {
        auto shrunk = ShrinkLake(failing, *it);
        if (shrunk.ok()) {
          failing = shrunk->lake;
          failure.message = shrunk->message;
          RecordShape(failing, &failure);
        }
      }
      if (!options.repro_dir.empty()) {
        std::string dir = options.repro_dir + "/seed_" +
                          std::to_string(failure.seed) + "_" +
                          failure.invariant;
        AF_RETURN_NOT_OK(
            WriteRepro(failing, failure.invariant, failure.message, dir));
        failure.repro_dir = dir;
      }
      report.failures.push_back(std::move(failure));
    }
  }

  obs::Increment(obs::GetCounter(options.metrics, "qa.seeds"),
                 report.seeds_run);
  obs::Increment(obs::GetCounter(options.metrics, "qa.checks"),
                 report.checks_run);
  obs::Increment(obs::GetCounter(options.metrics, "qa.failures"),
                 report.failures.size());
  return report;
}

Result<FuzzReport> ReplayRepro(const std::string& directory,
                               bool manifest_only) {
  ReproManifest manifest;
  AF_ASSIGN_OR_RETURN(FuzzedLake lake, LoadRepro(directory, &manifest));
  std::vector<Invariant> invariants = RegistryInvariants(
      /*include_planted=*/manifest.invariant.rfind("planted.", 0) == 0);
  if (manifest_only) {
    auto it = std::find_if(invariants.begin(), invariants.end(),
                           [&](const Invariant& inv) {
                             return inv.name == manifest.invariant;
                           });
    if (it == invariants.end()) {
      return Status::InvalidArgument("repro manifest names an unknown "
                                     "invariant: " + manifest.invariant);
    }
    invariants = {*it};
  }
  FuzzReport report;
  report.seeds_run = 1;
  report.invariants_per_seed = invariants.size();
  report.checks_run = invariants.size();
  for (const Invariant& invariant : invariants) {
    Status status = invariant.check(lake);
    if (!status.ok()) {
      FuzzFailure failure;
      failure.seed = manifest.seed;
      failure.invariant = invariant.name;
      failure.message = status.message();
      failure.repro_dir = directory;
      RecordShape(lake, &failure);
      report.failures.push_back(std::move(failure));
    }
  }
  return report;
}

}  // namespace autofeat::qa
