#include "discovery/data_lake.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "table/csv.h"

namespace autofeat {
namespace {

Table MakeTable(const std::string& name, const std::string& key_column,
                std::vector<int64_t> keys) {
  Table t(name);
  t.AddColumn(key_column, Column::Int64s(std::move(keys))).Abort();
  return t;
}

TEST(DataLakeTest, AddAndGet) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(MakeTable("a", "id", {1, 2})).ok());
  EXPECT_TRUE(lake.HasTable("a"));
  EXPECT_EQ(lake.num_tables(), 1u);
  auto t = lake.GetTable("a");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "a");
  EXPECT_EQ(lake.GetTable("b").status().code(), StatusCode::kKeyError);
}

TEST(DataLakeTest, DuplicateAndUnnamedRejected) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(MakeTable("a", "id", {1})).ok());
  EXPECT_FALSE(lake.AddTable(MakeTable("a", "id", {2})).ok());
  EXPECT_FALSE(lake.AddTable(Table()).ok());
}

TEST(DataLakeTest, ReplaceTable) {
  DataLake lake;
  lake.AddTable(MakeTable("a", "id", {1})).Abort();
  Table updated = MakeTable("a", "id", {1});
  updated.AddColumn("extra", Column::Doubles({0.5})).Abort();
  ASSERT_TRUE(lake.ReplaceTable(std::move(updated)).ok());
  EXPECT_TRUE((*lake.GetTable("a"))->HasColumn("extra"));
  EXPECT_FALSE(lake.ReplaceTable(MakeTable("zz", "id", {1})).ok());
}

TEST(DataLakeTest, RemoveTableShiftsLaterTablesAndPrunesKfk) {
  DataLake lake;
  lake.AddTable(MakeTable("a", "id", {1})).Abort();
  lake.AddTable(MakeTable("b", "id", {1})).Abort();
  lake.AddTable(MakeTable("c", "id", {1})).Abort();
  lake.AddKfk(KfkConstraint{"a", "id", "b", "id"});
  lake.AddKfk(KfkConstraint{"a", "id", "c", "id"});
  ASSERT_TRUE(lake.RemoveTable("b").ok());
  EXPECT_EQ(lake.TableNames(), (std::vector<std::string>{"a", "c"}));
  ASSERT_EQ(lake.kfk_constraints().size(), 1u);
  EXPECT_EQ(lake.kfk_constraints()[0].to_table, "c");
  EXPECT_TRUE((*lake.GetTable("c"))->HasColumn("id"));
  EXPECT_FALSE(lake.RemoveTable("b").ok()) << "double remove must fail";
}

TEST(DataLakeTest, AppendRowsRequiresExactSchema) {
  DataLake lake;
  lake.AddTable(MakeTable("a", "id", {1, 2})).Abort();
  ASSERT_TRUE(lake.AppendRows("a", MakeTable("rows", "id", {3})).ok());
  EXPECT_EQ((*lake.GetTable("a"))->num_rows(), 3u);
  // Wrong column name and wrong type must both be rejected unchanged.
  EXPECT_FALSE(lake.AppendRows("a", MakeTable("rows", "other", {4})).ok());
  Table wrong_type("rows");
  wrong_type.AddColumn("id", Column::Doubles({4.5})).Abort();
  EXPECT_FALSE(lake.AppendRows("a", wrong_type).ok());
  EXPECT_FALSE(lake.AppendRows("missing", MakeTable("rows", "id", {4})).ok());
  EXPECT_EQ((*lake.GetTable("a"))->num_rows(), 3u);
}

TEST(ParseLakeFormatTest, NormalisesCaseAndReportsValidValues) {
  EXPECT_EQ(*ParseLakeFormat("CSV"), LakeFormat::kCsv);
  EXPECT_EQ(*ParseLakeFormat(" Columnar "), LakeFormat::kColumnar);
  Result<LakeFormat> bad = ParseLakeFormat("parquet");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("valid values: csv, columnar"),
            std::string::npos)
      << bad.status().message();
}

TEST(DataLakeTest, TableNames) {
  DataLake lake;
  lake.AddTable(MakeTable("x", "id", {1})).Abort();
  lake.AddTable(MakeTable("y", "id", {1})).Abort();
  EXPECT_EQ(lake.TableNames(), (std::vector<std::string>{"x", "y"}));
}

TEST(DataLakeTest, FromCsvDirectory) {
  namespace fs = std::filesystem;
  std::string dir = ::testing::TempDir() + "/autofeat_lake_test";
  fs::create_directories(dir);
  WriteCsvFile(MakeTable("t1", "id", {1, 2}), dir + "/t1.csv").Abort();
  WriteCsvFile(MakeTable("t2", "id", {3}), dir + "/t2.csv").Abort();
  auto lake = DataLake::FromCsvDirectory(dir);
  ASSERT_TRUE(lake.ok());
  EXPECT_EQ(lake->num_tables(), 2u);
  EXPECT_TRUE(lake->HasTable("t1"));
  EXPECT_TRUE(lake->HasTable("t2"));
  fs::remove_all(dir);
  EXPECT_FALSE(DataLake::FromCsvDirectory("/nonexistent").ok());
}

DataLake MakeKfkLake() {
  DataLake lake;
  // Keys span >= 16 distinct values so value overlap counts as evidence.
  std::vector<int64_t> base_keys, sat_keys;
  std::vector<double> sat_values;
  for (int64_t i = 0; i < 24; ++i) {
    base_keys.push_back(i);
    if (i < 20) {
      sat_keys.push_back(i);
      sat_values.push_back(static_cast<double>(i) * 0.5);
    }
  }
  Table base = MakeTable("base", "id", base_keys);
  Table sat = MakeTable("sat", "base_id", sat_keys);
  sat.AddColumn("v", Column::Doubles(std::move(sat_values))).Abort();
  lake.AddTable(std::move(base)).Abort();
  lake.AddTable(std::move(sat)).Abort();
  lake.AddKfk(KfkConstraint{"base", "id", "sat", "base_id"});
  return lake;
}

TEST(BuildDrgFromKfkTest, EdgesMirrorConstraints) {
  auto drg = BuildDrgFromKfk(MakeKfkLake());
  ASSERT_TRUE(drg.ok());
  EXPECT_EQ(drg->num_nodes(), 2u);
  EXPECT_EQ(drg->num_edges(), 1u);
  auto edges =
      drg->EdgesBetween(*drg->NodeId("base"), *drg->NodeId("sat"));
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_DOUBLE_EQ(edges[0].weight, 1.0);
  EXPECT_EQ(edges[0].from_column, "id");
  EXPECT_EQ(edges[0].to_column, "base_id");
}

TEST(BuildDrgFromKfkTest, InvalidConstraintIsError) {
  DataLake lake = MakeKfkLake();
  lake.AddKfk(KfkConstraint{"base", "ghost_column", "sat", "base_id"});
  EXPECT_FALSE(BuildDrgFromKfk(lake).ok());
  DataLake lake2 = MakeKfkLake();
  lake2.AddKfk(KfkConstraint{"ghost_table", "id", "sat", "base_id"});
  EXPECT_FALSE(BuildDrgFromKfk(lake2).ok());
}

TEST(BuildDrgByDiscoveryTest, FindsValueOverlapEdges) {
  auto drg = BuildDrgByDiscovery(MakeKfkLake());
  ASSERT_TRUE(drg.ok());
  EXPECT_EQ(drg->num_nodes(), 2u);
  // id and base_id overlap in values; an edge should be discovered with a
  // similarity weight below 1.
  auto edges =
      drg->EdgesBetween(*drg->NodeId("base"), *drg->NodeId("sat"));
  ASSERT_FALSE(edges.empty());
  EXPECT_GE(edges[0].weight, 0.55);
  EXPECT_LE(edges[0].weight, 1.0);
}

TEST(BuildDrgByDiscoveryTest, ThresholdControlsDensity) {
  MatchOptions loose;
  loose.threshold = 0.1;
  MatchOptions strict;
  strict.threshold = 0.999;
  auto dense = BuildDrgByDiscovery(MakeKfkLake(), loose);
  auto sparse = BuildDrgByDiscovery(MakeKfkLake(), strict);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  EXPECT_GE(dense->num_edges(), sparse->num_edges());
}

}  // namespace
}  // namespace autofeat
