#include "ml/forest.h"

namespace autofeat::ml {

Status Forest::Fit(const Dataset& train) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  trees_.clear();
  trees_.reserve(options_.num_trees);
  Rng rng(options_.seed);
  for (size_t t = 0; t < options_.num_trees; ++t) {
    TreeOptions tree_options;
    tree_options.max_depth = options_.max_depth;
    tree_options.min_samples_leaf = options_.min_samples_leaf;
    tree_options.max_features = TreeOptions::kSqrt;
    tree_options.random_thresholds = options_.random_thresholds;
    tree_options.seed = rng.engine()();
    DecisionTree tree(tree_options);

    if (options_.bootstrap) {
      std::vector<size_t> rows(train.num_rows());
      for (auto& r : rows) r = rng.UniformIndex(train.num_rows());
      AF_RETURN_NOT_OK(tree.FitRows(train, rows));
    } else {
      AF_RETURN_NOT_OK(tree.Fit(train));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double Forest::PredictProba(const Dataset& data, size_t row) const {
  if (trees_.empty()) return 0.5;
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.PredictProba(data, row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> Forest::FeatureImportances() const {
  if (trees_.empty()) return {};
  std::vector<double> total = trees_[0].FeatureImportances();
  for (size_t t = 1; t < trees_.size(); ++t) {
    std::vector<double> imp = trees_[t].FeatureImportances();
    for (size_t f = 0; f < total.size() && f < imp.size(); ++f) {
      total[f] += imp[f];
    }
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

}  // namespace autofeat::ml
