#include "ml/forest.h"

#include <gtest/gtest.h>

#include "support/ml_fixtures.h"

namespace autofeat::ml {
namespace {

TEST(RandomForestTest, LearnsBlobs) {
  Dataset train = MakeBlobs(400, 1.5, 1);
  Dataset test = MakeBlobs(200, 1.5, 2);
  Forest forest = Forest::RandomForest(30, 42);
  EXPECT_GT(HoldoutAccuracy(forest, train, test), 0.9);
}

TEST(RandomForestTest, SolvesXor) {
  Dataset train = MakeXor(400, 3);
  Dataset test = MakeXor(200, 4);
  Forest forest = Forest::RandomForest(30, 42);
  EXPECT_GT(HoldoutAccuracy(forest, train, test), 0.95);
}

TEST(ExtraTreesTest, LearnsBlobs) {
  Dataset train = MakeBlobs(400, 1.5, 5);
  Dataset test = MakeBlobs(200, 1.5, 6);
  Forest forest = Forest::ExtraTrees(30, 42);
  EXPECT_GT(HoldoutAccuracy(forest, train, test), 0.9);
}

TEST(ForestTest, NamesIdentifyVariant) {
  EXPECT_EQ(Forest::RandomForest().name(), "RandomForest");
  EXPECT_EQ(Forest::ExtraTrees().name(), "ExtraTrees");
}

TEST(ForestTest, NumTreesHonored) {
  Dataset train = MakeBlobs(100, 1.0, 7);
  Forest forest = Forest::RandomForest(13, 1);
  ASSERT_TRUE(forest.Fit(train).ok());
  EXPECT_EQ(forest.num_trees(), 13u);
}

TEST(ForestTest, EmptyTrainingFails) {
  Forest forest = Forest::RandomForest(5, 1);
  EXPECT_FALSE(forest.Fit(Dataset()).ok());
}

TEST(ForestTest, ProbabilitiesAreAveraged) {
  Dataset train = MakeBlobs(200, 2.0, 8);
  Forest forest = Forest::RandomForest(20, 2);
  ASSERT_TRUE(forest.Fit(train).ok());
  for (size_t r = 0; r < 20; ++r) {
    double p = forest.PredictProba(train, r);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(ForestTest, ImportancesSumToOneAndFavorSignal) {
  Dataset train = MakeBlobs(500, 2.0, 9);
  Forest forest = Forest::RandomForest(20, 3);
  ASSERT_TRUE(forest.Fit(train).ok());
  auto imp = forest.FeatureImportances();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_NEAR(imp[0] + imp[1] + imp[2], 1.0, 1e-9);
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[1], imp[2]);
}

TEST(ForestTest, DeterministicGivenSeed) {
  Dataset train = MakeBlobs(150, 1.0, 10);
  Forest a = Forest::RandomForest(10, 77);
  Forest b = Forest::RandomForest(10, 77);
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  for (size_t r = 0; r < train.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(a.PredictProba(train, r), b.PredictProba(train, r));
  }
}

TEST(ForestTest, EnsembleBeatsSingleTreeOnNoisyData) {
  Dataset train = MakeBlobs(300, 0.6, 11);
  Dataset test = MakeBlobs(600, 0.6, 12);
  DecisionTree tree;
  Forest forest = Forest::RandomForest(40, 4);
  double tree_acc = HoldoutAccuracy(tree, train, test);
  double forest_acc = HoldoutAccuracy(forest, train, test);
  EXPECT_GE(forest_acc, tree_acc - 0.02);
}

}  // namespace
}  // namespace autofeat::ml
