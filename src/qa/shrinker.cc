#include "qa/shrinker.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace autofeat::qa {
namespace {

// Rebuilds a FuzzedLake around `tables`, keeping only the KFK constraints
// whose tables and columns still exist.
FuzzedLake RebuildLake(const FuzzedLake& proto, std::vector<Table> tables) {
  FuzzedLake out;
  out.base_table = proto.base_table;
  out.label_column = proto.label_column;
  out.seed = proto.seed;
  out.trace = proto.trace;
  for (Table& table : tables) {
    out.lake.AddTable(std::move(table)).Abort("shrinker rebuild");
  }
  for (const KfkConstraint& kfk : proto.lake.kfk_constraints()) {
    auto from = out.lake.GetTable(kfk.from_table);
    auto to = out.lake.GetTable(kfk.to_table);
    if (!from.ok() || !to.ok()) continue;
    if (!(*from)->HasColumn(kfk.from_column) ||
        !(*to)->HasColumn(kfk.to_column)) {
      continue;
    }
    out.lake.AddKfk(kfk);
  }
  return out;
}

// A column of the same type and null mask whose values are all the simplest
// representative of the type (0 / 0.0 / "a").
Column SimplifiedColumn(const Column& src) {
  Column out(src.type());
  for (size_t i = 0; i < src.size(); ++i) {
    if (src.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    switch (src.type()) {
      case DataType::kInt64: out.AppendInt64(0); break;
      case DataType::kDouble: out.AppendDouble(0.0); break;
      case DataType::kString: out.AppendString("a"); break;
    }
  }
  return out;
}

}  // namespace

Result<ShrinkResult> ShrinkLake(const FuzzedLake& input,
                                const Invariant& invariant,
                                const ShrinkOptions& options) {
  Status initial = invariant.check(input);
  if (initial.ok()) {
    return Status::InvalidArgument("lake does not violate invariant '" +
                                   invariant.name + "', nothing to shrink");
  }
  ShrinkResult res;
  res.lake = input;
  res.message = initial.message();
  res.checks = 1;

  // True iff `candidate` still violates the invariant (and we have budget
  // left to find out). Updates the message so it describes the final lake.
  auto still_fails = [&](const FuzzedLake& candidate) -> bool {
    if (res.checks >= options.max_checks) return false;
    ++res.checks;
    Status st = invariant.check(candidate);
    if (st.ok()) return false;
    res.message = st.message();
    return true;
  };
  auto accept = [&](FuzzedLake candidate) {
    res.lake = std::move(candidate);
    ++res.accepted;
  };

  bool progress = true;
  while (progress && res.checks < options.max_checks) {
    progress = false;

    // Pass 0: drop mutation-trace ops (coarsest first — a shorter failing
    // *sequence* is worth more to a reader than a smaller lake). Removing
    // an op can invalidate later ops (an append whose target was never
    // added), but mutation failures are defined as symmetric no-ops, so
    // every shortened trace is still a valid candidate.
    for (size_t m = 0; m < res.lake.trace.size();) {
      FuzzedLake candidate = res.lake;
      candidate.trace.erase(candidate.trace.begin() +
                            static_cast<std::ptrdiff_t>(m));
      if (still_fails(candidate)) {
        accept(std::move(candidate));
        progress = true;
      } else {
        ++m;
      }
    }

    // Pass 1: drop whole satellite tables (never the base).
    for (size_t t = 0; t < res.lake.lake.num_tables();) {
      if (res.lake.lake.tables()[t].name() == res.lake.base_table) {
        ++t;
        continue;
      }
      std::vector<Table> keep;
      for (size_t i = 0; i < res.lake.lake.num_tables(); ++i) {
        if (i != t) keep.push_back(res.lake.lake.tables()[i]);
      }
      FuzzedLake candidate = RebuildLake(res.lake, std::move(keep));
      if (still_fails(candidate)) {
        accept(std::move(candidate));
        progress = true;
      } else {
        ++t;
      }
    }

    // Pass 2: drop columns (never the base label; keep >= 1 per table).
    for (size_t t = 0; t < res.lake.lake.num_tables(); ++t) {
      for (size_t c = 0; c < res.lake.lake.tables()[t].num_columns();) {
        const Table& table = res.lake.lake.tables()[t];
        if (table.num_columns() <= 1) break;
        std::string column = table.schema().field(c).name;
        if (table.name() == res.lake.base_table &&
            column == res.lake.label_column) {
          ++c;
          continue;
        }
        std::vector<Table> tables = res.lake.lake.tables().Materialize();
        tables[t].DropColumn(column).Abort("shrinker drop column");
        FuzzedLake candidate = RebuildLake(res.lake, std::move(tables));
        if (still_fails(candidate)) {
          accept(std::move(candidate));
          progress = true;
        } else {
          ++c;
        }
      }
    }

    // Pass 3: drop row chunks, halving the chunk size down to single rows.
    for (size_t t = 0; t < res.lake.lake.num_tables(); ++t) {
      size_t chunk = res.lake.lake.tables()[t].num_rows() / 2;
      for (; chunk >= 1; chunk = (chunk == 1 ? 0 : chunk / 2)) {
        size_t start = 0;
        while (start < res.lake.lake.tables()[t].num_rows()) {
          const Table& table = res.lake.lake.tables()[t];
          size_t rows = table.num_rows();
          size_t end = std::min(start + chunk, rows);
          std::vector<size_t> indices;
          indices.reserve(rows - (end - start));
          for (size_t i = 0; i < rows; ++i) {
            if (i < start || i >= end) indices.push_back(i);
          }
          std::vector<Table> tables = res.lake.lake.tables().Materialize();
          Table reduced = table.TakeRows(indices);
          reduced.set_name(table.name());
          tables[t] = std::move(reduced);
          FuzzedLake candidate = RebuildLake(res.lake, std::move(tables));
          if (still_fails(candidate)) {
            accept(std::move(candidate));
            progress = true;
            // Same start now addresses the next chunk of the shorter table.
          } else {
            start += chunk;
          }
        }
      }
    }

    // Pass 4: simplify surviving values (type- and null-mask-preserving).
    for (size_t t = 0; t < res.lake.lake.num_tables(); ++t) {
      for (size_t c = 0; c < res.lake.lake.tables()[t].num_columns(); ++c) {
        const Table& table = res.lake.lake.tables()[t];
        const Column& original = table.column(c);
        Column simplified = SimplifiedColumn(original);
        if (simplified.Equals(original)) continue;
        std::vector<Table> tables = res.lake.lake.tables().Materialize();
        tables[t]
            .SetColumn(table.schema().field(c).name, std::move(simplified))
            .Abort("shrinker simplify column");
        FuzzedLake candidate = RebuildLake(res.lake, std::move(tables));
        if (still_fails(candidate)) {
          accept(std::move(candidate));
          progress = true;
        }
      }
    }
  }
  return res;
}

}  // namespace autofeat::qa
