#include "fs/redundancy.h"

#include <algorithm>

#include "stats/information.h"

namespace autofeat {

const char* RedundancyKindName(RedundancyKind kind) {
  switch (kind) {
    case RedundancyKind::kMifs: return "MIFS";
    case RedundancyKind::kMrmr: return "MRMR";
    case RedundancyKind::kCife: return "CIFE";
    case RedundancyKind::kJmi: return "JMI";
    case RedundancyKind::kCmim: return "CMIM";
  }
  return "invalid";
}

bool SelectedFeatureSet::Contains(const std::string& name) const {
  return std::find(names.begin(), names.end(), name) != names.end();
}

void SelectedFeatureSet::Add(std::string name,
                             std::vector<int> feature_codes) {
  names.push_back(std::move(name));
  codes.push_back(std::move(feature_codes));
}

double RedundancyScore(const std::vector<int>& candidate_codes,
                       const std::vector<int>& label_codes,
                       const std::vector<std::vector<int>>& selected_codes,
                       const RedundancyOptions& options) {
  double relevance =
      MutualInformationCorrected(candidate_codes, label_codes);
  if (selected_codes.empty()) return relevance;
  // Early exit: for the criteria without a positive conditional term
  // (MIFS/MRMR: lambda = 0; CMIM subtracts a clamped-nonnegative maximum),
  // J <= relevance, so a candidate with no label information can never be
  // accepted — skip the per-selected-feature scan.
  if (relevance <= 0.0 && options.kind != RedundancyKind::kCife &&
      options.kind != RedundancyKind::kJmi) {
    return relevance;
  }

  double s = static_cast<double>(selected_codes.size());
  double beta = 0.0;
  double lambda = 0.0;
  switch (options.kind) {
    case RedundancyKind::kMifs:
      beta = options.mifs_beta;
      break;
    case RedundancyKind::kMrmr:
      beta = 1.0 / s;
      break;
    case RedundancyKind::kCife:
      beta = 1.0;
      lambda = 1.0;
      break;
    case RedundancyKind::kJmi:
      beta = 1.0 / s;
      lambda = 1.0 / s;
      break;
    case RedundancyKind::kCmim: {
      // Eq. 2: subtract the *worst* pairwise redundancy surplus.
      double max_term = 0.0;
      for (const auto& sel : selected_codes) {
        double term =
            MutualInformationCorrected(sel, candidate_codes) -
            ConditionalMutualInformationCorrected(sel, candidate_codes,
                                                  label_codes);
        max_term = std::max(max_term, term);
      }
      return relevance - max_term;
    }
  }

  double redundancy_sum = 0.0;
  double conditional_sum = 0.0;
  for (const auto& sel : selected_codes) {
    redundancy_sum += MutualInformationCorrected(sel, candidate_codes);
    if (lambda != 0.0) {
      conditional_sum += ConditionalMutualInformationCorrected(
          sel, candidate_codes, label_codes);
    }
  }
  return relevance - beta * redundancy_sum + lambda * conditional_sum;
}

std::vector<FeatureScore> SelectNonRedundant(
    const FeatureView& view, const std::vector<size_t>& candidates,
    SelectedFeatureSet* selected, const RedundancyOptions& options) {
  std::vector<FeatureScore> accepted;
  for (size_t f : candidates) {
    const std::string& name = view.name(f);
    if (selected->Contains(name)) continue;  // Already in S; adds nothing.
    double j = RedundancyScore(view.codes(f), view.label_codes(),
                               selected->codes, options);
    if (j > 0.0) {
      accepted.push_back({name, j});
      selected->Add(name, view.codes(f));
    }
  }
  return accepted;
}

}  // namespace autofeat
