// DataLake: the dataset collection AutoFeat explores, plus DRG construction
// for the paper's two evaluation settings (§VII-A):
//
//  * benchmark setting — known KFK constraints become edges of weight 1
//    (snowflake schemata);
//  * data-lake setting — KFK metadata is discarded and edges are discovered
//    by the schema matcher (dense multigraph, weight = similarity score).

#ifndef AUTOFEAT_DISCOVERY_DATA_LAKE_H_
#define AUTOFEAT_DISCOVERY_DATA_LAKE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "discovery/schema_matcher.h"
#include "graph/drg.h"
#include "table/table.h"
#include "util/status.h"

namespace autofeat {

class ThreadPool;

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// \brief On-disk representation of a lake directory.
enum class LakeFormat {
  /// One *.csv file per table (text; types inferred on load).
  kCsv,
  /// One *.afc file per table (the binary columnar format of
  /// table/columnar.h: dictionary-encoded, null bitmaps, checksummed).
  kColumnar,
};

/// Parses "csv" / "columnar" (the --lake-format CLI values),
/// case-insensitively.
Result<LakeFormat> ParseLakeFormat(const std::string& name);

/// \brief Read-only, indexable view over the lake's tables.
///
/// The lake stores tables behind shared_ptr so that copying a DataLake is
/// O(tables) pointer copies rather than a deep copy of every column — the
/// property the serving layer's snapshot-per-mutation scheme depends on.
/// This view keeps the historical `for (const Table& t : lake.tables())`
/// and `lake.tables()[i]` call shapes working over that storage.
class TableListView {
 public:
  explicit TableListView(const std::vector<std::shared_ptr<const Table>>* t)
      : tables_(t) {}

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Table;
    using difference_type = std::ptrdiff_t;
    using pointer = const Table*;
    using reference = const Table&;

    iterator(const std::vector<std::shared_ptr<const Table>>* t, size_t i)
        : tables_(t), i_(i) {}
    const Table& operator*() const { return *(*tables_)[i_]; }
    const Table* operator->() const { return (*tables_)[i_].get(); }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++i_;
      return copy;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const std::vector<std::shared_ptr<const Table>>* tables_;
    size_t i_;
  };

  iterator begin() const { return iterator(tables_, 0); }
  iterator end() const { return iterator(tables_, tables_->size()); }
  const Table& operator[](size_t i) const { return *(*tables_)[i]; }
  size_t size() const { return tables_->size(); }
  bool empty() const { return tables_->empty(); }

  /// Deep-copies every table (for callers that mutate, e.g. the shrinker).
  std::vector<Table> Materialize() const {
    std::vector<Table> out;
    out.reserve(tables_->size());
    for (const auto& t : *tables_) out.push_back(*t);
    return out;
  }

 private:
  const std::vector<std::shared_ptr<const Table>>* tables_;
};

/// \brief A declared key/foreign-key relationship between two tables.
struct KfkConstraint {
  std::string from_table;
  std::string from_column;
  std::string to_table;
  std::string to_column;
};

/// \brief Named collection of tables with optional KFK metadata.
class DataLake {
 public:
  /// Adds a table (name taken from table.name()); fails on duplicates.
  Status AddTable(Table table);

  /// Adds an already-shared table without copying its columns.
  Status AddTable(std::shared_ptr<const Table> table);

  /// Replaces an existing table of the same name.
  Status ReplaceTable(Table table);

  /// Removes a table by name. Later tables shift down one position (lake
  /// order stays the relative insertion order of the survivors). KFK
  /// constraints referencing the table are dropped with it.
  Status RemoveTable(const std::string& name);

  /// Appends the rows of `rows` to an existing table. The schemas must
  /// match exactly (same column names and types, in order). The stored
  /// table is replaced, not mutated — snapshots sharing the old version
  /// are unaffected.
  Status AppendRows(const std::string& name, const Table& rows);

  Result<const Table*> GetTable(const std::string& name) const;

  /// Shared handle to a table — keeps it alive past RemoveTable/AppendRows.
  Result<std::shared_ptr<const Table>> GetTableShared(
      const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return index_.count(name) > 0;
  }
  size_t num_tables() const { return tables_.size(); }
  TableListView tables() const { return TableListView(&tables_); }
  std::vector<std::string> TableNames() const;

  void AddKfk(KfkConstraint constraint) {
    kfk_.push_back(std::move(constraint));
  }
  const std::vector<KfkConstraint>& kfk_constraints() const { return kfk_; }

  /// Loads every *.csv file of a directory as a table.
  static Result<DataLake> FromCsvDirectory(const std::string& directory);

  /// Loads every *.afc (binary columnar) file of a directory as a table.
  static Result<DataLake> FromColumnarDirectory(const std::string& directory);

  /// Loads a directory in the given format (sorted file order either way,
  /// so the lake's table order is format-independent).
  static Result<DataLake> FromDirectory(const std::string& directory,
                                        LakeFormat format);

 private:
  // shared_ptr<const Table> so lake copies (serving snapshots) share table
  // storage; every mutation path replaces pointers instead of editing
  // tables in place.
  std::vector<std::shared_ptr<const Table>> tables_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<KfkConstraint> kfk_;
};

/// Benchmark setting: DRG whose edges are exactly the declared KFK
/// constraints with weight 1. A non-null `metrics` counts
/// `drg.edges_added`.
Result<DatasetRelationGraph> BuildDrgFromKfk(
    const DataLake& lake, obs::MetricsRegistry* metrics = nullptr);

/// Data-lake setting: ignores KFK metadata and runs the schema matcher over
/// candidate table pairs; matches at or above options.threshold become
/// edges weighted by their similarity score.
///
/// Every column is sketched exactly once (LakeSketchCache) before the pair
/// sweep. With the default options.candidate_mode (kAllPairs) every pair of
/// the upper triangle is scored — O(n²) in the table count; with kLsh a
/// MinHash-LSH index over the sketches (see lsh_index.h) generates the
/// candidate subset first and only candidates are scored. With a `pool`,
/// sketching fans out over tables and pair scoring over (candidate) table
/// pairs; matches are folded into the DRG in deterministic (i, j) pair
/// order, so the graph is byte-identical at any thread count in either
/// mode.
///
/// A non-null `metrics` records the DRG-construction counters:
/// `sketch_cache.builds` (sketches computed once), `sketch_cache.hits`
/// (sketch reuses the per-pair formulation would have recomputed),
/// `drg.candidate_pairs` / `drg.pairs_pruned` (candidate-generation
/// effect; pruned is 0 under kAllPairs), `drg.pairs_scored`,
/// `drg.pairs_matched`, `drg.edges_added`, plus the `lsh.*` counters and
/// `lsh_index.bytes` gauges under kLsh.
Result<DatasetRelationGraph> BuildDrgByDiscovery(
    const DataLake& lake, const MatchOptions& options = {},
    ThreadPool* pool = nullptr, obs::MetricsRegistry* metrics = nullptr);

/// Generic DRG construction with a pluggable matcher — "DRG construction is
/// independent of the dataset discovery algorithm" (§IV). The matcher maps
/// two tables to scored column pairs; every reported match becomes an edge.
/// With a `pool`, pairs are matched concurrently (the matcher must be a
/// pure function of its arguments) and merged in deterministic pair order.
Result<DatasetRelationGraph> BuildDrgWithMatcher(
    const DataLake& lake,
    const std::function<std::vector<ColumnMatch>(const Table&, const Table&)>&
        matcher,
    ThreadPool* pool = nullptr, obs::MetricsRegistry* metrics = nullptr);

}  // namespace autofeat

#endif  // AUTOFEAT_DISCOVERY_DATA_LAKE_H_
