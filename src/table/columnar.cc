#include "table/columnar.h"

#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "table/key_dictionary.h"

namespace autofeat {

namespace {

constexpr char kMagic[4] = {'A', 'F', 'C', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 32;
constexpr size_t kAlignment = 64;
constexpr uint32_t kNullId = 0xFFFFFFFFu;

uint64_t Fnv1a(const char* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// ---- Little-endian encoding ------------------------------------------------

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(b, 8);
}

// Pads `payload` with zero bytes until (kHeaderBytes + payload size) is a
// multiple of kAlignment — fixed-width sections then sit on 64-byte file
// offsets, the mmap contract of the header comment.
void AlignPayload(std::string* payload) {
  size_t offset = kHeaderBytes + payload->size();
  size_t pad = (kAlignment - offset % kAlignment) % kAlignment;
  payload->append(pad, '\0');
}

// ---- Bounds-checked reading ------------------------------------------------

struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  size_t Remaining() const { return size - pos; }
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("corrupt columnar payload: " + what +
                                   " at offset " + std::to_string(pos));
  }
  Status Need(size_t n, const char* what) {
    if (Remaining() < n) return Fail(std::string("truncated ") + what);
    return Status::OK();
  }
  Status ReadU32(uint32_t* v, const char* what) {
    AF_RETURN_NOT_OK(Need(4, what));
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(
                 static_cast<unsigned char>(data[pos + i]))
             << (8 * i);
    }
    pos += 4;
    *v = out;
    return Status::OK();
  }
  Status ReadU64(uint64_t* v, const char* what) {
    AF_RETURN_NOT_OK(Need(8, what));
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(
                 static_cast<unsigned char>(data[pos + i]))
             << (8 * i);
    }
    pos += 8;
    *v = out;
    return Status::OK();
  }
  Status ReadBytes(std::string* out, size_t n, const char* what) {
    AF_RETURN_NOT_OK(Need(n, what));
    out->assign(data + pos, n);
    pos += n;
    return Status::OK();
  }
  // Skips the zero padding AlignPayload wrote at this position.
  Status SkipAlignment() {
    size_t offset = kHeaderBytes + pos;
    size_t pad = (kAlignment - offset % kAlignment) % kAlignment;
    AF_RETURN_NOT_OK(Need(pad, "alignment padding"));
    pos += pad;
    return Status::OK();
  }
};

// ---- Column sections -------------------------------------------------------

void WriteValidityBitmap(std::string* payload, const Column& col) {
  size_t n = col.size();
  std::string bits((n + 7) / 8, '\0');
  for (size_t i = 0; i < n; ++i) {
    if (!col.IsNull(i)) bits[i / 8] |= static_cast<char>(1u << (i % 8));
  }
  payload->append(bits);
}

void WriteColumnData(std::string* payload, const Column& col) {
  size_t n = col.size();
  switch (col.type()) {
    case DataType::kDouble:
      AlignPayload(payload);
      for (size_t i = 0; i < n; ++i) {
        // Null slots hold the 0.0 placeholder; the bitmap is authoritative.
        PutU64(payload, std::bit_cast<uint64_t>(col.GetDouble(i)));
      }
      return;
    case DataType::kInt64:
      AlignPayload(payload);
      for (size_t i = 0; i < n; ++i) {
        PutU64(payload, static_cast<uint64_t>(col.GetInt64(i)));
      }
      return;
    case DataType::kString: {
      // Dictionary encoding via KeyDictionary: ids are dense and assigned
      // in first-seen row order, and within one string column the
      // string -> id mapping is injective, so the first row carrying each
      // id recovers the dictionary value exactly.
      KeyDictionary dict = KeyDictionary::Build(col);
      const std::vector<uint32_t>& ids = dict.row_ids();
      std::vector<std::string_view> values(dict.num_keys());
      std::vector<bool> seen(dict.num_keys(), false);
      for (size_t i = 0; i < n; ++i) {
        uint32_t id = ids[i];
        if (id == KeyDictionary::kNoKey || seen[id]) continue;
        seen[id] = true;
        values[id] = col.GetString(i);
      }
      PutU32(payload, dict.num_keys());
      for (std::string_view v : values) {
        PutU32(payload, static_cast<uint32_t>(v.size()));
        payload->append(v.data(), v.size());
      }
      AlignPayload(payload);
      for (size_t i = 0; i < n; ++i) {
        PutU32(payload, ids[i] == KeyDictionary::kNoKey ? kNullId : ids[i]);
      }
      return;
    }
  }
}

Status ReadColumnData(Cursor* in, DataType type, size_t num_rows,
                      const std::vector<uint8_t>& valid, Column* out) {
  switch (type) {
    case DataType::kDouble: {
      AF_RETURN_NOT_OK(in->SkipAlignment());
      std::vector<double> values(num_rows);
      for (size_t i = 0; i < num_rows; ++i) {
        uint64_t bits = 0;
        AF_RETURN_NOT_OK(in->ReadU64(&bits, "double values"));
        values[i] = std::bit_cast<double>(bits);
      }
      *out = Column::Doubles(std::move(values), valid);
      return Status::OK();
    }
    case DataType::kInt64: {
      AF_RETURN_NOT_OK(in->SkipAlignment());
      std::vector<int64_t> values(num_rows);
      for (size_t i = 0; i < num_rows; ++i) {
        uint64_t bits = 0;
        AF_RETURN_NOT_OK(in->ReadU64(&bits, "int64 values"));
        values[i] = static_cast<int64_t>(bits);
      }
      *out = Column::Int64s(std::move(values), valid);
      return Status::OK();
    }
    case DataType::kString: {
      uint32_t dict_size = 0;
      AF_RETURN_NOT_OK(in->ReadU32(&dict_size, "dictionary size"));
      if (dict_size > in->Remaining()) {
        return in->Fail("dictionary size exceeds payload");
      }
      std::vector<std::string> dict(dict_size);
      for (uint32_t d = 0; d < dict_size; ++d) {
        uint32_t len = 0;
        AF_RETURN_NOT_OK(in->ReadU32(&len, "dictionary value length"));
        AF_RETURN_NOT_OK(in->ReadBytes(&dict[d], len, "dictionary value"));
      }
      AF_RETURN_NOT_OK(in->SkipAlignment());
      std::vector<std::string> values(num_rows);
      for (size_t i = 0; i < num_rows; ++i) {
        uint32_t id = 0;
        AF_RETURN_NOT_OK(in->ReadU32(&id, "dictionary ids"));
        bool is_null = !valid.empty() && valid[i] == 0;
        if (is_null) {
          if (id != kNullId) return in->Fail("non-sentinel id on a null row");
          continue;
        }
        if (id >= dict_size) return in->Fail("dictionary id out of range");
        values[i] = dict[id];
      }
      *out = Column::Strings(std::move(values), valid);
      return Status::OK();
    }
  }
  return in->Fail("unknown column type");
}

}  // namespace

std::string WriteColumnarBuffer(const Table& table) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(table.name().size()));
  payload.append(table.name());
  PutU64(&payload, table.num_rows());
  PutU32(&payload, static_cast<uint32_t>(table.num_columns()));
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    const std::string& name = table.schema().field(c).name;
    PutU32(&payload, static_cast<uint32_t>(name.size()));
    payload.append(name);
    bool has_nulls = col.null_count() > 0;
    payload.push_back(static_cast<char>(col.type()));
    payload.push_back(has_nulls ? 1 : 0);
    payload.append(2, '\0');  // reserved
    if (has_nulls) {
      AlignPayload(&payload);
      WriteValidityBitmap(&payload, col);
    }
    WriteColumnData(&payload, col);
  }
  // Trailing pad: the whole image (header + payload) ends on a 64-byte
  // boundary, so concatenated or mmapped images keep every section aligned.
  AlignPayload(&payload);

  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kVersion);
  PutU64(&out, payload.size());
  PutU64(&out, Fnv1a(payload.data(), payload.size()));
  PutU64(&out, 0);  // reserved; pads the header to 32 bytes
  out.append(payload);
  return out;
}

Result<Table> ReadColumnarBuffer(std::string_view data,
                                 const std::string& fallback_name) {
  if (data.size() < kHeaderBytes) {
    return Status::IOError("columnar image truncated: " +
                           std::to_string(data.size()) +
                           " bytes is shorter than the 32-byte header");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "not a columnar table (bad magic; expected \"AFC1\")");
  }
  Cursor header{data.data(), kHeaderBytes, sizeof(kMagic)};
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  AF_RETURN_NOT_OK(header.ReadU32(&version, "version"));
  AF_RETURN_NOT_OK(header.ReadU64(&payload_size, "payload size"));
  AF_RETURN_NOT_OK(header.ReadU64(&checksum, "checksum"));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported columnar version " +
                                   std::to_string(version) + " (reader is v" +
                                   std::to_string(kVersion) + ")");
  }
  if (payload_size != data.size() - kHeaderBytes) {
    return Status::IOError(
        "columnar image truncated: header promises " +
        std::to_string(payload_size) + " payload bytes, file carries " +
        std::to_string(data.size() - kHeaderBytes));
  }
  uint64_t actual = Fnv1a(data.data() + kHeaderBytes, payload_size);
  if (actual != checksum) {
    std::ostringstream msg;
    msg << "columnar payload checksum mismatch (stored " << std::hex
        << checksum << ", computed " << actual << ")";
    return Status::InvalidArgument(msg.str());
  }

  Cursor in{data.data() + kHeaderBytes, payload_size};
  uint32_t name_len = 0;
  AF_RETURN_NOT_OK(in.ReadU32(&name_len, "table name length"));
  std::string name;
  AF_RETURN_NOT_OK(in.ReadBytes(&name, name_len, "table name"));
  uint64_t num_rows = 0;
  uint32_t num_columns = 0;
  AF_RETURN_NOT_OK(in.ReadU64(&num_rows, "row count"));
  AF_RETURN_NOT_OK(in.ReadU32(&num_columns, "column count"));
  // Each column costs at least its 8-byte descriptor and each row of any
  // column at least 4 payload bytes; fabricated counts can't force a huge
  // allocation before hitting a truncation error.
  if (num_columns > in.Remaining()) {
    return in.Fail("column count exceeds payload");
  }
  if (num_columns > 0 && num_rows > in.Remaining()) {
    return in.Fail("row count exceeds payload");
  }

  Table table(name.empty() ? fallback_name : name);
  for (uint32_t c = 0; c < num_columns; ++c) {
    uint32_t col_name_len = 0;
    AF_RETURN_NOT_OK(in.ReadU32(&col_name_len, "column name length"));
    std::string col_name;
    AF_RETURN_NOT_OK(in.ReadBytes(&col_name, col_name_len, "column name"));
    AF_RETURN_NOT_OK(in.Need(4, "column descriptor"));
    uint8_t type_byte = static_cast<uint8_t>(in.data[in.pos]);
    uint8_t has_nulls = static_cast<uint8_t>(in.data[in.pos + 1]);
    in.pos += 4;  // type, has_nulls, 2 reserved bytes
    if (type_byte > static_cast<uint8_t>(DataType::kString)) {
      return in.Fail("unknown column type " + std::to_string(type_byte));
    }
    if (has_nulls > 1) {
      return in.Fail("invalid has_nulls flag " + std::to_string(has_nulls));
    }
    std::vector<uint8_t> valid;
    if (has_nulls == 1) {
      AF_RETURN_NOT_OK(in.SkipAlignment());
      size_t bitmap_bytes = (num_rows + 7) / 8;
      AF_RETURN_NOT_OK(in.Need(bitmap_bytes, "validity bitmap"));
      valid.resize(num_rows);
      for (uint64_t i = 0; i < num_rows; ++i) {
        valid[i] = (static_cast<unsigned char>(in.data[in.pos + i / 8]) >>
                    (i % 8)) &
                   1u;
      }
      in.pos += bitmap_bytes;
    }
    Column col;
    AF_RETURN_NOT_OK(ReadColumnData(&in, static_cast<DataType>(type_byte),
                                    num_rows, valid, &col));
    AF_RETURN_NOT_OK(table.AddColumn(col_name, std::move(col)));
  }
  AF_RETURN_NOT_OK(in.SkipAlignment());  // the writer's trailing pad
  if (in.Remaining() != 0) {
    return in.Fail(std::to_string(in.Remaining()) +
                   " trailing bytes after the last column");
  }
  return table;
}

Status WriteColumnarFile(const Table& table, const std::string& path) {
  std::string image = WriteColumnarBuffer(table);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  out.flush();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<Table> ReadColumnarFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  std::string fallback = std::filesystem::path(path).stem().string();
  return ReadColumnarBuffer(buffer.str(), fallback);
}

}  // namespace autofeat
