// Option-surface coverage of the baseline methods.

#include <gtest/gtest.h>

#include "baselines/arda.h"
#include "baselines/join_all.h"
#include "baselines/mab.h"
#include "datagen/lake_builder.h"

namespace autofeat::baselines {
namespace {

struct Fixture {
  datagen::BuiltLake built;
  DatasetRelationGraph drg;

  Fixture() {
    datagen::LakeSpec spec;
    spec.name = "opt";
    spec.rows = 500;
    spec.joinable_tables = 5;
    spec.total_features = 20;
    spec.star_schema = true;  // All tables direct: every method applies.
    spec.seed = 29;
    built = datagen::BuildLake(spec);
    drg = BuildDrgFromKfk(built.lake).MoveValue();
  }
};

TEST(JoinAllOptionsTest, MaxTablesCapsJoins) {
  Fixture fix;
  JoinAllOptions options;
  options.max_tables = 3;  // Includes the base in the count.
  JoinAll method(options);
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->tables_joined, 3u);
}

TEST(JoinAllOptionsTest, FilterKeepBudgetOfOne) {
  Fixture fix;
  JoinAllOptions options;
  options.filter = true;
  options.keep_features = 1;
  JoinAll method(options);
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->augmented.num_columns(), 2u);  // 1 feature + label.
}

TEST(ArdaOptionsTest, MoreTrialsCostMoreTime) {
  Fixture fix;
  ArdaOptions cheap;
  cheap.num_trials = 1;
  cheap.wrapper_fractions = {1.0};
  ArdaOptions expensive;
  expensive.num_trials = 6;
  expensive.wrapper_fractions = {0.25, 0.5, 0.75, 1.0};
  Arda a(cheap), b(expensive);
  auto ra = a.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                      fix.built.label_column);
  auto rb = b.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                      fix.built.label_column);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_LT(ra->feature_selection_seconds, rb->feature_selection_seconds);
}

TEST(ArdaOptionsTest, SurvivorsNeverEmpty) {
  // Even with an absurd beat requirement the method degrades to keeping
  // all features rather than returning an empty table.
  Fixture fix;
  ArdaOptions harsh;
  harsh.beat_fraction = 1.1;  // Impossible to satisfy.
  harsh.num_trials = 2;
  Arda method(harsh);
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->augmented.num_columns(), 1u);
  EXPECT_TRUE(result->augmented.HasColumn(fix.built.label_column));
}

TEST(MabOptionsTest, ZeroEpisodesJoinsNothing) {
  Fixture fix;
  MabOptions options;
  options.episodes = 0;
  Mab method(options);
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tables_joined, 0u);
  auto base = fix.built.lake.GetTable(fix.built.base_table);
  EXPECT_EQ(result->augmented.num_columns(), (*base)->num_columns());
}

TEST(MabOptionsTest, MoreEpisodesNeverJoinFewer) {
  Fixture fix;
  MabOptions few;
  few.episodes = 2;
  few.seed = 5;
  MabOptions many;
  many.episodes = 16;
  many.seed = 5;
  Mab a(few), b(many);
  auto ra = a.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                      fix.built.label_column);
  auto rb = b.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                      fix.built.label_column);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_LE(ra->tables_joined, rb->tables_joined);
}

}  // namespace
}  // namespace autofeat::baselines
