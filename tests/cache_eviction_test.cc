// Memory-budgeted cache eviction: LRU order, the cost-aware victim
// tie-break, budget enforcement (the bytes gauges never exceed the budget),
// rebuild-on-miss reproducibility, pin lifetime across eviction, and the
// metrics-as-assertion accounting audit for both lake caches
// (JoinIndexCache and LakeSketchCache).
//
// The concurrent stress tests at the bottom are the TSan targets: workers
// hammer GetOrBuild while other workers run the adversarial eviction
// schedules (EvictAll / EvictRandomHalf) underneath them.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/lake_builder.h"
#include "discovery/data_lake.h"
#include "discovery/join_index_cache.h"
#include "discovery/sketch_cache.h"
#include "graph/drg.h"
#include "obs/metrics.h"
#include "relational/join_index.h"
#include "table/column.h"
#include "table/table.h"
#include "util/thread_pool.h"

namespace autofeat {
namespace {

// A table whose key column "k" holds `keys` distinct string keys of width
// `width` plus a payload column — footprint of the join index (and of the
// column sketch) grows with both knobs.
Table KeyTable(const std::string& name, size_t keys, size_t width) {
  std::vector<std::string> k(keys);
  std::vector<double> v(keys);
  for (size_t i = 0; i < keys; ++i) {
    k[i] = name + "_" + std::string(width, 'x') + std::to_string(i);
    v[i] = static_cast<double>(i);
  }
  Table table(name);
  table.AddColumn("k", Column::Strings(k)).Abort();
  table.AddColumn("v", Column::Doubles(v)).Abort();
  return table;
}

DataLake LakeOf(std::vector<Table> tables) {
  DataLake lake;
  for (Table& t : tables) lake.AddTable(std::move(t)).Abort();
  return lake;
}

// Footprint of one (table, "k") join-index entry, measured with a throwaway
// unbudgeted cache.
size_t IndexEntryBytes(const DataLake& lake, const std::string& table) {
  JoinIndexCache probe(&lake, /*seed=*/7);
  probe.GetOrBuild(table, "k").status().Abort();
  return probe.resident_bytes();
}

// Footprint of one table's sketch-cache entry, likewise.
size_t SketchEntryBytes(const DataLake& lake, size_t table_index) {
  LakeSketchCache probe(&lake, /*max_sample=*/64);
  probe.GetOrBuild(table_index);
  return probe.resident_bytes();
}

int64_t Counter(const obs::MetricsRegistry& registry, const std::string& n) {
  return registry.CounterValue(n);
}

// ---------------------------------------------------------------------------
// JoinIndexCache
// ---------------------------------------------------------------------------

TEST(JoinIndexCacheEvictionTest, UnbudgetedCacheNeverEvicts) {
  DataLake lake = LakeOf({KeyTable("a", 50, 8), KeyTable("b", 80, 8),
                          KeyTable("c", 20, 8)});
  obs::MetricsRegistry registry;
  JoinIndexCache cache(&lake, 7, &registry);
  for (const char* t : {"a", "b", "c"}) {
    cache.GetOrBuild(t, "k").status().Abort();
  }
  EXPECT_EQ(cache.num_entries(), 3u);
  EXPECT_EQ(cache.num_resident(), 3u);
  EXPECT_EQ(Counter(registry, "join_index_cache.evictions"), 0);
  EXPECT_EQ(Counter(registry, "join_index_cache.rebuilds"), 0);
  EXPECT_EQ(registry.GaugeValue("join_index_cache.bytes"),
            static_cast<int64_t>(cache.resident_bytes()));
}

TEST(JoinIndexCacheEvictionTest, LruEvictsLeastRecentlyUsedFirst) {
  // Three tables with identical key shapes (same count, same lengths —
  // ApproxBytes is size-based), so every entry has the same footprint E and
  // the recency order alone decides the victim.
  DataLake lake = LakeOf({KeyTable("a", 40, 8), KeyTable("b", 40, 8),
                          KeyTable("c", 40, 8)});
  const size_t entry = IndexEntryBytes(lake, "a");
  ASSERT_GT(entry, 0u);
  ASSERT_EQ(entry, IndexEntryBytes(lake, "b"));

  obs::MetricsRegistry registry;
  JoinIndexCache cache(&lake, 7, &registry, nullptr,
                       /*budget_bytes=*/2 * entry);
  cache.GetOrBuild("a", "k").status().Abort();
  cache.GetOrBuild("b", "k").status().Abort();
  EXPECT_EQ(cache.num_resident(), 2u);
  // Touch `a`: now `b` is the least recently used.
  cache.GetOrBuild("a", "k").status().Abort();
  cache.GetOrBuild("c", "k").status().Abort();
  EXPECT_EQ(cache.num_resident(), 2u);
  EXPECT_EQ(Counter(registry, "join_index_cache.evictions"), 1);

  // `a` and `c` must still be resident (hits), `b` must have been the
  // victim (rebuild).
  EXPECT_EQ(Counter(registry, "join_index_cache.rebuilds"), 0);
  cache.GetOrBuild("c", "k").status().Abort();
  EXPECT_EQ(Counter(registry, "join_index_cache.rebuilds"), 0);
  cache.GetOrBuild("b", "k").status().Abort();
  EXPECT_EQ(Counter(registry, "join_index_cache.rebuilds"), 1);
}

TEST(JoinIndexCacheEvictionTest, PrewarmEvictsTheLargestEntryFirst) {
  // All Prewarm entries share one recency tick, so the victim choice falls
  // through to the cost-aware tie-break: largest footprint goes first.
  // Prewarm inserts targets in sorted name order — (sat_small, sat_wide,
  // zbase) here — and the budget is one byte short of the total, so exactly
  // one eviction fires while inserting `zbase`, and its victim must be the
  // wide entry even though the small one is equally recent.
  DataLake lake = LakeOf({KeyTable("sat_small", 16, 4),
                          KeyTable("sat_wide", 200, 32),
                          KeyTable("zbase", 8, 4)});
  lake.AddKfk({"zbase", "k", "sat_small", "k"});
  lake.AddKfk({"zbase", "k", "sat_wide", "k"});
  const size_t small = IndexEntryBytes(lake, "sat_small");
  const size_t wide = IndexEntryBytes(lake, "sat_wide");
  const size_t base = IndexEntryBytes(lake, "zbase");
  ASSERT_LT(small, wide);
  ASSERT_LT(base, wide);

  auto drg = BuildDrgFromKfk(lake);
  drg.status().Abort();
  obs::MetricsRegistry registry;
  JoinIndexCache cache(&lake, 7, &registry, nullptr,
                       /*budget_bytes=*/small + wide + base - 1);
  cache.Prewarm(*drg);
  EXPECT_EQ(cache.num_resident(), 2u);
  EXPECT_EQ(cache.resident_bytes(), small + base);
  EXPECT_EQ(Counter(registry, "join_index_cache.evictions"), 1);

  EXPECT_EQ(Counter(registry, "join_index_cache.rebuilds"), 0);
  cache.GetOrBuild("sat_small", "k").status().Abort();
  cache.GetOrBuild("zbase", "k").status().Abort();
  EXPECT_EQ(Counter(registry, "join_index_cache.rebuilds"), 0);
  cache.GetOrBuild("sat_wide", "k").status().Abort();
  EXPECT_EQ(Counter(registry, "join_index_cache.rebuilds"), 1);
}

TEST(JoinIndexCacheEvictionTest, BudgetIsNeverExceeded) {
  DataLake lake = LakeOf({KeyTable("a", 30, 6), KeyTable("b", 60, 10),
                          KeyTable("c", 90, 14), KeyTable("d", 120, 18),
                          KeyTable("e", 15, 4)});
  const size_t largest = IndexEntryBytes(lake, "d");
  const size_t budget = largest + largest / 2;

  obs::MetricsRegistry registry;
  JoinIndexCache cache(&lake, 7, &registry, nullptr, budget);
  const char* names[] = {"a", "b", "c", "d", "e"};
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 5; ++i) {
      const char* t = names[(i * 3 + round) % 5];
      auto pin = cache.GetOrBuild(t, "k");
      pin.status().Abort();
      EXPECT_LE(cache.resident_bytes(), budget);
      EXPECT_LE(registry.GaugeValue("join_index_cache.bytes"),
                static_cast<int64_t>(budget));
    }
    if (round == 1) cache.EvictRandomHalf(round);
    if (round == 2) cache.EvictAll();
  }
  // The peak gauge — the high-water mark across the whole run — must also
  // respect the budget: eviction happens before an insertion overflows.
  EXPECT_LE(registry.GaugeValue("join_index_cache.bytes_peak"),
            static_cast<int64_t>(budget));
  EXPECT_GT(registry.GaugeValue("join_index_cache.bytes_peak"), 0);
}

TEST(JoinIndexCacheEvictionTest, OversizedEntryStaysPinOnly) {
  DataLake lake = LakeOf({KeyTable("big", 100, 24)});
  const size_t entry = IndexEntryBytes(lake, "big");
  obs::MetricsRegistry registry;
  JoinIndexCache cache(&lake, 7, &registry, nullptr,
                       /*budget_bytes=*/entry / 2);
  auto pin = cache.GetOrBuild("big", "k");
  pin.status().Abort();
  EXPECT_EQ((*pin)->num_distinct_keys(), 100u);
  // The entry is handed to the caller but never becomes resident, so the
  // byte gauges stay within the (too-small) budget.
  EXPECT_EQ(cache.num_resident(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(registry.GaugeValue("join_index_cache.bytes"), 0);
  EXPECT_EQ(registry.GaugeValue("join_index_cache.bytes_peak"), 0);
}

TEST(JoinIndexCacheEvictionTest, RebuildReproducesTheIdenticalEntry) {
  DataLake lake = LakeOf({KeyTable("a", 64, 8)});
  // Duplicate some keys so the representative draws actually consume the
  // per-entry RNG stream (the reproducibility claim under test).
  Table dup("dup");
  dup.AddColumn("k", Column::Strings({"x", "y", "x", "y", "x", "z"})).Abort();
  dup.AddColumn("v", Column::Doubles({1, 2, 3, 4, 5, 6})).Abort();
  lake.AddTable(std::move(dup)).Abort();

  JoinIndexCache cache(&lake, /*seed=*/42);
  auto first = cache.GetOrBuild("dup", "k");
  first.status().Abort();
  const std::vector<uint32_t> reps = (*first)->representative;
  cache.EvictAll();
  EXPECT_EQ(cache.num_resident(), 0u);
  auto rebuilt = cache.GetOrBuild("dup", "k");
  rebuilt.status().Abort();
  EXPECT_NE(first->get(), rebuilt->get());
  EXPECT_EQ((*rebuilt)->representative, reps);
  // And a fresh cache with the same seed builds the same entry too.
  JoinIndexCache other(&lake, /*seed=*/42);
  auto independent = other.GetOrBuild("dup", "k");
  independent.status().Abort();
  EXPECT_EQ((*independent)->representative, reps);
}

TEST(JoinIndexCacheEvictionTest, PinOutlivesEviction) {
  DataLake lake = LakeOf({KeyTable("a", 32, 8)});
  JoinIndexCache cache(&lake, 7);
  auto pin = cache.GetOrBuild("a", "k");
  pin.status().Abort();
  cache.EvictAll();
  EXPECT_EQ(cache.num_resident(), 0u);
  // The pin keeps the evicted index alive and usable (ASan checks this).
  EXPECT_EQ((*pin)->num_distinct_keys(), 32u);
  EXPECT_GT((*pin)->ApproxBytes(), 0u);
}

TEST(JoinIndexCacheEvictionTest, EvictRandomHalfIsDeterministic) {
  DataLake lake = LakeOf({KeyTable("a", 10, 4), KeyTable("b", 10, 4),
                          KeyTable("c", 10, 4), KeyTable("d", 10, 4),
                          KeyTable("e", 10, 4), KeyTable("f", 10, 4)});
  auto populate = [&lake](JoinIndexCache* cache) {
    for (const char* t : {"a", "b", "c", "d", "e", "f"}) {
      cache->GetOrBuild(t, "k").status().Abort();
    }
  };
  // Same draw, same resident survivors.
  JoinIndexCache c1(&lake, 7), c2(&lake, 7), c3(&lake, 7);
  populate(&c1);
  populate(&c2);
  populate(&c3);
  c1.EvictRandomHalf(0xABCDEF);
  c2.EvictRandomHalf(0xABCDEF);
  EXPECT_EQ(c1.num_resident(), c2.num_resident());
  // A draw and its bit-flipped complement evict complementary halves.
  c3.EvictRandomHalf(0xABCDEF ^ 1);
  EXPECT_EQ(c1.num_resident() + c3.num_resident(), 6u);
}

// Satellite 4: metrics-as-assertion accounting audit. After Prewarm over a
// generated lake, the bytes gauge, the cache's own resident_bytes() and the
// sum of the per-entry ApproxBytes must all agree exactly, and the lake
// footprint is the sum of the tables' ApproxBytes.
TEST(JoinIndexCacheEvictionTest, PrewarmAccountingAudit) {
  datagen::LakeSpec spec;
  spec.rows = 200;
  spec.joinable_tables = 4;
  spec.total_features = 20;
  datagen::BuiltLake built = datagen::BuildLake(spec);
  auto drg = BuildDrgFromKfk(built.lake);
  drg.status().Abort();

  obs::MetricsRegistry registry;
  JoinIndexCache cache(&built.lake, 42, &registry);
  ThreadPool pool(4);
  cache.Prewarm(*drg, &pool);
  ASSERT_GT(cache.num_resident(), 0u);
  EXPECT_EQ(cache.num_resident(), cache.num_entries());

  // Re-requesting every prewarmed target must be a pure hit (no rebuilds)
  // and lets us sum the independent per-entry footprints.
  const int64_t builds = Counter(registry, "join_index_cache.builds");
  size_t pinned_bytes = 0;
  for (size_t node = 0; node < (*drg).num_nodes(); ++node) {
    for (size_t neighbor : (*drg).Neighbors(node)) {
      for (const JoinStep& edge : (*drg).EdgesBetween(node, neighbor)) {
        auto pin =
            cache.GetOrBuild((*drg).NodeName(edge.to_node), edge.to_column);
        pin.status().Abort();
        pinned_bytes += (*pin)->ApproxBytes();
      }
    }
  }
  EXPECT_EQ(Counter(registry, "join_index_cache.builds"), builds);
  EXPECT_EQ(Counter(registry, "join_index_cache.rebuilds"), 0);
  // Some (to_node, to_column) targets repeat across edge orientations;
  // dedupe by accepting pinned_bytes as an upper multiple — but the gauge
  // itself must equal resident_bytes exactly.
  EXPECT_EQ(registry.GaugeValue("join_index_cache.bytes"),
            static_cast<int64_t>(cache.resident_bytes()));
  EXPECT_GE(pinned_bytes, cache.resident_bytes());

  // Lake accounting: the per-table footprints sum to the lake footprint
  // reported by the CLI's lake.bytes gauge.
  size_t lake_bytes = 0;
  for (const Table& table : built.lake.tables()) {
    lake_bytes += table.ApproxBytes();
  }
  EXPECT_GT(lake_bytes, 0u);
  EXPECT_GT(lake_bytes, cache.resident_bytes());
}

TEST(JoinIndexCacheEvictionTest, ConcurrentHitsEvictionsAndRebuilds) {
  DataLake lake = LakeOf({KeyTable("a", 40, 8), KeyTable("b", 70, 12),
                          KeyTable("c", 100, 16), KeyTable("d", 25, 6)});
  const size_t expected[] = {40, 70, 100, 25};
  const char* names[] = {"a", "b", "c", "d"};
  const size_t budget = IndexEntryBytes(lake, "c") + IndexEntryBytes(lake, "b");

  obs::MetricsRegistry registry;
  JoinIndexCache cache(&lake, 7, &registry, nullptr, budget);
  ThreadPool pool(8);
  std::atomic<int> failures{0};
  ParallelFor(&pool, 0, 512, /*grain=*/1, [&](size_t i) {
    if (i % 13 == 0) {
      cache.EvictAll();
      return;
    }
    if (i % 7 == 0) {
      cache.EvictRandomHalf(i);
      return;
    }
    const size_t t = i % 4;
    auto pin = cache.GetOrBuild(names[t], "k");
    if (!pin.ok() || (*pin)->num_distinct_keys() != expected[t]) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.resident_bytes(), budget);
  EXPECT_LE(registry.GaugeValue("join_index_cache.bytes_peak"),
            static_cast<int64_t>(budget));
}

// ---------------------------------------------------------------------------
// LakeSketchCache
// ---------------------------------------------------------------------------

TEST(LakeSketchCacheEvictionTest, BudgetEvictionAndRebuild) {
  DataLake lake = LakeOf({KeyTable("a", 30, 6), KeyTable("b", 60, 10),
                          KeyTable("c", 90, 14), KeyTable("d", 45, 8)});
  const size_t largest = SketchEntryBytes(lake, 2);
  const size_t budget = largest + largest / 2;

  obs::MetricsRegistry registry;
  LakeSketchCache cache(&lake, /*max_sample=*/64, &registry, budget);
  std::vector<LakeSketchCache::TableSketchesPin> first(4);
  for (int round = 0; round < 3; ++round) {
    for (size_t t = 0; t < 4; ++t) {
      LakeSketchCache::TableSketchesPin pin = cache.GetOrBuild(t);
      ASSERT_NE(pin, nullptr);
      ASSERT_EQ(pin->size(), 2u);  // "k" and "v"
      EXPECT_LE(cache.resident_bytes(), budget);
      if (round == 0) {
        first[t] = pin;
      } else {
        // Rebuilt-after-eviction sketches are value-identical to the
        // originals (same sampled sets, same distinct counts).
        for (size_t col = 0; col < 2; ++col) {
          EXPECT_EQ((*pin)[col].values, (*first[t])[col].values);
          EXPECT_EQ((*pin)[col].num_distinct, (*first[t])[col].num_distinct);
        }
      }
    }
  }
  EXPECT_GT(Counter(registry, "sketch_cache.evictions"), 0);
  EXPECT_GT(Counter(registry, "sketch_cache.rebuilds"), 0);
  EXPECT_LE(registry.GaugeValue("sketch_cache.bytes_peak"),
            static_cast<int64_t>(budget));
}

TEST(LakeSketchCacheEvictionTest, PrewarmAccountingAudit) {
  DataLake lake = LakeOf({KeyTable("a", 30, 6), KeyTable("b", 60, 10),
                          KeyTable("c", 15, 4)});
  obs::MetricsRegistry registry;
  LakeSketchCache cache =
      LakeSketchCache::Build(lake, /*max_sample=*/64, nullptr, &registry);
  EXPECT_EQ(cache.num_resident(), 3u);

  size_t pinned_bytes = 0;
  for (size_t t = 0; t < lake.num_tables(); ++t) {
    LakeSketchCache::TableSketchesPin pin = cache.GetOrBuild(t);
    size_t entry = sizeof(std::vector<ColumnSketch>);
    for (const ColumnSketch& sketch : *pin) entry += sketch.ApproxBytes();
    pinned_bytes += entry;
  }
  EXPECT_EQ(cache.resident_bytes(), pinned_bytes);
  EXPECT_EQ(registry.GaugeValue("sketch_cache.bytes"),
            static_cast<int64_t>(pinned_bytes));
  EXPECT_EQ(registry.GaugeValue("sketch_cache.bytes_peak"),
            static_cast<int64_t>(pinned_bytes));
}

TEST(LakeSketchCacheEvictionTest, EvictAllKeepsPinsValidAndRebuilds) {
  DataLake lake = LakeOf({KeyTable("a", 20, 6), KeyTable("b", 20, 6)});
  LakeSketchCache cache(&lake, /*max_sample=*/32);
  LakeSketchCache::TableSketchesPin pin = cache.GetOrBuild(0);
  cache.EvictAll();
  EXPECT_EQ(cache.num_resident(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  // The pin still reads the evicted entry; the compat accessor transparently
  // rebuilds and serves identical content.
  ASSERT_EQ(pin->size(), 2u);
  const std::vector<ColumnSketch>& again = cache.table_sketches(0);
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[0].values, (*pin)[0].values);
  EXPECT_EQ(again[0].num_distinct, (*pin)[0].num_distinct);
  EXPECT_EQ(cache.num_resident(), 1u);
}

TEST(LakeSketchCacheEvictionTest, OversizedEntryStaysPinOnly) {
  DataLake lake = LakeOf({KeyTable("big", 120, 24)});
  const size_t entry = SketchEntryBytes(lake, 0);
  obs::MetricsRegistry registry;
  LakeSketchCache cache(&lake, /*max_sample=*/64, &registry,
                        /*budget_bytes=*/entry / 2);
  LakeSketchCache::TableSketchesPin pin = cache.GetOrBuild(0);
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ((*pin)[0].num_distinct, 120u);
  EXPECT_EQ(cache.num_resident(), 0u);
  EXPECT_EQ(registry.GaugeValue("sketch_cache.bytes"), 0);
  EXPECT_EQ(registry.GaugeValue("sketch_cache.bytes_peak"), 0);
}

TEST(LakeSketchCacheEvictionTest, ConcurrentStressUnderBudget) {
  DataLake lake = LakeOf({KeyTable("a", 30, 6), KeyTable("b", 60, 10),
                          KeyTable("c", 90, 14), KeyTable("d", 45, 8)});
  const size_t budget = SketchEntryBytes(lake, 2) + SketchEntryBytes(lake, 1);
  obs::MetricsRegistry registry;
  LakeSketchCache cache(&lake, /*max_sample=*/64, &registry, budget);
  ThreadPool pool(8);
  std::atomic<int> failures{0};
  ParallelFor(&pool, 0, 512, /*grain=*/1, [&](size_t i) {
    if (i % 11 == 0) {
      cache.EvictAll();
      return;
    }
    LakeSketchCache::TableSketchesPin pin = cache.GetOrBuild(i % 4);
    if (pin == nullptr || pin->size() != 2) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.resident_bytes(), budget);
  EXPECT_LE(registry.GaugeValue("sketch_cache.bytes_peak"),
            static_cast<int64_t>(budget));
}

}  // namespace
}  // namespace autofeat
