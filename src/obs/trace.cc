#include "obs/trace.h"

#include <utility>

namespace autofeat::obs {

size_t Tracer::BeginSpan(std::string name) {
  std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = thread_ids_.emplace(tid, thread_ids_.size());
  std::vector<size_t>& stack = open_stacks_[tid];

  SpanRecord span;
  span.id = spans_.size() + 1;
  span.parent = stack.empty() ? 0 : stack.back();
  span.name = std::move(name);
  span.thread = it->second;
  span.start_seconds = clock_.ElapsedSeconds();
  stack.push_back(span.id);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(size_t id) {
  std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].end_seconds = clock_.ElapsedSeconds();
  auto stack_it = open_stacks_.find(tid);
  if (stack_it == open_stacks_.end()) return;
  // Well-nested callers pop the top; a mismatched EndSpan (a bug upstream)
  // still closes the named span without corrupting siblings.
  std::vector<size_t>& stack = stack_it->second;
  for (size_t i = stack.size(); i > 0; --i) {
    if (stack[i - 1] == id) {
      stack.erase(stack.begin() + static_cast<ptrdiff_t>(i - 1));
      break;
    }
  }
}

size_t Tracer::num_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

}  // namespace autofeat::obs
