// Microbenchmarks of the substrate hot paths (google-benchmark):
// hash left join, cardinality normalisation, Spearman, corrected MI,
// GBDT training, DRG path enumeration, schema matching.

#include <benchmark/benchmark.h>

#include "datagen/generator.h"
#include "datagen/lake_builder.h"
#include "discovery/schema_matcher.h"
#include "graph/drg.h"
#include "ml/gbdt.h"
#include "relational/join.h"
#include "stats/correlation.h"
#include "stats/discretize.h"
#include "stats/information.h"
#include "util/rng.h"

namespace autofeat {
namespace {

Table MakeKeyedTable(size_t rows, size_t features, uint64_t seed) {
  Rng rng(seed);
  Table t("t");
  std::vector<int64_t> keys(rows);
  for (size_t i = 0; i < rows; ++i) keys[i] = static_cast<int64_t>(i);
  rng.Shuffle(&keys);
  t.AddColumn("key", Column::Int64s(std::move(keys))).Abort();
  for (size_t f = 0; f < features; ++f) {
    std::vector<double> values(rows);
    for (auto& v : values) v = rng.Normal(0, 1);
    t.AddColumn("f" + std::to_string(f), Column::Doubles(std::move(values)))
        .Abort();
  }
  return t;
}

void BM_LeftJoin(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Table left = MakeKeyedTable(rows, 4, 1);
  Table right = MakeKeyedTable(rows, 8, 2);
  for (auto _ : state) {
    Rng rng(3);
    auto result = LeftJoin(left, "key", right, "key", &rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_LeftJoin)->Arg(1000)->Arg(10000);

void BM_NormalizeCardinality(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Table t("dup");
  std::vector<int64_t> keys(rows);
  for (size_t i = 0; i < rows; ++i) {
    keys[i] = static_cast<int64_t>(rng.UniformIndex(rows / 4 + 1));
  }
  t.AddColumn("key", Column::Int64s(std::move(keys))).Abort();
  for (auto _ : state) {
    Rng pick(5);
    auto result = NormalizeJoinCardinality(t, "key", &pick);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_NormalizeCardinality)->Arg(10000);

void BM_Spearman(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal(0, 1);
    y[i] = x[i] + rng.Normal(0, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpearmanCorrelation(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Spearman)->Arg(1000)->Arg(10000);

void BM_MutualInformationCorrected(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal(0, 1);
    y[i] = x[i] + rng.Normal(0, 1);
  }
  auto cx = DiscretizeEqualFrequency(x, 10);
  auto cy = DiscretizeEqualFrequency(y, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MutualInformationCorrected(cx, cy));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MutualInformationCorrected)->Arg(1000)->Arg(10000);

void BM_GbdtFit(benchmark::State& state) {
  datagen::GeneratorOptions options;
  options.rows = static_cast<size_t>(state.range(0));
  options.informative_features = 5;
  options.noise_features = 10;
  Table table = datagen::GenerateClassification(options, "bench");
  auto data = ml::Dataset::FromTable(table, "label");
  data.status().Abort();
  for (auto _ : state) {
    ml::GbdtOptions gbdt_options;
    gbdt_options.num_rounds = 20;
    ml::Gbdt model(gbdt_options);
    model.Fit(*data).Abort();
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GbdtFit)->Arg(1000)->Arg(4000);

void BM_EnumeratePaths(benchmark::State& state) {
  datagen::LakeSpec spec;
  spec.rows = 50;  // Graph shape is what matters here.
  spec.joinable_tables = static_cast<size_t>(state.range(0));
  datagen::BuiltLake built = datagen::BuildLake(spec);
  auto drg = BuildDrgFromKfk(built.lake);
  drg.status().Abort();
  size_t base = *drg->NodeId(built.base_table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drg->EnumeratePaths(base, 4));
  }
}
BENCHMARK(BM_EnumeratePaths)->Arg(8)->Arg(16);

void BM_SchemaMatch(benchmark::State& state) {
  Table a = MakeKeyedTable(static_cast<size_t>(state.range(0)), 10, 8);
  Table b = MakeKeyedTable(static_cast<size_t>(state.range(0)), 10, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchSchemas(a, b));
  }
}
BENCHMARK(BM_SchemaMatch)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace autofeat

BENCHMARK_MAIN();
