#include "discovery/lsh_index.h"

#include <algorithm>
#include <unordered_map>

#include "discovery/data_lake.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace autofeat {

uint64_t LshValueHash(const std::string& value) {
  // FNV-1a 64: platform-stable, unlike std::hash (whose result may differ
  // across standard libraries and would leak into the candidate list).
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : value) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

MinHashSignature ComputeMinHashSignature(const ColumnSketch& sketch,
                                         size_t num_hashes) {
  MinHashSignature sig;
  if (sketch.values.empty() || num_hashes == 0) return sig;
  sig.mins.assign(num_hashes, ~uint64_t{0});
  for (const auto& value : sketch.values) {
    // Batched over the derivation streams: the vector kernel re-derives the
    // splitmix64 finaliser in 64-bit lanes, bit-exact with DeriveSeed — the
    // signatures feed the candidate list and must not depend on the
    // build's ISA.
    simd::MinHashUpdate(LshValueHash(value), sig.mins.data(), num_hashes);
  }
  return sig;
}

MinHashSignature ComputeMinHashSignatureReference(const ColumnSketch& sketch,
                                                  size_t num_hashes) {
  MinHashSignature sig;
  if (sketch.values.empty() || num_hashes == 0) return sig;
  sig.mins.assign(num_hashes, ~uint64_t{0});
  for (const auto& value : sketch.values) {
    uint64_t base = LshValueHash(value);
    for (size_t k = 0; k < num_hashes; ++k) {
      uint64_t h = DeriveSeed(base, k);
      if (h < sig.mins[k]) sig.mins[k] = h;
    }
  }
  return sig;
}

namespace {

// A column in the index: table position, column position, and its true
// distinct count (for the optional cardinality-ratio bound).
struct ColumnRef {
  uint32_t table = 0;
  uint32_t column = 0;
  uint64_t num_distinct = 0;
};

// Mixes a band's row minima into one bucket fingerprint.
uint64_t BandContentHash(const uint64_t* mins, size_t rows) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t r = 0; r < rows; ++r) {
    h ^= mins[r];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Shared by Build and the pairwise profile path — the two must agree on
// which columns enter buckets for the candidate decisions to be identical.
bool RescuedByContainment(const ColumnSketch& sketch,
                          const LshOptions& options) {
  return options.small_column_rescue > 0 && !sketch.values.empty() &&
         sketch.num_distinct >= options.min_distinct &&
         sketch.num_distinct <= options.small_column_rescue;
}

}  // namespace

ColumnLshProfile ComputeColumnLshProfile(const ColumnSketch& sketch,
                                         DataType type,
                                         const LshOptions& options) {
  ColumnLshProfile profile;
  profile.num_distinct = sketch.num_distinct;
  MinHashSignature sig;
  if (sketch.num_distinct >= options.min_distinct) {
    sig = ComputeMinHashSignature(sketch, options.num_hashes());
  }
  const bool rescued = RescuedByContainment(sketch, options);
  if (sig.empty() && !rescued) return profile;
  profile.indexed = true;
  const uint64_t group = type != DataType::kDouble ? 1 : 0;
  for (size_t b = 0; b * options.rows_per_band < sig.mins.size(); ++b) {
    uint64_t content = BandContentHash(
        sig.mins.data() + b * options.rows_per_band,
        std::min(options.rows_per_band,
                 sig.mins.size() - b * options.rows_per_band));
    profile.bucket_keys.push_back(DeriveSeed(content, 2 * b + group));
  }
  if (rescued) {
    const uint64_t rescue_stream_base = 2 * options.num_bands;
    for (const auto& value : sketch.values) {
      profile.bucket_keys.push_back(
          DeriveSeed(LshValueHash(value), rescue_stream_base + group));
    }
  }
  std::sort(profile.bucket_keys.begin(), profile.bucket_keys.end());
  return profile;
}

std::vector<ColumnLshProfile> ComputeTableLshProfiles(
    const Table& table, const std::vector<ColumnSketch>& sketches,
    const LshOptions& options) {
  std::vector<ColumnLshProfile> profiles(sketches.size());
  for (size_t c = 0; c < sketches.size(); ++c) {
    profiles[c] = ComputeColumnLshProfile(
        sketches[c], table.schema().field(c).type, options);
  }
  return profiles;
}

bool LshProfilesCollide(const ColumnLshProfile& a, const ColumnLshProfile& b,
                        const LshOptions& options) {
  if (!a.indexed || !b.indexed) return false;
  if (options.max_cardinality_ratio > 0) {
    uint64_t lo = std::min(a.num_distinct, b.num_distinct);
    uint64_t hi = std::max(a.num_distinct, b.num_distinct);
    if (static_cast<double>(hi) >
        options.max_cardinality_ratio * static_cast<double>(lo)) {
      return false;
    }
  }
  // Sorted-list intersection over the bucket keys.
  size_t i = 0, j = 0;
  while (i < a.bucket_keys.size() && j < b.bucket_keys.size()) {
    if (a.bucket_keys[i] == b.bucket_keys[j]) return true;
    if (a.bucket_keys[i] < b.bucket_keys[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool LshTablesCollide(const std::vector<ColumnLshProfile>& a,
                      const std::vector<ColumnLshProfile>& b,
                      const LshOptions& options) {
  for (const ColumnLshProfile& ca : a) {
    for (const ColumnLshProfile& cb : b) {
      if (LshProfilesCollide(ca, cb, options)) return true;
    }
  }
  return false;
}

LshCandidateIndex LshCandidateIndex::Build(const DataLake& lake,
                                           LakeSketchCache& cache,
                                           const LshOptions& options,
                                           ThreadPool* pool,
                                           obs::MetricsRegistry* metrics) {
  LshCandidateIndex index;
  const auto& tables = lake.tables();
  const size_t num_hashes = options.num_hashes();

  // Stage 1: per-column MinHash signatures, one task per table. Each slot is
  // written by exactly one task and the signature is a pure function of the
  // column's sketch, so the fan-out is thread-count-independent.
  std::vector<std::vector<MinHashSignature>> signatures(tables.size());
  obs::Tracer* tracer = pool != nullptr ? pool->tracer() : nullptr;
  obs::TaskContext ctx =
      obs::CaptureTaskContext(tables.empty() ? nullptr : tracer);
  ParallelFor(pool, 0, tables.size(), /*grain=*/1, [&](size_t t) {
    obs::ScopedWorkerSpan span(ctx, "sketch.minhash");
    LakeSketchCache::TableSketchesPin pin = cache.GetOrBuild(t);
    const auto& sketches = *pin;
    std::vector<MinHashSignature> sigs(sketches.size());
    for (size_t c = 0; c < sketches.size(); ++c) {
      if (sketches[c].num_distinct < options.min_distinct) continue;
      sigs[c] = ComputeMinHashSignature(sketches[c], num_hashes);
    }
    signatures[t] = std::move(sigs);
  });

  // Stage 2: banding + small-column rescue, sequential (bucket fill is
  // cheap relative to signature hashing; a shared hash map is not worth the
  // synchronisation). Bucket keys live in one keyspace, separated by
  // derivation stream: band b of type group g uses stream 2b+g, the two
  // rescue streams come after every band stream. Key-like columns
  // (int64/string) and doubles never share buckets, mirroring the matcher's
  // join-plausibility filter.
  std::unordered_map<uint64_t, std::vector<ColumnRef>> buckets;
  const uint64_t rescue_stream_base = 2 * options.num_bands;
  for (size_t t = 0; t < tables.size(); ++t) {
    LakeSketchCache::TableSketchesPin pin = cache.GetOrBuild(t);
    const auto& sketches = *pin;
    for (size_t c = 0; c < sketches.size(); ++c) {
      const ColumnSketch& sketch = sketches[c];
      const MinHashSignature& sig = signatures[t][c];
      bool rescued = RescuedByContainment(sketch, options);
      if (sig.empty() && !rescued) {
        ++index.columns_skipped_;
        continue;
      }
      ++index.columns_indexed_;
      index.signature_bytes_ += sig.ApproxBytes();
      uint64_t group =
          tables[t].schema().field(c).type != DataType::kDouble ? 1 : 0;
      ColumnRef ref{static_cast<uint32_t>(t), static_cast<uint32_t>(c),
                    sketch.num_distinct};
      for (size_t b = 0; b * options.rows_per_band < sig.mins.size(); ++b) {
        uint64_t content = BandContentHash(
            sig.mins.data() + b * options.rows_per_band,
            std::min(options.rows_per_band,
                     sig.mins.size() - b * options.rows_per_band));
        buckets[DeriveSeed(content, 2 * b + group)].push_back(ref);
        ++index.bucket_entries_;
      }
      if (rescued) {
        // Every sketch value gets its own bucket: two rescued columns whose
        // sketches intersect at all are guaranteed a collision, covering
        // asymmetric containment joins banding would miss.
        for (const auto& value : sketch.values) {
          buckets[DeriveSeed(LshValueHash(value), rescue_stream_base + group)]
              .push_back(ref);
          ++index.bucket_entries_;
        }
      }
    }
  }

  // Stage 3: every cross-table pair sharing a bucket becomes a candidate
  // table pair. The pair list is sorted and deduplicated, so neither the
  // map's iteration order nor the thread count can leak into the output.
  std::vector<std::pair<size_t, size_t>> pairs;
  for (const auto& [key, refs] : buckets) {
    (void)key;
    if (refs.size() < 2) continue;
    for (size_t a = 0; a < refs.size(); ++a) {
      for (size_t b = a + 1; b < refs.size(); ++b) {
        if (refs[a].table == refs[b].table) continue;
        if (options.max_cardinality_ratio > 0) {
          uint64_t lo = std::min(refs[a].num_distinct, refs[b].num_distinct);
          uint64_t hi = std::max(refs[a].num_distinct, refs[b].num_distinct);
          if (static_cast<double>(hi) >
              options.max_cardinality_ratio * static_cast<double>(lo)) {
            continue;
          }
        }
        ++index.bucket_collisions_;
        pairs.emplace_back(std::min(refs[a].table, refs[b].table),
                           std::max(refs[a].table, refs[b].table));
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  index.pairs_ = std::move(pairs);

  obs::Increment(obs::GetCounter(metrics, "lsh.bands"), options.num_bands);
  obs::Increment(obs::GetCounter(metrics, "lsh.signature_bytes"),
                 index.signature_bytes_);
  obs::Increment(obs::GetCounter(metrics, "lsh.columns_indexed"),
                 index.columns_indexed_);
  obs::Increment(obs::GetCounter(metrics, "lsh.columns_skipped"),
                 index.columns_skipped_);
  obs::Increment(obs::GetCounter(metrics, "lsh.bucket_collisions"),
                 index.bucket_collisions_);
  obs::AddBytesWithPeak(obs::GetGauge(metrics, "lsh_index.bytes"),
                        obs::GetGauge(metrics, "lsh_index.bytes_peak"),
                        static_cast<int64_t>(index.ApproxBytes()));
  return index;
}

size_t LshCandidateIndex::ApproxBytes() const {
  return sizeof(LshCandidateIndex) + signature_bytes_ +
         bucket_entries_ * (sizeof(ColumnRef) + sizeof(uint64_t)) +
         pairs_.size() * sizeof(std::pair<size_t, size_t>);
}

}  // namespace autofeat
