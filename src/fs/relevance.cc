#include "fs/relevance.h"

#include <algorithm>
#include <cmath>

#include "stats/correlation.h"
#include "stats/information.h"
#include "stats/relief.h"

namespace autofeat {

const char* RelevanceKindName(RelevanceKind kind) {
  switch (kind) {
    case RelevanceKind::kInformationGain: return "IG";
    case RelevanceKind::kSymmetricalUncertainty: return "SU";
    case RelevanceKind::kPearson: return "Pearson";
    case RelevanceKind::kSpearman: return "Spearman";
    case RelevanceKind::kRelief: return "Relief";
  }
  return "invalid";
}

std::vector<FeatureScore> ScoreRelevance(
    const FeatureView& view, const std::vector<size_t>& feature_indices,
    const RelevanceOptions& options) {
  // Score the caller's index list in place — this runs once per candidate
  // under BFS evaluation, and copying the list was a per-candidate
  // allocation. The all-features default still materialises its own list.
  std::vector<size_t> all_features;
  if (feature_indices.empty()) {
    all_features.resize(view.num_features());
    for (size_t i = 0; i < all_features.size(); ++i) all_features[i] = i;
  }
  const std::vector<size_t>& indices =
      feature_indices.empty() ? all_features : feature_indices;

  std::vector<FeatureScore> scores;
  scores.reserve(indices.size());

  if (options.kind == RelevanceKind::kRelief) {
    // Relief scores all features jointly (distances use every feature).
    std::vector<std::vector<double>> matrix;
    matrix.reserve(indices.size());
    for (size_t f : indices) matrix.push_back(view.numeric(f));
    Rng rng(options.seed);
    std::vector<double> weights =
        ReliefScores(matrix, view.label_codes(), options.relief_samples, &rng);
    for (size_t i = 0; i < indices.size(); ++i) {
      scores.push_back({view.name(indices[i]), weights[i]});
    }
    return scores;
  }

  for (size_t f : indices) {
    double s = 0.0;
    switch (options.kind) {
      case RelevanceKind::kInformationGain:
        s = InformationGain(view.codes(f), view.label_codes());
        break;
      case RelevanceKind::kSymmetricalUncertainty:
        s = SymmetricalUncertainty(view.codes(f), view.label_codes());
        break;
      case RelevanceKind::kPearson:
        s = std::abs(PearsonCorrelation(view.numeric(f), view.label_numeric()));
        break;
      case RelevanceKind::kSpearman:
        s = std::abs(
            SpearmanCorrelation(view.numeric(f), view.label_numeric()));
        break;
      case RelevanceKind::kRelief:
        break;  // Handled above.
    }
    scores.push_back({view.name(f), s});
  }
  return scores;
}

std::vector<FeatureScore> SelectKBest(std::vector<FeatureScore> scores,
                                      size_t k, double min_score) {
  // Ties break by name: with score-order alone, equally scored features
  // (e.g. duplicated columns) would be kept in input order, making the
  // selection — and everything downstream of it — depend on the physical
  // column order of the source table.
  std::stable_sort(scores.begin(), scores.end(),
                   [](const FeatureScore& a, const FeatureScore& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.name < b.name;
                   });
  std::vector<FeatureScore> out;
  for (const auto& s : scores) {
    if (out.size() >= k) break;
    if (s.score <= min_score) break;  // Sorted, so the rest are no better.
    out.push_back(s);
  }
  return out;
}

}  // namespace autofeat
