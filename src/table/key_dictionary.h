// Interned join keys: dictionary-encoding of a key column into dense ids.
//
// Joins used to compare keys through Column::KeyAt, which allocates a
// std::string per row per probe. A KeyDictionary canonicalises each key once
// into a typed key space — int64 for integer-representable values (int64
// columns, integral doubles, and strings in canonical decimal form) and
// std::string for everything else — and assigns dense uint32_t ids in
// first-seen row order. The id -> row-list index is stored in CSR layout
// (offsets + flat row array) so duplicate-key groups are contiguous and
// allocation-free to traverse.
//
// The canonical key space preserves KeyAt's cross-type semantics exactly:
// int64 7, double 7.0 and string "7" intern to the same key; string "07"
// does not (KeyAt compares against std::to_string(7) == "7").

#ifndef AUTOFEAT_TABLE_KEY_DICTIONARY_H_
#define AUTOFEAT_TABLE_KEY_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "table/column.h"

namespace autofeat {

/// Parses `s` as a canonically formatted int64 — succeeds iff
/// s == std::to_string(n) for some int64 n (no leading zeros, no '+', no
/// "-0"). Strings that fail stay in the string key space, matching KeyAt.
std::optional<int64_t> CanonicalIntKey(std::string_view s);

/// True iff `v` is exactly representable as an int64 join key under KeyAt's
/// canonicalisation rule (finite, integral, |v| < 9e15); writes the value.
bool IntegralDoubleKey(double v, int64_t* out);

/// \brief Dense-id dictionary over one key column, with a CSR id -> rows
/// index.
///
/// Ids are assigned in first-seen row order (the deterministic group order
/// joins and cardinality normalisation rely on); each id's row list is in
/// ascending row order.
class KeyDictionary {
 public:
  /// Sentinel id for null rows and probe misses.
  static constexpr uint32_t kNoKey = static_cast<uint32_t>(-1);

  /// Builds the dictionary over every non-null row of `key`.
  static KeyDictionary Build(const Column& key);

  /// Number of distinct (non-null) keys.
  uint32_t num_keys() const { return static_cast<uint32_t>(offsets_.size() - 1); }

  /// Per source row: the row's key id, kNoKey for nulls.
  const std::vector<uint32_t>& row_ids() const { return row_ids_; }

  /// CSR row list of key `id`, ascending source-row order.
  const uint32_t* rows_begin(uint32_t id) const {
    return rows_.data() + offsets_[id];
  }
  size_t rows_count(uint32_t id) const {
    return offsets_[id + 1] - offsets_[id];
  }

  /// Id of row `row` of `probe` under this dictionary, kNoKey when the row
  /// is null or its key was never interned. Int64 and integral-double keys
  /// never touch a std::string.
  uint32_t Lookup(const Column& probe, size_t row) const;

  /// Approximate heap footprint in bytes (hash-map entries, CSR arrays).
  /// Size-based, so equal content reports equal bytes (see
  /// Column::ApproxBytes for why the memory gauges need that).
  size_t ApproxBytes() const;

 private:
  // Heterogeneous lookup so double-formatted probes use a stack buffer.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  uint32_t InternInt(int64_t v);
  uint32_t InternString(std::string_view s);
  uint32_t FindInt(int64_t v) const;
  uint32_t FindString(std::string_view s) const;
  uint32_t InternAt(const Column& key, size_t row);

  std::unordered_map<int64_t, uint32_t> int_ids_;
  std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>>
      str_ids_;
  std::vector<uint32_t> row_ids_;
  std::vector<uint32_t> offsets_{0};  // size num_keys + 1
  std::vector<uint32_t> rows_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_TABLE_KEY_DICTIONARY_H_
