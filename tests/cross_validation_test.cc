#include "ml/cross_validation.h"

#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace autofeat::ml {
namespace {

Table MakeSignalTable(size_t n, double separation, uint64_t seed) {
  Rng rng(seed);
  Table t("cv");
  Column f(DataType::kDouble), label(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    int y = static_cast<int>(i % 2);
    f.AppendDouble(y == 1 ? rng.Normal(separation, 1)
                          : rng.Normal(-separation, 1));
    label.AppendInt64(y);
  }
  t.AddColumn("f", std::move(f)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  return t;
}

TEST(FoldAssignmentTest, EveryRowGetsAFold) {
  Table t = MakeSignalTable(103, 1.0, 1);
  auto folds = StratifiedFoldAssignment(t, "label", 5, 7);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 103u);
  for (size_t f : *folds) EXPECT_LT(f, 5u);
}

TEST(FoldAssignmentTest, FoldsAreBalanced) {
  Table t = MakeSignalTable(100, 1.0, 2);
  auto folds = StratifiedFoldAssignment(t, "label", 5, 7);
  ASSERT_TRUE(folds.ok());
  std::vector<size_t> counts(5, 0);
  for (size_t f : *folds) ++counts[f];
  for (size_t c : counts) EXPECT_EQ(c, 20u);
}

TEST(FoldAssignmentTest, StratificationPreservesClassBalancePerFold) {
  Table t = MakeSignalTable(200, 1.0, 3);
  auto folds = StratifiedFoldAssignment(t, "label", 4, 9);
  ASSERT_TRUE(folds.ok());
  auto label = *t.GetColumn("label");
  std::vector<size_t> positives(4, 0), totals(4, 0);
  for (size_t r = 0; r < 200; ++r) {
    ++totals[(*folds)[r]];
    positives[(*folds)[r]] += static_cast<size_t>(label->GetInt64(r));
  }
  for (size_t f = 0; f < 4; ++f) {
    double rate = static_cast<double>(positives[f]) / totals[f];
    EXPECT_NEAR(rate, 0.5, 0.06) << "fold " << f;
  }
}

TEST(FoldAssignmentTest, TooFewFoldsIsError) {
  Table t = MakeSignalTable(20, 1.0, 4);
  EXPECT_FALSE(StratifiedFoldAssignment(t, "label", 1, 1).ok());
  EXPECT_FALSE(StratifiedFoldAssignment(t, "missing", 5, 1).ok());
}

TEST(CrossValidateTest, StrongSignalScoresHigh) {
  Table t = MakeSignalTable(400, 2.0, 5);
  auto result = CrossValidate(t, "label", ModelKind::kLogRegL1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->fold_accuracies.size(), 5u);
  EXPECT_GT(result->mean_accuracy, 0.9);
  EXPECT_GT(result->mean_auc, 0.95);
  EXPECT_LT(result->stddev_accuracy, 0.1);
  EXPECT_EQ(result->model_name, "LogRegL1");
}

TEST(CrossValidateTest, NoSignalNearChance) {
  Rng rng(6);
  Table t("noise");
  Column f(DataType::kDouble), label(DataType::kInt64);
  for (size_t i = 0; i < 400; ++i) {
    f.AppendDouble(rng.Normal(0, 1));
    label.AppendInt64(static_cast<int64_t>(i % 2));
  }
  t.AddColumn("f", std::move(f)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  auto result = CrossValidate(t, "label", ModelKind::kKnn);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->mean_accuracy, 0.5, 0.1);
}

TEST(CrossValidateTest, FoldCountRespected) {
  Table t = MakeSignalTable(90, 1.5, 7);
  CrossValidationOptions options;
  options.folds = 3;
  auto result = CrossValidate(t, "label", ModelKind::kKnn, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->fold_accuracies.size(), 3u);
  EXPECT_EQ(result->fold_aucs.size(), 3u);
}

TEST(CrossValidateTest, DeterministicGivenSeed) {
  Table t = MakeSignalTable(200, 1.0, 8);
  auto a = CrossValidate(t, "label", ModelKind::kLightGbm);
  auto b = CrossValidate(t, "label", ModelKind::kLightGbm);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->fold_accuracies, b->fold_accuracies);
}

TEST(CrossValidateTest, DegenerateFoldCountIsError) {
  Table t = MakeSignalTable(4, 1.0, 9);
  CrossValidationOptions options;
  options.folds = 10;  // More folds than rows per class.
  EXPECT_FALSE(CrossValidate(t, "label", ModelKind::kKnn, options).ok());
}

}  // namespace
}  // namespace autofeat::ml
