#include "discovery/schema_matcher.h"

#include <algorithm>
#include <unordered_set>

#include "util/string_utils.h"

namespace autofeat {

double NameSimilarity(std::string_view a, std::string_view b) {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  if (la == lb) return 1.0;
  // Qualified names ("table.column") match on their column part.
  auto strip = [](const std::string& s) {
    size_t dot = s.find_last_of('.');
    return dot == std::string::npos ? s : s.substr(dot + 1);
  };
  std::string ca = strip(la);
  std::string cb = strip(lb);
  if (ca == cb) return 1.0;
  return std::max(LevenshteinSimilarity(ca, cb), QGramJaccard(ca, cb));
}

namespace {

// Distinct values of a column, capped at `max_sample` by keeping the
// values with the smallest hashes (a bottom-k sketch). Hash-based
// selection keeps the *same* values on both sides of a comparison, so the
// containment estimate survives sampling — first-k sampling of two
// differently ordered columns would destroy it.
std::unordered_set<std::string> DistinctSketch(const Column& col,
                                               size_t max_sample) {
  std::unordered_set<std::string> values;
  for (size_t i = 0; i < col.size(); ++i) {
    if (!col.IsNull(i)) values.insert(col.KeyAt(i));
  }
  if (values.size() <= max_sample) return values;
  std::vector<std::pair<size_t, std::string>> hashed;
  hashed.reserve(values.size());
  std::hash<std::string> hasher;
  for (auto& v : values) hashed.emplace_back(hasher(v), v);
  std::nth_element(hashed.begin(),
                   hashed.begin() + static_cast<ptrdiff_t>(max_sample),
                   hashed.end());
  std::unordered_set<std::string> sketch;
  for (size_t i = 0; i < max_sample; ++i) {
    sketch.insert(std::move(hashed[i].second));
  }
  return sketch;
}

}  // namespace

double ValueOverlap(const Column& a, const Column& b, size_t max_sample) {
  std::unordered_set<std::string> sa = DistinctSketch(a, max_sample);
  std::unordered_set<std::string> sb = DistinctSketch(b, max_sample);
  if (sa.empty() || sb.empty()) return 0.0;
  const auto& small = sa.size() <= sb.size() ? sa : sb;
  const auto& large = sa.size() <= sb.size() ? sb : sa;
  size_t inter = 0;
  for (const auto& v : small) inter += large.count(v);
  return static_cast<double>(inter) / static_cast<double>(small.size());
}

namespace {

// Distinct non-null values, counted up to `cap`.
size_t DistinctCount(const Column& col, size_t cap) {
  std::unordered_set<std::string> values;
  for (size_t i = 0; i < col.size() && values.size() < cap; ++i) {
    if (!col.IsNull(i)) values.insert(col.KeyAt(i));
  }
  return values.size();
}

}  // namespace

std::vector<ColumnMatch> MatchSchemas(const Table& left, const Table& right,
                                      const MatchOptions& options) {
  std::vector<ColumnMatch> matches;
  for (size_t lc = 0; lc < left.num_columns(); ++lc) {
    const Field& lf = left.schema().field(lc);
    for (size_t rc = 0; rc < right.num_columns(); ++rc) {
      const Field& rf = right.schema().field(rc);
      // Join-plausibility filter: continuous doubles only pair with doubles;
      // key-like types (int64/string) pair with each other.
      bool l_key_like = lf.type != DataType::kDouble;
      bool r_key_like = rf.type != DataType::kDouble;
      if (l_key_like != r_key_like) continue;

      double name_sim = NameSimilarity(lf.name, rf.name);
      double value_sim = ValueOverlap(left.column(lc), right.column(rc),
                                      options.max_sample_values);
      // Containment of a tiny value set (binary flags, labels) inside a
      // large key range carries no join evidence; discount it.
      if (options.min_distinct_for_overlap > 1) {
        size_t distinct = std::min(
            DistinctCount(left.column(lc), options.min_distinct_for_overlap),
            DistinctCount(right.column(rc),
                          options.min_distinct_for_overlap));
        value_sim *= std::min(
            1.0, static_cast<double>(distinct) /
                     static_cast<double>(options.min_distinct_for_overlap));
      }
      double score = options.name_weight * name_sim +
                     options.value_weight * value_sim;
      if (score >= options.threshold) {
        matches.push_back(ColumnMatch{lf.name, rf.name, score});
      }
    }
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const ColumnMatch& a, const ColumnMatch& b) {
                     return a.score > b.score;
                   });
  return matches;
}

}  // namespace autofeat
