#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace autofeat::obs {
namespace {

// Tracer uids are never reused, so a thread-local {uid, buffer} pair can
// cache the buffer lookup without ever dereferencing a buffer that
// belonged to a destroyed tracer: a dead tracer's uid can no longer match.
std::atomic<uint64_t> g_tracer_uid{1};
thread_local uint64_t t_cached_uid = 0;
thread_local void* t_cached_buffer = nullptr;

}  // namespace

Tracer::Tracer() : uid_(g_tracer_uid.fetch_add(1, std::memory_order_relaxed)) {}

size_t Tracer::BeginSpan(std::string name) {
  std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = thread_ids_.emplace(tid, thread_ids_.size());
  std::vector<size_t>& stack = open_stacks_[tid];

  SpanRecord span;
  span.id = spans_.size() + 1;
  span.parent = stack.empty() ? 0 : stack.back();
  span.name = std::move(name);
  span.thread = it->second;
  span.start_seconds = clock_.ElapsedSeconds();
  stack.push_back(span.id);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(size_t id) {
  std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].end_seconds = clock_.ElapsedSeconds();
  auto stack_it = open_stacks_.find(tid);
  if (stack_it == open_stacks_.end()) return;
  // Well-nested callers pop the top; a mismatched EndSpan (a bug upstream)
  // still closes the named span without corrupting siblings.
  std::vector<size_t>& stack = stack_it->second;
  for (size_t i = stack.size(); i > 0; --i) {
    if (stack[i - 1] == id) {
      stack.erase(stack.begin() + static_cast<ptrdiff_t>(i - 1));
      break;
    }
  }
}

TaskContext Tracer::CaptureTask() {
  std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = thread_ids_.emplace(tid, thread_ids_.size());
  TaskContext ctx;
  ctx.tracer = this;
  auto stack_it = open_stacks_.find(tid);
  if (stack_it != open_stacks_.end() && !stack_it->second.empty()) {
    ctx.parent = stack_it->second.back();
  }
  ctx.flow_id = next_flow_.fetch_add(1, std::memory_order_relaxed);
  flows_.push_back(
      FlowPoint{ctx.flow_id, it->second, clock_.ElapsedSeconds(), ctx.parent});
  return ctx;
}

Tracer::WorkerBuffer* Tracer::BufferForThisThread() {
  if (t_cached_uid == uid_) {
    return static_cast<WorkerBuffer*>(t_cached_buffer);
  }
  std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<WorkerBuffer>& slot = buffers_[tid];
  if (slot == nullptr) {
    slot = std::make_unique<WorkerBuffer>();
    auto [it, inserted] = thread_ids_.emplace(tid, thread_ids_.size());
    slot->thread = it->second;
  }
  t_cached_uid = uid_;
  t_cached_buffer = slot.get();
  return slot.get();
}

void Tracer::BeginWorkerSpan(std::string name, const TaskContext& ctx) {
  WorkerBuffer* buf = BufferForThisThread();
  size_t fallback_parent = ctx.parent;
  if (ctx.tracer == nullptr && ctx.parent == 0) {
    // Context-free worker span: adopt the calling thread's innermost open
    // orchestration span. Looked up before taking the buffer lock so the
    // lock order stays global -> buffer everywhere.
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_stacks_.find(std::this_thread::get_id());
    if (it != open_stacks_.end() && !it->second.empty()) {
      fallback_parent = it->second.back();
    }
  }
  double now = clock_.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(buf->mutex);
  WorkerSpan span;
  span.name = std::move(name);
  if (!buf->open.empty()) {
    span.local_parent = buf->open.back();
  } else {
    span.orch_parent = fallback_parent;
    span.flow_id = ctx.flow_id;
  }
  span.start_seconds = now;
  buf->spans.push_back(std::move(span));
  buf->open.push_back(buf->spans.size());
}

void Tracer::EndWorkerSpan() {
  WorkerBuffer* buf = BufferForThisThread();
  double now = clock_.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(buf->mutex);
  if (buf->open.empty()) return;
  buf->spans[buf->open.back() - 1].end_seconds = now;
  buf->open.pop_back();
}

size_t Tracer::num_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

size_t Tracer::num_worker_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [tid, buf] : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    total += buf->spans.size();
  }
  return total;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out = spans_;
  std::vector<WorkerBuffer*> ordered;
  ordered.reserve(buffers_.size());
  for (const auto& [tid, buf] : buffers_) ordered.push_back(buf.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const WorkerBuffer* a, const WorkerBuffer* b) {
              return a->thread < b->thread;
            });
  for (WorkerBuffer* buf : ordered) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    // Merged ids stay 1-based and contiguous: a buffer-local parent at
    // 1-based index i becomes id base + i.
    size_t base = out.size();
    for (const WorkerSpan& ws : buf->spans) {
      SpanRecord rec;
      rec.id = out.size() + 1;
      rec.parent = ws.local_parent > 0 ? base + ws.local_parent
                                       : ws.orch_parent;
      rec.name = ws.name;
      rec.thread = buf->thread;
      rec.start_seconds = ws.start_seconds;
      rec.end_seconds = ws.end_seconds;
      rec.worker = true;
      rec.flow_id = ws.flow_id;
      out.push_back(std::move(rec));
    }
  }
  return out;
}

std::vector<FlowPoint> Tracer::FlowSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flows_;
}

}  // namespace autofeat::obs
