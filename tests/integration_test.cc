// End-to-end tests across both evaluation settings of the paper:
// the benchmark setting (KFK snowflake) and the data-lake setting
// (discovered multigraph with spurious edges).

#include <filesystem>

#include <gtest/gtest.h>

#include "baselines/autofeat_method.h"
#include "core/autofeat.h"
#include "datagen/lake_builder.h"
#include "datagen/registry.h"
#include "ml/trainer.h"
#include "table/csv.h"

namespace autofeat {
namespace {

datagen::BuiltLake MakeLake(uint64_t seed = 19) {
  datagen::LakeSpec spec;
  spec.name = "itg";
  spec.rows = 800;
  spec.joinable_tables = 6;
  spec.total_features = 24;
  spec.seed = seed;
  return datagen::BuildLake(spec);
}

TEST(DataLakeSettingTest, DiscoveryBuildsDenserGraphThanKfk) {
  auto built = MakeLake();
  auto kfk = BuildDrgFromKfk(built.lake);
  MatchOptions options;
  options.threshold = 0.55;
  auto discovered = BuildDrgByDiscovery(built.lake, options);
  ASSERT_TRUE(kfk.ok());
  ASSERT_TRUE(discovered.ok());
  // Surrogate-key value overlap creates spurious edges: the discovered
  // graph is strictly denser than the curated one (§VII-A).
  EXPECT_GT(discovered->num_edges(), kfk->num_edges());
}

TEST(DataLakeSettingTest, AutoFeatStillFindsSignalOnDiscoveredGraph) {
  auto built = MakeLake();
  MatchOptions options;
  options.threshold = 0.55;
  auto drg = BuildDrgByDiscovery(built.lake, options);
  ASSERT_TRUE(drg.ok());

  AutoFeatConfig config;
  config.sample_rows = 500;
  config.max_paths = 400;
  AutoFeat engine(&built.lake, &*drg, config);
  auto result = engine.Augment(built.base_table, built.label_column,
                               ml::ModelKind::kLightGbm);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto base = built.lake.GetTable(built.base_table);
  auto base_eval = ml::TrainAndEvaluate(**base, built.label_column,
                                        ml::ModelKind::kLightGbm);
  ASSERT_TRUE(base_eval.ok());
  EXPECT_GT(result->accuracy, base_eval->accuracy)
      << "augmentation over the discovered graph must beat the base table";
}

TEST(DataLakeSettingTest, SpuriousJoinsArePrunedNotSelected) {
  auto built = MakeLake();
  MatchOptions options;
  options.threshold = 0.55;
  auto drg = BuildDrgByDiscovery(built.lake, options);
  AutoFeatConfig config;
  config.sample_rows = 500;
  config.max_paths = 400;
  AutoFeat engine(&built.lake, &*drg, config);
  auto result =
      engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  // Spurious joins exist, so some paths must have been pruned or scored
  // as featureless; the explored count exceeds the ranked count.
  EXPECT_GT(result->paths_explored, result->ranked.size());
}

TEST(CsvPersistenceTest, LakeSurvivesDiskRoundTrip) {
  namespace fs = std::filesystem;
  auto built = MakeLake();
  std::string dir = ::testing::TempDir() + "/autofeat_itg_lake";
  fs::create_directories(dir);
  for (const auto& table : built.lake.tables()) {
    WriteCsvFile(table, dir + "/" + table.name() + ".csv").Abort();
  }
  auto reloaded = DataLake::FromCsvDirectory(dir);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->num_tables(), built.lake.num_tables());
  for (const auto& table : built.lake.tables()) {
    auto other = reloaded->GetTable(table.name());
    ASSERT_TRUE(other.ok());
    EXPECT_TRUE(table.Equals(**other)) << table.name();
  }
  fs::remove_all(dir);
}

TEST(RegistrySmokeTest, SmallRegistryLakesRunEndToEnd) {
  // The two smallest Table II datasets run through the full pipeline.
  for (const char* name : {"credit", "school"}) {
    auto spec = *datagen::FindDataset(name);
    spec.rows = std::min<size_t>(spec.rows, 600);
    spec.total_features = std::min<size_t>(spec.total_features, 40);
    auto built = datagen::BuildPaperLake(spec, 3);
    auto drg = BuildDrgFromKfk(built.lake);
    ASSERT_TRUE(drg.ok()) << name;
    AutoFeatConfig config;
    config.sample_rows = 400;
    baselines::AutoFeatMethod method(config);
    auto result = method.Augment(built.lake, *drg, built.base_table,
                                 built.label_column);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_GT(result->augmented.num_rows(), 0u) << name;
  }
}

}  // namespace
}  // namespace autofeat
