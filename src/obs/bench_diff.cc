#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json_value.h"

namespace autofeat::obs {
namespace {

bool SkippedMetric(const std::string& name) {
  // Scheduling- and OS-dependent series: meaningless in an A/B gate.
  return name.rfind("thread_pool.", 0) == 0 || name.rfind("process.", 0) == 0;
}

bool EndsWith(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsByteGauge(const std::string& name) {
  return EndsWith(name, ".bytes") || EndsWith(name, ".bytes_peak");
}

double Ratio(double baseline, double current) {
  double denom = std::max(std::abs(baseline), 1e-12);
  return (current - baseline) / denom;
}

Result<std::string> RequireString(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument(std::string("bench JSON missing string "
                                               "field \"") + key + "\"");
  }
  return v->str;
}

// phase@threads -> seconds, in file order via std::map for stable output.
Result<std::map<std::string, double>> CollectTimings(const JsonValue& doc) {
  const JsonValue* timings = doc.Find("timings");
  if (timings == nullptr || !timings->is_array()) {
    return Status::InvalidArgument("bench JSON has no \"timings\" array");
  }
  std::map<std::string, double> out;
  for (const JsonValue& row : timings->items) {
    const JsonValue* phase = row.Find("phase");
    const JsonValue* threads = row.Find("threads");
    const JsonValue* seconds = row.Find("seconds");
    if (phase == nullptr || !phase->is_string() || threads == nullptr ||
        !threads->is_number() || seconds == nullptr || !seconds->is_number()) {
      return Status::InvalidArgument(
          "bench JSON timing row missing phase/threads/seconds");
    }
    std::string key = phase->str + "@" +
                      std::to_string(static_cast<long long>(threads->number));
    out[key] = seconds->number;
  }
  return out;
}

// `name/pXX` -> seconds for the `_ns`-suffixed latency quantile series in
// the embedded report's metrics.quantiles block. Only nanosecond series are
// gated — they are the latency convention; anything else has no known unit.
std::map<std::string, double> CollectQuantiles(const JsonValue& doc) {
  std::map<std::string, double> out;
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return out;
  const JsonValue* block = metrics->Find("quantiles");
  if (block == nullptr || !block->is_object()) return out;
  for (const auto& [name, value] : block->fields) {
    if (!value.is_object() || !EndsWith(name, "_ns")) continue;
    for (const char* q : {"p50", "p99"}) {
      const JsonValue* v = value.Find(q);
      if (v != nullptr && v->is_number()) {
        out[name + "/" + q] = v->number / 1e9;
      }
    }
  }
  return out;
}

// Flattens metrics.counters and metrics.gauges into one name -> value map.
std::map<std::string, double> CollectMetrics(const JsonValue& doc) {
  std::map<std::string, double> out;
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return out;
  for (const char* section : {"counters", "gauges"}) {
    const JsonValue* block = metrics->Find(section);
    if (block == nullptr || !block->is_object()) continue;
    for (const auto& [name, value] : block->fields) {
      if (value.is_number()) out[name] = value.number;
    }
  }
  return out;
}

}  // namespace

bool BenchDiffReport::ok() const { return num_regressions() == 0; }

size_t BenchDiffReport::num_regressions() const {
  size_t n = 0;
  for (const BenchDiffEntry& e : timings) n += e.regression ? 1 : 0;
  for (const BenchDiffEntry& e : quantiles) n += e.regression ? 1 : 0;
  for (const BenchDiffEntry& e : metrics) n += e.regression ? 1 : 0;
  return n;
}

std::string BenchDiffReport::Summary() const {
  std::ostringstream out;
  char buf[256];
  out << "bench_diff: " << bench << "\n";
  auto print = [&](const char* kind, const std::vector<BenchDiffEntry>& rows) {
    for (const BenchDiffEntry& e : rows) {
      std::snprintf(buf, sizeof(buf), "  %-10s %-44s %14.6f %14.6f %+7.1f%% %s\n",
                    kind, e.name.c_str(), e.baseline, e.current,
                    e.delta_ratio * 100.0,
                    e.regression ? "REGRESSION" : "ok");
      out << buf;
    }
  };
  print("timing", timings);
  print("quantile", quantiles);
  print("metric", metrics);
  for (const std::string& note : notes) out << "  note: " << note << "\n";
  std::snprintf(buf, sizeof(buf), "  %zu regression(s)\n", num_regressions());
  out << buf;
  return out.str();
}

Result<BenchDiffReport> DiffBenchReports(const std::string& baseline_json,
                                         const std::string& current_json,
                                         const BenchDiffOptions& options) {
  AF_ASSIGN_OR_RETURN(JsonValue baseline, ParseJson(baseline_json));
  AF_ASSIGN_OR_RETURN(JsonValue current, ParseJson(current_json));

  AF_ASSIGN_OR_RETURN(std::string baseline_bench,
                      RequireString(baseline, "bench"));
  AF_ASSIGN_OR_RETURN(std::string current_bench,
                      RequireString(current, "bench"));
  if (baseline_bench != current_bench) {
    return Status::InvalidArgument("bench name mismatch: \"" + baseline_bench +
                                   "\" vs \"" + current_bench + "\"");
  }
  AF_ASSIGN_OR_RETURN(std::string baseline_mode,
                      RequireString(baseline, "mode"));
  AF_ASSIGN_OR_RETURN(std::string current_mode, RequireString(current, "mode"));
  if (baseline_mode != current_mode) {
    return Status::InvalidArgument("bench mode mismatch: \"" + baseline_mode +
                                   "\" vs \"" + current_mode + "\"");
  }

  BenchDiffReport report;
  report.bench = baseline_bench;

  AF_ASSIGN_OR_RETURN(auto baseline_timings, CollectTimings(baseline));
  AF_ASSIGN_OR_RETURN(auto current_timings, CollectTimings(current));
  for (const auto& [name, base_s] : baseline_timings) {
    auto it = current_timings.find(name);
    if (it == current_timings.end()) {
      report.notes.push_back("timing only in baseline: " + name);
      continue;
    }
    BenchDiffEntry entry;
    entry.name = name;
    entry.baseline = base_s;
    entry.current = it->second;
    entry.delta_ratio = Ratio(base_s, it->second);
    entry.regression = it->second - base_s > options.min_seconds &&
                       it->second > base_s * (1.0 + options.time_threshold);
    report.timings.push_back(std::move(entry));
  }
  for (const auto& [name, cur_s] : current_timings) {
    (void)cur_s;
    if (baseline_timings.find(name) == baseline_timings.end()) {
      report.notes.push_back("timing only in current: " + name);
    }
  }

  // Latency quantiles gate like timings: a slowdown must clear both the
  // relative threshold and the absolute noise floor to flag.
  auto baseline_quantiles = CollectQuantiles(baseline);
  auto current_quantiles = CollectQuantiles(current);
  for (const auto& [name, base_s] : baseline_quantiles) {
    auto it = current_quantiles.find(name);
    if (it == current_quantiles.end()) {
      report.notes.push_back("quantile only in baseline: " + name);
      continue;
    }
    BenchDiffEntry entry;
    entry.name = name;
    entry.baseline = base_s;
    entry.current = it->second;
    entry.delta_ratio = Ratio(base_s, it->second);
    entry.regression = it->second - base_s > options.min_seconds &&
                       it->second > base_s * (1.0 + options.time_threshold);
    report.quantiles.push_back(std::move(entry));
  }
  for (const auto& [name, cur_s] : current_quantiles) {
    (void)cur_s;
    if (baseline_quantiles.find(name) == baseline_quantiles.end()) {
      report.notes.push_back("quantile only in current: " + name);
    }
  }

  auto baseline_metrics = CollectMetrics(baseline);
  auto current_metrics = CollectMetrics(current);
  for (const auto& [name, base_v] : baseline_metrics) {
    if (SkippedMetric(name)) continue;
    auto it = current_metrics.find(name);
    if (it == current_metrics.end()) {
      report.notes.push_back("metric only in baseline: " + name);
      continue;
    }
    BenchDiffEntry entry;
    entry.name = name;
    entry.baseline = base_v;
    entry.current = it->second;
    entry.delta_ratio = Ratio(base_v, it->second);
    if (IsByteGauge(name)) {
      entry.regression = entry.delta_ratio > options.metric_threshold;
    } else {
      entry.regression =
          std::abs(entry.delta_ratio) > options.metric_threshold;
    }
    report.metrics.push_back(std::move(entry));
  }
  for (const auto& [name, cur_v] : current_metrics) {
    (void)cur_v;
    if (SkippedMetric(name)) continue;
    if (baseline_metrics.find(name) == baseline_metrics.end()) {
      report.notes.push_back("metric only in current: " + name);
    }
  }

  return report;
}

}  // namespace autofeat::obs
