// Discovery-algorithm independence (§IV): "DRG construction is independent
// of the dataset discovery algorithm; any algorithm which outputs a
// similarity score can be used". This harness builds the data-lake DRG
// with two different matchers — the COMA-substitute (names + values) and
// an instance-only Jaccard/containment matcher — and runs AutoFeat over
// each, comparing graph density, discovery time and downstream accuracy.

#include <cstdio>

#include "core/autofeat.h"
#include "discovery/overlap_matcher.h"
#include "harness.h"
#include "util/timer.h"

int main() {
  using namespace autofeat;
  using namespace autofeat::benchx;

  PrintModeBanner("Ablation: dataset-discovery matcher independence");

  std::vector<std::string> names = FullMode()
      ? std::vector<std::string>{"credit", "covertype", "steel", "school"}
      : std::vector<std::string>{"credit", "covertype", "steel"};

  std::printf("\n%-12s %-16s %8s %12s %10s %8s\n", "dataset", "matcher",
              "edges", "discovery_s", "fs_time_s", "acc");
  PrintRule(72);

  for (const auto& name : names) {
    auto spec = ScaledSpec(*datagen::FindDataset(name));
    datagen::BuiltLake built = datagen::BuildPaperLake(spec, 42);

    struct NamedMatcher {
      const char* name;
      std::function<std::vector<ColumnMatch>(const Table&, const Table&)> fn;
    };
    MatchOptions coma;
    coma.threshold = 0.55;
    OverlapMatchOptions jaccard;
    jaccard.threshold = 0.55;
    const NamedMatcher matchers[] = {
        {"COMA-like", [&coma](const Table& l, const Table& r) {
           return MatchSchemas(l, r, coma);
         }},
        {"instance-only", [&jaccard](const Table& l, const Table& r) {
           return MatchByValueOverlap(l, r, jaccard);
         }},
    };

    for (const NamedMatcher& matcher : matchers) {
      Timer discovery_timer;
      auto drg = BuildDrgWithMatcher(built.lake, matcher.fn);
      drg.status().Abort(matcher.name);
      double discovery_seconds = discovery_timer.ElapsedSeconds();

      AutoFeatConfig config;
      config.sample_rows = 1000;
      config.max_paths = 600;
      AutoFeat engine(&built.lake, &*drg, config);
      auto result = engine.Augment(built.base_table, built.label_column,
                                   ml::ModelKind::kLightGbm);
      result.status().Abort("AutoFeat");
      std::printf("%-12s %-16s %8zu %12.3f %10.3f %8.3f\n",
                  spec.name.c_str(), matcher.name, drg->num_edges(),
                  discovery_seconds,
                  result->discovery.feature_selection_seconds,
                  result->accuracy);
    }
    std::printf("\n");
  }
  std::printf("expected: both matchers recover the true links, so AutoFeat "
              "reaches comparable accuracy; the instance-only matcher "
              "reports more edges (no name evidence to filter on).\n");
  return 0;
}
